// Package bandana is the public API of the Bandana embedding store — a
// reproduction of "Bandana: Using Non-volatile Memory for Storing Deep
// Learning Models" (Eisenman et al., MLSys 2019).
//
// Bandana keeps recommender-system embedding tables on block-addressable NVM
// and uses a small DRAM cache in front of it. Because NVM must be read in
// 4 KB blocks while embedding vectors are only 64-256 B, the system's job is
// to make every block read count:
//
//   - vectors that are accessed by the same requests are stored in the same
//     physical block (Social Hash Partitioning of the lookup hypergraph), so
//     that one block read prefetches useful neighbours, and
//   - prefetched vectors are admitted to the DRAM cache only when their
//     access count during training exceeds a per-table threshold that is
//     tuned automatically by simulating dozens of miniature caches.
//
// # Quick start
//
//	tables  := []*bandana.Table{ ... }            // embedding tables
//	store, _ := bandana.Open(bandana.Config{Tables: tables})
//	defer store.Close()
//
//	// Optional: train placement + caching from a historical trace.
//	store.Train(traces, bandana.TrainOptions{})
//
//	vec, _ := store.Lookup(0, 12345)              // one embedding vector
//
// # Concurrency model
//
// The serving path is built to scale with GOMAXPROCS:
//
//   - Lookup, LookupBatch and ServeRequest are safe to call from any number
//     of goroutines. Each table's DRAM cache is split into lock shards by
//     vector-ID hash, so lookups of different vectors rarely contend.
//   - The trained state (placement, admission policy, cache allocation) is
//     published through an atomic pointer: readers take no lock, and Train,
//     LoadState or SetAdmissionPolicy can run while the store serves.
//   - Serving counters are striped across cache lines and aggregated on
//     Stats; NVM block reads are issued outside all locks so misses overlap
//     at the device.
//   - Returned vectors are read-only views shared with the cache. They
//     remain valid until the vector is overwritten by UpdateVector, but
//     callers must copy a vector before modifying it.
//   - UpdateVector is safe to call concurrently with lookups; updates to
//     the same table serialize with each other (read-modify-write of the
//     shared 4 KB block).
//
// # Prefetch admission policies
//
// The admission policies of §4.3 (AlwaysAdmit, ShadowAdmit, ShadowPosition,
// ThresholdAdmit) are a single set of implementations shared by the trace
// simulator and the live store. Train installs the tuned ThresholdAdmit
// automatically; SetAdmissionPolicy swaps in any other policy at runtime.
//
// The subpackages under internal/ implement the substrates (NVM device
// model, trace generation, partitioners, cache simulation); this package
// re-exports the types a downstream application needs.
package bandana

import (
	"bandana/internal/core"
	"bandana/internal/nvm"
	"bandana/internal/table"
	"bandana/internal/trace"
)

// Version is the library version.
const Version = "1.0.0"

// BlockSize is the NVM read granularity in bytes (4 KB).
const BlockSize = nvm.BlockSize

// Store is a Bandana embedding store. See the package documentation for the
// lifecycle (Open -> Train -> Lookup).
type Store = core.Store

// Config configures Open.
type Config = core.Config

// IOSchedOptions configures the asynchronous block I/O scheduler
// (Config.IOSched): miss-path reads are coalesced per block and batched
// toward a target NVM queue depth, with demand reads always dispatched
// before background ones.
type IOSchedOptions = core.IOSchedOptions

// TrainOptions configures Store.Train.
type TrainOptions = core.TrainOptions

// TrainReport describes the decisions made by Store.Train.
type TrainReport = core.TrainReport

// TableTrainReport is the per-table part of a TrainReport.
type TableTrainReport = core.TableTrainReport

// TableStats is a snapshot of one table's serving counters.
type TableStats = core.TableStats

// Request is one recommendation request: vector IDs to look up per table.
type Request = core.Request

// AdaptOptions configures the online adaptation engine
// (Store.StartAdaptation): runtime trace recording, periodic DRAM
// rebalancing, miniature-cache threshold re-tuning and zero-downtime
// background re-layout.
type AdaptOptions = core.AdaptOptions

// AdaptEpochReport summarises one adaptation epoch (Store.AdaptNow).
type AdaptEpochReport = core.AdaptEpochReport

// TableAdaptReport is the per-table part of an AdaptEpochReport.
type TableAdaptReport = core.TableAdaptReport

// AdaptationStats is the adaptation engine's observability snapshot
// (Store.AdaptationStats).
type AdaptationStats = core.AdaptationStats

// TableAdaptationStats is the per-table part of AdaptationStats.
type TableAdaptationStats = core.TableAdaptationStats

// Background re-layout strategies for AdaptOptions.RelayoutStrategy.
const (
	RelayoutSHP    = core.RelayoutSHP
	RelayoutKMeans = core.RelayoutKMeans
)

// Open creates a Store from a Config: it sizes the NVM device, writes every
// table to it and starts serving lookups with per-table LRU caches (no
// prefetching until Train is called). With Config.Backend == BackendFile the
// blocks live in a durable journaled file under Config.DataDir and reopening
// the directory restores tables and trained state without retraining.
func Open(cfg Config) (*Store, error) { return core.Open(cfg) }

// Backend selection for Config.Backend.
const (
	// BackendMem keeps blocks in RAM (the default).
	BackendMem = core.BackendMem
	// BackendFile stores blocks in a durable journaled file under
	// Config.DataDir.
	BackendFile = core.BackendFile
)

// Cache engine selection for Config.CacheEngine. Both engines implement
// identical caching semantics (hit ratios and eviction sequences do not
// change with this switch); they differ in memory representation.
const (
	// CacheEngineLRU is the classic per-entry heap representation with
	// stable zero-alloc float views.
	CacheEngineLRU = core.CacheEngineLRU
	// CacheEngineArena (the default) stores fp16 payloads in pointer-free
	// slab arenas: ~2.5x less heap per cached vector and no GC scan cost.
	CacheEngineArena = core.CacheEngineArena
)

// SyncMode selects the file backend's durability mode (Config.Sync).
type SyncMode = nvm.SyncMode

// File backend durability modes.
const (
	SyncNone     = nvm.SyncNone
	SyncPeriodic = nvm.SyncPeriodic
	SyncAlways   = nvm.SyncAlways
)

// ParseSyncMode parses "none", "periodic" or "always".
func ParseSyncMode(s string) (SyncMode, error) { return nvm.ParseSyncMode(s) }

// DirInitialized reports whether dir holds an initialized file-backed store
// that Open can restore without tables or retraining.
func DirInitialized(dir string) bool { return core.DirInitialized(dir) }

// DefaultCacheShards is the default number of lock shards per table cache,
// derived from GOMAXPROCS. Override with Config.CacheShards.
func DefaultCacheShards() int { return core.DefaultCacheShards() }

// Table is an embedding table: a dense collection of fp16 vectors addressed
// by 32-bit vector IDs.
type Table = table.Table

// TableGenerateOptions configures GenerateTable.
type TableGenerateOptions = table.GenerateOptions

// GeneratedTable bundles a synthetic table with its ground-truth cluster
// assignment.
type GeneratedTable = table.Generated

// NewTable creates an empty (all-zero) embedding table.
func NewTable(name string, numVectors, dim int) *Table { return table.New(name, numVectors, dim) }

// GenerateTable creates a synthetic embedding table drawn from a Gaussian
// mixture; see TableGenerateOptions.
func GenerateTable(name string, opts TableGenerateOptions) *GeneratedTable {
	return table.Generate(name, opts)
}

// Trace is a sequence of queries (per-request vector ID sets) against one
// table; it is both the SHP training input and the cache workload.
type Trace = trace.Trace

// Query is the set of vector IDs one request reads from one table.
type Query = trace.Query

// Profile describes the statistical shape of one table's lookup stream.
type Profile = trace.Profile

// Workload is a set of per-table traces generated from one request stream.
type Workload = trace.Workload

// TraceStats summarises a trace (Table 1 of the paper).
type TraceStats = trace.Stats

// DefaultProfiles returns the 8 user-embedding-table profiles of the paper's
// Table 1, scaled by the given factor (1.0 = the paper's 10-20 M vectors).
func DefaultProfiles(scale float64) []Profile { return trace.DefaultProfiles(scale) }

// GenerateWorkload produces synthetic traces for every profile over a shared
// request stream.
func GenerateWorkload(profiles []Profile, numRequests int) *Workload {
	return trace.GenerateWorkload(profiles, numRequests)
}

// GenerateTrace produces a synthetic trace for a single table profile.
func GenerateTrace(p Profile, numQueries int) *Trace { return trace.GenerateTable(p, numQueries) }

// CommunityAssignment returns the co-access community of every vector for a
// profile; passing it to GenerateTable aligns embedding geometry with
// co-access so that semantic (K-means) partitioning has signal.
func CommunityAssignment(p Profile) []int32 { return trace.CommunityAssignment(p) }

// Device is a simulated block-NVM device.
type Device = nvm.Device

// DeviceConfig configures NewDevice.
type DeviceConfig = nvm.DeviceConfig

// DeviceStats is a snapshot of device counters.
type DeviceStats = nvm.Stats

// PerformanceModel converts device load into latency and bandwidth.
type PerformanceModel = nvm.PerformanceModel

// NewDevice creates a simulated NVM device.
func NewDevice(cfg DeviceConfig) *Device { return nvm.NewDevice(cfg) }

// NewPerformanceModel builds a device performance model from calibration
// points (nil uses the paper's Figure 2 calibration).
func NewPerformanceModel(points []nvm.CalibrationPoint) *PerformanceModel {
	return nvm.NewPerformanceModel(points)
}
