package bandana_test

import (
	"io"
	"testing"

	"bandana"
	"bandana/internal/experiments"
)

// The benchmarks below regenerate the paper's tables and figures (one bench
// per artefact) at a reduced scale, plus ablation benches for the design
// choices called out in DESIGN.md. Run them with:
//
//	go test -bench=. -benchmem
//
// Use cmd/bandana for the full-scale reference run recorded in
// EXPERIMENTS.md.

// benchRunner is shared across benchmarks so that the expensive artefacts
// (workload generation, SHP training) are built once and reused; each bench
// then measures its experiment's own work.
var benchRunner = experiments.NewRunner(experiments.QuickOptions())

func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		tbl.Format(io.Discard)
	}
}

func BenchmarkFig2NVMQueueDepth(b *testing.B)      { benchmarkExperiment(b, "fig2") }
func BenchmarkTable1Characterization(b *testing.B) { benchmarkExperiment(b, "table1") }
func BenchmarkFig3HitRateCurves(b *testing.B)      { benchmarkExperiment(b, "fig3") }
func BenchmarkFig4AccessHistograms(b *testing.B)   { benchmarkExperiment(b, "fig4") }
func BenchmarkFig5BaselineLatency(b *testing.B)    { benchmarkExperiment(b, "fig5") }
func BenchmarkFig6KMeansClusters(b *testing.B)     { benchmarkExperiment(b, "fig6") }
func BenchmarkFig7PartitionerRuntime(b *testing.B) { benchmarkExperiment(b, "fig7") }
func BenchmarkFig8RecursiveKMeans(b *testing.B)    { benchmarkExperiment(b, "fig8") }
func BenchmarkFig9SHPUnlimited(b *testing.B)       { benchmarkExperiment(b, "fig9") }
func BenchmarkFig10NaivePrefetch(b *testing.B)     { benchmarkExperiment(b, "fig10") }
func BenchmarkFig11AdmissionPolicies(b *testing.B) { benchmarkExperiment(b, "fig11") }
func BenchmarkFig12AccessThreshold(b *testing.B)   { benchmarkExperiment(b, "fig12") }
func BenchmarkTable2MiniatureCaches(b *testing.B)  { benchmarkExperiment(b, "table2") }
func BenchmarkFig13CacheSize(b *testing.B)         { benchmarkExperiment(b, "fig13") }
func BenchmarkFig14SamplingRate(b *testing.B)      { benchmarkExperiment(b, "fig14") }
func BenchmarkFig15TrainingSize(b *testing.B)      { benchmarkExperiment(b, "fig15") }
func BenchmarkFig16VectorSize(b *testing.B)        { benchmarkExperiment(b, "fig16") }
func BenchmarkAblationSHPIterations(b *testing.B)  { benchmarkExperiment(b, "ablation-shp") }
func BenchmarkAblationAdmission(b *testing.B)      { benchmarkExperiment(b, "ablation-admission") }
func BenchmarkAblationStackDistance(b *testing.B)  { benchmarkExperiment(b, "ablation-mrc") }

// hitPathStore builds a single-table store whose cache holds the entire
// table, then warms it so every subsequent lookup is a cache hit. This
// isolates the concurrency behaviour of the serving path (shard locking,
// counters) from NVM read latency.
func hitPathStore(b *testing.B) (*bandana.Store, int) {
	b.Helper()
	const numVectors = 8192
	g := bandana.GenerateTable("hot", bandana.TableGenerateOptions{
		NumVectors: numVectors,
		Dim:        64,
		Seed:       1,
	})
	store, err := bandana.Open(bandana.Config{
		Tables:            []*bandana.Table{g.Table},
		DRAMBudgetVectors: 2 * numVectors, // everything fits
		Seed:              1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	for id := 0; id < numVectors; id++ {
		if _, err := store.Lookup(0, uint32(id)); err != nil {
			b.Fatal(err)
		}
	}
	return store, numVectors
}

// BenchmarkLookupSerial is the single-goroutine baseline for
// BenchmarkLookupParallel: the same cache-hit lookup stream, no concurrency.
func BenchmarkLookupSerial(b *testing.B) {
	store, n := hitPathStore(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := store.Lookup(0, uint32(i%n)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookupParallel drives the cache-hit path from GOMAXPROCS
// goroutines. With the sharded per-table cache, throughput should scale
// with the processor count (compare ns/op against BenchmarkLookupSerial;
// run with -cpu 1,2,4,8 to see the scaling curve).
func BenchmarkLookupParallel(b *testing.B) {
	store, n := hitPathStore(b)
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine walks the ID space from a different offset with a
		// stride that is coprime to the table size, so concurrent lookups
		// spread across cache shards.
		i := 0
		for pb.Next() {
			i += 31
			if _, err := store.Lookup(0, uint32(i%n)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLookupBatchParallel measures the batched serving path under
// concurrency (all hits).
func BenchmarkLookupBatchParallel(b *testing.B) {
	store, n := hitPathStore(b)
	const batch = 64
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		ids := make([]uint32, batch)
		off := 0
		for pb.Next() {
			off += 127
			for j := range ids {
				ids[j] = uint32((off + j*31) % n)
			}
			if _, err := store.LookupBatch(0, ids); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreServeRequest measures the end-to-end request path of the
// public Store API (cache hit + miss mix with prefetching enabled).
func BenchmarkStoreServeRequest(b *testing.B) {
	profiles := bandana.DefaultProfiles(0.0005)[:2]
	workload := bandana.GenerateWorkload(profiles, 600)
	tables := make([]*bandana.Table, len(profiles))
	for i, p := range profiles {
		g := bandana.GenerateTable(p.Name, bandana.TableGenerateOptions{
			NumVectors:  p.NumVectors,
			Dim:         64,
			NumClusters: p.NumVectors / 64,
			Seed:        int64(i),
			Assignments: workload.Communities[i],
		})
		tables[i] = g.Table
	}
	store, err := bandana.Open(bandana.Config{Tables: tables, DRAMBudgetVectors: 500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	trains := make([]*bandana.Trace, len(workload.Traces))
	evals := make([]*bandana.Trace, len(workload.Traces))
	for i, tr := range workload.Traces {
		trains[i], evals[i] = tr.Split(0.5)
	}
	if _, err := store.Train(trains, bandana.TrainOptions{SHPIterations: 4, MiniCacheSampling: 0.5}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := make(bandana.Request, len(evals))
		for ti := range evals {
			q := evals[ti].Queries[i%len(evals[ti].Queries)]
			req[ti] = q
		}
		if _, err := store.ServeRequest(req); err != nil {
			b.Fatal(err)
		}
	}
}
