package bandana_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"bandana"
)

// TestGoldenQuickstartHitRatios pins the end-to-end policy behaviour of the
// quickstart scenario (examples/quickstart): two scaled-down tables, a 1200
// request synthetic workload, train on a 60% prefix and serve the 40%
// suffix. The trained hit ratios are the paper-relevant outcome of the whole
// pipeline — SHP placement, DRAM allocation, miniature-cache threshold
// tuning, prefetch admission — so a silent change in any of those layers
// shows up here. Everything is seeded, so the expected values are exact
// today; the tolerance absorbs deliberate small reshuffles (e.g. sharded-LRU
// eviction order), not policy regressions.
//
// Golden values (seed 1, scale 0.001): baseline 0.54/0.48, trained
// 0.58/0.49.
//
// The matrix crosses backends with both cache engines: the engines promise
// identical hit/miss/eviction behaviour (Config.CacheEngine is a pure
// representation switch), so the goldens must hold bit-for-bit on each.
func TestGoldenQuickstartHitRatios(t *testing.T) {
	for _, backend := range []string{bandana.BackendMem, bandana.BackendFile} {
		for _, engine := range []string{bandana.CacheEngineLRU, bandana.CacheEngineArena} {
			t.Run(backend+"/"+engine, func(t *testing.T) {
				runGoldenQuickstart(t, backend, engine)
			})
		}
	}
}

func runGoldenQuickstart(t *testing.T, backend, engine string) {
	profiles := bandana.DefaultProfiles(0.001)[:2]
	workload := bandana.GenerateWorkload(profiles, 1200)
	tables := make([]*bandana.Table, len(profiles))
	for i, p := range profiles {
		g := bandana.GenerateTable(p.Name, bandana.TableGenerateOptions{
			NumVectors:  p.NumVectors,
			Dim:         64,
			NumClusters: p.NumVectors / 64,
			Seed:        int64(i),
			Assignments: workload.Communities[i],
		})
		tables[i] = g.Table
	}
	cfg := bandana.Config{Tables: tables, DRAMBudgetVectors: 1200, Seed: 1, CacheEngine: engine}
	if backend == bandana.BackendFile {
		cfg.Backend = bandana.BackendFile
		cfg.DataDir = filepath.Join(t.TempDir(), "store")
	}
	// The CI matrix's scheduler-on leg replays the goldens through the
	// async I/O scheduler: single-threaded serving never coalesces, so the
	// hit ratios (and every counter) must be bit-for-bit unchanged.
	if v := os.Getenv("BANDANA_TEST_IOSCHED"); v == "on" || v == "1" {
		cfg.IOSched = bandana.IOSchedOptions{Enabled: true}
	}
	store, err := bandana.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	trains := make([]*bandana.Trace, len(workload.Traces))
	evals := make([]*bandana.Trace, len(workload.Traces))
	for i, tr := range workload.Traces {
		trains[i], evals[i] = tr.Split(0.6)
	}
	serve := func() []bandana.TableStats {
		store.ResetStats()
		for ti, tr := range evals {
			for _, q := range tr.Queries {
				if _, err := store.LookupBatch(ti, q); err != nil {
					t.Fatal(err)
				}
			}
		}
		return store.Stats()
	}

	const tol = 0.02
	checkHitRate := func(phase string, stats []bandana.TableStats, want []float64) {
		t.Helper()
		for i, w := range want {
			if got := stats[i].HitRate; math.Abs(got-w) > tol {
				t.Errorf("%s %s hit ratio = %.4f, want %.2f±%.2f", phase, stats[i].Name, got, w, tol)
			}
		}
	}

	baseline := serve()
	checkHitRate("baseline", baseline, []float64{0.54, 0.48})

	if _, err := store.Train(trains, bandana.TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	trained := serve()
	checkHitRate("trained", trained, []float64{0.58, 0.49})

	// Training must actually pay off: fewer NVM block reads for the same
	// workload on every table (the paper's effective-bandwidth win).
	for i := range trained {
		if trained[i].BlockReads >= baseline[i].BlockReads {
			t.Errorf("table %s: block reads did not improve (%d -> %d)",
				trained[i].Name, baseline[i].BlockReads, trained[i].BlockReads)
		}
		if !trained[i].Prefetching {
			t.Errorf("table %s: training did not enable prefetching", trained[i].Name)
		}
	}
}
