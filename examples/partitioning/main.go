// Partitioning: compare physical placement strategies for one table.
//
// This example reproduces, at example scale, the paper's §4.2 comparison:
// how much effective NVM bandwidth each placement strategy recovers on a
// high-locality embedding table — the original (ID) order, a random order,
// semantic K-means clustering of the embedding values, and supervised SHP
// partitioning of the lookup hypergraph.
//
// Run with:
//
//	go run ./examples/partitioning
package main

import (
	"fmt"
	"log"
	"time"

	"bandana"
)

func main() {
	const (
		numVectors = 16384
		dim        = 32
		requests   = 2500
	)
	// A high-locality profile (similar to the paper's table 2).
	profile := bandana.Profile{
		Name:               "demo",
		NumVectors:         numVectors,
		AvgLookups:         40,
		CompulsoryMissFrac: 0.05,
		Locality:           0.92,
		CommunitySize:      64,
		ReuseSkew:          3,
		Seed:               11,
	}
	full := bandana.GenerateTrace(profile, requests)
	train, eval := full.Split(0.6)

	// Embeddings whose geometry reflects the co-access communities.
	emb := bandana.GenerateTable("demo", bandana.TableGenerateOptions{
		NumVectors:    numVectors,
		Dim:           dim,
		NumClusters:   numVectors / 64,
		ClusterSpread: 0.12, // co-accessed vectors end up close in embedding space
		Seed:          3,
		Assignments:   bandana.CommunityAssignment(profile),
	}).Table

	type strategy struct {
		name   string
		layout *bandana.Layout
		took   time.Duration
	}
	var strategies []strategy

	// 1. Original (identity) order.
	strategies = append(strategies, strategy{"original (ID order)", bandana.IdentityLayout(numVectors, 32), 0})

	// 2. Semantic partitioning with K-means over the embedding values.
	start := time.Now()
	km, err := bandana.ClusterTable(emb, bandana.KMeansOptions{K: 256, MaxIters: 6, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	kmLayout, err := bandana.LayoutFromOrder(bandana.OrderByCluster(km.Assignments), 32)
	if err != nil {
		log.Fatal(err)
	}
	strategies = append(strategies, strategy{"K-means (256 clusters)", kmLayout, time.Since(start)})

	// 3. Supervised partitioning with SHP over the training queries.
	start = time.Now()
	shpRes, err := bandana.PartitionSHP(numVectors, train.Queries, bandana.SHPOptions{
		BlockVectors: 32, Iterations: 12, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	shpLayout, err := bandana.LayoutFromOrder(shpRes.Order, 32)
	if err != nil {
		log.Fatal(err)
	}
	strategies = append(strategies, strategy{"SHP (hypergraph)", shpLayout, time.Since(start)})

	// Evaluate each placement on held-out queries, with and without a
	// limited DRAM cache.
	counts := train.AccessCounts()
	cacheSize := numVectors / 50 // 2% of the table
	fmt.Printf("table: %d vectors, %d training queries, %d eval queries, cache %d vectors\n\n",
		numVectors, len(train.Queries), len(eval.Queries), cacheSize)
	fmt.Printf("%-24s %-12s %-26s %-26s\n", "placement", "build time", "unlimited-cache BW gain", "limited-cache BW gain")
	for _, s := range strategies {
		unlimited := bandana.FanoutGain(eval, s.layout)
		cmp := bandana.CompareToBaseline(eval, bandana.SimulationConfig{
			Layout:       s.layout,
			CacheVectors: cacheSize,
			Policy:       thresholdPolicy(counts, 5),
		})
		fmt.Printf("%-24s %-12s %-26s %-26s\n",
			s.name, s.took.Round(time.Millisecond),
			fmt.Sprintf("%+.0f%%", unlimited*100),
			fmt.Sprintf("%+.0f%%", cmp.EffectiveBandwidthIncrease*100))
	}
	fmt.Printf("\nSHP reduced the average query fanout from %.1f to %.1f blocks.\n",
		shpRes.InitialFanout, shpRes.FinalFanout)
}

// thresholdPolicy builds the access-count admission policy Bandana uses.
func thresholdPolicy(counts []uint32, t uint32) bandana.AdmissionPolicy {
	return bandana.NewThresholdAdmission(counts, t)
}
