// Capacityplanner: split a DRAM budget across embedding tables.
//
// The hit-rate curves produced by Bandana's miniature caches let a datacenter
// operator decide how much DRAM each embedding table deserves (§4.3.3 of the
// paper). This example builds the curves for the paper's 8 user-embedding
// tables, allocates a DRAM budget across them by greedy marginal utility,
// and compares the result with a naive even split.
//
// Run with:
//
//	go run ./examples/capacityplanner
package main

import (
	"fmt"
	"log"

	"bandana"
)

func main() {
	const (
		scale    = 0.002 // 20k/40k-vector tables
		requests = 2500
	)
	profiles := bandana.DefaultProfiles(scale)
	workload := bandana.GenerateWorkload(profiles, requests)

	// Build one hit-rate curve per table from (sampled) stack distances.
	demands := make([]bandana.TableDemand, len(profiles))
	var totalVectors int
	for i, tr := range workload.Traces {
		demands[i] = bandana.TableDemand{
			Name:       profiles[i].Name,
			HRC:        bandana.HitRateCurveOf(tr, 0.2),
			MaxVectors: tr.NumVectors,
			MinVectors: bandana.DefaultBlockVectors,
		}
		totalVectors += tr.NumVectors
	}

	// Sweep a few DRAM budgets (as a fraction of the total vector count).
	fmt.Printf("%-22s %-14s %-14s %-12s\n", "DRAM budget (vectors)", "greedy hits", "even-split hits", "improvement")
	for _, frac := range []float64{0.01, 0.02, 0.05} {
		budget := int(frac * float64(totalVectors))
		greedy, err := bandana.AllocateDRAM(demands, bandana.AllocateOptions{TotalVectors: budget})
		if err != nil {
			log.Fatal(err)
		}
		even := bandana.EvenSplitDRAM(demands, budget)
		improvement := 0.0
		if even.ExpectedHits > 0 {
			improvement = greedy.ExpectedHits/even.ExpectedHits - 1
		}
		fmt.Printf("%-22d %-14.0f %-14.0f %+.1f%%\n", budget, greedy.ExpectedHits, even.ExpectedHits, improvement*100)
	}

	// Show the per-table breakdown at the middle budget.
	budget := int(0.02 * float64(totalVectors))
	greedy, err := bandana.AllocateDRAM(demands, bandana.AllocateOptions{TotalVectors: budget})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-table allocation at a budget of %d vectors:\n", budget)
	fmt.Printf("  %-10s %-10s %-16s %-16s %-14s\n", "table", "vectors", "lookup share", "compulsory miss", "DRAM granted")
	shares := workload.LookupShares()
	for i, d := range demands {
		stats := workload.Traces[i].Stats()
		fmt.Printf("  %-10s %-10d %-16s %-16s %-14d\n",
			d.Name, stats.NumVectors,
			fmt.Sprintf("%.1f%%", shares[i]*100),
			fmt.Sprintf("%.1f%%", stats.CompulsoryMissFrac*100),
			greedy.Vectors[i])
	}
	fmt.Println("\ncacheable, high-traffic tables (low compulsory misses, high lookup share) receive the largest slices.")
}
