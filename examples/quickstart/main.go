// Quickstart: the smallest end-to-end use of the Bandana public API.
//
// It generates two small embedding tables and a synthetic lookup workload,
// opens a store backed by a simulated NVM device, serves the workload once
// with the untrained (baseline) configuration, trains placement + caching,
// serves the same workload again and prints the improvement.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bandana"
)

func main() {
	// 1. Describe two embedding tables (scaled-down versions of the paper's
	//    Table 1 profiles) and generate a synthetic workload for them.
	profiles := bandana.DefaultProfiles(0.001)[:2] // table1 and table2, 10k vectors each
	workload := bandana.GenerateWorkload(profiles, 1200)

	// 2. Generate the embedding tables themselves. Aligning the Gaussian
	//    mixture with the workload's co-access communities mirrors how real
	//    embeddings of co-accessed items end up similar.
	tables := make([]*bandana.Table, len(profiles))
	for i, p := range profiles {
		g := bandana.GenerateTable(p.Name, bandana.TableGenerateOptions{
			NumVectors:  p.NumVectors,
			Dim:         64, // 64 fp16 elements = 128 B vectors
			NumClusters: p.NumVectors / 64,
			Seed:        int64(i),
			Assignments: workload.Communities[i],
		})
		tables[i] = g.Table
	}

	// 3. Open the store. Without training it behaves like the baseline
	//    policy: vectors in ID order on NVM, LRU caches, no prefetching.
	store, err := bandana.Open(bandana.Config{
		Tables:            tables,
		DRAMBudgetVectors: 1200, // ~6% of the vectors fit in DRAM
		Seed:              1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Split each trace into a training prefix and an evaluation suffix.
	trains := make([]*bandana.Trace, len(workload.Traces))
	evals := make([]*bandana.Trace, len(workload.Traces))
	for i, tr := range workload.Traces {
		trains[i], evals[i] = tr.Split(0.6)
	}

	serve := func() []bandana.TableStats {
		store.ResetStats()
		for ti, tr := range evals {
			for _, q := range tr.Queries {
				if _, err := store.LookupBatch(ti, q); err != nil {
					log.Fatal(err)
				}
			}
		}
		return store.Stats()
	}

	fmt.Println("== baseline (untrained) ==")
	baseline := serve()
	printStats(baseline)

	// 4. Train: SHP placement, DRAM allocation, miniature-cache threshold
	//    tuning. Then serve the same workload again.
	report, err := store.Train(trains, bandana.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== training decisions ==")
	for _, tr := range report.Tables {
		fmt.Printf("  %-8s fanout %.1f -> %.1f, cache %d vectors, admission threshold %d\n",
			tr.Name, tr.InitialFanout, tr.FinalFanout, tr.CacheVectors, tr.Threshold)
	}

	fmt.Println("\n== after training ==")
	trained := serve()
	printStats(trained)

	fmt.Println("\n== improvement ==")
	for i := range trained {
		if trained[i].BlockReads == 0 {
			continue
		}
		gain := float64(baseline[i].BlockReads)/float64(trained[i].BlockReads) - 1
		fmt.Printf("  %-8s NVM block reads %d -> %d (effective bandwidth %+.0f%%)\n",
			trained[i].Name, baseline[i].BlockReads, trained[i].BlockReads, gain*100)
	}
}

func printStats(stats []bandana.TableStats) {
	for _, st := range stats {
		fmt.Printf("  %-8s lookups=%-7d hitRate=%.2f blockReads=%-7d effBW=%.1f%% p99Latency=%.0fus\n",
			st.Name, st.Lookups, st.HitRate, st.BlockReads, st.EffectiveBandwidth*100, st.Latency.P99)
	}
}
