// Recommender: a simulated post-ranking service on top of the Bandana store.
//
// The paper's motivating workload is Facebook's post recommendation system:
// for every request, the service reads the user's embeddings (many lookups
// across several user-embedding tables), combines them into a user vector,
// scores a set of candidate posts by dot product and returns the top posts.
// User embeddings live on NVM behind Bandana; post embeddings (read far more
// often) stay in DRAM, exactly as the paper describes.
//
// Run with:
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"bandana"
)

const (
	dim           = 64
	numPosts      = 2000
	candidatesPer = 100
	topK          = 5
	numRequests   = 400
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// User embedding tables served from NVM via Bandana.
	profiles := bandana.DefaultProfiles(0.001)[:3]
	workload := bandana.GenerateWorkload(profiles, 1500)
	userTables := make([]*bandana.Table, len(profiles))
	for i, p := range profiles {
		g := bandana.GenerateTable(p.Name, bandana.TableGenerateOptions{
			NumVectors:  p.NumVectors,
			Dim:         dim,
			NumClusters: p.NumVectors / 64,
			Seed:        int64(i + 1),
			Assignments: workload.Communities[i],
		})
		userTables[i] = g.Table
	}
	store, err := bandana.Open(bandana.Config{Tables: userTables, DRAMBudgetVectors: 2000, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Train placement and caching from the first part of the workload.
	trains := make([]*bandana.Trace, len(workload.Traces))
	evals := make([]*bandana.Trace, len(workload.Traces))
	for i, tr := range workload.Traces {
		trains[i], evals[i] = tr.Split(0.6)
	}
	if _, err := store.Train(trains, bandana.TrainOptions{}); err != nil {
		log.Fatal(err)
	}

	// Post embeddings: DRAM-resident (they are read ~20x more often than
	// user embeddings and have a much longer ranking pipeline).
	posts := bandana.GenerateTable("posts", bandana.TableGenerateOptions{
		NumVectors: numPosts, Dim: dim, NumClusters: 50, Seed: 99,
	}).Table

	// Serve ranking requests: each request reads its user embeddings
	// through Bandana, averages them into a user vector, and scores random
	// candidate posts.
	var served, ranked int
	var totalLatency time.Duration
	for reqIdx := 0; reqIdx < numRequests && reqIdx < len(evals[0].Queries); reqIdx++ {
		start := time.Now()
		user := make([]float32, dim)
		var lookups int
		req := make(bandana.Request, len(evals))
		for ti := range evals {
			if reqIdx < len(evals[ti].Queries) {
				req[ti] = evals[ti].Queries[reqIdx]
			}
		}
		vecsByTable, err := store.ServeRequest(req)
		if err != nil {
			log.Fatal(err)
		}
		for _, vecs := range vecsByTable {
			for _, v := range vecs {
				for d := 0; d < dim; d++ {
					user[d] += v[d]
				}
				lookups++
			}
		}
		if lookups == 0 {
			continue
		}
		for d := range user {
			user[d] /= float32(lookups)
		}

		// Score candidate posts by dot product with the user vector.
		type scored struct {
			post  uint32
			score float32
		}
		cands := make([]scored, candidatesPer)
		for c := range cands {
			post := uint32(rng.Intn(numPosts))
			pv, err := posts.Vector(post)
			if err != nil {
				log.Fatal(err)
			}
			var s float32
			for d := 0; d < dim; d++ {
				s += user[d] * pv[d]
			}
			cands[c] = scored{post, s}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
		ranked += topK
		served++
		totalLatency += time.Since(start)
	}

	stats := store.Stats()
	fmt.Printf("served %d ranking requests (%d posts ranked), avg host latency %.2f ms\n",
		served, ranked, float64(totalLatency.Microseconds())/float64(served)/1000)
	fmt.Println("\nuser embedding store (NVM-backed):")
	for _, st := range stats {
		fmt.Printf("  %-8s lookups=%-6d hitRate=%.2f blockReads=%-6d prefetchHits=%-5d effBW=%.1f%% meanNVMlat=%.0fus\n",
			st.Name, st.Lookups, st.HitRate, st.BlockReads, st.PrefetchHits, st.EffectiveBandwidth*100, st.Latency.Mean)
	}
	dev := store.DeviceStats()
	fmt.Printf("\nNVM device: %d block reads (%.1f MB), %d block writes, drive writes so far %.3f (endurance budget %.0f/day)\n",
		dev.BlocksRead, float64(dev.BytesRead)/1e6, dev.BlocksWritten, dev.DriveWrites, dev.EnduranceDWPD)
}
