package bandana_test

import (
	"testing"

	"bandana"
)

// TestAnalysisToolkit exercises the exported analysis surface (partitioning,
// hit-rate curves, DRAM allocation, cache simulation) the way the
// capacity-planner and partitioning examples do.
func TestAnalysisToolkit(t *testing.T) {
	profile := bandana.Profile{
		Name:               "toolkit",
		NumVectors:         4096,
		AvgLookups:         24,
		CompulsoryMissFrac: 0.08,
		Locality:           0.9,
		CommunitySize:      64,
		ReuseSkew:          3,
		Seed:               5,
	}
	full := bandana.GenerateTrace(profile, 1200)
	train, eval := full.Split(0.6)

	// SHP partitioning through the public API.
	res, err := bandana.PartitionSHP(profile.NumVectors, train.Queries, bandana.SHPOptions{
		BlockVectors: 32, Iterations: 6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalFanout > res.InitialFanout {
		t.Fatalf("SHP should not increase fanout (%.2f -> %.2f)", res.InitialFanout, res.FinalFanout)
	}
	shpLayout, err := bandana.LayoutFromOrder(res.Order, 32)
	if err != nil {
		t.Fatal(err)
	}
	idLayout := bandana.IdentityLayout(profile.NumVectors, 32)
	if bandana.FanoutGain(eval, shpLayout) <= bandana.FanoutGain(eval, idLayout) {
		t.Fatal("SHP layout should beat the identity layout on held-out queries")
	}

	// K-means partitioning of a community-aligned table.
	emb := bandana.GenerateTable("toolkit", bandana.TableGenerateOptions{
		NumVectors:    profile.NumVectors,
		Dim:           16,
		NumClusters:   profile.NumVectors / 64,
		ClusterSpread: 0.12,
		Seed:          2,
		Assignments:   bandana.CommunityAssignment(profile),
	}).Table
	km, err := bandana.ClusterTable(emb, bandana.KMeansOptions{K: 64, MaxIters: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	kmLayout, err := bandana.LayoutFromOrder(bandana.OrderByCluster(km.Assignments), 32)
	if err != nil {
		t.Fatal(err)
	}
	if bandana.FanoutGain(eval, kmLayout) <= 0 {
		t.Fatal("K-means layout on community-aligned embeddings should have positive fanout gain")
	}

	// Hit-rate curves and DRAM allocation.
	hrc := bandana.HitRateCurveOf(train, 1.0)
	if hrc.HitRate(profile.NumVectors) <= 0 || hrc.HitRate(profile.NumVectors) > 1 {
		t.Fatalf("implausible hit rate %g", hrc.HitRate(profile.NumVectors))
	}
	allocRes, err := bandana.AllocateDRAM([]bandana.TableDemand{
		{Name: "toolkit", HRC: hrc, MaxVectors: profile.NumVectors},
	}, bandana.AllocateOptions{TotalVectors: 256})
	if err != nil {
		t.Fatal(err)
	}
	if allocRes.Vectors[0] != 256 {
		t.Fatalf("single-table allocation should use the whole budget, got %d", allocRes.Vectors[0])
	}
	even := bandana.EvenSplitDRAM([]bandana.TableDemand{{Name: "toolkit", HRC: hrc}}, 256)
	if even.Vectors[0] != 256 {
		t.Fatalf("even split wrong: %d", even.Vectors[0])
	}

	// Cache simulation with the admission policy family.
	counts := train.AccessCounts()
	for _, policy := range []bandana.AdmissionPolicy{
		bandana.NewNoPrefetch(),
		bandana.NewAlwaysAdmit(0.5),
		bandana.NewShadowAdmission(512, 0),
		bandana.NewThresholdAdmission(counts, 3),
	} {
		simRes := bandana.SimulateCache(eval, bandana.SimulationConfig{
			Layout:       shpLayout,
			CacheVectors: 256,
			Policy:       policy,
		})
		if simRes.Lookups == 0 || simRes.BlockReads == 0 {
			t.Fatalf("policy %s produced no traffic", policy.Name())
		}
	}
	cmp := bandana.CompareToBaseline(eval, bandana.SimulationConfig{
		Layout:       shpLayout,
		CacheVectors: 256,
		Policy:       bandana.NewThresholdAdmission(counts, 3),
	})
	if cmp.Baseline.BlockReads == 0 || cmp.Policy.BlockReads == 0 {
		t.Fatal("comparison missing block read counts")
	}
}

func TestPublicConstantsAnalysis(t *testing.T) {
	if bandana.DefaultBlockVectors != 32 {
		t.Fatalf("DefaultBlockVectors = %d", bandana.DefaultBlockVectors)
	}
}
