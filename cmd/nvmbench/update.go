package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"bandana/internal/core"
	"bandana/internal/fp16"
	"bandana/internal/nvm"
	"bandana/internal/table"
)

// updateLeg is one side of the update sweep: the same update stream applied
// through one write path.
type updateLeg struct {
	Path          string  `json:"path"` // "journaled-rmw" or "delta-log"
	Updates       int     `json:"updates"`
	UpdatesPerSec float64 `json:"updatesPerSec"`
	MeanLatencyUS float64 `json:"meanLatencyUS"`
	// JournalWrites is the number of write-ahead ring-journal records the
	// block file absorbed (the journaled path pays one one-page patch
	// record per update plus the sub-block overwrite; the delta path pays
	// none until compaction).
	JournalWrites int64 `json:"journalWrites"`
	// BytesWritten is the leg's total write volume: device-level data
	// traffic plus ring-journal appends plus bytes appended to the delta
	// update log. The journaled path is journal pages plus patch bytes; the
	// delta path is (until a compaction triggers) all log appends — so this
	// is the column that shows the write-amplification gap, not just the
	// block counters.
	BytesWritten int64 `json:"bytesWritten"`
}

// updateSweepResult is the --mode update-sweep section of the JSON artifact.
type updateSweepResult struct {
	Tables     int `json:"tables"`
	Vectors    int `json:"vectorsPerTable"`
	Dim        int `json:"dim"`
	Concurrent int `json:"concurrentWriters"`
	// Distribution of updated ids. Embedding updates follow the same skew
	// as lookups (hot users are retrained most often), so the stream is
	// Zipf-distributed — the access pattern the paper's traces exhibit.
	Distribution string    `json:"distribution"`
	Journaled    updateLeg `json:"journaled"`
	DeltaLog     updateLeg `json:"deltaLog"`
	// Speedup is delta-log updates/sec over journaled-RMW updates/sec.
	Speedup float64 `json:"speedup"`
	// ByteIdentical records that both legs served bit-identical vectors for
	// a sampled id sweep after the stream (the sweep aborts if not).
	ByteIdentical bool `json:"byteIdentical"`
}

type updateSweepOptions struct {
	DataDir string
	Sync    string
	Direct  bool // O_DIRECT block files (auto-fallback where unsupported)
	Seed    int64
	Updates int // total updates per leg
	Jobs    int // concurrent writer goroutines
}

const (
	updateSweepTables  = 4
	updateSweepVectors = 16384
	updateSweepDim     = 64
	// updateSweepZipfS skews the update stream: embedding tables see hot
	// ids retrained far more often than the tail, mirroring the lookup
	// skew in the paper's traces.
	updateSweepZipfS = 1.07
)

// runUpdateSweep applies the identical update stream to two file-backed
// stores — update log off (journaled block read-modify-write) and on
// (append-only delta log) — and reports updates/sec, write amplification
// and the speedup. Both stores must end up serving bit-identical vectors.
func runUpdateSweep(opts updateSweepOptions) (*updateSweepResult, error) {
	if opts.Updates <= 0 {
		opts.Updates = 20000
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 4
	}
	syncMode, err := nvm.ParseSyncMode(opts.Sync)
	if err != nil {
		return nil, err
	}
	dir := opts.DataDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "nvmbench-update-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	res := &updateSweepResult{
		Tables: updateSweepTables, Vectors: updateSweepVectors, Dim: updateSweepDim,
		Concurrent:   opts.Jobs,
		Distribution: fmt.Sprintf("zipf(%.2f) per-writer span", updateSweepZipfS),
	}
	stores := make([]*core.Store, 2)
	for i, enabled := range []bool{false, true} {
		tables := make([]*table.Table, updateSweepTables)
		for t := range tables {
			g := table.Generate(fmt.Sprintf("emb-%d", t), table.GenerateOptions{
				NumVectors: updateSweepVectors, Dim: updateSweepDim, NumClusters: 64,
				Seed: opts.Seed + int64(t),
			})
			tables[t] = g.Table
		}
		s, err := core.Open(core.Config{
			Tables:            tables,
			DRAMBudgetVectors: 256,
			Seed:              opts.Seed,
			Backend:           core.BackendFile,
			DataDir:           filepath.Join(dir, fmt.Sprintf("leg-%d", i)),
			Sync:              syncMode,
			Direct:            opts.Direct,
			UpdateLog:         core.UpdateLogOptions{Enabled: enabled},
		})
		if err != nil {
			return nil, err
		}
		defer s.Close()
		stores[i] = s
	}

	legs := []*updateLeg{&res.Journaled, &res.DeltaLog}
	for i, s := range stores {
		leg, err := measureUpdateLeg(s, opts.Updates, opts.Jobs, opts.Seed)
		if err != nil {
			return nil, err
		}
		*legs[i] = leg
		// Settle before the next leg: the journaled leg leaves hundreds of
		// megabytes of dirty pages, and kernel writeback throttling would
		// otherwise bleed into the next leg's timed window.
		syscall.Sync()
	}
	res.Journaled.Path = "journaled-rmw"
	res.DeltaLog.Path = "delta-log"
	if res.Journaled.UpdatesPerSec > 0 {
		res.Speedup = res.DeltaLog.UpdatesPerSec / res.Journaled.UpdatesPerSec
	}

	// Equivalence: both write paths must leave the stores serving the same
	// bytes (the streams were identical).
	for t := 0; t < updateSweepTables; t++ {
		for id := uint32(0); id < updateSweepVectors; id += 53 {
			a, err := stores[0].Lookup(t, id)
			if err != nil {
				return nil, err
			}
			b, err := stores[1].Lookup(t, id)
			if err != nil {
				return nil, err
			}
			for k := range a {
				if math.Float32bits(a[k]) != math.Float32bits(b[k]) {
					return nil, fmt.Errorf("table %d id %d elem %d: journaled %g != delta-log %g (write paths diverged)",
						t, id, k, a[k], b[k])
				}
			}
		}
	}
	res.ByteIdentical = true
	return res, nil
}

// measureUpdateLeg drives `updates` UpdateVectorRaw calls across `jobs`
// concurrent writers — the binary wire protocol's write path, fp16 end to
// end, so the sweep measures the store's commit path rather than harness
// work (payloads and the Zipf id stream are both precomputed outside the
// timed window). The (table, id) space is flattened and split into disjoint
// per-writer spans, and per-id payloads depend only on (table, id), so the
// final image is the same regardless of interleaving — that is what makes
// the two legs comparable bit for bit. Spreading writers across tables
// matches the serving workload (a store hosts many embedding tables) and
// exercises the per-table update paths concurrently.
func measureUpdateLeg(s *core.Store, updates, jobs int, seed int64) (updateLeg, error) {
	perWorker := updates / jobs
	if perWorker == 0 {
		perWorker = 1
	}
	total := perWorker * jobs
	span := updateSweepTables * updateSweepVectors / jobs

	payloads := make([][]byte, updateSweepTables*updateSweepVectors)
	vec := make([]float32, updateSweepDim)
	for flat := range payloads {
		tbl := flat / updateSweepVectors
		id := uint32(flat % updateSweepVectors)
		for d := range vec {
			vec[d] = float32((uint32(tbl)*31+id)%1021) + float32(d%9)*0.25
		}
		payloads[flat] = fp16.EncodeSlice(make([]byte, 0, updateSweepDim*2), vec)
	}
	// Deterministic per writer: both legs replay the same id streams.
	streams := make([][]int, jobs)
	for w := range streams {
		rng := rand.New(rand.NewSource(seed + int64(w)*104729))
		zipf := rand.NewZipf(rng, updateSweepZipfS, 1, uint64(span-1))
		ids := make([]int, perWorker)
		for r := range ids {
			ids[r] = w*span + int(zipf.Uint64())
		}
		streams[w] = ids
	}
	before := s.DeviceStats()
	beforeLog := s.UpdateLogStats()

	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, flat := range streams[w] {
				tbl := flat / updateSweepVectors
				id := uint32(flat % updateSweepVectors)
				if err := s.UpdateVectorRaw(tbl, id, payloads[flat]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return updateLeg{}, firstErr
	}
	after := s.DeviceStats()
	afterLog := s.UpdateLogStats()
	return updateLeg{
		Updates:       total,
		UpdatesPerSec: float64(total) / elapsed.Seconds(),
		MeanLatencyUS: elapsed.Seconds() * float64(jobs) / float64(total) * 1e6,
		JournalWrites: after.Store.JournalWrites - before.Store.JournalWrites,
		BytesWritten: (after.BytesWritten - before.BytesWritten) +
			(after.Store.JournalBytesAppended - before.Store.JournalBytesAppended) +
			(afterLog.BytesAppended - beforeLog.BytesAppended),
	}, nil
}
