package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"bandana/internal/core"
	"bandana/internal/nvm"
	"bandana/internal/server"
	"bandana/internal/table"
	"bandana/internal/wire"
)

// servePoint is one (transport, batch size) measurement of the serve sweep.
type servePoint struct {
	Transport          string  `json:"transport"` // local, bwp or http
	Batch              int     `json:"batch"`
	Requests           int     `json:"requests"`
	VectorsPerSec      float64 `json:"vectorsPerSec"`
	MeanBatchLatencyUS float64 `json:"meanBatchLatencyUS"`
	P90BatchLatencyUS  float64 `json:"p90BatchLatencyUS"`
	P99BatchLatencyUS  float64 `json:"p99BatchLatencyUS"`
	P999BatchLatencyUS float64 `json:"p999BatchLatencyUS"`
	// AllocsPerOp is process-wide heap allocations per batch over the
	// measurement window (clients + server side for the loopback
	// transports).
	AllocsPerOp float64 `json:"allocsPerOp"`
	// GCPauseP99US is the p99 GC stop-the-world pause observed during the
	// measurement window; 0 when no GC cycle ran.
	GCPauseP99US float64 `json:"gcPauseP99US"`
}

// serveSweepResult is the --mode serve-sweep section of the JSON artifact.
type serveSweepResult struct {
	Table      string `json:"table"`
	Vectors    int    `json:"vectors"`
	Dim        int    `json:"dim"`
	Concurrent int    `json:"concurrentClients"`
	// ByteIdentical records the pinned equivalence property: every sampled
	// vector decoded off the wire matched the local float path bit for bit
	// (the sweep aborts if not).
	ByteIdentical bool         `json:"byteIdentical"`
	Points        []servePoint `json:"points"`
	// BwpSpeedupAtBatch64 is bwp throughput / HTTP JSON throughput at batch
	// size 64 (the paper's production batch shape).
	BwpSpeedupAtBatch64 float64 `json:"bwpSpeedupAtBatch64"`
}

type serveSweepOptions struct {
	Backend  string
	DataDir  string
	Sync     string
	Seed     int64
	Requests int // batches measured per (transport, batch size) point
	Jobs     int // concurrent client goroutines
}

var serveSweepBatches = []int{8, 64, 256}

const (
	serveSweepVectors = 8192
	serveSweepDim     = 64 // the paper's production vector shape (fp16 x 64)
	serveSweepTable   = "emb"
)

// runServeSweep measures end-to-end serving throughput of the three lookup
// paths — in-process, bwp over TCP, JSON over HTTP — against one warmed
// store, after pinning that all three return bit-identical vectors.
func runServeSweep(opts serveSweepOptions) (*serveSweepResult, error) {
	if opts.Requests <= 0 {
		opts.Requests = 500
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 4
	}

	g := table.Generate(serveSweepTable, table.GenerateOptions{
		NumVectors: serveSweepVectors, Dim: serveSweepDim, NumClusters: 64, Seed: opts.Seed,
	})
	cfg := core.Config{
		Tables: []*table.Table{g.Table},
		// Cache everything: the sweep measures the serving transports, not
		// the NVM miss path (qd-sweep covers that).
		DRAMBudgetVectors: serveSweepVectors,
		Seed:              opts.Seed,
	}
	if opts.Backend == core.BackendFile {
		cfg.Backend = core.BackendFile
		dir := opts.DataDir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "nvmbench-serve-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
		}
		cfg.DataDir = filepath.Join(dir, "serve-store")
		syncMode, err := nvm.ParseSyncMode(opts.Sync)
		if err != nil {
			return nil, err
		}
		cfg.Sync = syncMode
	}
	store, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	defer store.Close()

	srv := server.New(store)
	wireLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer wireLn.Close()
	go srv.ServeWire(wireLn)
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(httpLn)
	defer httpSrv.Close()
	httpURL := "http://" + httpLn.Addr().String()

	// Warm the cache (and its raw fp16 views) over the full id space so
	// every transport serves DRAM hits.
	warm := make([]uint32, 256)
	for base := uint32(0); base < serveSweepVectors; base += uint32(len(warm)) {
		for i := range warm {
			warm[i] = base + uint32(i)
		}
		if _, err := store.LookupBatchRaw(0, warm); err != nil {
			return nil, err
		}
	}

	wc, err := wire.Dial(wireLn.Addr().String(), wire.Options{DialTimeout: 5 * time.Second})
	if err != nil {
		return nil, err
	}
	defer wc.Close()
	ctx := context.Background()
	httpc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: opts.Jobs}}

	local := func(ids []uint32) ([][]float32, error) { return store.LookupBatch(0, ids) }
	bwp := func(ids []uint32) ([][]float32, error) { return wc.LookupBatchF32(ctx, serveSweepTable, ids) }
	httpJSON := func(ids []uint32) ([][]float32, error) {
		body, err := json.Marshal(map[string]any{"table": serveSweepTable, "ids": ids})
		if err != nil {
			return nil, err
		}
		resp, err := httpc.Post(httpURL+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("/v1/batch: %s", resp.Status)
		}
		var out struct {
			Vectors [][]float32 `json:"vectors"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, err
		}
		return out.Vectors, nil
	}

	// Pin the equivalence property before timing anything: the three paths
	// must serve bit-identical float32s for the same ids.
	rng := rand.New(rand.NewSource(opts.Seed))
	for round := 0; round < 8; round++ {
		ids := make([]uint32, 64)
		for i := range ids {
			ids[i] = uint32(rng.Intn(serveSweepVectors))
		}
		want, err := local(ids)
		if err != nil {
			return nil, err
		}
		for _, path := range []struct {
			name string
			fn   func([]uint32) ([][]float32, error)
		}{{"bwp", bwp}, {"http", httpJSON}} {
			got, err := path.fn(ids)
			if err != nil {
				return nil, fmt.Errorf("%s equivalence batch: %w", path.name, err)
			}
			for i := range ids {
				if len(got[i]) != len(want[i]) {
					return nil, fmt.Errorf("%s: id %d came back with dim %d, want %d", path.name, ids[i], len(got[i]), len(want[i]))
				}
				for k := range want[i] {
					if math.Float32bits(got[i][k]) != math.Float32bits(want[i][k]) {
						return nil, fmt.Errorf("%s: id %d elem %d = %g, local path %g (not byte-identical)",
							path.name, ids[i], k, got[i][k], want[i][k])
					}
				}
			}
		}
	}

	res := &serveSweepResult{
		Table: serveSweepTable, Vectors: serveSweepVectors, Dim: serveSweepDim,
		Concurrent: opts.Jobs, ByteIdentical: true,
	}
	transports := []struct {
		name string
		fn   func([]uint32) ([][]float32, error)
	}{{"local", local}, {"bwp", bwp}, {"http", httpJSON}}
	perf := make([][]float64, len(transports)) // vectors/sec by [transport][batch]
	for i := range perf {
		perf[i] = make([]float64, len(serveSweepBatches))
	}
	for ti, tr := range transports {
		for bi, batch := range serveSweepBatches {
			point, err := measureServePoint(tr.fn, batch, opts.Requests, opts.Jobs, opts.Seed)
			if err != nil {
				return nil, fmt.Errorf("%s batch %d: %w", tr.name, batch, err)
			}
			point.Transport = tr.name
			res.Points = append(res.Points, point)
			perf[ti][bi] = point.VectorsPerSec
		}
	}
	for bi, batch := range serveSweepBatches {
		if batch == 64 && perf[2][bi] > 0 {
			res.BwpSpeedupAtBatch64 = perf[1][bi] / perf[2][bi]
		}
	}
	return res, nil
}

// measureServePoint times `requests` batches of size `batch` across `jobs`
// concurrent clients and reports throughput and batch latency.
func measureServePoint(fn func([]uint32) ([][]float32, error), batch, requests, jobs int, seed int64) (servePoint, error) {
	perWorker := requests / jobs
	if perWorker == 0 {
		perWorker = 1
	}
	total := perWorker * jobs

	var mu sync.Mutex
	latencies := make([]float64, 0, total)
	var firstErr error
	var wg sync.WaitGroup
	pauses0 := readGCPauses()
	mallocs0 := readMallocs()
	start := time.Now()
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			ids := make([]uint32, batch)
			local := make([]float64, 0, perWorker)
			for r := 0; r < perWorker; r++ {
				for i := range ids {
					ids[i] = uint32(rng.Intn(serveSweepVectors))
				}
				t0 := time.Now()
				vecs, err := fn(ids)
				if err == nil && len(vecs) != batch {
					err = fmt.Errorf("got %d vectors for %d ids", len(vecs), batch)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, float64(time.Since(t0).Nanoseconds())/1e3)
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	mallocs1 := readMallocs()
	pauses1 := readGCPauses()
	if firstErr != nil {
		return servePoint{}, firstErr
	}

	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	p := servePoint{
		Batch:         batch,
		Requests:      total,
		VectorsPerSec: float64(total*batch) / elapsed.Seconds(),
		AllocsPerOp:   float64(mallocs1-mallocs0) / float64(total),
		GCPauseP99US:  gcPauseP99US(pauses0, pauses1),
	}
	if len(latencies) > 0 {
		p.MeanBatchLatencyUS = sum / float64(len(latencies))
		p.P90BatchLatencyUS = latencies[(len(latencies)*90)/100]
		p.P99BatchLatencyUS = latencies[(len(latencies)*99)/100]
		p.P999BatchLatencyUS = latencies[(len(latencies)*999)/1000]
	}
	return p, nil
}
