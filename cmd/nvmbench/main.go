// Command nvmbench runs Fio-style micro-benchmarks against the simulated NVM
// device: a queue-depth sweep of 4 KB random reads (the paper's Figure 2),
// a latency-vs-throughput curve for the baseline 128 B-per-block policy
// versus full 4 KB reads (Figure 5), and a miss-path sweep that drives the
// async I/O scheduler (internal/iosched) at a range of target queue depths
// to show what batching buys the serving path.
//
// Usage:
//
//	nvmbench --mode qd                  # raw-device queue depth sweep (Figure 2)
//	nvmbench --mode load --vector 128   # latency vs load (Figure 5)
//	nvmbench --mode qd-sweep            # scheduler miss-path sweep at QD 1/4/8/16/32
//	nvmbench --mode qd-sweep --io-qd 8  # single depth instead of the sweep
//	nvmbench --mode qd-sweep --io-coalesce=false --backend file
//	nvmbench --mode serve-sweep         # bwp vs HTTP/JSON serving throughput
//	nvmbench --mode update-sweep        # journaled-RMW vs delta-log vector updates/sec
//	nvmbench --mode qd --json out.json  # machine-readable results (CI artifacts)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"bandana/internal/core"
	"bandana/internal/iosched"
	"bandana/internal/nvm"
	"bandana/internal/version"
)

// jsonOutput is the machine-readable result file written by --json; CI
// uploads it as a BENCH_*.json artifact so the perf trajectory is recorded
// run over run.
type jsonOutput struct {
	Benchmark  string                       `json:"benchmark"`
	Mode       string                       `json:"mode"`
	Backend    string                       `json:"backend"`
	Blocks     int                          `json:"blocks"`
	Jobs       int                          `json:"jobs,omitempty"`
	Ops        int                          `json:"opsPerWorker,omitempty"`
	VectorSize int                          `json:"vectorBytes,omitempty"`
	Seed       int64                        `json:"seed"`
	Coalesce   bool                         `json:"coalesce"`
	QueueDepth []nvm.FioResult              `json:"queueDepthSweep,omitempty"`
	Baseline   []nvm.ThroughputLatencyPoint `json:"baselineCurve,omitempty"`
	FullBlock  []nvm.ThroughputLatencyPoint `json:"fullBlockCurve,omitempty"`
	// MissPathQDSweep is the scheduler-mediated sweep of --mode qd-sweep:
	// miss-path throughput (in simulated device time) per target queue
	// depth.
	MissPathQDSweep []iosched.SweepResult `json:"missPathQDSweep,omitempty"`
	// ServeSweep is the end-to-end serving comparison of --mode serve-sweep:
	// local vs bwp vs HTTP/JSON lookup throughput per batch size.
	ServeSweep *serveSweepResult `json:"serveSweep,omitempty"`
	// UpdateSweep is the write-path comparison of --mode update-sweep:
	// journaled block RMW vs append-only delta-log updates/sec.
	UpdateSweep *updateSweepResult `json:"updateSweep,omitempty"`
	// CacheSweep is the engine comparison of --mode cache-sweep: heap
	// bytes per cached vector, hit latency, allocs/op and GC pauses for
	// the lru vs vcache cache engines across population sizes.
	CacheSweep *cacheSweepResult `json:"cacheSweep,omitempty"`
}

// validateFlags rejects flag combinations before any backing store is
// created. ioQDSet/ioCoalesceSet report explicitly passed flags.
func validateFlags(mode string, ioQD int, ioQDSet, ioCoalesceSet, cacheEntriesSet bool) error {
	switch mode {
	case "qd", "load", "qd-sweep", "serve-sweep", "update-sweep", "cache-sweep":
	default:
		return fmt.Errorf("unknown mode %q (want qd, load, qd-sweep, serve-sweep, update-sweep or cache-sweep)", mode)
	}
	if mode != "qd-sweep" && (ioQDSet || ioCoalesceSet) {
		return fmt.Errorf("--io-qd/--io-coalesce configure the I/O scheduler and are only meaningful with --mode qd-sweep (mode %q drives the device directly)", mode)
	}
	if mode != "cache-sweep" && cacheEntriesSet {
		return fmt.Errorf("--cache-entries is only meaningful with --mode cache-sweep")
	}
	if ioQD < 0 || ioQD > iosched.MaxTargetQueueDepth {
		return fmt.Errorf("--io-qd %d out of range [0,%d]", ioQD, iosched.MaxTargetQueueDepth)
	}
	return nil
}

// parseCacheEntries parses the --cache-entries list ("1000000,4000000").
func parseCacheEntries(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("--cache-entries: bad population %q (want positive integers, comma-separated)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("--cache-entries: empty population list")
	}
	return out, nil
}

// sanitizeCurve replaces non-finite latencies (saturated points) with -1 so
// the curve survives JSON encoding.
func sanitizeCurve(pts []nvm.ThroughputLatencyPoint) []nvm.ThroughputLatencyPoint {
	out := make([]nvm.ThroughputLatencyPoint, len(pts))
	for i, p := range pts {
		if math.IsInf(p.MeanLatencyUS, 0) || math.IsNaN(p.MeanLatencyUS) {
			p.MeanLatencyUS = -1
		}
		if math.IsInf(p.P99LatencyUS, 0) || math.IsNaN(p.P99LatencyUS) {
			p.P99LatencyUS = -1
		}
		out[i] = p
	}
	return out
}

func writeJSONFile(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func main() {
	var (
		mode        = flag.String("mode", "qd", "benchmark mode: qd (raw-device queue depth sweep), load (latency vs throughput), qd-sweep (scheduler miss-path sweep), serve-sweep (bwp vs HTTP/JSON serving) or update-sweep (journaled-RMW vs delta-log updates)")
		jobs        = flag.Int("jobs", 4, "concurrent jobs (qd and serve-sweep modes)")
		ops         = flag.Int("ops", 500, "reads per worker (qd, qd-sweep and serve-sweep modes)")
		blocks      = flag.Int("blocks", 8192, "device size in 4 KB blocks")
		vectorSize  = flag.Int("vector", 128, "vector size in bytes (load mode baseline)")
		seed        = flag.Int64("seed", 1, "random seed")
		backend     = flag.String("backend", "mem", "block store backend: mem or file")
		dataDir     = flag.String("data-dir", "", "directory for the file backend's block file (default: temp dir)")
		syncStr     = flag.String("sync", "none", "file backend durability: none, periodic or always")
		direct      = flag.Bool("direct", false, "open block files with O_DIRECT (file backend and update-sweep; falls back to buffered I/O where unsupported)")
		ioQD        = flag.Int("io-qd", 0, "qd-sweep: measure this single target queue depth instead of the 1/4/8/16/32 sweep")
		ioCoalesce  = flag.Bool("io-coalesce", true, "qd-sweep: coalesce concurrent reads of the same block")
		cacheSizes  = flag.String("cache-entries", "1000000,4000000,16000000", "cache-sweep: comma-separated cache populations (entries)")
		jsonOut     = flag.String("json", "", "also write machine-readable results to this file")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	// Validate flags before creating any backing store, so a typo does not
	// leave a file store opened (and its temp dir leaked via os.Exit).
	flagSet := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { flagSet[f.Name] = true })
	if err := validateFlags(*mode, *ioQD, flagSet["io-qd"], flagSet["io-coalesce"], flagSet["cache-entries"]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// cache-sweep compares the DRAM cache engines in-process; no device or
	// store is involved.
	if *mode == "cache-sweep" {
		populations, err := parseCacheEntries(*cacheSizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		res, err := runCacheSweep(cacheSweepOptions{Populations: populations, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("cache engine sweep, dim %d (fp16, %d B payload), %d shards, %d uniform gets per point\n\n",
			res.Dim, res.SlotBytes, res.Shards, res.GetsPerPoint)
		fmt.Printf("%-10s %-10s %-18s %-12s %-12s %-16s %-14s\n",
			"engine", "entries", "heap bytes/entry", "hit ns/op", "allocs/op", "gc pause p99 (us)", "gc cycle (ms)")
		for _, p := range res.Points {
			for _, leg := range []cacheSweepLeg{p.LRU, p.Arena} {
				fmt.Printf("%-10s %-10d %-18.1f %-12.1f %-12.3f %-16.1f %-14.1f\n",
					leg.Engine, leg.Entries, leg.HeapBytesPerEntry, leg.HitNSOp,
					leg.AllocsPerOp, leg.GCPauseP99US, leg.GCCycleMS)
			}
			fmt.Printf("%-10s %-10d heap reduction %.2fx, hit speed %.2fx\n", "->", p.Entries, p.HeapReduction, p.HitSpeedRatio)
		}
		if *jsonOut != "" {
			out := jsonOutput{
				Benchmark: "nvmbench", Mode: *mode, Backend: "none",
				Seed: *seed, CacheSweep: res,
			}
			if err := writeJSONFile(*jsonOut, out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("\nresults written to %s\n", *jsonOut)
		}
		return
	}

	// serve-sweep benchmarks a full store behind the serving transports, not
	// the raw block device; it builds its own store and returns early.
	if *mode == "serve-sweep" {
		if *backend != core.BackendMem && *backend != core.BackendFile {
			fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backend)
			os.Exit(2)
		}
		res, err := runServeSweep(serveSweepOptions{
			Backend: *backend, DataDir: *dataDir, Sync: *syncStr,
			Seed: *seed, Requests: *ops, Jobs: *jobs,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("serving sweep, %s backend, %d vectors x dim %d (fp16), %d concurrent clients\n",
			*backend, res.Vectors, res.Dim, res.Concurrent)
		fmt.Printf("byte-identical across local/bwp/http: %v\n\n", res.ByteIdentical)
		fmt.Printf("%-10s %-8s %-10s %-16s %-20s %-18s %-18s\n",
			"transport", "batch", "requests", "vectors/sec", "mean batch lat (us)", "p99 batch lat (us)", "p999 batch lat (us)")
		for _, p := range res.Points {
			fmt.Printf("%-10s %-8d %-10d %-16.0f %-20.1f %-18.1f %-18.1f\n",
				p.Transport, p.Batch, p.Requests, p.VectorsPerSec, p.MeanBatchLatencyUS, p.P99BatchLatencyUS, p.P999BatchLatencyUS)
		}
		fmt.Printf("\nbwp speedup vs HTTP/JSON at batch 64: %.2fx\n", res.BwpSpeedupAtBatch64)
		if *jsonOut != "" {
			out := jsonOutput{
				Benchmark: "nvmbench", Mode: *mode, Backend: *backend,
				Jobs: *jobs, Ops: *ops, Seed: *seed, ServeSweep: res,
			}
			if err := writeJSONFile(*jsonOut, out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("results written to %s\n", *jsonOut)
		}
		return
	}

	// update-sweep compares the two vector-update write paths on the file
	// backend; like serve-sweep it owns its stores and returns early.
	if *mode == "update-sweep" {
		res, err := runUpdateSweep(updateSweepOptions{
			DataDir: *dataDir, Sync: *syncStr, Direct: *direct,
			Seed: *seed, Updates: *ops * 40, Jobs: *jobs,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("update sweep, file backend, %d tables x %d vectors, dim %d (fp16), %d concurrent writers\n",
			res.Tables, res.Vectors, res.Dim, res.Concurrent)
		fmt.Printf("byte-identical final images across both paths: %v\n\n", res.ByteIdentical)
		fmt.Printf("%-14s %-10s %-16s %-18s %-16s %-16s\n",
			"path", "updates", "updates/sec", "mean lat (us)", "journal writes", "bytes written")
		for _, leg := range []updateLeg{res.Journaled, res.DeltaLog} {
			fmt.Printf("%-14s %-10d %-16.0f %-18.2f %-16d %-16d\n",
				leg.Path, leg.Updates, leg.UpdatesPerSec, leg.MeanLatencyUS, leg.JournalWrites, leg.BytesWritten)
		}
		fmt.Printf("\ndelta-log speedup vs journaled RMW: %.2fx\n", res.Speedup)
		if *jsonOut != "" {
			out := jsonOutput{
				Benchmark: "nvmbench", Mode: *mode, Backend: core.BackendFile,
				Jobs: *jobs, Ops: *ops * 40, Seed: *seed, UpdateSweep: res,
			}
			if err := writeJSONFile(*jsonOut, out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("results written to %s\n", *jsonOut)
		}
		return
	}

	var store nvm.BlockStore
	switch *backend {
	case "mem":
		// nil lets NewDevice create a MemStore of the right size.
	case "file":
		syncMode, err := nvm.ParseSyncMode(*syncStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		dir := *dataDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "nvmbench-*")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer os.RemoveAll(dir)
		} else if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fs, _, err := nvm.OpenOrCreateFileStore(filepath.Join(dir, "bench-blocks.bnd"), *blocks,
			nvm.FileStoreOptions{Sync: syncMode, Direct: *direct})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *direct && !fs.DirectIO() {
			fmt.Fprintln(os.Stderr, "note: O_DIRECT not supported here; measuring buffered I/O")
		}
		store = fs
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backend)
		os.Exit(2)
	}

	device := nvm.NewDevice(nvm.DeviceConfig{NumBlocks: *blocks, Store: store, Seed: *seed})
	defer device.Close()

	out := jsonOutput{
		Benchmark: "nvmbench", Mode: *mode, Backend: *backend,
		Blocks: *blocks, Seed: *seed,
	}
	switch *mode {
	case "qd-sweep":
		depths := iosched.DefaultSweepDepths
		if *ioQD > 0 {
			depths = []int{*ioQD}
		}
		sweepOpts := iosched.SweepOptions{
			Depths:       depths,
			OpsPerWorker: *ops,
			NoCoalesce:   !*ioCoalesce,
			Seed:         *seed,
		}
		results, err := iosched.MissPathSweep(device, sweepOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out.Ops, out.Coalesce = *ops, *ioCoalesce
		out.MissPathQDSweep = results
		fmt.Printf("scheduler miss-path sweep, %s backend, coalesce=%v, device %s\n\n", *backend, *ioCoalesce, device)
		fmt.Printf("%-12s %-10s %-12s %-12s %-20s %-18s\n",
			"target qd", "workers", "reads", "avg batch", "mean batch lat (us)", "sim throughput (GB/s)")
		for _, r := range results {
			fmt.Printf("%-12d %-10d %-12d %-12.2f %-20.1f %-18.2f\n",
				r.TargetQueueDepth, r.Workers, r.Ops, r.AvgBatchSize, r.MeanBatchLatencyUS, r.SimThroughputGBs)
		}
	case "qd":
		fmt.Printf("4 KB random reads, %d jobs, device %s\n\n", *jobs, device)
		fmt.Printf("%-12s %-18s %-18s %-18s %-16s\n", "queue depth", "mean latency (us)", "p99 latency (us)", "p999 latency (us)", "bandwidth (GB/s)")
		out.Jobs, out.Ops = *jobs, *ops
		out.QueueDepth = nvm.QueueDepthSweep(device, *jobs, []int{1, 2, 4, 8}, *ops, *seed)
		for _, res := range out.QueueDepth {
			fmt.Printf("%-12d %-18.1f %-18.1f %-18.1f %-16.2f\n", res.QueueDepth, res.MeanLatencyUS, res.P99LatencyUS, res.P999LatencyUS, res.BandwidthGBs)
		}
	case "load":
		model := device.Model()
		frac := float64(*vectorSize) / float64(nvm.BlockSize)
		sweep := []float64{10, 25, 50, 70, 100, 250, 500, 1000, 1500, 2000, 2300}
		baseline := nvm.ThroughputLatencyCurve(model, frac, sweep)
		full := nvm.ThroughputLatencyCurve(model, 1.0, sweep)
		out.VectorSize = *vectorSize
		// Saturated points carry +Inf latencies, which JSON cannot encode;
		// -1 marks them in the artifact (Saturated is set alongside).
		out.Baseline, out.FullBlock = sanitizeCurve(baseline), sanitizeCurve(full)
		fmt.Printf("baseline = %d B useful per 4 KB block read (%.1f%% effective bandwidth)\n\n", *vectorSize, frac*100)
		fmt.Printf("%-22s %-20s %-20s %-20s %-20s\n",
			"app throughput (MB/s)", "baseline mean (us)", "baseline p99 (us)", "4KB-read mean (us)", "4KB-read p99 (us)")
		f := func(v float64, sat bool) string {
			if sat || math.IsInf(v, 1) {
				return "saturated"
			}
			return fmt.Sprintf("%.1f", v)
		}
		for i := range sweep {
			fmt.Printf("%-22.0f %-20s %-20s %-20s %-20s\n", sweep[i],
				f(baseline[i].MeanLatencyUS, baseline[i].Saturated),
				f(baseline[i].P99LatencyUS, baseline[i].Saturated),
				f(full[i].MeanLatencyUS, full[i].Saturated),
				f(full[i].P99LatencyUS, full[i].Saturated))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *jsonOut != "" {
		if err := writeJSONFile(*jsonOut, out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nresults written to %s\n", *jsonOut)
	}
}
