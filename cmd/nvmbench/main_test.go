package main

import (
	"strings"
	"testing"

	"bandana/internal/iosched"
)

// TestValidateFlags covers the flag error paths: unknown modes, scheduler
// flags applied to modes that drive the device directly, and out-of-range
// queue depths.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name            string
		mode            string
		ioQD            int
		ioQDSet         bool
		ioCoalesceSet   bool
		cacheEntriesSet bool
		wantErr         string
	}{
		{name: "qd default", mode: "qd"},
		{name: "load", mode: "load"},
		{name: "qd-sweep default", mode: "qd-sweep"},
		{name: "qd-sweep with depth", mode: "qd-sweep", ioQD: 8, ioQDSet: true},
		{name: "qd-sweep coalesce off", mode: "qd-sweep", ioCoalesceSet: true},
		{name: "cache-sweep default", mode: "cache-sweep"},
		{name: "cache-sweep with entries", mode: "cache-sweep", cacheEntriesSet: true},
		{name: "unknown mode", mode: "warp", wantErr: "unknown mode"},
		{name: "io-qd in qd mode", mode: "qd", ioQD: 8, ioQDSet: true, wantErr: "only meaningful with --mode qd-sweep"},
		{name: "io-coalesce in load mode", mode: "load", ioCoalesceSet: true, wantErr: "only meaningful with --mode qd-sweep"},
		{name: "cache-entries in qd mode", mode: "qd", cacheEntriesSet: true, wantErr: "only meaningful with --mode cache-sweep"},
		{name: "negative io-qd", mode: "qd-sweep", ioQD: -2, ioQDSet: true, wantErr: "out of range"},
		{name: "huge io-qd", mode: "qd-sweep", ioQD: iosched.MaxTargetQueueDepth + 1, ioQDSet: true, wantErr: "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.mode, tc.ioQD, tc.ioQDSet, tc.ioCoalesceSet, tc.cacheEntriesSet)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseCacheEntries(t *testing.T) {
	got, err := parseCacheEntries(" 1000, 4000000 ,16000000")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1000, 4000000, 16000000}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", ",", "0", "-5", "1e6", "abc"} {
		if _, err := parseCacheEntries(bad); err == nil {
			t.Errorf("parseCacheEntries(%q): expected error", bad)
		}
	}
}

// TestCacheSweepSmall runs the full cache-sweep measurement at a toy
// population so the measurement plumbing (heap accounting, GC pause
// histogram delta, alloc counting) stays exercised by `go test`.
func TestCacheSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("cache sweep runs millions of gets")
	}
	res, err := runCacheSweep(cacheSweepOptions{Populations: []int{20000}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("got %d points, want 1", len(res.Points))
	}
	p := res.Points[0]
	for _, leg := range []cacheSweepLeg{p.LRU, p.Arena} {
		if leg.HeapBytesPerEntry <= 0 {
			t.Errorf("%s: heap bytes/entry = %v, want > 0", leg.Engine, leg.HeapBytesPerEntry)
		}
		if leg.HitNSOp <= 0 {
			t.Errorf("%s: hit ns/op = %v, want > 0", leg.Engine, leg.HitNSOp)
		}
		// The hit path of both engines is allocation-free; the budget
		// tolerates incidental runtime allocations during the window.
		if leg.AllocsPerOp > 0.01 {
			t.Errorf("%s: allocs/op = %v, want ~0", leg.Engine, leg.AllocsPerOp)
		}
	}
	if p.HeapReduction < 1 {
		t.Errorf("heap reduction = %.2fx, want vcache smaller than lru", p.HeapReduction)
	}
}
