package main

import (
	"strings"
	"testing"

	"bandana/internal/iosched"
)

// TestValidateFlags covers the flag error paths: unknown modes, scheduler
// flags applied to modes that drive the device directly, and out-of-range
// queue depths.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name          string
		mode          string
		ioQD          int
		ioQDSet       bool
		ioCoalesceSet bool
		wantErr       string
	}{
		{name: "qd default", mode: "qd"},
		{name: "load", mode: "load"},
		{name: "qd-sweep default", mode: "qd-sweep"},
		{name: "qd-sweep with depth", mode: "qd-sweep", ioQD: 8, ioQDSet: true},
		{name: "qd-sweep coalesce off", mode: "qd-sweep", ioCoalesceSet: true},
		{name: "unknown mode", mode: "warp", wantErr: "unknown mode"},
		{name: "io-qd in qd mode", mode: "qd", ioQD: 8, ioQDSet: true, wantErr: "only meaningful with --mode qd-sweep"},
		{name: "io-coalesce in load mode", mode: "load", ioCoalesceSet: true, wantErr: "only meaningful with --mode qd-sweep"},
		{name: "negative io-qd", mode: "qd-sweep", ioQD: -2, ioQDSet: true, wantErr: "out of range"},
		{name: "huge io-qd", mode: "qd-sweep", ioQD: iosched.MaxTargetQueueDepth + 1, ioQDSet: true, wantErr: "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.mode, tc.ioQD, tc.ioQDSet, tc.ioCoalesceSet)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
