package main

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	rtmetrics "runtime/metrics"
	"time"

	"bandana/internal/lru"
	"bandana/internal/vcache"
)

// cacheSweepLeg is one engine's measurement at one population size.
type cacheSweepLeg struct {
	Engine  string `json:"engine"`
	Entries int    `json:"entries"`
	// HeapBytesPerEntry is the steady-state heap growth per cached vector
	// (HeapAlloc delta across build+populate, after a full GC on both sides).
	// For the lru engine this counts the per-entry heap objects (struct,
	// float slice, map/list internals); for vcache it counts the slab
	// arenas, slot metadata and probe tables.
	HeapBytesPerEntry float64 `json:"heapBytesPerEntry"`
	// HitNSOp is the single-threaded uniform-random Get latency.
	HitNSOp float64 `json:"hitNSOp"`
	// AllocsPerOp is heap allocations per Get (Mallocs delta / gets).
	AllocsPerOp float64 `json:"allocsPerOp"`
	// GCPauseP99US is the p99 stop-the-world pause over forced GC cycles
	// run while the populated cache is resident — the GC-pressure number
	// the pointer-free layout exists to shrink.
	GCPauseP99US float64 `json:"gcPauseP99US"`
	// GCCycleMS is the mean wall time of those forced GC cycles (mark cost
	// scales with the pointer graph the engine exposes to the collector).
	GCCycleMS float64 `json:"gcCycleMS"`
}

// cacheSweepPoint compares both engines at one population size.
type cacheSweepPoint struct {
	Entries int           `json:"entries"`
	LRU     cacheSweepLeg `json:"lru"`
	Arena   cacheSweepLeg `json:"vcache"`
	// HeapReduction is lru heapBytesPerEntry / vcache heapBytesPerEntry.
	HeapReduction float64 `json:"heapReduction"`
	// HitSpeedRatio is lru hitNSOp / vcache hitNSOp (>1 = vcache faster).
	HitSpeedRatio float64 `json:"hitSpeedRatio"`
}

// cacheSweepResult is the --mode cache-sweep section of the JSON artifact.
type cacheSweepResult struct {
	Dim          int               `json:"dim"`
	SlotBytes    int               `json:"slotBytes"`
	Shards       int               `json:"shards"`
	GetsPerPoint int               `json:"getsPerPoint"`
	Points       []cacheSweepPoint `json:"points"`
}

type cacheSweepOptions struct {
	Populations []int
	Seed        int64
}

const (
	cacheSweepDim   = 64 // the paper's production vector shape (fp16 x 64)
	cacheSweepGets  = 2_000_000
	cacheSweepShard = 8 // fixed so results compare across machines
	cacheSweepGCs   = 4 // forced GC cycles per pause measurement
)

// benchVec mirrors the lru engine's per-entry heap value (core.cachedVec):
// a decoded float32 vector plus raw/prefetched bookkeeping. Only vec is
// populated, exactly like a float-path cache fill.
type benchVec struct {
	vec        []float32
	raw        []byte
	prefetched bool
}

// splitmixHash matches the hash the store routes cache shards with.
func splitmixHash(id uint32) uint64 {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// runCacheSweep builds each cache engine at each population size and
// measures heap footprint, hit latency, allocation rate and GC pauses.
// The two engines are built and torn down sequentially so each is measured
// against a quiesced heap.
func runCacheSweep(opts cacheSweepOptions) (*cacheSweepResult, error) {
	res := &cacheSweepResult{
		Dim: cacheSweepDim, SlotBytes: cacheSweepDim * 2,
		Shards: cacheSweepShard, GetsPerPoint: cacheSweepGets,
	}
	for _, n := range opts.Populations {
		if n <= 0 {
			return nil, fmt.Errorf("cache-sweep population must be positive, got %d", n)
		}
		point := cacheSweepPoint{Entries: n}
		point.LRU = measureLRULeg(n, opts.Seed)
		point.Arena = measureArenaLeg(n, opts.Seed)
		if point.Arena.HeapBytesPerEntry > 0 {
			point.HeapReduction = point.LRU.HeapBytesPerEntry / point.Arena.HeapBytesPerEntry
		}
		if point.Arena.HitNSOp > 0 {
			point.HitSpeedRatio = point.LRU.HitNSOp / point.Arena.HitNSOp
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// measureLRULeg measures the classic pointer-per-entry engine.
func measureLRULeg(n int, seed int64) cacheSweepLeg {
	leg := cacheSweepLeg{Engine: "lru", Entries: n}
	base := quiescedHeap()

	c := lru.NewSharded[uint32, *benchVec](n, cacheSweepShard, splitmixHash)
	for id := 0; id < n; id++ {
		v := &benchVec{vec: make([]float32, cacheSweepDim)}
		v.vec[0] = float32(id)
		c.Add(uint32(id), v)
	}

	leg.HeapBytesPerEntry = float64(quiescedHeap()-base) / float64(n)
	leg.GCPauseP99US, leg.GCCycleMS = measureGCPressure()

	rng := rand.New(rand.NewSource(seed))
	var sink float32
	mallocs0 := readMallocs()
	t0 := time.Now()
	for i := 0; i < cacheSweepGets; i++ {
		if v, ok := c.Get(uint32(rng.Intn(n))); ok {
			sink += v.vec[0]
		}
	}
	elapsed := time.Since(t0)
	leg.AllocsPerOp = float64(readMallocs()-mallocs0) / float64(cacheSweepGets)
	leg.HitNSOp = float64(elapsed.Nanoseconds()) / float64(cacheSweepGets)
	_ = sink
	return leg
}

// measureArenaLeg measures the pointer-free slab engine.
func measureArenaLeg(n int, seed int64) cacheSweepLeg {
	leg := cacheSweepLeg{Engine: "vcache", Entries: n}
	base := quiescedHeap()

	c := vcache.New(vcache.Options{
		Capacity: n, SlotBytes: cacheSweepDim * 2,
		Shards: cacheSweepShard, Hash: splitmixHash,
	})
	payload := make([]byte, cacheSweepDim*2)
	for id := 0; id < n; id++ {
		payload[0], payload[1] = byte(id), byte(id>>8)
		c.Add(uint32(id), payload, false)
	}

	leg.HeapBytesPerEntry = float64(quiescedHeap()-base) / float64(n)
	leg.GCPauseP99US, leg.GCCycleMS = measureGCPressure()

	rng := rand.New(rand.NewSource(seed))
	var sink byte
	mallocs0 := readMallocs()
	t0 := time.Now()
	for i := 0; i < cacheSweepGets; i++ {
		if p, _, ok := c.Get(uint32(rng.Intn(n))); ok {
			sink += p[0]
		}
	}
	elapsed := time.Since(t0)
	leg.AllocsPerOp = float64(readMallocs()-mallocs0) / float64(cacheSweepGets)
	leg.HitNSOp = float64(elapsed.Nanoseconds()) / float64(cacheSweepGets)
	_ = sink
	return leg
}

// quiescedHeap forces a full GC and returns live heap bytes.
func quiescedHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func readMallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// measureGCPressure runs cacheSweepGCs forced collections against whatever
// is currently live and reports the p99 STW pause (us) plus the mean cycle
// wall time (ms).
func measureGCPressure() (pauseP99US, cycleMS float64) {
	before := readGCPauses()
	t0 := time.Now()
	for i := 0; i < cacheSweepGCs; i++ {
		runtime.GC()
	}
	cycleMS = float64(time.Since(t0).Milliseconds()) / cacheSweepGCs
	return gcPauseP99US(before, readGCPauses()), cycleMS
}

// readGCPauses snapshots the cumulative /gc/pauses:seconds histogram.
func readGCPauses() *rtmetrics.Float64Histogram {
	sample := []rtmetrics.Sample{{Name: "/gc/pauses:seconds"}}
	rtmetrics.Read(sample)
	if sample[0].Value.Kind() != rtmetrics.KindFloat64Histogram {
		return nil
	}
	h := sample[0].Value.Float64Histogram()
	// Copy: the runtime may reuse the returned buckets on the next Read.
	return &rtmetrics.Float64Histogram{
		Counts:  append([]uint64(nil), h.Counts...),
		Buckets: append([]float64(nil), h.Buckets...),
	}
}

// gcPauseP99US computes the p99 pause in microseconds from the histogram
// delta between two cumulative snapshots. Returns 0 when no pause occurred
// in the window (or the metric is unsupported).
func gcPauseP99US(before, after *rtmetrics.Float64Histogram) float64 {
	if before == nil || after == nil || len(after.Counts) != len(before.Counts) {
		return 0
	}
	var total uint64
	delta := make([]uint64, len(after.Counts))
	for i := range delta {
		delta[i] = after.Counts[i] - before.Counts[i]
		total += delta[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(float64(total)*0.99 + 0.5)
	if target > total {
		target = total
	}
	var cum uint64
	for i, d := range delta {
		cum += d
		if cum >= target && d > 0 {
			// Bucket i spans (Buckets[i], Buckets[i+1]]; report the upper
			// bound. The first/last buckets can be infinite — fall back to
			// the finite edge.
			hi := after.Buckets[i+1]
			if math.IsInf(hi, 0) || math.IsNaN(hi) {
				hi = after.Buckets[i]
			}
			return hi * 1e6
		}
	}
	return 0
}
