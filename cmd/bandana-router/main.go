// Command bandana-router fronts a Bandana cluster: it scatter-gathers
// /v1/batch requests across the nodes owning each id's (table, id-range)
// partition, hedges slow primaries to their replicas, isolates node
// failures to per-id errors, and aggregates cluster health under /v1/stats.
//
// Membership comes from a cluster.json file (see internal/cluster.Config);
// SIGHUP re-reads it and atomically swaps the routing state without
// dropping in-flight requests:
//
//	bandana-router --addr :8080 --cluster cluster.json
//	kill -HUP $(pidof bandana-router)   # apply a membership edit
//
// Endpoints: GET /healthz, GET /v1/lookup, POST /v1/batch, GET /v1/stats.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bandana/internal/cluster"
	"bandana/internal/version"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		clusterPath = flag.String("cluster", "cluster.json", "cluster membership file (re-read on SIGHUP)")
		hedgeAfter  = flag.Duration("hedge-after", 20*time.Millisecond, "hedge to a replica when the primary is slower than this (negative disables)")
		nodeTimeout = flag.Duration("node-timeout", 2*time.Second, "per-node request timeout")
		maxInflight = flag.Int("max-inflight", 128, "max concurrent requests per node")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}

	cfg, err := cluster.LoadConfig(*clusterPath)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := cluster.NewRouter(cfg, cluster.RouterOptions{
		HedgeAfter:         *hedgeAfter,
		NodeTimeout:        *nodeTimeout,
		MaxInflightPerNode: *maxInflight,
	})
	if err != nil {
		log.Fatal(err)
	}

	// SIGHUP hot-reloads the membership; a bad file keeps the old state.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			next, err := cluster.LoadConfig(*clusterPath)
			if err != nil {
				log.Printf("SIGHUP reload rejected: %v", err)
				continue
			}
			if err := rt.Reload(next); err != nil {
				log.Printf("SIGHUP reload rejected: %v", err)
				continue
			}
			log.Printf("membership reloaded from %s (%d nodes)", *clusterPath, len(next.Nodes))
		}
	}()

	handler := http.Handler(rt.Handler())
	if *pprofOn {
		// Explicit registration (not the net/http/pprof DefaultServeMux side
		// effect) keeps profiling opt-in.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("pprof profiling handlers enabled under /debug/pprof/")
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("received %s, shutting down", sig)
		_ = httpServer.Close()
	}()

	fmt.Printf("bandana-router listening on %s (%d nodes, hedge after %s)\n",
		*addr, len(cfg.Nodes), *hedgeAfter)
	if err := httpServer.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
