package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"bandana/internal/core"
	"bandana/internal/metrics"
	"bandana/internal/synth"
)

// adaptBenchJSON is the machine-readable form of the drift benchmark,
// written by --json and uploaded by CI as a BENCH_*.json artifact.
type adaptBenchJSON struct {
	Benchmark string  `json:"benchmark"`
	Tables    int     `json:"tables"`
	Requests  int     `json:"requests"`
	Drift     int     `json:"driftRotateEvery"`
	AdaptEach int     `json:"adaptEvery"`
	Seed      int64   `json:"seed"`
	Phases    []phase `json:"phases"`
	Aggregate struct {
		AdaptiveHitRatio float64 `json:"adaptiveHitRatio"`
		StaticHitRatio   float64 `json:"staticHitRatio"`
		ImprovementPct   float64 `json:"improvementPct"`
	} `json:"aggregate"`
	Epochs         int64   `json:"epochs"`
	Relayouts      int64   `json:"relayouts"`
	BlockReads     int64   `json:"blockReads"`
	Lookups        int64   `json:"lookups"`
	NsPerLookup    float64 `json:"nsPerLookup"`
	WallClockMS    float64 `json:"wallClockMS"`
	LastEpochMS    float64 `json:"lastEpochMS"`
	LastRelayoutMS float64 `json:"lastRelayoutMS"`
	// BatchLatencyUS summarizes the adaptive store's per-batch serving
	// latency (microseconds), including P90/P999 tails.
	BatchLatencyUS metrics.Snapshot `json:"batchLatencyUS"`
}

type phase struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	Adaptive float64 `json:"adaptiveHitRatio"`
	Static   float64 `json:"staticHitRatio"`
}

// adaptBenchCmd is the drift benchmark: it serves the identical
// hot-set-rotation workload to two untrained stores — one with the online
// adaptation engine running an epoch every --adapt requests, one frozen at
// the static even-split baseline — and prints per-phase and aggregate hit
// ratios. It is the CLI form of the core acceptance test
// (TestAdaptationBeatsStaticEvenSplitOnDrift).
func adaptBenchCmd(args []string) error {
	fs := flag.NewFlagSet("adapt-bench", flag.ContinueOnError)
	var (
		scale    = fs.Float64("scale", 0.001, "table size scale vs the paper's 10-20M vectors")
		tables   = fs.Int("tables", 3, "number of embedding tables (max 8)")
		requests = fs.Int("requests", 2400, "total requests to serve")
		drift    = fs.Int("drift", 600, "rotate hot communities every N requests")
		adapt    = fs.Int("adapt", 300, "run one adaptation epoch every N requests")
		budget   = fs.Int("adapt-budget", 0, "max NVM blocks migrated per epoch (0 = unlimited)")
		relayout = fs.Int("adapt-relayout", 2, "re-layout every N epochs (0 = never)")
		dram     = fs.Int("dram", 0, "DRAM budget in vectors (default: 5% of all vectors)")
		seed     = fs.Int64("seed", 1, "random seed")
		jsonOut  = fs.String("json", "", "also write machine-readable results to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *adapt <= 0 {
		return fmt.Errorf("--adapt must be positive")
	}

	build := func() ([]*core.Store, error) {
		var stores []*core.Store
		for i := 0; i < 2; i++ {
			embTables, _ := synth.BuildWorkload(synth.Options{
				Scale: *scale, NumTables: *tables, Seed: *seed,
				Requests: 1, DriftRotateEvery: *drift,
			})
			s, err := core.Open(core.Config{Tables: embTables, DRAMBudgetVectors: *dram, Seed: *seed})
			if err != nil {
				return nil, err
			}
			stores = append(stores, s)
		}
		return stores, nil
	}
	stores, err := build()
	if err != nil {
		return err
	}
	adaptive, static := stores[0], stores[1]
	defer adaptive.Close()
	defer static.Close()

	_, workload := synth.BuildWorkload(synth.Options{
		Scale: *scale, NumTables: *tables, Seed: *seed,
		Requests: *requests, DriftRotateEvery: *drift,
	})

	if err := adaptive.StartAdaptation(core.AdaptOptions{
		RelayoutEvery:       *relayout,
		RelayoutBlockBudget: *budget,
	}); err != nil {
		return err
	}

	fmt.Printf("drift benchmark: %d tables, %d requests, hot set rotates every %d, adaptation epoch every %d\n\n",
		adaptive.NumTables(), *requests, *drift, *adapt)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "requests\tadaptive hit ratio\tstatic even-split\tepoch\trelayouts")

	rate := func(s *core.Store) float64 {
		var lookups, hits int64
		for _, st := range s.Stats() {
			lookups += st.Lookups
			hits += st.Hits
		}
		if lookups == 0 {
			return 0
		}
		return float64(hits) / float64(lookups)
	}

	jout := adaptBenchJSON{
		Benchmark: "adapt-bench", Tables: adaptive.NumTables(), Requests: *requests,
		Drift: *drift, AdaptEach: *adapt, Seed: *seed,
	}
	var adaptTotal, staticTotal struct{ hits, lookups int64 }
	batchLat := metrics.NewLatencyHistogram()
	start := time.Now()
	for served := 0; served < *requests; served += *adapt {
		end := served + *adapt
		if end > *requests {
			end = *requests
		}
		adaptive.ResetStats()
		static.ResetStats()
		for ti, tr := range workload.Traces {
			for q := served; q < end && q < len(tr.Queries); q++ {
				if len(tr.Queries[q]) == 0 {
					continue
				}
				t0 := time.Now()
				if _, err := adaptive.LookupBatch(ti, tr.Queries[q]); err != nil {
					return err
				}
				batchLat.ObserveDuration(time.Since(t0))
				if _, err := static.LookupBatch(ti, tr.Queries[q]); err != nil {
					return err
				}
			}
		}
		aRate, sRate := rate(adaptive), rate(static)
		for _, st := range adaptive.Stats() {
			adaptTotal.hits += st.Hits
			adaptTotal.lookups += st.Lookups
		}
		for _, st := range static.Stats() {
			staticTotal.hits += st.Hits
			staticTotal.lookups += st.Lookups
		}
		if _, err := adaptive.AdaptNow(); err != nil {
			return err
		}
		as := adaptive.AdaptationStats()
		fmt.Fprintf(w, "%d-%d\t%.4f\t%.4f\t%d\t%d\n", served, end, aRate, sRate, as.EpochsCompleted, as.Relayouts)
		jout.Phases = append(jout.Phases, phase{From: served, To: end, Adaptive: aRate, Static: sRate})
	}
	w.Flush()

	elapsed := time.Since(start)
	aAgg := float64(adaptTotal.hits) / float64(adaptTotal.lookups)
	sAgg := float64(staticTotal.hits) / float64(staticTotal.lookups)
	fmt.Printf("\naggregate: adaptive %.4f vs static %.4f (%+.1f%%), wall clock %s\n",
		aAgg, sAgg, (aAgg/sAgg-1)*100, elapsed.Round(time.Millisecond))
	ls := batchLat.Snapshot()
	fmt.Printf("batch latency (adaptive, us): mean %.1f p50 %.1f p90 %.1f p99 %.1f p999 %.1f\n",
		ls.Mean, ls.P50, ls.P90, ls.P99, ls.P999)
	as := adaptive.AdaptationStats()
	fmt.Printf("adaptation: %d epochs, %d relayouts, last epoch %s, last relayout %s\n",
		as.EpochsCompleted, as.Relayouts,
		as.LastEpochDuration.Round(time.Microsecond), as.LastRelayoutDuration.Round(time.Microsecond))
	for _, ts := range as.Tables {
		fmt.Printf("  %-10s cache=%-6d threshold=%-10d prefetch=%-5v relayouts=%d\n",
			ts.Name, ts.CacheVectors, ts.Threshold, ts.Prefetching, ts.Relayouts)
	}

	if *jsonOut != "" {
		jout.Aggregate.AdaptiveHitRatio = aAgg
		jout.Aggregate.StaticHitRatio = sAgg
		jout.Aggregate.ImprovementPct = (aAgg/sAgg - 1) * 100
		jout.Epochs = as.EpochsCompleted
		jout.Relayouts = as.Relayouts
		jout.LastEpochMS = float64(as.LastEpochDuration) / 1e6
		jout.LastRelayoutMS = float64(as.LastRelayoutDuration) / 1e6
		for _, st := range adaptive.Stats() {
			jout.BlockReads += st.BlockReads
		}
		jout.Lookups = adaptTotal.lookups
		if jout.Lookups > 0 {
			// ns/op over the adaptive store's lookups (both stores were
			// served in the same loop, so this halves the loop's wall
			// clock per store as an approximation).
			jout.NsPerLookup = float64(elapsed.Nanoseconds()) / 2 / float64(jout.Lookups)
		}
		jout.WallClockMS = float64(elapsed.Nanoseconds()) / 1e6
		jout.BatchLatencyUS = ls
		raw, err := json.MarshalIndent(jout, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nresults written to %s\n", *jsonOut)
	}
	return nil
}
