// Command bandana runs the Bandana experiment suite: it regenerates the
// tables and figures of the paper's evaluation against the simulated NVM
// substrate and prints them as text tables. It also initializes durable
// data directories (`bandana init`) that bandana-server reopens across runs.
//
// Usage:
//
//	bandana list                      # list available experiments
//	bandana run --exp fig9            # run one experiment
//	bandana run --all                 # run the full evaluation
//	bandana run --all --quick         # reduced sizes (smoke test)
//	bandana init --data-dir /var/lib/bandana --scale 0.001 --train
//
// Scale flags let you trade fidelity for runtime; see DESIGN.md for how the
// default scale maps to the paper's table sizes.
package main

import (
	"flag"
	"fmt"
	"os"

	"bandana/internal/experiments"
	"bandana/internal/version"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "version", "--version", "-version":
		fmt.Println(version.String())
	case "list":
		titles := experiments.Titles()
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-20s %s\n", id, titles[id])
		}
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "init":
		if err := initCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "adapt-bench":
		if err := adaptBenchCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `bandana — reproduce the paper's evaluation

commands:
  list                list available experiments
  run [flags]         run experiments
  init [flags]        write (and optionally train) a durable data dir that
                      bandana-server --backend=file reopens without retraining
  adapt-bench [flags] drift benchmark: online adaptation vs the static
                      even-split baseline on a hot-set-rotation workload
                      (--adapt epoch interval, --adapt-budget migration
                      budget, --drift rotation period, --json results file)
  version             print the build version

run flags:
  --exp <id>          experiment to run (repeatable via comma separation)
  --all               run every experiment
  --quick             reduced scale (fast smoke test)
  --scale <f>         table size scale vs the paper (default 0.004)
  --train <n>         training requests (default 3000)
  --eval <n>          evaluation requests (default 1500)
  --seed <n>          random seed (default 1)

init flags:
  --data-dir <dir>    target directory (required)
  --scale <f>         table size scale (default 0.001)
  --tables <n>        number of tables (default 3, max 8)
  --requests <n>      training requests (default 1500)
  --train             train placement + caching after ingest (default true)
  --dram <n>          DRAM budget in vectors (default: 5% of all vectors)
  --sync <mode>       durability mode: none, periodic, always (default periodic)
  --seed <n>          random seed (default 1)`)
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	var (
		exp   = fs.String("exp", "", "experiment id(s), comma separated")
		all   = fs.Bool("all", false, "run every experiment")
		quick = fs.Bool("quick", false, "reduced scale")
		scale = fs.Float64("scale", 0, "table size scale vs the paper")
		train = fs.Int("train", 0, "training requests")
		eval  = fs.Int("eval", 0, "evaluation requests")
		seed  = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *train > 0 {
		opts.TrainRequests = *train
	}
	if *eval > 0 {
		opts.EvalRequests = *eval
	}
	opts.Seed = *seed

	runner := experiments.NewRunner(opts)
	if *all {
		for _, id := range experiments.IDs() {
			t, err := runner.Run(id)
			if err != nil {
				return err
			}
			t.Format(os.Stdout)
		}
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("specify --exp <id> or --all (try 'bandana list')")
	}
	for _, id := range splitComma(*exp) {
		t, err := runner.Run(id)
		if err != nil {
			return err
		}
		t.Format(os.Stdout)
	}
	return nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
