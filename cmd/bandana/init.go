package main

import (
	"flag"
	"fmt"

	"bandana/internal/core"
	"bandana/internal/nvm"
	"bandana/internal/synth"
)

// initCmd ingests synthetic tables into a durable file-backed data dir —
// the write-once path. The directory is then reopened (by bandana-server
// --backend=file, or another `bandana init` invocation, which refuses to
// clobber it) with vectors and trained state intact and no retraining.
func initCmd(args []string) error {
	fs := flag.NewFlagSet("init", flag.ContinueOnError)
	var (
		dataDir  = fs.String("data-dir", "", "target data directory (required)")
		scale    = fs.Float64("scale", 0.001, "table size scale vs the paper's 10-20M vectors")
		tables   = fs.Int("tables", 3, "number of embedding tables (max 8)")
		requests = fs.Int("requests", 1500, "synthetic requests used for training")
		train    = fs.Bool("train", true, "train placement and caching after ingest")
		syncStr  = fs.String("sync", "periodic", "durability mode: none, periodic or always")
		direct   = fs.Bool("direct", false, "ingest through O_DIRECT (falls back to buffered I/O where unsupported)")
		seed     = fs.Int64("seed", 1, "random seed")
		budget   = fs.Int("dram", 0, "DRAM budget in vectors (default: 5% of all vectors)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("--data-dir is required")
	}
	if core.DirInitialized(*dataDir) {
		return fmt.Errorf("data dir %s is already initialized (delete it to re-ingest)", *dataDir)
	}
	if *tables < 1 {
		*tables = 1
	}
	if *tables > 8 {
		*tables = 8
	}
	syncMode, err := nvm.ParseSyncMode(*syncStr)
	if err != nil {
		return err
	}

	fmt.Printf("generating %d synthetic tables at scale %g\n", *tables, *scale)
	embTables, workload := synth.Build(*scale, *tables, *seed, *requests)

	store, err := core.Open(core.Config{
		Tables:            embTables,
		DRAMBudgetVectors: *budget,
		Seed:              *seed,
		Backend:           core.BackendFile,
		DataDir:           *dataDir,
		Sync:              syncMode,
		Direct:            *direct,
	})
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			store.Close()
		}
	}()
	if *direct {
		if store.DeviceStats().Store.DirectIO {
			fmt.Println("block file opened with O_DIRECT (page cache bypassed)")
		} else {
			fmt.Println("O_DIRECT not supported by the data dir's filesystem; using buffered I/O")
		}
	}
	fmt.Printf("ingested %d tables onto %s\n", store.NumTables(), store.Device())

	if *train {
		fmt.Printf("training placement and caching on %d requests...\n", *requests)
		report, err := store.Train(workload.Traces, core.TrainOptions{})
		if err != nil {
			return err
		}
		for _, tr := range report.Tables {
			fmt.Printf("  %-10s fanout %.1f -> %.1f, cache %d vectors, threshold %d\n",
				tr.Name, tr.InitialFanout, tr.FinalFanout, tr.CacheVectors, tr.Threshold)
		}
	}
	// The final Close performs the flush that makes the ingest durable —
	// its error decides whether the dir is actually ready.
	closed = true
	if err := store.Close(); err != nil {
		return fmt.Errorf("flush data dir: %w", err)
	}
	fmt.Printf("data dir %s ready: serve it with\n  bandana-server --backend file --data-dir %s\n",
		*dataDir, *dataDir)
	return nil
}
