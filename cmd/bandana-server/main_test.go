package main

import (
	"strings"
	"testing"
	"time"

	"bandana/internal/iosched"
)

// TestValidateIOFlags covers the --io-* flag error paths: nonsensical
// values, dependent flags without the scheduler on, and modes that cannot
// honor a scheduler configuration (read-only replica bootstrap).
func TestValidateIOFlags(t *testing.T) {
	cases := []struct {
		name        string
		qd          int
		window      time.Duration
		qdSet       bool
		coalesceSet bool
		windowSet   bool
		replica     bool
		wantErr     string
	}{
		{name: "defaults", qd: 0},
		{name: "scheduler on", qd: 8, qdSet: true},
		{name: "full config", qd: 16, window: time.Millisecond, qdSet: true, coalesceSet: true, windowSet: true},
		{name: "negative qd", qd: -1, qdSet: true, wantErr: "out of range"},
		{name: "huge qd", qd: iosched.MaxTargetQueueDepth + 1, qdSet: true, wantErr: "out of range"},
		{name: "negative window", qd: 8, window: -time.Second, qdSet: true, windowSet: true, wantErr: "negative"},
		{name: "coalesce without qd", coalesceSet: true, wantErr: "no effect without --io-qd"},
		{name: "window without qd", windowSet: true, wantErr: "no effect without --io-qd"},
		{name: "replica with qd", qd: 8, qdSet: true, replica: true, wantErr: "incompatible with --replica-of"},
		{name: "replica with coalesce", coalesceSet: true, replica: true, wantErr: "incompatible with --replica-of"},
		{name: "replica with window", windowSet: true, replica: true, wantErr: "incompatible with --replica-of"},
		{name: "replica without io flags", replica: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateIOFlags(tc.qd, tc.window, tc.qdSet, tc.coalesceSet, tc.windowSet, tc.replica)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
