// Command bandana-server runs a Bandana store as an HTTP service.
//
// It builds synthetic embedding tables (scaled-down versions of the paper's
// Table 1), optionally trains placement and caching from a synthetic trace,
// and serves lookups over JSON/HTTP. It is the network-facing counterpart of
// examples/recommender and is meant for load testing and demos.
//
// Usage:
//
//	bandana-server --addr :8080 --scale 0.001 --train
//	curl 'localhost:8080/v1/lookup?table=table1&id=42'
//	curl -d '{"table":"table2","ids":[1,2,3]}' localhost:8080/v1/batch
//	curl localhost:8080/v1/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	"bandana/internal/core"
	"bandana/internal/server"
	"bandana/internal/table"
	"bandana/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		scale    = flag.Float64("scale", 0.001, "table size scale vs the paper's 10-20M vectors")
		tables   = flag.Int("tables", 3, "number of embedding tables to serve (max 8)")
		requests = flag.Int("requests", 1500, "synthetic requests used for training")
		budget   = flag.Int("dram", 0, "DRAM budget in vectors (default: 5% of all vectors)")
		train    = flag.Bool("train", true, "train placement and caching before serving")
		seed     = flag.Int64("seed", 1, "random seed")
		stateOut = flag.String("save-state", "", "write the trained state to this file before serving")
		shards   = flag.Int("shards", 0, "cache lock shards per table (0 = auto from GOMAXPROCS)")
	)
	flag.Parse()
	if *tables < 1 {
		*tables = 1
	}
	if *tables > 8 {
		*tables = 8
	}

	log.Printf("generating %d synthetic tables at scale %g", *tables, *scale)
	profiles := trace.DefaultProfiles(*scale)[:*tables]
	for i := range profiles {
		profiles[i].Seed += *seed * 100
	}
	workload := trace.GenerateWorkload(profiles, *requests)
	embTables := make([]*table.Table, len(profiles))
	for i, p := range profiles {
		g := table.Generate(p.Name, table.GenerateOptions{
			NumVectors:  p.NumVectors,
			Dim:         64,
			NumClusters: p.NumVectors / trace.DefaultCommunitySize,
			Seed:        *seed + int64(i),
			Assignments: workload.Communities[i],
		})
		embTables[i] = g.Table
	}

	store, err := core.Open(core.Config{
		Tables:            embTables,
		DRAMBudgetVectors: *budget,
		Seed:              *seed,
		CacheShards:       *shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	log.Printf("serving with GOMAXPROCS=%d, %d cache shards per table",
		runtime.GOMAXPROCS(0), store.Stats()[0].CacheShards)

	if *train {
		log.Printf("training placement and caching on %d requests...", *requests)
		start := time.Now()
		report, err := store.Train(workload.Traces, core.TrainOptions{})
		if err != nil {
			log.Fatal(err)
		}
		for _, tr := range report.Tables {
			log.Printf("  %-10s fanout %.1f -> %.1f, cache %d vectors, threshold %d",
				tr.Name, tr.InitialFanout, tr.FinalFanout, tr.CacheVectors, tr.Threshold)
		}
		log.Printf("training finished in %s", time.Since(start).Round(time.Millisecond))
		if *stateOut != "" {
			f, err := os.Create(*stateOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := store.SaveState(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("trained state written to %s", *stateOut)
		}
	}

	srv := server.New(store)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("bandana-server listening on %s (%d tables, %s)\n", *addr, store.NumTables(), store.Device())
	log.Fatal(httpServer.ListenAndServe())
}
