// Command bandana-server runs a Bandana store as an HTTP service.
//
// It builds synthetic embedding tables (scaled-down versions of the paper's
// Table 1), optionally trains placement and caching from a synthetic trace,
// and serves lookups over JSON/HTTP. It is the network-facing counterpart of
// examples/recommender and is meant for load testing and demos.
//
// With --backend=file the tables live in a durable journaled block file
// under --data-dir: the first run writes and trains them, and later runs
// reopen the directory — replaying the write journal if the previous process
// died mid-write — and serve identical vectors without regenerating or
// retraining anything. (`bandana init` pre-builds such a directory.)
//
// With --replica-of=URL the server is a read-only replica: it bootstraps
// its data dir from the primary's snapshot stream (resumable and
// CRC-verified, so a killed bootstrap resumes where it left off), serves
// the snapshot read-only, and re-syncs in the background whenever the
// primary's snapshot seq advances — each re-sync atomically swaps the
// served store without dropping in-flight requests.
//
// Usage:
//
//	bandana-server --addr :8080 --scale 0.001 --train
//	bandana-server --addr :8080 --wire-addr :8090   # also serve the binary wire protocol (bwp)
//	bandana-server --backend file --data-dir /var/lib/bandana --sync periodic
//	bandana-server --addr :8081 --replica-of http://primary:8080 --data-dir /var/lib/bandana-replica
//	curl 'localhost:8080/v1/lookup?table=table1&id=42'
//	curl -d '{"table":"table2","ids":[1,2,3]}' localhost:8080/v1/batch
//	curl localhost:8080/v1/stats
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"bandana/internal/cluster"
	"bandana/internal/core"
	"bandana/internal/iosched"
	"bandana/internal/nvm"
	"bandana/internal/server"
	"bandana/internal/synth"
	"bandana/internal/trace"
	"bandana/internal/version"
)

// validateIOFlags checks the --io-* flag combination before a store is
// opened. qdSet/coalesceSet/windowSet report whether the operator passed
// the corresponding flag explicitly (flag.Visit); replica reports
// --replica-of mode.
func validateIOFlags(qd int, window time.Duration, qdSet, coalesceSet, windowSet, replica bool) error {
	if replica && (qdSet || coalesceSet || windowSet) {
		return fmt.Errorf("--io-qd/--io-coalesce/--io-window are incompatible with --replica-of: a replica bootstraps read-only snapshots and swaps the served store wholesale on every re-sync, so a per-store scheduler configuration cannot be honored")
	}
	if qd < 0 || qd > iosched.MaxTargetQueueDepth {
		return fmt.Errorf("--io-qd %d out of range [0,%d]", qd, iosched.MaxTargetQueueDepth)
	}
	if window < 0 {
		return fmt.Errorf("--io-window %s is negative", window)
	}
	if qd == 0 && (coalesceSet || windowSet) {
		return fmt.Errorf("--io-coalesce/--io-window have no effect without --io-qd > 0 (the I/O scheduler is off)")
	}
	return nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		wireAddr = flag.String("wire-addr", "", "also serve the binary wire protocol (bwp) on this address, e.g. :8090 (empty = HTTP only)")
		scale    = flag.Float64("scale", 0.001, "table size scale vs the paper's 10-20M vectors")
		tables   = flag.Int("tables", 3, "number of embedding tables to serve (max 8)")
		requests = flag.Int("requests", 1500, "synthetic requests used for training")
		budget   = flag.Int("dram", 0, "DRAM budget in vectors (default: 5% of all vectors)")
		train    = flag.Bool("train", true, "train placement and caching before serving")
		seed     = flag.Int64("seed", 1, "random seed")
		stateOut = flag.String("save-state", "", "write the trained state to this file before serving")
		shards   = flag.Int("shards", 0, "cache lock shards per table (0 = auto from GOMAXPROCS)")
		cacheEng = flag.String("cache-engine", "", "DRAM cache engine: vcache (pointer-free fp16 slab arenas, the default) or lru (per-entry heap objects with stable float views)")
		backend  = flag.String("backend", core.BackendMem, "block store backend: mem or file")
		dataDir  = flag.String("data-dir", "", "data directory for the file backend (reused across runs)")
		syncStr  = flag.String("sync", "periodic", "file backend durability: none, periodic or always")
		direct   = flag.Bool("direct", false, "open the file backend's block file with O_DIRECT (honest NVM I/O, bypassing the page cache); falls back to buffered I/O where the filesystem rejects it")
		drift    = flag.Int("drift", 0, "rotate each synthetic table's hot communities every N requests (0 = stationary)")

		adaptEvery    = flag.Duration("adapt", 0, "online adaptation epoch interval (e.g. 30s); 0 disables adaptation")
		adaptRelayout = flag.Int("adapt-relayout", 4, "run the background re-layout pass every N adaptation epochs (0 = never)")
		adaptBudget   = flag.Int("adapt-budget", 0, "max NVM blocks migrated per adaptation epoch (0 = unlimited)")
		adaptStrategy = flag.String("adapt-strategy", core.RelayoutSHP, "re-layout strategy: shp or kmeans")
		adaptSample   = flag.Int("adapt-sample", 1, "record 1 in N queries for adaptation (higher = cheaper)")

		ioQD       = flag.Int("io-qd", 0, "target NVM queue depth for the async I/O scheduler: miss-path reads are coalesced and batched toward this depth (0 = scheduler off, reads issue inline)")
		ioCoalesce = flag.Bool("io-coalesce", true, "coalesce concurrent reads of the same NVM block into one device read (requires --io-qd > 0)")
		ioWindow   = flag.Duration("io-window", 0, "max time a queued read waits for its batch to fill toward --io-qd (requires --io-qd > 0; 0 dispatches immediately)")

		updateLog = flag.Bool("update-log", true, "write-optimized update path: vector updates append to an in-DRAM delta log (one log write per update) that replicas tail incrementally; off = every update read-modify-writes its 4KB block through the journal")

		replicaOf   = flag.String("replica-of", "", "bootstrap from this primary's snapshot stream and serve read-only (requires --data-dir)")
		replicaPoll = flag.Duration("replica-poll", 2*time.Second, "how often a replica polls the primary's snapshot seq")

		pprofOn = flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/")
		slowMS  = flag.Int("slow-ms", 0, "log a structured per-stage breakdown for requests slower than this many milliseconds (0 = off; emission is rate-limited under overload)")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	ioFlagSet := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { ioFlagSet[f.Name] = true })
	if err := validateIOFlags(*ioQD, *ioWindow,
		ioFlagSet["io-qd"], ioFlagSet["io-coalesce"], ioFlagSet["io-window"], *replicaOf != ""); err != nil {
		log.Fatal(err)
	}
	if *tables < 1 {
		*tables = 1
	}
	if *tables > 8 {
		*tables = 8
	}
	syncMode, err := nvm.ParseSyncMode(*syncStr)
	if err != nil {
		log.Fatal(err)
	}

	// Replica mode: bootstrap from the primary and follow it. Everything
	// about local generation/training is irrelevant — the primary's
	// snapshot is the data.
	if *replicaOf != "" {
		if *dataDir == "" {
			log.Fatal("--replica-of requires --data-dir (snapshots are staged and served from it)")
		}
		// A replica serves its primary's snapshot read-only: flags that
		// would generate, train or adapt local state have nothing to act
		// on. Reject them loudly rather than silently dropping them.
		// --update-log is also rejected: the replica path enables its own
		// update log unconditionally (it is how replicated records are
		// re-logged and replayed).
		incompatible := map[string]bool{
			"scale": true, "tables": true, "requests": true, "dram": true,
			"train": true, "save-state": true, "backend": true, "drift": true,
			"adapt": true, "adapt-relayout": true, "adapt-budget": true,
			"adapt-strategy": true, "adapt-sample": true, "seed": true, "shards": true,
			"update-log": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if incompatible[f.Name] {
				log.Fatalf("--%s is incompatible with --replica-of (a replica serves its primary's snapshot read-only)", f.Name)
			}
		})
		rep, err := cluster.NewReplica(cluster.ReplicaOptions{
			PrimaryURL:   *replicaOf,
			DataDir:      *dataDir,
			Sync:         syncMode,
			Direct:       *direct,
			CacheEngine:  *cacheEng,
			PollInterval: *replicaPoll,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("bootstrapping replica from %s into %s ...", *replicaOf, *dataDir)
		start := time.Now()
		store, seq, err := rep.Bootstrap()
		if err != nil {
			log.Fatal(err)
		}
		st := rep.Stats()
		log.Printf("replica bootstrapped at seq %d in %s (%d bytes streamed, resumed at offset %d)",
			seq, time.Since(start).Round(time.Millisecond), st.BytesFetched, st.LastResumeOffset)
		if *direct {
			logDirectIO(store)
		}
		serve(store, *addr, *wireAddr, nil, rep, *pprofOn, *slowMS)
		return
	}

	if *backend != core.BackendFile && *dataDir != "" {
		log.Fatalf("--data-dir requires --backend %s (got --backend %s)", core.BackendFile, *backend)
	}
	if *direct && *backend != core.BackendFile {
		log.Fatalf("--direct requires --backend %s (O_DIRECT applies to the block file)", core.BackendFile)
	}
	cfg := core.Config{
		DRAMBudgetVectors: *budget,
		Seed:              *seed,
		CacheShards:       *shards,
		CacheEngine:       *cacheEng,
		Backend:           *backend,
		DataDir:           *dataDir,
		Sync:              syncMode,
		Direct:            *direct,
		IOSched: core.IOSchedOptions{
			Enabled:    *ioQD > 0,
			QueueDepth: *ioQD,
			Window:     *ioWindow,
			NoCoalesce: !*ioCoalesce,
		},
		UpdateLog: core.UpdateLogOptions{Enabled: *updateLog},
	}
	if *ioQD > 0 {
		log.Printf("I/O scheduler enabled: target queue depth %d, coalescing %v, accumulation window %s",
			*ioQD, *ioCoalesce, *ioWindow)
	}

	// Online adaptation: with --adapt the server records a sampled window of
	// live accesses and re-tunes caching/placement every interval — a store
	// started untrained converges on its real traffic without a restart.
	var adaptOpts *core.AdaptOptions
	if *adaptEvery > 0 {
		adaptOpts = &core.AdaptOptions{
			Interval:            *adaptEvery,
			RelayoutEvery:       *adaptRelayout,
			RelayoutBlockBudget: *adaptBudget,
			RelayoutStrategy:    *adaptStrategy,
			SampleEvery:         *adaptSample,
		}
	}

	reopening := *backend == core.BackendFile && core.DirInitialized(*dataDir)
	if reopening {
		log.Printf("reopening initialized data dir %s (no regeneration, no retraining)", *dataDir)
	} else {
		log.Printf("generating %d synthetic tables at scale %g", *tables, *scale)
		embTables, workload := synth.BuildWorkload(synth.Options{
			Scale: *scale, NumTables: *tables, Seed: *seed,
			Requests: *requests, DriftRotateEvery: *drift,
		})
		cfg.Tables = embTables

		store, err := openAndMaybeTrain(cfg, workload, *train, *requests, *stateOut)
		if err != nil {
			log.Fatal(err)
		}
		if *direct {
			logDirectIO(store)
		}
		serve(store, *addr, *wireAddr, adaptOpts, nil, *pprofOn, *slowMS)
		return
	}

	store, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *direct {
		logDirectIO(store)
	}
	if rec := store.DeviceStats().Store.RecoveredRecords; rec > 0 {
		log.Printf("journal recovery replayed %d block write(s) from the previous run", rec)
	}
	if store.RecoveredMigration() {
		log.Printf("redid a background re-layout interrupted by the previous process")
	}
	if *train {
		log.Printf("--train ignored: a reopened data dir serves its persisted state (train at init time with 'bandana init --train')")
	}
	if *stateOut != "" {
		if err := writeStateFile(store, *stateOut); err != nil {
			store.Close()
			log.Fatal(err)
		}
		log.Printf("trained state written to %s", *stateOut)
	}
	serve(store, *addr, *wireAddr, adaptOpts, nil, *pprofOn, *slowMS)
}

// writeStateFile dumps the store's trained state to path.
func writeStateFile(store *core.Store, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := store.SaveState(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openAndMaybeTrain opens a freshly generated store and trains it from the
// synthetic workload. On the file backend, Train persists the result to the
// data dir so the next run can skip all of this.
func openAndMaybeTrain(cfg core.Config, workload *trace.Workload, train bool, requests int, stateOut string) (*core.Store, error) {
	store, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	log.Printf("serving with GOMAXPROCS=%d, %d cache shards per table",
		runtime.GOMAXPROCS(0), store.Stats()[0].CacheShards)

	if train {
		log.Printf("training placement and caching on %d requests...", requests)
		start := time.Now()
		report, err := store.Train(workload.Traces, core.TrainOptions{})
		if err != nil {
			store.Close()
			return nil, err
		}
		for _, tr := range report.Tables {
			log.Printf("  %-10s fanout %.1f -> %.1f, cache %d vectors, threshold %d",
				tr.Name, tr.InitialFanout, tr.FinalFanout, tr.CacheVectors, tr.Threshold)
		}
		log.Printf("training finished in %s", time.Since(start).Round(time.Millisecond))
		if dir := store.DataDir(); dir != "" {
			log.Printf("trained state persisted to %s", dir)
		}
		if stateOut != "" {
			if err := writeStateFile(store, stateOut); err != nil {
				store.Close()
				return nil, err
			}
			log.Printf("trained state written to %s", stateOut)
		}
	}
	return store, nil
}

// withPProf mounts the net/http/pprof handlers under /debug/pprof/ in front
// of next. The handlers are registered explicitly rather than by importing
// the package for its DefaultServeMux side effect, so profiling is opt-in
// (--pprof) and never reachable on a server started without the flag.
func withPProf(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", next)
	return mux
}

// logDirectIO reports the negotiated O_DIRECT outcome for a --direct run:
// the open silently falls back to buffered I/O on filesystems that reject
// O_DIRECT, and the operator should know which mode they actually got.
func logDirectIO(store *core.Store) {
	if store.DeviceStats().Store.DirectIO {
		log.Printf("block file opened with O_DIRECT (page cache bypassed)")
	} else {
		log.Printf("O_DIRECT not supported by the data dir's filesystem; using buffered I/O")
	}
}

func serve(store *core.Store, addr, wireAddr string, adaptOpts *core.AdaptOptions, rep *cluster.Replica, pprofOn bool, slowMS int) {
	if adaptOpts != nil {
		if err := store.StartAdaptation(*adaptOpts); err != nil {
			store.Close()
			log.Fatal(err)
		}
		log.Printf("online adaptation enabled: epoch every %s, re-layout every %d epoch(s), strategy %s",
			adaptOpts.Interval, adaptOpts.RelayoutEvery, adaptOpts.RelayoutStrategy)
	}
	srv := server.New(store)
	if slowMS > 0 {
		srv.SetSlowRequestThreshold(time.Duration(slowMS) * time.Millisecond)
		log.Printf("slow-request log enabled: threshold %dms", slowMS)
	}
	handler := http.Handler(srv.Handler())
	if pprofOn {
		handler = withPProf(handler)
		log.Printf("pprof profiling handlers enabled under /debug/pprof/")
	}
	if rep != nil {
		// Follow the primary: each re-sync opens the new snapshot and swaps
		// it in; the server drains and closes the superseded store. Most seq
		// advances never reach this callback — they are absorbed by tailing
		// the primary's update log into the open store.
		go rep.Run(func(next *core.Store) {
			log.Printf("re-synced to primary snapshot seq %d", rep.ActiveSeq())
			srv.SwapStore(next)
		})
		// Expose how the replica is following (incremental batches vs full
		// re-syncs, restart backoff, stall flag) for operators and the
		// cluster smoke test.
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/replica/stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(rep.Stats())
		})
		mux.Handle("/", handler)
		handler = mux
	}
	httpServer := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// The wire listener serves bwp alongside HTTP; it shares the server's
	// store-swap discipline, so a replica re-sync is safe under wire load.
	var wireLn net.Listener
	if wireAddr != "" {
		var err error
		wireLn, err = net.Listen("tcp", wireAddr)
		if err != nil {
			store.Close()
			log.Fatalf("wire listener: %v", err)
		}
		go func() {
			if err := srv.ServeWire(wireLn); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("wire listener failed: %v", err)
			}
		}()
		log.Printf("bwp wire protocol listening on %s", wireLn.Addr())
	}

	// SIGINT/SIGTERM drain the listener and then Close the store: on the
	// file backend a clean Close flushes and retires the write journal, so
	// an ordinary restart reports recoveredRecords == 0.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := <-sigc
		log.Printf("received %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// Bounded drain: requests still running after the grace period are
		// abandoned and will see errors from the closing store.
		if err := httpServer.Shutdown(ctx); err != nil {
			log.Printf("drain timed out, closing with requests in flight: %v", err)
		}
	}()

	fmt.Printf("bandana-server listening on %s (%d tables, %s, backend %s)\n",
		addr, store.NumTables(), store.Device(), store.DeviceStats().Store.Backend)
	err := httpServer.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		srv.CurrentStore().Close()
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as Shutdown starts; wait for the
	// bounded drain before closing the store. A replica stops following
	// first so a concurrent re-sync cannot swap a fresh store in under the
	// final Close (swapped-out stores were already closed by the server).
	<-drained
	if wireLn != nil {
		wireLn.Close()
	}
	if rep != nil {
		rep.Stop()
	}
	if err := srv.CurrentStore().Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("clean shutdown: store closed")
}
