// Command cluster-smoke is the cluster end-to-end smoke test CI runs
// against the real binaries: it builds bandana-server and bandana-router,
// launches two nodes (both also serving the bwp binary wire protocol) and
// a router, drives batch traffic through the router and asserts it flows
// over bwp, kill -9s one node mid-stream and asserts the router keeps
// answering with per-id errors confined to the dead node's partitions,
// then SIGHUPs a membership that pins every partition to the surviving
// node and asserts the errors disappear without the router restarting.
//
//	go run ./cmd/cluster-smoke
//
// Exits non-zero (with a diagnostic) on any violated assertion.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"bandana/internal/cluster"
)

const (
	nodeAAddr     = "127.0.0.1:19181"
	nodeBAddr     = "127.0.0.1:19182"
	routerAddr    = "127.0.0.1:19180"
	nodeAWireAddr = "127.0.0.1:19183"
	nodeBWireAddr = "127.0.0.1:19184"
	tableName     = "table1"
	numIDs        = 256
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster-smoke FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("cluster-smoke PASS")
}

type proc struct {
	name string
	cmd  *exec.Cmd
}

func start(name, bin string, args ...string) (*proc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", name, err)
	}
	return &proc{name: name, cmd: cmd}, nil
}

func (p *proc) kill9() {
	_ = p.cmd.Process.Signal(syscall.SIGKILL)
	_, _ = p.cmd.Process.Wait()
}

func (p *proc) stop() {
	if p == nil || p.cmd.Process == nil {
		return
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _, _ = p.cmd.Process.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		p.kill9()
	}
}

func waitHealthy(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("%s not healthy after %s", url, timeout)
}

func writeClusterFile(path string, cfg cluster.Config) error {
	raw, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// routerBatch posts a batch through the router and decodes the response.
func routerBatch(ids []uint32) (*cluster.BatchResponse, error) {
	body, _ := json.Marshal(cluster.BatchRequest{Table: tableName, IDs: ids})
	resp, err := http.Post("http://"+routerAddr+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("router /v1/batch: %s", resp.Status)
	}
	var out cluster.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// routerStats fetches the router's per-node counters.
func routerStats() (*cluster.RouterStats, error) {
	resp, err := http.Get("http://" + routerAddr + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("router /v1/stats: %s", resp.Status)
	}
	var out cluster.RouterStats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func nodeStat(st *cluster.RouterStats, id string) (*cluster.NodeStats, error) {
	for i := range st.Nodes {
		if st.Nodes[i].ID == id {
			return &st.Nodes[i], nil
		}
	}
	return nil, fmt.Errorf("node %s missing from router stats", id)
}

func run() error {
	tmp, err := os.MkdirTemp("", "cluster-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	fmt.Fprintln(os.Stderr, "building binaries...")
	serverBin := filepath.Join(tmp, "bandana-server")
	routerBin := filepath.Join(tmp, "bandana-router")
	for bin, pkg := range map[string]string{serverBin: "./cmd/bandana-server", routerBin: "./cmd/bandana-router"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			return fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// Two nodes over identical synthetic tables (same seed/scale): any id is
	// answerable by either node, so partitioning is purely a routing choice.
	common := []string{"--scale", "0.0005", "--tables", "2", "--train=false", "--seed", "1"}
	nodeA, err := start("node-a", serverBin, append([]string{"--addr", nodeAAddr, "--wire-addr", nodeAWireAddr}, common...)...)
	if err != nil {
		return err
	}
	defer nodeA.stop()
	nodeB, err := start("node-b", serverBin, append([]string{"--addr", nodeBAddr, "--wire-addr", nodeBWireAddr}, common...)...)
	if err != nil {
		return err
	}
	defer nodeB.stop()
	if err := waitHealthy("http://"+nodeAAddr, 30*time.Second); err != nil {
		return err
	}
	if err := waitHealthy("http://"+nodeBAddr, 30*time.Second); err != nil {
		return err
	}

	cfg := cluster.Config{
		IDRangeSize: 32,
		Nodes: []cluster.Node{
			{ID: "node-a", Addr: "http://" + nodeAAddr, WireAddr: nodeAWireAddr, Role: cluster.RolePrimary},
			{ID: "node-b", Addr: "http://" + nodeBAddr, WireAddr: nodeBWireAddr, Role: cluster.RolePrimary},
		},
	}
	clusterPath := filepath.Join(tmp, "cluster.json")
	if err := writeClusterFile(clusterPath, cfg); err != nil {
		return err
	}
	router, err := start("router", routerBin, "--addr", routerAddr, "--cluster", clusterPath)
	if err != nil {
		return err
	}
	defer router.stop()
	if err := waitHealthy("http://"+routerAddr, 30*time.Second); err != nil {
		return err
	}

	ids := make([]uint32, numIDs)
	for i := range ids {
		ids[i] = uint32(i)
	}

	// Healthy cluster: the scatter-gathered batch must come back complete.
	resp, err := routerBatch(ids)
	if err != nil {
		return err
	}
	if len(resp.Errors) != 0 {
		return fmt.Errorf("healthy cluster returned %d per-id errors: %+v", len(resp.Errors), resp.Errors[0])
	}
	for i, v := range resp.Vectors {
		if len(v) == 0 {
			return fmt.Errorf("healthy cluster returned empty vector for id %d", ids[i])
		}
	}
	fmt.Fprintf(os.Stderr, "healthy scatter-gather: %d ids across 2 nodes OK\n", numIDs)

	// The healthy batch must have travelled over bwp to both nodes — the
	// router prefers the binary protocol whenever a node advertises it.
	st, err := routerStats()
	if err != nil {
		return err
	}
	for _, id := range []string{"node-a", "node-b"} {
		ns, err := nodeStat(st, id)
		if err != nil {
			return err
		}
		if ns.WireRequests == 0 {
			return fmt.Errorf("%s advertises bwp but served no wire requests: %+v", id, ns)
		}
		if ns.WireFallbacks != 0 {
			return fmt.Errorf("%s fell back to HTTP on a healthy cluster: %+v", id, ns)
		}
	}
	fmt.Fprintln(os.Stderr, "router-node traffic confirmed on bwp for both nodes")

	// Continuous traffic while we kill node-b: every response must stay
	// HTTP 200 (failures degrade to per-id errors, never request errors).
	var trafficErr atomic.Value
	stopTraffic := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopTraffic:
				return
			default:
			}
			if _, err := routerBatch(ids); err != nil {
				trafficErr.Store(err.Error())
				return
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	fmt.Fprintln(os.Stderr, "kill -9 node-b mid-stream...")
	nodeB.kill9()
	time.Sleep(500 * time.Millisecond)

	// Degraded cluster: the kill -9 severed node-b's bwp connection
	// mid-stream, so the router must degrade to per-id errors exactly for
	// node-b's partitions (bwp drop -> HTTP fallback -> dead -> per-id
	// error), never a request-level failure.
	resp, err = routerBatch(ids)
	if err != nil {
		return fmt.Errorf("router stopped answering after node loss: %w", err)
	}
	errIDs := map[uint32]bool{}
	for _, e := range resp.Errors {
		errIDs[e.ID] = true
		if e.Node != "node-b" {
			return fmt.Errorf("per-id error attributed to %s, expected node-b: %+v", e.Node, e)
		}
	}
	if len(errIDs) == 0 {
		return fmt.Errorf("no per-id errors after killing node-b (expected its partitions to fail)")
	}
	for i, id := range ids {
		owner, err := cfg.Owner(tableName, id)
		if err != nil {
			return err
		}
		dead := owner == "node-b"
		if dead != errIDs[id] {
			return fmt.Errorf("id %d owned by %s: error=%v (want %v)", id, owner, errIDs[id], dead)
		}
		if !dead && len(resp.Vectors[i]) == 0 {
			return fmt.Errorf("id %d owned by surviving node-a came back empty", id)
		}
	}
	fmt.Fprintf(os.Stderr, "node loss isolated: %d/%d ids report per-id errors, rest served\n", len(errIDs), numIDs)

	// The dead node's wire transport must have registered the loss: the
	// router tried bwp, saw the dropped connection, and fell back.
	st, err = routerStats()
	if err != nil {
		return err
	}
	nsB, err := nodeStat(st, "node-b")
	if err != nil {
		return err
	}
	if nsB.WireFallbacks == 0 {
		return fmt.Errorf("node-b's severed bwp stream produced no wire fallbacks: %+v", nsB)
	}
	nsA, err := nodeStat(st, "node-a")
	if err != nil {
		return err
	}
	if nsA.WireFallbacks != 0 {
		return fmt.Errorf("surviving node-a fell back to HTTP: %+v", nsA)
	}
	fmt.Fprintf(os.Stderr, "severed bwp stream degraded cleanly: %d wire fallbacks on node-b, 0 on node-a\n", nsB.WireFallbacks)

	// close (not send): the traffic goroutine may already have exited on a
	// failure, and a send would deadlock instead of reporting it.
	close(stopTraffic)
	wg.Wait()
	if msg := trafficErr.Load(); msg != nil {
		return fmt.Errorf("traffic loop saw a request-level failure: %v", msg)
	}

	// SIGHUP a membership without node-b: after the reload, every partition
	// belongs to node-a and the errors must disappear.
	cfg.Nodes = cfg.Nodes[:1]
	if err := writeClusterFile(clusterPath, cfg); err != nil {
		return err
	}
	if err := router.cmd.Process.Signal(syscall.SIGHUP); err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = routerBatch(ids)
		if err != nil {
			return err
		}
		if len(resp.Errors) == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("errors persist %s after SIGHUP membership reload: %+v", "10s", resp.Errors[0])
		}
		time.Sleep(200 * time.Millisecond)
	}
	fmt.Fprintln(os.Stderr, "SIGHUP reload rerouted the dead node's partitions: full batch served")
	return nil
}
