// Command cluster-smoke is the cluster end-to-end smoke test CI runs
// against the real binaries: it builds bandana-server and bandana-router,
// launches two nodes (both also serving the bwp binary wire protocol) and
// a router, drives batch traffic through the router and asserts it flows
// over bwp, kill -9s one node mid-stream and asserts the router keeps
// answering with per-id errors confined to the dead node's partitions,
// then SIGHUPs a membership that pins every partition to the surviving
// node and asserts the errors disappear without the router restarting.
//
// A second phase exercises replication under updates: a file-backed primary
// and a --replica-of follower, a continuous POST /v1/update stream, and the
// assertions that the replica converges by tailing the primary's update log
// (one bootstrap sync, zero store swaps, every record applied incrementally),
// that it serves the updated bytes, and that its lag stays bounded across a
// kill -9 and restart of the primary.
//
//	go run ./cmd/cluster-smoke
//
// Exits non-zero (with a diagnostic) on any violated assertion.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"bandana/internal/cluster"
)

const (
	nodeAAddr     = "127.0.0.1:19181"
	nodeBAddr     = "127.0.0.1:19182"
	routerAddr    = "127.0.0.1:19180"
	nodeAWireAddr = "127.0.0.1:19183"
	nodeBWireAddr = "127.0.0.1:19184"
	primaryAddr   = "127.0.0.1:19185"
	replicaAddr   = "127.0.0.1:19186"
	tableName     = "table1"
	numIDs        = 256
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster-smoke FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("cluster-smoke PASS")
}

type proc struct {
	name string
	cmd  *exec.Cmd
}

func start(name, bin string, args ...string) (*proc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", name, err)
	}
	return &proc{name: name, cmd: cmd}, nil
}

func (p *proc) kill9() {
	_ = p.cmd.Process.Signal(syscall.SIGKILL)
	_, _ = p.cmd.Process.Wait()
}

func (p *proc) stop() {
	if p == nil || p.cmd.Process == nil {
		return
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _, _ = p.cmd.Process.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		p.kill9()
	}
}

func waitHealthy(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("%s not healthy after %s", url, timeout)
}

func writeClusterFile(path string, cfg cluster.Config) error {
	raw, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// routerBatch posts a batch through the router and decodes the response.
func routerBatch(ids []uint32) (*cluster.BatchResponse, error) {
	body, _ := json.Marshal(cluster.BatchRequest{Table: tableName, IDs: ids})
	resp, err := http.Post("http://"+routerAddr+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("router /v1/batch: %s", resp.Status)
	}
	var out cluster.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// routerStats fetches the router's per-node counters.
func routerStats() (*cluster.RouterStats, error) {
	resp, err := http.Get("http://" + routerAddr + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("router /v1/stats: %s", resp.Status)
	}
	var out cluster.RouterStats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func nodeStat(st *cluster.RouterStats, id string) (*cluster.NodeStats, error) {
	for i := range st.Nodes {
		if st.Nodes[i].ID == id {
			return &st.Nodes[i], nil
		}
	}
	return nil, fmt.Errorf("node %s missing from router stats", id)
}

// postUpdate writes one vector through a node's JSON update endpoint and
// returns the store seq the update committed at.
func postUpdate(base string, id uint32, vec []float32) (uint64, error) {
	body, _ := json.Marshal(struct {
		Table  string    `json:"table"`
		ID     uint32    `json:"id"`
		Vector []float32 `json:"vector"`
	}{tableName, id, vec})
	resp, err := http.Post(base+"/v1/update", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s/v1/update: %s", base, resp.Status)
	}
	var out struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Seq, nil
}

// getVector fetches one vector from a node's JSON lookup endpoint.
func getVector(base string, id uint32) ([]float32, error) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/lookup?table=%s&id=%d", base, tableName, id))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/v1/lookup: %s", base, resp.Status)
	}
	var out struct {
		Vector []float32 `json:"vector"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Vector, nil
}

// replicaStats fetches the replica's sync-state counters.
func replicaStats() (*cluster.ReplicaStats, error) {
	resp, err := http.Get("http://" + replicaAddr + "/v1/replica/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica /v1/replica/stats: %s", resp.Status)
	}
	var out cluster.ReplicaStats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// waitReplicaSeq polls the replica until its active seq reaches want —
// bounded lag is the property under test, so a miss is a failure.
func waitReplicaSeq(want uint64, timeout time.Duration) (*cluster.ReplicaStats, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := replicaStats()
		if err == nil && st.ActiveSeq >= want {
			return st, nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return nil, fmt.Errorf("replica stats unreachable after %s: %w", timeout, err)
			}
			return nil, fmt.Errorf("replica lag unbounded: stuck at seq %d (want >= %d) after %s: %+v",
				st.ActiveSeq, want, timeout, *st)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// updateVec is the deterministic payload for (id, phase): duplicate writes
// of the same (id, phase) are idempotent, so the retrying streamer in the
// kill -9 window cannot perturb the final image.
func updateVec(id uint32, dim, phase int) []float32 {
	v := make([]float32, dim)
	for d := range v {
		v[d] = float32(phase*100) + float32(id%31) + float32(d%13)*0.5
	}
	return v
}

func sameVec(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func run() error {
	tmp, err := os.MkdirTemp("", "cluster-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	fmt.Fprintln(os.Stderr, "building binaries...")
	serverBin := filepath.Join(tmp, "bandana-server")
	routerBin := filepath.Join(tmp, "bandana-router")
	for bin, pkg := range map[string]string{serverBin: "./cmd/bandana-server", routerBin: "./cmd/bandana-router"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			return fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// Two nodes over identical synthetic tables (same seed/scale): any id is
	// answerable by either node, so partitioning is purely a routing choice.
	common := []string{"--scale", "0.0005", "--tables", "2", "--train=false", "--seed", "1"}
	nodeA, err := start("node-a", serverBin, append([]string{"--addr", nodeAAddr, "--wire-addr", nodeAWireAddr}, common...)...)
	if err != nil {
		return err
	}
	defer nodeA.stop()
	nodeB, err := start("node-b", serverBin, append([]string{"--addr", nodeBAddr, "--wire-addr", nodeBWireAddr}, common...)...)
	if err != nil {
		return err
	}
	defer nodeB.stop()
	if err := waitHealthy("http://"+nodeAAddr, 30*time.Second); err != nil {
		return err
	}
	if err := waitHealthy("http://"+nodeBAddr, 30*time.Second); err != nil {
		return err
	}

	cfg := cluster.Config{
		IDRangeSize: 32,
		Nodes: []cluster.Node{
			{ID: "node-a", Addr: "http://" + nodeAAddr, WireAddr: nodeAWireAddr, Role: cluster.RolePrimary},
			{ID: "node-b", Addr: "http://" + nodeBAddr, WireAddr: nodeBWireAddr, Role: cluster.RolePrimary},
		},
	}
	clusterPath := filepath.Join(tmp, "cluster.json")
	if err := writeClusterFile(clusterPath, cfg); err != nil {
		return err
	}
	router, err := start("router", routerBin, "--addr", routerAddr, "--cluster", clusterPath)
	if err != nil {
		return err
	}
	defer router.stop()
	if err := waitHealthy("http://"+routerAddr, 30*time.Second); err != nil {
		return err
	}

	ids := make([]uint32, numIDs)
	for i := range ids {
		ids[i] = uint32(i)
	}

	// Healthy cluster: the scatter-gathered batch must come back complete.
	resp, err := routerBatch(ids)
	if err != nil {
		return err
	}
	if len(resp.Errors) != 0 {
		return fmt.Errorf("healthy cluster returned %d per-id errors: %+v", len(resp.Errors), resp.Errors[0])
	}
	for i, v := range resp.Vectors {
		if len(v) == 0 {
			return fmt.Errorf("healthy cluster returned empty vector for id %d", ids[i])
		}
	}
	fmt.Fprintf(os.Stderr, "healthy scatter-gather: %d ids across 2 nodes OK\n", numIDs)

	// The healthy batch must have travelled over bwp to both nodes — the
	// router prefers the binary protocol whenever a node advertises it.
	st, err := routerStats()
	if err != nil {
		return err
	}
	for _, id := range []string{"node-a", "node-b"} {
		ns, err := nodeStat(st, id)
		if err != nil {
			return err
		}
		if ns.WireRequests == 0 {
			return fmt.Errorf("%s advertises bwp but served no wire requests: %+v", id, ns)
		}
		if ns.WireFallbacks != 0 {
			return fmt.Errorf("%s fell back to HTTP on a healthy cluster: %+v", id, ns)
		}
	}
	fmt.Fprintln(os.Stderr, "router-node traffic confirmed on bwp for both nodes")

	// Continuous traffic while we kill node-b: every response must stay
	// HTTP 200 (failures degrade to per-id errors, never request errors).
	var trafficErr atomic.Value
	stopTraffic := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopTraffic:
				return
			default:
			}
			if _, err := routerBatch(ids); err != nil {
				trafficErr.Store(err.Error())
				return
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	fmt.Fprintln(os.Stderr, "kill -9 node-b mid-stream...")
	nodeB.kill9()
	time.Sleep(500 * time.Millisecond)

	// Degraded cluster: the kill -9 severed node-b's bwp connection
	// mid-stream, so the router must degrade to per-id errors exactly for
	// node-b's partitions (bwp drop -> HTTP fallback -> dead -> per-id
	// error), never a request-level failure.
	resp, err = routerBatch(ids)
	if err != nil {
		return fmt.Errorf("router stopped answering after node loss: %w", err)
	}
	errIDs := map[uint32]bool{}
	for _, e := range resp.Errors {
		errIDs[e.ID] = true
		if e.Node != "node-b" {
			return fmt.Errorf("per-id error attributed to %s, expected node-b: %+v", e.Node, e)
		}
	}
	if len(errIDs) == 0 {
		return fmt.Errorf("no per-id errors after killing node-b (expected its partitions to fail)")
	}
	for i, id := range ids {
		owner, err := cfg.Owner(tableName, id)
		if err != nil {
			return err
		}
		dead := owner == "node-b"
		if dead != errIDs[id] {
			return fmt.Errorf("id %d owned by %s: error=%v (want %v)", id, owner, errIDs[id], dead)
		}
		if !dead && len(resp.Vectors[i]) == 0 {
			return fmt.Errorf("id %d owned by surviving node-a came back empty", id)
		}
	}
	fmt.Fprintf(os.Stderr, "node loss isolated: %d/%d ids report per-id errors, rest served\n", len(errIDs), numIDs)

	// The dead node's wire transport must have registered the loss: the
	// router tried bwp, saw the dropped connection, and fell back.
	st, err = routerStats()
	if err != nil {
		return err
	}
	nsB, err := nodeStat(st, "node-b")
	if err != nil {
		return err
	}
	if nsB.WireFallbacks == 0 {
		return fmt.Errorf("node-b's severed bwp stream produced no wire fallbacks: %+v", nsB)
	}
	nsA, err := nodeStat(st, "node-a")
	if err != nil {
		return err
	}
	if nsA.WireFallbacks != 0 {
		return fmt.Errorf("surviving node-a fell back to HTTP: %+v", nsA)
	}
	fmt.Fprintf(os.Stderr, "severed bwp stream degraded cleanly: %d wire fallbacks on node-b, 0 on node-a\n", nsB.WireFallbacks)

	// close (not send): the traffic goroutine may already have exited on a
	// failure, and a send would deadlock instead of reporting it.
	close(stopTraffic)
	wg.Wait()
	if msg := trafficErr.Load(); msg != nil {
		return fmt.Errorf("traffic loop saw a request-level failure: %v", msg)
	}

	// SIGHUP a membership without node-b: after the reload, every partition
	// belongs to node-a and the errors must disappear.
	cfg.Nodes = cfg.Nodes[:1]
	if err := writeClusterFile(clusterPath, cfg); err != nil {
		return err
	}
	if err := router.cmd.Process.Signal(syscall.SIGHUP); err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = routerBatch(ids)
		if err != nil {
			return err
		}
		if len(resp.Errors) == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("errors persist %s after SIGHUP membership reload: %+v", "10s", resp.Errors[0])
		}
		time.Sleep(200 * time.Millisecond)
	}
	fmt.Fprintln(os.Stderr, "SIGHUP reload rerouted the dead node's partitions: full batch served")

	return runReplicationPhase(tmp, serverBin)
}

// runReplicationPhase exercises the incremental replication path end to end:
// a file-backed primary, a --replica-of follower, and a POST /v1/update
// stream. The replica must converge by tailing the primary's update log
// (one bootstrap sync, zero snapshot re-syncs, every record applied as a
// delta), serve the updated bytes, and re-converge with bounded lag after
// the primary is kill -9ed mid-stream and restarted from its data dir.
func runReplicationPhase(tmp, serverBin string) error {
	fmt.Fprintln(os.Stderr, "replication: starting file-backed primary and incremental replica...")
	primaryURL := "http://" + primaryAddr
	replicaURL := "http://" + replicaAddr
	// --sync always: the kill -9 below must not lose committed update-log
	// records, or the restarted primary's seq would fall behind the replica.
	primaryArgs := []string{
		"--addr", primaryAddr, "--backend", "file",
		"--data-dir", filepath.Join(tmp, "primary-data"), "--sync", "always",
		"--scale", "0.0005", "--tables", "2", "--train=false", "--seed", "1",
	}
	primary, err := start("primary", serverBin, primaryArgs...)
	if err != nil {
		return err
	}
	defer func() { primary.stop() }()
	if err := waitHealthy(primaryURL, 30*time.Second); err != nil {
		return err
	}
	replica, err := start("replica", serverBin,
		"--addr", replicaAddr, "--replica-of", primaryURL,
		"--data-dir", filepath.Join(tmp, "replica-data"), "--replica-poll", "200ms")
	if err != nil {
		return err
	}
	defer replica.stop()
	// Healthy implies the snapshot bootstrap finished: the replica only
	// serves after Bootstrap returns.
	if err := waitHealthy(replicaURL, 30*time.Second); err != nil {
		return err
	}

	probe, err := getVector(primaryURL, 0)
	if err != nil {
		return err
	}
	dim := len(probe)

	// Stream one update per id and require the replica to catch up by
	// tailing the update log: exactly one sync (the bootstrap), zero 409
	// restarts, and every streamed record applied as an incremental delta
	// rather than via a full-image re-sync.
	const updates1 = numIDs
	var lastSeq uint64
	for i := 0; i < updates1; i++ {
		id := uint32(i % numIDs)
		if lastSeq, err = postUpdate(primaryURL, id, updateVec(id, dim, 1)); err != nil {
			return err
		}
	}
	st, err := waitReplicaSeq(lastSeq, 20*time.Second)
	if err != nil {
		return err
	}
	if st.Syncs != 1 {
		return fmt.Errorf("replica re-synced the full image under an update stream (%d syncs, want 1 bootstrap): %+v", st.Syncs, *st)
	}
	if st.SyncRestarts != 0 || st.SyncStalled {
		return fmt.Errorf("replica hit the 409 restart path on a quiet primary: %+v", *st)
	}
	if st.DeltaRecords != updates1 {
		return fmt.Errorf("replica applied %d delta records, want %d (one per streamed update): %+v", st.DeltaRecords, updates1, *st)
	}
	for _, id := range []uint32{0, 1, 131, numIDs - 1} {
		p, err := getVector(primaryURL, id)
		if err != nil {
			return err
		}
		r, err := getVector(replicaURL, id)
		if err != nil {
			return err
		}
		if !sameVec(p, r) {
			return fmt.Errorf("id %d diverged after incremental catch-up: primary %v != replica %v", id, p[:4], r[:4])
		}
	}
	fmt.Fprintf(os.Stderr, "replication: replica caught up to seq %d via %d delta records in %d batches, 1 sync, 0 restarts\n",
		st.ActiveSeq, st.DeltaRecords, st.DeltaBatches)

	// Continuous stream across a primary crash: a streamer retries each
	// update through the outage while the primary is kill -9ed and
	// restarted from the same data dir. The replica must re-converge to the
	// final seq within a bounded window and serve the new bytes. (A full
	// re-sync is permitted here — crash recovery may invalidate the
	// replica's tail position — but stalling is not.)
	const updates2 = 2 * numIDs
	var finalSeq atomic.Uint64
	var streamErr atomic.Value
	streamDone := make(chan struct{})
	streamHalf := make(chan struct{})
	go func() {
		defer close(streamDone)
		deadline := time.Now().Add(60 * time.Second)
		for i := 0; i < updates2; i++ {
			if i == updates2/2 {
				close(streamHalf)
			}
			id := uint32(i % numIDs)
			for {
				seq, err := postUpdate(primaryURL, id, updateVec(id, dim, 2))
				if err == nil {
					finalSeq.Store(seq)
					break
				}
				if time.Now().After(deadline) {
					streamErr.Store(fmt.Sprintf("update id %d never committed: %v", id, err))
					return
				}
				time.Sleep(50 * time.Millisecond)
			}
		}
	}()
	// Kill only once the stream is demonstrably mid-flight: the streamer
	// signals at the halfway mark, so the crash always interrupts live
	// update traffic rather than landing after a fast stream finished.
	<-streamHalf
	fmt.Fprintln(os.Stderr, "replication: kill -9 primary mid-update-stream...")
	primary.kill9()
	time.Sleep(300 * time.Millisecond)
	primary, err = start("primary", serverBin, primaryArgs...)
	if err != nil {
		return err
	}
	if err := waitHealthy(primaryURL, 30*time.Second); err != nil {
		return err
	}
	<-streamDone
	if msg := streamErr.Load(); msg != nil {
		return fmt.Errorf("update stream did not survive the primary restart: %v", msg)
	}
	st, err = waitReplicaSeq(finalSeq.Load(), 30*time.Second)
	if err != nil {
		return err
	}
	if st.SyncStalled {
		return fmt.Errorf("replica stalled re-converging after primary crash: %+v", *st)
	}
	for _, id := range []uint32{0, 53, numIDs - 1} {
		p, err := getVector(primaryURL, id)
		if err != nil {
			return err
		}
		r, err := getVector(replicaURL, id)
		if err != nil {
			return err
		}
		if !sameVec(p, r) {
			return fmt.Errorf("id %d diverged after primary crash+restart: primary %v != replica %v", id, p[:4], r[:4])
		}
	}
	fmt.Fprintf(os.Stderr, "replication: replica re-converged to seq %d across kill -9 (%d syncs, %d delta records)\n",
		st.ActiveSeq, st.Syncs, st.DeltaRecords)
	return nil
}
