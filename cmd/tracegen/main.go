// Command tracegen generates synthetic embedding-lookup traces calibrated to
// the paper's Table 1 and writes them to disk in Bandana's binary trace
// format, one file per table.
//
// Usage:
//
//	tracegen --out /tmp/traces --scale 0.004 --requests 5000
//	tracegen --stats /tmp/traces/table2.trace     # print stats of a trace
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bandana/internal/trace"
	"bandana/internal/version"
)

func main() {
	var (
		out         = flag.String("out", "", "output directory for generated traces")
		scale       = flag.Float64("scale", 0.004, "table size scale vs the paper's 10-20M vectors")
		requests    = flag.Int("requests", 5000, "number of requests to generate")
		seed        = flag.Int64("seed", 1, "random seed")
		drift       = flag.Int("drift", 0, "rotate each table's hot communities every N requests (0 = stationary workload)")
		stats       = flag.String("stats", "", "print statistics of an existing trace file and exit")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}

	if *stats != "" {
		if err := printStats(*stats); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "error: --out directory is required (or use --stats)")
		os.Exit(2)
	}
	if err := generate(*out, *scale, *requests, *seed, *drift); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func generate(dir string, scale float64, requests int, seed int64, drift int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	profiles := trace.DefaultProfiles(scale)
	if drift > 0 {
		profiles = trace.DriftProfiles(scale, drift)
	}
	for i := range profiles {
		profiles[i].Seed += seed * 100
	}
	w := trace.GenerateWorkload(profiles, requests)
	for i, tr := range w.Traces {
		path := filepath.Join(dir, fmt.Sprintf("%s.trace", profiles[i].Name))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := tr.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		s := tr.Stats()
		fmt.Printf("%-10s %10d vectors %10d lookups  avg %.1f lookups/request  compulsory %.2f%%  -> %s\n",
			profiles[i].Name, s.NumVectors, s.Lookups, s.AvgLookups, s.CompulsoryMissFrac*100, path)
	}
	return nil
}

func printStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadTrace(f)
	if err != nil {
		return err
	}
	s := tr.Stats()
	fmt.Printf("table:              %s\n", s.TableName)
	fmt.Printf("vectors:            %d\n", s.NumVectors)
	fmt.Printf("queries:            %d\n", s.Queries)
	fmt.Printf("lookups:            %d\n", s.Lookups)
	fmt.Printf("avg lookups/query:  %.2f\n", s.AvgLookups)
	fmt.Printf("unique vectors:     %d\n", s.UniqueVectors)
	fmt.Printf("compulsory misses:  %.2f%%\n", s.CompulsoryMissFrac*100)
	fmt.Printf("max access count:   %d\n", s.MaxAccessCount)
	return nil
}
