// Command promcheck validates a Prometheus text-format exposition: it parses
// the input, checks syntax, metric/label naming, TYPE declarations and
// duplicate series, and exits non-zero on the first violation. CI scrapes a
// live bandana-server's /metrics endpoint and pipes the body through this
// tool so an exposition regression fails the build rather than a scrape.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promcheck
//	promcheck metrics.txt
//	promcheck --require bandana_stage_duration_us --require bandana_http_requests_total metrics.txt
//
// --require asserts a substring appears in the exposition (repeatable) —
// CI uses it to pin that the stage histograms actually show up, not just
// that whatever was exposed parses.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bandana/internal/metrics"
)

// requireList collects repeated --require flags.
type requireList []string

func (r *requireList) String() string     { return strings.Join(*r, ",") }
func (r *requireList) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var required requireList
	flag.Var(&required, "require", "fail unless this substring appears in the exposition (repeatable)")
	minSamples := flag.Int("min-samples", 1, "fail if fewer than this many sample lines parse")
	flag.Parse()

	in := io.Reader(os.Stdin)
	name := "<stdin>"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "promcheck: at most one input file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	var buf bytes.Buffer
	n, err := metrics.ValidateExposition(io.TeeReader(in, &buf))
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", name, err)
		os.Exit(1)
	}
	if n < *minSamples {
		fmt.Fprintf(os.Stderr, "promcheck: %s: only %d sample line(s), want >= %d\n", name, n, *minSamples)
		os.Exit(1)
	}
	body := buf.String()
	for _, want := range required {
		if !strings.Contains(body, want) {
			fmt.Fprintf(os.Stderr, "promcheck: %s: required substring %q not found\n", name, want)
			os.Exit(1)
		}
	}
	fmt.Printf("promcheck: %s: %d samples OK\n", name, n)
}
