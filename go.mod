module bandana

go 1.24
