// Package layout maps embedding vectors to physical NVM block locations.
//
// A Layout is a permutation of a table's vector IDs chopped into fixed-size
// blocks (32 vectors of 128 B = one 4 KB NVM block in the paper's
// configuration). The partitioners (K-means, SHP) produce orderings; the
// cache simulator and the Bandana store consume the resulting
// vector→(block, slot) mapping.
package layout

import (
	"fmt"
	"math/rand"
)

// DefaultBlockVectors is the number of vectors per NVM block for 128 B
// vectors and 4 KB blocks.
const DefaultBlockVectors = 32

// Layout is an immutable placement of numVectors vectors into blocks of
// blockVectors vectors each.
type Layout struct {
	blockVectors int
	order        []uint32 // position -> vector ID
	posOf        []uint32 // vector ID -> position
}

// Identity returns the layout that stores vectors in ID order.
func Identity(numVectors, blockVectors int) *Layout {
	order := make([]uint32, numVectors)
	for i := range order {
		order[i] = uint32(i)
	}
	l, err := FromOrder(order, blockVectors)
	if err != nil {
		panic(err) // identity order is always valid
	}
	return l
}

// Random returns a layout with a uniformly random placement. It serves as a
// worst-case/no-locality baseline in the experiments.
func Random(numVectors, blockVectors int, seed int64) *Layout {
	rng := rand.New(rand.NewSource(seed))
	order := make([]uint32, numVectors)
	for i, p := range rng.Perm(numVectors) {
		order[i] = uint32(p)
	}
	l, err := FromOrder(order, blockVectors)
	if err != nil {
		panic(err)
	}
	return l
}

// FromOrder builds a layout from a permutation of vector IDs (position i of
// the slice holds the ID stored at physical position i). It validates that
// order is a true permutation.
func FromOrder(order []uint32, blockVectors int) (*Layout, error) {
	if blockVectors <= 0 {
		blockVectors = DefaultBlockVectors
	}
	n := len(order)
	posOf := make([]uint32, n)
	seen := make([]bool, n)
	for pos, id := range order {
		if int(id) >= n {
			return nil, fmt.Errorf("layout: order references vector %d outside table of %d", id, n)
		}
		if seen[id] {
			return nil, fmt.Errorf("layout: vector %d appears twice in order", id)
		}
		seen[id] = true
		posOf[id] = uint32(pos)
	}
	return &Layout{
		blockVectors: blockVectors,
		order:        append([]uint32(nil), order...),
		posOf:        posOf,
	}, nil
}

// NumVectors returns the number of vectors placed.
func (l *Layout) NumVectors() int { return len(l.order) }

// BlockVectors returns the number of vectors per block.
func (l *Layout) BlockVectors() int { return l.blockVectors }

// NumBlocks returns the number of blocks needed to store all vectors.
func (l *Layout) NumBlocks() int {
	return (len(l.order) + l.blockVectors - 1) / l.blockVectors
}

// BlockOf returns the block index holding vector id.
func (l *Layout) BlockOf(id uint32) int {
	return int(l.posOf[id]) / l.blockVectors
}

// SlotOf returns the slot of vector id within its block.
func (l *Layout) SlotOf(id uint32) int {
	return int(l.posOf[id]) % l.blockVectors
}

// PositionOf returns the global physical position of vector id.
func (l *Layout) PositionOf(id uint32) int { return int(l.posOf[id]) }

// VectorAt returns the vector stored at physical position pos.
func (l *Layout) VectorAt(pos int) uint32 { return l.order[pos] }

// BlockMembers appends the IDs stored in block b to dst and returns it. The
// last block may hold fewer than BlockVectors vectors.
func (l *Layout) BlockMembers(b int, dst []uint32) []uint32 {
	start := b * l.blockVectors
	end := start + l.blockVectors
	if end > len(l.order) {
		end = len(l.order)
	}
	if start >= end {
		return dst
	}
	return append(dst, l.order[start:end]...)
}

// Order returns a copy of the full placement permutation.
func (l *Layout) Order() []uint32 {
	return append([]uint32(nil), l.order...)
}

// Fanout returns the number of distinct blocks a query's lookups touch under
// this layout. The average fanout over a trace is the objective SHP
// minimises (Equation 3 in the paper).
func (l *Layout) Fanout(query []uint32) int {
	if len(query) == 0 {
		return 0
	}
	seen := make(map[int]struct{}, len(query))
	for _, id := range query {
		seen[l.BlockOf(id)] = struct{}{}
	}
	return len(seen)
}

// AverageFanout computes the mean fanout over a set of queries.
func (l *Layout) AverageFanout(queries [][]uint32) float64 {
	if len(queries) == 0 {
		return 0
	}
	var total int64
	for _, q := range queries {
		total += int64(l.Fanout(q))
	}
	return float64(total) / float64(len(queries))
}
