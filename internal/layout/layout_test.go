package layout

import (
	"testing"
	"testing/quick"
)

func TestIdentityLayout(t *testing.T) {
	l := Identity(100, 32)
	if l.NumVectors() != 100 {
		t.Fatalf("NumVectors = %d", l.NumVectors())
	}
	if l.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d, want 4", l.NumBlocks())
	}
	if l.BlockOf(0) != 0 || l.BlockOf(31) != 0 || l.BlockOf(32) != 1 || l.BlockOf(99) != 3 {
		t.Fatalf("block mapping wrong")
	}
	if l.SlotOf(33) != 1 {
		t.Fatalf("slot mapping wrong: %d", l.SlotOf(33))
	}
	if l.PositionOf(42) != 42 || l.VectorAt(42) != 42 {
		t.Fatalf("identity position mapping wrong")
	}
	if l.BlockVectors() != 32 {
		t.Fatalf("block vectors = %d", l.BlockVectors())
	}
}

func TestFromOrderValidation(t *testing.T) {
	if _, err := FromOrder([]uint32{0, 1, 5}, 2); err == nil {
		t.Fatal("out-of-range ID should be rejected")
	}
	if _, err := FromOrder([]uint32{0, 1, 1}, 2); err == nil {
		t.Fatal("duplicate ID should be rejected")
	}
	l, err := FromOrder([]uint32{2, 0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.BlockVectors() != DefaultBlockVectors {
		t.Fatalf("zero blockVectors should default to %d", DefaultBlockVectors)
	}
}

func TestFromOrderMapping(t *testing.T) {
	// Physical order: positions 0..3 hold vectors 3,1,0,2 with 2 per block.
	l, err := FromOrder([]uint32{3, 1, 0, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.BlockOf(3) != 0 || l.BlockOf(1) != 0 {
		t.Fatalf("block 0 should hold vectors 3 and 1")
	}
	if l.BlockOf(0) != 1 || l.BlockOf(2) != 1 {
		t.Fatalf("block 1 should hold vectors 0 and 2")
	}
	if l.SlotOf(1) != 1 || l.SlotOf(0) != 0 {
		t.Fatalf("slots wrong")
	}
	members := l.BlockMembers(0, nil)
	if len(members) != 2 || members[0] != 3 || members[1] != 1 {
		t.Fatalf("members = %v", members)
	}
}

func TestBlockMembersLastPartialBlock(t *testing.T) {
	l := Identity(5, 4)
	if got := l.BlockMembers(1, nil); len(got) != 1 || got[0] != 4 {
		t.Fatalf("partial block members = %v", got)
	}
	if got := l.BlockMembers(5, nil); len(got) != 0 {
		t.Fatalf("out of range block should be empty, got %v", got)
	}
	// Appends to dst.
	dst := []uint32{9}
	if got := l.BlockMembers(0, dst); len(got) != 5 || got[0] != 9 {
		t.Fatalf("append semantics broken: %v", got)
	}
}

func TestRandomLayoutIsValidPermutation(t *testing.T) {
	l := Random(1000, 32, 7)
	seen := make([]bool, 1000)
	for pos := 0; pos < 1000; pos++ {
		id := l.VectorAt(pos)
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		if l.PositionOf(id) != pos {
			t.Fatalf("posOf inconsistent for %d", id)
		}
	}
	// Determinism.
	l2 := Random(1000, 32, 7)
	for pos := 0; pos < 1000; pos++ {
		if l.VectorAt(pos) != l2.VectorAt(pos) {
			t.Fatalf("random layout not deterministic in seed")
		}
	}
}

func TestFanout(t *testing.T) {
	l := Identity(100, 10)
	if f := l.Fanout([]uint32{1, 2, 3}); f != 1 {
		t.Fatalf("fanout = %d, want 1", f)
	}
	if f := l.Fanout([]uint32{1, 11, 21}); f != 3 {
		t.Fatalf("fanout = %d, want 3", f)
	}
	if f := l.Fanout(nil); f != 0 {
		t.Fatalf("empty query fanout = %d", f)
	}
	avg := l.AverageFanout([][]uint32{{1, 2}, {1, 11}})
	if avg != 1.5 {
		t.Fatalf("average fanout = %g, want 1.5", avg)
	}
	if l.AverageFanout(nil) != 0 {
		t.Fatalf("empty query set should have 0 fanout")
	}
}

func TestOrderReturnsCopy(t *testing.T) {
	l := Identity(10, 4)
	o := l.Order()
	o[0] = 9
	if l.VectorAt(0) != 0 {
		t.Fatalf("Order() must return a copy")
	}
}

func TestPropertyFromOrderRoundTrips(t *testing.T) {
	prop := func(seed int64, nRaw uint8, bvRaw uint8) bool {
		n := int(nRaw)%200 + 1
		bv := int(bvRaw)%16 + 1
		l := Random(n, bv, seed)
		// Every vector maps to a block within range and back.
		for id := uint32(0); id < uint32(n); id++ {
			b := l.BlockOf(id)
			if b < 0 || b >= l.NumBlocks() {
				return false
			}
			if l.VectorAt(l.PositionOf(id)) != id {
				return false
			}
		}
		// Block members cover all vectors exactly once.
		count := 0
		for b := 0; b < l.NumBlocks(); b++ {
			count += len(l.BlockMembers(b, nil))
		}
		return count == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
