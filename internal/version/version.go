// Package version derives a human-readable build identity from the Go
// build metadata, so every binary can answer --version without a linker
// flag dance: module version when built from a tagged module, VCS revision
// and commit time when built from a checkout, "devel" otherwise.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// String returns the build identity, e.g.
//
//	bandana (devel) commit 1a2b3c4d5e6f 2026-07-26T10:00:00Z go1.24.0
func String() string {
	var b strings.Builder
	b.WriteString("bandana ")
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		fmt.Fprintf(&b, "(unknown) %s", runtime.Version())
		return b.String()
	}
	if v := bi.Main.Version; v != "" {
		b.WriteString(v)
	} else {
		b.WriteString("(devel)")
	}
	var rev, at string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			at = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " commit %s", rev)
		if dirty {
			b.WriteString("+dirty")
		}
	}
	if at != "" {
		fmt.Fprintf(&b, " %s", at)
	}
	fmt.Fprintf(&b, " %s", runtime.Version())
	return b.String()
}
