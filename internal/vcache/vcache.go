// Package vcache implements a pointer-free, arena-backed vector cache: the
// DRAM tier of the store with zero heap objects per cached entry.
//
// The classic LRU engine (internal/lru with *cachedVec values) costs ~100+
// bytes of pointer-bearing overhead per 128-byte fp16 vector — a map entry,
// a heap-allocated list node, a value struct and two slice headers — and
// every GC cycle scans all of it. At tens of millions of cached vectors that
// scan time dominates GC pauses and steals CPU from the ~120 ns hit path.
//
// vcache stores the fp16 payloads themselves in large slab arenas (one slot
// class per table, slot size = the table's vector size), indexes them with
// an open-addressing hash table of packed (id, slot) words, and tracks
// recency with an intrusive prev/next uint32 list packed into 16-byte slot
// metadata. The only heap objects are a handful of flat slices per shard;
// per-entry overhead is ~16 B of metadata plus ~11 B of index, and the GC
// sees no per-entry pointers at all.
//
// Semantics mirror internal/lru exactly — the same sharding (hash-routed,
// power-of-two shard count, exact capacity split), the same per-shard
// segmented LRU with positional insertion (AddAt) and rebalancing cascade,
// the same eviction order — so the two engines produce identical
// hit/miss/eviction sequences for identical operation streams. The
// equivalence suite in internal/core pins this.
//
// # View lifetime and leases
//
// Get/GetRaw return read-only views directly into the arenas (the zero-copy
// raw/bwp serving path). A slot freed by eviction is eventually reused, so a
// view must not outlive its request. Readers bracket a request with
// release := c.Lease(); ... release(), and reclamation is epoch-based: an
// evicted slot is parked in a limbo list stamped with the current lease
// epoch, and reused only once the epoch has advanced twice — which requires
// every lease that could have observed the slot to have been released. Slots
// parked while no lease is active anywhere skip limbo entirely. Payloads are
// never overwritten in place: replacing a live entry's value relocates it to
// a fresh slot and parks the old one, so a leased view is immutable for the
// lease's lifetime.
//
// Decode-on-hit paths that want a heap-safe []float32 instead of a view use
// GetFunc, which runs the caller's closure under the shard lock; the closure
// copies/decodes and the result needs no lease.
package vcache

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// nilIdx is the nil slot index (list terminator, empty index entry marker).
const nilIdx = ^uint32(0)

// DefaultSegments matches lru.DefaultSegments: the positional-insertion
// segment count per shard.
const DefaultSegments = 16

// targetSlabBytes is the preferred payload slab size. Slabs are allocated
// lazily as shards grow, so a small cache never pays for a full slab, and a
// big one amortizes allocator and GC bookkeeping over thousands of slots.
const targetSlabBytes = 256 << 10

// prefetchedBit marks an entry inserted by prefetch admission and not yet
// requested, packed above the segment number in slotMeta.segflags.
const (
	segMask       = 0xFFFF
	prefetchedBit = 1 << 16
)

// slotMeta is the per-slot bookkeeping: the entry's key, its intrusive
// recency-list links (slot indices, not pointers) and its segment/flag word.
// 16 bytes, no pointers — the GC never visits it.
type slotMeta struct {
	id       uint32
	prev     uint32
	next     uint32
	segflags uint32
}

// limboSlot is an evicted slot awaiting lease-grace reclamation.
type limboSlot struct {
	slot  uint32
	epoch uint64
}

// segment is one region of a shard's eviction queue, ordered MRU→LRU.
// head/tail are slot indices into the shard's meta array.
type segment struct {
	head uint32
	tail uint32
	size int
}

// shard is one independently locked slice of the cache. All fields are
// guarded by mu. The struct is comfortably larger than a cache line, so
// neighbouring shard locks do not false-share.
type shard struct {
	mu       sync.Mutex
	capacity int
	used     int

	// Open-addressing index with linear probing and backward-shift deletion.
	// Each word packs slot<<32 | id; a word with slot == nilIdx is empty.
	idx     []uint64
	idxMask uint32

	// Payload arenas: slabs of slotsPerSlab fixed-size slots each, allocated
	// lazily. meta is indexed by slot and grows as slots are minted.
	slabs [][]byte
	meta  []slotMeta

	// free holds immediately reusable slots; limbo holds evicted slots
	// waiting out the lease grace period (FIFO from limboHead).
	free      []uint32
	limbo     []limboSlot
	limboHead int
	nextSlot  uint32

	segs []segment
}

// Options configures New.
type Options struct {
	// Capacity is the total entry budget across all shards. Must be > 0.
	Capacity int
	// SlotBytes is the fixed payload size of every entry (the table's
	// fp16 vector size). Must be > 0.
	SlotBytes int
	// Shards is the requested shard count, rounded up to a power of two and
	// halved until it does not exceed Capacity (every shard holds at least
	// one entry); <= 0 selects one shard. Identical to lru.NewSharded.
	Shards int
	// Segments is the positional segment count per shard, clamped to
	// [1, shard capacity]; 0 selects DefaultSegments.
	Segments int
	// Hash routes an id to its shard (low bits) and to its home index
	// position within the shard (high 32 bits). nil selects a splitmix
	// finalizer. For engine equivalence, pass the same hash the lru engine
	// shards with.
	Hash func(uint32) uint64
}

// Cache is the sharded arena cache. Construct with New.
type Cache struct {
	slotBytes int
	slabShift uint
	hash      func(uint32) uint64
	shardMask uint64
	capacity  atomic.Int64

	// Lease epoch machinery. cnt[e&1] counts live leases acquired during
	// epoch e; the epoch may advance from e to e+1 only while cnt[(e+1)&1]
	// is zero, so a parked slot stamped at epoch p is provably unobservable
	// once the epoch reaches p+2. Each counter gets its own cache line.
	epoch    atomic.Uint64
	cnt      [2]paddedCount
	releases [2]func()

	shards []shard
}

type paddedCount struct {
	n atomic.Int64
	_ [56]byte
}

// defaultHash is a splitmix64-style finalizer (the same mixing the store
// uses for shard routing).
func defaultHash(id uint32) uint64 {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New builds a Cache. Capacity and SlotBytes must be positive.
func New(opts Options) *Cache {
	if opts.Capacity <= 0 {
		panic(fmt.Sprintf("vcache: capacity must be positive, got %d", opts.Capacity))
	}
	if opts.SlotBytes <= 0 {
		panic(fmt.Sprintf("vcache: slot size must be positive, got %d", opts.SlotBytes))
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	for n > opts.Capacity {
		n >>= 1
	}
	hash := opts.Hash
	if hash == nil {
		hash = defaultHash
	}
	segments := opts.Segments
	if segments <= 0 {
		segments = DefaultSegments
	}

	c := &Cache{
		slotBytes: opts.SlotBytes,
		hash:      hash,
		shardMask: uint64(n - 1),
		shards:    make([]shard, n),
	}
	c.capacity.Store(int64(opts.Capacity))
	c.releases[0] = func() { c.cnt[0].n.Add(-1) }
	c.releases[1] = func() { c.cnt[1].n.Add(-1) }

	// Slots per slab: a power of two targeting ~targetSlabBytes, but no
	// larger than the (rounded-up) shard capacity so small caches do not
	// allocate megabytes they can never fill.
	per := 1
	for per*2*opts.SlotBytes <= targetSlabBytes {
		per <<= 1
	}
	maxShardCap := opts.Capacity/n + 1
	capPow := 1
	for capPow < maxShardCap {
		capPow <<= 1
	}
	if per > capPow {
		per = capPow
	}
	shift := uint(0)
	for 1<<shift < per {
		shift++
	}
	c.slabShift = shift

	base, rem := opts.Capacity/n, opts.Capacity%n
	for i := range c.shards {
		sc := base
		if i < rem {
			sc++
		}
		c.shards[i].init(sc, segments)
	}
	return c
}

func (s *shard) init(capacity, segments int) {
	if segments > capacity {
		segments = capacity
	}
	if segments < 1 {
		segments = 1
	}
	s.capacity = capacity
	s.segs = make([]segment, segments)
	for i := range s.segs {
		s.segs[i] = segment{head: nilIdx, tail: nilIdx}
	}
	s.idx = newIndex(capacity)
	s.idxMask = uint32(len(s.idx) - 1)
}

// newIndex allocates an empty probe table sized for capacity entries at
// <= 0.75 load (power of two, minimum 8).
func newIndex(capacity int) []uint64 {
	n := 8
	for n*3 < (capacity+1)*4 {
		n <<= 1
	}
	idx := make([]uint64, n)
	for i := range idx {
		idx[i] = uint64(nilIdx) << 32
	}
	return idx
}

// NumShards returns the shard count.
func (c *Cache) NumShards() int { return len(c.shards) }

// Cap returns the total configured capacity.
func (c *Cache) Cap() int { return int(c.capacity.Load()) }

// SlotBytes returns the fixed per-entry payload size.
func (c *Cache) SlotBytes() int { return c.slotBytes }

// Len returns the number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.used
		s.mu.Unlock()
	}
	return n
}

func (c *Cache) shardOf(h uint64) *shard {
	return &c.shards[h&c.shardMask]
}

// Lease marks the start of a request that will hold arena views (Get/GetRaw
// results). The returned release function must be called when the request is
// done with every view it obtained; it is safe to call from another
// goroutine. Lease/release are two atomic adds — no allocation, no lock.
func (c *Cache) Lease() func() {
	for {
		e := c.epoch.Load()
		b := e & 1
		c.cnt[b].n.Add(1)
		if c.epoch.Load() == e {
			return c.releases[b]
		}
		// The epoch moved mid-acquisition: this increment may be in a bucket
		// already treated as drained. Back out and retry on the new epoch.
		c.cnt[b].n.Add(-1)
	}
}

// tryAdvance moves the lease epoch forward when the bucket about to be
// entered has no live leases (i.e. all leases from epoch-1 released).
func (c *Cache) tryAdvance() {
	e := c.epoch.Load()
	if c.cnt[(e+1)&1].n.Load() == 0 {
		c.epoch.CompareAndSwap(e, e+1)
	}
}

// payload returns slot's arena bytes (read-write; callers hand out read-only
// subslices).
func (s *shard) payload(c *Cache, slot uint32) []byte {
	slab := s.slabs[slot>>c.slabShift]
	off := int(slot&(1<<c.slabShift-1)) * c.slotBytes
	return slab[off : off+c.slotBytes : off+c.slotBytes]
}

// ---- open-addressing index ----

func home(h uint64, mask uint32) uint32 { return uint32(h>>32) & mask }

// idxFind returns the slot stored for id, or nilIdx.
func (s *shard) idxFind(id uint32, h uint64) uint32 {
	i := home(h, s.idxMask)
	for {
		e := s.idx[i]
		if uint32(e>>32) == nilIdx {
			return nilIdx
		}
		if uint32(e) == id {
			return uint32(e >> 32)
		}
		i = (i + 1) & s.idxMask
	}
}

// idxInsert adds (id -> slot); id must not be present.
func (s *shard) idxInsert(id, slot uint32, h uint64) {
	i := home(h, s.idxMask)
	for uint32(s.idx[i]>>32) != nilIdx {
		i = (i + 1) & s.idxMask
	}
	s.idx[i] = uint64(slot)<<32 | uint64(id)
}

// idxUpdate rewrites id's slot in place (relocation on value replace).
func (s *shard) idxUpdate(id, slot uint32, h uint64) {
	i := home(h, s.idxMask)
	for uint32(s.idx[i]) != id || uint32(s.idx[i]>>32) == nilIdx {
		i = (i + 1) & s.idxMask
	}
	s.idx[i] = uint64(slot)<<32 | uint64(id)
}

// idxDelete removes id using backward-shift deletion, which keeps probe
// chains dense (no tombstones, no periodic rebuilds).
func (s *shard) idxDelete(c *Cache, id uint32, h uint64) {
	i := home(h, s.idxMask)
	for {
		e := s.idx[i]
		if uint32(e>>32) == nilIdx {
			return // not present
		}
		if uint32(e) == id {
			break
		}
		i = (i + 1) & s.idxMask
	}
	// Shift later chain members back over the hole. Entry e at position j may
	// move into the hole at i iff its home k lies cyclically at or before i,
	// i.e. (j - k) mod size >= (j - i) mod size.
	j := i
	for {
		j = (j + 1) & s.idxMask
		e := s.idx[j]
		if uint32(e>>32) == nilIdx {
			break
		}
		k := home(c.hash(uint32(e)), s.idxMask)
		if (j-k)&s.idxMask >= (j-i)&s.idxMask {
			s.idx[i] = e
			i = j
		}
	}
	s.idx[i] = uint64(nilIdx) << 32
}

// growIndex rebuilds the probe table for a larger capacity.
func (s *shard) growIndex(c *Cache, capacity int) {
	next := newIndex(capacity)
	if len(next) <= len(s.idx) {
		return
	}
	mask := uint32(len(next) - 1)
	for _, e := range s.idx {
		if uint32(e>>32) == nilIdx {
			continue
		}
		i := home(c.hash(uint32(e)), mask)
		for uint32(next[i]>>32) != nilIdx {
			i = (i + 1) & mask
		}
		next[i] = e
	}
	s.idx = next
	s.idxMask = mask
}

// ---- intrusive segmented recency list ----

func (s *shard) pushFront(seg int, slot uint32) {
	sg := &s.segs[seg]
	m := &s.meta[slot]
	m.segflags = m.segflags&^segMask | uint32(seg)
	m.prev = nilIdx
	m.next = sg.head
	if sg.head != nilIdx {
		s.meta[sg.head].prev = slot
	}
	sg.head = slot
	if sg.tail == nilIdx {
		sg.tail = slot
	}
	sg.size++
}

func (s *shard) listRemove(slot uint32) {
	m := &s.meta[slot]
	sg := &s.segs[m.segflags&segMask]
	if m.prev != nilIdx {
		s.meta[m.prev].next = m.next
	} else {
		sg.head = m.next
	}
	if m.next != nilIdx {
		s.meta[m.next].prev = m.prev
	} else {
		sg.tail = m.prev
	}
	m.prev, m.next = nilIdx, nilIdx
	sg.size--
}

// rebalance cascades overflow from earlier segments into later ones so each
// segment holds at most ceil(capacity/segments) entries — the positional
// interpretation of segments stays stable. Mirrors lru.Cache.rebalance.
func (s *shard) rebalance() {
	target := (s.capacity + len(s.segs) - 1) / len(s.segs)
	for i := 0; i < len(s.segs)-1; i++ {
		sg := &s.segs[i]
		for sg.size > target {
			victim := sg.tail
			s.listRemove(victim)
			s.pushFront(i+1, victim)
		}
	}
}

// ---- slot allocation / reclamation ----

// alloc returns a payload slot: from the free list, from limbo once the
// lease grace has passed, or freshly minted (growing a slab if needed).
// Minting while evicted slots sit in limbo transiently overshoots the
// arena's slot budget by at most the number of evictions inside concurrent
// lease windows.
func (s *shard) alloc(c *Cache) uint32 {
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		return slot
	}
	if s.limboHead < len(s.limbo) {
		ls := s.limbo[s.limboHead]
		e := c.epoch.Load()
		if e < ls.epoch+2 {
			c.tryAdvance()
			e = c.epoch.Load()
		}
		if e >= ls.epoch+2 {
			s.limboHead++
			if s.limboHead == len(s.limbo) {
				s.limbo = s.limbo[:0]
				s.limboHead = 0
			}
			return ls.slot
		}
	}
	slot := s.nextSlot
	s.nextSlot++
	if int(slot)>>c.slabShift == len(s.slabs) {
		s.slabs = append(s.slabs, make([]byte, (1<<c.slabShift)*c.slotBytes))
	}
	s.meta = append(s.meta, slotMeta{prev: nilIdx, next: nilIdx})
	return slot
}

// park retires a slot that is no longer reachable through the index. If no
// lease is active anywhere it goes straight back to the free list (the
// common case for stores serving float lookups); otherwise it waits out the
// epoch grace period in limbo. The caller must have removed the slot from
// the index before calling (under this shard's lock), which is what makes
// the counters-both-zero fast path sound: any lease acquired after the
// check starts cannot find the slot anymore.
func (s *shard) park(c *Cache, slot uint32) {
	if c.cnt[0].n.Load() == 0 && c.cnt[1].n.Load() == 0 {
		s.free = append(s.free, slot)
		return
	}
	s.limbo = append(s.limbo, limboSlot{slot: slot, epoch: c.epoch.Load()})
	c.tryAdvance()
}

// evictOne removes the LRU entry of the last non-empty segment and returns
// its id. Mirrors lru.Cache.evictOne.
func (s *shard) evictOne(c *Cache) (uint32, bool) {
	for i := len(s.segs) - 1; i >= 0; i-- {
		sg := &s.segs[i]
		if sg.tail == nilIdx {
			continue
		}
		victim := sg.tail
		id := s.meta[victim].id
		s.listRemove(victim)
		s.idxDelete(c, id, c.hash(id))
		s.park(c, victim)
		s.used--
		return id, true
	}
	return 0, false
}

// ---- public operations ----

// segOf maps a queue position in [0,1] to a segment exactly like lru.AddAt.
func segOf(pos float64, segments int) int {
	if pos < 0 {
		pos = 0
	}
	if pos > 1 {
		pos = 1
	}
	seg := int(pos * float64(segments))
	if seg >= segments {
		seg = segments - 1
	}
	return seg
}

// Add inserts id at the MRU position (or updates and promotes it).
func (c *Cache) Add(id uint32, payload []byte, prefetched bool) (uint32, bool) {
	return c.AddAt(id, payload, 0, prefetched)
}

// AddAt inserts id's payload at queue position pos in [0,1] within its
// shard (0 = MRU). The payload is copied into the arena; it must be exactly
// SlotBytes long. If id is already cached its value is replaced (relocating
// the slot if the bytes differ, so leased views of the old value stay
// intact) and it moves to the requested position. Returns the evicted id
// and true if the insertion evicted an entry.
func (c *Cache) AddAt(id uint32, payload []byte, pos float64, prefetched bool) (uint32, bool) {
	h := c.hash(id)
	s := c.shardOf(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addAt(c, id, payload, pos, prefetched, h)
}

// AddAtGuard is AddAt fused with the serving path's insert guards, all under
// the shard lock: it aborts (returning false) when guard's value no longer
// equals want — the table was mutated since the caller decoded — or when
// prefetched is set and id is already cached (a concurrent lookup cached it
// as a requested entry; do not demote it).
func (c *Cache) AddAtGuard(id uint32, payload []byte, pos float64, prefetched bool, guard *atomic.Uint64, want uint64) bool {
	h := c.hash(id)
	s := c.shardOf(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if guard != nil && guard.Load() != want {
		return false
	}
	if prefetched && s.idxFind(id, h) != nilIdx {
		return false
	}
	s.addAt(c, id, payload, pos, prefetched, h)
	return true
}

func (s *shard) addAt(c *Cache, id uint32, payload []byte, pos float64, prefetched bool, h uint64) (uint32, bool) {
	if len(payload) != c.slotBytes {
		panic(fmt.Sprintf("vcache: payload is %d bytes, slot size is %d", len(payload), c.slotBytes))
	}
	seg := segOf(pos, len(s.segs))

	if slot := s.idxFind(id, h); slot != nilIdx {
		cur := s.payload(c, slot)
		if !bytesEqual(cur, payload) {
			// Never overwrite a slot a lease may be reading: relocate.
			next := s.alloc(c)
			copy(s.payload(c, next), payload)
			m := &s.meta[next]
			m.id = id
			m.segflags = s.meta[slot].segflags // seg rewritten by pushFront below
			s.listRemove(slot)
			s.park(c, slot)
			s.idxUpdate(id, next, h)
			slot = next
		} else {
			s.listRemove(slot)
		}
		m := &s.meta[slot]
		if prefetched {
			m.segflags |= prefetchedBit
		} else {
			m.segflags &^= prefetchedBit
		}
		s.pushFront(seg, slot)
		s.rebalance()
		return 0, false
	}

	slot := s.alloc(c)
	copy(s.payload(c, slot), payload)
	m := &s.meta[slot]
	m.id = id
	m.segflags = 0
	if prefetched {
		m.segflags = prefetchedBit
	}
	s.idxInsert(id, slot, h)
	s.pushFront(seg, slot)
	s.used++

	if s.used > s.capacity {
		victim, _ := s.evictOne(c)
		s.rebalance()
		return victim, true
	}
	s.rebalance()
	return 0, false
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Get returns a read-only arena view of id's payload, promotes the entry to
// its shard's MRU position and clears the prefetched flag, reporting whether
// the flag was set. The caller must hold a lease (see Lease) for as long as
// it reads the view. Allocation-free.
func (c *Cache) Get(id uint32) (payload []byte, wasPrefetched, ok bool) {
	h := c.hash(id)
	s := c.shardOf(h)
	s.mu.Lock()
	slot := s.idxFind(id, h)
	if slot == nilIdx {
		s.mu.Unlock()
		return nil, false, false
	}
	m := &s.meta[slot]
	wasPrefetched = m.segflags&prefetchedBit != 0
	m.segflags &^= prefetchedBit
	s.listRemove(slot)
	s.pushFront(0, slot)
	s.rebalance()
	payload = s.payload(c, slot)
	s.mu.Unlock()
	return payload, wasPrefetched, true
}

// GetFunc is Get with the payload handed to fn under the shard lock instead
// of returned: fn must copy or decode what it needs and not retain the view.
// The result needs no lease. Promotes and clears the prefetched flag exactly
// like Get.
func (c *Cache) GetFunc(id uint32, fn func(payload []byte, wasPrefetched bool)) bool {
	h := c.hash(id)
	s := c.shardOf(h)
	s.mu.Lock()
	slot := s.idxFind(id, h)
	if slot == nilIdx {
		s.mu.Unlock()
		return false
	}
	m := &s.meta[slot]
	wasPrefetched := m.segflags&prefetchedBit != 0
	m.segflags &^= prefetchedBit
	s.listRemove(slot)
	s.pushFront(0, slot)
	s.rebalance()
	fn(s.payload(c, slot), wasPrefetched)
	s.mu.Unlock()
	return true
}

// GetRequestedFunc promotes id if present (like Get) but hands its payload
// to fn only when the entry was NOT prefetch-inserted, without clearing the
// flag — the coalesced-miss reuse probe of the serving path. Reports whether
// fn ran.
func (c *Cache) GetRequestedFunc(id uint32, fn func(payload []byte)) bool {
	h := c.hash(id)
	s := c.shardOf(h)
	s.mu.Lock()
	slot := s.idxFind(id, h)
	if slot == nilIdx {
		s.mu.Unlock()
		return false
	}
	s.listRemove(slot)
	s.pushFront(0, slot)
	s.rebalance()
	served := false
	if s.meta[slot].segflags&prefetchedBit == 0 {
		fn(s.payload(c, slot))
		served = true
	}
	s.mu.Unlock()
	return served
}

// Contains reports whether id is cached, without affecting recency.
func (c *Cache) Contains(id uint32) bool {
	h := c.hash(id)
	s := c.shardOf(h)
	s.mu.Lock()
	ok := s.idxFind(id, h) != nilIdx
	s.mu.Unlock()
	return ok
}

// Remove deletes id and reports whether it was present.
func (c *Cache) Remove(id uint32) bool {
	h := c.hash(id)
	s := c.shardOf(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	slot := s.idxFind(id, h)
	if slot == nilIdx {
		return false
	}
	s.listRemove(slot)
	s.idxDelete(c, id, h)
	s.park(c, slot)
	s.used--
	return true
}

// Resize changes the total capacity in place with the same exact split and
// per-shard incremental eviction as lru.Sharded.Resize: entries outside the
// evicted overflow survive, so a live cache rebalances without losing its
// working set. Capacity is clamped to one entry per shard; returns the
// recorded capacity.
func (c *Cache) Resize(capacity int) int {
	n := len(c.shards)
	if capacity < n {
		capacity = n
	}
	base, rem := capacity/n, capacity%n
	for i := range c.shards {
		sc := base
		if i < rem {
			sc++
		}
		s := &c.shards[i]
		s.mu.Lock()
		s.growIndex(c, sc)
		s.capacity = sc
		for s.used > s.capacity {
			s.evictOne(c)
		}
		s.rebalance()
		s.mu.Unlock()
	}
	c.capacity.Store(int64(capacity))
	return capacity
}

// Stats is a point-in-time byte-accounting snapshot.
type Stats struct {
	Entries  int
	Capacity int
	Shards   int
	// BytesResident is the payload bytes of resident entries
	// (Entries * SlotBytes) — what the cache is actually holding for
	// serving.
	BytesResident int64
	// ArenaBytes is the total allocated slab bytes (resident payloads plus
	// free/limbo slots and slab tails not yet minted).
	ArenaBytes int64
	// MetaBytes is the slot-metadata footprint; IndexBytes the probe tables.
	MetaBytes  int64
	IndexBytes int64
	// Utilization is BytesResident / ArenaBytes (0 with no slabs).
	Utilization float64
	Slabs       int
	FreeSlots   int
	LimboSlots  int
	Epoch       uint64
}

// Stats gathers byte accounting across all shards.
func (c *Cache) Stats() Stats {
	st := Stats{
		Capacity: c.Cap(),
		Shards:   len(c.shards),
		Epoch:    c.epoch.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.used
		st.Slabs += len(s.slabs)
		for _, slab := range s.slabs {
			st.ArenaBytes += int64(len(slab))
		}
		st.MetaBytes += int64(len(s.meta)) * 16
		st.IndexBytes += int64(len(s.idx)) * 8
		st.FreeSlots += len(s.free)
		st.LimboSlots += len(s.limbo) - s.limboHead
		s.mu.Unlock()
	}
	st.BytesResident = int64(st.Entries) * int64(c.slotBytes)
	if st.ArenaBytes > 0 {
		st.Utilization = float64(st.BytesResident) / float64(st.ArenaBytes)
	}
	return st
}

// ShardKeys returns shard i's keys ordered MRU→LRU (segment by segment,
// matching lru.Cache.Keys). Intended for tests and diagnostics; O(n).
func (c *Cache) ShardKeys(i int) []uint32 {
	s := &c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]uint32, 0, s.used)
	for seg := range s.segs {
		for slot := s.segs[seg].head; slot != nilIdx; slot = s.meta[slot].next {
			keys = append(keys, s.meta[slot].id)
		}
	}
	return keys
}

// checkInvariants validates internal consistency; exposed to tests via
// export_test.go.
func (c *Cache) checkInvariants() error {
	for si := range c.shards {
		s := &c.shards[si]
		s.mu.Lock()
		err := s.checkInvariants(c, si)
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *shard) checkInvariants(c *Cache, si int) error {
	total := 0
	seen := make(map[uint32]bool)
	for i := range s.segs {
		sg := &s.segs[i]
		n := 0
		prev := nilIdx
		for slot := sg.head; slot != nilIdx; slot = s.meta[slot].next {
			m := &s.meta[slot]
			if int(m.segflags&segMask) != i {
				return fmt.Errorf("shard %d: slot %d records segment %d but lives in %d", si, slot, m.segflags&segMask, i)
			}
			if m.prev != prev {
				return fmt.Errorf("shard %d: slot %d prev link broken", si, slot)
			}
			if got := s.idxFind(m.id, c.hash(m.id)); got != slot {
				return fmt.Errorf("shard %d: id %d indexed to slot %d, listed in slot %d", si, m.id, got, slot)
			}
			if seen[m.id] {
				return fmt.Errorf("shard %d: id %d listed twice", si, m.id)
			}
			seen[m.id] = true
			prev = slot
			n++
			if n > s.used+1 {
				return fmt.Errorf("shard %d: cycle in segment %d", si, i)
			}
		}
		if prev != sg.tail {
			return fmt.Errorf("shard %d: segment %d tail mismatch", si, i)
		}
		if n != sg.size {
			return fmt.Errorf("shard %d: segment %d size %d, counted %d", si, i, sg.size, n)
		}
		total += n
	}
	if total != s.used {
		return fmt.Errorf("shard %d: segments hold %d entries, used records %d", si, total, s.used)
	}
	if total > s.capacity {
		return fmt.Errorf("shard %d over capacity: %d > %d", si, total, s.capacity)
	}
	// Index population must match exactly.
	live := 0
	for _, e := range s.idx {
		if uint32(e>>32) != nilIdx {
			live++
		}
	}
	if live != s.used {
		return fmt.Errorf("shard %d: index holds %d entries, used records %d", si, live, s.used)
	}
	// Every slot is accounted for exactly once: listed, free, limbo or
	// unminted.
	accounted := total + len(s.free) + (len(s.limbo) - s.limboHead)
	if accounted != int(s.nextSlot) {
		return fmt.Errorf("shard %d: %d slots minted, %d accounted (listed+free+limbo)", si, s.nextSlot, accounted)
	}
	return nil
}
