package vcache_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"bandana/internal/lru"
	"bandana/internal/vcache"
)

const testSlot = 8 // payload bytes per entry in these tests

func testHash(id uint32) uint64 {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func payloadFor(id uint32, gen byte) []byte {
	p := make([]byte, testSlot)
	p[0] = byte(id)
	p[1] = byte(id >> 8)
	p[2] = byte(id >> 16)
	p[3] = byte(id >> 24)
	p[4] = gen
	return p
}

func newTestCache(capacity, shards int) *vcache.Cache {
	return vcache.New(vcache.Options{
		Capacity:  capacity,
		SlotBytes: testSlot,
		Shards:    shards,
		Hash:      testHash,
	})
}

func TestBasicAddGet(t *testing.T) {
	c := newTestCache(64, 4)
	release := c.Lease()
	defer release()

	if _, _, ok := c.Get(7); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Add(7, payloadFor(7, 1), false)
	p, pre, ok := c.Get(7)
	if !ok {
		t.Fatal("expected hit")
	}
	if pre {
		t.Fatal("entry reported prefetched")
	}
	want := payloadFor(7, 1)
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("payload byte %d = %d, want %d", i, p[i], want[i])
		}
	}
	if !c.Contains(7) {
		t.Fatal("Contains(7) = false")
	}
	if c.Contains(8) {
		t.Fatal("Contains(8) = true")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchedFlag(t *testing.T) {
	c := newTestCache(64, 1)
	c.Add(1, payloadFor(1, 0), true)

	// GetRequestedFunc must promote but not serve a prefetched entry, and
	// must not clear the flag.
	served := c.GetRequestedFunc(1, func([]byte) { t.Fatal("served a prefetched entry") })
	if served {
		t.Fatal("GetRequestedFunc reported served")
	}

	// Get clears the flag and reports it was set.
	if _, pre, ok := c.Get(1); !ok || !pre {
		t.Fatalf("Get = (_, %v, %v), want prefetched hit", pre, ok)
	}
	if _, pre, _ := c.Get(1); pre {
		t.Fatal("prefetched flag not cleared")
	}

	// Now GetRequestedFunc serves it.
	ran := false
	if !c.GetRequestedFunc(1, func([]byte) { ran = true }) || !ran {
		t.Fatal("GetRequestedFunc did not serve a requested entry")
	}

	// Re-adding with prefetched=false on an existing prefetched entry
	// clears the flag (and vice versa).
	c.Add(2, payloadFor(2, 0), true)
	c.Add(2, payloadFor(2, 0), false)
	if _, pre, _ := c.Get(2); pre {
		t.Fatal("re-add did not clear prefetched flag")
	}
}

func TestEvictionOrderMatchesLRU(t *testing.T) {
	// Single shard: fill beyond capacity and check exact LRU eviction.
	c := newTestCache(4, 1)
	for id := uint32(0); id < 4; id++ {
		c.Add(id, payloadFor(id, 0), false)
	}
	c.Get(0) // promote 0; LRU order now 1,2,3
	victim, evicted := c.Add(100, payloadFor(100, 0), false)
	if !evicted || victim != 1 {
		t.Fatalf("evicted (%d, %v), want (1, true)", victim, evicted)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateRelocatesUnderLease(t *testing.T) {
	c := newTestCache(8, 1)
	c.Add(1, payloadFor(1, 1), false)
	release := c.Lease()
	view, _, ok := c.Get(1)
	if !ok {
		t.Fatal("expected hit")
	}
	// Replace the value while the lease holds a view of the old one.
	c.Add(1, payloadFor(1, 2), false)
	if view[4] != 1 {
		t.Fatalf("leased view mutated: gen byte = %d, want 1", view[4])
	}
	fresh, _, _ := c.Get(1)
	if fresh[4] != 2 {
		t.Fatalf("updated value gen byte = %d, want 2", fresh[4])
	}
	release()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestParkFastPathWithoutLeases(t *testing.T) {
	c := newTestCache(4, 1)
	for id := uint32(0); id < 16; id++ {
		c.Add(id, payloadFor(id, 0), false)
	}
	if n := c.LimboLen(); n != 0 {
		t.Fatalf("limbo holds %d slots with no leases active", n)
	}
	// With no leases, evicted slots recycle. Insertion allocates before
	// evicting (matching lru's insert-then-evict order), so at most one
	// transient slot above capacity is ever minted.
	if m := c.MintedSlots(); m > 5 {
		t.Fatalf("minted %d slots for capacity-4 cache", m)
	}
}

func TestLimboReclaim(t *testing.T) {
	c := newTestCache(2, 1)
	c.Add(1, payloadFor(1, 0), false)
	c.Add(2, payloadFor(2, 0), false)
	release := c.Lease()
	// Evict 1 while a lease is active: its slot must park in limbo.
	c.Add(3, payloadFor(3, 0), false)
	if n := c.LimboLen(); n != 1 {
		t.Fatalf("limbo holds %d slots, want 1", n)
	}
	release()
	// After release the epoch can advance; churn inserts until the parked
	// slot is reclaimed. Each insert evicts (capacity 2), and with no lease
	// active evictions recycle directly, so minted slots must stay bounded.
	for id := uint32(10); id < 20; id++ {
		c.Add(id, payloadFor(id, 0), false)
	}
	if n := c.LimboLen(); n != 0 {
		t.Fatalf("limbo still holds %d slots after lease release and churn", n)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAddAtGuard(t *testing.T) {
	c := newTestCache(8, 1)
	var guard atomic.Uint64
	guard.Store(5)

	if !c.AddAtGuard(1, payloadFor(1, 0), 0, false, &guard, 5) {
		t.Fatal("guard insert with matching epoch rejected")
	}
	if c.AddAtGuard(2, payloadFor(2, 0), 0, false, &guard, 4) {
		t.Fatal("guard insert with stale epoch accepted")
	}
	if c.Contains(2) {
		t.Fatal("stale insert landed")
	}
	// Prefetch demotion: prefetched insert of an existing key aborts.
	if c.AddAtGuard(1, payloadFor(1, 9), 0, true, &guard, 5) {
		t.Fatal("prefetched insert over existing entry accepted")
	}
	if _, pre, _ := c.Get(1); pre {
		t.Fatal("existing entry demoted to prefetched")
	}
}

func TestResizeShrinkGrow(t *testing.T) {
	c := newTestCache(64, 4)
	for id := uint32(0); id < 64; id++ {
		c.Add(id, payloadFor(id, 0), false)
	}
	if got := c.Resize(16); got != 16 {
		t.Fatalf("Resize(16) = %d", got)
	}
	if c.Len() != 16 {
		t.Fatalf("Len after shrink = %d, want 16", c.Len())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := c.Resize(128); got != 128 {
		t.Fatalf("Resize(128) = %d", got)
	}
	if c.Len() != 16 {
		t.Fatalf("grow evicted entries: Len = %d", c.Len())
	}
	for id := uint32(100); id < 212; id++ {
		c.Add(id, payloadFor(id, 0), false)
	}
	// Hash routing is uneven, so some shards evict before others fill; the
	// total just must never exceed capacity (exact equivalence with lru is
	// pinned by TestEquivalenceRandomized).
	if c.Len() > 128 || c.Len() < 100 {
		t.Fatalf("Len after refill = %d, want (100, 128]", c.Len())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Clamp: capacity below shard count.
	if got := c.Resize(1); got != c.NumShards() {
		t.Fatalf("Resize(1) = %d, want shard count %d", got, c.NumShards())
	}
}

func TestStats(t *testing.T) {
	c := newTestCache(100, 4)
	for id := uint32(0); id < 50; id++ {
		c.Add(id, payloadFor(id, 0), false)
	}
	st := c.Stats()
	if st.Entries != 50 {
		t.Fatalf("Entries = %d", st.Entries)
	}
	if st.BytesResident != int64(50*testSlot) {
		t.Fatalf("BytesResident = %d", st.BytesResident)
	}
	if st.ArenaBytes < st.BytesResident {
		t.Fatalf("ArenaBytes %d < BytesResident %d", st.ArenaBytes, st.BytesResident)
	}
	if st.Slabs == 0 {
		t.Fatal("no slabs reported")
	}
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Fatalf("Utilization = %v", st.Utilization)
	}
}

// lruRef wraps lru.Sharded as the reference model: values are generation
// bytes so update semantics are observable.
type lruRef struct {
	s *lru.Sharded[uint32, byte]
}

// TestEquivalenceRandomized drives vcache and lru.Sharded with identical
// randomized op streams (Add/AddAt/Get/Remove/Resize) and asserts identical
// contents, sizes and exact per-shard MRU->LRU key order after every
// operation batch. This is the engine-equivalence contract the serving
// goldens rely on.
func TestEquivalenceRandomized(t *testing.T) {
	for _, cfg := range []struct {
		capacity, shards int
	}{
		{1, 1}, {7, 1}, {64, 4}, {100, 8}, {257, 16},
	} {
		t.Run(fmt.Sprintf("cap%d_shards%d", cfg.capacity, cfg.shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(cfg.capacity)*31 + int64(cfg.shards)))
			vc := newTestCache(cfg.capacity, cfg.shards)
			ref := &lruRef{lru.NewSharded[uint32, byte](cfg.capacity, cfg.shards, testHash)}
			if vc.NumShards() != ref.s.NumShards() {
				t.Fatalf("shard counts differ: %d vs %d", vc.NumShards(), ref.s.NumShards())
			}

			keySpace := uint32(cfg.capacity * 3)
			gens := make(map[uint32]byte)

			for step := 0; step < 4000; step++ {
				id := rng.Uint32() % keySpace
				switch op := rng.Intn(10); {
				case op < 4: // AddAt at random position
					pos := rng.Float64()
					gens[id]++
					vc.AddAt(id, payloadFor(id, gens[id]), pos, false)
					ref.s.AddAt(id, gens[id], pos)
				case op < 6: // Add at MRU
					gens[id]++
					vc.Add(id, payloadFor(id, gens[id]), false)
					ref.s.Add(id, gens[id])
				case op < 9: // Get
					var vGen byte
					vOK := vc.GetFunc(id, func(p []byte, _ bool) { vGen = p[4] })
					rGen, rOK := ref.s.Get(id)
					if vOK != rOK {
						t.Fatalf("step %d: Get(%d) hit mismatch: vcache %v, lru %v", step, id, vOK, rOK)
					}
					if vOK && vGen != rGen {
						t.Fatalf("step %d: Get(%d) value mismatch: gen %d vs %d", step, id, vGen, rGen)
					}
				case op == 9 && step%97 == 0: // occasional Resize
					target := 1 + rng.Intn(cfg.capacity*2)
					if got, want := vc.Resize(target), ref.s.Resize(target); got != want {
						t.Fatalf("step %d: Resize(%d) = %d vs %d", step, target, got, want)
					}
				default: // Remove
					if got, want := vc.Remove(id), ref.s.Remove(id); got != want {
						t.Fatalf("step %d: Remove(%d) = %v vs %v", step, id, got, want)
					}
				}

				if step%200 == 0 || step == 3999 {
					compareState(t, step, vc, ref)
					if err := vc.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
		})
	}
}

// compareState asserts identical per-shard exact MRU->LRU key sequences.
func compareState(t *testing.T, step int, vc *vcache.Cache, ref *lruRef) {
	t.Helper()
	if vc.Len() != ref.s.Len() {
		t.Fatalf("step %d: Len %d vs %d", step, vc.Len(), ref.s.Len())
	}
	// lru.Sharded has no per-shard key dump; reconstruct via ForEachShard.
	var refKeys [][]uint32
	ref.s.ForEachShard(func(c *lru.Cache[uint32, byte]) {
		refKeys = append(refKeys, c.Keys())
	})
	for i := 0; i < vc.NumShards(); i++ {
		got := vc.ShardKeys(i)
		want := refKeys[i]
		if len(got) != len(want) {
			t.Fatalf("step %d shard %d: %d keys vs %d", step, i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("step %d shard %d pos %d: key %d vs %d (vcache %v, lru %v)",
					step, i, j, got[j], want[j], got, want)
			}
		}
	}
}

// TestResizeUnderConcurrentServing is the -race stress test: readers hold
// leases and serve views, writers insert, one goroutine resizes up and down
// continuously. Run with -race.
func TestResizeUnderConcurrentServing(t *testing.T) {
	const capacity = 2048
	c := newTestCache(capacity, 8)
	for id := uint32(0); id < capacity; id++ {
		c.Add(id, payloadFor(id, 1), false)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Readers: lease, read views, verify self-consistency of payloads.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				release := c.Lease()
				for i := 0; i < 64; i++ {
					id := rng.Uint32() % (capacity * 2)
					if p, _, ok := c.Get(id); ok {
						if got := uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24; got != id {
							panic(fmt.Sprintf("view for id %d holds id %d: slot reused under lease", id, got))
						}
					}
				}
				release()
			}
		}(int64(r))
	}

	// Writer: inserts (some updates with new generations) and removes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		gen := byte(2)
		for !stop.Load() {
			id := rng.Uint32() % (capacity * 2)
			switch rng.Intn(4) {
			case 0:
				c.Remove(id)
			default:
				c.AddAt(id, payloadFor(id, gen), rng.Float64(), rng.Intn(8) == 0)
				gen++
			}
		}
	}()

	// Resizer: continuous live grow/shrink.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{capacity / 4, capacity / 2, capacity, capacity * 2}
		for i := 0; !stop.Load(); i++ {
			c.Resize(sizes[i%len(sizes)])
		}
	}()

	// Let it run briefly; -race makes this plenty of interleavings.
	for i := 0; i < 200; i++ {
		c.Len()
	}
	stop.Store(true)
	wg.Wait()

	c.Resize(capacity)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHitPathZeroAlloc is the CI alloc-regression gate: the raw hit path of
// BOTH engines must not allocate. For vcache that is Get under a
// pre-acquired lease; for lru.Sharded it is Get on a cached value.
func TestHitPathZeroAlloc(t *testing.T) {
	t.Run("vcache", func(t *testing.T) {
		// Capacity 8x the population so hash imbalance never evicts: every
		// inserted key stays resident.
		c := newTestCache(8192, 8)
		for id := uint32(0); id < 1024; id++ {
			c.Add(id, payloadFor(id, 0), false)
		}
		release := c.Lease()
		defer release()
		id := uint32(0)
		allocs := testing.AllocsPerRun(1000, func() {
			if _, _, ok := c.Get(id % 1024); !ok {
				t.Fatal("miss on resident key")
			}
			id++
		})
		if allocs != 0 {
			t.Fatalf("vcache hit path allocates %v allocs/op, want 0", allocs)
		}
		// Lease acquire/release itself must also be allocation-free.
		leaseAllocs := testing.AllocsPerRun(1000, func() { c.Lease()() })
		if leaseAllocs != 0 {
			t.Fatalf("Lease allocates %v allocs/op, want 0", leaseAllocs)
		}
	})
	t.Run("lru", func(t *testing.T) {
		s := lru.NewSharded[uint32, []byte](8192, 8, testHash)
		for id := uint32(0); id < 1024; id++ {
			s.Add(id, payloadFor(id, 0))
		}
		id := uint32(0)
		allocs := testing.AllocsPerRun(1000, func() {
			if _, ok := s.Get(id % 1024); !ok {
				t.Fatal("miss on resident key")
			}
			id++
		})
		if allocs != 0 {
			t.Fatalf("lru hit path allocates %v allocs/op, want 0", allocs)
		}
	})
}

func BenchmarkHit(b *testing.B) {
	b.Run("vcache", func(b *testing.B) {
		c := vcache.New(vcache.Options{Capacity: 1 << 16, SlotBytes: 128, Shards: 8, Hash: testHash})
		p := make([]byte, 128)
		for id := uint32(0); id < 1<<16; id++ {
			c.Add(id, p, false)
		}
		release := c.Lease()
		defer release()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Get(uint32(i) & (1<<16 - 1))
		}
	})
	b.Run("lru", func(b *testing.B) {
		s := lru.NewSharded[uint32, []byte](1<<16, 8, testHash)
		p := make([]byte, 128)
		for id := uint32(0); id < 1<<16; id++ {
			s.Add(id, p)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Get(uint32(i) & (1<<16 - 1))
		}
	})
}
