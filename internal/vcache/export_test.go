package vcache

// CheckInvariants exposes the internal consistency checker to tests.
func (c *Cache) CheckInvariants() error { return c.checkInvariants() }

// LimboLen returns the number of slots waiting out the lease grace period,
// for reclamation tests.
func (c *Cache) LimboLen() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.limbo) - s.limboHead
		s.mu.Unlock()
	}
	return n
}

// MintedSlots returns the total number of payload slots ever created, for
// bounding transient overshoot in tests.
func (c *Cache) MintedSlots() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += int(s.nextSlot)
		s.mu.Unlock()
	}
	return n
}
