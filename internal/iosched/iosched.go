// Package iosched is the unified asynchronous block I/O scheduler that sits
// between the serving engine (internal/core) and the NVM device
// (internal/nvm).
//
// The paper's central hardware observation is that block NVM only delivers
// its bandwidth at high device queue depth: a read issued alone costs ~10 us
// and ~0.6 GB/s, while eight overlapping reads cost ~33 us each but deliver
// 2.3 GB/s (Figure 2). A serving system that issues one synchronous read per
// cache miss therefore leaves most of the device on the table. This package
// closes that gap with three mechanisms:
//
//   - Coalescing (singleflight): concurrent requests for the same block —
//     e.g. a miss storm on one hot vector — share a single device read whose
//     result is fanned out to every waiter.
//   - Batching: independent reads accumulate in a per-device submission
//     queue and are dispatched together as one nvm ReadBlocks batch sized
//     toward a configurable target queue depth, with a bounded accumulation
//     window so an isolated read at low load is never parked waiting for
//     company that is not coming.
//   - Priority classes: demand reads (foreground lookups) are always
//     scheduled before prefetch/background reads, so background maintenance
//     traffic can never starve the serving path.
//
// Submitters block until their read completes (submit-and-wait), so lock
// protocols built around the reader — in particular core's rewrite exclusion,
// where in-flight miss reads drain under a per-table RWMutex before a bulk
// copy-into-place — keep working unchanged: a goroutine waiting on the
// scheduler still holds whatever locks it held when it submitted.
package iosched

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"bandana/internal/metrics"
	"bandana/internal/nvm"
)

// Priority classifies a read for scheduling. Lower values are more urgent.
type Priority int

const (
	// Demand is a foreground read a caller is actively waiting on (cache
	// miss on the serving path). Demand reads are always dispatched before
	// prefetch reads.
	Demand Priority = iota
	// Prefetch is a background read (readahead, maintenance
	// read-modify-write): it fills whatever batch capacity demand traffic
	// leaves free and can be delayed while demand reads keep arriving.
	Prefetch

	numPriorities
)

// String names the priority class.
func (p Priority) String() string {
	switch p {
	case Demand:
		return "demand"
	case Prefetch:
		return "prefetch"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// DefaultQueueDepth is the target dispatch batch size when Config leaves
// QueueDepth zero — the depth at which the paper's device saturates.
const DefaultQueueDepth = 8

// MaxTargetQueueDepth bounds configurable target queue depths; beyond the
// device's saturation point deeper queues only add latency, so a huge value
// is a configuration mistake, not a tuning choice.
const MaxTargetQueueDepth = 256

// ErrClosed is returned by reads submitted after Close.
var ErrClosed = errors.New("iosched: scheduler closed")

// Config configures a Scheduler.
type Config struct {
	// QueueDepth is the target dispatch batch size: the scheduler
	// accumulates up to this many independent reads and issues them as one
	// device batch. 0 uses DefaultQueueDepth.
	QueueDepth int
	// Window bounds how long a queued read may wait for its batch to fill
	// toward QueueDepth. 0 disables waiting: every dispatch takes whatever
	// is queued at that moment, so an isolated read at low load pays no
	// added latency and batches form only from genuinely concurrent
	// traffic. A non-zero window trades bounded added latency for fuller
	// batches (useful under sustained load and in benchmarks).
	Window time.Duration
	// NoCoalesce disables same-block coalescing (for A/B measurement;
	// coalescing is on by default).
	NoCoalesce bool
	// gate, when non-nil, is called by the dispatcher after assembling each
	// batch and before issuing it to the device — a test hook that makes
	// concurrency tests deterministic. Set via WithGate (export_test.go).
	gate func(batchBlocks []int)
}

func (c *Config) normalize() error {
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.QueueDepth < 1 || c.QueueDepth > MaxTargetQueueDepth {
		return fmt.Errorf("iosched: queue depth %d out of range [1,%d]", c.QueueDepth, MaxTargetQueueDepth)
	}
	if c.Window < 0 {
		return fmt.Errorf("iosched: negative accumulation window %s", c.Window)
	}
	return nil
}

// op is one submitted block read. The leader (the op that owns the device
// read) and any coalesced waiters all block on done; the dispatcher fills
// dst (the leader's buffer) and, when waiters attached, buf, sets lat/err
// and closes done.
type op struct {
	block int
	pri   Priority
	// tag is the leader's opaque version tag (see ReadBlock); coalesced
	// waiters receive it as ReadResult.LeaderTag.
	tag uint64
	// dst is the leader's destination buffer, written by the dispatcher
	// before done closes (the leader is blocked on done, so this is safe
	// and saves a copy on the common uncoalesced path).
	dst []byte

	done chan struct{}
	// buf is the pooled shared result buffer for coalesced waiters. It is
	// allocated (under Scheduler.mu) by the first waiter to attach and
	// stays nil on the common uncoalesced path.
	buf *[]byte
	lat float64
	err error

	// issued flips (under Scheduler.mu) when the dispatcher takes the op
	// into a batch; waiters attaching after that point are marked Late.
	issued bool
	// skips counts dispatches that passed this op over while it headed its
	// queue (anti-starvation accounting for the background class).
	skips int
	// refs counts goroutines that will read buf (leader + waiters); the
	// last one to finish returns buf to the pool. Incremented under
	// Scheduler.mu before done closes, decremented after.
	refs atomic.Int32

	enqueued time.Time
	// waitUS is the time this op spent queued before the dispatcher took it
	// into a batch (set by issue, before done closes).
	waitUS float64
}

// ReadResult describes how one submitted read was served.
type ReadResult struct {
	// LatencyUS is the simulated device latency of the batch that carried
	// this read (the completion time of its slowest member) — the device
	// service component of the read's total latency.
	LatencyUS float64
	// WaitUS is the wall-clock time the read that touched the device spent
	// in the submission queue before dispatch (the queue-wait component).
	// For a coalesced read this is the leader's queue wait.
	WaitUS float64
	// Coalesced reports that this read shared another op's device read
	// instead of causing one itself.
	Coalesced bool
	// Late reports that the read attached to a device read that had already
	// been issued when it arrived: the returned bytes may predate writes
	// that completed at any point before the attach. Callers with
	// freshness requirements re-read when Late is set and LeaderTag no
	// longer matches their current version (see ReadBlock).
	Late bool
	// LeaderTag is the tag the read that actually touched the device was
	// submitted with (the caller's own tag when Coalesced is false). A
	// caller that tags reads with a monotonic version counter can verify a
	// Late result exactly: if LeaderTag still equals the current version,
	// no write landed between the leader's version load and now, so the
	// bytes are fresh; if it differs, the bytes may be stale and must be
	// re-read.
	LeaderTag uint64
}

// Scheduler is a per-device asynchronous block-read scheduler. All methods
// are safe for concurrent use.
type Scheduler struct {
	device *nvm.Device
	cfg    Config

	mu      sync.Mutex
	queues  [numPriorities][]*op
	pending map[int]*op // block -> coalescable op (queued or in flight)
	closed  bool

	wake chan struct{} // nudges the dispatcher; buffered, submitters never block
	stop chan struct{} // closed by Close once, after marking closed
	done chan struct{} // closed when the dispatcher exits

	// Counters (atomics: hot-path increments take no lock).
	submitted     [numPriorities]atomic.Int64
	deviceReads   atomic.Int64
	batches       atomic.Int64
	maxBatch      atomic.Int64
	coalesced     atomic.Int64
	coalescedLate atomic.Int64
	rejected      atomic.Int64
	simBusyUS     atomic.Uint64 // float64 bits

	// queueWait tracks wall-clock submission-to-dispatch time per read;
	// service tracks simulated device time per dispatched batch. Together
	// they decompose the old single LatencyUS into where a miss actually
	// spent its time: waiting for a batch slot vs on the device.
	queueWait *metrics.Histogram
	service   *metrics.Histogram
}

// Stats is a snapshot of scheduler counters.
type Stats struct {
	// TargetQueueDepth, WindowUS and Coalesce echo the configuration.
	TargetQueueDepth int
	WindowUS         float64
	Coalesce         bool
	// DemandReads / PrefetchReads count submitted reads per class
	// (including coalesced ones).
	DemandReads   int64
	PrefetchReads int64
	// DeviceReads counts reads that reached the device (batch members).
	DeviceReads int64
	// Batches counts device dispatches; AvgBatchSize = DeviceReads/Batches.
	Batches      int64
	AvgBatchSize float64
	MaxBatchSize int64
	// Coalesced counts reads served by another read's device I/O;
	// CoalescedLate is the subset that attached after the device read was
	// already issued.
	Coalesced     int64
	CoalescedLate int64
	// Rejected counts reads refused because the scheduler was closed.
	Rejected int64
	// QueuedNow is the instantaneous submission-queue length.
	QueuedNow int
	// SimBusyUS is the accumulated simulated device busy time across all
	// dispatched batches — the denominator of simulated-time throughput.
	SimBusyUS float64
	// QueueWait summarizes wall-clock submission-to-dispatch time per read
	// (microseconds); Service summarizes simulated device time per
	// dispatched batch. QueueWait + Service decompose the total miss-path
	// I/O latency.
	QueueWait metrics.Snapshot
	Service   metrics.Snapshot
}

// New creates a scheduler over device and starts its dispatcher. Close must
// be called to release it.
func New(device *nvm.Device, cfg Config) (*Scheduler, error) {
	if device == nil {
		return nil, errors.New("iosched: nil device")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	s := &Scheduler{
		device:    device,
		cfg:       cfg,
		pending:   make(map[int]*op),
		wake:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		queueWait: metrics.NewLatencyHistogram(),
		service:   metrics.NewLatencyHistogram(),
	}
	go s.dispatch()
	return s, nil
}

// Config returns the scheduler's effective (normalized) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// ReadBlock submits one block read at the given priority and waits for it.
// The block's bytes are copied into dst (at least nvm.BlockSize long). tag
// is an opaque caller version (e.g. a table epoch loaded before the call):
// it travels with the read that touches the device and is handed back to
// every coalesced waiter as ReadResult.LeaderTag, which is what lets
// callers detect a stale Late-coalesced result exactly.
func (s *Scheduler) ReadBlock(block int, dst []byte, pri Priority, tag uint64) (ReadResult, error) {
	if len(dst) < nvm.BlockSize {
		return ReadResult{}, fmt.Errorf("iosched: destination buffer too small: %d", len(dst))
	}
	o, res, err := s.submit(block, dst, pri, tag)
	if err != nil {
		return res, err
	}
	<-o.done
	res.LatencyUS = o.lat
	res.WaitUS = o.waitUS
	err = o.err
	if err == nil && res.Coalesced {
		// The dispatcher wrote the leader's dst directly; waiters copy out
		// of the shared buffer their attach allocated.
		copy(dst[:nvm.BlockSize], *o.buf)
	}
	s.release(o)
	return res, err
}

// ReadBlocks submits len(blocks) reads at the given priority and waits for
// all of them; block blocks[i] lands in dst[i*BlockSize:]. It returns
// per-read results (aligned with blocks) and the first error, if any. The
// reads are independent scheduler ops: they may be dispatched in one device
// batch, split across several, or coalesce with other callers' reads. tag
// has ReadBlock's semantics.
func (s *Scheduler) ReadBlocks(blocks []int, dst []byte, pri Priority, tag uint64) ([]ReadResult, error) {
	if len(dst) < len(blocks)*nvm.BlockSize {
		return nil, fmt.Errorf("iosched: destination buffer too small for %d blocks: %d", len(blocks), len(dst))
	}
	results := make([]ReadResult, len(blocks))
	ops := make([]*op, len(blocks))
	var firstErr error
	for i, b := range blocks {
		o, res, err := s.submit(b, dst[i*nvm.BlockSize:(i+1)*nvm.BlockSize], pri, tag)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ops[i] = o
		results[i] = res
	}
	for i, o := range ops {
		if o == nil {
			continue
		}
		<-o.done
		results[i].LatencyUS = o.lat
		results[i].WaitUS = o.waitUS
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
		} else if results[i].Coalesced {
			copy(dst[i*nvm.BlockSize:(i+1)*nvm.BlockSize], *o.buf)
		}
		s.release(o)
	}
	return results, firstErr
}

// submit enqueues (or coalesces) one read. On success the caller must wait
// on the returned op's done channel and then call release.
func (s *Scheduler) submit(block int, dst []byte, pri Priority, tag uint64) (*op, ReadResult, error) {
	if pri < 0 || pri >= numPriorities {
		return nil, ReadResult{}, fmt.Errorf("iosched: invalid priority %d", int(pri))
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, ReadResult{}, ErrClosed
	}
	s.submitted[pri].Add(1)
	if !s.cfg.NoCoalesce {
		if existing, ok := s.pending[block]; ok {
			existing.refs.Add(1)
			late := existing.issued
			if existing.buf == nil {
				// First waiter: materialize the shared result buffer the
				// dispatcher will fill alongside the leader's dst. Allocating
				// it here (under mu, while the op is still in the pending
				// map) guarantees the dispatcher sees it before fan-out.
				existing.buf = nvm.GetBlockBuf()
			}
			// A demand read coalescing onto a queued prefetch read must not
			// inherit its low urgency: promote the shared op.
			if !existing.issued && pri < existing.pri {
				s.promoteLocked(existing, pri)
			}
			leaderTag := existing.tag
			s.mu.Unlock()
			s.coalesced.Add(1)
			if late {
				s.coalescedLate.Add(1)
			}
			// Surface the coalesced read in the device's stats section next
			// to the batch counters it complements.
			s.device.NoteCoalescedRead()
			return existing, ReadResult{Coalesced: true, Late: late, LeaderTag: leaderTag}, nil
		}
	}
	o := &op{block: block, pri: pri, tag: tag, dst: dst, done: make(chan struct{}), enqueued: time.Now()}
	o.refs.Store(1)
	if !s.cfg.NoCoalesce {
		s.pending[block] = o
	}
	s.queues[pri] = append(s.queues[pri], o)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return o, ReadResult{LeaderTag: tag}, nil
}

// promoteLocked moves a queued op to a more urgent priority class. Callers
// hold s.mu.
func (s *Scheduler) promoteLocked(o *op, pri Priority) {
	q := s.queues[o.pri]
	for i, queued := range q {
		if queued == o {
			s.queues[o.pri] = append(q[:i], q[i+1:]...)
			break
		}
	}
	o.pri = pri
	s.queues[pri] = append(s.queues[pri], o)
}

// release drops one reference to the op's shared result buffer, returning
// it to the block-buffer pool when this was the last reader.
func (s *Scheduler) release(o *op) {
	if o.refs.Add(-1) == 0 && o.buf != nil {
		nvm.PutBlockBuf(o.buf)
	}
}

// queuedLocked returns the total queued op count. Callers hold s.mu.
func (s *Scheduler) queuedLocked() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

// prefetchStarvationSkips bounds how many consecutive dispatches may pass
// over a queued background read before it is granted a batch slot ahead of
// demand traffic. Demand still dominates every batch; the bound exists
// because background reads can be awaited under locks (UpdateVector's
// read-modify-write holds updateMu, which snapshot export also needs), so
// "deferred while demand keeps arriving" must mean bounded, not forever.
const prefetchStarvationSkips = 8

// takeBatchLocked removes up to target ops from the queues, demand first,
// and marks them issued. A background op that has been passed over by
// prefetchStarvationSkips dispatches takes the first slot. Callers hold
// s.mu.
func (s *Scheduler) takeBatchLocked(target int) []*op {
	batch := make([]*op, 0, target)
	if q := s.queues[Prefetch]; len(q) > 0 && q[0].skips >= prefetchStarvationSkips {
		o := q[0]
		s.queues[Prefetch] = q[1:]
		o.issued = true
		batch = append(batch, o)
	}
	for pri := range s.queues {
		q := s.queues[pri]
		for len(q) > 0 && len(batch) < target {
			o := q[0]
			q = q[1:]
			o.issued = true
			batch = append(batch, o)
		}
		s.queues[pri] = q
		if len(batch) == target {
			break
		}
	}
	// The head blocks its whole FIFO queue, so aging it is enough.
	if q := s.queues[Prefetch]; len(q) > 0 {
		q[0].skips++
	}
	return batch
}

// dispatch is the scheduler's single background goroutine: it assembles
// batches from the submission queues and issues them to the device.
func (s *Scheduler) dispatch() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for s.queuedLocked() == 0 {
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			select {
			case <-s.wake:
			case <-s.stop:
				// Re-check the queue: ops submitted just before Close
				// flipped closed still drain below.
			}
			s.mu.Lock()
		}

		// Accumulate toward the target queue depth, but never hold the
		// oldest read past the configured window: the window bounds added
		// latency, it does not guarantee full batches.
		if w := s.cfg.Window; w > 0 && !s.closed {
			oldest := s.oldestEnqueueLocked()
			for s.queuedLocked() < s.cfg.QueueDepth && !s.closed {
				wait := w - time.Since(oldest)
				if wait <= 0 {
					break
				}
				s.mu.Unlock()
				timer := time.NewTimer(wait)
				select {
				case <-s.wake:
					timer.Stop()
				case <-timer.C:
				case <-s.stop:
					timer.Stop()
				}
				s.mu.Lock()
			}
		}

		batch := s.takeBatchLocked(s.cfg.QueueDepth)
		s.mu.Unlock()
		if len(batch) > 0 {
			s.issue(batch)
		}
	}
}

// oldestEnqueueLocked returns the earliest enqueue time across the queues.
// Callers hold s.mu and guarantee at least one queued op.
func (s *Scheduler) oldestEnqueueLocked() time.Time {
	var oldest time.Time
	for _, q := range s.queues {
		if len(q) > 0 && (oldest.IsZero() || q[0].enqueued.Before(oldest)) {
			oldest = q[0].enqueued
		}
	}
	return oldest
}

// issue sends one assembled batch to the device and fans results out to the
// ops' waiters.
func (s *Scheduler) issue(batch []*op) {
	if s.cfg.gate != nil {
		blocks := make([]int, len(batch))
		for i, o := range batch {
			blocks[i] = o.block
		}
		s.cfg.gate(blocks)
	}

	idxs := make([]int, len(batch))
	now := time.Now()
	for i, o := range batch {
		idxs[i] = o.block
		// Queue wait ends here: the op is leaving the queue for the device.
		o.waitUS = float64(now.Sub(o.enqueued)) / float64(time.Microsecond)
		s.queueWait.Observe(o.waitUS)
	}
	bufp := nvm.GetBatchBuf(len(batch))
	// One batch in flight at a time: submissions arriving while this read
	// runs queue up and form the next batch, so the synchronous device
	// call is the cheapest correct dispatch. Overlapping multiple batches
	// (via nvm's ReadBlocksAsync) would plug in here.
	lat, err := s.device.ReadBlocks(idxs, *bufp)

	// Freeze the waiter set before fanning results out: once the ops leave
	// the pending map no new waiter can attach, so every shared buffer a
	// waiter allocated is visible (it was created under the same mutex) and
	// gets filled below before done closes.
	s.mu.Lock()
	for _, o := range batch {
		if s.pending[o.block] == o {
			delete(s.pending, o.block)
		}
	}
	s.mu.Unlock()

	switch {
	case err != nil && len(batch) > 1:
		// One bad block (out of range, backend I/O error) must not poison
		// the innocent reads batched with it: retry each block alone so
		// the error lands only on the op that caused it.
		s.retrySingly(batch, *bufp)
	case err != nil:
		batch[0].err = err
	default:
		for i, o := range batch {
			o.lat = lat
			src := (*bufp)[i*nvm.BlockSize : (i+1)*nvm.BlockSize]
			// The leader's buffer is written directly (it is blocked on
			// done, so this is race-free and the common uncoalesced miss
			// pays a single copy); the shared buffer exists only when a
			// waiter attached.
			copy(o.dst[:nvm.BlockSize], src)
			if o.buf != nil {
				copy(*o.buf, src)
			}
		}
		s.accountBatch(len(batch), lat)
	}
	nvm.PutBatchBuf(bufp)
	for _, o := range batch {
		close(o.done)
	}
}

// retrySingly re-reads every op of a failed batch individually, attributing
// errors per block. The ops are already out of the pending map.
func (s *Scheduler) retrySingly(batch []*op, scratch []byte) {
	for _, o := range batch {
		lat, err := s.device.ReadBlock(o.block, scratch[:nvm.BlockSize])
		o.lat, o.err = lat, err
		if err == nil {
			copy(o.dst[:nvm.BlockSize], scratch[:nvm.BlockSize])
			if o.buf != nil {
				copy(*o.buf, scratch[:nvm.BlockSize])
			}
			s.accountBatch(1, lat)
		}
	}
}

// accountBatch records one device dispatch of n reads with the given
// simulated completion latency.
func (s *Scheduler) accountBatch(n int, latUS float64) {
	s.deviceReads.Add(int64(n))
	s.batches.Add(1)
	for {
		cur := s.maxBatch.Load()
		if int64(n) <= cur || s.maxBatch.CompareAndSwap(cur, int64(n)) {
			break
		}
	}
	for {
		cur := s.simBusyUS.Load()
		next := math.Float64bits(math.Float64frombits(cur) + latUS)
		if s.simBusyUS.CompareAndSwap(cur, next) {
			break
		}
	}
	s.service.Observe(latUS)
}

// Stats returns a snapshot of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	queued := s.queuedLocked()
	s.mu.Unlock()
	st := Stats{
		TargetQueueDepth: s.cfg.QueueDepth,
		WindowUS:         float64(s.cfg.Window) / float64(time.Microsecond),
		Coalesce:         !s.cfg.NoCoalesce,
		DemandReads:      s.submitted[Demand].Load(),
		PrefetchReads:    s.submitted[Prefetch].Load(),
		DeviceReads:      s.deviceReads.Load(),
		Batches:          s.batches.Load(),
		MaxBatchSize:     s.maxBatch.Load(),
		Coalesced:        s.coalesced.Load(),
		CoalescedLate:    s.coalescedLate.Load(),
		Rejected:         s.rejected.Load(),
		QueuedNow:        queued,
		SimBusyUS:        math.Float64frombits(s.simBusyUS.Load()),
		QueueWait:        s.queueWait.Snapshot(),
		Service:          s.service.Snapshot(),
	}
	if st.Batches > 0 {
		st.AvgBatchSize = float64(st.DeviceReads) / float64(st.Batches)
	}
	return st
}

// Close stops accepting new reads, lets every already-queued read complete
// and stops the dispatcher. Reads submitted after Close fail with ErrClosed.
// Close is idempotent and safe to call concurrently.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
	}
	<-s.done
	return nil
}
