package iosched

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bandana/internal/nvm"
)

// countingStore wraps a MemStore and counts every read that reaches the
// backing store — the ground truth for coalescing assertions.
type countingStore struct {
	*nvm.MemStore
	readCalls  atomic.Int64
	blocksRead atomic.Int64
}

func (s *countingStore) ReadBlock(idx int, dst []byte) error {
	s.readCalls.Add(1)
	s.blocksRead.Add(1)
	return s.MemStore.ReadBlock(idx, dst)
}

func (s *countingStore) ReadBlocks(idxs []int, dst []byte) error {
	s.readCalls.Add(1)
	s.blocksRead.Add(int64(len(idxs)))
	return s.MemStore.ReadBlocks(idxs, dst)
}

// newTestDevice builds a device over a counting store whose blocks hold a
// distinct pattern per block index.
func newTestDevice(t *testing.T, numBlocks int) (*nvm.Device, *countingStore) {
	t.Helper()
	cs := &countingStore{MemStore: nvm.NewMemStore(numBlocks)}
	for b := 0; b < numBlocks; b++ {
		if err := cs.MemStore.WriteBlock(b, blockPattern(b)); err != nil {
			t.Fatal(err)
		}
	}
	dev := nvm.NewDevice(nvm.DeviceConfig{NumBlocks: numBlocks, Store: cs, Seed: 1})
	t.Cleanup(func() { dev.Close() })
	return dev, cs
}

func blockPattern(b int) []byte {
	buf := make([]byte, nvm.BlockSize)
	for i := range buf {
		buf[i] = byte(b*31 + i)
	}
	return buf
}

func mustNew(t *testing.T, dev *nvm.Device, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestMissStormCoalescesToOneRead pins the coalescing invariant: K
// concurrent reads of one block cause exactly one backing-store read, and
// every caller receives byte-identical data. The dispatch gate holds the
// leader's batch at the device so the other K-1 readers deterministically
// attach to the in-flight read.
func TestMissStormCoalescesToOneRead(t *testing.T) {
	const storm = 16
	dev, cs := newTestDevice(t, 64)
	gateReached := make(chan struct{})
	release := make(chan struct{})
	var gateOnce sync.Once
	cfg := Config{QueueDepth: 4}.WithGate(func([]int) {
		gateOnce.Do(func() {
			close(gateReached)
			<-release
		})
	})
	s := mustNew(t, dev, cfg)

	type result struct {
		res ReadResult
		buf []byte
		err error
	}
	results := make(chan result, storm)
	read := func(tag uint64) {
		buf := make([]byte, nvm.BlockSize)
		res, err := s.ReadBlock(7, buf, Demand, tag)
		results <- result{res, buf, err}
	}

	go read(42) // leader
	<-gateReached
	// The leader's batch is assembled and (as far as the scheduler is
	// concerned) in flight. The rest of the storm arrives now.
	for i := 1; i < storm; i++ {
		go read(99)
	}
	waitFor(t, "storm to coalesce", func() bool {
		return s.Stats().Coalesced == storm-1
	})
	close(release)

	want := blockPattern(7)
	var coalesced, late int
	for i := 0; i < storm; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if !bytes.Equal(r.buf, want) {
			t.Fatalf("reader %d got wrong bytes", i)
		}
		if r.res.Coalesced {
			coalesced++
		}
		if r.res.Late {
			late++
		}
		// Every result reports the tag of the read that touched the device
		// — the leader's — which is what lets callers verify freshness of
		// Late-coalesced bytes against their own version counter.
		if r.res.LeaderTag != 42 {
			t.Fatalf("reader %d: leader tag %d, want 42", i, r.res.LeaderTag)
		}
	}
	if got := cs.blocksRead.Load(); got != 1 {
		t.Fatalf("storm of %d caused %d device reads, want exactly 1", storm, got)
	}
	if coalesced != storm-1 || late != storm-1 {
		t.Fatalf("coalesced=%d late=%d, want %d each", coalesced, late, storm-1)
	}
	st := s.Stats()
	if st.DeviceReads != 1 || st.Coalesced != storm-1 || st.CoalescedLate != storm-1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestQueuedCoalescing covers the other attach path: readers that arrive
// while the shared op is still queued (inside the accumulation window) are
// not marked Late, and still share one device read.
func TestQueuedCoalescing(t *testing.T) {
	const storm = 8
	dev, cs := newTestDevice(t, 64)
	// Target depth far above what one block can supply, with a long window:
	// the lone queued op waits, the storm coalesces onto it, one read.
	s := mustNew(t, dev, Config{QueueDepth: 64, Window: 300 * time.Millisecond})

	var wg sync.WaitGroup
	var lateCount atomic.Int64
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, nvm.BlockSize)
			res, err := s.ReadBlock(9, buf, Demand, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(buf, blockPattern(9)) {
				t.Error("wrong bytes")
			}
			if res.Late {
				lateCount.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := cs.blocksRead.Load(); got != 1 {
		t.Fatalf("%d device reads, want 1", got)
	}
	if lateCount.Load() != 0 {
		t.Fatalf("%d readers marked Late; window coalescing should attach before issue", lateCount.Load())
	}
}

// TestNoCoalesceDisablesSharing verifies the A/B switch: with NoCoalesce,
// every read reaches the device.
func TestNoCoalesceDisablesSharing(t *testing.T) {
	dev, cs := newTestDevice(t, 16)
	s := mustNew(t, dev, Config{QueueDepth: 4, Window: 20 * time.Millisecond, NoCoalesce: true})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, nvm.BlockSize)
			if _, err := s.ReadBlock(3, buf, Demand, 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := cs.blocksRead.Load(); got != 8 {
		t.Fatalf("%d device reads with coalescing off, want 8", got)
	}
	if st := s.Stats(); st.Coalesced != 0 {
		t.Fatalf("coalesced %d with coalescing off", st.Coalesced)
	}
}

// TestDemandDispatchedBeforePrefetch pins the priority invariant: when
// demand and prefetch reads are queued together, every demand read is
// dispatched in an earlier-or-equal batch than every prefetch read.
func TestDemandDispatchedBeforePrefetch(t *testing.T) {
	dev, _ := newTestDevice(t, 64)

	var mu sync.Mutex
	var dispatched [][]int
	gateReached := make(chan struct{})
	release := make(chan struct{})
	first := true
	cfg := Config{QueueDepth: 2}.WithGate(func(blocks []int) {
		mu.Lock()
		hold := first
		first = false
		dispatched = append(dispatched, append([]int(nil), blocks...))
		mu.Unlock()
		if hold {
			close(gateReached)
			<-release
		}
	})
	s := mustNew(t, dev, cfg)

	var wg sync.WaitGroup
	readAsync := func(block int, pri Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, nvm.BlockSize)
			if _, err := s.ReadBlock(block, buf, pri, 0); err != nil {
				t.Error(err)
			}
		}()
	}

	readAsync(0, Demand) // occupies the dispatcher at the gate
	<-gateReached
	// Enqueue prefetch traffic first, then demand: dispatch order must
	// still put the demand blocks first.
	for _, b := range []int{10, 11, 12, 13} {
		readAsync(b, Prefetch)
	}
	for _, b := range []int{20, 21} {
		readAsync(b, Demand)
	}
	waitFor(t, "six reads queued", func() bool { return s.Stats().QueuedNow == 6 })
	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	batchOf := map[int]int{}
	for i, batch := range dispatched {
		for _, b := range batch {
			batchOf[b] = i
		}
	}
	for _, demand := range []int{20, 21} {
		for _, prefetch := range []int{10, 11, 12, 13} {
			if batchOf[demand] > batchOf[prefetch] {
				t.Fatalf("demand block %d dispatched in batch %d after prefetch block %d (batch %d); order: %v",
					demand, batchOf[demand], prefetch, batchOf[prefetch], dispatched)
			}
		}
	}
}

// TestPrefetchStarvationBounded: a background read passed over by many
// consecutive demand-full dispatches must still complete within the aging
// bound — update()'s read-modify-write awaits one of these while holding
// updateMu, so "deferred" has to mean bounded.
func TestPrefetchStarvationBounded(t *testing.T) {
	dev, _ := newTestDevice(t, 64)
	var mu sync.Mutex
	var dispatched [][]int
	gateReached := make(chan struct{})
	release := make(chan struct{})
	first := true
	cfg := Config{QueueDepth: 1}.WithGate(func(blocks []int) {
		mu.Lock()
		hold := first
		first = false
		dispatched = append(dispatched, append([]int(nil), blocks...))
		mu.Unlock()
		if hold {
			close(gateReached)
			<-release
		}
	})
	s := mustNew(t, dev, cfg)

	var wg sync.WaitGroup
	readAsync := func(block int, pri Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, nvm.BlockSize)
			if _, err := s.ReadBlock(block, buf, pri, 0); err != nil {
				t.Error(err)
			}
		}()
	}
	readAsync(0, Demand) // parks the dispatcher at the gate
	<-gateReached
	readAsync(50, Prefetch) // the background read under test
	waitFor(t, "prefetch queued", func() bool { return s.Stats().PrefetchReads == 1 })
	// A wall of demand reads that, without aging, would all dispatch first.
	for b := 1; b <= 3*prefetchStarvationSkips; b++ {
		readAsync(b, Demand)
	}
	waitFor(t, "wall queued", func() bool { return s.Stats().QueuedNow == 3*prefetchStarvationSkips+1 })
	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	pos := -1
	for i, batch := range dispatched {
		if batch[0] == 50 {
			pos = i
			break
		}
	}
	if pos == -1 {
		t.Fatalf("prefetch read never dispatched: %v", dispatched)
	}
	if pos > prefetchStarvationSkips+2 {
		t.Fatalf("prefetch read starved for %d dispatches (bound %d): %v", pos, prefetchStarvationSkips, dispatched)
	}
}

// TestCoalescePromotesPriority: a demand read coalescing onto a queued
// prefetch read promotes the shared op into the demand queue.
func TestCoalescePromotesPriority(t *testing.T) {
	dev, _ := newTestDevice(t, 64)
	var mu sync.Mutex
	var dispatched [][]int
	gateReached := make(chan struct{})
	release := make(chan struct{})
	first := true
	cfg := Config{QueueDepth: 1}.WithGate(func(blocks []int) {
		mu.Lock()
		hold := first
		first = false
		dispatched = append(dispatched, append([]int(nil), blocks...))
		mu.Unlock()
		if hold {
			close(gateReached)
			<-release
		}
	})
	s := mustNew(t, dev, cfg)

	var wg sync.WaitGroup
	readAsync := func(block int, pri Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, nvm.BlockSize)
			if _, err := s.ReadBlock(block, buf, pri, 0); err != nil {
				t.Error(err)
			}
		}()
	}
	readAsync(0, Demand)
	<-gateReached
	readAsync(30, Prefetch) // queued at prefetch priority
	waitFor(t, "prefetch read queued", func() bool { return s.Stats().PrefetchReads == 1 && s.Stats().QueuedNow == 1 })
	readAsync(31, Prefetch) // competing prefetch read, queued after 30
	readAsync(30, Demand)   // coalesces onto 30 and must promote it
	waitFor(t, "coalesce", func() bool { return s.Stats().Coalesced == 1 })
	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	// With QueueDepth 1 each batch is one block: 30 must come before 31.
	pos := map[int]int{}
	for i, batch := range dispatched {
		pos[batch[0]] = i
	}
	if pos[30] > pos[31] {
		t.Fatalf("promoted block 30 dispatched after prefetch block 31: %v", dispatched)
	}
}

// TestAccumulationBatchesConcurrentReads: distinct-block reads arriving
// within the window are dispatched as one device batch at the target depth.
func TestAccumulationBatchesConcurrentReads(t *testing.T) {
	dev, cs := newTestDevice(t, 64)
	s := mustNew(t, dev, Config{QueueDepth: 4, Window: 300 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			buf := make([]byte, nvm.BlockSize)
			if _, err := s.ReadBlock(b, buf, Demand, 0); err != nil {
				t.Error(err)
			} else if !bytes.Equal(buf, blockPattern(b)) {
				t.Errorf("block %d: wrong bytes", b)
			}
		}(i)
	}
	wg.Wait()
	if got := cs.readCalls.Load(); got != 1 {
		t.Fatalf("4 concurrent reads used %d device dispatches, want 1 batch", got)
	}
	st := s.Stats()
	if st.Batches != 1 || st.MaxBatchSize != 4 || st.AvgBatchSize != 4 {
		t.Fatalf("stats %+v, want one batch of 4", st)
	}
}

// TestLowLoadDispatchesImmediately: with no window, an isolated read is not
// parked waiting for a batch that will never fill.
func TestLowLoadDispatchesImmediately(t *testing.T) {
	dev, _ := newTestDevice(t, 16)
	s := mustNew(t, dev, Config{QueueDepth: 32})
	start := time.Now()
	buf := make([]byte, nvm.BlockSize)
	res, err := s.ReadBlock(5, buf, Demand, 0)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("isolated read took %s", elapsed)
	}
	if res.Coalesced || res.Late {
		t.Fatalf("isolated read reported %+v", res)
	}
	if !bytes.Equal(buf, blockPattern(5)) {
		t.Fatal("wrong bytes")
	}
}

// TestErrorIsolation: one bad block in a batch must fail only its own read;
// reads batched with it still succeed with correct data.
func TestErrorIsolation(t *testing.T) {
	dev, _ := newTestDevice(t, 8)
	s := mustNew(t, dev, Config{QueueDepth: 4, Window: 300 * time.Millisecond})
	type result struct {
		block int
		buf   []byte
		err   error
	}
	results := make(chan result, 4)
	for _, b := range []int{1, 2, 999, 3} { // 999 is out of range
		go func(b int) {
			buf := make([]byte, nvm.BlockSize)
			_, err := s.ReadBlock(b, buf, Demand, 0)
			results <- result{b, buf, err}
		}(b)
	}
	for i := 0; i < 4; i++ {
		r := <-results
		if r.block == 999 {
			if r.err == nil {
				t.Fatal("out-of-range read succeeded")
			}
			continue
		}
		if r.err != nil {
			t.Fatalf("block %d poisoned by batched bad read: %v", r.block, r.err)
		}
		if !bytes.Equal(r.buf, blockPattern(r.block)) {
			t.Fatalf("block %d: wrong bytes", r.block)
		}
	}
}

// TestReadBlocksMulti: the multi-block submit path returns every block's
// bytes and per-read results.
func TestReadBlocksMulti(t *testing.T) {
	dev, _ := newTestDevice(t, 32)
	s := mustNew(t, dev, Config{QueueDepth: 8})
	blocks := []int{3, 17, 4, 28, 9}
	dst := make([]byte, len(blocks)*nvm.BlockSize)
	results, err := s.ReadBlocks(blocks, dst, Demand, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(blocks) {
		t.Fatalf("%d results for %d blocks", len(results), len(blocks))
	}
	for i, b := range blocks {
		if !bytes.Equal(dst[i*nvm.BlockSize:(i+1)*nvm.BlockSize], blockPattern(b)) {
			t.Fatalf("block %d: wrong bytes", b)
		}
	}
}

// TestWaitServiceDecomposition pins the queue-wait vs device-service split:
// every completed read reports a non-negative WaitUS and a positive
// LatencyUS, and the scheduler's stats expose matching QueueWait/Service
// histograms whose counts reconcile with the dispatch counters.
func TestWaitServiceDecomposition(t *testing.T) {
	dev, _ := newTestDevice(t, 32)
	s := mustNew(t, dev, Config{QueueDepth: 4})
	blocks := []int{1, 2, 3, 4, 5, 6, 7, 8}
	dst := make([]byte, len(blocks)*nvm.BlockSize)
	results, err := s.ReadBlocks(blocks, dst, Demand, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.WaitUS < 0 {
			t.Fatalf("read %d: negative WaitUS %g", i, r.WaitUS)
		}
		if r.LatencyUS <= 0 {
			t.Fatalf("read %d: service latency %g, want > 0", i, r.LatencyUS)
		}
	}
	st := s.Stats()
	if st.QueueWait.Count != int64(len(blocks)) {
		t.Fatalf("QueueWait count = %d, want %d", st.QueueWait.Count, len(blocks))
	}
	if st.Service.Count != st.Batches {
		t.Fatalf("Service count = %d, batches = %d", st.Service.Count, st.Batches)
	}
	if st.Service.Mean <= 0 {
		t.Fatalf("Service mean = %g, want > 0", st.Service.Mean)
	}
}

// TestCloseDrainsAndRejects: Close completes queued reads, then rejects new
// submissions; it is idempotent.
func TestCloseDrainsAndRejects(t *testing.T) {
	dev, _ := newTestDevice(t, 16)
	s, err := New(dev, Config{QueueDepth: 4, Window: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			buf := make([]byte, nvm.BlockSize)
			_, err := s.ReadBlock(b, buf, Demand, 0)
			errs <- err
		}(i)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	// Reads racing Close either completed or were rejected with ErrClosed —
	// never anything else, and never a hang (wg.Wait above).
	for err := range errs {
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatal(err)
		}
	}
	buf := make([]byte, nvm.BlockSize)
	if _, err := s.ReadBlock(1, buf, Demand, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close read: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConfigValidation rejects nonsensical configurations.
func TestConfigValidation(t *testing.T) {
	dev, _ := newTestDevice(t, 8)
	for _, cfg := range []Config{
		{QueueDepth: -1},
		{QueueDepth: MaxTargetQueueDepth + 1},
		{Window: -time.Second},
	} {
		if _, err := New(dev, cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil device accepted")
	}
	s := mustNew(t, dev, Config{})
	if got := s.Config().QueueDepth; got != DefaultQueueDepth {
		t.Fatalf("default queue depth %d", got)
	}
	buf := make([]byte, nvm.BlockSize)
	if _, err := s.ReadBlock(0, buf, Priority(99), 0); err == nil {
		t.Fatal("invalid priority accepted")
	}
	if _, err := s.ReadBlock(0, buf[:10], Demand, 0); err == nil {
		t.Fatal("short buffer accepted")
	}
}

// TestConcurrentStress exercises the scheduler under -race: mixed
// priorities, overlapping blocks, concurrent Stats.
func TestConcurrentStress(t *testing.T) {
	dev, _ := newTestDevice(t, 32)
	s := mustNew(t, dev, Config{QueueDepth: 8, Window: time.Millisecond})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, nvm.BlockSize)
			for i := 0; i < 200; i++ {
				b := rng.Intn(32)
				pri := Demand
				if rng.Intn(4) == 0 {
					pri = Prefetch
				}
				if _, err := s.ReadBlock(b, buf, pri, 0); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(buf, blockPattern(b)) {
					t.Errorf("block %d: wrong bytes", b)
					return
				}
			}
		}(int64(w))
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s.Stats()
			}
		}
	}()
	wg.Wait()
	close(stop)
	st := s.Stats()
	if st.DemandReads+st.PrefetchReads != 16*200 {
		t.Fatalf("submitted %d+%d, want %d", st.DemandReads, st.PrefetchReads, 16*200)
	}
	if st.DeviceReads+st.Coalesced != 16*200 {
		t.Fatalf("device %d + coalesced %d != %d", st.DeviceReads, st.Coalesced, 16*200)
	}
}

// TestSweepThroughputGrowsWithDepth pins the acceptance criterion on both
// backends: simulated miss-path throughput at target QD >= 8 is strictly
// above QD 1 — the whole point of batching toward the device's saturation
// depth.
func TestSweepThroughputGrowsWithDepth(t *testing.T) {
	backends := []string{"mem", "file"}
	for _, backend := range backends {
		t.Run(backend, func(t *testing.T) {
			const blocks = 1024
			var store nvm.BlockStore
			if backend == "file" {
				fs, _, err := nvm.OpenOrCreateFileStore(
					filepath.Join(t.TempDir(), "sweep-blocks.bnd"), blocks, nvm.FileStoreOptions{})
				if err != nil {
					t.Fatal(err)
				}
				store = fs
			}
			dev := nvm.NewDevice(nvm.DeviceConfig{NumBlocks: blocks, Store: store, Seed: 42})
			defer dev.Close()
			results, err := MissPathSweep(dev, SweepOptions{
				Depths:       []int{1, 8},
				Workers:      32,
				OpsPerWorker: 40,
				Seed:         42,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 2 {
				t.Fatalf("%d results", len(results))
			}
			qd1, qd8 := results[0], results[1]
			if qd1.AvgBatchSize != 1 {
				t.Fatalf("QD1 avg batch size %.2f, want 1", qd1.AvgBatchSize)
			}
			if qd8.AvgBatchSize <= 2 {
				t.Fatalf("QD8 avg batch size %.2f, batching not happening", qd8.AvgBatchSize)
			}
			if qd8.SimThroughputGBs <= qd1.SimThroughputGBs {
				t.Fatalf("QD8 throughput %.3f GB/s not above QD1 %.3f GB/s",
					qd8.SimThroughputGBs, qd1.SimThroughputGBs)
			}
		})
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
