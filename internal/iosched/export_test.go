package iosched

// WithGate installs a test-only dispatch gate: fn runs after each batch is
// assembled (ops marked issued, still coalescable) and before it is issued
// to the device. Tests use it to hold a batch in flight deterministically.
func (c Config) WithGate(fn func(batchBlocks []int)) Config {
	c.gate = fn
	return c
}
