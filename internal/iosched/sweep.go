package iosched

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bandana/internal/nvm"
)

// SweepResult is one row of a miss-path queue-depth sweep: the batching and
// throughput the scheduler achieved at one target queue depth.
type SweepResult struct {
	TargetQueueDepth int     `json:"targetQueueDepth"`
	Workers          int     `json:"workers"`
	Ops              int64   `json:"ops"`
	DeviceReads      int64   `json:"deviceReads"`
	Batches          int64   `json:"batches"`
	AvgBatchSize     float64 `json:"avgBatchSize"`
	Coalesced        int64   `json:"coalesced"`
	// MeanBatchLatencyUS is the mean simulated completion latency of one
	// dispatched batch (SimBusyUS / Batches).
	MeanBatchLatencyUS float64 `json:"meanBatchLatencyUS"`
	// SimThroughputGBs is the miss-path read throughput in simulated device
	// time: bytes actually read divided by the accumulated simulated busy
	// time. This is the number the paper's Figure 2 insight predicts should
	// grow with queue depth.
	SimThroughputGBs float64 `json:"simThroughputGBs"`
}

// DefaultSweepDepths are the target queue depths measured by a sweep.
var DefaultSweepDepths = []int{1, 4, 8, 16, 32}

// SweepOptions configures MissPathSweep.
type SweepOptions struct {
	// Depths are the target queue depths to measure (DefaultSweepDepths
	// when nil).
	Depths []int
	// Workers is the number of concurrent miss streams (0 = enough to keep
	// the deepest batch full: 2x the largest depth, at least 32).
	Workers int
	// OpsPerWorker is the number of reads each worker issues (0 = 100).
	OpsPerWorker int
	// Window is the scheduler accumulation window (0 = 2ms, generous so
	// batches fill deterministically rather than depending on timing).
	Window time.Duration
	// NoCoalesce disables coalescing. The sweep draws blocks nearly
	// uniformly, so coalescing is rare either way; disabling it makes
	// DeviceReads == Ops exactly.
	NoCoalesce bool
	// Seed drives the random block choice.
	Seed int64
}

// MissPathSweep measures scheduler-mediated random-read throughput at each
// target queue depth: Workers goroutines each issue OpsPerWorker
// submit-and-wait demand reads of random blocks — the shape of concurrent
// cache misses — and the throughput is computed from the simulated device
// busy time. A fresh scheduler is used per depth so counters are isolated.
func MissPathSweep(device *nvm.Device, opts SweepOptions) ([]SweepResult, error) {
	depths := opts.Depths
	if len(depths) == 0 {
		depths = DefaultSweepDepths
	}
	maxDepth := 0
	for _, d := range depths {
		if d > maxDepth {
			maxDepth = d
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 2 * maxDepth
		if workers < 32 {
			workers = 32
		}
	}
	ops := opts.OpsPerWorker
	if ops <= 0 {
		ops = 100
	}
	window := opts.Window
	if window == 0 {
		window = 2 * time.Millisecond
	}

	results := make([]SweepResult, 0, len(depths))
	for _, depth := range depths {
		sched, err := New(device, Config{
			QueueDepth: depth,
			Window:     window,
			NoCoalesce: opts.NoCoalesce,
		})
		if err != nil {
			return nil, err
		}
		var wg sync.WaitGroup
		errCh := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				buf := make([]byte, nvm.BlockSize)
				for i := 0; i < ops; i++ {
					if _, err := sched.ReadBlock(rng.Intn(device.NumBlocks()), buf, Demand, 0); err != nil {
						errCh <- err
						return
					}
				}
			}(opts.Seed + int64(depth)*100003 + int64(w))
		}
		wg.Wait()
		st := sched.Stats()
		if err := sched.Close(); err != nil {
			return nil, err
		}
		select {
		case err := <-errCh:
			return nil, fmt.Errorf("iosched: sweep at depth %d: %w", depth, err)
		default:
		}
		res := SweepResult{
			TargetQueueDepth: depth,
			Workers:          workers,
			Ops:              st.DemandReads,
			DeviceReads:      st.DeviceReads,
			Batches:          st.Batches,
			AvgBatchSize:     st.AvgBatchSize,
			Coalesced:        st.Coalesced,
		}
		if st.Batches > 0 {
			res.MeanBatchLatencyUS = st.SimBusyUS / float64(st.Batches)
		}
		if st.SimBusyUS > 0 {
			res.SimThroughputGBs = float64(st.DeviceReads) * nvm.BlockSize / st.SimBusyUS / 1000
		}
		results = append(results, res)
	}
	return results, nil
}
