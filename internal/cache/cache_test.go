package cache

import "testing"

func TestNoPrefetchPolicy(t *testing.T) {
	var p NoPrefetch
	p.OnAccess(1)
	if admit, _ := p.AdmitPrefetch(1); admit {
		t.Fatal("NoPrefetch must never admit")
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestAlwaysAdmitPolicy(t *testing.T) {
	p := AlwaysAdmit{Position: 0.5}
	admit, pos := p.AdmitPrefetch(7)
	if !admit || pos != 0.5 {
		t.Fatalf("admit=%v pos=%v", admit, pos)
	}
	p.OnAccess(7) // no-op, must not panic
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestShadowAdmitPolicy(t *testing.T) {
	p := NewShadowAdmit(4, 0.3)
	if admit, _ := p.AdmitPrefetch(1); admit {
		t.Fatal("vector never accessed should not be admitted")
	}
	p.OnAccess(1)
	admit, pos := p.AdmitPrefetch(1)
	if !admit || pos != 0.3 {
		t.Fatalf("vector in shadow should be admitted at configured position, got %v %v", admit, pos)
	}
	// Shadow eviction: fill beyond capacity.
	for id := uint32(10); id < 20; id++ {
		p.OnAccess(id)
	}
	if admit, _ := p.AdmitPrefetch(1); admit {
		t.Fatal("vector evicted from shadow should no longer be admitted")
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestShadowPositionPolicy(t *testing.T) {
	p := NewShadowPosition(4, 0.7)
	admit, pos := p.AdmitPrefetch(5)
	if !admit || pos != 0.7 {
		t.Fatalf("shadow miss should admit at alt position, got %v %v", admit, pos)
	}
	p.OnAccess(5)
	admit, pos = p.AdmitPrefetch(5)
	if !admit || pos != 0 {
		t.Fatalf("shadow hit should admit at MRU, got %v %v", admit, pos)
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestThresholdAdmitPolicy(t *testing.T) {
	counts := []uint32{0, 3, 10, 25}
	p := ThresholdAdmit{Counts: counts, Threshold: 5}
	if admit, _ := p.AdmitPrefetch(1); admit {
		t.Fatal("count 3 <= threshold 5 should not be admitted")
	}
	if admit, _ := p.AdmitPrefetch(2); !admit {
		t.Fatal("count 10 > threshold 5 should be admitted")
	}
	if admit, _ := p.AdmitPrefetch(99); admit {
		t.Fatal("out-of-range id should not be admitted")
	}
	p.OnAccess(2)
	if p.Name() == "" {
		t.Fatal("empty name")
	}
	// Threshold 0 admits anything accessed at least once.
	p0 := ThresholdAdmit{Counts: counts, Threshold: 0}
	if admit, _ := p0.AdmitPrefetch(0); admit {
		t.Fatal("count 0 should not pass threshold 0 (strict inequality)")
	}
	if admit, _ := p0.AdmitPrefetch(1); !admit {
		t.Fatal("count 3 should pass threshold 0")
	}
}

func TestCacheLimited(t *testing.T) {
	c := NewCache(2)
	if c.Unlimited() {
		t.Fatal("capacity 2 should not be unlimited")
	}
	if c.Capacity() != 2 {
		t.Fatalf("capacity = %d", c.Capacity())
	}
	c.Insert(1, 0)
	c.Insert(2, 0)
	if !c.Touch(1) {
		t.Fatal("1 should be cached")
	}
	c.Insert(3, 0) // evicts 2 (LRU)
	if c.Contains(2) {
		t.Fatal("2 should have been evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Touch(99) {
		t.Fatal("99 was never inserted")
	}
}

func TestCacheUnlimited(t *testing.T) {
	c := NewCache(0)
	if !c.Unlimited() {
		t.Fatal("capacity 0 should be unlimited")
	}
	for i := uint32(0); i < 1000; i++ {
		c.Insert(i, 0.9)
	}
	if c.Len() != 1000 {
		t.Fatalf("len = %d", c.Len())
	}
	if !c.Contains(999) || !c.Touch(0) {
		t.Fatal("unlimited cache must retain everything")
	}
	if c.Touch(5000) {
		t.Fatal("never-inserted id reported as cached")
	}
}

func TestCacheInsertPositionAffectsEviction(t *testing.T) {
	c := NewCache(64)
	for i := uint32(0); i < 64; i++ {
		c.Insert(i, 0)
	}
	// Insert one vector near the LRU end and one at the MRU end, then add
	// pressure; the LRU-end insert should be evicted first.
	c.Insert(1000, 0.9)
	c.Insert(2000, 0)
	for i := uint32(100); i < 130; i++ {
		c.Insert(i, 0)
	}
	if c.Contains(1000) && !c.Contains(2000) {
		t.Fatal("position-0.9 insert outlived position-0 insert")
	}
	if !c.Contains(2000) {
		t.Fatal("MRU insert should survive modest pressure")
	}
}
