// Package cache implements Bandana's DRAM vector cache and the admission
// policies for prefetched vectors studied in §4.3 of the paper.
//
// The cache is an LRU queue of vector IDs. Vectors that the application
// explicitly requested are always cached (at the MRU position); vectors that
// were merely *prefetched* — co-located in the same 4 KB NVM block as a
// requested vector — pass through an AdmissionPolicy which decides whether
// they enter the queue at all and at which position. The paper evaluates:
//
//   - inserting prefetched vectors at a configurable queue position
//     (Figure 11a),
//   - admitting them only on a hit in a keys-only shadow cache that
//     simulates a prefetch-free cache (Figure 11b),
//   - a combination of the two (Figure 11c), and
//   - thresholding on the number of times the vector was accessed during
//     the SHP training run (Figure 12) — the policy Bandana adopts.
package cache

import (
	"sync"

	"bandana/internal/lru"
)

// AdmissionPolicy decides the fate of prefetched vectors.
//
// The interface is the contract shared by the trace simulator
// (internal/sim) and the real serving path (internal/core): both feed the
// policy the application's access stream via OnAccess and consult
// AdmitPrefetch for every co-located prefetch candidate, so a policy tuned
// in simulation behaves identically when installed in the store.
//
// Because the store serves lookups from many goroutines concurrently,
// implementations must be safe for concurrent use. The stateless policies
// (NoPrefetch, AlwaysAdmit, ThresholdAdmit) are trivially safe; the
// shadow-cache policies serialize access to their shadow queue internally.
type AdmissionPolicy interface {
	// OnAccess is invoked for every application-requested lookup (hit or
	// miss), allowing stateful policies to observe the true access stream.
	OnAccess(id uint32)
	// AdmitPrefetch is invoked for every prefetch candidate (a vector
	// sharing the block of a missed vector). It returns whether to admit
	// the vector and the queue position to insert it at (0 = MRU end,
	// values near 1 = close to eviction).
	AdmitPrefetch(id uint32) (admit bool, position float64)
	// Name identifies the policy in experiment output.
	Name() string
}

// NoPrefetch never admits prefetched vectors: the baseline policy in which
// each miss caches only the requested vector.
type NoPrefetch struct{}

// OnAccess implements AdmissionPolicy.
func (NoPrefetch) OnAccess(uint32) {}

// AdmitPrefetch implements AdmissionPolicy.
func (NoPrefetch) AdmitPrefetch(uint32) (bool, float64) { return false, 0 }

// Name implements AdmissionPolicy.
func (NoPrefetch) Name() string { return "no-prefetch" }

// AlwaysAdmit admits every prefetched vector at a fixed queue position.
// Position 0 reproduces the naive "treat prefetched vectors like requested
// ones" policy of Figure 10; other positions reproduce Figure 11a.
type AlwaysAdmit struct {
	Position float64
}

// OnAccess implements AdmissionPolicy.
func (AlwaysAdmit) OnAccess(uint32) {}

// AdmitPrefetch implements AdmissionPolicy.
func (p AlwaysAdmit) AdmitPrefetch(uint32) (bool, float64) { return true, p.Position }

// Name implements AdmissionPolicy.
func (p AlwaysAdmit) Name() string { return "always-admit" }

// ShadowAdmit admits a prefetched vector only if it currently appears in a
// keys-only shadow cache fed by the true (prefetch-free) access stream
// (Figure 11b). Admitted vectors are inserted at Position. Safe for
// concurrent use: the shadow queue is guarded by an internal mutex.
type ShadowAdmit struct {
	mu       sync.Mutex
	Shadow   *lru.Shadow[uint32]
	Position float64
}

// NewShadowAdmit builds a ShadowAdmit policy with a shadow cache of
// shadowVectors keys.
func NewShadowAdmit(shadowVectors int, position float64) *ShadowAdmit {
	return &ShadowAdmit{Shadow: lru.NewShadow[uint32](shadowVectors), Position: position}
}

// OnAccess implements AdmissionPolicy.
func (p *ShadowAdmit) OnAccess(id uint32) {
	p.mu.Lock()
	p.Shadow.Access(id)
	p.mu.Unlock()
}

// AdmitPrefetch implements AdmissionPolicy.
func (p *ShadowAdmit) AdmitPrefetch(id uint32) (bool, float64) {
	p.mu.Lock()
	ok := p.Shadow.Contains(id)
	p.mu.Unlock()
	return ok, p.Position
}

// Name implements AdmissionPolicy.
func (p *ShadowAdmit) Name() string { return "shadow-admit" }

// ShadowPosition admits every prefetched vector but chooses its queue
// position based on the shadow cache: shadow hits go to the MRU end, shadow
// misses to AltPosition (Figure 11c). Safe for concurrent use.
type ShadowPosition struct {
	mu          sync.Mutex
	Shadow      *lru.Shadow[uint32]
	AltPosition float64
}

// NewShadowPosition builds a ShadowPosition policy.
func NewShadowPosition(shadowVectors int, altPosition float64) *ShadowPosition {
	return &ShadowPosition{Shadow: lru.NewShadow[uint32](shadowVectors), AltPosition: altPosition}
}

// OnAccess implements AdmissionPolicy.
func (p *ShadowPosition) OnAccess(id uint32) {
	p.mu.Lock()
	p.Shadow.Access(id)
	p.mu.Unlock()
}

// AdmitPrefetch implements AdmissionPolicy.
func (p *ShadowPosition) AdmitPrefetch(id uint32) (bool, float64) {
	p.mu.Lock()
	ok := p.Shadow.Contains(id)
	p.mu.Unlock()
	if ok {
		return true, 0
	}
	return true, p.AltPosition
}

// Name implements AdmissionPolicy.
func (p *ShadowPosition) Name() string { return "shadow-position" }

// ThresholdAdmit admits a prefetched vector only if it was accessed more
// than Threshold times during the SHP training run (Figure 12). This is the
// policy Bandana deploys; the threshold is tuned per table and cache size by
// miniature-cache simulation (§4.3.3).
type ThresholdAdmit struct {
	// Counts[id] is the number of training queries that contained id.
	Counts    []uint32
	Threshold uint32
	Position  float64
}

// OnAccess implements AdmissionPolicy.
func (ThresholdAdmit) OnAccess(uint32) {}

// AdmitPrefetch implements AdmissionPolicy.
func (p ThresholdAdmit) AdmitPrefetch(id uint32) (bool, float64) {
	if int(id) >= len(p.Counts) {
		return false, 0
	}
	return p.Counts[id] > p.Threshold, p.Position
}

// Name implements AdmissionPolicy.
func (p ThresholdAdmit) Name() string { return "threshold-admit" }

// Cache is a fixed-capacity LRU cache of vector IDs used by the trace
// simulator. A capacity of 0 means unlimited (every inserted vector stays).
type Cache struct {
	capacity  int
	lru       *lru.Cache[uint32, struct{}]
	unlimited map[uint32]struct{}
}

// NewCache creates a simulation cache. capacity 0 (or negative) means
// unlimited.
func NewCache(capacity int) *Cache {
	c := &Cache{capacity: capacity}
	if capacity > 0 {
		c.lru = lru.New[uint32, struct{}](capacity)
	} else {
		c.unlimited = make(map[uint32]struct{})
	}
	return c
}

// Unlimited reports whether the cache has no capacity bound.
func (c *Cache) Unlimited() bool { return c.lru == nil }

// Len returns the number of cached vectors.
func (c *Cache) Len() int {
	if c.lru != nil {
		return c.lru.Len()
	}
	return len(c.unlimited)
}

// Capacity returns the configured capacity (0 when unlimited).
func (c *Cache) Capacity() int { return c.capacity }

// Touch reports whether id is cached and, if so, promotes it to MRU.
func (c *Cache) Touch(id uint32) bool {
	if c.lru != nil {
		return c.lru.Touch(id)
	}
	_, ok := c.unlimited[id]
	return ok
}

// Contains reports whether id is cached without promoting it.
func (c *Cache) Contains(id uint32) bool {
	if c.lru != nil {
		return c.lru.Contains(id)
	}
	_, ok := c.unlimited[id]
	return ok
}

// Insert caches id at the given queue position (ignored when unlimited).
func (c *Cache) Insert(id uint32, position float64) {
	if c.lru != nil {
		c.lru.AddAt(id, struct{}{}, position)
		return
	}
	c.unlimited[id] = struct{}{}
}
