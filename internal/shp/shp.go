// Package shp implements the supervised partitioner Bandana uses in
// production: a Social Hash Partitioner (Kabiljo et al., VLDB 2017) over the
// lookup hypergraph.
//
// Vertices are embedding vectors; hyperedges are queries (the set of vectors
// a single request looked up). The goal is a balanced partition of the
// vectors into NVM blocks that minimises the average *fanout* — the number
// of distinct blocks a query has to read (Equation 3 of the Bandana paper).
//
// The algorithm is recursive balanced bisection: starting from one bucket
// holding every vector, each bucket is repeatedly split into two equal
// halves. A split is refined with a configurable number of swap iterations:
// each iteration computes, for every vertex, the fanout gain of moving it to
// the other side, and then swaps the highest-gain pairs so the two sides
// stay balanced. Recursion stops when buckets reach the target block size
// (32 vectors for 128 B vectors in 4 KB blocks). Sibling buckets are refined
// in parallel.
package shp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Options configures a partitioning run.
type Options struct {
	// BlockVectors is the target number of vectors per block (bucket leaf
	// size). Defaults to 32.
	BlockVectors int
	// Iterations is the number of swap-refinement iterations per bisection
	// level (the paper uses 16).
	Iterations int
	// Seed drives the initial random split.
	Seed int64
	// Workers bounds the number of buckets refined concurrently. Defaults
	// to GOMAXPROCS.
	Workers int
	// MaxSwapFraction caps the fraction of a side that may be swapped in a
	// single iteration (guards against oscillation). Defaults to 0.2.
	MaxSwapFraction float64
	// InitialOrder warm-starts the partitioner from an existing placement
	// (e.g. the layout currently on NVM): the working order starts as
	// InitialOrder and every bisection seeds its split from the incoming
	// arrangement instead of first-co-access order, so refinement is
	// incremental — few iterations suffice to adapt a good layout to a
	// drifted workload, and with zero signal the old layout survives
	// unchanged. Must be a permutation of [0, numVectors). Nil starts from
	// scratch (Repartition sets it for you).
	InitialOrder []uint32
}

func (o *Options) defaults() {
	if o.BlockVectors <= 0 {
		o.BlockVectors = 32
	}
	if o.Iterations <= 0 {
		o.Iterations = 16
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxSwapFraction <= 0 || o.MaxSwapFraction > 1 {
		o.MaxSwapFraction = 0.2
	}
}

// Result is the outcome of a partitioning run.
type Result struct {
	// Order is the physical placement: Order[pos] = vector ID.
	Order []uint32
	// Levels is the number of bisection levels performed.
	Levels int
	// InitialFanout and FinalFanout are the average query fanout before and
	// after partitioning, measured on the training queries with the target
	// block size.
	InitialFanout float64
	FinalFanout   float64
}

// Partition partitions numVectors vectors using the training queries.
// Vectors that never appear in a query are appended at arbitrary positions
// in blocks with free space, as in the paper (§4.3.2).
func Partition(numVectors int, queries [][]uint32, opts Options) (*Result, error) {
	if numVectors <= 0 {
		return nil, fmt.Errorf("shp: no vectors to partition")
	}
	opts.defaults()
	for qi, q := range queries {
		for _, id := range q {
			if int(id) >= numVectors {
				return nil, fmt.Errorf("shp: query %d references vector %d outside table of %d", qi, id, numVectors)
			}
		}
	}

	if opts.InitialOrder != nil {
		if err := validateOrder(opts.InitialOrder, numVectors); err != nil {
			return nil, err
		}
	}

	p := &partitioner{
		n:       numVectors,
		queries: queries,
		opts:    opts,
	}
	order := p.run()

	res := &Result{Order: order, Levels: p.levels}
	// Fanout measured against the training hypergraph. The baseline is the
	// placement the run started from: identity for a cold start, the
	// warm-start order for an incremental run — so InitialFanout-FinalFanout
	// is directly the predicted gain of migrating to the new layout.
	before := opts.InitialOrder
	if before == nil {
		before = identityOrder(numVectors)
	}
	res.InitialFanout = averageFanout(before, queries, opts.BlockVectors)
	res.FinalFanout = averageFanout(order, queries, opts.BlockVectors)
	return res, nil
}

// Repartition incrementally re-partitions an existing placement against a
// fresh set of queries: the run is warm-started from prev (see
// Options.InitialOrder), making it the entry point for online background
// re-layout, where the workload has drifted but the current layout is still
// a far better seed than a random split.
func Repartition(prev []uint32, queries [][]uint32, opts Options) (*Result, error) {
	opts.InitialOrder = prev
	return Partition(len(prev), queries, opts)
}

// validateOrder checks that order is a permutation of [0, n).
func validateOrder(order []uint32, n int) error {
	if len(order) != n {
		return fmt.Errorf("shp: initial order covers %d vectors, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, id := range order {
		if int(id) >= n || seen[id] {
			return fmt.Errorf("shp: initial order is not a permutation (vector %d)", id)
		}
		seen[id] = true
	}
	return nil
}

func identityOrder(n int) []uint32 {
	o := make([]uint32, n)
	for i := range o {
		o[i] = uint32(i)
	}
	return o
}

// averageFanout computes the mean number of distinct blocks per query for a
// given placement order.
func averageFanout(order []uint32, queries [][]uint32, blockVectors int) float64 {
	if len(queries) == 0 {
		return 0
	}
	pos := make([]uint32, len(order))
	for p, id := range order {
		pos[id] = uint32(p)
	}
	var total int64
	seen := make(map[uint32]struct{}, 64)
	for _, q := range queries {
		for k := range seen {
			delete(seen, k)
		}
		for _, id := range q {
			seen[pos[id]/uint32(blockVectors)] = struct{}{}
		}
		total += int64(len(seen))
	}
	return float64(total) / float64(len(queries))
}

// partitioner holds the shared state of one run.
type partitioner struct {
	n       int
	queries [][]uint32
	opts    Options
	levels  int
}

// bucket is a contiguous range of the working order slice under refinement.
type bucket struct {
	vertices []uint32 // vector IDs in this bucket (mutated in place)
	queries  [][]uint32
	depth    int
}

func (p *partitioner) run() []uint32 {
	var all []uint32
	if p.opts.InitialOrder != nil {
		// Warm start: begin from the existing placement so refinement is
		// incremental (the swap iterations only move vectors whose
		// co-access changed).
		all = make([]uint32, p.n)
		copy(all, p.opts.InitialOrder)
	} else {
		// Start with all vectors in one bucket. Vectors that appear in
		// queries come first (they carry signal); untouched vectors are
		// appended at the end so they fill whatever blocks remain — the
		// paper notes SHP places rarely-accessed vectors arbitrarily.
		appears := make([]bool, p.n)
		for _, q := range p.queries {
			for _, id := range q {
				appears[id] = true
			}
		}
		touched := make([]uint32, 0, p.n)
		untouched := make([]uint32, 0)
		for id := 0; id < p.n; id++ {
			if appears[id] {
				touched = append(touched, uint32(id))
			} else {
				untouched = append(untouched, uint32(id))
			}
		}
		all = append(touched, untouched...)
	}

	root := &bucket{vertices: all, queries: p.queries, depth: 0}
	var wg sync.WaitGroup
	sem := make(chan struct{}, p.opts.Workers)
	var maxDepth int
	var mu sync.Mutex

	var recurse func(b *bucket)
	recurse = func(b *bucket) {
		mu.Lock()
		if b.depth > maxDepth {
			maxDepth = b.depth
		}
		mu.Unlock()
		if len(b.vertices) <= p.opts.BlockVectors {
			return
		}
		left, right := p.bisect(b)
		// Refine children concurrently when workers are available.
		wg.Add(1)
		select {
		case sem <- struct{}{}:
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				recurse(left)
			}()
		default:
			recurse(left)
			wg.Done()
		}
		recurse(right)
	}
	recurse(root)
	wg.Wait()
	p.levels = maxDepth + 1
	return root.vertices
}

// bisect splits a bucket's vertices (in place) into two balanced halves with
// minimised fanout, and returns child buckets that alias the two halves.
func (p *partitioner) bisect(b *bucket) (*bucket, *bucket) {
	n := len(b.vertices)
	half := n / 2

	// Local indexing: vertex -> local position. side[i] is 0 (left) or 1.
	localOf := make(map[uint32]int32, n)
	for i, v := range b.vertices {
		localOf[v] = int32(i)
	}

	// Initial split. A warm-started run preserves the incoming arrangement
	// (the first half of the existing order goes left), so the previous
	// layout's block grouping is the seed at every level and refinement
	// perturbs it only where the new queries disagree. A cold start orders
	// vertices by the first query (hyperedge) they appear in, so that
	// vertices co-accessed by the same queries start on the same side. The
	// swap refinement below polishes either seed.
	side := make([]uint8, n)
	if p.opts.InitialOrder != nil {
		for i := half; i < n; i++ {
			side[i] = 1
		}
	} else {
		firstSeen := make([]int32, n)
		for i := range firstSeen {
			firstSeen[i] = int32(len(b.queries)) + int32(i%2) // unseen vertices alternate sides
		}
		for qi, q := range b.queries {
			for _, id := range q {
				if li, ok := localOf[id]; ok && firstSeen[li] >= int32(len(b.queries)) {
					firstSeen[li] = int32(qi)
				}
			}
		}
		byFirst := make([]int32, n)
		for i := range byFirst {
			byFirst[i] = int32(i)
		}
		sort.SliceStable(byFirst, func(a, b int) bool { return firstSeen[byFirst[a]] < firstSeen[byFirst[b]] })
		for rank, li := range byFirst {
			if rank >= half {
				side[li] = 1
			}
		}
	}

	// Restrict queries to this bucket's vertices (in local indices); drop
	// queries with fewer than 2 local members, they cannot affect fanout.
	local := make([][]int32, 0, len(b.queries))
	for _, q := range b.queries {
		var lq []int32
		for _, id := range q {
			if li, ok := localOf[id]; ok {
				lq = append(lq, li)
			}
		}
		if len(lq) >= 2 {
			local = append(local, lq)
		}
	}

	// Refinement uses the Social Hash Partitioner's smoothed move gain: for
	// a query with cntSame co-located vertices (including v) and cntOther
	// vertices on the far side, moving v is worth
	//
	//	p^(cntSame-1) - p^cntOther        (p = 0.5)
	//
	// which reduces to the exact fanout delta when the counts are 0/1 but,
	// unlike the exact delta, still provides a gradient when queries span
	// both sides — exactly the situation at the top bisection levels.
	const moveP = 0.5
	pow := make([]float64, 64)
	pow[0] = 1
	for i := 1; i < len(pow); i++ {
		pow[i] = pow[i-1] * moveP
	}
	powAt := func(k int32) float64 {
		if int(k) >= len(pow) {
			return 0
		}
		return pow[k]
	}

	gain := make([]float64, n)
	for iter := 0; iter < p.opts.Iterations; iter++ {
		for i := range gain {
			gain[i] = 0
		}
		// Accumulate per-vertex move gains from each query.
		for _, q := range local {
			var cnt0, cnt1 int32
			for _, li := range q {
				if side[li] == 0 {
					cnt0++
				} else {
					cnt1++
				}
			}
			for _, li := range q {
				if side[li] == 0 {
					gain[li] += powAt(cnt0-1) - powAt(cnt1)
				} else {
					gain[li] += powAt(cnt1-1) - powAt(cnt0)
				}
			}
		}
		// Candidate lists sorted by descending gain.
		var cand0, cand1 []int32
		for i := 0; i < n; i++ {
			if side[i] == 0 {
				cand0 = append(cand0, int32(i))
			} else {
				cand1 = append(cand1, int32(i))
			}
		}
		sort.Slice(cand0, func(a, b int) bool { return gain[cand0[a]] > gain[cand0[b]] })
		sort.Slice(cand1, func(a, b int) bool { return gain[cand1[a]] > gain[cand1[b]] })

		maxSwaps := int(p.opts.MaxSwapFraction * float64(half))
		if maxSwaps < 1 {
			maxSwaps = 1
		}
		swaps := 0
		for k := 0; k < len(cand0) && k < len(cand1) && swaps < maxSwaps; k++ {
			a, bb := cand0[k], cand1[k]
			if gain[a]+gain[bb] <= 1e-12 {
				break
			}
			side[a], side[bb] = 1, 0
			swaps++
		}
		if swaps == 0 {
			break
		}
	}

	// Rearrange the vertices slice in place: side-0 vertices first.
	left := make([]uint32, 0, half)
	right := make([]uint32, 0, n-half)
	for i, v := range b.vertices {
		if side[i] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	copy(b.vertices[:len(left)], left)
	copy(b.vertices[len(left):], right)

	lb := &bucket{vertices: b.vertices[:len(left)], queries: projectQueries(b.queries, side, localOf, 0), depth: b.depth + 1}
	rb := &bucket{vertices: b.vertices[len(left):], queries: projectQueries(b.queries, side, localOf, 1), depth: b.depth + 1}
	return lb, rb
}

// projectQueries restricts queries to the vertices assigned to the given
// side, dropping queries that end up with fewer than two members.
func projectQueries(queries [][]uint32, side []uint8, localOf map[uint32]int32, want uint8) [][]uint32 {
	out := make([][]uint32, 0, len(queries)/2)
	for _, q := range queries {
		var pq []uint32
		for _, id := range q {
			li, ok := localOf[id]
			if !ok {
				continue
			}
			if side[li] == want {
				pq = append(pq, id)
			}
		}
		if len(pq) >= 2 {
			out = append(out, pq)
		}
	}
	return out
}
