package shp

import (
	"testing"
)

func orderIsPermutation(t *testing.T, order []uint32, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("order has %d entries, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, id := range order {
		if int(id) >= n || seen[id] {
			t.Fatalf("order is not a permutation at %d", id)
		}
		seen[id] = true
	}
}

func TestRepartitionWarmStartKeepsGoodLayout(t *testing.T) {
	const n, block = 2048, 32
	queries := communityQueries(n, block, 600, 8, 1)
	cold, err := Partition(n, queries, Options{BlockVectors: block, Iterations: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Re-partitioning the already-good layout against the same queries must
	// not regress it, even with very few refinement iterations.
	warm, err := Repartition(cold.Order, queries, Options{BlockVectors: block, Iterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	orderIsPermutation(t, warm.Order, n)
	if warm.InitialFanout != cold.FinalFanout {
		t.Fatalf("warm InitialFanout %.3f should measure the previous layout (%.3f)",
			warm.InitialFanout, cold.FinalFanout)
	}
	if warm.FinalFanout > warm.InitialFanout*1.02 {
		t.Fatalf("warm restart regressed fanout: %.3f -> %.3f", warm.InitialFanout, warm.FinalFanout)
	}
}

func TestRepartitionAdaptsToDriftedQueries(t *testing.T) {
	const n, block = 2048, 32
	oldQueries := communityQueries(n, block, 600, 8, 1)
	newQueries := communityQueries(n, block, 600, 8, 99) // different community structure

	cold, err := Partition(n, oldQueries, Options{BlockVectors: block, Iterations: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Repartition(cold.Order, newQueries, Options{BlockVectors: block, Iterations: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	orderIsPermutation(t, warm.Order, n)
	if warm.FinalFanout >= warm.InitialFanout {
		t.Fatalf("repartition on drifted queries did not improve fanout: %.3f -> %.3f",
			warm.InitialFanout, warm.FinalFanout)
	}
}

func TestRepartitionRejectsBadOrder(t *testing.T) {
	queries := [][]uint32{{0, 1}}
	if _, err := Repartition([]uint32{0, 0, 1}, queries, Options{}); err == nil {
		t.Fatal("duplicate entries accepted")
	}
	if _, err := Repartition([]uint32{0, 5}, queries, Options{}); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
}
