package shp

import (
	"math/rand"
	"testing"

	"bandana/internal/trace"
)

// communityQueries builds a synthetic hypergraph where each query draws its
// lookups from a single community of vectors, with communities scattered
// across the ID space. A good partitioner should co-locate each community.
func communityQueries(numVectors, communitySize, numQueries, lookupsPerQuery int, seed int64) [][]uint32 {
	rng := rand.New(rand.NewSource(seed))
	numCommunities := numVectors / communitySize
	// Scatter: communityOf[id] via random permutation.
	perm := rng.Perm(numVectors)
	members := make([][]uint32, numCommunities)
	for i, v := range perm {
		c := i / communitySize
		if c >= numCommunities {
			c = numCommunities - 1
		}
		members[c] = append(members[c], uint32(v))
	}
	queries := make([][]uint32, numQueries)
	for q := range queries {
		c := rng.Intn(numCommunities)
		qs := make([]uint32, 0, lookupsPerQuery)
		seen := map[uint32]bool{}
		for len(qs) < lookupsPerQuery {
			id := members[c][rng.Intn(len(members[c]))]
			if !seen[id] {
				seen[id] = true
				qs = append(qs, id)
			}
		}
		queries[q] = qs
	}
	return queries
}

func TestPartitionProducesValidPermutation(t *testing.T) {
	queries := communityQueries(2048, 32, 500, 8, 1)
	res, err := Partition(2048, queries, Options{BlockVectors: 32, Iterations: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 2048 {
		t.Fatalf("order length %d", len(res.Order))
	}
	seen := make([]bool, 2048)
	for _, id := range res.Order {
		if seen[id] {
			t.Fatalf("duplicate id %d in order", id)
		}
		seen[id] = true
	}
	if res.Levels < 5 {
		t.Fatalf("expected several bisection levels, got %d", res.Levels)
	}
}

func TestPartitionReducesFanout(t *testing.T) {
	queries := communityQueries(4096, 32, 2000, 10, 2)
	res, err := Partition(4096, queries, Options{BlockVectors: 32, Iterations: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalFanout >= res.InitialFanout {
		t.Fatalf("fanout did not improve: initial %.2f final %.2f", res.InitialFanout, res.FinalFanout)
	}
	// With perfectly community-structured queries, the final fanout should
	// approach the ideal of ~ lookups/blockVectors per query (close to 1-2
	// blocks), far below the random-placement fanout (~10 blocks for 10
	// lookups).
	if res.FinalFanout > res.InitialFanout*0.6 {
		t.Fatalf("expected at least 40%% fanout reduction, got %.2f -> %.2f",
			res.InitialFanout, res.FinalFanout)
	}
}

func TestPartitionImprovesWithIterations(t *testing.T) {
	queries := communityQueries(2048, 32, 1000, 8, 5)
	none, err := Partition(2048, queries, Options{BlockVectors: 32, Iterations: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Partition(2048, queries, Options{BlockVectors: 32, Iterations: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if many.FinalFanout > none.FinalFanout+0.3 {
		t.Fatalf("more iterations should not be clearly worse: 1 iter %.2f, 16 iter %.2f",
			none.FinalFanout, many.FinalFanout)
	}
}

func TestPartitionHandlesUntouchedVectors(t *testing.T) {
	// Only the first 100 vectors appear in queries; the rest must still be
	// placed exactly once.
	queries := make([][]uint32, 50)
	rng := rand.New(rand.NewSource(9))
	for i := range queries {
		q := make([]uint32, 5)
		for j := range q {
			q[j] = uint32(rng.Intn(100))
		}
		queries[i] = q
	}
	res, err := Partition(1000, queries, Options{BlockVectors: 32, Iterations: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 1000)
	for _, id := range res.Order {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("vector %d missing from order", id)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(0, nil, Options{}); err == nil {
		t.Fatal("zero vectors should error")
	}
	if _, err := Partition(10, [][]uint32{{1, 20}}, Options{}); err == nil {
		t.Fatal("out-of-range query should error")
	}
}

func TestPartitionSmallTableSingleBlock(t *testing.T) {
	res, err := Partition(16, [][]uint32{{1, 2}, {3, 4}}, Options{BlockVectors: 32, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 16 {
		t.Fatalf("order length %d", len(res.Order))
	}
	if res.FinalFanout != 1 {
		t.Fatalf("single block fanout should be 1, got %.2f", res.FinalFanout)
	}
}

func TestPartitionDeterministicInSeed(t *testing.T) {
	queries := communityQueries(1024, 32, 300, 6, 4)
	a, _ := Partition(1024, queries, Options{BlockVectors: 32, Iterations: 6, Seed: 11})
	b, _ := Partition(1024, queries, Options{BlockVectors: 32, Iterations: 6, Seed: 11})
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("order differs at %d", i)
		}
	}
}

func TestPartitionOnGeneratedTrace(t *testing.T) {
	// End-to-end against the workload generator: SHP must substantially
	// reduce fanout for a high-locality profile.
	p := trace.Profile{
		Name: "t", NumVectors: 8192, AvgLookups: 20,
		CompulsoryMissFrac: 0.05, Locality: 0.95, CommunitySize: 64, ReuseSkew: 3, Seed: 3,
	}
	tr := trace.GenerateTable(p, 2000)
	queries := make([][]uint32, len(tr.Queries))
	for i, q := range tr.Queries {
		queries[i] = q
	}
	res, err := Partition(p.NumVectors, queries, Options{BlockVectors: 32, Iterations: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalFanout > res.InitialFanout*0.75 {
		t.Fatalf("SHP should cut fanout by at least 25%% on a high-locality trace: %.2f -> %.2f",
			res.InitialFanout, res.FinalFanout)
	}
}

func TestAverageFanoutEmptyQueries(t *testing.T) {
	if f := averageFanout(identityOrder(10), nil, 4); f != 0 {
		t.Fatalf("fanout of empty query set should be 0, got %g", f)
	}
}

func BenchmarkPartition8k(b *testing.B) {
	queries := communityQueries(8192, 32, 2000, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Partition(8192, queries, Options{BlockVectors: 32, Iterations: 8, Seed: 1})
	}
}
