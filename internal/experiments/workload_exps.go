package experiments

import (
	"fmt"

	"bandana/internal/mrc"
	"bandana/internal/trace"
)

// runTable1 reproduces Table 1: per-table vector counts, average lookups per
// request, share of total lookups, and compulsory miss ratio, measured on
// the synthetic workload.
func (r *Runner) runTable1() (*Table, error) {
	w := r.env.Workload()
	shares := w.LookupShares()
	t := &Table{
		Columns: []string{"table", "vectors", "avg request lookups", "% of total lookups", "compulsory misses"},
		Notes:   fmt.Sprintf("synthetic workload at scale %.4g of the paper's 10-20M-vector tables", r.opts.Scale),
	}
	for i, tr := range w.Traces {
		s := tr.Stats()
		t.AddRow(
			itoa(i+1),
			itoa(s.NumVectors),
			f2(s.AvgLookups),
			fmt.Sprintf("%.2f%%", shares[i]*100),
			fmt.Sprintf("%.2f%%", s.CompulsoryMissFrac*100),
		)
	}
	return t, nil
}

// runFig3 reproduces Figure 3: hit-rate curves of the four tables with the
// most lookups, computed from exact stack distances.
func (r *Runner) runFig3() (*Table, error) {
	w := r.env.Workload()
	top := w.TopTablesByLookups(4)
	// Sample the curve at cache sizes expressed as a fraction of the table.
	fracs := []float64{0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50}
	cols := []string{"cache size (% of table)"}
	for _, ti := range top {
		cols = append(cols, fmt.Sprintf("table %d hit rate", ti+1))
	}
	t := &Table{Columns: cols, Notes: "hit rates from exact Mattson stack distances over the full trace"}

	curves := make([]*mrc.HRC, len(top))
	for k, ti := range top {
		flat := flatten(w.Traces[ti].Queries)
		curves[k] = mrc.StackDistances(flat).HitRateCurve()
	}
	for _, f := range fracs {
		row := []string{fmt.Sprintf("%.1f%%", f*100)}
		for k, ti := range top {
			size := int(f * float64(w.Traces[ti].NumVectors))
			row = append(row, fmt.Sprintf("%.3f", curves[k].HitRate(size)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// runFig4 reproduces Figure 4: access histograms (how many vectors were read
// a given number of times) for the four busiest tables.
func (r *Runner) runFig4() (*Table, error) {
	w := r.env.Workload()
	top := w.TopTablesByLookups(4)
	const bins = 8
	cols := []string{"table", "max accesses"}
	for b := 0; b < bins; b++ {
		cols = append(cols, fmt.Sprintf("bin%d vectors", b+1))
	}
	t := &Table{
		Columns: cols,
		Notes:   "bins split [1, max accesses] into 8 equal-width ranges; counts are numbers of vectors (log-scale in the paper's plot)",
	}
	for _, ti := range top {
		hist := w.Traces[ti].AccessHistogram(bins)
		row := []string{itoa(ti + 1)}
		if len(hist) == 0 {
			continue
		}
		row = append(row, itoa(int(hist[len(hist)-1].Hi-1)))
		for _, b := range hist {
			row = append(row, itoa(b.NumVectors))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func flatten(queries []trace.Query) []uint32 {
	var out []uint32
	for _, q := range queries {
		out = append(out, q...)
	}
	return out
}
