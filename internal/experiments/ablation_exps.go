package experiments

import (
	"fmt"
	"time"

	"bandana/internal/cache"
	"bandana/internal/layout"
	"bandana/internal/mrc"
	"bandana/internal/shp"
	"bandana/internal/sim"
)

// runAblationSHP quantifies how much SHP's swap-refinement iterations matter:
// the same bisection run with 1, 4 and 16 iterations per level.
func (r *Runner) runAblationSHP() (*Table, error) {
	ti := fig2Table
	train := r.env.Train(ti)
	eval := r.env.Eval(ti)
	queries := make([][]uint32, len(train.Queries))
	for i, q := range train.Queries {
		queries[i] = q
	}
	iters := []int{1, 4, 16}
	if r.opts.Quick {
		iters = []int{1, 4}
	}
	t := &Table{
		Columns: []string{"refinement iterations", "training fanout", "eval eff. BW increase", "runtime"},
		Notes:   "table 2; fanout is the average number of blocks per training query (lower is better)",
	}
	for _, it := range iters {
		start := time.Now()
		res, err := shp.Partition(train.NumVectors, queries, shp.Options{
			BlockVectors: blockVectors,
			Iterations:   it,
			Seed:         r.opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		dur := time.Since(start)
		l, err := layout.FromOrder(res.Order, blockVectors)
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(it), f2(res.FinalFanout), pct(sim.FanoutGain(eval, l)), dur.Round(time.Millisecond).String())
	}
	return t, nil
}

// runAblationAdmission compares the whole admission-policy family at one
// cache size on table 2 with the SHP layout: no prefetch, admit-all (MRU and
// mid-queue), shadow-cache admission, shadow-driven position, and the tuned
// access-count threshold Bandana uses.
func (r *Runner) runAblationAdmission() (*Table, error) {
	ti := fig2Table
	eval := r.env.Eval(ti)
	shpL, err := r.env.SHPLayout(ti, blockVectors)
	if err != nil {
		return nil, err
	}
	counts := r.env.Counts(ti)
	sizes := r.env.cacheSizes(ti)
	size := sizes[len(sizes)/2]

	choice, err := sim.TuneThreshold(eval, sim.TunerConfig{
		Layout: shpL, Counts: counts, CacheVectors: size, SamplingRate: 0.25,
	})
	if err != nil {
		return nil, err
	}

	policies := []cache.AdmissionPolicy{
		cache.NoPrefetch{},
		cache.AlwaysAdmit{},
		cache.AlwaysAdmit{Position: 0.7},
		cache.NewShadowAdmit(size*3/2, 0),
		cache.NewShadowPosition(size*3/2, 0.7),
		cache.ThresholdAdmit{Counts: counts, Threshold: choice.Threshold},
	}
	labels := []string{
		"no prefetch (baseline)",
		"admit all @ MRU",
		"admit all @ pos 0.7",
		"shadow admission",
		"shadow-driven position",
		fmt.Sprintf("access threshold (t=%d, tuned)", choice.Threshold),
	}
	baseline := sim.ReplayBaseline(eval, shpL, size, nil)
	t := &Table{
		Columns: []string{"policy", "hit rate", "block reads", "eff. BW increase"},
		Notes:   fmt.Sprintf("table 2, SHP layout, cache of %d vectors", size),
	}
	for i, p := range policies {
		res := sim.Replay(eval, sim.Config{Layout: shpL, CacheVectors: size, Policy: p})
		t.AddRow(labels[i], fmt.Sprintf("%.3f", res.HitRate), itoa(int(res.BlockReads)),
			pct(sim.EffectiveBandwidthIncrease(res, baseline)))
	}
	return t, nil
}

// runAblationMRC compares exact Mattson stack distances with SHARDS-style
// sampled ones: accuracy of the resulting hit-rate curve and runtime.
func (r *Runner) runAblationMRC() (*Table, error) {
	ti := fig2Table
	flat := flatten(r.env.Train(ti).Queries)
	numVectors := r.env.Workload().Traces[ti].NumVectors

	start := time.Now()
	exact := mrc.StackDistances(flat).HitRateCurve()
	exactDur := time.Since(start)

	rates := []float64{0.1, 0.01}
	sizes := []int{numVectors / 100, numVectors / 20, numVectors / 5}

	t := &Table{
		Columns: []string{"method", "runtime", "hit rate @1%", "hit rate @5%", "hit rate @20%"},
		Notes:   "table 2 training trace; sampled curves should track the exact curve at a fraction of the cost",
	}
	t.AddRow("exact", exactDur.Round(time.Millisecond).String(),
		fmt.Sprintf("%.3f", exact.HitRate(sizes[0])),
		fmt.Sprintf("%.3f", exact.HitRate(sizes[1])),
		fmt.Sprintf("%.3f", exact.HitRate(sizes[2])))
	for _, rate := range rates {
		start := time.Now()
		sampled := mrc.SampledStackDistances(flat, rate).HitRateCurve()
		dur := time.Since(start)
		t.AddRow(fmt.Sprintf("sampled %.0f%%", rate*100), dur.Round(time.Millisecond).String(),
			fmt.Sprintf("%.3f", sampled.HitRate(sizes[0])),
			fmt.Sprintf("%.3f", sampled.HitRate(sizes[1])),
			fmt.Sprintf("%.3f", sampled.HitRate(sizes[2])))
	}
	return t, nil
}
