package experiments

import (
	"fmt"
	"sync"
	"time"

	"bandana/internal/layout"
	"bandana/internal/shp"
	"bandana/internal/table"
	"bandana/internal/trace"
)

// env holds lazily-built state shared across experiments: the synthetic
// workload calibrated to Table 1, the train/eval split, and per-table SHP
// partitionings (which are the most expensive artefacts).
type env struct {
	opts Options

	mu sync.Mutex

	workload *trace.Workload
	train    []*trace.Trace
	eval     []*trace.Trace

	shpOrders    [][]uint32
	shpResults   []*shp.Result
	shpDurations []time.Duration

	counts [][]uint32

	embTables []*table.Table
}

func newEnv(opts Options) *env {
	return &env{opts: opts}
}

// blockVectors is the number of 128 B vectors per 4 KB block.
const blockVectors = 32

// Workload builds (once) the 8-table synthetic workload, split into a
// training prefix and an evaluation suffix.
func (e *env) Workload() *trace.Workload {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.workloadLocked()
}

func (e *env) workloadLocked() *trace.Workload {
	if e.workload != nil {
		return e.workload
	}
	profiles := trace.DefaultProfiles(e.opts.Scale)
	for i := range profiles {
		profiles[i].Seed += e.opts.Seed * 100
	}
	total := e.opts.TrainRequests + e.opts.EvalRequests
	e.workload = trace.GenerateWorkload(profiles, total)
	n := len(e.workload.Traces)
	e.train = make([]*trace.Trace, n)
	e.eval = make([]*trace.Trace, n)
	for i, tr := range e.workload.Traces {
		e.train[i] = tr.Prefix(e.opts.TrainRequests)
		e.eval[i] = &trace.Trace{
			TableName:  tr.TableName,
			NumVectors: tr.NumVectors,
			Queries:    tr.Queries[e.opts.TrainRequests:],
		}
	}
	e.shpOrders = make([][]uint32, n)
	e.shpResults = make([]*shp.Result, n)
	e.shpDurations = make([]time.Duration, n)
	e.counts = make([][]uint32, n)
	e.embTables = make([]*table.Table, n)
	return e.workload
}

// NumTables returns the number of tables in the workload.
func (e *env) NumTables() int { return len(e.Workload().Traces) }

// Profile returns the i-th table's profile.
func (e *env) Profile(i int) trace.Profile { return e.Workload().Profiles[i] }

// Train returns the training trace of table i.
func (e *env) Train(i int) *trace.Trace {
	e.Workload()
	return e.train[i]
}

// Eval returns the evaluation trace of table i.
func (e *env) Eval(i int) *trace.Trace {
	e.Workload()
	return e.eval[i]
}

// Counts returns the per-vector training access counts of table i.
func (e *env) Counts(i int) []uint32 {
	e.Workload()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.counts[i] == nil {
		e.counts[i] = e.train[i].AccessCounts()
	}
	return e.counts[i]
}

// shpOrder computes (once) the SHP placement order of table i trained on a
// prefix of the training trace; prefixQueries <= 0 means the full training
// trace. Only the full-training order is cached.
func (e *env) shpOrder(i, prefixQueries int) ([]uint32, *shp.Result, time.Duration, error) {
	e.Workload()
	full := prefixQueries <= 0 || prefixQueries >= len(e.train[i].Queries)
	if full {
		e.mu.Lock()
		if e.shpOrders[i] != nil {
			order, res, dur := e.shpOrders[i], e.shpResults[i], e.shpDurations[i]
			e.mu.Unlock()
			return order, res, dur, nil
		}
		e.mu.Unlock()
	}
	tr := e.train[i]
	if !full {
		tr = tr.Prefix(prefixQueries)
	}
	queries := make([][]uint32, len(tr.Queries))
	for qi, q := range tr.Queries {
		queries[qi] = q
	}
	start := time.Now()
	res, err := shp.Partition(tr.NumVectors, queries, shp.Options{
		BlockVectors: blockVectors,
		Iterations:   e.opts.SHPIterations,
		Seed:         e.opts.Seed + int64(i),
	})
	if err != nil {
		return nil, nil, 0, fmt.Errorf("SHP on table %d: %w", i+1, err)
	}
	dur := time.Since(start)
	if full {
		e.mu.Lock()
		e.shpOrders[i] = res.Order
		e.shpResults[i] = res
		e.shpDurations[i] = dur
		e.mu.Unlock()
	}
	return res.Order, res, dur, nil
}

// SHPLayout returns the SHP-trained layout of table i (full training trace),
// chunked into blocks of bv vectors.
func (e *env) SHPLayout(i, bv int) (*layout.Layout, error) {
	order, _, _, err := e.shpOrder(i, 0)
	if err != nil {
		return nil, err
	}
	return layout.FromOrder(order, bv)
}

// SHPDuration returns how long the full SHP training of table i took
// (training it first if needed).
func (e *env) SHPDuration(i int) (time.Duration, error) {
	_, _, dur, err := e.shpOrder(i, 0)
	return dur, err
}

// SHPResult returns the SHP result (fanout before/after) of table i.
func (e *env) SHPResult(i int) (*shp.Result, error) {
	_, res, _, err := e.shpOrder(i, 0)
	return res, err
}

// Identity returns the identity ("original table") layout of table i.
func (e *env) Identity(i, bv int) *layout.Layout {
	return layout.Identity(e.Workload().Traces[i].NumVectors, bv)
}

// embDim is the dimensionality of the synthetic embedding tables used by the
// K-means experiments. It is smaller than the production 64 to keep flat
// K-means sweeps tractable at experiment scale; the runtime/quality trends
// are unaffected.
const embDim = 16

// EmbTable generates (once) a synthetic embedding table for table i whose
// Gaussian-mixture components coincide with the workload's co-access
// communities, so that Euclidean proximity correlates with co-access the way
// the paper assumes for semantic partitioning.
func (e *env) EmbTable(i int) *table.Table {
	e.Workload()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.embTables[i] != nil {
		return e.embTables[i]
	}
	w := e.workload
	g := table.Generate(w.Profiles[i].Name, table.GenerateOptions{
		NumVectors:    w.Traces[i].NumVectors,
		Dim:           embDim,
		NumClusters:   maxCommunity(w.Communities[i]) + 1,
		ClusterSpread: 0.12,
		Seed:          e.opts.Seed + int64(i)*31,
		Assignments:   w.Communities[i],
	})
	e.embTables[i] = g.Table
	return g.Table
}

func maxCommunity(assign []int32) int {
	m := int32(0)
	for _, a := range assign {
		if a > m {
			m = a
		}
	}
	return int(m)
}

// cacheSizes returns the per-table cache sizes corresponding to the paper's
// 80 k / 120 k / 160 k / 200 k vectors on a 10 M-vector table (0.8% - 2.0%
// of the table), scaled to this run's table size.
func (e *env) cacheSizes(i int) []int {
	n := e.Workload().Traces[i].NumVectors
	fracs := []float64{0.008, 0.012, 0.016, 0.020}
	out := make([]int, len(fracs))
	for k, f := range fracs {
		s := int(f * float64(n) * 2) // x2: scaled traces reuse a smaller working set
		if s < 2*blockVectors {
			s = 2 * blockVectors
		}
		out[k] = s
	}
	return out
}

// totalCacheSizes returns the end-to-end total cache sweep corresponding to
// the paper's 1 M - 5 M vectors over ~110 M total vectors.
func (e *env) totalCacheSizes() []int {
	total := 0
	for _, tr := range e.Workload().Traces {
		total += tr.NumVectors
	}
	fracs := []float64{0.01, 0.02, 0.03, 0.04, 0.05}
	if e.opts.Quick {
		fracs = []float64{0.02, 0.04}
	}
	out := make([]int, len(fracs))
	for i, f := range fracs {
		s := int(f * float64(total))
		if s < len(e.Workload().Traces)*blockVectors {
			s = len(e.Workload().Traces) * blockVectors
		}
		out[i] = s
	}
	return out
}

// tableSubset returns the table indices a partitioning sweep runs on: a
// representative subset in Quick mode, otherwise the set used in the
// reference run.
func (e *env) kmeansTables() []int {
	if e.opts.Quick {
		return []int{1} // table 2: the highest-traffic table
	}
	return []int{0, 1, 7} // tables 1, 2 (high locality) and 8 (low locality)
}
