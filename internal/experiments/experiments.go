// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated substrates in this repository.
//
// Each experiment is a named runner that produces a Table: the same rows or
// series the paper reports, at a configurable scale. The cmd/bandana CLI
// prints them; bench_test.go wraps each one in a testing.B benchmark; and
// EXPERIMENTS.md records a reference run next to the paper's numbers.
//
// The experiments share a lazily-built Env (synthetic workload, SHP layouts,
// access counts) so that running the full suite does not repeat the
// expensive training steps.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Options configures the scale and determinism of the experiment suite.
type Options struct {
	// Scale multiplies the paper's table sizes (10-20 M vectors). The
	// default of 0.004 yields 40 k / 80 k-vector tables that run on a
	// laptop; ratios (cache fractions, block size, sampling rates) are kept
	// identical to the paper.
	Scale float64
	// TrainRequests is the number of requests used to train SHP and the
	// miniature caches.
	TrainRequests int
	// EvalRequests is the number of requests replayed to measure effective
	// bandwidth.
	EvalRequests int
	// SHPIterations is the number of refinement iterations per bisection
	// level.
	SHPIterations int
	// Seed drives all synthetic generation.
	Seed int64
	// Quick shrinks sweep ranges (fewer points, smaller cluster counts) so
	// that a full pass fits in a benchmark iteration.
	Quick bool
}

// DefaultOptions returns the options used for the reference run recorded in
// EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{
		Scale:         0.004,
		TrainRequests: 3000,
		EvalRequests:  1500,
		SHPIterations: 8,
		Seed:          1,
	}
}

// QuickOptions returns a reduced configuration for benchmarks and smoke
// tests.
func QuickOptions() Options {
	return Options{
		Scale:         0.001,
		TrainRequests: 600,
		EvalRequests:  300,
		SHPIterations: 4,
		Seed:          1,
		Quick:         true,
	}
}

func (o *Options) defaults() {
	if o.Scale <= 0 {
		o.Scale = 0.004
	}
	if o.TrainRequests <= 0 {
		o.TrainRequests = 3000
	}
	if o.EvalRequests <= 0 {
		o.EvalRequests = 1500
	}
	if o.SHPIterations <= 0 {
		o.SHPIterations = 8
	}
}

// Table is the formatted result of one experiment.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
	// Elapsed is how long the experiment took to run.
	Elapsed time.Duration
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if len(t.Columns) == 0 {
		return
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Notes)
	}
	fmt.Fprintf(w, "  (elapsed: %s)\n\n", t.Elapsed.Round(time.Millisecond))
}

// Runner executes experiments against a shared environment.
type Runner struct {
	opts Options
	env  *env
}

// NewRunner creates a Runner.
func NewRunner(opts Options) *Runner {
	opts.defaults()
	return &Runner{opts: opts, env: newEnv(opts)}
}

// experimentFunc produces a result table.
type experimentFunc func(*Runner) (*Table, error)

// registry maps experiment IDs to runners, in presentation order.
var registry = []struct {
	id    string
	title string
	fn    experimentFunc
}{
	{"fig2", "NVM latency and bandwidth vs queue depth (4 KB random reads)", (*Runner).runFig2},
	{"table1", "Characterization of the user embedding tables", (*Runner).runTable1},
	{"fig3", "Hit rate curves of the top-4 embedding tables", (*Runner).runFig3},
	{"fig4", "Access histograms of the top-4 embedding tables", (*Runner).runFig4},
	{"fig5", "Latency vs application throughput: baseline vs 100% effective bandwidth", (*Runner).runFig5},
	{"fig6", "Effective bandwidth increase vs number of K-means clusters", (*Runner).runFig6},
	{"fig7", "Partitioner runtime: K-means, two-stage K-means, SHP", (*Runner).runFig7},
	{"fig8", "Effective bandwidth increase vs recursive K-means sub-clusters", (*Runner).runFig8},
	{"fig9", "Effective bandwidth increase per table using SHP (unlimited cache model)", (*Runner).runFig9},
	{"fig10", "Naive prefetch admission with a limited cache: partitioned vs original", (*Runner).runFig10},
	{"fig11", "Prefetch insertion position, shadow-cache admission, and their combination", (*Runner).runFig11},
	{"fig12", "Access-threshold admission for prefetched vectors", (*Runner).runFig12},
	{"table2", "Miniature-cache threshold selection vs sampling rate (table 2)", (*Runner).runTable2},
	{"fig13", "End-to-end effective bandwidth increase vs total cache size", (*Runner).runFig13},
	{"fig14", "End-to-end effective bandwidth increase vs miniature-cache sampling rate", (*Runner).runFig14},
	{"fig15", "End-to-end effective bandwidth increase vs SHP training set size", (*Runner).runFig15},
	{"fig16", "End-to-end effective bandwidth increase vs embedding vector size", (*Runner).runFig16},
	{"ablation-shp", "Ablation: SHP refinement iterations", (*Runner).runAblationSHP},
	{"ablation-admission", "Ablation: prefetch admission policy family", (*Runner).runAblationAdmission},
	{"ablation-mrc", "Ablation: exact vs sampled stack distance computation", (*Runner).runAblationMRC},
}

// IDs lists the available experiment IDs in presentation order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.id
	}
	return ids
}

// Titles maps experiment IDs to their one-line descriptions.
func Titles() map[string]string {
	m := make(map[string]string, len(registry))
	for _, e := range registry {
		m[e.id] = e.title
	}
	return m
}

// Run executes one experiment by ID.
func (r *Runner) Run(id string) (*Table, error) {
	for _, e := range registry {
		if e.id == id {
			start := time.Now()
			tbl, err := e.fn(r)
			if err != nil {
				return nil, fmt.Errorf("experiment %s: %w", id, err)
			}
			tbl.ID = e.id
			if tbl.Title == "" {
				tbl.Title = e.title
			}
			tbl.Elapsed = time.Since(start)
			return tbl, nil
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(known, ", "))
}

// RunAll executes every registered experiment in order.
func (r *Runner) RunAll() ([]*Table, error) {
	out := make([]*Table, 0, len(registry))
	for _, e := range registry {
		tbl, err := r.Run(e.id)
		if err != nil {
			return out, err
		}
		out = append(out, tbl)
	}
	return out, nil
}

// pct formats a ratio as a signed percentage.
func pct(x float64) string { return fmt.Sprintf("%+.1f%%", x*100) }

// f2 formats a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// f1 formats a float with one decimal.
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }

// i formats an int.
func itoa(x int) string { return fmt.Sprintf("%d", x) }
