package experiments

import (
	"fmt"
	"time"

	"bandana/internal/kmeans"
	"bandana/internal/layout"
	"bandana/internal/sim"
)

// kmeansClusterSweep returns the flat K-means cluster counts swept by
// Figures 6 and 7(a).
func (r *Runner) kmeansClusterSweep() []int {
	if r.opts.Quick {
		return []int{16, 64}
	}
	return []int{16, 64, 256}
}

// runKMeansLayout clusters table ti's embeddings into k flat clusters and
// returns the cluster-ordered layout plus the clustering runtime.
func (r *Runner) runKMeansLayout(ti, k int) (*layout.Layout, time.Duration, error) {
	tbl := r.env.EmbTable(ti)
	start := time.Now()
	res, err := kmeans.Cluster(kmeans.TableDataset{Table: tbl}, kmeans.Options{
		K:        k,
		MaxIters: 5,
		Seed:     r.opts.Seed + int64(ti)*17 + int64(k),
	})
	if err != nil {
		return nil, 0, err
	}
	dur := time.Since(start)
	order := kmeans.OrderByCluster(res.Assignments)
	l, err := layout.FromOrder(order, blockVectors)
	if err != nil {
		return nil, 0, err
	}
	return l, dur, nil
}

// runTwoStageLayout runs recursive (two-stage) K-means with the given total
// number of sub-clusters.
func (r *Runner) runTwoStageLayout(ti, totalSub int) (*layout.Layout, time.Duration, error) {
	tbl := r.env.EmbTable(ti)
	coarse := 64
	if r.opts.Quick {
		coarse = 16
	}
	start := time.Now()
	res, err := kmeans.TwoStage(kmeans.TableDataset{Table: tbl}, kmeans.TwoStageOptions{
		CoarseClusters:   coarse,
		TotalSubClusters: totalSub,
		MaxIters:         5,
		Seed:             r.opts.Seed + int64(ti)*23,
	})
	if err != nil {
		return nil, 0, err
	}
	dur := time.Since(start)
	order := kmeans.OrderByCluster(res.Assignments)
	l, err := layout.FromOrder(order, blockVectors)
	if err != nil {
		return nil, 0, err
	}
	return l, dur, nil
}

// runFig6 reproduces Figure 6: effective bandwidth increase (spatial-locality
// model, §4.2) when vectors are ordered by flat K-means cluster, as a
// function of the number of clusters, for a representative set of tables.
func (r *Runner) runFig6() (*Table, error) {
	tables := r.env.kmeansTables()
	sweep := r.kmeansClusterSweep()
	cols := []string{"clusters"}
	for _, ti := range tables {
		cols = append(cols, fmt.Sprintf("table %d", ti+1))
	}
	t := &Table{
		Columns: cols,
		Notes:   "effective bandwidth increase under the unlimited-cache (per-query fanout) model of §4.2; embeddings are synthetic Gaussian mixtures aligned with co-access communities",
	}
	for _, k := range sweep {
		row := []string{itoa(k)}
		for _, ti := range tables {
			l, _, err := r.runKMeansLayout(ti, k)
			if err != nil {
				return nil, err
			}
			gain := sim.FanoutGain(r.env.Eval(ti), l)
			row = append(row, pct(gain))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// runFig7 reproduces Figure 7: the runtime of (a) flat K-means as a function
// of the cluster count, (b) two-stage K-means as a function of the total
// sub-cluster count, and (c) SHP per embedding table.
func (r *Runner) runFig7() (*Table, error) {
	ti := r.env.kmeansTables()[len(r.env.kmeansTables())-1] // largest listed table
	if !r.opts.Quick {
		ti = 3 // table 4, as in the paper's Figure 7(a)/(b)
	}
	t := &Table{
		Columns: []string{"partitioner", "parameter", "runtime"},
		Notes:   "runtimes at experiment scale; the paper's absolute numbers are minutes at 10-20M vectors, the relative growth is what carries over",
	}
	for _, k := range r.kmeansClusterSweep() {
		_, dur, err := r.runKMeansLayout(ti, k)
		if err != nil {
			return nil, err
		}
		t.AddRow("flat K-means (a)", fmt.Sprintf("%d clusters", k), dur.Round(time.Millisecond).String())
	}
	subSweep := []int{256, 1024, 4096}
	if r.opts.Quick {
		subSweep = []int{128}
	}
	for _, sub := range subSweep {
		_, dur, err := r.runTwoStageLayout(ti, sub)
		if err != nil {
			return nil, err
		}
		t.AddRow("two-stage K-means (b)", fmt.Sprintf("%d sub-clusters", sub), dur.Round(time.Millisecond).String())
	}
	shpTables := r.env.NumTables()
	if r.opts.Quick {
		shpTables = 2
	}
	for i := 0; i < shpTables; i++ {
		dur, err := r.env.SHPDuration(i)
		if err != nil {
			return nil, err
		}
		t.AddRow("SHP (c)", fmt.Sprintf("table %d", i+1), dur.Round(time.Millisecond).String())
	}
	return t, nil
}

// runFig8 reproduces Figure 8: effective bandwidth increase when ordering
// with recursive (two-stage) K-means, as a function of the total number of
// sub-clusters.
func (r *Runner) runFig8() (*Table, error) {
	tables := r.env.kmeansTables()
	sweep := []int{256, 1024, 4096}
	if r.opts.Quick {
		sweep = []int{128, 512}
	}
	cols := []string{"sub-clusters"}
	for _, ti := range tables {
		cols = append(cols, fmt.Sprintf("table %d", ti+1))
	}
	t := &Table{
		Columns: cols,
		Notes:   "recursive K-means matches flat K-means' bandwidth at a fraction of the runtime (compare fig7)",
	}
	for _, sub := range sweep {
		row := []string{itoa(sub)}
		for _, ti := range tables {
			l, _, err := r.runTwoStageLayout(ti, sub)
			if err != nil {
				return nil, err
			}
			gain := sim.FanoutGain(r.env.Eval(ti), l)
			row = append(row, pct(gain))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// runFig9 reproduces Figure 9: per-table effective bandwidth increase with
// SHP ordering under the unlimited-cache model, as a function of the number
// of requests used to train SHP (the paper's 200 M / 1 B / 5 B become
// fractions of this run's training trace).
func (r *Runner) runFig9() (*Table, error) {
	fracs := []struct {
		label string
		frac  float64
	}{
		{"4% of training trace (~200M-equivalent)", 0.04},
		{"20% of training trace (~1B-equivalent)", 0.20},
		{"100% of training trace (~5B-equivalent)", 1.00},
	}
	if r.opts.Quick {
		fracs = fracs[1:]
	}
	cols := []string{"table", "identity layout"}
	for _, f := range fracs {
		cols = append(cols, f.label)
	}
	t := &Table{
		Columns: cols,
		Notes:   "effective bandwidth increase under the §4.2 unlimited-cache (per-query fanout) model; more training data -> better placement",
	}
	numTables := r.env.NumTables()
	if r.opts.Quick {
		numTables = 3
	}
	for ti := 0; ti < numTables; ti++ {
		eval := r.env.Eval(ti)
		idGain := sim.FanoutGain(eval, r.env.Identity(ti, blockVectors))
		row := []string{itoa(ti + 1), pct(idGain)}
		for _, f := range fracs {
			prefix := int(f.frac * float64(len(r.env.Train(ti).Queries)))
			order, _, _, err := r.env.shpOrder(ti, prefix)
			if err != nil {
				return nil, err
			}
			l, err := layout.FromOrder(order, blockVectors)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(sim.FanoutGain(eval, l)))
		}
		t.AddRow(row...)
	}
	return t, nil
}
