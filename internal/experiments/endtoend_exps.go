package experiments

import (
	"fmt"

	"bandana/internal/alloc"
	"bandana/internal/cache"
	"bandana/internal/layout"
	"bandana/internal/mrc"
	"bandana/internal/sim"
)

// hrcForAllocation builds the hit-rate curve of table i from its training
// trace (spatially sampled to keep it cheap).
func (r *Runner) hrcForAllocation(i int) *mrc.HRC {
	flat := flatten(r.env.Train(i).Queries)
	return mrc.SampledStackDistances(flat, 0.1).HitRateCurve()
}

// endToEndConfig parametrises one end-to-end evaluation pass.
type endToEndConfig struct {
	totalCache   int
	blockVectors int     // vectors per 4 KB block (32 for 128 B vectors)
	trainFrac    float64 // fraction of the training trace SHP sees (1.0 = all)
	sampling     float64 // miniature-cache sampling rate
	numTables    int     // evaluate only the first N tables (0 = all)
}

// endToEndGains runs the full Bandana pipeline — SHP placement, DRAM
// allocation across tables, miniature-cache threshold tuning — and returns
// the per-table effective bandwidth increase over the baseline policy
// (original layout, same per-table cache, no prefetching).
func (r *Runner) endToEndGains(cfg endToEndConfig) ([]float64, []int, error) {
	n := r.env.NumTables()
	if cfg.numTables > 0 && cfg.numTables < n {
		n = cfg.numTables
	}
	if cfg.blockVectors <= 0 {
		cfg.blockVectors = blockVectors
	}
	if cfg.sampling <= 0 {
		cfg.sampling = 0.1
	}

	// Phase 1: DRAM allocation across tables from their hit-rate curves.
	demands := make([]alloc.TableDemand, n)
	for i := 0; i < n; i++ {
		demands[i] = alloc.TableDemand{
			Name:       r.env.Profile(i).Name,
			HRC:        r.hrcForAllocation(i),
			MaxVectors: r.env.Workload().Traces[i].NumVectors,
			MinVectors: cfg.blockVectors,
		}
	}
	allocRes, err := alloc.Allocate(demands, alloc.Options{TotalVectors: cfg.totalCache})
	if err != nil {
		return nil, nil, err
	}

	// Phase 2: per-table layout, threshold tuning and measurement.
	gains := make([]float64, n)
	for i := 0; i < n; i++ {
		train := r.env.Train(i)
		eval := r.env.Eval(i)
		counts := r.env.Counts(i)
		cacheSize := allocRes.Vectors[i]
		if cacheSize < cfg.blockVectors {
			cacheSize = cfg.blockVectors
		}

		prefix := 0
		if cfg.trainFrac > 0 && cfg.trainFrac < 1 {
			prefix = int(cfg.trainFrac * float64(len(train.Queries)))
		}
		order, _, _, err := r.env.shpOrder(i, prefix)
		if err != nil {
			return nil, nil, err
		}
		shpL, err := layout.FromOrder(order, cfg.blockVectors)
		if err != nil {
			return nil, nil, err
		}
		idL := r.env.Identity(i, cfg.blockVectors)

		choice, err := sim.TuneThreshold(eval, sim.TunerConfig{
			Layout: shpL, Counts: counts, CacheVectors: cacheSize,
			SamplingRate: cfg.sampling,
		})
		if err != nil {
			return nil, nil, err
		}

		bandanaRes := sim.Replay(eval, sim.Config{
			Layout: shpL, CacheVectors: cacheSize,
			Policy: cache.ThresholdAdmit{Counts: counts, Threshold: choice.Threshold},
		})
		baseline := sim.ReplayBaseline(eval, idL, cacheSize, nil)
		gains[i] = sim.EffectiveBandwidthIncrease(bandanaRes, baseline)
	}
	return gains, allocRes.Vectors[:n], nil
}

// runFig13 reproduces Figure 13: per-table effective bandwidth increase as a
// function of the total DRAM cache size shared by all tables.
func (r *Runner) runFig13() (*Table, error) {
	sizes := r.env.totalCacheSizes()
	n := r.env.NumTables()
	if r.opts.Quick {
		n = 3
	}
	cols := []string{"total cache (vectors)"}
	for i := 0; i < n; i++ {
		cols = append(cols, fmt.Sprintf("table %d", i+1))
	}
	t := &Table{
		Columns: cols,
		Notes:   "full pipeline (SHP + DRAM allocation + tuned thresholds) vs baseline (original layout, same per-table cache, no prefetching)",
	}
	for _, total := range sizes {
		gains, _, err := r.endToEndGains(endToEndConfig{totalCache: total, numTables: n})
		if err != nil {
			return nil, err
		}
		row := []string{itoa(total)}
		for i := 0; i < n; i++ {
			row = append(row, pct(gains[i]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// defaultTotalCache returns the mid-point of the end-to-end cache sweep,
// used by Figures 14-16 (the paper uses 4 M vectors).
func (r *Runner) defaultTotalCache() int {
	sizes := r.env.totalCacheSizes()
	return sizes[len(sizes)/2]
}

// runFig14 reproduces Figure 14: per-table effective bandwidth increase when
// the admission threshold is tuned by miniature caches of different sampling
// rates, including the full-cache oracle.
func (r *Runner) runFig14() (*Table, error) {
	rates := []struct {
		label string
		rate  float64
	}{
		{"2% sampling", 0.02},
		{"10% sampling", 0.10},
		{"25% sampling", 0.25},
		{"full cache", 1.0},
	}
	if r.opts.Quick {
		rates = rates[1:3]
	}
	n := r.env.NumTables()
	if r.opts.Quick {
		n = 3
	}
	cols := []string{"table"}
	for _, rt := range rates {
		cols = append(cols, rt.label)
	}
	t := &Table{
		Columns: cols,
		Notes:   "the paper samples down to 0.1% at 10M-vector scale; sampling rates here are scaled to the smaller tables",
	}
	perRate := make([][]float64, len(rates))
	for k, rt := range rates {
		gains, _, err := r.endToEndGains(endToEndConfig{
			totalCache: r.defaultTotalCache(), sampling: rt.rate, numTables: n,
		})
		if err != nil {
			return nil, err
		}
		perRate[k] = gains
	}
	for i := 0; i < n; i++ {
		row := []string{itoa(i + 1)}
		for k := range rates {
			row = append(row, pct(perRate[k][i]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// runFig15 reproduces Figure 15: per-table effective bandwidth increase as a
// function of the number of requests used to train SHP.
func (r *Runner) runFig15() (*Table, error) {
	fracs := []struct {
		label string
		frac  float64
	}{
		{"4% of training trace (~200M-equivalent)", 0.04},
		{"20% of training trace (~1B-equivalent)", 0.20},
		{"100% of training trace (~5B-equivalent)", 1.00},
	}
	if r.opts.Quick {
		fracs = fracs[1:]
	}
	n := r.env.NumTables()
	if r.opts.Quick {
		n = 3
	}
	cols := []string{"table"}
	for _, f := range fracs {
		cols = append(cols, f.label)
	}
	t := &Table{
		Columns: cols,
		Notes:   "more SHP training data improves placement and therefore end-to-end effective bandwidth",
	}
	perFrac := make([][]float64, len(fracs))
	for k, f := range fracs {
		gains, _, err := r.endToEndGains(endToEndConfig{
			totalCache: r.defaultTotalCache(), trainFrac: f.frac, numTables: n,
		})
		if err != nil {
			return nil, err
		}
		perFrac[k] = gains
	}
	for i := 0; i < n; i++ {
		row := []string{itoa(i + 1)}
		for k := range fracs {
			row = append(row, pct(perFrac[k][i]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// runFig16 reproduces Figure 16: per-table effective bandwidth increase for
// embedding vector sizes of 64, 128 and 256 bytes. Smaller vectors mean more
// vectors per 4 KB block and therefore more prefetch opportunity.
func (r *Runner) runFig16() (*Table, error) {
	sizes := []struct {
		label string
		bv    int
	}{
		{"64 B vectors (64/block)", 64},
		{"128 B vectors (32/block)", 32},
		{"256 B vectors (16/block)", 16},
	}
	n := r.env.NumTables()
	if r.opts.Quick {
		n = 3
		sizes = sizes[1:]
	}
	cols := []string{"table"}
	for _, s := range sizes {
		cols = append(cols, s.label)
	}
	t := &Table{
		Columns: cols,
		Notes:   "the SHP order is hierarchical, so re-chunking it at 16/32/64 vectors per block preserves locality; cache size in vectors is held constant as in the paper",
	}
	perSize := make([][]float64, len(sizes))
	for k, s := range sizes {
		gains, _, err := r.endToEndGains(endToEndConfig{
			totalCache: r.defaultTotalCache(), blockVectors: s.bv, numTables: n,
		})
		if err != nil {
			return nil, err
		}
		perSize[k] = gains
	}
	for i := 0; i < n; i++ {
		row := []string{itoa(i + 1)}
		for k := range sizes {
			row = append(row, pct(perSize[k][i]))
		}
		t.AddRow(row...)
	}
	return t, nil
}
