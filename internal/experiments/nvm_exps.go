package experiments

import (
	"fmt"
	"math"

	"bandana/internal/nvm"
)

// runFig2 reproduces Figure 2: mean latency, P99 latency and bandwidth of
// 4 KB random reads at queue depths 1-8 (4 concurrent jobs), measured
// against the simulated device.
func (r *Runner) runFig2() (*Table, error) {
	device := nvm.NewDevice(nvm.DeviceConfig{NumBlocks: 4096, Seed: r.opts.Seed})
	defer device.Close()
	ops := 400
	if r.opts.Quick {
		ops = 100
	}
	rows := nvm.QueueDepthSweep(device, 4, []int{1, 2, 4, 8}, ops, r.opts.Seed)
	t := &Table{
		Columns: []string{"queue depth", "mean latency (us)", "p99 latency (us)", "bandwidth (GB/s)"},
		Notes:   "simulated 375 GB-class NVM block device; calibration points follow the paper's Fio measurements",
	}
	for _, row := range rows {
		t.AddRow(itoa(row.QueueDepth), f1(row.MeanLatencyUS), f1(row.P99LatencyUS), f2(row.BandwidthGBs))
	}
	return t, nil
}

// runFig5 reproduces Figure 5: mean and P99 device latency as a function of
// the application's useful-data throughput, for the baseline policy (128 B
// of every 4 KB block used, ~3% effective bandwidth) and for 100% effective
// 4 KB reads.
func (r *Runner) runFig5() (*Table, error) {
	model := nvm.NewPerformanceModel(nil)
	baselineFraction := 128.0 / float64(nvm.BlockSize)
	sweep := []float64{10, 25, 50, 70, 100, 250, 500, 1000, 1500, 2000, 2300}
	if r.opts.Quick {
		sweep = []float64{10, 50, 100, 1000, 2300}
	}
	base := nvm.ThroughputLatencyCurve(model, baselineFraction, sweep)
	full := nvm.ThroughputLatencyCurve(model, 1.0, sweep)

	t := &Table{
		Columns: []string{"app throughput (MB/s)", "baseline mean (us)", "baseline p99 (us)", "4KB-read mean (us)", "4KB-read p99 (us)"},
		Notes: fmt.Sprintf("baseline effective bandwidth = %.1f%% of device bandwidth; 'sat' marks load beyond the device's %.1f GB/s",
			baselineFraction*100, model.MaxBandwidthGBs()),
	}
	fmtLat := func(v float64, saturated bool) string {
		if saturated || math.IsInf(v, 1) {
			return "sat"
		}
		return f1(v)
	}
	for i := range sweep {
		t.AddRow(
			f1(sweep[i]),
			fmtLat(base[i].MeanLatencyUS, base[i].Saturated),
			fmtLat(base[i].P99LatencyUS, base[i].Saturated),
			fmtLat(full[i].MeanLatencyUS, full[i].Saturated),
			fmtLat(full[i].P99LatencyUS, full[i].Saturated),
		)
	}
	return t, nil
}
