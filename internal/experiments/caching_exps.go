package experiments

import (
	"fmt"

	"bandana/internal/cache"
	"bandana/internal/sim"
)

// fig2Table is the index of the paper's "table 2", the busiest table, which
// Figures 11, 12 and Table 2 study in isolation.
const fig2Table = 1

// runFig10 reproduces Figure 10: with a limited cache and the naive policy
// of treating prefetched vectors like requested ones (admitting all 32 at
// the MRU position), effective bandwidth *drops* relative to the baseline —
// on the SHP-partitioned layout and even more so on the original layout.
func (r *Runner) runFig10() (*Table, error) {
	ti := fig2Table
	eval := r.env.Eval(ti)
	shpL, err := r.env.SHPLayout(ti, blockVectors)
	if err != nil {
		return nil, err
	}
	idL := r.env.Identity(ti, blockVectors)

	t := &Table{
		Columns: []string{"cache size (vectors)", "partitioned tables", "original tables"},
		Notes:   "admit-all prefetching at the MRU position vs the no-prefetch baseline at the same cache size (table 2)",
	}
	for _, size := range r.env.cacheSizes(ti) {
		part := sim.Compare(eval, sim.Config{Layout: shpL, CacheVectors: size, Policy: cache.AlwaysAdmit{}})
		orig := sim.Compare(eval, sim.Config{Layout: idL, CacheVectors: size, Policy: cache.AlwaysAdmit{}})
		t.AddRow(itoa(size), pct(part.EffectiveBandwidthIncrease), pct(orig.EffectiveBandwidthIncrease))
	}
	return t, nil
}

// runFig11 reproduces Figure 11: (a) inserting prefetched vectors at a lower
// queue position, (b) admitting them only on a shadow-cache hit, and (c) the
// combination, all against the no-prefetch baseline on table 2 with the SHP
// layout.
func (r *Runner) runFig11() (*Table, error) {
	ti := fig2Table
	eval := r.env.Eval(ti)
	shpL, err := r.env.SHPLayout(ti, blockVectors)
	if err != nil {
		return nil, err
	}
	positions := []float64{0, 0.3, 0.5, 0.7, 0.9}
	multipliers := []float64{1.0, 1.5, 2.0}
	sizes := r.env.cacheSizes(ti)
	if r.opts.Quick {
		positions = []float64{0, 0.5, 0.9}
		sizes = sizes[len(sizes)-1:]
	}

	t := &Table{
		Columns: []string{"policy", "parameter", "cache size", "eff. BW increase"},
		Notes:   "policies of §4.3.1 on table 2 with the SHP layout, relative to the no-prefetch baseline at the same cache size",
	}
	for _, size := range sizes {
		baseline := sim.ReplayBaseline(eval, shpL, size, nil)
		// (a) insertion position.
		for _, pos := range positions {
			res := sim.Replay(eval, sim.Config{Layout: shpL, CacheVectors: size, Policy: cache.AlwaysAdmit{Position: pos}})
			t.AddRow("(a) insertion position", fmt.Sprintf("pos=%.1f", pos), itoa(size),
				pct(sim.EffectiveBandwidthIncrease(res, baseline)))
		}
		// (b) shadow-cache admission.
		for _, m := range multipliers {
			policy := cache.NewShadowAdmit(int(float64(size)*m), 0)
			res := sim.Replay(eval, sim.Config{Layout: shpL, CacheVectors: size, Policy: policy})
			t.AddRow("(b) shadow admission", fmt.Sprintf("shadow=%.1fx", m), itoa(size),
				pct(sim.EffectiveBandwidthIncrease(res, baseline)))
		}
		// (c) combination: admit everywhere, position decided by shadow hit.
		for _, pos := range positions {
			policy := cache.NewShadowPosition(int(float64(size)*1.5), pos)
			res := sim.Replay(eval, sim.Config{Layout: shpL, CacheVectors: size, Policy: policy})
			t.AddRow("(c) shadow position", fmt.Sprintf("alt-pos=%.1f", pos), itoa(size),
				pct(sim.EffectiveBandwidthIncrease(res, baseline)))
		}
	}
	return t, nil
}

// runFig12 reproduces Figure 12: admitting prefetched vectors only when
// their SHP-training access count exceeds a threshold t, for several
// thresholds and cache sizes (table 2, SHP layout), relative to the
// no-prefetch baseline.
func (r *Runner) runFig12() (*Table, error) {
	ti := fig2Table
	eval := r.env.Eval(ti)
	shpL, err := r.env.SHPLayout(ti, blockVectors)
	if err != nil {
		return nil, err
	}
	counts := r.env.Counts(ti)
	thresholds := []uint32{5, 10, 20, 40, 80}
	sizes := r.env.cacheSizes(ti)
	if r.opts.Quick {
		thresholds = []uint32{5, 20}
		sizes = sizes[:1]
	}
	cols := []string{"access threshold"}
	for _, s := range sizes {
		cols = append(cols, fmt.Sprintf("cache %d", s))
	}
	t := &Table{
		Columns: cols,
		Notes:   "smaller caches favour higher (more selective) thresholds; larger caches favour lower thresholds (§4.3.2)",
	}
	for _, th := range thresholds {
		row := []string{itoa(int(th))}
		for _, size := range sizes {
			cmp := sim.Compare(eval, sim.Config{
				Layout: shpL, CacheVectors: size,
				Policy: cache.ThresholdAdmit{Counts: counts, Threshold: th},
			})
			row = append(row, pct(cmp.EffectiveBandwidthIncrease))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// runTable2 reproduces Table 2: the admission threshold chosen by miniature
// caches at several sampling rates, compared with the full-cache (oracle)
// choice, and the effective bandwidth gain each chosen threshold achieves on
// the full-size cache.
func (r *Runner) runTable2() (*Table, error) {
	ti := fig2Table
	eval := r.env.Eval(ti)
	shpL, err := r.env.SHPLayout(ti, blockVectors)
	if err != nil {
		return nil, err
	}
	counts := r.env.Counts(ti)
	rates := []struct {
		label string
		rate  float64
	}{
		{"full cache", 1.0},
		{"25% sampling", 0.25},
		{"10% sampling", 0.10},
		{"2% sampling", 0.02},
	}
	if r.opts.Quick {
		rates = rates[:2]
	}
	cols := []string{"cache size"}
	for _, rt := range rates {
		cols = append(cols, rt.label+" threshold", rt.label+" BW gain")
	}
	t := &Table{
		Columns: cols,
		Notes:   "BW gain is measured on the full-size cache using the threshold each miniature cache chose; the paper samples down to 0.1% at 10M-vector scale",
	}
	for _, size := range r.env.cacheSizes(ti) {
		baseline := sim.ReplayBaseline(eval, shpL, size, nil)
		row := []string{itoa(size)}
		for _, rt := range rates {
			choice, err := sim.TuneThreshold(eval, sim.TunerConfig{
				Layout: shpL, Counts: counts, CacheVectors: size,
				SamplingRate: rt.rate, Thresholds: []uint32{5, 10, 20, 40, 80},
			})
			if err != nil {
				return nil, err
			}
			full := sim.Replay(eval, sim.Config{
				Layout: shpL, CacheVectors: size,
				Policy: cache.ThresholdAdmit{Counts: counts, Threshold: choice.Threshold},
			})
			gain := sim.EffectiveBandwidthIncrease(full, baseline)
			thLabel := itoa(int(choice.Threshold))
			if choice.Threshold == sim.DisablePrefetch {
				thLabel = "off"
			}
			row = append(row, thLabel, pct(gain))
		}
		t.AddRow(row...)
	}
	return t, nil
}
