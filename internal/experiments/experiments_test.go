package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quickRunner builds a runner at the smallest useful scale; it is shared by
// the tests in this file (the env caches the expensive artefacts).
var sharedRunner = NewRunner(QuickOptions())

func TestIDsAndTitles(t *testing.T) {
	ids := IDs()
	if len(ids) < 17 {
		t.Fatalf("expected at least 17 experiments, got %d", len(ids))
	}
	titles := Titles()
	for _, id := range ids {
		if titles[id] == "" {
			t.Fatalf("experiment %s has no title", id)
		}
	}
	// Every paper artefact must be present.
	for _, want := range []string{"fig2", "table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "table2", "fig13", "fig14", "fig15", "fig16"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("experiment %s missing from registry", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := sharedRunner.Run("nosuch"); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}, Notes: "note"}
	tbl.AddRow("1", "2")
	var buf bytes.Buffer
	tbl.Format(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "note") || !strings.Contains(out, "bb") {
		t.Fatalf("format output missing pieces:\n%s", out)
	}
	empty := &Table{ID: "y", Title: "no columns"}
	empty.Format(&buf) // must not panic
}

// runAndCheck runs one experiment and performs basic sanity checks.
func runAndCheck(t *testing.T, id string, minRows int) *Table {
	t.Helper()
	tbl, err := sharedRunner.Run(id)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tbl.Rows) < minRows {
		t.Fatalf("%s: only %d rows (want >= %d)", id, len(tbl.Rows), minRows)
	}
	for ri, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("%s: row %d has %d cells for %d columns", id, ri, len(row), len(tbl.Columns))
		}
	}
	var buf bytes.Buffer
	tbl.Format(&buf)
	if buf.Len() == 0 {
		t.Fatalf("%s: empty formatted output", id)
	}
	return tbl
}

// parsePct converts "+12.3%" to 0.123.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse percentage %q: %v", s, err)
	}
	return v / 100
}

func TestFig2ShapeMatchesPaper(t *testing.T) {
	tbl := runAndCheck(t, "fig2", 4)
	// Bandwidth must grow monotonically with queue depth and reach ~2.3 GB/s.
	var prevBW float64
	for _, row := range tbl.Rows {
		bw, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if bw < prevBW {
			t.Fatalf("bandwidth decreased with queue depth")
		}
		prevBW = bw
	}
	if prevBW < 2.0 {
		t.Fatalf("saturated bandwidth %.2f too low", prevBW)
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	tbl := runAndCheck(t, "table1", 8)
	// Table 2 (row index 1) must have the highest lookup share; table 8 the
	// highest compulsory-miss ratio.
	share := func(row []string) float64 { return parsePct(t, row[3]) }
	miss := func(row []string) float64 { return parsePct(t, row[4]) }
	for i, row := range tbl.Rows {
		if i == 1 {
			continue
		}
		if share(tbl.Rows[1]) < share(row) {
			t.Fatalf("table 2 should have the largest lookup share")
		}
		if miss(tbl.Rows[7]) < miss(row) {
			t.Fatalf("table 8 should have the largest compulsory miss ratio")
		}
	}
}

func TestFig3HitRatesMonotone(t *testing.T) {
	tbl := runAndCheck(t, "fig3", 3)
	// Hit rate must not decrease as the cache grows (down the rows).
	for c := 1; c < len(tbl.Columns); c++ {
		prev := -1.0
		for _, row := range tbl.Rows {
			v, err := strconv.ParseFloat(row[c], 64)
			if err != nil {
				t.Fatal(err)
			}
			if v+1e-9 < prev {
				t.Fatalf("column %d: hit rate decreased with cache size", c)
			}
			prev = v
		}
	}
}

func TestFig5BaselineSaturatesFirst(t *testing.T) {
	tbl := runAndCheck(t, "fig5", 3)
	// The baseline column must contain at least one saturated entry while
	// the 4KB-read column still has finite latencies at the same rows.
	sawBaselineSat := false
	for _, row := range tbl.Rows {
		if row[1] == "sat" && row[3] != "sat" {
			sawBaselineSat = true
		}
	}
	if !sawBaselineSat {
		t.Fatal("baseline should saturate at throughputs the 4KB-read curve still sustains")
	}
}

func TestFig9SHPBeatsIdentityAndImprovesWithData(t *testing.T) {
	tbl := runAndCheck(t, "fig9", 2)
	for _, row := range tbl.Rows {
		identity := parsePct(t, row[1])
		last := parsePct(t, row[len(row)-1])
		if last < identity {
			t.Fatalf("SHP with full training should beat the identity layout (row %v)", row)
		}
	}
}

func TestFig12ThresholdGainsPositive(t *testing.T) {
	tbl := runAndCheck(t, "fig12", 2)
	// At least one threshold setting must deliver a positive gain on the
	// high-locality table 2.
	found := false
	for _, row := range tbl.Rows {
		for c := 1; c < len(row); c++ {
			if parsePct(t, row[c]) > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no threshold produced a positive effective bandwidth increase")
	}
}

func TestFig13EndToEndPositiveGains(t *testing.T) {
	tbl := runAndCheck(t, "fig13", 1)
	// At the largest total cache, the busiest table (table 2, column 2)
	// must show a positive gain.
	last := tbl.Rows[len(tbl.Rows)-1]
	if parsePct(t, last[2]) <= 0 {
		t.Fatalf("table 2 end-to-end gain should be positive at the largest cache, got %s", last[2])
	}
}

func TestRemainingExperimentsRun(t *testing.T) {
	// The remaining experiments are checked for basic shape only (they are
	// exercised in depth by the reference run recorded in EXPERIMENTS.md).
	for id, minRows := range map[string]int{
		"fig4": 3, "fig6": 2, "fig7": 3, "fig8": 1, "fig10": 2, "fig11": 3,
		"table2": 2, "fig14": 2, "fig15": 2, "fig16": 2,
		"ablation-shp": 2, "ablation-admission": 4, "ablation-mrc": 2,
	} {
		runAndCheck(t, id, minRows)
	}
}
