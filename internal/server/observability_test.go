package server

import (
	"bytes"
	"context"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"bandana/internal/core"
	"bandana/internal/metrics"
	"bandana/internal/table"
	"bandana/internal/wire"
)

// newObsServer is newTestServer but also returns the Server so tests can arm
// slow-request logging.
func newObsServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	g := table.Generate("tA", table.GenerateOptions{
		NumVectors: 2048, Dim: 16, NumClusters: 32, Seed: 1,
	})
	store, err := core.Open(core.Config{Tables: []*table.Table{g.Table}, DRAMBudgetVectors: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := New(store)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestMetricsEndpoint drives traffic over the HTTP path and checks the
// exposition validates and carries non-zero stage histogram counts.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newObsServer(t)
	// Mixed traffic: hits and misses so every stage observes something.
	for id := 0; id < 512; id++ {
		if code := getJSON(t, ts.URL+"/v1/lookup?table=tA&id="+strconv.Itoa(id), nil); code != http.StatusOK {
			t.Fatalf("lookup %d: status %d", id, code)
		}
	}
	postJSON(t, ts.URL+"/v1/batch", batchRequest{Table: "tA", IDs: []uint32{1, 2, 3, 700, 701}}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	var buf bytes.Buffer
	n, err := metrics.ValidateExposition(io.TeeReader(resp.Body, &buf))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf.String())
	}
	if n < 50 {
		t.Fatalf("only %d samples", n)
	}
	out := buf.String()
	// The stage histograms must be present with real counts: misses feed
	// device_service and decode; probe is sampled but 512 lookups guarantee
	// several draws; serialize observes every serving response.
	for _, stage := range []string{"device_service", "decode", "cache_probe", "serialize"} {
		marker := `stage="` + stage + `"`
		if !strings.Contains(out, marker) {
			t.Errorf("exposition missing stage %s", stage)
		}
	}
	for _, want := range []string{
		"bandana_stage_duration_us_count{table=\"tA\",stage=\"device_service\"}",
		"bandana_table_lookups_total{table=\"tA\"} 517",
		"bandana_http_requests_total",
		"bandana_device_blocks_read_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(out, "bandana_stage_duration_us_count{table=\"tA\",stage=\"device_service\"} 0\n") {
		t.Errorf("device_service stage count is zero after misses:\n%s", grepLines(out, "device_service"))
	}
	if strings.Contains(out, "bandana_stage_duration_us_count{table=\"tA\",stage=\"cache_probe\"} 0\n") {
		t.Errorf("cache_probe stage count is zero after 512 lookups:\n%s", grepLines(out, "cache_probe"))
	}
	if strings.Contains(out, "bandana_stage_duration_us_count{stage=\"serialize\"} 0\n") {
		t.Errorf("serialize stage count is zero:\n%s", grepLines(out, "serialize"))
	}
}

// TestMetricsEndpointWirePath drives traffic ONLY over the bwp wire protocol
// and checks the same stage histograms fill: they are recorded inside the
// store's serving path, so /metrics decomposes wire traffic too.
func TestMetricsEndpointWirePath(t *testing.T) {
	ts, srv := newObsServer(t)
	c, err := wire.Dial(startWire(t, srv), wire.Options{DialTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	for start := uint32(0); start < 512; start += 8 {
		ids := []uint32{start, start + 1, start + 2, start + 3, start + 4, start + 5, start + 6, start + 7}
		if _, err := c.LookupBatchF32(ctx, "tA", ids); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := metrics.ValidateExposition(io.TeeReader(resp.Body, &buf)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	out := buf.String()
	for _, stage := range []string{"device_service", "cache_probe"} {
		zero := `bandana_stage_duration_us_count{table="tA",stage="` + stage + `"} 0` + "\n"
		if strings.Contains(out, zero) {
			t.Errorf("%s stage count is zero after wire-only traffic:\n%s", stage, grepLines(out, stage))
		}
	}
	if !strings.Contains(out, `bandana_wire_requests_total{opcode="lookup"} 64`) {
		t.Errorf("wire per-opcode counter missing or wrong:\n%s", grepLines(out, "bandana_wire_requests_total"))
	}
	if !strings.Contains(out, "bandana_wire_enabled 1") {
		t.Errorf("bandana_wire_enabled not 1:\n%s", grepLines(out, "wire_enabled"))
	}
}

// TestSlowRequestLog arms a zero threshold (everything is slow) and checks
// one structured line with the stage fields appears, then that the breakdown
// carries real numbers for a missing-everywhere batch.
func TestSlowRequestLog(t *testing.T) {
	ts, srv := newObsServer(t)
	srv.SetSlowRequestThreshold(time.Nanosecond)

	var logBuf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&logBuf)
	defer log.SetOutput(prev)

	postJSON(t, ts.URL+"/v1/batch", batchRequest{Table: "tA", IDs: []uint32{1500, 1501, 1502}}, nil)

	out := logBuf.String()
	if !strings.Contains(out, "slow-request method=POST path=/v1/batch status=200") {
		t.Fatalf("no slow-request line:\n%s", out)
	}
	for _, field := range []string{"probe_us=", "queue_wait_us=", "service_us=", "decode_us=", "serialize_us=", "lookups=3", "suppressed="} {
		if !strings.Contains(out, field) {
			t.Errorf("slow line missing %s:\n%s", field, out)
		}
	}
	// Cold ids: the trace must show misses and non-zero device service time.
	if strings.Contains(out, "service_us=0.0 ") {
		t.Errorf("service_us is zero for a miss batch:\n%s", out)
	}
	if !strings.Contains(out, "misses=3") {
		t.Errorf("expected misses=3:\n%s", out)
	}
}

// TestSlowLogRateLimit floods the server with slow requests and checks the
// emitted line count stays near the bucket size while the suppressed counter
// picks up the rest.
func TestSlowLogRateLimit(t *testing.T) {
	ts, srv := newObsServer(t)
	srv.SetSlowRequestThreshold(time.Nanosecond)

	var logBuf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&logBuf)
	defer log.SetOutput(prev)

	const n = 200
	for i := 0; i < n; i++ {
		getJSON(t, ts.URL+"/v1/lookup?table=tA&id=1", nil)
	}
	lines := strings.Count(logBuf.String(), "slow-request ")
	if lines == 0 {
		t.Fatal("no slow lines at all")
	}
	// Bucket = 20 burst + ~10/s refill; 200 back-to-back requests complete
	// in well under a second, so far fewer than n lines may emit.
	if lines > 50 {
		t.Fatalf("rate limiter let %d of %d lines through", lines, n)
	}
	if suppressed := srv.slowSuppressed.Load(); suppressed == 0 {
		t.Fatalf("no suppressed slow requests recorded (emitted %d of %d)", lines, n)
	}
}

// grepLines returns the exposition lines containing substr (test failure
// diagnostics).
func grepLines(s, substr string) string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
