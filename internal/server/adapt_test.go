package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

func postAdapt(t *testing.T, url string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/adapt", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, out
}

func TestAdaptEndpoint(t *testing.T) {
	ts, tables := newTestServer(t)

	// Stats before start: adaptation disabled.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Adaptation struct {
			Enabled         bool `json:"enabled"`
			EpochsCompleted int  `json:"epochsCompleted"`
		} `json:"adaptation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Adaptation.Enabled {
		t.Fatal("adaptation should be disabled before start")
	}

	// Epoch before start fails.
	if resp, _ := postAdapt(t, ts.URL, `{"action":"epoch"}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("epoch before start = %d, want 409", resp.StatusCode)
	}
	// Bad action fails.
	if resp, _ := postAdapt(t, ts.URL, `{"action":"bogus"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus action accepted: %d", resp.StatusCode)
	}

	// Start in manual mode (no interval).
	resp2, body := postAdapt(t, ts.URL, `{"action":"start","minQueries":8}`)
	if resp2.StatusCode != http.StatusOK || body["enabled"] != true {
		t.Fatalf("start: %d %v", resp2.StatusCode, body)
	}
	// Double start conflicts; an invalid option is the client's fault.
	if resp, _ := postAdapt(t, ts.URL, `{"action":"start"}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double start = %d, want 409", resp.StatusCode)
	}
	if resp, _ := postAdapt(t, ts.URL, `{"action":"stop"}`); resp.StatusCode != http.StatusOK {
		t.Fatal("stop failed")
	}
	if resp, _ := postAdapt(t, ts.URL, `{"action":"start","relayoutStrategy":"bogus"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad strategy = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postAdapt(t, ts.URL, `{"action":"start","minQueries":8}`); resp.StatusCode != http.StatusOK {
		t.Fatal("restart failed")
	}

	// Serve some batches so the recorders fill.
	for q := 0; q < 32; q++ {
		ids := []uint32{}
		for k := 0; k < 8; k++ {
			ids = append(ids, uint32((q*64+k*3)%tables[0].NumVectors()))
		}
		payload, _ := json.Marshal(map[string]any{"table": tables[0].Name, "ids": ids})
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewBuffer(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	// Run one synchronous epoch and check the report shape.
	resp3, rep := postAdapt(t, ts.URL, `{"action":"epoch"}`)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("epoch: %d %v", resp3.StatusCode, rep)
	}
	if rep["Epoch"] != float64(1) {
		t.Fatalf("epoch report: %v", rep)
	}

	// Stats now expose the adaptation section with per-table entries.
	resp4, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var full struct {
		Adaptation struct {
			Enabled         bool `json:"enabled"`
			EpochsCompleted int  `json:"epochsCompleted"`
			Tables          []struct {
				Name         string  `json:"name"`
				EpochHitRate float64 `json:"epochHitRate"`
				CacheVectors int     `json:"cacheVectors"`
			} `json:"tables"`
		} `json:"adaptation"`
	}
	if err := json.NewDecoder(resp4.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if !full.Adaptation.Enabled || full.Adaptation.EpochsCompleted != 1 {
		t.Fatalf("adaptation stats after epoch: %+v", full.Adaptation)
	}
	if len(full.Adaptation.Tables) != len(tables) {
		t.Fatalf("adaptation stats cover %d tables, want %d", len(full.Adaptation.Tables), len(tables))
	}
	for _, ts := range full.Adaptation.Tables {
		if ts.CacheVectors <= 0 {
			t.Fatalf("table %s: no cache allocation in stats", ts.Name)
		}
	}

	// Stop; epoch now fails again.
	if resp, body := postAdapt(t, ts.URL, `{"action":"stop"}`); resp.StatusCode != http.StatusOK || body["enabled"] != false {
		t.Fatalf("stop: %d %v", resp.StatusCode, body)
	}
	if resp, _ := postAdapt(t, ts.URL, `{"action":"epoch"}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("epoch after stop = %d, want 409", resp.StatusCode)
	}
}

func TestAdaptEndpointBackgroundStart(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := postAdapt(t, ts.URL, `{"action":"start","intervalMS":50}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d %v", resp.StatusCode, body)
	}
	if body["background"] != true {
		t.Fatalf("background not running: %v", body)
	}
	if fmt.Sprintf("%v", body["intervalMS"]) != "50" {
		t.Fatalf("intervalMS = %v", body["intervalMS"])
	}
	if resp, _ := postAdapt(t, ts.URL, `{"action":"stop"}`); resp.StatusCode != http.StatusOK {
		t.Fatal("stop failed")
	}
}
