// Incremental replication and the HTTP update path:
//
//	GET /v1/replica/updates?since=N
//	    application/octet-stream of concatenated update-log records (the
//	    framing of core.EncodeUpdateRecord) with Seq > N, oldest first, with
//	    headers
//	        X-Bandana-Seq          the node's live snapshot seq
//	        X-Bandana-From         the seq the stream resumes after (echo of ?since)
//	        X-Bandana-Upto         seq of the last record in the response
//	        X-Bandana-Count        number of records in the response
//	        X-Bandana-Chunk-Crc32c CRC-32C of the response body
//	    An empty 200 with Upto == From means the follower is caught up.
//	    410 Gone means `since` is outside the retained update window (it was
//	    compacted away, a structural mutation reset the window, or the store
//	    has no update log): the follower must bootstrap a full snapshot,
//	    whose seq re-enters the window.
//
//	POST /v1/update  {"table": "...", "id": N, "vector": [...]}
//	    single-vector update (the HTTP twin of the wire protocol's OpUpdate);
//	    responds with the seq the update committed at.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"

	"bandana/internal/core"
)

// Incremental-update header names (canonical form).
const (
	HeaderUpdatesFrom  = "X-Bandana-From"
	HeaderUpdatesUpTo  = "X-Bandana-Upto"
	HeaderUpdatesCount = "X-Bandana-Count"
)

// One response carries at most this many records / framed bytes; a lagging
// follower just issues another request from the returned Upto.
const (
	maxUpdateRecordsPerResponse = 1 << 16
	maxUpdateBytesPerResponse   = 4 << 20
)

func (s *Server) handleReplicaUpdates(w http.ResponseWriter, r *http.Request) {
	store := s.store(r)
	sinceStr := r.URL.Query().Get("since")
	if sinceStr == "" {
		writeError(w, http.StatusBadRequest, "query parameter 'since' is required")
		return
	}
	since, err := strconv.ParseUint(sinceStr, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid since %q", sinceStr)
		return
	}
	recs, upTo, ok := store.UpdatesSince(since, maxUpdateRecordsPerResponse, maxUpdateBytesPerResponse)
	// Loaded after UpdatesSince, so live >= upTo: a follower that sees
	// upTo < live knows more records are already fetchable.
	live := store.SnapshotSeq()
	if !ok {
		w.Header().Set(HeaderSeq, strconv.FormatUint(live, 10))
		writeError(w, http.StatusGone,
			"seq %d is outside the retained update window; bootstrap a full snapshot", since)
		return
	}
	var payload []byte
	for _, rec := range recs {
		payload = core.EncodeUpdateRecord(payload, rec)
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(HeaderSeq, strconv.FormatUint(live, 10))
	h.Set(HeaderUpdatesFrom, strconv.FormatUint(since, 10))
	h.Set(HeaderUpdatesUpTo, strconv.FormatUint(upTo, 10))
	h.Set(HeaderUpdatesCount, strconv.Itoa(len(recs)))
	h.Set(HeaderChunkCRC, fmt.Sprintf("%08x", crc32.Checksum(payload, snapshotCRCTable)))
	h.Set("Content-Length", strconv.Itoa(len(payload)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

// updateRequest overwrites one embedding vector.
type updateRequest struct {
	Table  string    `json:"table"`
	ID     uint32    `json:"id"`
	Vector []float32 `json:"vector"`
}

// updateResponse acknowledges the committed update with its seq.
type updateResponse struct {
	Table string `json:"table"`
	ID    uint32 `json:"id"`
	Seq   uint64 `json:"seq"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if req.Table == "" || len(req.Vector) == 0 {
		writeError(w, http.StatusBadRequest, "'table' and non-empty 'vector' are required")
		return
	}
	store := s.store(r)
	idx, err := store.TableIndex(req.Table)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	// The response promises the seq THIS update committed at; reading the
	// live SnapshotSeq after the fact would report a later seq whenever
	// concurrent updates interleave.
	seq, err := store.UpdateVectorSeq(idx, req.ID, req.Vector)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrReadOnly) {
			status = http.StatusForbidden
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, updateResponse{Table: req.Table, ID: req.ID, Seq: seq})
}
