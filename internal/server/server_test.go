package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"bandana/internal/core"
	"bandana/internal/table"
	"bandana/internal/trace"
)

// newTestServer builds a small store and wraps it in a test HTTP server.
func newTestServer(t *testing.T) (*httptest.Server, []*table.Table) {
	t.Helper()
	tables := make([]*table.Table, 2)
	for i := range tables {
		p := trace.Profile{
			Name: "t" + string(rune('A'+i)), NumVectors: 2048, AvgLookups: 16,
			CompulsoryMissFrac: 0.1, Locality: 0.9, CommunitySize: 64, ReuseSkew: 3, Seed: int64(i + 1),
		}
		g := table.Generate(p.Name, table.GenerateOptions{
			NumVectors: p.NumVectors, Dim: 16, NumClusters: 32, Seed: int64(i),
		})
		tables[i] = g.Table
	}
	store, err := core.Open(core.Config{Tables: tables, DRAMBudgetVectors: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	ts := httptest.NewServer(New(store).Handler())
	t.Cleanup(ts.Close)
	return ts, tables
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHealthEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var out map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out["status"] != "ok" {
		t.Fatalf("health payload %v", out)
	}
	if ro, ok := out["readOnly"].(bool); !ok || ro {
		t.Fatalf("expected readOnly=false in health payload, got %v", out)
	}
}

func TestTablesEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var out []tableInfo
	if code := getJSON(t, ts.URL+"/v1/tables", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out) != 2 || out[0].Name != "tA" || out[1].Index != 1 {
		t.Fatalf("tables payload %+v", out)
	}
}

func TestLookupEndpoint(t *testing.T) {
	ts, tables := newTestServer(t)
	var out lookupResponse
	if code := getJSON(t, ts.URL+"/v1/lookup?table=tA&id=5", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want, _ := tables[0].Vector(5)
	if len(out.Vector) != len(want) {
		t.Fatalf("vector length %d", len(out.Vector))
	}
	for d := range want {
		if out.Vector[d] != want[d] {
			t.Fatalf("element %d mismatch", d)
		}
	}
	// Error cases.
	if code := getJSON(t, ts.URL+"/v1/lookup?table=tA", nil); code != http.StatusBadRequest {
		t.Fatalf("missing id should be 400, got %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/lookup?table=tA&id=abc", nil); code != http.StatusBadRequest {
		t.Fatalf("bad id should be 400, got %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/lookup?table=nosuch&id=1", nil); code != http.StatusNotFound {
		t.Fatalf("unknown table should be 404, got %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/lookup?table=tA&id=999999", nil); code != http.StatusNotFound {
		t.Fatalf("out-of-range id should be 404, got %d", code)
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts, tables := newTestServer(t)
	var out batchResponse
	code := postJSON(t, ts.URL+"/v1/batch", batchRequest{Table: "tB", IDs: []uint32{1, 2, 3}}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Vectors) != 3 {
		t.Fatalf("got %d vectors", len(out.Vectors))
	}
	want, _ := tables[1].Vector(2)
	for d := range want {
		if out.Vectors[1][d] != want[d] {
			t.Fatalf("batch vector mismatch at %d", d)
		}
	}
	if code := postJSON(t, ts.URL+"/v1/batch", batchRequest{Table: "tB"}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty ids should be 400, got %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/batch", batchRequest{Table: "zzz", IDs: []uint32{1}}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown table should be 404, got %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/batch", batchRequest{Table: "tB", IDs: []uint32{999999}}, nil); code != http.StatusNotFound {
		t.Fatalf("bad id should be 404, got %d", code)
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON should be 400, got %d", resp.StatusCode)
	}
}

// TestStatsFileBackend serves a file-backed store and checks that /v1/stats
// reports the backend name and its journal/flush counters.
func TestStatsFileBackend(t *testing.T) {
	g := table.Generate("tA", table.GenerateOptions{NumVectors: 512, Dim: 16, NumClusters: 8, Seed: 1})
	store, err := core.Open(core.Config{
		Tables:  []*table.Table{g.Table},
		Seed:    1,
		Backend: core.BackendFile,
		DataDir: t.TempDir() + "/store",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	// Bulk ingest bypasses the journal; a single-vector update is the
	// journaled path and must show up in the counter.
	if err := store.UpdateVector(0, 1, make([]float32, 16)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(store).Handler())
	t.Cleanup(ts.Close)

	var out statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Device.Backend != "file" {
		t.Fatalf("backend = %q, want file", out.Device.Backend)
	}
	if out.Device.JournalWrites == 0 {
		t.Fatalf("journal writes not reported: %+v", out.Device)
	}
	if out.Device.JournalBytesAppended == 0 || out.Device.DataWrites == 0 {
		t.Fatalf("ring journal counters not reported: %+v", out.Device)
	}
	if out.Device.RingUtilization < 0 || out.Device.RingUtilization > 1 {
		t.Fatalf("ring utilization out of range: %+v", out.Device)
	}
	if out.Device.Flushes == 0 {
		t.Fatalf("flushes not reported (Persist flushes at init): %+v", out.Device)
	}
}

func TestRequestEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var out rankingResponse
	code := postJSON(t, ts.URL+"/v1/request", rankingRequest{Lookups: [][]uint32{{1, 2}, {7}}}, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Tables) != 2 || len(out.Tables[0]) != 2 || len(out.Tables[1]) != 1 {
		t.Fatalf("request payload shape wrong: %d tables", len(out.Tables))
	}
	if code := postJSON(t, ts.URL+"/v1/request", rankingRequest{Lookups: [][]uint32{{1}, {1}, {1}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("too many tables should be 400, got %d", code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// Generate some traffic first.
	getJSON(t, ts.URL+"/v1/lookup?table=tA&id=1", nil)
	getJSON(t, ts.URL+"/v1/lookup?table=tA&id=1", nil)
	var out statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Tables) != 2 {
		t.Fatalf("stats cover %d tables", len(out.Tables))
	}
	if out.Tables[0].Lookups != 2 || out.Tables[0].Hits != 1 {
		t.Fatalf("stats not tracking traffic: %+v", out.Tables[0])
	}
	if out.Device.BlocksRead == 0 {
		t.Fatalf("device stats missing")
	}
	if out.Device.EnduranceDWPD <= 0 {
		t.Fatalf("endurance budget missing")
	}
	if out.Device.Backend != "mem" {
		t.Fatalf("backend = %q, want mem", out.Device.Backend)
	}
	// The instrumentation middleware must have counted the traffic above
	// (2 lookups + this stats request).
	if out.Server.Requests < 3 {
		t.Fatalf("server requests = %d, want >= 3", out.Server.Requests)
	}
	if out.Server.Errors != 0 {
		t.Fatalf("server errors = %d, want 0", out.Server.Errors)
	}
}

func TestServerErrorCounting(t *testing.T) {
	ts, _ := newTestServer(t)
	getJSON(t, ts.URL+"/v1/lookup?table=nosuch&id=1", nil)
	getJSON(t, ts.URL+"/v1/lookup?table=tA", nil)
	var out statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Server.Errors != 2 {
		t.Fatalf("server errors = %d, want 2", out.Server.Errors)
	}
}

// TestConcurrentRequests exercises the full HTTP path from many goroutines —
// net/http already runs handlers concurrently, and the sharded store must
// keep its counters consistent under that load.
func TestConcurrentRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := uint32((w*perWorker + i) % 2048)
				var out lookupResponse
				if code := getJSON(t, fmt.Sprintf("%s/v1/lookup?table=tA&id=%d", ts.URL, id), &out); code != http.StatusOK {
					t.Errorf("lookup status %d", code)
					return
				}
				if len(out.Vector) != 16 {
					t.Errorf("vector length %d", len(out.Vector))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var out statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	tbl := out.Tables[0]
	if tbl.Lookups != workers*perWorker {
		t.Fatalf("table lookups = %d, want %d", tbl.Lookups, workers*perWorker)
	}
	if tbl.Hits+tbl.Misses != tbl.Lookups {
		t.Fatalf("hits %d + misses %d != lookups %d", tbl.Hits, tbl.Misses, tbl.Lookups)
	}
	if out.Server.Requests < workers*perWorker {
		t.Fatalf("server requests = %d, want >= %d", out.Server.Requests, workers*perWorker)
	}
	if out.Server.InFlight != 1 { // just this stats request
		t.Fatalf("in-flight = %d, want 1", out.Server.InFlight)
	}
}
