// Package server exposes a Bandana store over HTTP.
//
// In production, embedding stores sit behind an RPC layer that the ranking
// tier calls once per request. This package provides a minimal JSON/HTTP
// equivalent so the store can be exercised end to end (and load-tested) as a
// network service:
//
//	GET  /healthz                        liveness probe (+ read-only flag and snapshot seq)
//	GET  /v1/tables                      table inventory
//	GET  /v1/lookup?table=T&id=N         single embedding vector
//	POST /v1/batch                       {"table": "...", "ids": [...]}
//	POST /v1/request                     {"lookups": [[...], [...], ...]} (one ID list per table)
//	POST /v1/update                      {"table": "...", "id": N, "vector": [...]} single-vector update
//	GET  /v1/stats                       per-table serving stats + NVM device stats + server stats + runtime + adaptation stats
//	POST /v1/adapt                       {"action": "start"|"stop"|"epoch", ...} adaptation control
//	GET  /v1/replica/seq                 snapshot sequence number (replica polling)
//	GET  /v1/replica/snapshot            chunked, CRC'd snapshot stream (replica bootstrap)
//	GET  /v1/replica/updates             incremental update-record stream (replica tailing)
//
// net/http serves each request on its own goroutine; the store's sharded
// caches let those goroutines proceed in parallel, so the service scales
// with GOMAXPROCS instead of serializing lookups behind a per-table lock.
// The server tracks request count, error count, in-flight requests and
// request latency, reported under "server" in /v1/stats.
//
// The served store can be replaced at runtime with SwapStore (how a replica
// follows its primary across re-syncs): each request pins the store it
// started with, and a swapped-out store is closed only after its last
// request drains.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bandana/internal/core"
	"bandana/internal/metrics"
	"bandana/internal/wire"
)

// MaxBatchIDs bounds the ids accepted by one /v1/batch call (and the total
// lookups of one /v1/request): a single oversized request would otherwise
// monopolise the block-read path and balloon the response. Clients split
// larger batches; the router never exceeds it per node because it only
// subdivides client batches.
const MaxBatchIDs = 8192

// Server wraps a core.Store with HTTP handlers and an optional binary wire
// protocol (bwp) listener, see ServeWire.
type Server struct {
	ref   atomic.Pointer[storeRef]
	mux   *http.ServeMux
	start time.Time

	wire        *wire.Server
	wireEnabled atomic.Bool

	requests metrics.Counter
	errors   metrics.Counter
	inflight metrics.Gauge
	swaps    metrics.Counter
	latency  *metrics.Histogram
	// serialize times JSON response encoding on the serving handlers (the
	// "serialize" stage of the latency decomposition).
	serialize *metrics.Histogram

	// registry renders GET /metrics (built lazily on first scrape).
	registryOnce sync.Once
	registry     *metrics.Registry

	// Slow-request logging (see SetSlowRequestThreshold). slowNS == 0 means
	// disabled; emission is token-bucket limited so an overloaded server
	// logs a sample of its slow requests instead of one line per request.
	slowNS         atomic.Int64
	slowSuppressed atomic.Int64
	slowMu         sync.Mutex
	slowTokens     float64
	slowLast       time.Time

	// export caches the last built snapshot so a replica's chunked download
	// does not rebuild the image per chunk; invalidated when the store's
	// snapshot seq moves or the served store itself is swapped
	// (exportStore pins which store the cache was built from).
	exportMu    sync.Mutex
	export      *core.Snapshot
	exportStore *core.Store
}

// New creates a Server around an opened (and usually trained) store.
func New(store *core.Store) *Server {
	s := &Server{
		mux:       http.NewServeMux(),
		start:     time.Now(),
		latency:   metrics.NewLatencyHistogram(),
		serialize: metrics.NewHistogram(0.01, 1.05, 1e6),
	}
	s.ref.Store(&storeRef{store: store})
	s.wire = &wire.Server{Backend: wireBackend{s}, MaxBatch: MaxBatchIDs}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/tables", s.handleTables)
	s.mux.HandleFunc("GET /v1/lookup", s.handleLookup)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/request", s.handleRequest)
	s.mux.HandleFunc("POST /v1/update", s.handleUpdate)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/adapt", s.handleAdapt)
	s.mux.HandleFunc("GET /v1/replica/seq", s.handleReplicaSeq)
	s.mux.HandleFunc("GET /v1/replica/snapshot", s.handleReplicaSnapshot)
	s.mux.HandleFunc("GET /v1/replica/updates", s.handleReplicaUpdates)
	return s
}

// storeCtxKey carries the request's pinned store through the context.
type storeCtxKey struct{}

// traceCtxKey carries the request's stage trace (slow-request logging only).
type traceCtxKey struct{}

// requestTrace is one HTTP request's stage breakdown: the store-side stages
// plus the server-side serialization stage.
type requestTrace struct {
	core.StageTrace
	SerializeUS float64
}

// reqTrace returns the request's stage trace, or nil when slow-request
// logging is off (the serving handlers then skip per-request stage timing).
func (s *Server) reqTrace(r *http.Request) *requestTrace {
	rt, _ := r.Context().Value(traceCtxKey{}).(*requestTrace)
	return rt
}

// stageTrace unwraps the core-level trace for handlers that pass it to the
// store's *Traced lookup variants; nil when tracing is off.
func stageTrace(rt *requestTrace) *core.StageTrace {
	if rt == nil {
		return nil
	}
	return &rt.StageTrace
}

// store returns the store pinned to this request by the instrument
// middleware. Handlers must use it instead of CurrentStore so a concurrent
// SwapStore cannot close their store mid-request.
func (s *Server) store(r *http.Request) *core.Store {
	return r.Context().Value(storeCtxKey{}).(*core.Store)
}

// Handler returns the HTTP handler (for use with http.Server or httptest).
// Every request is instrumented with the server's request metrics.
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// statusRecorder captures the response status for error accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// instrument wraps next with request counting, in-flight tracking and
// latency measurement.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.requests.Inc()
		s.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		ref := s.acquireRef()
		slowNS := s.slowNS.Load()
		var rt *requestTrace
		if slowNS > 0 {
			// With slow logging armed, every request carries a trace so a
			// request discovered to be slow at the end has its breakdown.
			// The store times all stages under a trace (a handful of clock
			// reads — noise next to a multi-millisecond threshold).
			rt = &requestTrace{}
		}
		// Deferred so a panicking handler (net/http recovers it per
		// connection) cannot leak the in-flight count, the store ref or
		// drop the request from the latency/error metrics.
		defer func() {
			ref.release()
			s.inflight.Add(-1)
			if rec.status >= 400 {
				s.errors.Inc()
			}
			elapsed := time.Since(start)
			s.latency.ObserveDuration(elapsed)
			if slowNS > 0 && elapsed >= time.Duration(slowNS) {
				s.logSlowRequest(r, rec.status, elapsed, rt)
			}
		}()
		ctx := context.WithValue(r.Context(), storeCtxKey{}, ref.store)
		if rt != nil {
			ctx = context.WithValue(ctx, traceCtxKey{}, rt)
		}
		r = r.WithContext(ctx)
		next.ServeHTTP(rec, r)
	})
}

// jsonBufPool recycles response-encoding buffers across requests: the hot
// lookup/batch handlers would otherwise allocate a fresh buffer (growing
// through several sizes for large batches) per response. Buffers that grew
// beyond maxPooledJSONBuf are dropped instead of pinned in the pool forever.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledJSONBuf = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		jsonBufPool.Put(buf)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledJSONBuf {
		jsonBufPool.Put(buf)
	}
}

// writeServingJSON is writeJSON for the serving handlers (lookup, batch,
// request): it additionally times the response encode + write as the
// "serialize" stage, feeding the server's stage histogram and, when slow
// logging armed a trace, the request's breakdown.
func (s *Server) writeServingJSON(w http.ResponseWriter, rt *requestTrace, status int, v any) {
	start := time.Now()
	writeJSON(w, status, v)
	d := float64(time.Since(start)) / float64(time.Microsecond)
	s.serialize.Observe(d)
	if rt != nil {
		rt.SerializeUS += d
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	store := s.store(r)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"readOnly":    store.ReadOnly(),
		"snapshotSeq": store.SnapshotSeq(),
	})
}

// tableInfo describes one table in the inventory response.
type tableInfo struct {
	Index        int    `json:"index"`
	Name         string `json:"name"`
	CacheVectors int    `json:"cacheVectors"`
	Prefetching  bool   `json:"prefetching"`
	Threshold    uint32 `json:"threshold"`
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	stats := s.store(r).Stats()
	out := make([]tableInfo, len(stats))
	for i, st := range stats {
		out[i] = tableInfo{
			Index:        i,
			Name:         st.Name,
			CacheVectors: st.CacheVectors,
			Prefetching:  st.Prefetching,
			Threshold:    st.Threshold,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// lookupResponse carries one embedding vector.
type lookupResponse struct {
	Table  string    `json:"table"`
	ID     uint32    `json:"id"`
	Vector []float32 `json:"vector"`
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	tableName := r.URL.Query().Get("table")
	idStr := r.URL.Query().Get("id")
	if tableName == "" || idStr == "" {
		writeError(w, http.StatusBadRequest, "query parameters 'table' and 'id' are required")
		return
	}
	id, err := strconv.ParseUint(idStr, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid id %q", idStr)
		return
	}
	store := s.store(r)
	rt := s.reqTrace(r)
	var vec []float32
	if tr := stageTrace(rt); tr != nil {
		var idx int
		if idx, err = store.TableIndex(tableName); err == nil {
			vec, err = store.LookupTraced(idx, uint32(id), tr)
		}
	} else {
		vec, err = store.LookupByName(tableName, uint32(id))
	}
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.writeServingJSON(w, rt, http.StatusOK, lookupResponse{Table: tableName, ID: uint32(id), Vector: vec})
}

// batchRequest asks for several vectors from one table.
type batchRequest struct {
	Table string   `json:"table"`
	IDs   []uint32 `json:"ids"`
}

// batchResponse carries the vectors of a batch lookup.
type batchResponse struct {
	Table   string      `json:"table"`
	Vectors [][]float32 `json:"vectors"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if req.Table == "" || len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, "'table' and non-empty 'ids' are required")
		return
	}
	if len(req.IDs) > MaxBatchIDs {
		writeError(w, http.StatusBadRequest, "batch of %d ids exceeds the limit of %d (split the request)", len(req.IDs), MaxBatchIDs)
		return
	}
	store := s.store(r)
	idx, err := store.TableIndex(req.Table)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	rt := s.reqTrace(r)
	var vecs [][]float32
	if tr := stageTrace(rt); tr != nil {
		vecs, err = store.LookupBatchTraced(idx, req.IDs, tr)
	} else {
		vecs, err = store.LookupBatch(idx, req.IDs)
	}
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.writeServingJSON(w, rt, http.StatusOK, batchResponse{Table: req.Table, Vectors: vecs})
}

// rankingRequest is one full recommendation request: the vector IDs to read
// from each table, by table index.
type rankingRequest struct {
	Lookups [][]uint32 `json:"lookups"`
}

// rankingResponse groups the returned vectors by table.
type rankingResponse struct {
	Tables [][][]float32 `json:"tables"`
}

func (s *Server) handleRequest(w http.ResponseWriter, r *http.Request) {
	var req rankingRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	total := 0
	for _, ids := range req.Lookups {
		total += len(ids)
	}
	if total > MaxBatchIDs {
		writeError(w, http.StatusBadRequest, "request with %d lookups exceeds the limit of %d (split the request)", total, MaxBatchIDs)
		return
	}
	rt := s.reqTrace(r)
	var out [][][]float32
	var err error
	if tr := stageTrace(rt); tr != nil {
		out, err = s.store(r).ServeRequestTraced(core.Request(req.Lookups), tr)
	} else {
		out, err = s.store(r).ServeRequest(core.Request(req.Lookups))
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeServingJSON(w, rt, http.StatusOK, rankingResponse{Tables: out})
}

// statsResponse bundles per-table, device, I/O scheduler, server, store,
// runtime and adaptation statistics.
type statsResponse struct {
	Tables     []core.TableStats    `json:"tables"`
	Device     deviceStats          `json:"device"`
	IOSched    ioschedStats         `json:"iosched"`
	Wire       wireStats            `json:"wire"`
	Server     serverStats          `json:"server"`
	Store      storeStats           `json:"store"`
	UpdateLog  core.UpdateLogStats  `json:"updateLog"`
	Runtime    metrics.RuntimeStats `json:"runtime"`
	Adaptation adaptationStats      `json:"adaptation"`
}

// ioschedStats is the JSON rendering of the async block I/O scheduler's
// counters (documented in the README's /v1/stats schema). All counters are
// zero when the scheduler is disabled.
type ioschedStats struct {
	// Enabled is false when the store reads the device inline (no
	// scheduler was configured).
	Enabled bool `json:"enabled"`
	// TargetQueueDepth, AccumulationWindowUS and Coalesce echo the
	// configuration; they are always emitted (no omitempty) because their
	// zero values — window 0, coalescing off — are meaningful settings an
	// operator A/B-testing the scheduler must be able to read back.
	TargetQueueDepth     int     `json:"targetQueueDepth"`
	AccumulationWindowUS float64 `json:"accumulationWindowUS"`
	Coalesce             bool    `json:"coalesce"`
	// DemandReads/PrefetchReads count submitted reads per priority class.
	DemandReads   int64 `json:"demandReads"`
	PrefetchReads int64 `json:"prefetchReads"`
	// DeviceReads counts reads that reached the device; Batches counts
	// device dispatches (AvgBatchSize = DeviceReads / Batches).
	DeviceReads  int64   `json:"deviceReads"`
	Batches      int64   `json:"batches"`
	AvgBatchSize float64 `json:"avgBatchSize"`
	MaxBatchSize int64   `json:"maxBatchSize"`
	// Coalesced counts reads served from another read's device I/O;
	// CoalescedLate is the subset that attached after issue.
	Coalesced     int64 `json:"coalesced"`
	CoalescedLate int64 `json:"coalescedLate"`
	// QueuedNow is the instantaneous submission-queue length; SimBusyUS the
	// accumulated simulated device busy time.
	QueuedNow int     `json:"queuedNow"`
	SimBusyUS float64 `json:"simBusyUS"`
	// QueueWait summarises per-read time spent queued before dispatch;
	// Service summarises per-dispatch simulated device time (its count is
	// Batches, not DeviceReads). Both in microseconds.
	QueueWait metrics.Snapshot `json:"queueWaitUS"`
	Service   metrics.Snapshot `json:"serviceUS"`
}

func renderIOSchedStats(store *core.Store) ioschedStats {
	st, ok := store.IOSchedStats()
	if !ok {
		return ioschedStats{}
	}
	return ioschedStats{
		Enabled:              true,
		TargetQueueDepth:     st.TargetQueueDepth,
		AccumulationWindowUS: st.WindowUS,
		Coalesce:             st.Coalesce,
		DemandReads:          st.DemandReads,
		PrefetchReads:        st.PrefetchReads,
		DeviceReads:          st.DeviceReads,
		Batches:              st.Batches,
		AvgBatchSize:         st.AvgBatchSize,
		MaxBatchSize:         st.MaxBatchSize,
		Coalesced:            st.Coalesced,
		CoalescedLate:        st.CoalescedLate,
		QueuedNow:            st.QueuedNow,
		SimBusyUS:            st.SimBusyUS,
		QueueWait:            st.QueueWait,
		Service:              st.Service,
	}
}

// storeStats describes the served store itself (as opposed to its tables or
// device): replication observability lives here.
type storeStats struct {
	// ReadOnly is true on a replica serving a bootstrapped snapshot.
	ReadOnly bool `json:"readOnly"`
	// SnapshotSeq identifies the servable image; replicas re-sync when the
	// primary's value passes theirs.
	SnapshotSeq uint64 `json:"snapshotSeq"`
	// Swaps counts SwapStore calls (replica re-syncs) since the server
	// started.
	Swaps int64 `json:"swaps"`
	// DataDir is the persistence directory ("" for the mem backend).
	DataDir string `json:"dataDir,omitempty"`
}

// adaptationStats is the JSON rendering of core.AdaptationStats (documented
// in the README's /v1/stats schema).
type adaptationStats struct {
	Enabled             bool                   `json:"enabled"`
	Background          bool                   `json:"background"`
	IntervalMS          int64                  `json:"intervalMS"`
	EpochsCompleted     int64                  `json:"epochsCompleted"`
	Relayouts           int64                  `json:"relayouts"`
	LastEpochDurationMS float64                `json:"lastEpochDurationMS"`
	LastRelayoutMS      float64                `json:"lastRelayoutDurationMS"`
	LastError           string                 `json:"lastError,omitempty"`
	Tables              []tableAdaptationStats `json:"tables,omitempty"`
}

type tableAdaptationStats struct {
	Name            string  `json:"name"`
	EpochLookups    int64   `json:"epochLookups"`
	EpochHits       int64   `json:"epochHits"`
	EpochHitRate    float64 `json:"epochHitRate"`
	CacheVectors    int     `json:"cacheVectors"`
	Threshold       uint32  `json:"threshold"`
	Prefetching     bool    `json:"prefetching"`
	RecordedQueries int     `json:"recordedQueries"`
	Relayouts       int64   `json:"relayouts"`
}

func renderAdaptationStats(st core.AdaptationStats) adaptationStats {
	out := adaptationStats{
		Enabled:             st.Enabled,
		Background:          st.Background,
		IntervalMS:          st.Interval.Milliseconds(),
		EpochsCompleted:     st.EpochsCompleted,
		Relayouts:           st.Relayouts,
		LastEpochDurationMS: float64(st.LastEpochDuration) / 1e6,
		LastRelayoutMS:      float64(st.LastRelayoutDuration) / 1e6,
		LastError:           st.LastError,
	}
	for _, ts := range st.Tables {
		out.Tables = append(out.Tables, tableAdaptationStats{
			Name:            ts.Name,
			EpochLookups:    ts.EpochLookups,
			EpochHits:       ts.EpochHits,
			EpochHitRate:    ts.EpochHitRate,
			CacheVectors:    ts.CacheVectors,
			Threshold:       ts.Threshold,
			Prefetching:     ts.Prefetching,
			RecordedQueries: ts.RecordedQueries,
			Relayouts:       ts.Relayouts,
		})
	}
	return out
}

// serverStats reports the HTTP layer's own counters. Serialize is the
// response-encoding stage of the serving handlers (lookup/batch/request),
// in microseconds.
type serverStats struct {
	Requests  int64            `json:"requests"`
	Errors    int64            `json:"errors"`
	InFlight  int64            `json:"inFlight"`
	Latency   metrics.Snapshot `json:"latencyUS"`
	Serialize metrics.Snapshot `json:"serializeUS"`
}

type deviceStats struct {
	BlocksRead    int64 `json:"blocksRead"`
	BlocksWritten int64 `json:"blocksWritten"`
	// PatchWrites counts journaled sub-block patch writes (single-vector
	// updates, which no longer rewrite whole blocks).
	PatchWrites   int64   `json:"patchWrites"`
	BytesRead     int64   `json:"bytesRead"`
	DriveWrites   float64 `json:"driveWrites"`
	EnduranceDWPD float64 `json:"enduranceDWPD"`
	// ReadsSubmitted/ReadBatches/AvgReadBatch/MaxQueueDepth/CoalescedReads
	// describe the read path's batching: how many read intents were served,
	// in how many device dispatches, at what realized queue depth, and how
	// many reads the I/O scheduler coalesced away entirely.
	ReadsSubmitted int64   `json:"readsSubmitted"`
	ReadBatches    int64   `json:"readBatches"`
	AvgReadBatch   float64 `json:"avgReadBatch"`
	MaxQueueDepth  int64   `json:"maxQueueDepth"`
	CoalescedReads int64   `json:"coalescedReads"`
	// Backend names the block store behind the device ("mem" or "file");
	// the journal/flush counters are non-zero for the file backend only.
	// DirectIO reports whether the block file is open with O_DIRECT (false
	// also when it was requested but the filesystem fell back to buffered
	// I/O). JournalBytesAppended / JournalGCRuns / RingUtilization describe
	// the ring journal: total bytes appended, head-advancing GC watermark
	// writes, and the live fraction of the ring region.
	Backend              string  `json:"backend"`
	DirectIO             bool    `json:"directIO"`
	JournalWrites        int64   `json:"journalWrites"`
	JournalBytesAppended int64   `json:"journalBytesAppended"`
	JournalGCRuns        int64   `json:"journalGCRuns"`
	RingUtilization      float64 `json:"ringUtilization"`
	DataWrites           int64   `json:"dataWrites"`
	FailedWriteRecords   int64   `json:"failedWriteRecords"`
	Flushes              int64   `json:"flushes"`
	RecoveredRecords     int64   `json:"recoveredRecords"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	store := s.store(r)
	dev := store.DeviceStats()
	writeJSON(w, http.StatusOK, statsResponse{
		Tables: store.Stats(),
		Device: deviceStats{
			BlocksRead:           dev.BlocksRead,
			BlocksWritten:        dev.BlocksWritten,
			PatchWrites:          dev.PatchWrites,
			BytesRead:            dev.BytesRead,
			DriveWrites:          dev.DriveWrites,
			EnduranceDWPD:        dev.EnduranceDWPD,
			ReadsSubmitted:       dev.ReadsSubmitted,
			ReadBatches:          dev.ReadBatches,
			AvgReadBatch:         dev.AvgReadBatch,
			MaxQueueDepth:        dev.MaxQueueDepth,
			CoalescedReads:       dev.CoalescedReads,
			Backend:              dev.Store.Backend,
			DirectIO:             dev.Store.DirectIO,
			JournalWrites:        dev.Store.JournalWrites,
			JournalBytesAppended: dev.Store.JournalBytesAppended,
			JournalGCRuns:        dev.Store.JournalGCRuns,
			RingUtilization:      dev.Store.RingUtilization,
			DataWrites:           dev.Store.DataWrites,
			FailedWriteRecords:   dev.Store.FailedWriteRecords,
			Flushes:              dev.Store.Flushes,
			RecoveredRecords:     dev.Store.RecoveredRecords,
		},
		IOSched: renderIOSchedStats(store),
		Wire:    s.renderWireStats(),
		Server: serverStats{
			Requests:  s.requests.Value(),
			Errors:    s.errors.Value(),
			InFlight:  s.inflight.Value(),
			Latency:   s.latency.Snapshot(),
			Serialize: s.serialize.Snapshot(),
		},
		Store: storeStats{
			ReadOnly:    store.ReadOnly(),
			SnapshotSeq: store.SnapshotSeq(),
			Swaps:       s.swaps.Value(),
			DataDir:     store.DataDir(),
		},
		UpdateLog:  store.UpdateLogStats(),
		Runtime:    metrics.ReadRuntime(s.start),
		Adaptation: renderAdaptationStats(store.AdaptationStats()),
	})
}

// adaptRequest controls the adaptation engine.
type adaptRequest struct {
	// Action: "start" (install recorders and, with IntervalMS > 0, the
	// background loop), "stop", or "epoch" (run one epoch synchronously and
	// return its report).
	Action     string `json:"action"`
	IntervalMS int64  `json:"intervalMS"`
	// Optional tuning knobs for "start"; zero values use the engine
	// defaults.
	MinQueries          int    `json:"minQueries"`
	RelayoutEvery       int    `json:"relayoutEvery"`
	RelayoutBlockBudget int    `json:"relayoutBlockBudget"`
	RelayoutStrategy    string `json:"relayoutStrategy"`
	SampleEvery         int    `json:"sampleEvery"`
}

func (s *Server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	var req adaptRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	store := s.store(r)
	switch req.Action {
	case "start":
		err := store.StartAdaptation(core.AdaptOptions{
			Interval:            time.Duration(req.IntervalMS) * time.Millisecond,
			MinQueries:          req.MinQueries,
			RelayoutEvery:       req.RelayoutEvery,
			RelayoutBlockBudget: req.RelayoutBlockBudget,
			RelayoutStrategy:    req.RelayoutStrategy,
			SampleEvery:         req.SampleEvery,
		})
		if err != nil {
			// Engine-already-running is a conflict, a read-only store
			// (replica) is forbidden; anything else is an
			// options-validation problem the client must fix.
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, core.ErrAdaptationRunning):
				status = http.StatusConflict
			case errors.Is(err, core.ErrReadOnly):
				status = http.StatusForbidden
			}
			writeError(w, status, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, renderAdaptationStats(store.AdaptationStats()))
	case "stop":
		store.StopAdaptation()
		writeJSON(w, http.StatusOK, renderAdaptationStats(store.AdaptationStats()))
	case "epoch":
		rep, err := store.AdaptNow()
		if err != nil {
			// "Not started" is the caller's sequencing problem; anything
			// else (persist I/O, tuning, migration failures) is ours.
			status := http.StatusInternalServerError
			if errors.Is(err, core.ErrAdaptationNotStarted) {
				status = http.StatusConflict
			}
			writeError(w, status, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	default:
		writeError(w, http.StatusBadRequest, "unknown action %q (want start, stop or epoch)", req.Action)
	}
}
