// Package server exposes a Bandana store over HTTP.
//
// In production, embedding stores sit behind an RPC layer that the ranking
// tier calls once per request. This package provides a minimal JSON/HTTP
// equivalent so the store can be exercised end to end (and load-tested) as a
// network service:
//
//	GET  /healthz                        liveness probe
//	GET  /v1/tables                      table inventory
//	GET  /v1/lookup?table=T&id=N         single embedding vector
//	POST /v1/batch                       {"table": "...", "ids": [...]}
//	POST /v1/request                     {"lookups": [[...], [...], ...]} (one ID list per table)
//	GET  /v1/stats                       per-table serving stats + NVM device stats + server stats + adaptation stats
//	POST /v1/adapt                       {"action": "start"|"stop"|"epoch", ...} adaptation control
//
// net/http serves each request on its own goroutine; the store's sharded
// caches let those goroutines proceed in parallel, so the service scales
// with GOMAXPROCS instead of serializing lookups behind a per-table lock.
// The server tracks request count, error count, in-flight requests and
// request latency, reported under "server" in /v1/stats.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"bandana/internal/core"
	"bandana/internal/metrics"
)

// Server wraps a core.Store with HTTP handlers.
type Server struct {
	store *core.Store
	mux   *http.ServeMux

	requests metrics.Counter
	errors   metrics.Counter
	inflight metrics.Gauge
	latency  *metrics.Histogram
}

// New creates a Server around an opened (and usually trained) store.
func New(store *core.Store) *Server {
	s := &Server{
		store:   store,
		mux:     http.NewServeMux(),
		latency: metrics.NewLatencyHistogram(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/tables", s.handleTables)
	s.mux.HandleFunc("GET /v1/lookup", s.handleLookup)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/request", s.handleRequest)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/adapt", s.handleAdapt)
	return s
}

// Handler returns the HTTP handler (for use with http.Server or httptest).
// Every request is instrumented with the server's request metrics.
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// statusRecorder captures the response status for error accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// instrument wraps next with request counting, in-flight tracking and
// latency measurement.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.requests.Inc()
		s.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		// Deferred so a panicking handler (net/http recovers it per
		// connection) cannot leak the in-flight count or drop the
		// request from the latency/error metrics.
		defer func() {
			s.inflight.Add(-1)
			if rec.status >= 400 {
				s.errors.Inc()
			}
			s.latency.ObserveDuration(time.Since(start))
		}()
		next.ServeHTTP(rec, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// tableInfo describes one table in the inventory response.
type tableInfo struct {
	Index        int    `json:"index"`
	Name         string `json:"name"`
	CacheVectors int    `json:"cacheVectors"`
	Prefetching  bool   `json:"prefetching"`
	Threshold    uint32 `json:"threshold"`
}

func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	stats := s.store.Stats()
	out := make([]tableInfo, len(stats))
	for i, st := range stats {
		out[i] = tableInfo{
			Index:        i,
			Name:         st.Name,
			CacheVectors: st.CacheVectors,
			Prefetching:  st.Prefetching,
			Threshold:    st.Threshold,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// lookupResponse carries one embedding vector.
type lookupResponse struct {
	Table  string    `json:"table"`
	ID     uint32    `json:"id"`
	Vector []float32 `json:"vector"`
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	tableName := r.URL.Query().Get("table")
	idStr := r.URL.Query().Get("id")
	if tableName == "" || idStr == "" {
		writeError(w, http.StatusBadRequest, "query parameters 'table' and 'id' are required")
		return
	}
	id, err := strconv.ParseUint(idStr, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid id %q", idStr)
		return
	}
	vec, err := s.store.LookupByName(tableName, uint32(id))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, lookupResponse{Table: tableName, ID: uint32(id), Vector: vec})
}

// batchRequest asks for several vectors from one table.
type batchRequest struct {
	Table string   `json:"table"`
	IDs   []uint32 `json:"ids"`
}

// batchResponse carries the vectors of a batch lookup.
type batchResponse struct {
	Table   string      `json:"table"`
	Vectors [][]float32 `json:"vectors"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if req.Table == "" || len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, "'table' and non-empty 'ids' are required")
		return
	}
	idx, err := s.store.TableIndex(req.Table)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	vecs, err := s.store.LookupBatch(idx, req.IDs)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Table: req.Table, Vectors: vecs})
}

// rankingRequest is one full recommendation request: the vector IDs to read
// from each table, by table index.
type rankingRequest struct {
	Lookups [][]uint32 `json:"lookups"`
}

// rankingResponse groups the returned vectors by table.
type rankingResponse struct {
	Tables [][][]float32 `json:"tables"`
}

func (s *Server) handleRequest(w http.ResponseWriter, r *http.Request) {
	var req rankingRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	out, err := s.store.ServeRequest(core.Request(req.Lookups))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rankingResponse{Tables: out})
}

// statsResponse bundles per-table, device, server and adaptation statistics.
type statsResponse struct {
	Tables     []core.TableStats `json:"tables"`
	Device     deviceStats       `json:"device"`
	Server     serverStats       `json:"server"`
	Adaptation adaptationStats   `json:"adaptation"`
}

// adaptationStats is the JSON rendering of core.AdaptationStats (documented
// in the README's /v1/stats schema).
type adaptationStats struct {
	Enabled             bool                   `json:"enabled"`
	Background          bool                   `json:"background"`
	IntervalMS          int64                  `json:"intervalMS"`
	EpochsCompleted     int64                  `json:"epochsCompleted"`
	Relayouts           int64                  `json:"relayouts"`
	LastEpochDurationMS float64                `json:"lastEpochDurationMS"`
	LastRelayoutMS      float64                `json:"lastRelayoutDurationMS"`
	LastError           string                 `json:"lastError,omitempty"`
	Tables              []tableAdaptationStats `json:"tables,omitempty"`
}

type tableAdaptationStats struct {
	Name            string  `json:"name"`
	EpochLookups    int64   `json:"epochLookups"`
	EpochHits       int64   `json:"epochHits"`
	EpochHitRate    float64 `json:"epochHitRate"`
	CacheVectors    int     `json:"cacheVectors"`
	Threshold       uint32  `json:"threshold"`
	Prefetching     bool    `json:"prefetching"`
	RecordedQueries int     `json:"recordedQueries"`
	Relayouts       int64   `json:"relayouts"`
}

func renderAdaptationStats(st core.AdaptationStats) adaptationStats {
	out := adaptationStats{
		Enabled:             st.Enabled,
		Background:          st.Background,
		IntervalMS:          st.Interval.Milliseconds(),
		EpochsCompleted:     st.EpochsCompleted,
		Relayouts:           st.Relayouts,
		LastEpochDurationMS: float64(st.LastEpochDuration) / 1e6,
		LastRelayoutMS:      float64(st.LastRelayoutDuration) / 1e6,
		LastError:           st.LastError,
	}
	for _, ts := range st.Tables {
		out.Tables = append(out.Tables, tableAdaptationStats{
			Name:            ts.Name,
			EpochLookups:    ts.EpochLookups,
			EpochHits:       ts.EpochHits,
			EpochHitRate:    ts.EpochHitRate,
			CacheVectors:    ts.CacheVectors,
			Threshold:       ts.Threshold,
			Prefetching:     ts.Prefetching,
			RecordedQueries: ts.RecordedQueries,
			Relayouts:       ts.Relayouts,
		})
	}
	return out
}

// serverStats reports the HTTP layer's own counters.
type serverStats struct {
	Requests int64            `json:"requests"`
	Errors   int64            `json:"errors"`
	InFlight int64            `json:"inFlight"`
	Latency  metrics.Snapshot `json:"latencyUS"`
}

type deviceStats struct {
	BlocksRead    int64   `json:"blocksRead"`
	BlocksWritten int64   `json:"blocksWritten"`
	BytesRead     int64   `json:"bytesRead"`
	DriveWrites   float64 `json:"driveWrites"`
	EnduranceDWPD float64 `json:"enduranceDWPD"`
	// Backend names the block store behind the device ("mem" or "file");
	// the journal/flush counters are non-zero for the file backend only.
	Backend          string `json:"backend"`
	JournalWrites    int64  `json:"journalWrites"`
	Flushes          int64  `json:"flushes"`
	RecoveredRecords int64  `json:"recoveredRecords"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	dev := s.store.DeviceStats()
	writeJSON(w, http.StatusOK, statsResponse{
		Tables: s.store.Stats(),
		Device: deviceStats{
			BlocksRead:       dev.BlocksRead,
			BlocksWritten:    dev.BlocksWritten,
			BytesRead:        dev.BytesRead,
			DriveWrites:      dev.DriveWrites,
			EnduranceDWPD:    dev.EnduranceDWPD,
			Backend:          dev.Store.Backend,
			JournalWrites:    dev.Store.JournalWrites,
			Flushes:          dev.Store.Flushes,
			RecoveredRecords: dev.Store.RecoveredRecords,
		},
		Server: serverStats{
			Requests: s.requests.Value(),
			Errors:   s.errors.Value(),
			InFlight: s.inflight.Value(),
			Latency:  s.latency.Snapshot(),
		},
		Adaptation: renderAdaptationStats(s.store.AdaptationStats()),
	})
}

// adaptRequest controls the adaptation engine.
type adaptRequest struct {
	// Action: "start" (install recorders and, with IntervalMS > 0, the
	// background loop), "stop", or "epoch" (run one epoch synchronously and
	// return its report).
	Action     string `json:"action"`
	IntervalMS int64  `json:"intervalMS"`
	// Optional tuning knobs for "start"; zero values use the engine
	// defaults.
	MinQueries          int    `json:"minQueries"`
	RelayoutEvery       int    `json:"relayoutEvery"`
	RelayoutBlockBudget int    `json:"relayoutBlockBudget"`
	RelayoutStrategy    string `json:"relayoutStrategy"`
	SampleEvery         int    `json:"sampleEvery"`
}

func (s *Server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	var req adaptRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	switch req.Action {
	case "start":
		err := s.store.StartAdaptation(core.AdaptOptions{
			Interval:            time.Duration(req.IntervalMS) * time.Millisecond,
			MinQueries:          req.MinQueries,
			RelayoutEvery:       req.RelayoutEvery,
			RelayoutBlockBudget: req.RelayoutBlockBudget,
			RelayoutStrategy:    req.RelayoutStrategy,
			SampleEvery:         req.SampleEvery,
		})
		if err != nil {
			// Engine-already-running is a conflict; anything else is an
			// options-validation problem the client must fix.
			status := http.StatusBadRequest
			if errors.Is(err, core.ErrAdaptationRunning) {
				status = http.StatusConflict
			}
			writeError(w, status, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, renderAdaptationStats(s.store.AdaptationStats()))
	case "stop":
		s.store.StopAdaptation()
		writeJSON(w, http.StatusOK, renderAdaptationStats(s.store.AdaptationStats()))
	case "epoch":
		rep, err := s.store.AdaptNow()
		if err != nil {
			// "Not started" is the caller's sequencing problem; anything
			// else (persist I/O, tuning, migration failures) is ours.
			status := http.StatusInternalServerError
			if errors.Is(err, core.ErrAdaptationNotStarted) {
				status = http.StatusConflict
			}
			writeError(w, status, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	default:
		writeError(w, http.StatusBadRequest, "unknown action %q (want start, stop or epoch)", req.Action)
	}
}
