// Package server exposes a Bandana store over HTTP.
//
// In production, embedding stores sit behind an RPC layer that the ranking
// tier calls once per request. This package provides a minimal JSON/HTTP
// equivalent so the store can be exercised end to end (and load-tested) as a
// network service:
//
//	GET  /healthz                        liveness probe
//	GET  /v1/tables                      table inventory
//	GET  /v1/lookup?table=T&id=N         single embedding vector
//	POST /v1/batch                       {"table": "...", "ids": [...]}
//	POST /v1/request                     {"lookups": [[...], [...], ...]} (one ID list per table)
//	GET  /v1/stats                       per-table serving stats + NVM device stats
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"bandana/internal/core"
)

// Server wraps a core.Store with HTTP handlers.
type Server struct {
	store *core.Store
	mux   *http.ServeMux
}

// New creates a Server around an opened (and usually trained) store.
func New(store *core.Store) *Server {
	s := &Server{store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/tables", s.handleTables)
	s.mux.HandleFunc("GET /v1/lookup", s.handleLookup)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/request", s.handleRequest)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// Handler returns the HTTP handler (for use with http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// tableInfo describes one table in the inventory response.
type tableInfo struct {
	Index        int    `json:"index"`
	Name         string `json:"name"`
	CacheVectors int    `json:"cacheVectors"`
	Prefetching  bool   `json:"prefetching"`
	Threshold    uint32 `json:"threshold"`
}

func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	stats := s.store.Stats()
	out := make([]tableInfo, len(stats))
	for i, st := range stats {
		out[i] = tableInfo{
			Index:        i,
			Name:         st.Name,
			CacheVectors: st.CacheVectors,
			Prefetching:  st.Prefetching,
			Threshold:    st.Threshold,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// lookupResponse carries one embedding vector.
type lookupResponse struct {
	Table  string    `json:"table"`
	ID     uint32    `json:"id"`
	Vector []float32 `json:"vector"`
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	tableName := r.URL.Query().Get("table")
	idStr := r.URL.Query().Get("id")
	if tableName == "" || idStr == "" {
		writeError(w, http.StatusBadRequest, "query parameters 'table' and 'id' are required")
		return
	}
	id, err := strconv.ParseUint(idStr, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid id %q", idStr)
		return
	}
	vec, err := s.store.LookupByName(tableName, uint32(id))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, lookupResponse{Table: tableName, ID: uint32(id), Vector: vec})
}

// batchRequest asks for several vectors from one table.
type batchRequest struct {
	Table string   `json:"table"`
	IDs   []uint32 `json:"ids"`
}

// batchResponse carries the vectors of a batch lookup.
type batchResponse struct {
	Table   string      `json:"table"`
	Vectors [][]float32 `json:"vectors"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if req.Table == "" || len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, "'table' and non-empty 'ids' are required")
		return
	}
	idx, err := s.store.TableIndex(req.Table)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	vecs, err := s.store.LookupBatch(idx, req.IDs)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Table: req.Table, Vectors: vecs})
}

// rankingRequest is one full recommendation request: the vector IDs to read
// from each table, by table index.
type rankingRequest struct {
	Lookups [][]uint32 `json:"lookups"`
}

// rankingResponse groups the returned vectors by table.
type rankingResponse struct {
	Tables [][][]float32 `json:"tables"`
}

func (s *Server) handleRequest(w http.ResponseWriter, r *http.Request) {
	var req rankingRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	out, err := s.store.ServeRequest(core.Request(req.Lookups))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rankingResponse{Tables: out})
}

// statsResponse bundles per-table and device statistics.
type statsResponse struct {
	Tables []core.TableStats `json:"tables"`
	Device deviceStats       `json:"device"`
}

type deviceStats struct {
	BlocksRead    int64   `json:"blocksRead"`
	BlocksWritten int64   `json:"blocksWritten"`
	BytesRead     int64   `json:"bytesRead"`
	DriveWrites   float64 `json:"driveWrites"`
	EnduranceDWPD float64 `json:"enduranceDWPD"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	dev := s.store.DeviceStats()
	writeJSON(w, http.StatusOK, statsResponse{
		Tables: s.store.Stats(),
		Device: deviceStats{
			BlocksRead:    dev.BlocksRead,
			BlocksWritten: dev.BlocksWritten,
			BytesRead:     dev.BytesRead,
			DriveWrites:   dev.DriveWrites,
			EnduranceDWPD: dev.EnduranceDWPD,
		},
	})
}
