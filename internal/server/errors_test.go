package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"bandana/internal/core"
	"bandana/internal/table"
)

// TestHandlerErrorPaths is the table-driven sweep of every way a client can
// hold an endpoint wrong: malformed JSON bodies, wrong methods, out-of-range
// tables and ids, oversized batches.
func TestHandlerErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t)
	client := ts.Client()

	bigIDs := make([]uint32, MaxBatchIDs+1)
	bigBody, _ := json.Marshal(map[string]any{"table": "tA", "ids": bigIDs})
	bigLookups, _ := json.Marshal(map[string]any{"lookups": [][]uint32{bigIDs}})

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantSubstr string
	}{
		// /v1/lookup
		{"lookup wrong method", "POST", "/v1/lookup?table=tA&id=1", "", http.StatusMethodNotAllowed, ""},
		{"lookup missing params", "GET", "/v1/lookup", "", http.StatusBadRequest, "required"},
		{"lookup bad id", "GET", "/v1/lookup?table=tA&id=banana", "", http.StatusBadRequest, "invalid id"},
		{"lookup negative id", "GET", "/v1/lookup?table=tA&id=-4", "", http.StatusBadRequest, "invalid id"},
		{"lookup unknown table", "GET", "/v1/lookup?table=nope&id=1", "", http.StatusNotFound, "unknown table"},
		{"lookup out-of-range id", "GET", "/v1/lookup?table=tA&id=999999", "", http.StatusNotFound, ""},

		// /v1/batch
		{"batch wrong method", "GET", "/v1/batch", "", http.StatusMethodNotAllowed, ""},
		{"batch malformed json", "POST", "/v1/batch", "{\"table\": ", http.StatusBadRequest, "invalid JSON"},
		{"batch json wrong type", "POST", "/v1/batch", `{"table":"tA","ids":"1,2,3"}`, http.StatusBadRequest, "invalid JSON"},
		{"batch empty ids", "POST", "/v1/batch", `{"table":"tA","ids":[]}`, http.StatusBadRequest, "required"},
		{"batch missing table", "POST", "/v1/batch", `{"ids":[1,2]}`, http.StatusBadRequest, "required"},
		{"batch unknown table", "POST", "/v1/batch", `{"table":"nope","ids":[1]}`, http.StatusNotFound, "unknown table"},
		{"batch out-of-range id", "POST", "/v1/batch", `{"table":"tA","ids":[1,999999]}`, http.StatusNotFound, ""},
		{"batch oversized", "POST", "/v1/batch", string(bigBody), http.StatusBadRequest, "exceeds the limit"},

		// /v1/request
		{"request malformed json", "POST", "/v1/request", "[", http.StatusBadRequest, "invalid JSON"},
		{"request too many tables", "POST", "/v1/request", `{"lookups":[[1],[1],[1]]}`, http.StatusBadRequest, "tables"},
		{"request oversized", "POST", "/v1/request", string(bigLookups), http.StatusBadRequest, "exceeds the limit"},

		// /v1/adapt
		{"adapt wrong method", "GET", "/v1/adapt", "", http.StatusMethodNotAllowed, ""},
		{"adapt malformed json", "POST", "/v1/adapt", "{", http.StatusBadRequest, "invalid JSON"},
		{"adapt unknown action", "POST", "/v1/adapt", `{"action":"reticulate"}`, http.StatusBadRequest, "unknown action"},
		{"adapt epoch before start", "POST", "/v1/adapt", `{"action":"epoch"}`, http.StatusConflict, "not started"},

		// /v1/replica/snapshot
		{"snapshot missing part", "GET", "/v1/replica/snapshot", "", http.StatusBadRequest, "unknown part"},
		{"snapshot bad part", "GET", "/v1/replica/snapshot?part=journal", "", http.StatusBadRequest, "unknown part"},
		{"snapshot bad offset", "GET", "/v1/replica/snapshot?part=blocks&offset=-3", "", http.StatusBadRequest, "invalid offset"},
		{"snapshot bad limit", "GET", "/v1/replica/snapshot?part=blocks&limit=0", "", http.StatusBadRequest, "invalid limit"},
		{"snapshot bad seq", "GET", "/v1/replica/snapshot?part=blocks&seq=banana", "", http.StatusBadRequest, "invalid seq"},
		{"snapshot stale seq", "GET", "/v1/replica/snapshot?part=blocks&seq=999", "", http.StatusConflict, "advanced"},
		{"snapshot offset beyond end", "GET", "/v1/replica/snapshot?part=state&offset=99999999", "", http.StatusRequestedRangeNotSatisfiable, "beyond"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body: %s)", resp.StatusCode, tc.wantStatus, raw)
			}
			if tc.wantSubstr != "" && !strings.Contains(string(raw), tc.wantSubstr) {
				t.Fatalf("body %q does not mention %q", raw, tc.wantSubstr)
			}
		})
	}
}

// TestStatsRuntimeSection pins the new runtime and store sections of
// /v1/stats.
func TestStatsRuntimeSection(t *testing.T) {
	ts, _ := newTestServer(t)
	var out struct {
		Runtime struct {
			Goroutines    int     `json:"goroutines"`
			HeapBytes     uint64  `json:"heapBytes"`
			UptimeSeconds float64 `json:"uptimeSeconds"`
		} `json:"runtime"`
		Store struct {
			ReadOnly    bool   `json:"readOnly"`
			SnapshotSeq uint64 `json:"snapshotSeq"`
		} `json:"store"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Runtime.Goroutines <= 0 || out.Runtime.HeapBytes == 0 {
		t.Fatalf("runtime section not populated: %+v", out.Runtime)
	}
	if out.Store.SnapshotSeq == 0 {
		t.Fatalf("store section not populated: %+v", out.Store)
	}
}

// TestReplicaSnapshotEndpointStreamsChunks exercises the chunked download
// path end to end against the handler: manifest, state, then the block
// image in small chunks, CRC-verified and importable.
func TestReplicaSnapshotEndpointStreamsChunks(t *testing.T) {
	ts, _ := newTestServer(t)

	fetch := func(query string) (*http.Response, []byte) {
		resp, err := http.Get(ts.URL + "/v1/replica/snapshot?" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s (%s)", query, resp.Status, raw)
		}
		return resp, raw
	}

	_, manifest := fetch("part=manifest")
	_, state := fetch("part=state")

	first, chunk0 := fetch("part=blocks&offset=0&limit=4096")
	total := first.Header.Get(HeaderPartLen)
	if total == "" {
		t.Fatal("missing part length header")
	}
	var totalLen int
	fmt.Sscanf(total, "%d", &totalLen)
	if totalLen <= len(chunk0) {
		t.Fatalf("image of %d bytes should need several 4096-byte chunks", totalLen)
	}
	blocks := append([]byte(nil), chunk0...)
	for len(blocks) < totalLen {
		_, chunk := fetch(fmt.Sprintf("part=blocks&offset=%d&limit=4096", len(blocks)))
		if len(chunk) == 0 {
			t.Fatal("empty chunk before end of image")
		}
		blocks = append(blocks, chunk...)
	}
	var crc uint32
	fmt.Sscanf(first.Header.Get(HeaderPartCRC), "%x", &crc)

	dir := t.TempDir() + "/import"
	err := core.ImportSnapshot(dir, &core.Snapshot{
		Seq: 1, Manifest: manifest, State: state, Blocks: blocks, BlocksCRC: crc,
	}, 0)
	if err != nil {
		t.Fatalf("chunk-assembled snapshot failed to import: %v", err)
	}
	rep, err := core.Open(core.Config{Backend: core.BackendFile, DataDir: dir, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, err := rep.Lookup(0, 5); err != nil {
		t.Fatal(err)
	}
}

// TestSwapStoreDrainsInFlightRequests swaps the store under concurrent
// traffic: no request may fail, and the swapped-out store must be closed
// only after its requests drain (the race detector guards the rest).
func TestSwapStoreDrainsInFlightRequests(t *testing.T) {
	tables := make([]*table.Table, 1)
	g := table.Generate("tA", table.GenerateOptions{NumVectors: 1024, Dim: 16, NumClusters: 8, Seed: 1})
	tables[0] = g.Table
	store1, err := core.Open(core.Config{Tables: tables, DRAMBudgetVectors: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	t.Cleanup(func() { srv.CurrentStore().Close() })

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var failures int
	var mu sync.Mutex
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"table": "tA", "ids": []uint32{1, 2, 3, 500}})
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					mu.Lock()
					failures++
					mu.Unlock()
					return
				}
			}
		}()
	}

	for i := 0; i < 5; i++ {
		g := table.Generate("tA", table.GenerateOptions{NumVectors: 1024, Dim: 16, NumClusters: 8, Seed: int64(i + 2)})
		next, err := core.Open(core.Config{Tables: []*table.Table{g.Table}, DRAMBudgetVectors: 64, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv.SwapStore(next)
	}
	close(stop)
	wg.Wait()
	if failures != 0 {
		t.Fatalf("%d requests failed across store swaps", failures)
	}

	var stats struct {
		Store struct {
			Swaps int64 `json:"swaps"`
		} `json:"store"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Store.Swaps != 5 {
		t.Fatalf("swap counter = %d, want 5", stats.Store.Swaps)
	}
}
