package server

import (
	"errors"
	"net"

	"bandana/internal/core"
	"bandana/internal/wire"
)

// ServeWire serves the store over bwp/1 (the binary wire protocol) on ln,
// alongside the HTTP API. Lookups travel as raw fp16 — no JSON, no float64
// round-trip — straight from the store's raw read view. It blocks until ln
// fails (net.ErrClosed after the caller closes it).
//
// The wire path shares the HTTP path's store-swap discipline: every request
// pins the store it started with, so a concurrent SwapStore cannot close a
// store out from under a frame being served.
func (s *Server) ServeWire(ln net.Listener) error {
	s.wireEnabled.Store(true)
	return s.wire.Serve(ln)
}

// WireServer exposes the underlying wire server (for tests and for serving
// an already-accepted connection).
func (s *Server) WireServer() *wire.Server { return s.wire }

// wireBackend adapts the Server (with its storeRef pinning) to wire.Backend.
type wireBackend struct{ s *Server }

func (b wireBackend) LookupBatchRaw(table string, ids []uint32) (int, [][]byte, func(), error) {
	ref := b.s.acquireRef()
	defer ref.release()
	store := ref.store
	idx, err := store.TableIndex(table)
	if err != nil {
		return 0, nil, nil, &wire.Error{Code: wire.CodeNotFound, Msg: err.Error()}
	}
	dim, err := store.TableDim(idx)
	if err != nil {
		return 0, nil, nil, &wire.Error{Code: wire.CodeInternal, Msg: err.Error()}
	}
	// The leased variant hands the wire server zero-copy views into the
	// cache arenas; the server releases after serializing the frame.
	vecs, release, err := store.LookupBatchRawLeased(idx, ids)
	if err != nil {
		// Lookup failures are id-range problems: the client asked for
		// something the table does not hold.
		return 0, nil, nil, &wire.Error{Code: wire.CodeNotFound, Msg: err.Error()}
	}
	return dim, vecs, release, nil
}

func (b wireBackend) UpdateRaw(table string, id uint32, raw []byte) error {
	ref := b.s.acquireRef()
	defer ref.release()
	store := ref.store
	idx, err := store.TableIndex(table)
	if err != nil {
		return &wire.Error{Code: wire.CodeNotFound, Msg: err.Error()}
	}
	if err := store.UpdateVectorRaw(idx, id, raw); err != nil {
		code := wire.CodeBadRequest
		if errors.Is(err, core.ErrReadOnly) {
			code = wire.CodeInternal
		}
		return &wire.Error{Code: code, Msg: err.Error()}
	}
	return nil
}

// wireStats is the JSON rendering of the wire listener's counters under
// "wire" in /v1/stats. Enabled is false until ServeWire is called. Ops holds
// the per-opcode breakdown (requests, error frames, handle latency) for each
// opcode the listener has seen.
type wireStats struct {
	Enabled     bool                    `json:"enabled"`
	ConnsTotal  int64                   `json:"connsTotal"`
	ConnsActive int64                   `json:"connsActive"`
	Requests    int64                   `json:"requests"`
	Errors      int64                   `json:"errors"`
	Ops         map[string]wire.OpStats `json:"ops,omitempty"`
}

func (s *Server) renderWireStats() wireStats {
	st := s.wire.Stats()
	return wireStats{
		Enabled:     s.wireEnabled.Load(),
		ConnsTotal:  st.ConnsTotal,
		ConnsActive: st.ConnsActive,
		Requests:    st.Requests,
		Errors:      st.Errors,
		Ops:         st.Ops,
	}
}
