package server

import (
	"log"
	"net/http"
	"time"

	"bandana/internal/core"
	"bandana/internal/iosched"
	"bandana/internal/metrics"
)

// SetSlowRequestThreshold arms (or, with 0, disarms) slow-request logging:
// every request slower than d emits one structured log line with the full
// per-stage breakdown. Emission is limited to slowLogRate lines per second;
// beyond that, slow requests are counted and the next emitted line carries
// the suppressed count, so an overloaded server logs a sample instead of
// amplifying its own overload. Safe to call at any time.
func (s *Server) SetSlowRequestThreshold(d time.Duration) {
	s.slowNS.Store(int64(d))
}

// slowLogRate is the sustained slow-request log lines per second;
// slowLogBurst is the bucket size (how many may emit back to back).
const (
	slowLogRate  = 10
	slowLogBurst = 20
)

// slowLogAllow is a token-bucket admission check for one slow-request line.
func (s *Server) slowLogAllow(now time.Time) bool {
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	if s.slowLast.IsZero() {
		s.slowTokens = slowLogBurst
	} else {
		s.slowTokens += now.Sub(s.slowLast).Seconds() * slowLogRate
		if s.slowTokens > slowLogBurst {
			s.slowTokens = slowLogBurst
		}
	}
	s.slowLast = now
	if s.slowTokens < 1 {
		return false
	}
	s.slowTokens--
	return true
}

// logSlowRequest emits one line for a request that crossed the slow
// threshold. rt may be nil (the threshold was armed mid-request); the stage
// fields then read as zero.
func (s *Server) logSlowRequest(r *http.Request, status int, elapsed time.Duration, rt *requestTrace) {
	if !s.slowLogAllow(time.Now()) {
		s.slowSuppressed.Add(1)
		return
	}
	suppressed := s.slowSuppressed.Swap(0)
	var tr requestTrace
	if rt != nil {
		tr = *rt
	}
	log.Printf("slow-request method=%s path=%s status=%d dur_ms=%.2f"+
		" probe_us=%.1f queue_wait_us=%.1f service_us=%.1f decode_us=%.1f serialize_us=%.1f"+
		" lookups=%d hits=%d misses=%d block_reads=%d suppressed=%d",
		r.Method, r.URL.Path, status, float64(elapsed)/1e6,
		tr.ProbeUS, tr.QueueWaitUS, tr.ServiceUS, tr.DecodeUS, tr.SerializeUS,
		tr.Lookups, tr.Hits, tr.Misses, tr.BlockReads, suppressed)
}

// handleMetrics serves the Prometheus text exposition. The registry is built
// on first scrape; its gather closures read the *current* store (and wire
// listener) at scrape time, so metrics follow a SwapStore.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.registryOnce.Do(func() { s.registry = s.buildRegistry() })
	s.registry.Handler().ServeHTTP(w, r)
}

// scrapeStore pins and returns the currently served store for one gather
// call. The ref is released immediately: gather functions read counters, and
// the counters' owners outlive the read (a swapped-out store is closed only
// after its in-flight requests drain, and a scrape holds no store across
// gathers).
func (s *Server) scrapeStore() *core.Store {
	ref := s.acquireRef()
	defer ref.release()
	return ref.store
}

// buildRegistry wires every stats section into one Prometheus registry.
// Naming follows prometheus conventions: bandana_<subsystem>_<name>_<unit>,
// cumulative counters end in _total, histograms render as summaries with
// quantile/0.5/0.9/0.99/0.999 plus _sum/_count.
func (s *Server) buildRegistry() *metrics.Registry {
	r := metrics.NewRegistry()

	// HTTP layer.
	r.Register("bandana_http_requests_total", "counter", "HTTP requests served.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.requests.Value()))
	})
	r.Register("bandana_http_errors_total", "counter", "HTTP responses with status >= 400.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.errors.Value()))
	})
	r.Register("bandana_http_inflight_requests", "gauge", "HTTP requests currently being served.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.inflight.Value()))
	})
	r.Register("bandana_http_request_duration_us", "summary", "End-to-end HTTP request latency (microseconds).", func() []metrics.Sample {
		return metrics.SummarySamples(nil, s.latency.Snapshot())
	})

	// Stage decomposition: per-table store stages plus the server-side
	// serialize stage. One family; the stage label selects the component.
	r.Register("bandana_stage_duration_us", "summary",
		"Per-stage serving latency decomposition (microseconds): cache_probe (sampled DRAM probe), queue_wait (I/O scheduler queue), device_service (NVM block read), decode (fp16 decode), serialize (JSON response encode).",
		func() []metrics.Sample {
			var out []metrics.Sample
			for _, ts := range s.scrapeStore().Stats() {
				out = append(out, metrics.SummarySamples(metrics.L("table", ts.Name, "stage", "cache_probe"), ts.ProbeLatency)...)
				out = append(out, metrics.SummarySamples(metrics.L("table", ts.Name, "stage", "queue_wait"), ts.QueueWaitLatency)...)
				out = append(out, metrics.SummarySamples(metrics.L("table", ts.Name, "stage", "device_service"), ts.Latency)...)
				out = append(out, metrics.SummarySamples(metrics.L("table", ts.Name, "stage", "decode"), ts.DecodeLatency)...)
			}
			out = append(out, metrics.SummarySamples(metrics.L("stage", "serialize"), s.serialize.Snapshot())...)
			return out
		})

	// Per-table serving counters and cache gauges.
	perTable := func(f func(core.TableStats) float64) metrics.GatherFunc {
		return func() []metrics.Sample {
			stats := s.scrapeStore().Stats()
			out := make([]metrics.Sample, 0, len(stats))
			for _, ts := range stats {
				out = append(out, metrics.Sample{Labels: metrics.L("table", ts.Name), Value: f(ts)})
			}
			return out
		}
	}
	r.Register("bandana_table_lookups_total", "counter", "Vector lookups per table.",
		perTable(func(ts core.TableStats) float64 { return float64(ts.Lookups) }))
	r.Register("bandana_table_hits_total", "counter", "DRAM cache (and delta overlay) hits per table.",
		perTable(func(ts core.TableStats) float64 { return float64(ts.Hits) }))
	r.Register("bandana_table_misses_total", "counter", "Lookups that needed an NVM read per table.",
		perTable(func(ts core.TableStats) float64 { return float64(ts.Misses) }))
	r.Register("bandana_table_block_reads_total", "counter", "NVM block reads per table.",
		perTable(func(ts core.TableStats) float64 { return float64(ts.BlockReads) }))
	r.Register("bandana_table_prefetch_hits_total", "counter", "Hits served by a prefetched cache entry per table.",
		perTable(func(ts core.TableStats) float64 { return float64(ts.PrefetchHits) }))
	r.Register("bandana_table_cache_vectors", "gauge", "Configured cache capacity (vectors) per table.",
		perTable(func(ts core.TableStats) float64 { return float64(ts.CacheVectors) }))
	r.Register("bandana_table_cache_used", "gauge", "Cached vectors currently resident per table.",
		perTable(func(ts core.TableStats) float64 { return float64(ts.CacheUsed) }))
	r.Register("bandana_table_cache_bytes_resident", "gauge", "Payload bytes resident in the cache per table (byte accounting, not entry counts).",
		perTable(func(ts core.TableStats) float64 { return float64(ts.CacheBytesResident) }))
	r.Register("bandana_table_cache_arena_bytes", "gauge", "Allocated cache slab-arena bytes per table (0 on the lru engine).",
		perTable(func(ts core.TableStats) float64 { return float64(ts.CacheArenaBytes) }))
	r.Register("bandana_table_cache_arena_utilization", "gauge", "Resident payload bytes over allocated arena bytes per table (0 on the lru engine).",
		perTable(func(ts core.TableStats) float64 { return ts.CacheArenaUtilization }))
	r.Register("bandana_table_cache_slabs", "gauge", "Allocated cache arena slabs per table (0 on the lru engine).",
		perTable(func(ts core.TableStats) float64 { return float64(ts.CacheSlabs) }))
	r.Register("bandana_cache_engine_info", "gauge", "Cache engine descriptor (value is always 1).", func() []metrics.Sample {
		stats := s.scrapeStore().Stats()
		engine := ""
		if len(stats) > 0 {
			engine = stats[0].CacheEngine
		}
		return metrics.CounterSample(metrics.L("engine", engine), 1)
	})

	// NVM device + block-store backend.
	r.Register("bandana_device_info", "gauge", "Device backend descriptor (value is always 1).", func() []metrics.Sample {
		dev := s.scrapeStore().DeviceStats()
		direct := "false"
		if dev.Store.DirectIO {
			direct = "true"
		}
		return metrics.CounterSample(metrics.L("backend", dev.Store.Backend, "direct_io", direct), 1)
	})
	deviceCounter := func(name, help string, f func(s *core.Store) float64) {
		r.Register(name, "counter", help, func() []metrics.Sample {
			return metrics.CounterSample(nil, f(s.scrapeStore()))
		})
	}
	deviceCounter("bandana_device_blocks_read_total", "NVM blocks read.",
		func(st *core.Store) float64 { return float64(st.DeviceStats().BlocksRead) })
	deviceCounter("bandana_device_blocks_written_total", "NVM blocks written.",
		func(st *core.Store) float64 { return float64(st.DeviceStats().BlocksWritten) })
	deviceCounter("bandana_device_patch_writes_total", "Journaled sub-block patch writes.",
		func(st *core.Store) float64 { return float64(st.DeviceStats().PatchWrites) })
	deviceCounter("bandana_device_bytes_read_total", "Bytes read from NVM.",
		func(st *core.Store) float64 { return float64(st.DeviceStats().BytesRead) })
	deviceCounter("bandana_device_reads_submitted_total", "Read intents submitted to the device layer.",
		func(st *core.Store) float64 { return float64(st.DeviceStats().ReadsSubmitted) })
	deviceCounter("bandana_device_read_batches_total", "Device read dispatches.",
		func(st *core.Store) float64 { return float64(st.DeviceStats().ReadBatches) })
	deviceCounter("bandana_device_coalesced_reads_total", "Reads coalesced into another read's device I/O.",
		func(st *core.Store) float64 { return float64(st.DeviceStats().CoalescedReads) })
	deviceCounter("bandana_device_journal_writes_total", "Ring-journal record writes (file backend).",
		func(st *core.Store) float64 { return float64(st.DeviceStats().Store.JournalWrites) })
	deviceCounter("bandana_device_journal_bytes_appended_total", "Bytes appended to the ring journal.",
		func(st *core.Store) float64 { return float64(st.DeviceStats().Store.JournalBytesAppended) })
	deviceCounter("bandana_device_flushes_total", "Block-store flushes.",
		func(st *core.Store) float64 { return float64(st.DeviceStats().Store.Flushes) })
	r.Register("bandana_device_drive_writes", "gauge", "Cumulative full-drive writes (wear).", func() []metrics.Sample {
		return metrics.CounterSample(nil, s.scrapeStore().DeviceStats().DriveWrites)
	})
	r.Register("bandana_device_endurance_dwpd", "gauge", "Projected drive writes per day.", func() []metrics.Sample {
		return metrics.CounterSample(nil, s.scrapeStore().DeviceStats().EnduranceDWPD)
	})
	r.Register("bandana_device_ring_utilization", "gauge", "Live fraction of the ring-journal region.", func() []metrics.Sample {
		return metrics.CounterSample(nil, s.scrapeStore().DeviceStats().Store.RingUtilization)
	})

	// I/O scheduler.
	r.Register("bandana_iosched_enabled", "gauge", "1 when the async I/O scheduler is configured.", func() []metrics.Sample {
		st, ok := s.scrapeStore().IOSchedStats()
		_ = st
		v := 0.0
		if ok {
			v = 1
		}
		return metrics.CounterSample(nil, v)
	})
	ioschedSamples := func(f func(st iosched.Stats) []metrics.Sample) metrics.GatherFunc {
		return func() []metrics.Sample {
			st, ok := s.scrapeStore().IOSchedStats()
			if !ok {
				return nil
			}
			return f(st)
		}
	}
	r.Register("bandana_iosched_demand_reads_total", "counter", "Demand-priority reads submitted.",
		ioschedSamples(func(st iosched.Stats) []metrics.Sample {
			return metrics.CounterSample(nil, float64(st.DemandReads))
		}))
	r.Register("bandana_iosched_prefetch_reads_total", "counter", "Prefetch-priority reads submitted.",
		ioschedSamples(func(st iosched.Stats) []metrics.Sample {
			return metrics.CounterSample(nil, float64(st.PrefetchReads))
		}))
	r.Register("bandana_iosched_device_reads_total", "counter", "Reads that reached the device.",
		ioschedSamples(func(st iosched.Stats) []metrics.Sample {
			return metrics.CounterSample(nil, float64(st.DeviceReads))
		}))
	r.Register("bandana_iosched_batches_total", "counter", "Device dispatches.",
		ioschedSamples(func(st iosched.Stats) []metrics.Sample {
			return metrics.CounterSample(nil, float64(st.Batches))
		}))
	r.Register("bandana_iosched_coalesced_total", "counter", "Reads served by another read's device I/O.",
		ioschedSamples(func(st iosched.Stats) []metrics.Sample {
			return metrics.CounterSample(nil, float64(st.Coalesced))
		}))
	r.Register("bandana_iosched_queued_reads", "gauge", "Instantaneous submission-queue length.",
		ioschedSamples(func(st iosched.Stats) []metrics.Sample {
			return metrics.CounterSample(nil, float64(st.QueuedNow))
		}))
	r.Register("bandana_iosched_queue_wait_us", "summary", "Per-read queue wait before dispatch (microseconds).",
		ioschedSamples(func(st iosched.Stats) []metrics.Sample {
			return metrics.SummarySamples(nil, st.QueueWait)
		}))
	r.Register("bandana_iosched_service_us", "summary", "Per-dispatch simulated device service time (microseconds).",
		ioschedSamples(func(st iosched.Stats) []metrics.Sample {
			return metrics.SummarySamples(nil, st.Service)
		}))

	// Update log (delta path).
	r.Register("bandana_updatelog_enabled", "gauge", "1 when the delta update log is on.", func() []metrics.Sample {
		st := s.scrapeStore().UpdateLogStats()
		v := 0.0
		if st.Enabled {
			v = 1
		}
		return metrics.CounterSample(nil, v)
	})
	r.Register("bandana_updatelog_records", "gauge", "Update records retained in the in-memory window.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.scrapeStore().UpdateLogStats().Records))
	})
	r.Register("bandana_updatelog_appends_total", "counter", "Updates appended to the delta log.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.scrapeStore().UpdateLogStats().Appends))
	})
	r.Register("bandana_updatelog_bytes_appended_total", "counter", "Framed bytes appended to the delta log.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.scrapeStore().UpdateLogStats().BytesAppended))
	})
	r.Register("bandana_updatelog_compactions_total", "counter", "Overlay folds into the block image.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.scrapeStore().UpdateLogStats().Compactions))
	})

	// Wire (bwp) listener.
	r.Register("bandana_wire_enabled", "gauge", "1 once ServeWire is listening.", func() []metrics.Sample {
		v := 0.0
		if s.wireEnabled.Load() {
			v = 1
		}
		return metrics.CounterSample(nil, v)
	})
	r.Register("bandana_wire_conns_total", "counter", "bwp connections accepted.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.wire.Stats().ConnsTotal))
	})
	r.Register("bandana_wire_conns_active", "gauge", "bwp connections currently open.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.wire.Stats().ConnsActive))
	})
	r.Register("bandana_wire_requests_total", "counter", "bwp request frames, by opcode.", func() []metrics.Sample {
		var out []metrics.Sample
		for op, os := range s.wire.Stats().Ops {
			out = append(out, metrics.Sample{Labels: metrics.L("opcode", op), Value: float64(os.Requests)})
		}
		return out
	})
	r.Register("bandana_wire_errors_total", "counter", "bwp error frames sent, by opcode.", func() []metrics.Sample {
		var out []metrics.Sample
		for op, os := range s.wire.Stats().Ops {
			out = append(out, metrics.Sample{Labels: metrics.L("opcode", op), Value: float64(os.Errors)})
		}
		return out
	})
	r.Register("bandana_wire_request_duration_us", "summary", "bwp request handle latency by opcode (microseconds).", func() []metrics.Sample {
		var out []metrics.Sample
		for op, os := range s.wire.Stats().Ops {
			out = append(out, metrics.SummarySamples(metrics.L("opcode", op), os.Latency)...)
		}
		return out
	})

	// Store / replication.
	r.Register("bandana_store_read_only", "gauge", "1 on a replica serving a bootstrapped snapshot.", func() []metrics.Sample {
		v := 0.0
		if s.scrapeStore().ReadOnly() {
			v = 1
		}
		return metrics.CounterSample(nil, v)
	})
	r.Register("bandana_store_snapshot_seq", "gauge", "Snapshot sequence of the servable image.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.scrapeStore().SnapshotSeq()))
	})
	r.Register("bandana_store_swaps_total", "counter", "SwapStore calls (replica re-syncs).", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.swaps.Value()))
	})

	// Adaptation engine.
	r.Register("bandana_adaptation_epochs_total", "counter", "Completed adaptation epochs.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.scrapeStore().AdaptationStats().EpochsCompleted))
	})
	r.Register("bandana_adaptation_relayouts_total", "counter", "Block-layout rewrites applied by adaptation.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.scrapeStore().AdaptationStats().Relayouts))
	})
	r.Register("bandana_adaptation_last_epoch_duration_ms", "gauge", "Duration of the last adaptation epoch (ms).", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.scrapeStore().AdaptationStats().LastEpochDuration)/1e6)
	})

	// Process runtime.
	r.Register("bandana_runtime_goroutines", "gauge", "Live goroutines.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(metrics.ReadRuntime(s.start).Goroutines))
	})
	r.Register("bandana_runtime_heap_bytes", "gauge", "Heap bytes in use.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(metrics.ReadRuntime(s.start).HeapBytes))
	})
	r.Register("bandana_runtime_gc_pause_p99_us", "gauge", "Process-lifetime GC pause p99 (microseconds).", func() []metrics.Sample {
		return metrics.CounterSample(nil, metrics.ReadRuntime(s.start).GCPauseP99US)
	})
	r.Register("bandana_runtime_uptime_seconds", "gauge", "Seconds since the server started.", func() []metrics.Sample {
		return metrics.CounterSample(nil, metrics.ReadRuntime(s.start).UptimeSeconds)
	})

	// Slow-request log health: how many slow requests were observed but not
	// logged because the token bucket was dry.
	r.Register("bandana_slow_requests_suppressed", "gauge", "Slow requests awaiting a log slot (resets when a line is emitted).", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(s.slowSuppressed.Load()))
	})

	return r
}
