// Snapshot-replication endpoints: a primary (or any node — a read-only
// replica can feed further replicas) streams its committed store image to
// followers.
//
//	GET /v1/replica/seq
//	    {"seq": N, "readOnly": false}
//
//	GET /v1/replica/snapshot?part=manifest|state|blocks[&seq=N][&offset=O][&limit=L]
//	    application/octet-stream chunk of the requested part, with headers
//	        X-Bandana-Seq          seq the export was built at
//	        X-Bandana-Part-Len     total byte length of the part
//	        X-Bandana-Part-Crc32c  CRC-32C of the whole part
//	        X-Bandana-Chunk-Crc32c CRC-32C of this response's bytes
//	    offset/limit slice the part for resumable chunked downloads; a
//	    request whose ?seq no longer matches the store's current seq gets
//	    409 Conflict with the new seq in the body, telling the replica to
//	    restart its sync against the newer image.
//
// The export is built at most once per seq (cached) and rendered from the
// authoritative in-memory tables under the migration-staging locks, so it is
// crash-consistent by construction and serving is never blocked.
package server

import (
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"

	"bandana/internal/core"
)

// Replica-stream header names (canonical form).
const (
	HeaderSeq       = "X-Bandana-Seq"
	HeaderPartLen   = "X-Bandana-Part-Len"
	HeaderPartCRC   = "X-Bandana-Part-Crc32c"
	HeaderChunkCRC  = "X-Bandana-Chunk-Crc32c"
	snapshotMaxRead = 8 << 20 // cap one chunk response at 8 MB
)

var snapshotCRCTable = crc32.MakeTable(crc32.Castagnoli)

type replicaSeqResponse struct {
	Seq      uint64 `json:"seq"`
	ReadOnly bool   `json:"readOnly"`
}

func (s *Server) handleReplicaSeq(w http.ResponseWriter, r *http.Request) {
	store := s.store(r)
	writeJSON(w, http.StatusOK, replicaSeqResponse{Seq: store.SnapshotSeq(), ReadOnly: store.ReadOnly()})
}

// exportFor returns a snapshot of the store's current image, reusing the
// cached export when its seq is still current so a replica downloading a
// large block image in many chunks triggers exactly one image build.
func (s *Server) exportFor(store *core.Store) (*core.Snapshot, error) {
	s.exportMu.Lock()
	defer s.exportMu.Unlock()
	// The cache must be keyed by the store's identity as well as its seq: a
	// replica's SwapStore installs a different store object, and nothing
	// guarantees its seq differs from the swapped-out one's.
	if s.export != nil && s.exportStore == store && s.export.Seq == store.SnapshotSeq() {
		return s.export, nil
	}
	snap, err := store.ExportSnapshot()
	if err != nil {
		return nil, err
	}
	s.export = snap
	s.exportStore = store
	return snap, nil
}

func (s *Server) handleReplicaSnapshot(w http.ResponseWriter, r *http.Request) {
	store := s.store(r)
	q := r.URL.Query()
	part := q.Get("part")
	// A stale ?seq means the replica is mid-download of an image this node
	// no longer has: answer 409 with the current seq so it restarts cleanly
	// instead of stitching chunks of two different images together. Checked
	// against the live seq BEFORE any export work — under steady write
	// traffic a doomed chunk request must not stall writers by rebuilding
	// an O(image) export just to be told "restart".
	wantSeq := uint64(0)
	if want := q.Get("seq"); want != "" {
		var perr error
		if wantSeq, perr = strconv.ParseUint(want, 10, 64); perr != nil {
			writeError(w, http.StatusBadRequest, "invalid seq %q", want)
			return
		}
		if cur := store.SnapshotSeq(); wantSeq != cur {
			w.Header().Set(HeaderSeq, strconv.FormatUint(cur, 10))
			writeError(w, http.StatusConflict, "snapshot seq advanced to %d (requested %d); restart the sync", cur, wantSeq)
			return
		}
	}
	snap, err := s.exportFor(store)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "export snapshot: %v", err)
		return
	}
	// Re-check against the export actually served: the seq can advance
	// between the cheap pre-check and the export build.
	if wantSeq != 0 && wantSeq != snap.Seq {
		w.Header().Set(HeaderSeq, strconv.FormatUint(snap.Seq, 10))
		writeError(w, http.StatusConflict, "snapshot seq advanced to %d (requested %d); restart the sync", snap.Seq, wantSeq)
		return
	}

	var payload []byte
	switch part {
	case "manifest":
		payload = snap.Manifest
	case "state":
		payload = snap.State
	case "blocks":
		payload = snap.Blocks
	default:
		writeError(w, http.StatusBadRequest, "unknown part %q (want manifest, state or blocks)", part)
		return
	}

	offset, limit := int64(0), int64(snapshotMaxRead)
	if v := q.Get("offset"); v != "" {
		if offset, err = strconv.ParseInt(v, 10, 64); err != nil || offset < 0 {
			writeError(w, http.StatusBadRequest, "invalid offset %q", v)
			return
		}
	}
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.ParseInt(v, 10, 64); err != nil || limit <= 0 {
			writeError(w, http.StatusBadRequest, "invalid limit %q", v)
			return
		}
	}
	if limit > snapshotMaxRead {
		limit = snapshotMaxRead
	}
	if offset > int64(len(payload)) {
		writeError(w, http.StatusRequestedRangeNotSatisfiable, "offset %d beyond part length %d", offset, len(payload))
		return
	}
	end := offset + limit
	if end > int64(len(payload)) {
		end = int64(len(payload))
	}
	chunk := payload[offset:end]

	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(HeaderSeq, strconv.FormatUint(snap.Seq, 10))
	h.Set(HeaderPartLen, strconv.FormatInt(int64(len(payload)), 10))
	partCRC := snap.BlocksCRC
	if part != "blocks" {
		partCRC = crc32.Checksum(payload, snapshotCRCTable)
	}
	h.Set(HeaderPartCRC, fmt.Sprintf("%08x", partCRC))
	h.Set(HeaderChunkCRC, fmt.Sprintf("%08x", crc32.Checksum(chunk, snapshotCRCTable)))
	h.Set("Content-Length", strconv.Itoa(len(chunk)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(chunk)

	// The final blocks chunk ends a replica's download: drop the cached
	// export so a full copy of the device image does not sit on the heap
	// between (rare) bootstraps. A concurrent second replica mid-download
	// just rebuilds the same-seq export on its next chunk.
	if part == "blocks" && end == int64(len(payload)) {
		s.exportMu.Lock()
		if s.export == snap {
			s.export, s.exportStore = nil, nil
		}
		s.exportMu.Unlock()
	}
}
