package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bandana/internal/core"
	"bandana/internal/table"
)

// TestStatsIOSchedSection: a store with the I/O scheduler enabled reports
// its configuration and counters under the "iosched" stats section, and the
// device section carries the batching counters.
func TestStatsIOSchedSection(t *testing.T) {
	g := table.Generate("tA", table.GenerateOptions{NumVectors: 512, Dim: 16, NumClusters: 8, Seed: 1})
	store, err := core.Open(core.Config{
		Tables: []*table.Table{g.Table},
		Seed:   1,
		IOSched: core.IOSchedOptions{
			Enabled:    true,
			QueueDepth: 16,
			Window:     500 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	ts := httptest.NewServer(New(store).Handler())
	t.Cleanup(ts.Close)

	// Miss traffic (fresh store, nothing cached) flows through the
	// scheduler; a repeated id is a cache hit and must not.
	for _, id := range []string{"1", "2", "3", "1"} {
		if code := getJSON(t, ts.URL+"/v1/lookup?table=tA&id="+id, nil); code != http.StatusOK {
			t.Fatalf("lookup status %d", code)
		}
	}

	var out statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &out); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	io := out.IOSched
	if !io.Enabled {
		t.Fatalf("iosched section reports disabled: %+v", io)
	}
	if io.TargetQueueDepth != 16 || io.AccumulationWindowUS != 500 || !io.Coalesce {
		t.Fatalf("iosched config not echoed: %+v", io)
	}
	if io.DemandReads != 3 || io.DeviceReads != 3 || io.Batches == 0 {
		t.Fatalf("iosched counters: %+v, want 3 demand reads", io)
	}
	if io.SimBusyUS <= 0 {
		t.Fatalf("simulated busy time not tracked: %+v", io)
	}
	if out.Device.ReadBatches == 0 || out.Device.ReadsSubmitted != out.Device.BlocksRead {
		t.Fatalf("device batching counters: %+v", out.Device)
	}
	if out.Device.AvgReadBatch <= 0 || out.Device.MaxQueueDepth <= 0 {
		t.Fatalf("device queue-depth counters: %+v", out.Device)
	}

	// An update is a journaled sub-block patch: it issues no device read at
	// all (the old read-modify-write routed one through the background
	// class), so the scheduler's read counters must not move.
	if err := store.UpdateVector(0, 9, make([]float32, 16)); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &out); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if out.IOSched.PrefetchReads != 0 || out.IOSched.DemandReads != 3 {
		t.Fatalf("update issued device reads (want none: it is a sub-block patch): %+v", out.IOSched)
	}
	if out.Device.PatchWrites != 1 {
		t.Fatalf("update not counted as a patch write: %+v", out.Device)
	}
}

// TestStatsIOSchedDisabled: the section is present but reports disabled for
// a plain store.
func TestStatsIOSchedDisabled(t *testing.T) {
	ts, _ := newTestServer(t)
	var out statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.IOSched.Enabled || out.IOSched.DemandReads != 0 {
		t.Fatalf("iosched section for a scheduler-less store: %+v", out.IOSched)
	}
}
