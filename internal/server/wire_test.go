package server

import (
	"context"
	"math"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"bandana/internal/core"
	"bandana/internal/fp16"
	"bandana/internal/table"
	"bandana/internal/wire"
)

// startWire attaches a bwp listener to srv and returns its address.
func startWire(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeWire(ln)
	return ln.Addr().String()
}

// TestWireMatchesHTTP pins the acceptance property end to end at the server
// layer: the same batch served over bwp (fp16 decoded client-side) and over
// the JSON API must be bit-identical float32s.
func TestWireMatchesHTTP(t *testing.T) {
	g := table.Generate("emb", table.GenerateOptions{NumVectors: 2048, Dim: 16, NumClusters: 32, Seed: 3})
	store, err := core.Open(core.Config{Tables: []*table.Table{g.Table}, DRAMBudgetVectors: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := New(store)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	c, err := wire.Dial(startWire(t, srv), wire.Options{DialTimeout: 5 * time.Second, CRC: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)

	ids := []uint32{0, 5, 5, 99, 2047, 1024}
	wireVecs, err := c.LookupBatchF32(ctx, "emb", ids)
	if err != nil {
		t.Fatal(err)
	}
	var httpResp batchResponse
	if code := postJSON(t, ts.URL+"/v1/batch", batchRequest{Table: "emb", IDs: ids}, &httpResp); code != 200 {
		t.Fatalf("batch status %d", code)
	}
	for i := range ids {
		if len(wireVecs[i]) != len(httpResp.Vectors[i]) {
			t.Fatalf("id %d: wire dim %d, http dim %d", ids[i], len(wireVecs[i]), len(httpResp.Vectors[i]))
		}
		for j := range wireVecs[i] {
			if math.Float32bits(wireVecs[i][j]) != math.Float32bits(httpResp.Vectors[i][j]) {
				t.Fatalf("id %d elem %d: wire %g != http %g", ids[i], j, wireVecs[i][j], httpResp.Vectors[i][j])
			}
		}
	}

	// A wire update is visible on the HTTP path.
	next := make([]float32, 16)
	for j := range next {
		next[j] = float32(j) * 0.5
	}
	if err := c.UpdateF32(ctx, "emb", 5, next); err != nil {
		t.Fatal(err)
	}
	var lr lookupResponse
	if code := getJSON(t, ts.URL+"/v1/lookup?table=emb&id=5", &lr); code != 200 {
		t.Fatalf("lookup status %d", code)
	}
	want := fp16.Quantize(append([]float32(nil), next...))
	for j := range want {
		if math.Float32bits(lr.Vector[j]) != math.Float32bits(want[j]) {
			t.Fatalf("elem %d after wire update: http sees %g, want %g", j, lr.Vector[j], want[j])
		}
	}

	// Wire errors surface with the right codes.
	var werr *wire.Error
	if _, _, err := c.LookupBatchRaw(ctx, "nope", ids); err == nil {
		t.Fatal("unknown table served")
	} else if !asWireError(err, &werr) || werr.Code != wire.CodeNotFound {
		t.Fatalf("unknown table: got %v, want CodeNotFound", err)
	}
	if _, _, err := c.LookupBatchRaw(ctx, "emb", []uint32{1 << 30}); err == nil {
		t.Fatal("out-of-range id served")
	}

	// /v1/stats reports the wire listener.
	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if !st.Wire.Enabled || st.Wire.Requests == 0 || st.Wire.ConnsTotal == 0 {
		t.Fatalf("wire stats not reporting: %+v", st.Wire)
	}
	if st.Wire.Errors == 0 {
		t.Fatalf("wire error frames not counted: %+v", st.Wire)
	}
}

func asWireError(err error, target **wire.Error) bool {
	e, ok := err.(*wire.Error)
	if ok {
		*target = e
	}
	return ok
}

// TestWireAcrossSwap checks the wire path's store pinning: a SwapStore under
// live wire traffic must not break in-flight or subsequent lookups.
func TestWireAcrossSwap(t *testing.T) {
	open := func(seed int64) *core.Store {
		g := table.Generate("emb", table.GenerateOptions{NumVectors: 512, Dim: 8, NumClusters: 16, Seed: seed})
		store, err := core.Open(core.Config{Tables: []*table.Table{g.Table}, DRAMBudgetVectors: 64, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return store
	}
	srv := New(open(1))
	t.Cleanup(func() { srv.CurrentStore().Close() })

	c, err := wire.Dial(startWire(t, srv), wire.Options{DialTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)

	ids := []uint32{1, 2, 3, 4}
	if _, _, err := c.LookupBatchRaw(ctx, "emb", ids); err != nil {
		t.Fatal(err)
	}
	srv.SwapStore(open(2)) // old store closes once requests drain
	if _, vecs, err := c.LookupBatchRaw(ctx, "emb", ids); err != nil || len(vecs) != len(ids) {
		t.Fatalf("wire lookup after swap: vecs=%d err=%v", len(vecs), err)
	}
}
