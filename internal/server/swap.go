package server

import (
	"log"
	"sync"

	"bandana/internal/core"
)

// storeRef counts the in-flight requests using one store so that SwapStore
// can retire a replaced store only after the last of them finishes — a
// replica re-syncing to a newer snapshot must never close a store out from
// under a request that is still decoding blocks from it.
type storeRef struct {
	store *core.Store

	mu      sync.Mutex
	refs    int
	retired bool
}

// acquire registers a request against the ref. It fails once the ref is
// retired (a newer store has been swapped in); the caller reloads the
// current ref and tries again.
func (r *storeRef) acquire() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.retired {
		return false
	}
	r.refs++
	return true
}

// release drops one request's hold; the last release of a retired ref
// closes the store.
func (r *storeRef) release() {
	r.mu.Lock()
	last := false
	r.refs--
	if r.retired && r.refs == 0 {
		last = true
	}
	r.mu.Unlock()
	if last {
		r.closeStore()
	}
}

// retire marks the ref as replaced. New requests stop acquiring it; the
// store is closed as soon as the in-flight count drains (immediately when
// idle).
func (r *storeRef) retire() {
	r.mu.Lock()
	r.retired = true
	idle := r.refs == 0
	r.mu.Unlock()
	if idle {
		r.closeStore()
	}
}

func (r *storeRef) closeStore() {
	if err := r.store.Close(); err != nil {
		log.Printf("server: closing swapped-out store: %v", err)
	}
}

// SwapStore atomically replaces the served store. In-flight requests finish
// against the store they started with; once they drain, the replaced store
// is closed. The caller must not use (or close) the old store afterwards —
// ownership of the final, never-swapped-out store stays with the caller.
func (s *Server) SwapStore(next *core.Store) {
	old := s.ref.Swap(&storeRef{store: next})
	s.swaps.Inc()
	// The export cache belongs to the outgoing store: drop it so it cannot
	// pin the (soon-closed) store or serve its image as the successor's.
	s.exportMu.Lock()
	s.export, s.exportStore = nil, nil
	s.exportMu.Unlock()
	old.retire()
}

// CurrentStore returns the store currently being served. Meant for
// shutdown paths (close the final store) and tests; requests in handlers
// use the per-request snapshot instead.
func (s *Server) CurrentStore() *core.Store {
	return s.ref.Load().store
}

// acquireRef returns a ref on the current store, retrying across a
// concurrent swap.
func (s *Server) acquireRef() *storeRef {
	for {
		ref := s.ref.Load()
		if ref.acquire() {
			return ref
		}
		// Lost a race with SwapStore: the ref retired between the load and
		// the acquire. The pointer already holds the successor.
	}
}
