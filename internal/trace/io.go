package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

const traceMagic = "BNDTRC01"

// WriteTo serialises the trace in a compact binary format: a magic header,
// the table name, the table size, then one varint-prefixed block of varint
// vector IDs per query.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	buf := make([]byte, binary.MaxVarintLen64)
	writeUvarint := func(v uint64) error {
		m := binary.PutUvarint(buf, v)
		written, err := bw.Write(buf[:m])
		n += int64(written)
		return err
	}
	if m, err := bw.WriteString(traceMagic); err != nil {
		return n + int64(m), err
	}
	n += int64(len(traceMagic))
	if err := writeUvarint(uint64(len(t.TableName))); err != nil {
		return n, err
	}
	if m, err := bw.WriteString(t.TableName); err != nil {
		return n + int64(m), err
	}
	n += int64(len(t.TableName))
	if err := writeUvarint(uint64(t.NumVectors)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(t.Queries))); err != nil {
		return n, err
	}
	for _, q := range t.Queries {
		if err := writeUvarint(uint64(len(q))); err != nil {
			return n, err
		}
		for _, id := range q {
			if err := writeUvarint(uint64(id)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadTrace deserialises a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	numVectors, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if numVectors > 1<<32 {
		return nil, fmt.Errorf("trace: implausible vector count %d", numVectors)
	}
	numQueries, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	// Size hints from the wire are untrusted: cap the up-front allocations
	// and let append grow the real thing, so a corrupt or hostile header
	// cannot force a huge allocation before decoding fails at EOF.
	t := &Trace{
		TableName:  string(name),
		NumVectors: int(numVectors),
		Queries:    make([]Query, 0, min(numQueries, 1<<16)),
	}
	for i := uint64(0); i < numQueries; i++ {
		qlen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: query %d: %w", i, err)
		}
		if qlen > 1<<24 {
			return nil, fmt.Errorf("trace: query %d: implausible length %d", i, qlen)
		}
		q := make(Query, 0, min(qlen, 1<<12))
		for j := uint64(0); j < qlen; j++ {
			id, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: query %d lookup %d: %w", i, j, err)
			}
			if id > 1<<32-1 {
				return nil, fmt.Errorf("trace: query %d lookup %d: vector id %d overflows uint32", i, j, id)
			}
			q = append(q, uint32(id))
		}
		t.Queries = append(t.Queries, q)
	}
	return t, nil
}
