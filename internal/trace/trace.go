// Package trace models the embedding lookup workload that drives Bandana.
//
// A request ("query" in the paper) is issued per user and contains multiple
// vector lookups in each of several user embedding tables. This package
// provides:
//
//   - the Trace type: a per-table sequence of queries (each a set of vector
//     IDs), which is both the hypergraph that SHP partitions and the access
//     stream the cache simulator replays;
//   - a synthetic workload generator calibrated to the paper's Table 1
//     (table sizes, lookups per request, lookup share, compulsory-miss
//     ratio) with a tunable co-access locality knob;
//   - workload statistics: compulsory misses, access histograms, lookup
//     shares — the raw material for Table 1 and Figure 4.
package trace

import (
	"fmt"
	"sort"
)

// Query is the set of vector IDs read from one table by a single request.
type Query []uint32

// Trace is a sequence of queries against a single embedding table.
type Trace struct {
	TableName  string
	NumVectors int
	Queries    []Query
}

// Lookups returns the total number of vector lookups in the trace.
func (t *Trace) Lookups() int64 {
	var n int64
	for _, q := range t.Queries {
		n += int64(len(q))
	}
	return n
}

// Stats summarises a trace the way the paper's Table 1 does.
type Stats struct {
	TableName          string
	NumVectors         int
	Queries            int
	Lookups            int64
	AvgLookups         float64 // average lookups per query
	UniqueVectors      int     // distinct vectors referenced
	CompulsoryMissFrac float64 // UniqueVectors / Lookups
	MaxAccessCount     uint32  // most-read vector's access count
}

// Stats scans the trace once and returns its summary statistics.
func (t *Trace) Stats() Stats {
	counts := t.AccessCounts()
	var lookups int64
	unique := 0
	var maxCount uint32
	for _, c := range counts {
		if c > 0 {
			unique++
			lookups += int64(c)
			if c > maxCount {
				maxCount = c
			}
		}
	}
	s := Stats{
		TableName:      t.TableName,
		NumVectors:     t.NumVectors,
		Queries:        len(t.Queries),
		Lookups:        lookups,
		UniqueVectors:  unique,
		MaxAccessCount: maxCount,
	}
	if len(t.Queries) > 0 {
		s.AvgLookups = float64(lookups) / float64(len(t.Queries))
	}
	if lookups > 0 {
		s.CompulsoryMissFrac = float64(unique) / float64(lookups)
	}
	return s
}

// AccessCounts returns, for every vector in the table, the number of lookups
// that referenced it across the whole trace. This is the statistic SHP-based
// admission control thresholds on (§4.3.2).
func (t *Trace) AccessCounts() []uint32 {
	counts := make([]uint32, t.NumVectors)
	for _, q := range t.Queries {
		for _, id := range q {
			if int(id) < len(counts) {
				counts[id]++
			}
		}
	}
	return counts
}

// HistogramBin is one bar of an access histogram (Figure 4): NumVectors
// vectors were each accessed between [Lo, Hi) times.
type HistogramBin struct {
	Lo, Hi     uint32
	NumVectors int
}

// AccessHistogram buckets vectors by access count into numBins equal-width
// bins spanning [1, maxCount]. Vectors never accessed are excluded (they do
// not appear in the trace at all).
func (t *Trace) AccessHistogram(numBins int) []HistogramBin {
	if numBins <= 0 {
		numBins = 10
	}
	counts := t.AccessCounts()
	var maxCount uint32
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		return nil
	}
	width := (maxCount + uint32(numBins) - 1) / uint32(numBins)
	if width == 0 {
		width = 1
	}
	bins := make([]HistogramBin, numBins)
	for i := range bins {
		bins[i].Lo = 1 + uint32(i)*width
		bins[i].Hi = 1 + uint32(i+1)*width
	}
	for _, c := range counts {
		if c == 0 {
			continue
		}
		idx := int((c - 1) / width)
		if idx >= numBins {
			idx = numBins - 1
		}
		bins[idx].NumVectors++
	}
	return bins
}

// Split divides the trace into a training prefix containing trainFrac of the
// queries and an evaluation suffix with the remainder. The underlying query
// slices are shared, not copied.
func (t *Trace) Split(trainFrac float64) (train, eval *Trace) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	cut := int(float64(len(t.Queries)) * trainFrac)
	train = &Trace{TableName: t.TableName, NumVectors: t.NumVectors, Queries: t.Queries[:cut]}
	eval = &Trace{TableName: t.TableName, NumVectors: t.NumVectors, Queries: t.Queries[cut:]}
	return train, eval
}

// Prefix returns a trace containing only the first n queries (or the whole
// trace if n exceeds its length). Used to vary the SHP training-set size
// (Figure 9 / Figure 15).
func (t *Trace) Prefix(n int) *Trace {
	if n > len(t.Queries) {
		n = len(t.Queries)
	}
	if n < 0 {
		n = 0
	}
	return &Trace{TableName: t.TableName, NumVectors: t.NumVectors, Queries: t.Queries[:n]}
}

// Validate checks every lookup references a vector inside the table.
func (t *Trace) Validate() error {
	for qi, q := range t.Queries {
		for _, id := range q {
			if int(id) >= t.NumVectors {
				return fmt.Errorf("trace %s: query %d references vector %d outside table of %d",
					t.TableName, qi, id, t.NumVectors)
			}
		}
	}
	return nil
}

// Workload is a set of per-table traces generated from the same request
// stream: query i of every trace belongs to the same request.
type Workload struct {
	Profiles []Profile
	Traces   []*Trace
	// Communities[t][v] is the co-access community of vector v in table t;
	// it is shared with the embedding-table generator so that Euclidean
	// proximity can be correlated with co-access.
	Communities [][]int32
}

// LookupShares returns each table's fraction of total lookups (Table 1's
// "% of total lookups" column).
func (w *Workload) LookupShares() []float64 {
	totals := make([]int64, len(w.Traces))
	var sum int64
	for i, tr := range w.Traces {
		totals[i] = tr.Lookups()
		sum += totals[i]
	}
	shares := make([]float64, len(w.Traces))
	if sum == 0 {
		return shares
	}
	for i, n := range totals {
		shares[i] = float64(n) / float64(sum)
	}
	return shares
}

// TopTablesByLookups returns the indices of the n tables with the most
// lookups, in descending order. The paper's Figures 3 and 4 show the top 4.
func (w *Workload) TopTablesByLookups(n int) []int {
	type kv struct {
		idx int
		n   int64
	}
	all := make([]kv, len(w.Traces))
	for i, tr := range w.Traces {
		all[i] = kv{i, tr.Lookups()}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].idx
	}
	return out
}
