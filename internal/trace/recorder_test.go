package trace

import (
	"sync"
	"testing"
)

func TestRecorderRecordsEverythingAtRate1(t *testing.T) {
	r := NewRecorder(64, 4, 1)
	for i := 0; i < 10; i++ {
		r.Record([]uint32{uint32(i), uint32(i + 100)})
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	tr := r.Snapshot("t", 200)
	if len(tr.Queries) != 10 {
		t.Fatalf("snapshot has %d queries, want 10", len(tr.Queries))
	}
	// Queries come back in recording order.
	for i, q := range tr.Queries {
		if len(q) != 2 || q[0] != uint32(i) || q[1] != uint32(i+100) {
			t.Fatalf("query %d = %v", i, q)
		}
	}
}

func TestRecorderBoundedAndRecent(t *testing.T) {
	r := NewRecorder(16, 4, 1)
	for i := 0; i < 1000; i++ {
		r.Record([]uint32{uint32(i)})
	}
	if r.Len() != 16 {
		t.Fatalf("Len = %d, want ring capacity 16", r.Len())
	}
	tr := r.Snapshot("t", 1000)
	for _, q := range tr.Queries {
		if q[0] < 1000-4*16 {
			t.Fatalf("snapshot kept stale query %d; the ring must favour recent queries", q[0])
		}
	}
}

func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(1024, 2, 10)
	for i := 0; i < 1000; i++ {
		r.Record([]uint32{uint32(i)})
	}
	if r.Len() != 100 {
		t.Fatalf("1-in-10 sampling of 1000 queries kept %d, want 100", r.Len())
	}
	if r.Offered() != 1000 {
		t.Fatalf("Offered = %d, want 1000", r.Offered())
	}
}

func TestRecorderSnapshotFiltersOutOfRange(t *testing.T) {
	r := NewRecorder(8, 1, 1)
	r.Record([]uint32{1, 999})
	r.Record([]uint32{998})
	tr := r.Snapshot("t", 100)
	if len(tr.Queries) != 1 || len(tr.Queries[0]) != 1 || tr.Queries[0][0] != 1 {
		t.Fatalf("snapshot = %v, want only in-range id 1", tr.Queries)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(8, 2, 1)
	r.Record([]uint32{1})
	r.Reset()
	if r.Len() != 0 || r.Offered() != 0 {
		t.Fatalf("after Reset Len=%d Offered=%d", r.Len(), r.Offered())
	}
	r.Record([]uint32{2})
	if got := r.Snapshot("t", 10); len(got.Queries) != 1 || got.Queries[0][0] != 2 {
		t.Fatalf("post-reset snapshot = %v", got.Queries)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(256, 8, 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]uint32, 4)
			for i := 0; i < 2000; i++ {
				for j := range ids {
					ids[j] = uint32(w*2000 + i + j)
				}
				r.Record(ids)
				if i%100 == 0 {
					r.Snapshot("t", 1<<20)
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() > 256 {
		t.Fatalf("recorder exceeded its bound: %d > 256", r.Len())
	}
	if r.Offered() != 16000 {
		t.Fatalf("Offered = %d, want 16000", r.Offered())
	}
}

// TestDriftRotatesHotSet verifies the drift workload actually moves the
// working set: the most-accessed communities of the first phase and a later
// phase should barely overlap, while a stationary profile keeps them stable.
func TestDriftRotatesHotSet(t *testing.T) {
	p := Profile{
		Name: "drift", NumVectors: 8192, AvgLookups: 30,
		CompulsoryMissFrac: 0.05, Locality: 0.9, CommunitySize: 64,
		ReuseSkew: 3, Seed: 42, HotSetRotation: 200,
	}
	communityOf := CommunityAssignment(p)
	tr := GenerateTable(p, 600)

	hotSet := func(qs []Query, topK int) map[int32]bool {
		counts := map[int32]int{}
		for _, q := range qs {
			for _, id := range q {
				counts[communityOf[id]]++
			}
		}
		type kv struct {
			c int32
			n int
		}
		all := make([]kv, 0, len(counts))
		for c, n := range counts {
			all = append(all, kv{c, n})
		}
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				if all[j].n > all[i].n {
					all[i], all[j] = all[j], all[i]
				}
			}
		}
		if topK > len(all) {
			topK = len(all)
		}
		out := map[int32]bool{}
		for _, kv := range all[:topK] {
			out[kv.c] = true
		}
		return out
	}

	first := hotSet(tr.Queries[:200], 8)
	last := hotSet(tr.Queries[400:], 8)
	overlap := 0
	for c := range first {
		if last[c] {
			overlap++
		}
	}
	if overlap > 3 {
		t.Fatalf("hot sets of phase 0 and phase 2 share %d of 8 communities; drift is not rotating", overlap)
	}

	// Determinism: the same profile generates the same trace.
	tr2 := GenerateTable(p, 600)
	if len(tr2.Queries) != len(tr.Queries) {
		t.Fatal("drift generation is not deterministic")
	}
	for i := range tr.Queries {
		if len(tr.Queries[i]) != len(tr2.Queries[i]) {
			t.Fatalf("query %d differs between identical runs", i)
		}
		for j := range tr.Queries[i] {
			if tr.Queries[i][j] != tr2.Queries[i][j] {
				t.Fatalf("query %d id %d differs between identical runs", i, j)
			}
		}
	}
}
