package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func smallProfile(seed int64) Profile {
	return Profile{
		Name:               "test",
		NumVectors:         20000,
		AvgLookups:         30,
		CompulsoryMissFrac: 0.10,
		Locality:           0.9,
		CommunitySize:      64,
		ReuseSkew:          3,
		Seed:               seed,
	}
}

func TestGenerateTableBasicShape(t *testing.T) {
	tr := GenerateTable(smallProfile(1), 2000)
	if len(tr.Queries) != 2000 {
		t.Fatalf("queries = %d", len(tr.Queries))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if math.Abs(s.AvgLookups-30) > 3 {
		t.Fatalf("avg lookups = %.2f, want ~30", s.AvgLookups)
	}
	if s.Lookups < 40000 {
		t.Fatalf("too few lookups: %d", s.Lookups)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateTable(smallProfile(7), 500)
	b := GenerateTable(smallProfile(7), 500)
	if len(a.Queries) != len(b.Queries) {
		t.Fatalf("query count mismatch")
	}
	for i := range a.Queries {
		if len(a.Queries[i]) != len(b.Queries[i]) {
			t.Fatalf("query %d length mismatch", i)
		}
		for j := range a.Queries[i] {
			if a.Queries[i][j] != b.Queries[i][j] {
				t.Fatalf("query %d lookup %d mismatch", i, j)
			}
		}
	}
}

func TestCompulsoryMissFractionRoughlyMatchesTarget(t *testing.T) {
	for _, target := range []float64{0.05, 0.25, 0.60} {
		p := smallProfile(3)
		p.NumVectors = 100000
		p.CompulsoryMissFrac = target
		tr := GenerateTable(p, 3000)
		got := tr.Stats().CompulsoryMissFrac
		// Community exhaustion and dedup make this approximate; within a
		// factor band is enough for the experiments to show the right
		// ordering between tables.
		if got < target*0.4 || got > target*1.8 {
			t.Errorf("target compulsory %.2f: got %.3f (outside band)", target, got)
		}
	}
}

func TestCompulsoryMissOrderingAcrossProfiles(t *testing.T) {
	// Table 2 (2.19%) must end up more cacheable than table 8 (60.83%).
	profiles := DefaultProfiles(0.002)
	w := GenerateWorkload([]Profile{profiles[1], profiles[7]}, 1500)
	s2 := w.Traces[0].Stats()
	s8 := w.Traces[1].Stats()
	if s2.CompulsoryMissFrac >= s8.CompulsoryMissFrac {
		t.Fatalf("table2 compulsory %.3f should be below table8 %.3f",
			s2.CompulsoryMissFrac, s8.CompulsoryMissFrac)
	}
}

func TestDefaultProfilesShape(t *testing.T) {
	ps := DefaultProfiles(0.01)
	if len(ps) != 8 {
		t.Fatalf("want 8 profiles, got %d", len(ps))
	}
	if ps[0].NumVectors != 100000 || ps[2].NumVectors != 200000 {
		t.Fatalf("scaled sizes wrong: %d %d", ps[0].NumVectors, ps[2].NumVectors)
	}
	if ps[1].AvgLookups != 92.75 {
		t.Fatalf("table2 avg lookups = %g", ps[1].AvgLookups)
	}
	// Tiny scale clamps to a floor.
	tiny := DefaultProfiles(0.000001)
	for _, p := range tiny {
		if p.NumVectors < 1024 {
			t.Fatalf("NumVectors below floor: %d", p.NumVectors)
		}
	}
}

func TestQueriesHaveNoDuplicateLookups(t *testing.T) {
	tr := GenerateTable(smallProfile(5), 500)
	for qi, q := range tr.Queries {
		seen := map[uint32]bool{}
		for _, id := range q {
			if seen[id] {
				t.Fatalf("query %d contains duplicate id %d", qi, id)
			}
			seen[id] = true
		}
	}
}

func TestTinyTableDoesNotHang(t *testing.T) {
	p := Profile{Name: "tiny", NumVectors: 64, AvgLookups: 200, CompulsoryMissFrac: 0.5, Locality: 0.9, Seed: 1}
	tr := GenerateTable(p, 50)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, q := range tr.Queries {
		if len(q) > 32 {
			t.Fatalf("query longer than half the table: %d", len(q))
		}
	}
}

func TestAccessCountsMatchLookups(t *testing.T) {
	tr := GenerateTable(smallProfile(9), 300)
	counts := tr.AccessCounts()
	var sum int64
	for _, c := range counts {
		sum += int64(c)
	}
	if sum != tr.Lookups() {
		t.Fatalf("access counts sum %d != lookups %d", sum, tr.Lookups())
	}
}

func TestAccessHistogram(t *testing.T) {
	tr := GenerateTable(smallProfile(11), 1000)
	bins := tr.AccessHistogram(10)
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.NumVectors
		if b.Hi <= b.Lo {
			t.Fatalf("bad bin bounds %d..%d", b.Lo, b.Hi)
		}
	}
	if total != tr.Stats().UniqueVectors {
		t.Fatalf("histogram total %d != unique vectors %d", total, tr.Stats().UniqueVectors)
	}
	// Heavy-tailed: the first bin (rarely accessed) should dominate.
	if bins[0].NumVectors < total/2 {
		t.Errorf("expected heavy-tailed histogram, first bin has %d of %d", bins[0].NumVectors, total)
	}
}

func TestAccessHistogramEmptyTrace(t *testing.T) {
	tr := &Trace{TableName: "empty", NumVectors: 10}
	if bins := tr.AccessHistogram(5); bins != nil {
		t.Fatalf("expected nil histogram for empty trace")
	}
	s := tr.Stats()
	if s.Lookups != 0 || s.CompulsoryMissFrac != 0 || s.AvgLookups != 0 {
		t.Fatalf("empty trace stats wrong: %+v", s)
	}
}

func TestSplitAndPrefix(t *testing.T) {
	tr := GenerateTable(smallProfile(13), 100)
	train, eval := tr.Split(0.8)
	if len(train.Queries) != 80 || len(eval.Queries) != 20 {
		t.Fatalf("split sizes %d/%d", len(train.Queries), len(eval.Queries))
	}
	if p := tr.Prefix(10); len(p.Queries) != 10 {
		t.Fatalf("prefix size %d", len(p.Queries))
	}
	if p := tr.Prefix(1000); len(p.Queries) != 100 {
		t.Fatalf("oversized prefix should clamp, got %d", len(p.Queries))
	}
	if p := tr.Prefix(-5); len(p.Queries) != 0 {
		t.Fatalf("negative prefix should clamp to 0")
	}
	train2, eval2 := tr.Split(2.0)
	if len(train2.Queries) != 100 || len(eval2.Queries) != 0 {
		t.Fatalf("clamped split wrong")
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	tr := &Trace{TableName: "bad", NumVectors: 10, Queries: []Query{{1, 2}, {99}}}
	if err := tr.Validate(); err == nil {
		t.Fatalf("expected validation error")
	}
}

func TestWorkloadSharesOrderedByAvgLookups(t *testing.T) {
	profiles := DefaultProfiles(0.002)
	w := GenerateWorkload(profiles, 400)
	shares := w.LookupShares()
	if len(shares) != 8 {
		t.Fatalf("shares length %d", len(shares))
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %g", sum)
	}
	// Table 2 has by far the highest avg lookups and must hold the largest
	// share; table 8 the smallest.
	maxIdx, minIdx := 0, 0
	for i, s := range shares {
		if s > shares[maxIdx] {
			maxIdx = i
		}
		if s < shares[minIdx] {
			minIdx = i
		}
	}
	if maxIdx != 1 {
		t.Errorf("largest share should be table2 (idx 1), got idx %d (%v)", maxIdx, shares)
	}
	if minIdx != 7 {
		t.Errorf("smallest share should be table8 (idx 7), got idx %d (%v)", minIdx, shares)
	}
	top := w.TopTablesByLookups(4)
	if top[0] != 1 {
		t.Errorf("top table should be index 1, got %v", top)
	}
	if len(w.TopTablesByLookups(100)) != 8 {
		t.Errorf("TopTablesByLookups should clamp to table count")
	}
}

func TestCommunityAssignmentsStable(t *testing.T) {
	p := smallProfile(21)
	a := CommunityAssignment(p)
	b := CommunityAssignment(p)
	if len(a) != p.NumVectors {
		t.Fatalf("assignment length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("community assignment not deterministic at %d", i)
		}
	}
	// Matches what GenerateWorkload records.
	w := GenerateWorkload([]Profile{p}, 10)
	for i := range a {
		if w.Communities[0][i] != a[i] {
			t.Fatalf("workload communities diverge at %d", i)
		}
	}
}

func TestCommunityLocalityPresentInQueries(t *testing.T) {
	// With high locality, the average number of distinct communities per
	// query must be far below the number of lookups per query.
	p := smallProfile(31)
	p.Locality = 0.95
	g := newGenerator(p)
	var lookups, communities int
	for i := 0; i < 300; i++ {
		q := g.nextQuery()
		seen := map[int32]bool{}
		for _, id := range q {
			seen[g.communityOf[id]] = true
		}
		lookups += len(q)
		communities += len(seen)
	}
	if lookups == 0 {
		t.Fatal("no lookups generated")
	}
	ratio := float64(communities) / float64(lookups)
	if ratio > 0.6 {
		t.Fatalf("queries touch too many communities (ratio %.2f); locality broken", ratio)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := GenerateTable(smallProfile(17), 200)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TableName != tr.TableName || back.NumVectors != tr.NumVectors || len(back.Queries) != len(tr.Queries) {
		t.Fatalf("metadata mismatch")
	}
	for i := range tr.Queries {
		if len(back.Queries[i]) != len(tr.Queries[i]) {
			t.Fatalf("query %d length mismatch", i)
		}
		for j := range tr.Queries[i] {
			if back.Queries[i][j] != tr.Queries[i][j] {
				t.Fatalf("query %d lookup %d mismatch", i, j)
			}
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("garbagegarbage"))); err == nil {
		t.Fatalf("expected error")
	}
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatalf("expected error on empty input")
	}
}

func TestPropertySerializationRoundTrip(t *testing.T) {
	prop := func(raw [][]uint16, numVectors uint16) bool {
		nv := int(numVectors)%1000 + 1000
		tr := &Trace{TableName: "prop", NumVectors: nv}
		for _, q := range raw {
			query := make(Query, 0, len(q))
			for _, id := range q {
				query = append(query, uint32(int(id)%nv))
			}
			tr.Queries = append(tr.Queries, query)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if len(back.Queries) != len(tr.Queries) {
			return false
		}
		for i := range tr.Queries {
			if len(back.Queries[i]) != len(tr.Queries[i]) {
				return false
			}
			for j := range tr.Queries[i] {
				if back.Queries[i][j] != tr.Queries[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPoissonMean(t *testing.T) {
	g := newGenerator(smallProfile(41))
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		sum += float64(poisson(g.rng, 12))
	}
	mean := sum / n
	if math.Abs(mean-12) > 0.5 {
		t.Fatalf("poisson mean = %.2f, want ~12", mean)
	}
	if poisson(g.rng, 0) != 0 {
		t.Fatalf("poisson(0) should be 0")
	}
	// Large-mean branch.
	sum = 0
	for i := 0; i < n; i++ {
		sum += float64(poisson(g.rng, 90))
	}
	if mean := sum / n; math.Abs(mean-90) > 2 {
		t.Fatalf("poisson(90) mean = %.2f", mean)
	}
}

func BenchmarkGenerateTable(b *testing.B) {
	p := smallProfile(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateTable(p, 100)
	}
}
