package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Recorder captures a bounded, sampled window of the live access stream so
// the adaptation engine can re-derive hit-rate curves, access counts and
// co-access hypergraphs from what the table is serving *right now* instead
// of from an offline training file.
//
// It is built for the serving path: one atomic add decides whether a query
// is sampled at all, and sampled queries go to one of several
// mutex-guarded ring stripes chosen round-robin, so concurrent lookups
// almost never contend on the same stripe lock. Memory is strictly bounded:
// each stripe is a fixed-size ring of queries whose ID slices are reused
// in place, so a recorder's footprint is set at construction and never
// grows, no matter how long it runs.
type Recorder struct {
	// seq counts every offered query; it drives both the 1-in-sampleEvery
	// sampling decision and the round-robin stripe choice, and stamps each
	// recorded query so Snapshot can restore approximate temporal order.
	seq         atomic.Uint64
	sampleEvery uint64
	stripes     []recorderStripe
}

// recorderStripe is one ring of recorded queries with its own lock. The
// padding keeps neighbouring stripe locks off the same cache line.
type recorderStripe struct {
	mu      sync.Mutex
	queries []recordedQuery
	next    int
	filled  int
	_       [32]byte
}

// recordedQuery is one sampled query: its global sequence number and the
// (copied) vector IDs it looked up.
type recordedQuery struct {
	seq uint64
	ids []uint32
}

// NewRecorder creates a recorder that keeps at most totalQueries recent
// queries, sampling one in sampleEvery offered queries (1 records
// everything), striped across `stripes` independently locked rings.
// totalQueries is clamped to at least one query per stripe.
func NewRecorder(totalQueries, stripes, sampleEvery int) *Recorder {
	if stripes < 1 {
		stripes = 1
	}
	if totalQueries < stripes {
		totalQueries = stripes
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	r := &Recorder{
		sampleEvery: uint64(sampleEvery),
		stripes:     make([]recorderStripe, stripes),
	}
	base, rem := totalQueries/stripes, totalQueries%stripes
	for i := range r.stripes {
		n := base
		if i < rem {
			n++
		}
		r.stripes[i].queries = make([]recordedQuery, n)
	}
	return r
}

// Record offers one query (the set of IDs a single operation looked up) to
// the recorder. The IDs are copied; the caller's slice is not retained.
// Unsampled queries cost a single atomic add.
func (r *Recorder) Record(ids []uint32) {
	if len(ids) == 0 {
		return
	}
	s := r.seq.Add(1)
	if s%r.sampleEvery != 0 {
		return
	}
	st := &r.stripes[(s/r.sampleEvery)%uint64(len(r.stripes))]
	st.mu.Lock()
	q := &st.queries[st.next]
	q.seq = s
	q.ids = append(q.ids[:0], ids...)
	st.next++
	if st.next == len(st.queries) {
		st.next = 0
	}
	if st.filled < len(st.queries) {
		st.filled++
	}
	st.mu.Unlock()
}

// Record1 records a single-ID query without forcing the caller to build a
// slice: the one-element buffer lives on the caller's stack (Record copies
// IDs and never retains the argument), keeping the cache-hit lookup path
// allocation-free while recording is on.
func (r *Recorder) Record1(id uint32) {
	buf := [1]uint32{id}
	r.Record(buf[:])
}

// Len returns the number of queries currently held (at most the configured
// capacity).
func (r *Recorder) Len() int {
	n := 0
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		n += st.filled
		st.mu.Unlock()
	}
	return n
}

// Offered returns the total number of queries offered to Record since the
// recorder was created or last Reset, sampled or not.
func (r *Recorder) Offered() uint64 { return r.seq.Load() }

// Snapshot copies the recorded window out as a Trace over a table of
// numVectors vectors, with queries in recording order (by sequence number),
// so stack-distance analysis sees the stream in approximately the order it
// was served. IDs outside the table are dropped.
func (r *Recorder) Snapshot(tableName string, numVectors int) *Trace {
	var all []recordedQuery
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for j := 0; j < st.filled; j++ {
			q := st.queries[j]
			ids := make([]uint32, 0, len(q.ids))
			for _, id := range q.ids {
				if int(id) < numVectors {
					ids = append(ids, id)
				}
			}
			if len(ids) > 0 {
				all = append(all, recordedQuery{seq: q.seq, ids: ids})
			}
		}
		st.mu.Unlock()
	}
	sort.Slice(all, func(a, b int) bool { return all[a].seq < all[b].seq })
	tr := &Trace{TableName: tableName, NumVectors: numVectors, Queries: make([]Query, len(all))}
	for i, q := range all {
		tr.Queries[i] = q.ids
	}
	return tr
}

// Reset drops every recorded query and restarts the offered-query counter.
// Ring capacity (and the reused ID buffers) are kept.
func (r *Recorder) Reset() {
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		st.next = 0
		st.filled = 0
		st.mu.Unlock()
	}
	r.seq.Store(0)
}
