package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Profile describes the statistical shape of one user embedding table's
// lookup stream. The defaults produced by DefaultProfiles mirror the paper's
// Table 1, scaled down by a configurable factor.
type Profile struct {
	Name       string
	NumVectors int
	// AvgLookups is the mean number of vector lookups this table receives
	// per request (Table 1, "avg request lookups").
	AvgLookups float64
	// CompulsoryMissFrac is the target fraction of lookups that reference a
	// vector never read before in the trace (Table 1, "compulsory misses").
	CompulsoryMissFrac float64
	// Locality in [0,1] is the probability that a lookup is drawn from one
	// of the request's co-access communities rather than from the global
	// popularity distribution. High locality makes the table partitionable
	// by SHP; low locality makes it behave like random access.
	Locality float64
	// CommunitySize is the number of vectors per co-access community.
	CommunitySize int
	// ReuseSkew >= 1 controls popularity skew among already-seen vectors:
	// a reuse lookup picks the touched vector at rank floor(n * U^ReuseSkew),
	// so larger values concentrate accesses on early (hot) vectors.
	ReuseSkew float64
	// HotSetRotation > 0 makes the workload drift: every HotSetRotation
	// requests the community popularity ranking rotates by a fixed stride,
	// so the communities that were hot in one phase go cold in the next.
	// Within a phase the stream is stationary; across phases the working
	// set moves, which is the scenario online adaptation exists for. 0
	// (the default) keeps the classic stationary workload.
	HotSetRotation int
	// Seed makes generation deterministic per table.
	Seed int64
}

// DefaultCommunitySize is used when Profile.CommunitySize is zero. 64
// vectors = 2 NVM blocks at 128 B/vector, which gives SHP useful but not
// trivial structure.
const DefaultCommunitySize = 64

// DefaultProfiles returns the 8 user embedding tables of the paper's
// Table 1, with vector counts scaled by `scale` (1.0 means the paper's 10 M
// and 20 M tables; the experiments default to scale = 0.01 i.e. 100 k/200 k).
//
// Locality is chosen inversely to the compulsory-miss rate: tables whose
// lookups are dominated by unique vectors (e.g. table 8 with 60.8%
// compulsory misses) have little co-access structure to exploit, matching
// the paper's observation that they benefit least from partitioning.
func DefaultProfiles(scale float64) []Profile {
	if scale <= 0 {
		scale = 0.01
	}
	base := []struct {
		vectors    int
		avgLookups float64
		compulsory float64
		locality   float64
	}{
		{10_000_000, 34.83, 0.0416, 0.92},
		{10_000_000, 92.75, 0.0219, 0.95},
		{20_000_000, 26.67, 0.2429, 0.60},
		{20_000_000, 25.14, 0.1946, 0.65},
		{10_000_000, 30.22, 0.2268, 0.62},
		{10_000_000, 53.50, 0.2694, 0.55},
		{10_000_000, 54.35, 0.1136, 0.80},
		{20_000_000, 17.68, 0.6083, 0.25},
	}
	profiles := make([]Profile, len(base))
	for i, b := range base {
		n := int(float64(b.vectors) * scale)
		if n < 1024 {
			n = 1024
		}
		profiles[i] = Profile{
			Name:               fmt.Sprintf("table%d", i+1),
			NumVectors:         n,
			AvgLookups:         b.avgLookups,
			CompulsoryMissFrac: b.compulsory,
			Locality:           b.locality,
			CommunitySize:      DefaultCommunitySize,
			ReuseSkew:          3.0,
			Seed:               int64(1000 + i),
		}
	}
	return profiles
}

// DriftProfiles returns DefaultProfiles with hot-set rotation enabled on
// every table: each table's hot communities rotate every rotateEvery
// requests. This is the drift workload used to exercise online adaptation —
// a configuration trained (or adapted) on one phase degrades on the next
// unless the tuning loop keeps running.
func DriftProfiles(scale float64, rotateEvery int) []Profile {
	profiles := DefaultProfiles(scale)
	for i := range profiles {
		profiles[i].HotSetRotation = rotateEvery
	}
	return profiles
}

// generator holds the evolving state of one table's synthetic stream.
type generator struct {
	p   Profile
	rng *rand.Rand

	numCommunities int
	// members[c] lists the vector IDs belonging to community c. Membership
	// is a random partition of the ID space so that the identity layout
	// carries no locality (as in production, where IDs are assigned
	// independently of co-access).
	members [][]uint32
	// nextFresh[c] indexes the first never-touched member of community c.
	nextFresh []int
	// touched[c] lists community members that have been accessed, in first
	// touch order (early entries are the community's hot vectors).
	touched [][]uint32
	// globalTouched lists all touched vectors for non-local reuse.
	globalTouched []uint32
	communityZipf *rand.Zipf
	communityOf   []int32
	// queryCount and rotStride drive hot-set rotation: the Zipf rank of a
	// theme community is shifted by (phase * rotStride) mod numCommunities,
	// with the phase advancing every HotSetRotation queries.
	queryCount int
	rotStride  int
}

func newGenerator(p Profile) *generator {
	if p.CommunitySize <= 0 {
		p.CommunitySize = DefaultCommunitySize
	}
	if p.ReuseSkew < 1 {
		p.ReuseSkew = 1
	}
	if p.Locality < 0 {
		p.Locality = 0
	}
	if p.Locality > 1 {
		p.Locality = 1
	}
	if p.CompulsoryMissFrac <= 0 {
		p.CompulsoryMissFrac = 0.01
	}
	rng := rand.New(rand.NewSource(p.Seed))
	numCommunities := (p.NumVectors + p.CommunitySize - 1) / p.CommunitySize
	g := &generator{
		p:              p,
		rng:            rng,
		numCommunities: numCommunities,
		members:        make([][]uint32, numCommunities),
		nextFresh:      make([]int, numCommunities),
		touched:        make([][]uint32, numCommunities),
		communityOf:    make([]int32, p.NumVectors),
	}
	// Random partition of the ID space into communities.
	perm := rng.Perm(p.NumVectors)
	for i, v := range perm {
		c := i / p.CommunitySize
		g.members[c] = append(g.members[c], uint32(v))
		g.communityOf[v] = int32(c)
	}
	// Popularity over communities: Zipf with moderate skew so some
	// communities are much hotter than others (drives Figure 4's heavy
	// tails).
	g.communityZipf = rand.NewZipf(rng, 1.3, 4, uint64(numCommunities-1))
	// A stride around a third of the community count (and coprime-ish with
	// it) makes consecutive phases' hot sets nearly disjoint.
	g.rotStride = numCommunities/3 + 1
	return g
}

// rotatedCommunity maps a popularity rank to a concrete community, applying
// the profile's hot-set rotation so the identity of the hot communities
// drifts over time while the popularity *distribution* stays the same.
func (g *generator) rotatedCommunity(rank uint64) int {
	if g.p.HotSetRotation <= 0 {
		return int(rank)
	}
	phase := g.queryCount / g.p.HotSetRotation
	return int((rank + uint64(phase)*uint64(g.rotStride)) % uint64(g.numCommunities))
}

// pickReuse selects an already touched vector from list with the profile's
// popularity skew.
func (g *generator) pickReuse(list []uint32) (uint32, bool) {
	if len(list) == 0 {
		return 0, false
	}
	u := g.rng.Float64()
	idx := int(math.Pow(u, g.p.ReuseSkew) * float64(len(list)))
	if idx >= len(list) {
		idx = len(list) - 1
	}
	return list[idx], true
}

// pickFresh takes the next never-touched vector of community c, if any.
func (g *generator) pickFresh(c int) (uint32, bool) {
	if g.nextFresh[c] >= len(g.members[c]) {
		return 0, false
	}
	v := g.members[c][g.nextFresh[c]]
	g.nextFresh[c]++
	g.touched[c] = append(g.touched[c], v)
	g.globalTouched = append(g.globalTouched, v)
	return v, true
}

// poisson draws a Poisson variate with the given mean using the normal
// approximation for large means and Knuth's method otherwise.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(rng.NormFloat64()*math.Sqrt(mean) + mean))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// nextQuery generates the lookups of one request against this table.
func (g *generator) nextQuery() Query {
	g.queryCount++
	n := poisson(g.rng, g.p.AvgLookups)
	if n > g.p.NumVectors/2 {
		n = g.p.NumVectors / 2
	}
	if n == 0 {
		return Query{}
	}
	// The request concentrates on a handful of communities ("themes").
	numThemes := 1 + n/16
	themes := make([]int, numThemes)
	for i := range themes {
		themes[i] = g.rotatedCommunity(g.communityZipf.Uint64())
	}

	seen := make(map[uint32]struct{}, n)
	q := make(Query, 0, n)
	attempts := 0
	for len(q) < n && attempts < 20*n {
		attempts++
		var id uint32
		var ok bool
		local := g.rng.Float64() < g.p.Locality
		fresh := g.rng.Float64() < g.p.CompulsoryMissFrac
		if local {
			c := themes[g.rng.Intn(len(themes))]
			if fresh {
				id, ok = g.pickFresh(c)
				if !ok {
					id, ok = g.pickReuse(g.touched[c])
				}
			} else {
				id, ok = g.pickReuse(g.touched[c])
				if !ok {
					id, ok = g.pickFresh(c)
				}
			}
		} else {
			if fresh {
				c := g.rng.Intn(g.numCommunities)
				id, ok = g.pickFresh(c)
				if !ok {
					id, ok = g.pickReuse(g.globalTouched)
				}
			} else {
				id, ok = g.pickReuse(g.globalTouched)
				if !ok {
					c := g.rng.Intn(g.numCommunities)
					id, ok = g.pickFresh(c)
				}
			}
		}
		if !ok {
			// Table exhausted (tiny tables in tests): fall back to uniform.
			id = uint32(g.rng.Intn(g.p.NumVectors))
		}
		if _, dup := seen[id]; dup {
			// Avoid duplicate lookups within one request; retry a bounded
			// number of times by drawing uniformly from the touched set.
			if alt, okAlt := g.pickReuse(g.globalTouched); okAlt {
				if _, dup2 := seen[alt]; !dup2 {
					id = alt
				} else {
					continue
				}
			} else {
				continue
			}
		}
		seen[id] = struct{}{}
		q = append(q, id)
	}
	return q
}

// GenerateTable produces a synthetic trace of numQueries requests for a
// single table profile.
func GenerateTable(p Profile, numQueries int) *Trace {
	g := newGenerator(p)
	tr := &Trace{TableName: p.Name, NumVectors: p.NumVectors, Queries: make([]Query, 0, numQueries)}
	for i := 0; i < numQueries; i++ {
		tr.Queries = append(tr.Queries, g.nextQuery())
	}
	return tr
}

// GenerateWorkload produces traces for every profile over the same stream of
// numRequests requests (query i in every table belongs to request i), and
// records the community assignment of each table so embedding generation can
// be aligned with co-access.
func GenerateWorkload(profiles []Profile, numRequests int) *Workload {
	w := &Workload{
		Profiles:    profiles,
		Traces:      make([]*Trace, len(profiles)),
		Communities: make([][]int32, len(profiles)),
	}
	for i, p := range profiles {
		g := newGenerator(p)
		tr := &Trace{TableName: p.Name, NumVectors: p.NumVectors, Queries: make([]Query, 0, numRequests)}
		for r := 0; r < numRequests; r++ {
			tr.Queries = append(tr.Queries, g.nextQuery())
		}
		w.Traces[i] = tr
		w.Communities[i] = g.communityOf
	}
	return w
}

// CommunityAssignment returns the community index of every vector for a
// profile, without generating any queries. It is deterministic in the
// profile's seed and matches what GenerateWorkload records.
func CommunityAssignment(p Profile) []int32 {
	g := newGenerator(p)
	return g.communityOf
}
