package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceDecode throws arbitrary bytes at ReadTrace. The decoder must
// never panic or allocate unboundedly — it either returns a valid trace or
// an error — and any trace it accepts must re-encode and re-decode to the
// same value (the codec is a bijection on its accepted set).
func FuzzTraceDecode(f *testing.F) {
	// Seed corpus: valid encodings of a few representative traces...
	seedTraces := []*Trace{
		{TableName: "t", NumVectors: 8, Queries: []Query{{0, 1, 2}, {7}, {}}},
		{TableName: "", NumVectors: 0, Queries: nil},
		{TableName: "table1", NumVectors: 1 << 20, Queries: []Query{{42, 42, 42, 1048575}}},
	}
	for _, tr := range seedTraces {
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// ...plus hostile headers: truncations and absurd length claims.
	var buf bytes.Buffer
	seedTraces[0].WriteTo(&buf)
	valid := buf.Bytes()
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:len(traceMagic)+1])
	f.Add([]byte(traceMagic))
	f.Add([]byte("BNDTRC99"))
	f.Add(append([]byte(traceMagic), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := tr.WriteTo(&out); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := ReadTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if tr2.TableName != tr.TableName || tr2.NumVectors != tr.NumVectors || len(tr2.Queries) != len(tr.Queries) {
			t.Fatalf("round trip changed the trace header")
		}
		for i := range tr.Queries {
			if len(tr2.Queries[i]) != len(tr.Queries[i]) {
				t.Fatalf("round trip changed query %d length", i)
			}
			for j := range tr.Queries[i] {
				if tr2.Queries[i][j] != tr.Queries[i][j] {
					t.Fatalf("round trip changed query %d lookup %d", i, j)
				}
			}
		}
	})
}
