// Package alloc distributes a global DRAM budget across embedding tables.
//
// Bandana runs one cache per table; §4.3.3 of the paper notes that the hit
// rate curves produced by the miniature caches let the datacenter operator
// split DRAM across tables to maximise the total hit rate. Because the
// measured curves are convex (diminishing returns), a greedy
// marginal-utility allocation — repeatedly giving the next chunk of DRAM to
// the table whose hit count grows the most — is optimal, which is the
// Dynacache/Cliffhanger-style approach the paper cites.
package alloc

import (
	"fmt"

	"bandana/internal/mrc"
)

// TableDemand describes one table's appetite for DRAM.
type TableDemand struct {
	Name string
	// HRC is the table's hit-rate curve (hits as a function of cached
	// vectors), built from its lookup trace.
	HRC *mrc.HRC
	// MaxVectors caps the allocation (a cache larger than the table is
	// useless). Zero means no cap.
	MaxVectors int
	// MinVectors guarantees a floor allocation (e.g. one block worth of
	// vectors). Zero means no floor.
	MinVectors int
}

// Options configures an allocation run.
type Options struct {
	// TotalVectors is the DRAM budget in vectors across all tables.
	TotalVectors int
	// ChunkVectors is the granularity of the greedy allocation. Defaults to
	// TotalVectors/256 (at least 1).
	ChunkVectors int
	// LookaheadVectors widens the horizon over which each step's marginal
	// utility is measured (as a per-vector density). Hit-rate curves built
	// from sampled stack distances are step functions whose plateaus can be
	// wider than a chunk; judging a chunk only by its own span sees zero
	// gain almost everywhere and collapses into an arbitrary tie-broken
	// split, so callers allocating from sampled curves should set a horizon
	// spanning several curve steps (a curve sampled at rate r has steps
	// every 1/r vectors; the adaptation engine uses TotalVectors/16). The
	// default (0) keeps the classic chunk-local scoring.
	LookaheadVectors int
}

// Result maps each table (by position in the demand slice) to its allocated
// cache size in vectors.
type Result struct {
	Vectors []int
	// ExpectedHits is the predicted total hit count at this allocation.
	ExpectedHits float64
}

// Allocate splits the DRAM budget across tables by greedy marginal utility.
func Allocate(demands []TableDemand, opts Options) (*Result, error) {
	if len(demands) == 0 {
		return nil, fmt.Errorf("alloc: no tables")
	}
	if opts.TotalVectors <= 0 {
		return nil, fmt.Errorf("alloc: non-positive DRAM budget %d", opts.TotalVectors)
	}
	for i, d := range demands {
		if d.HRC == nil {
			return nil, fmt.Errorf("alloc: table %d (%s) has no hit rate curve", i, d.Name)
		}
	}
	chunk := opts.ChunkVectors
	if chunk <= 0 {
		chunk = opts.TotalVectors / 256
		if chunk < 1 {
			chunk = 1
		}
	}
	lookahead := opts.LookaheadVectors

	alloc := make([]int, len(demands))
	remaining := opts.TotalVectors

	// Satisfy floors first.
	for i, d := range demands {
		if d.MinVectors > 0 && remaining > 0 {
			grant := d.MinVectors
			if grant > remaining {
				grant = remaining
			}
			alloc[i] = grant
			remaining -= grant
		}
	}

	for remaining > 0 {
		best := -1
		var bestGain float64
		for i, d := range demands {
			if d.MaxVectors > 0 && alloc[i] >= d.MaxVectors {
				continue
			}
			grant := chunk
			if grant > remaining {
				grant = remaining
			}
			if d.MaxVectors > 0 && alloc[i]+grant > d.MaxVectors {
				grant = d.MaxVectors - alloc[i]
			}
			if grant <= 0 {
				continue
			}
			// Default: the classic greedy — absolute marginal hits over the
			// actual grant. With a lookahead, score marginal-hit *density*
			// over the horizon instead: on sampled (step-function) curves a
			// single chunk usually sits inside one plateau and reads as zero
			// gain even when the table has plenty of curve left.
			var gain float64
			if lookahead <= 0 {
				gain = d.HRC.MarginalHits(alloc[i], alloc[i]+grant)
			} else {
				horizon := alloc[i] + lookahead
				if d.MaxVectors > 0 && horizon > d.MaxVectors {
					horizon = d.MaxVectors
				}
				span := horizon - alloc[i]
				if span < grant {
					span = grant
				}
				gain = d.HRC.MarginalHits(alloc[i], alloc[i]+span) / float64(span)
			}
			// Ties (both curves exhausted or identically flat) are broken
			// towards the table with the smallest allocation so far, so
			// that flat regions do not starve later tables.
			if best == -1 || gain > bestGain || (gain == bestGain && alloc[i] < alloc[best]) {
				best = i
				bestGain = gain
			}
		}
		if best == -1 {
			break // every table is capped
		}
		grant := chunk
		if grant > remaining {
			grant = remaining
		}
		if demands[best].MaxVectors > 0 && alloc[best]+grant > demands[best].MaxVectors {
			grant = demands[best].MaxVectors - alloc[best]
		}
		alloc[best] += grant
		remaining -= grant
	}

	res := &Result{Vectors: alloc}
	for i, d := range demands {
		res.ExpectedHits += d.HRC.HitsAt(alloc[i])
	}
	return res, nil
}

// EvenSplit is the baseline allocation: the budget divided equally across
// tables (capped by table size). Used as a comparison point in the
// capacity-planner example.
func EvenSplit(demands []TableDemand, totalVectors int) *Result {
	alloc := make([]int, len(demands))
	if len(demands) == 0 {
		return &Result{Vectors: alloc}
	}
	per := totalVectors / len(demands)
	for i, d := range demands {
		a := per
		if d.MaxVectors > 0 && a > d.MaxVectors {
			a = d.MaxVectors
		}
		alloc[i] = a
	}
	res := &Result{Vectors: alloc}
	for i, d := range demands {
		res.ExpectedHits += d.HRC.HitsAt(alloc[i])
	}
	return res
}
