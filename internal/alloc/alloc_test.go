package alloc

import (
	"math"
	"math/rand"
	"testing"

	"bandana/internal/mrc"
)

// hrcFromStream builds a hit-rate curve for a synthetic stream with the
// given number of hot keys (heavier reuse = steeper curve).
func hrcFromStream(hotKeys int, accesses int, seed int64) *mrc.HRC {
	rng := rand.New(rand.NewSource(seed))
	stream := make([]uint32, accesses)
	for i := range stream {
		stream[i] = uint32(math.Pow(rng.Float64(), 3) * float64(hotKeys))
	}
	return mrc.StackDistances(stream).HitRateCurve()
}

func TestAllocateErrors(t *testing.T) {
	if _, err := Allocate(nil, Options{TotalVectors: 100}); err == nil {
		t.Fatal("empty demand list should error")
	}
	d := []TableDemand{{Name: "a", HRC: hrcFromStream(100, 1000, 1)}}
	if _, err := Allocate(d, Options{TotalVectors: 0}); err == nil {
		t.Fatal("zero budget should error")
	}
	if _, err := Allocate([]TableDemand{{Name: "x"}}, Options{TotalVectors: 10}); err == nil {
		t.Fatal("missing HRC should error")
	}
}

func TestAllocateUsesFullBudget(t *testing.T) {
	demands := []TableDemand{
		{Name: "hot", HRC: hrcFromStream(200, 20000, 1)},
		{Name: "cold", HRC: hrcFromStream(5000, 20000, 2)},
	}
	res, err := Allocate(demands, Options{TotalVectors: 1000, ChunkVectors: 50})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, v := range res.Vectors {
		total += v
	}
	if total != 1000 {
		t.Fatalf("allocated %d vectors, want 1000", total)
	}
	if res.ExpectedHits <= 0 {
		t.Fatalf("expected hits should be positive")
	}
}

func TestAllocateFavoursCacheableTable(t *testing.T) {
	// The "hot" table concentrates accesses on few keys; the "uniform"
	// table spreads them widely. Greedy allocation should give the uniform
	// table no more than the hot one until the hot one saturates.
	demands := []TableDemand{
		{Name: "hot", HRC: hrcFromStream(300, 30000, 3)},
		{Name: "uniform", HRC: hrcFromStream(20000, 30000, 4)},
	}
	res, err := Allocate(demands, Options{TotalVectors: 400, ChunkVectors: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vectors[0] <= res.Vectors[1] {
		t.Fatalf("hot table should receive more DRAM: got %v", res.Vectors)
	}
}

func TestAllocateBeatsEvenSplit(t *testing.T) {
	demands := []TableDemand{
		{Name: "a", HRC: hrcFromStream(200, 30000, 5)},
		{Name: "b", HRC: hrcFromStream(3000, 30000, 6)},
		{Name: "c", HRC: hrcFromStream(30000, 30000, 7)},
	}
	greedy, err := Allocate(demands, Options{TotalVectors: 1500, ChunkVectors: 50})
	if err != nil {
		t.Fatal(err)
	}
	even := EvenSplit(demands, 1500)
	if greedy.ExpectedHits < even.ExpectedHits {
		t.Fatalf("greedy allocation (%.0f hits) should not lose to even split (%.0f hits)",
			greedy.ExpectedHits, even.ExpectedHits)
	}
}

func TestAllocateRespectsCapsAndFloors(t *testing.T) {
	demands := []TableDemand{
		{Name: "capped", HRC: hrcFromStream(200, 20000, 8), MaxVectors: 100},
		{Name: "floored", HRC: hrcFromStream(5000, 20000, 9), MinVectors: 150},
	}
	res, err := Allocate(demands, Options{TotalVectors: 500, ChunkVectors: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vectors[0] > 100 {
		t.Fatalf("cap violated: %d", res.Vectors[0])
	}
	if res.Vectors[1] < 150 {
		t.Fatalf("floor violated: %d", res.Vectors[1])
	}
}

func TestAllocateAllTablesCapped(t *testing.T) {
	demands := []TableDemand{
		{Name: "a", HRC: hrcFromStream(100, 5000, 10), MaxVectors: 50},
		{Name: "b", HRC: hrcFromStream(100, 5000, 11), MaxVectors: 50},
	}
	res, err := Allocate(demands, Options{TotalVectors: 1000, ChunkVectors: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vectors[0] != 50 || res.Vectors[1] != 50 {
		t.Fatalf("capped allocation wrong: %v", res.Vectors)
	}
}

func TestEvenSplitEmpty(t *testing.T) {
	res := EvenSplit(nil, 100)
	if len(res.Vectors) != 0 || res.ExpectedHits != 0 {
		t.Fatalf("empty even split should be empty")
	}
}

func TestAllocateDefaultChunk(t *testing.T) {
	demands := []TableDemand{
		{Name: "a", HRC: hrcFromStream(500, 10000, 12)},
	}
	res, err := Allocate(demands, Options{TotalVectors: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vectors[0] != 100 {
		t.Fatalf("single table should receive the whole budget, got %d", res.Vectors[0])
	}
}
