package alloc

import (
	"testing"

	"bandana/internal/mrc"
	"bandana/internal/trace"
)

// driftStream generates a hot-set-rotation lookup stream for one synthetic
// table profile and returns its flattened accesses.
func driftStream(seed int64, numVectors, queries, rotate int) []uint32 {
	p := trace.Profile{
		Name: "d", NumVectors: numVectors, AvgLookups: 20,
		CompulsoryMissFrac: 0.05, Locality: 0.9, CommunitySize: 64,
		ReuseSkew: 2, Seed: seed, HotSetRotation: rotate,
	}
	tr := trace.GenerateTable(p, queries)
	var flat []uint32
	for _, q := range tr.Queries {
		flat = append(flat, q...)
	}
	return flat
}

func driftHRC(seed int64, numVectors, queries, rotate int, sampling float64) *mrc.HRC {
	return mrc.SampledStackDistances(driftStream(seed, numVectors, queries, rotate), sampling).HitRateCurve()
}

// TestAllocateDeterministicOnDriftStreams pins determinism: identical
// drifting streams (fixed seeds) must produce identical allocations, run
// after run.
func TestAllocateDeterministicOnDriftStreams(t *testing.T) {
	build := func() *Result {
		demands := []TableDemand{
			{Name: "a", HRC: driftHRC(1, 4096, 300, 100, 0.1), MaxVectors: 4096, MinVectors: 32},
			{Name: "b", HRC: driftHRC(2, 8192, 300, 100, 0.1), MaxVectors: 8192, MinVectors: 32},
			{Name: "c", HRC: driftHRC(3, 2048, 300, 100, 0.1), MaxVectors: 2048, MinVectors: 32},
		}
		res, err := Allocate(demands, Options{TotalVectors: 900, LookaheadVectors: 56})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := build()
	for run := 0; run < 3; run++ {
		again := build()
		for i := range first.Vectors {
			if first.Vectors[i] != again.Vectors[i] {
				t.Fatalf("run %d: allocation %v != %v", run, again.Vectors, first.Vectors)
			}
		}
		if again.ExpectedHits != first.ExpectedHits {
			t.Fatalf("expected hits drifted: %f != %f", again.ExpectedHits, first.ExpectedHits)
		}
	}
}

// TestAllocateMonotonicBudgetUse verifies budget discipline on drifting
// streams: the allocation never exceeds the budget, uses all of it while
// any table is uncapped, and growing the budget never shrinks the total.
func TestAllocateMonotonicBudgetUse(t *testing.T) {
	demands := []TableDemand{
		{Name: "a", HRC: driftHRC(1, 4096, 300, 100, 0.1), MaxVectors: 4096, MinVectors: 32},
		{Name: "b", HRC: driftHRC(2, 8192, 300, 100, 0.1), MaxVectors: 8192, MinVectors: 32},
	}
	prevTotal := 0
	prevHits := -1.0
	for _, budget := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
		res, err := Allocate(demands, Options{TotalVectors: budget, LookaheadVectors: budget / 16})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i, v := range res.Vectors {
			if v < 0 {
				t.Fatalf("budget %d: negative allocation %v", budget, res.Vectors)
			}
			if demands[i].MaxVectors > 0 && v > demands[i].MaxVectors {
				t.Fatalf("budget %d: table %d over its cap: %v", budget, i, res.Vectors)
			}
			total += v
		}
		if total > budget {
			t.Fatalf("budget %d exceeded: %v sums to %d", budget, res.Vectors, total)
		}
		if total != budget {
			t.Fatalf("budget %d not fully used while tables uncapped: %v", budget, res.Vectors)
		}
		if total < prevTotal {
			t.Fatalf("total allocation shrank when budget grew: %d -> %d", prevTotal, total)
		}
		if res.ExpectedHits < prevHits {
			t.Fatalf("expected hits decreased with a larger budget: %f -> %f", prevHits, res.ExpectedHits)
		}
		prevTotal, prevHits = total, res.ExpectedHits
	}
}

// TestAllocateNoStarvationOfWarmingTable: a table that has barely been
// observed (a near-empty curve — it is still warming up) must keep its
// floor allocation even when siblings have steep curves that would
// otherwise absorb every chunk.
func TestAllocateNoStarvationOfWarmingTable(t *testing.T) {
	warming := mrc.SampledStackDistances([]uint32{1, 2, 3}, 1).HitRateCurve() // ~no reuse observed yet
	demands := []TableDemand{
		{Name: "hot", HRC: driftHRC(1, 4096, 400, 0, 0.1), MaxVectors: 4096, MinVectors: 32},
		{Name: "warming", HRC: warming, MaxVectors: 8192, MinVectors: 64},
	}
	res, err := Allocate(demands, Options{TotalVectors: 1000, LookaheadVectors: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vectors[1] < 64 {
		t.Fatalf("warming table starved below its floor: %v", res.Vectors)
	}
	// The warming table keeps its floor and a fair share of the slack once
	// the hot curve is exhausted, but must not out-allocate the table with
	// demonstrated demand.
	if res.Vectors[0] < res.Vectors[1] {
		t.Fatalf("warming table out-allocated the hot table: %v", res.Vectors)
	}
}

// TestAllocateLookaheadSeesAcrossPlateaus is the regression test for the
// sampled-curve pathology: with spatially sampled curves (steps every
// 1/rate vectors) and a chunk smaller than a step, chunk-local scoring sees
// zero marginal gain everywhere and falls back to a tie-broken even split.
// The lookahead must recover the skewed split the curves actually justify.
func TestAllocateLookaheadSeesAcrossPlateaus(t *testing.T) {
	// Steep table: heavy reuse; flat table: almost none.
	steep := driftHRC(7, 4096, 400, 0, 0.1)
	flatStream := make([]uint32, 4000)
	for i := range flatStream {
		flatStream[i] = uint32(i % 3900) // reuse only at distance 3900, far past the budget
	}
	flat := mrc.SampledStackDistances(flatStream, 0.1).HitRateCurve()
	demands := []TableDemand{
		{Name: "steep", HRC: steep, MaxVectors: 4096, MinVectors: 32},
		{Name: "flat", HRC: flat, MaxVectors: 8192, MinVectors: 32},
	}
	res, err := Allocate(demands, Options{TotalVectors: 600, LookaheadVectors: 600 / 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vectors[0] <= res.Vectors[1] {
		t.Fatalf("lookahead failed to break the plateau tie: %v", res.Vectors)
	}
}
