package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bandana/internal/metrics"
)

// Backend serves bwp requests. Implementations return raw fp16 vector bytes
// (the store's canonical encoding) so the wire path never widens to float.
//
// A Backend may return *Error to pick the error code sent to the client;
// any other error is reported as CodeInternal.
type Backend interface {
	// LookupBatchRaw resolves ids in table to their fp16 encodings. All
	// returned vectors are dim elements (2*dim bytes) long. release, when
	// non-nil, is called by the server exactly once after it has serialized
	// the vectors into the response frame: it lets the backend hand out
	// zero-copy views into its own storage (e.g. the store's cache arenas)
	// whose lifetime ends at the release.
	LookupBatchRaw(table string, ids []uint32) (dim int, vecs [][]byte, release func(), err error)
	// UpdateRaw overwrites id in table with the given fp16 encoding.
	UpdateRaw(table string, id uint32, raw []byte) error
}

// ServerStats are cumulative counters for one Server.
type ServerStats struct {
	ConnsTotal  int64 `json:"conns_total"`
	ConnsActive int64 `json:"conns_active"`
	Requests    int64 `json:"requests"`
	Errors      int64 `json:"errors"` // error frames sent
	// Ops breaks requests down by opcode; only opcodes that have been seen
	// appear. Latency covers the full handle time of one request frame
	// (parse, backend call, response encode) in microseconds.
	Ops map[string]OpStats `json:"ops,omitempty"`
}

// OpStats are the per-opcode counters inside ServerStats.
type OpStats struct {
	Requests int64            `json:"requests"`
	Errors   int64            `json:"errors"` // error frames sent for this opcode
	Latency  metrics.Snapshot `json:"latency"`
}

// Opcode dispatch indexes for per-opcode metrics. Unknown opcodes share the
// "other" slot so a misbehaving client cannot grow the metric set unboundedly.
const (
	opIdxLookup = iota
	opIdxUpdate
	opIdxPing
	opIdxOther
	opIdxCount
)

// OpNames maps the per-opcode metric slots to their wire names, in slot
// order. Exposed so metric renderers label series consistently.
var OpNames = [opIdxCount]string{"lookup", "update", "ping", "other"}

func opIndex(op uint8) int {
	switch op {
	case OpLookup:
		return opIdxLookup
	case OpUpdate:
		return opIdxUpdate
	case OpPing:
		return opIdxPing
	}
	return opIdxOther
}

// opMetrics are one opcode's counters. The latency histogram is lock-free,
// so the multiplexed handler goroutines record without coordination.
type opMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64
	latency  *metrics.Histogram
}

// Server accepts bwp/1 connections and dispatches frames to a Backend.
// Requests multiplexed on one connection are handled concurrently and
// responses are written back as they finish, coalescing queued frames into
// single flushes.
type Server struct {
	Backend Backend
	// MaxBatch caps ids per lookup request; 0 means DefaultMaxBatch.
	MaxBatch int

	connsTotal  atomic.Int64
	connsActive atomic.Int64
	requests    atomic.Int64
	errorFrames atomic.Int64

	// Per-opcode metrics are built lazily because Server is constructed as a
	// zero value (&Server{Backend: ...}); opsOnce gives every goroutine a
	// happens-before edge to the histogram allocations.
	opsOnce sync.Once
	ops     *[opIdxCount]opMetrics
}

// opsTable returns the per-opcode metric slots, building them on first use.
func (s *Server) opsTable() *[opIdxCount]opMetrics {
	s.opsOnce.Do(func() {
		arr := new([opIdxCount]opMetrics)
		for i := range arr {
			arr[i].latency = metrics.NewLatencyHistogram()
		}
		s.ops = arr
	})
	return s.ops
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		ConnsTotal:  s.connsTotal.Load(),
		ConnsActive: s.connsActive.Load(),
		Requests:    s.requests.Load(),
		Errors:      s.errorFrames.Load(),
	}
	ops := s.opsTable()
	for i := range ops {
		om := &ops[i]
		req, errs := om.requests.Load(), om.errors.Load()
		if req == 0 && errs == 0 {
			continue
		}
		if st.Ops == nil {
			st.Ops = make(map[string]OpStats, opIdxCount)
		}
		st.Ops[OpNames[i]] = OpStats{Requests: req, Errors: errs, Latency: om.latency.Snapshot()}
	}
	return st
}

func (s *Server) maxBatch() int {
	if s.MaxBatch > 0 {
		return s.MaxBatch
	}
	return DefaultMaxBatch
}

// Serve accepts connections until ln fails (returning net.ErrClosed after
// ln.Close). Each connection is served on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.serveTracked(conn)
	}
}

func (s *Server) serveTracked(conn net.Conn) {
	s.connsTotal.Add(1)
	s.connsActive.Add(1)
	defer s.connsActive.Add(-1)
	s.ServeConn(conn)
}

// ServeConn handles one connection and returns when it is closed or the
// stream breaks. Unframeable input (bad magic, unsupported version,
// oversized frame, CRC mismatch) tears the connection down, answering with
// an error frame first when the request id is still trustworthy;
// well-framed but invalid requests get per-id error frames and the
// connection stays open.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()

	out := make(chan []byte, 64)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		s.writeLoop(conn, out)
	}()

	var handlers sync.WaitGroup
	s.readLoop(conn, out, &handlers)

	// Let in-flight handlers finish and queue their responses, then shut
	// the writer down once everything queued has been written (or the
	// writer has failed and is draining).
	handlers.Wait()
	close(out)
	writerWG.Wait()
}

func (s *Server) readLoop(conn net.Conn, out chan<- []byte, handlers *sync.WaitGroup) {
	br := bufio.NewReaderSize(conn, 64<<10)
	var hdr [HeaderLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		h, err := parseHeader(hdr[:])
		if err != nil {
			// The magic validated but the frame is unusable. The request
			// id is still meaningful, so answer before closing; with a bad
			// magic the stream is garbage and there is nothing to say.
			if !errors.Is(err, ErrBadMagic) {
				reqID := binary.LittleEndian.Uint64(hdr[8:])
				s.sendError(out, reqID, false, CodeBadRequest, err.Error())
			}
			return
		}
		payload := make([]byte, h.Len)
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		if h.Flags&FlagCRC != 0 {
			var tr [4]byte
			if _, err := io.ReadFull(br, tr[:]); err != nil {
				return
			}
			if binary.LittleEndian.Uint32(tr[:]) != Checksum(payload) {
				// Corruption in transit: nothing later on this stream can
				// be trusted either.
				s.sendError(out, h.ReqID, false, CodeBadRequest, ErrBadCRC.Error())
				return
			}
		}
		if h.Flags&^knownFlags != 0 || h.Flags&FlagError != 0 {
			s.sendError(out, h.ReqID, h.Flags&FlagCRC != 0, CodeBadRequest, "unsupported flags")
			continue
		}
		s.requests.Add(1)
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			s.handle(h, payload, out)
		}()
	}
}

// handle services one request frame and queues the response, recording the
// opcode's request count, error count, and full handle latency (parse +
// backend call + response encode).
func (s *Server) handle(h Header, payload []byte, out chan<- []byte) {
	om := &s.opsTable()[opIndex(h.Opcode)]
	om.requests.Add(1)
	start := time.Now()
	defer func() {
		om.latency.Observe(float64(time.Since(start)) / float64(time.Microsecond))
	}()
	fail := func(code uint16, msg string) {
		om.errors.Add(1)
		s.sendError(out, h.ReqID, h.Flags&FlagCRC != 0, code, msg)
	}
	failBackend := func(err error) {
		om.errors.Add(1)
		s.sendBackendError(out, h.ReqID, h.Flags&FlagCRC != 0, err)
	}

	withCRC := h.Flags&FlagCRC != 0
	resp := Header{Opcode: h.Opcode, ReqID: h.ReqID}
	if withCRC {
		resp.Flags = FlagCRC
	}
	switch h.Opcode {
	case OpLookup:
		table, ids, err := parseLookupRequest(payload)
		if err != nil {
			fail(CodeBadRequest, err.Error())
			return
		}
		if len(ids) > s.maxBatch() {
			fail(CodeTooLarge, "batch exceeds server limit")
			return
		}
		dim, vecs, release, err := s.Backend.LookupBatchRaw(table, ids)
		if err != nil {
			failBackend(err)
			return
		}
		pay := appendLookupResponse(make([]byte, 0, lookupResponseHeaderLen+len(vecs)*dim*2), dim, vecs)
		if release != nil {
			// The vectors are serialized into pay; the backend's views are
			// done with.
			release()
		}
		out <- appendFrame(make([]byte, 0, HeaderLen+len(pay)+4), resp, pay)
	case OpUpdate:
		table, id, raw, err := parseUpdateRequest(payload)
		if err != nil {
			fail(CodeBadRequest, err.Error())
			return
		}
		if err := s.Backend.UpdateRaw(table, id, raw); err != nil {
			failBackend(err)
			return
		}
		out <- appendFrame(nil, resp, nil)
	case OpPing:
		out <- appendFrame(nil, resp, nil)
	default:
		fail(CodeBadRequest, "unknown opcode")
	}
}

func (s *Server) sendBackendError(out chan<- []byte, reqID uint64, withCRC bool, err error) {
	var werr *Error
	if errors.As(err, &werr) {
		s.sendError(out, reqID, withCRC, werr.Code, werr.Msg)
		return
	}
	s.sendError(out, reqID, withCRC, CodeInternal, err.Error())
}

func (s *Server) sendError(out chan<- []byte, reqID uint64, withCRC bool, code uint16, msg string) {
	s.errorFrames.Add(1)
	out <- appendErrorFrame(nil, reqID, withCRC, code, msg)
}

// writeLoop drains queued response frames into the connection. Frames that
// pile up while a write is in progress are coalesced into the same flush,
// so a burst of multiplexed responses costs one syscall, while an isolated
// response is flushed immediately. After a write error it keeps draining
// (discarding) so handlers never block, and closes the conn so the read
// loop unblocks too.
func (s *Server) writeLoop(conn net.Conn, out <-chan []byte) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	var err error
	for frame := range out {
		for {
			if err == nil {
				_, err = bw.Write(frame)
			}
			select {
			case next, ok := <-out:
				if !ok {
					if err == nil {
						bw.Flush()
					}
					return
				}
				frame = next
				continue
			default:
			}
			break
		}
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			conn.Close()
		}
	}
}
