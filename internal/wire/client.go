package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bandana/internal/fp16"
)

// Options configure a Client.
type Options struct {
	// DialTimeout bounds connection establishment in Dial. Zero means no
	// timeout.
	DialTimeout time.Duration
	// CRC requests CRC32-C payload trailers on every frame in both
	// directions: the client appends them to requests and the server
	// mirrors the flag on responses, which the client then verifies.
	CRC bool
}

// Client is a bwp/1 client over one persistent connection. Calls from any
// number of goroutines are multiplexed by request id: writes from
// concurrent callers coalesce into shared flushes, and a single reader
// goroutine routes responses back by id, so slow requests never block fast
// ones. After a transport error the client is dead (Err reports why) and
// every pending and future call fails; the caller reconnects with Dial.
type Client struct {
	conn net.Conn
	crc  bool

	wmu  sync.Mutex // guards bw, werr
	bw   *bufio.Writer
	werr error
	wq   atomic.Int32 // senders queued for wmu (flush coalescing)

	mu      sync.Mutex
	pending map[uint64]chan delivered
	closed  bool
	err     error

	nextID   atomic.Uint64
	readerWG sync.WaitGroup
}

type delivered struct {
	flags   byte
	payload []byte
}

// Dial connects to a bwp server.
func Dial(addr string, opts Options) (*Client, error) {
	d := net.Dialer{Timeout: opts.DialTimeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, opts), nil
}

// NewClient wraps an established connection (any net.Conn, e.g. net.Pipe in
// tests) in a Client and starts its reader.
func NewClient(conn net.Conn, opts Options) *Client {
	c := &Client{
		conn:    conn,
		crc:     opts.CRC,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		pending: make(map[uint64]chan delivered),
	}
	c.readerWG.Add(1)
	go func() {
		defer c.readerWG.Done()
		c.readLoop()
	}()
	return c
}

// Close tears the connection down. Pending calls fail with ErrClosed.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	c.readerWG.Wait()
	return nil
}

// Err returns the error that killed the client, or nil while it is usable.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// fail marks the client dead, wakes every pending call and closes the
// connection. The first cause wins; later calls are no-ops.
func (c *Client) fail(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = cause
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	c.conn.Close()
}

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var hdr [HeaderLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		h, err := parseHeader(hdr[:])
		if err != nil {
			c.fail(err)
			return
		}
		payload := make([]byte, h.Len)
		if _, err := io.ReadFull(br, payload); err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		if h.Flags&FlagCRC != 0 {
			var tr [4]byte
			if _, err := io.ReadFull(br, tr[:]); err != nil {
				c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
				return
			}
			if binary.LittleEndian.Uint32(tr[:]) != Checksum(payload) {
				c.fail(ErrBadCRC)
				return
			}
		}
		c.mu.Lock()
		ch := c.pending[h.ReqID]
		delete(c.pending, h.ReqID)
		c.mu.Unlock()
		if ch != nil {
			// Buffered (cap 1) and delivered at most once: never blocks.
			ch <- delivered{flags: h.Flags, payload: payload}
		}
		// Unknown request id: a response to a call the caller abandoned
		// (context cancelled). Dropped on the floor by design.
	}
}

// send writes one frame. Concurrent senders coalesce: a sender skips the
// flush when another sender is already queued for the lock, because that
// sender is committed to writing and will flush (or defer to yet another).
// The last writer in a burst always flushes, so nothing sits in the buffer
// while the line is idle.
func (c *Client) send(frame []byte) error {
	c.wq.Add(1)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.werr != nil {
		c.wq.Add(-1)
		return c.werr
	}
	_, err := c.bw.Write(frame)
	if c.wq.Add(-1) == 0 && err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		c.werr = err
		c.fail(err)
	}
	return err
}

// roundTrip sends one request and waits for its response payload.
func (c *Client) roundTrip(ctx context.Context, opcode byte, payload []byte) ([]byte, error) {
	id := c.nextID.Add(1)
	ch := make(chan delivered, 1)
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	h := Header{Opcode: opcode, ReqID: id}
	if c.crc {
		h.Flags = FlagCRC
	}
	frame := appendFrame(make([]byte, 0, HeaderLen+len(payload)+4), h, payload)
	if err := c.send(frame); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}

	select {
	case d, ok := <-ch:
		if !ok {
			return nil, c.Err()
		}
		if d.flags&FlagError != 0 {
			return nil, parseError(d.payload)
		}
		return d.payload, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// LookupBatchRaw resolves ids to their fp16 encodings. The returned views
// share one contiguous response buffer owned by the caller.
func (c *Client) LookupBatchRaw(ctx context.Context, table string, ids []uint32) (dim int, vecs [][]byte, err error) {
	req := appendLookupRequest(make([]byte, 0, 2+len(table)+4+4*len(ids)), table, ids)
	resp, err := c.roundTrip(ctx, OpLookup, req)
	if err != nil {
		return 0, nil, err
	}
	return parseLookupResponse(resp, len(ids))
}

// LookupBatchF32 resolves ids and decodes the fp16 response to float32.
// All vectors share one backing array, decoded with a single bulk
// fp16.DecodeSlice pass over the contiguous response payload.
func (c *Client) LookupBatchF32(ctx context.Context, table string, ids []uint32) ([][]float32, error) {
	req := appendLookupRequest(make([]byte, 0, 2+len(table)+4+4*len(ids)), table, ids)
	resp, err := c.roundTrip(ctx, OpLookup, req)
	if err != nil {
		return nil, err
	}
	dim, _, err := parseLookupResponse(resp, len(ids))
	if err != nil {
		return nil, err
	}
	flat := make([]float32, len(ids)*dim)
	fp16.DecodeSlice(flat, resp[lookupResponseHeaderLen:])
	out := make([][]float32, len(ids))
	for i := range out {
		out[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return out, nil
}

// Update overwrites id in table with raw fp16 bytes.
func (c *Client) Update(ctx context.Context, table string, id uint32, raw []byte) error {
	req := appendUpdateRequest(make([]byte, 0, 2+len(table)+4+len(raw)), table, id, raw)
	_, err := c.roundTrip(ctx, OpUpdate, req)
	return err
}

// UpdateF32 encodes vec to fp16 and updates id in table.
func (c *Client) UpdateF32(ctx context.Context, table string, id uint32, vec []float32) error {
	return c.Update(ctx, table, id, fp16.EncodeSlice(make([]byte, 0, len(vec)*fp16.ByteSize), vec))
}

// Ping round-trips an empty frame, verifying liveness and protocol accord.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, OpPing, nil)
	return err
}
