// Package wire implements bwp/1, bandana's binary wire protocol.
//
// bwp is the node-to-node and client-to-node serving protocol: batch-native
// lookup and update frames carrying fp16 payloads end-to-end, so a router can
// forward raw vector bytes from a node's DRAM cache to its caller without a
// float64 JSON round-trip. Frames are length-prefixed and multiplexed by
// request id over persistent connections; responses may arrive out of order.
//
// Frame layout (all integers little-endian):
//
//	offset width  field
//	0      4      magic "BWP1"
//	4      1      version (1)
//	5      1      opcode
//	6      1      flags (bit0: CRC32-C trailer, bit1: error response)
//	7      1      reserved (must be zero)
//	8      8      request id (echoed verbatim in the response)
//	16     4      payload length
//	20     ...    payload
//	...    4      CRC32-C of the payload (present iff flags bit0 is set)
//
// Payloads by opcode:
//
//	OpLookup request:   u16 tableLen | table | u32 count | count x u32 id
//	OpLookup response:  u16 dim | u32 count | count*dim*2 bytes of fp16
//	OpUpdate request:   u16 tableLen | table | u32 id | dim*2 bytes of fp16
//	OpUpdate response:  empty
//	OpPing:             empty both ways
//	error response:     u16 code | u16 msgLen | msg (flags bit1 set)
//
// Versioning: the version byte is checked on every frame. A peer that
// receives an unsupported version answers with an error frame (CodeBadRequest)
// carrying version 1 and closes the connection. Unknown opcodes and unknown
// flag bits are rejected per-frame with CodeBadRequest but keep the
// connection open, so minor additions can probe without reconnecting.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	// Version is the protocol version spoken by this package.
	Version = 1

	// HeaderLen is the fixed frame header size in bytes.
	HeaderLen = 20

	// MaxPayload bounds a single frame's payload. 8 MiB fits a batch of
	// 8192 ids of 256-dim fp16 vectors (8192*256*2 = 4 MiB) with headroom.
	MaxPayload = 8 << 20

	// DefaultMaxBatch is the per-request id cap a server enforces unless
	// configured otherwise. It matches the HTTP API's batch cap.
	DefaultMaxBatch = 8192

	// MaxTableName bounds the table-name field in request payloads.
	MaxTableName = 255
)

// magic is "BWP1" read as a little-endian uint32.
const magic uint32 = 'B' | 'W'<<8 | 'P'<<16 | '1'<<24

// Opcodes.
const (
	OpLookup byte = 1
	OpUpdate byte = 2
	OpPing   byte = 3
)

// Flag bits.
const (
	// FlagCRC marks a frame whose payload is followed by a 4-byte CRC32-C
	// trailer. Servers verify it on requests and mirror it on responses.
	FlagCRC byte = 1 << 0
	// FlagError marks a response frame whose payload is an error record.
	FlagError byte = 1 << 1

	knownFlags = FlagCRC | FlagError
)

// Error codes carried in error response frames.
const (
	CodeBadRequest uint16 = 1
	CodeNotFound   uint16 = 2
	CodeTooLarge   uint16 = 3
	CodeInternal   uint16 = 4
)

// Framing errors. These mean the byte stream itself is broken; the
// connection is not usable afterwards.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	ErrTooLarge   = errors.New("wire: frame exceeds max payload")
	ErrBadCRC     = errors.New("wire: payload CRC mismatch")
	ErrClosed     = errors.New("wire: connection closed")
)

// castagnoli is the CRC32-C table used for the optional payload trailer.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC32-C trailer value for a payload.
func Checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, castagnoli)
}

// Error is a protocol-level failure returned by the remote peer in an error
// frame. It is distinct from transport errors: the connection stays usable.
type Error struct {
	Code uint16
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("wire: remote error %d: %s", e.Code, e.Msg)
}

// Header is a decoded frame header.
type Header struct {
	Opcode byte
	Flags  byte
	ReqID  uint64
	Len    uint32
}

// putHeader encodes h into dst, which must be at least HeaderLen bytes.
func putHeader(dst []byte, h Header) {
	binary.LittleEndian.PutUint32(dst[0:], magic)
	dst[4] = Version
	dst[5] = h.Opcode
	dst[6] = h.Flags
	dst[7] = 0
	binary.LittleEndian.PutUint64(dst[8:], h.ReqID)
	binary.LittleEndian.PutUint32(dst[16:], h.Len)
}

// parseHeader decodes and validates a frame header. ErrBadMagic and
// ErrBadVersion invalidate the whole stream; ErrTooLarge does too, because
// the payload cannot be skipped safely once the peer is known to disagree
// about limits.
func parseHeader(b []byte) (Header, error) {
	if binary.LittleEndian.Uint32(b[0:]) != magic {
		return Header{}, ErrBadMagic
	}
	if b[4] != Version {
		return Header{}, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, b[4], Version)
	}
	h := Header{
		Opcode: b[5],
		Flags:  b[6],
		ReqID:  binary.LittleEndian.Uint64(b[8:]),
		Len:    binary.LittleEndian.Uint32(b[16:]),
	}
	if h.Len > MaxPayload {
		return Header{}, fmt.Errorf("%w: %d bytes", ErrTooLarge, h.Len)
	}
	return h, nil
}

// appendFrame appends a complete frame (header, payload, optional CRC
// trailer) to dst and returns the extended slice.
func appendFrame(dst []byte, h Header, payload []byte) []byte {
	h.Len = uint32(len(payload))
	var hdr [HeaderLen]byte
	putHeader(hdr[:], h)
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	if h.Flags&FlagCRC != 0 {
		var tr [4]byte
		binary.LittleEndian.PutUint32(tr[:], Checksum(payload))
		dst = append(dst, tr[:]...)
	}
	return dst
}

// appendErrorFrame appends an error response frame for reqID to dst.
func appendErrorFrame(dst []byte, reqID uint64, withCRC bool, code uint16, msg string) []byte {
	if len(msg) > 1<<12 {
		msg = msg[:1<<12]
	}
	payload := make([]byte, 4+len(msg))
	binary.LittleEndian.PutUint16(payload[0:], code)
	binary.LittleEndian.PutUint16(payload[2:], uint16(len(msg)))
	copy(payload[4:], msg)
	flags := FlagError
	if withCRC {
		flags |= FlagCRC
	}
	return appendFrame(dst, Header{Opcode: 0, Flags: flags, ReqID: reqID}, payload)
}

// parseError decodes an error response payload.
func parseError(payload []byte) *Error {
	if len(payload) < 4 {
		return &Error{Code: CodeInternal, Msg: "malformed error frame"}
	}
	code := binary.LittleEndian.Uint16(payload[0:])
	n := int(binary.LittleEndian.Uint16(payload[2:]))
	if n > len(payload)-4 {
		n = len(payload) - 4
	}
	return &Error{Code: code, Msg: string(payload[4 : 4+n])}
}

// appendLookupRequest appends the OpLookup request payload for table/ids.
func appendLookupRequest(dst []byte, table string, ids []uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(table)))
	dst = append(dst, b[:2]...)
	dst = append(dst, table...)
	binary.LittleEndian.PutUint32(b[:], uint32(len(ids)))
	dst = append(dst, b[:4]...)
	for _, id := range ids {
		binary.LittleEndian.PutUint32(b[:], id)
		dst = append(dst, b[:4]...)
	}
	return dst
}

// parseLookupRequest decodes an OpLookup request payload. The returned ids
// alias the payload buffer's lifetime only through the copy made here.
func parseLookupRequest(payload []byte) (table string, ids []uint32, err error) {
	if len(payload) < 2 {
		return "", nil, errors.New("lookup request truncated")
	}
	nameLen := int(binary.LittleEndian.Uint16(payload[0:]))
	if nameLen > MaxTableName || len(payload) < 2+nameLen+4 {
		return "", nil, errors.New("lookup request truncated")
	}
	table = string(payload[2 : 2+nameLen])
	p := payload[2+nameLen:]
	count := int(binary.LittleEndian.Uint32(p[0:]))
	p = p[4:]
	if len(p) != 4*count {
		return "", nil, fmt.Errorf("lookup request: %d ids declared, %d bytes of ids", count, len(p))
	}
	ids = make([]uint32, count)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint32(p[4*i:])
	}
	return table, ids, nil
}

// appendUpdateRequest appends the OpUpdate request payload.
func appendUpdateRequest(dst []byte, table string, id uint32, raw []byte) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(table)))
	dst = append(dst, b[:2]...)
	dst = append(dst, table...)
	binary.LittleEndian.PutUint32(b[:], id)
	dst = append(dst, b[:4]...)
	return append(dst, raw...)
}

// parseUpdateRequest decodes an OpUpdate request payload. raw aliases
// payload.
func parseUpdateRequest(payload []byte) (table string, id uint32, raw []byte, err error) {
	if len(payload) < 2 {
		return "", 0, nil, errors.New("update request truncated")
	}
	nameLen := int(binary.LittleEndian.Uint16(payload[0:]))
	if nameLen > MaxTableName || len(payload) < 2+nameLen+4 {
		return "", 0, nil, errors.New("update request truncated")
	}
	table = string(payload[2 : 2+nameLen])
	p := payload[2+nameLen:]
	id = binary.LittleEndian.Uint32(p[0:])
	return table, id, p[4:], nil
}

// lookupResponseHeaderLen is the fixed prefix of an OpLookup response
// payload: u16 dim + u32 count.
const lookupResponseHeaderLen = 6

// appendLookupResponse appends the OpLookup response payload: the dim/count
// prefix followed by each vector's fp16 bytes, concatenated.
func appendLookupResponse(dst []byte, dim int, vecs [][]byte) []byte {
	var b [6]byte
	binary.LittleEndian.PutUint16(b[0:], uint16(dim))
	binary.LittleEndian.PutUint32(b[2:], uint32(len(vecs)))
	dst = append(dst, b[:]...)
	for _, v := range vecs {
		dst = append(dst, v...)
	}
	return dst
}

// parseLookupResponse decodes an OpLookup response payload into per-id raw
// fp16 views. The views alias payload.
func parseLookupResponse(payload []byte, wantCount int) (dim int, vecs [][]byte, err error) {
	if len(payload) < lookupResponseHeaderLen {
		return 0, nil, errors.New("lookup response truncated")
	}
	dim = int(binary.LittleEndian.Uint16(payload[0:]))
	count := int(binary.LittleEndian.Uint32(payload[2:]))
	if count != wantCount {
		return 0, nil, fmt.Errorf("lookup response: got %d vectors, want %d", count, wantCount)
	}
	body := payload[lookupResponseHeaderLen:]
	vecBytes := dim * 2
	if len(body) != count*vecBytes {
		return 0, nil, fmt.Errorf("lookup response: %d payload bytes, want %d", len(body), count*vecBytes)
	}
	vecs = make([][]byte, count)
	for i := range vecs {
		vecs[i] = body[i*vecBytes : (i+1)*vecBytes : (i+1)*vecBytes]
	}
	return dim, vecs, nil
}
