package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"bandana/internal/fp16"
)

// memBackend is a deterministic in-memory Backend: id i in any known table
// resolves to the fp16 encoding of [i*31+0, i*31+1, ...] unless overwritten
// through UpdateRaw.
type memBackend struct {
	dim    int
	tables map[string]bool

	mu        sync.Mutex
	overrides map[string]map[uint32][]byte
	// gate, when non-nil, is received from at the start of every lookup so
	// tests can hold requests in flight.
	gate chan struct{}
}

func newMemBackend(dim int, tables ...string) *memBackend {
	b := &memBackend{dim: dim, tables: make(map[string]bool), overrides: make(map[string]map[uint32][]byte)}
	for _, t := range tables {
		b.tables[t] = true
	}
	return b
}

func (b *memBackend) vector(table string, id uint32) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ov := b.overrides[table][id]; ov != nil {
		return ov
	}
	vals := make([]float32, b.dim)
	for j := range vals {
		vals[j] = float32(id)*31 + float32(j)
	}
	return fp16.EncodeSlice(nil, vals)
}

func (b *memBackend) LookupBatchRaw(table string, ids []uint32) (int, [][]byte, func(), error) {
	if gate := b.gate; gate != nil {
		<-gate
	}
	if !b.tables[table] {
		return 0, nil, nil, &Error{Code: CodeNotFound, Msg: "unknown table " + table}
	}
	vecs := make([][]byte, len(ids))
	for i, id := range ids {
		vecs[i] = b.vector(table, id)
	}
	return b.dim, vecs, nil, nil
}

func (b *memBackend) UpdateRaw(table string, id uint32, raw []byte) error {
	if !b.tables[table] {
		return &Error{Code: CodeNotFound, Msg: "unknown table " + table}
	}
	if len(raw) != b.dim*fp16.ByteSize {
		return &Error{Code: CodeBadRequest, Msg: "bad vector length"}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.overrides[table] == nil {
		b.overrides[table] = make(map[uint32][]byte)
	}
	b.overrides[table][id] = append([]byte(nil), raw...)
	return nil
}

// startServer runs a Server on a loopback listener and returns its address.
func startServer(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go s.Serve(ln)
	return ln.Addr().String()
}

func dialTest(t *testing.T, addr string, opts Options) *Client {
	t.Helper()
	opts.DialTimeout = 5 * time.Second
	c, err := Dial(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func testCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestRoundTrip(t *testing.T) {
	for _, crc := range []bool{false, true} {
		t.Run(fmt.Sprintf("crc=%v", crc), func(t *testing.T) {
			be := newMemBackend(8, "emb")
			srv := &Server{Backend: be}
			c := dialTest(t, startServer(t, srv), Options{CRC: crc})
			ctx := testCtx(t)

			if err := c.Ping(ctx); err != nil {
				t.Fatalf("ping: %v", err)
			}

			ids := []uint32{3, 9, 3, 100000}
			dim, vecs, err := c.LookupBatchRaw(ctx, "emb", ids)
			if err != nil {
				t.Fatal(err)
			}
			if dim != 8 || len(vecs) != len(ids) {
				t.Fatalf("dim=%d count=%d, want 8/%d", dim, len(vecs), len(ids))
			}
			for i, id := range ids {
				if want := be.vector("emb", id); !bytes.Equal(vecs[i], want) {
					t.Fatalf("id %d: raw mismatch", id)
				}
			}

			f32, err := c.LookupBatchF32(ctx, "emb", ids)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ids {
				dec := make([]float32, dim)
				fp16.DecodeSlice(dec, vecs[i])
				for j := range dec {
					if math.Float32bits(dec[j]) != math.Float32bits(f32[i][j]) {
						t.Fatalf("id %d elem %d: F32 path diverges from raw decode", ids[i], j)
					}
				}
			}

			next := make([]float32, 8)
			for j := range next {
				next[j] = -float32(j)
			}
			if err := c.UpdateF32(ctx, "emb", 9, next); err != nil {
				t.Fatal(err)
			}
			_, after, err := c.LookupBatchRaw(ctx, "emb", []uint32{9})
			if err != nil {
				t.Fatal(err)
			}
			if want := fp16.EncodeSlice(nil, next); !bytes.Equal(after[0], want) {
				t.Fatal("lookup after update returned stale bytes")
			}

			// Empty batch round-trips.
			if _, empty, err := c.LookupBatchRaw(ctx, "emb", nil); err != nil || len(empty) != 0 {
				t.Fatalf("empty batch: vecs=%d err=%v", len(empty), err)
			}

			st := srv.Stats()
			if st.Requests == 0 || st.ConnsTotal != 1 {
				t.Fatalf("stats not counting: %+v", st)
			}
			// Per-opcode breakdown: 1 ping, 4 lookups, 1 update, no errors,
			// and every counted request has a latency observation.
			if got := st.Ops["ping"].Requests; got != 1 {
				t.Fatalf("ping requests = %d, want 1: %+v", got, st.Ops)
			}
			if got := st.Ops["lookup"].Requests; got != 4 {
				t.Fatalf("lookup requests = %d, want 4: %+v", got, st.Ops)
			}
			if got := st.Ops["update"].Requests; got != 1 {
				t.Fatalf("update requests = %d, want 1: %+v", got, st.Ops)
			}
			for op, os := range st.Ops {
				if os.Errors != 0 {
					t.Fatalf("%s errors = %d, want 0", op, os.Errors)
				}
			}
			// Latency is observed after the response frame is queued, so it
			// can trail the response by a beat: poll until it catches up.
			deadline := time.Now().Add(2 * time.Second)
			for {
				lagging := false
				st = srv.Stats()
				for op, os := range st.Ops {
					if os.Latency.Count != os.Requests {
						if time.Now().After(deadline) {
							t.Fatalf("%s latency count = %d, requests = %d", op, os.Latency.Count, os.Requests)
						}
						lagging = true
					}
				}
				if !lagging {
					break
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}

// TestConcurrentMultiplexed hammers one connection from many goroutines
// (run with -race): responses must route back to the request that asked,
// which the id-derived vector contents verify.
func TestConcurrentMultiplexed(t *testing.T) {
	be := newMemBackend(16, "emb")
	c := dialTest(t, startServer(t, &Server{Backend: be}), Options{CRC: true})
	ctx := testCtx(t)

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				n := int(seed+uint32(round))%7 + 1
				ids := make([]uint32, n)
				for i := range ids {
					ids[i] = seed*1000 + uint32(round*10+i)
				}
				_, vecs, err := c.LookupBatchRaw(ctx, "emb", ids)
				if err != nil {
					errs <- err
					return
				}
				for i, id := range ids {
					if !bytes.Equal(vecs[i], be.vector("emb", id)) {
						errs <- fmt.Errorf("worker %d: response for id %d carries wrong vector", seed, id)
						return
					}
				}
			}
		}(uint32(w))
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestErrorFrames(t *testing.T) {
	be := newMemBackend(4, "emb")
	c := dialTest(t, startServer(t, &Server{Backend: be, MaxBatch: 8}), Options{})
	ctx := testCtx(t)

	var werr *Error
	if _, _, err := c.LookupBatchRaw(ctx, "nope", []uint32{1}); !errors.As(err, &werr) || werr.Code != CodeNotFound {
		t.Fatalf("unknown table: got %v, want CodeNotFound", err)
	}
	if _, _, err := c.LookupBatchRaw(ctx, "emb", make([]uint32, 9)); !errors.As(err, &werr) || werr.Code != CodeTooLarge {
		t.Fatalf("oversized batch: got %v, want CodeTooLarge", err)
	}
	if err := c.Update(ctx, "emb", 1, []byte{1, 2}); !errors.As(err, &werr) || werr.Code != CodeBadRequest {
		t.Fatalf("short update: got %v, want CodeBadRequest", err)
	}
	// The connection survives per-request errors.
	if _, _, err := c.LookupBatchRaw(ctx, "emb", []uint32{1}); err != nil {
		t.Fatalf("connection unusable after error frames: %v", err)
	}
}

// rawConn dials the server without a Client, for crafting broken frames.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn
}

// readFrame reads one frame off conn without a Client.
func readFrame(t *testing.T, conn net.Conn) (Header, []byte) {
	t.Helper()
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatalf("reading frame header: %v", err)
	}
	h, err := parseHeader(hdr[:])
	if err != nil {
		t.Fatalf("parsing frame header: %v", err)
	}
	payload := make([]byte, h.Len)
	if _, err := io.ReadFull(conn, payload); err != nil {
		t.Fatalf("reading frame payload: %v", err)
	}
	if h.Flags&FlagCRC != 0 {
		var tr [4]byte
		if _, err := io.ReadFull(conn, tr[:]); err != nil {
			t.Fatalf("reading CRC trailer: %v", err)
		}
	}
	return h, payload
}

func expectClosed(t *testing.T, conn net.Conn) {
	t.Helper()
	var one [1]byte
	if _, err := conn.Read(one[:]); err == nil {
		t.Fatal("server kept the connection open, want close")
	}
}

func TestServerRejectsBadMagic(t *testing.T) {
	addr := startServer(t, &Server{Backend: newMemBackend(4, "emb")})
	conn := rawConn(t, addr)
	frame := appendFrame(nil, Header{Opcode: OpPing, ReqID: 1}, nil)
	frame[0] = 'X'
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	// Garbage stream: closed without a response.
	expectClosed(t, conn)
}

func TestServerRejectsBadVersion(t *testing.T) {
	addr := startServer(t, &Server{Backend: newMemBackend(4, "emb")})
	conn := rawConn(t, addr)
	frame := appendFrame(nil, Header{Opcode: OpPing, ReqID: 7}, nil)
	frame[4] = 99
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	h, payload := readFrame(t, conn)
	if h.Flags&FlagError == 0 || h.ReqID != 7 {
		t.Fatalf("want error frame for reqid 7, got flags=%#x reqid=%d", h.Flags, h.ReqID)
	}
	if e := parseError(payload); e.Code != CodeBadRequest {
		t.Fatalf("want CodeBadRequest, got %d (%s)", e.Code, e.Msg)
	}
	expectClosed(t, conn)
}

func TestServerRejectsOversizedFrame(t *testing.T) {
	addr := startServer(t, &Server{Backend: newMemBackend(4, "emb")})
	conn := rawConn(t, addr)
	var hdr [HeaderLen]byte
	putHeader(hdr[:], Header{Opcode: OpLookup, ReqID: 9, Len: MaxPayload + 1})
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	h, payload := readFrame(t, conn)
	if h.Flags&FlagError == 0 || h.ReqID != 9 {
		t.Fatalf("want error frame for reqid 9, got flags=%#x reqid=%d", h.Flags, h.ReqID)
	}
	if e := parseError(payload); e.Code != CodeBadRequest {
		t.Fatalf("want CodeBadRequest, got %d (%s)", e.Code, e.Msg)
	}
	expectClosed(t, conn)
}

func TestServerHandlesTruncatedFrame(t *testing.T) {
	addr := startServer(t, &Server{Backend: newMemBackend(4, "emb")})
	conn := rawConn(t, addr)
	// Header promises 100 payload bytes; deliver 10 and hang up.
	var hdr [HeaderLen]byte
	putHeader(hdr[:], Header{Opcode: OpLookup, ReqID: 3, Len: 100})
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if cw, ok := conn.(*net.TCPConn); ok {
		cw.CloseWrite()
	}
	expectClosed(t, conn)
}

func TestServerRejectsCorruptCRC(t *testing.T) {
	addr := startServer(t, &Server{Backend: newMemBackend(4, "emb")})
	conn := rawConn(t, addr)
	payload := appendLookupRequest(nil, "emb", []uint32{1})
	frame := appendFrame(nil, Header{Opcode: OpLookup, Flags: FlagCRC, ReqID: 5}, payload)
	frame[len(frame)-1] ^= 0xFF // corrupt the trailer
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	h, pl := readFrame(t, conn)
	if h.Flags&FlagError == 0 || h.ReqID != 5 {
		t.Fatalf("want error frame for reqid 5, got flags=%#x reqid=%d", h.Flags, h.ReqID)
	}
	if e := parseError(pl); e.Code != CodeBadRequest {
		t.Fatalf("want CodeBadRequest, got %d (%s)", e.Code, e.Msg)
	}
	expectClosed(t, conn)
}

func TestServerRejectsUnknownOpcodeKeepsConn(t *testing.T) {
	addr := startServer(t, &Server{Backend: newMemBackend(4, "emb")})
	conn := rawConn(t, addr)
	if _, err := conn.Write(appendFrame(nil, Header{Opcode: 42, ReqID: 11}, nil)); err != nil {
		t.Fatal(err)
	}
	h, payload := readFrame(t, conn)
	if h.Flags&FlagError == 0 || h.ReqID != 11 {
		t.Fatalf("want error frame for reqid 11, got flags=%#x reqid=%d", h.Flags, h.ReqID)
	}
	if e := parseError(payload); e.Code != CodeBadRequest {
		t.Fatalf("want CodeBadRequest, got %d (%s)", e.Code, e.Msg)
	}
	// The connection must still serve well-formed requests.
	if _, err := conn.Write(appendFrame(nil, Header{Opcode: OpPing, ReqID: 12}, nil)); err != nil {
		t.Fatal(err)
	}
	h, _ = readFrame(t, conn)
	if h.Flags&FlagError != 0 || h.ReqID != 12 {
		t.Fatalf("ping after rejected opcode failed: flags=%#x reqid=%d", h.Flags, h.ReqID)
	}
}

// TestMidStreamDrop kills the server side of the connection while a request
// is in flight: the pending call and all later calls must fail with a
// transport error, not hang.
func TestMidStreamDrop(t *testing.T) {
	be := newMemBackend(4, "emb")
	be.gate = make(chan struct{})
	srv := &Server{Backend: be}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conns := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conns <- conn
		srv.ServeConn(conn)
	}()

	c := dialTest(t, ln.Addr().String(), Options{})
	ctx := testCtx(t)

	done := make(chan error, 1)
	go func() {
		_, _, err := c.LookupBatchRaw(ctx, "emb", []uint32{1, 2, 3})
		done <- err
	}()

	// Drop the server side while the backend still holds the request.
	serverConn := <-conns
	serverConn.Close()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight call returned success after connection drop")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight call hung after connection drop")
	}
	close(be.gate) // unblock the stranded handler

	if _, _, err := c.LookupBatchRaw(ctx, "emb", []uint32{4}); err == nil {
		t.Fatal("call on dead client returned success")
	}
	if c.Err() == nil {
		t.Fatal("client does not report the transport error")
	}
}

// TestClientAbandonsOnContext cancels a call mid-flight: the call returns
// the context error, the late response is dropped, and the connection stays
// usable for new requests.
func TestClientAbandonsOnContext(t *testing.T) {
	be := newMemBackend(4, "emb")
	be.gate = make(chan struct{})
	c := dialTest(t, startServer(t, &Server{Backend: be}), Options{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.LookupBatchRaw(ctx, "emb", []uint32{1})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the request reach the gate
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned call: got %v, want context.Canceled", err)
	}

	be.gate <- struct{}{} // release the abandoned request's handler
	close(be.gate)
	if _, _, err := c.LookupBatchRaw(testCtx(t), "emb", []uint32{2}); err != nil {
		t.Fatalf("connection unusable after abandoned request: %v", err)
	}
}

// TestClientRejectsTruncatedResponse points a client at a server that sends
// half a response and disconnects.
func TestClientRejectsTruncatedResponse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var hdr [HeaderLen]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		h, _ := parseHeader(hdr[:])
		io.CopyN(io.Discard, conn, int64(h.Len))
		// Respond with a header that promises more payload than follows.
		putHeader(hdr[:], Header{Opcode: h.Opcode, ReqID: h.ReqID, Len: 64})
		conn.Write(hdr[:])
		conn.Write(make([]byte, 8))
	}()

	c := dialTest(t, ln.Addr().String(), Options{})
	if _, _, err := c.LookupBatchRaw(testCtx(t), "emb", []uint32{1}); err == nil {
		t.Fatal("truncated response accepted")
	}
}

// TestHeaderLayout pins the on-the-wire byte offsets documented in the
// package comment (and README) so they cannot drift silently.
func TestHeaderLayout(t *testing.T) {
	var b [HeaderLen]byte
	putHeader(b[:], Header{Opcode: OpLookup, Flags: FlagCRC, ReqID: 0x1122334455667788, Len: 0xAABBCCDD})
	if string(b[0:4]) != "BWP1" {
		t.Fatalf("magic bytes = %q, want BWP1", b[0:4])
	}
	if b[4] != 1 || b[5] != OpLookup || b[6] != FlagCRC || b[7] != 0 {
		t.Fatalf("version/opcode/flags/reserved = % x", b[4:8])
	}
	if got := binary.LittleEndian.Uint64(b[8:]); got != 0x1122334455667788 {
		t.Fatalf("reqid = %#x", got)
	}
	if got := binary.LittleEndian.Uint32(b[16:]); got != 0xAABBCCDD {
		t.Fatalf("paylen = %#x", got)
	}
}
