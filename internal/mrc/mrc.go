// Package mrc computes miss-rate/hit-rate curves for embedding lookup
// streams.
//
// The paper characterises each embedding table by the stack distances
// (Mattson et al., 1970) of its lookups: the rank a vector occupies in an
// infinite LRU queue at the moment it is re-requested. From the stack
// distance distribution one reads off the hit-rate curve — the hit rate of
// an LRU cache of any size — which drives Figure 3, the DRAM allocation
// across tables, and the miniature-cache tuning of §4.3.3.
//
// Two implementations are provided: an exact O(n log n) algorithm using a
// Fenwick tree, and a SHARDS-style spatially sampled variant that processes
// only a hash-selected subset of vectors and scales the resulting curve,
// which is what makes "dozens of miniature caches" affordable.
package mrc

import (
	"math"
	"sort"
)

// Distances is the distribution of stack distances over a lookup stream.
type Distances struct {
	// Histogram[d] counts lookups whose stack distance is exactly d
	// (d >= 1: the vector was the d-th most recently used distinct vector).
	Histogram []int64
	// Infinite counts compulsory misses (first access to a vector).
	Infinite int64
	// Total is the total number of lookups in the original stream.
	Total int64
	// SampledTotal is the number of lookups that survived spatial sampling
	// (equal to Total for exact computation).
	SampledTotal int64
	// scale is the inverse key-sampling rate, used to scale stack distances
	// back to full-population cache sizes (1 for exact computation).
	scale float64
}

// StackDistances computes the exact stack distance distribution of a lookup
// stream (vector IDs in access order) using Mattson's algorithm with a
// Fenwick tree: O(n log n) time, O(n + #unique) space.
func StackDistances(accesses []uint32) *Distances {
	n := len(accesses)
	d := &Distances{Total: int64(n), SampledTotal: int64(n), scale: 1}
	if n == 0 {
		return d
	}
	tree := newFenwick(n)
	lastPos := make(map[uint32]int, 1024)
	var maxDist int
	dist := make([]int, 0, n) // temporary distances; 0 means compulsory
	for i, id := range accesses {
		pos := i + 1 // 1-based
		if prev, ok := lastPos[id]; ok {
			// Number of distinct vectors touched strictly after prev.
			others := tree.rangeSum(prev+1, pos-1)
			sd := int(others) + 1
			dist = append(dist, sd)
			if sd > maxDist {
				maxDist = sd
			}
			tree.add(prev, -1)
		} else {
			dist = append(dist, 0)
			d.Infinite++
		}
		tree.add(pos, 1)
		lastPos[id] = pos
	}
	d.Histogram = make([]int64, maxDist+1)
	for _, sd := range dist {
		if sd > 0 {
			d.Histogram[sd]++
		}
	}
	return d
}

// SampledStackDistances computes an approximate stack distance distribution
// by processing only vectors whose hash falls under samplingRate (SHARDS
// spatial sampling). Distances and counts are scaled by 1/samplingRate so
// the resulting hit-rate curve is directly comparable to the exact one.
func SampledStackDistances(accesses []uint32, samplingRate float64) *Distances {
	if samplingRate >= 1 {
		return StackDistances(accesses)
	}
	if samplingRate <= 0 {
		return &Distances{Total: int64(len(accesses)), scale: 1}
	}
	threshold := uint64(samplingRate * float64(math.MaxUint64))
	sampled := make([]uint32, 0, int(float64(len(accesses))*samplingRate*2)+16)
	for _, id := range accesses {
		if hash64(uint64(id)) <= threshold {
			sampled = append(sampled, id)
		}
	}
	d := StackDistances(sampled)
	d.Total = int64(len(accesses))
	d.SampledTotal = int64(len(sampled))
	d.scale = 1 / samplingRate
	return d
}

// hash64 is SplitMix64, a fast high-quality integer hash used for spatial
// sampling decisions.
func hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// HRC is a hit-rate curve: the hit rate of an LRU cache as a function of its
// size in vectors.
type HRC struct {
	// sizes are cache sizes (ascending) at which the curve changes.
	sizes []int
	// cumHits[i] is the (scaled) number of hits with stack distance <=
	// sizes[i].
	cumHits []float64
	// total is the (unscaled) number of lookups.
	total float64
}

// HitRateCurve converts a distance distribution into a hit-rate curve.
//
// For sampled distributions the hit *ratio* is estimated on the sampled
// accesses (the SHARDS assumption: the sample's hit ratio tracks the
// population's), then scaled to full-trace hit counts; stack distances are
// scaled by the inverse key-sampling rate to map onto full-size caches.
func (d *Distances) HitRateCurve() *HRC {
	h := &HRC{total: float64(d.Total)}
	if d.Total == 0 || d.SampledTotal == 0 {
		return h
	}
	// Each sampled hit represents Total/SampledTotal accesses of the full
	// stream, so cumulative hit counts stay below Total and the implied hit
	// ratio never exceeds the sample's.
	hitWeight := float64(d.Total) / float64(d.SampledTotal)
	var cum float64
	for sd := 1; sd < len(d.Histogram); sd++ {
		c := d.Histogram[sd]
		if c == 0 {
			continue
		}
		cum += float64(c) * hitWeight
		// The cache size needed to capture distance sd scales with the
		// inverse key-sampling rate.
		size := int(math.Ceil(float64(sd) * d.scale))
		h.sizes = append(h.sizes, size)
		h.cumHits = append(h.cumHits, cum)
	}
	return h
}

// HitsAt returns the expected number of hits for an LRU cache of the given
// size (in vectors) over the analysed stream.
func (h *HRC) HitsAt(size int) float64 {
	if size <= 0 || len(h.sizes) == 0 {
		return 0
	}
	idx := sort.SearchInts(h.sizes, size+1) - 1
	if idx < 0 {
		return 0
	}
	return h.cumHits[idx]
}

// HitRate returns the hit rate for an LRU cache of the given size.
func (h *HRC) HitRate(size int) float64 {
	if h.total == 0 {
		return 0
	}
	return h.HitsAt(size) / h.total
}

// MaxHitRate returns the hit rate of an infinite cache (1 - compulsory miss
// ratio).
func (h *HRC) MaxHitRate() float64 {
	if h.total == 0 || len(h.cumHits) == 0 {
		return 0
	}
	return h.cumHits[len(h.cumHits)-1] / h.total
}

// Points samples the curve at the given cache sizes, returning one hit rate
// per size. Used to print Figure 3.
func (h *HRC) Points(sizes []int) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i] = h.HitRate(s)
	}
	return out
}

// MarginalHits returns the expected additional hits obtained by growing the
// cache from size a to size b (b > a). The DRAM allocator uses this to
// greedily distribute memory across tables.
func (h *HRC) MarginalHits(a, b int) float64 {
	if b <= a {
		return 0
	}
	return h.HitsAt(b) - h.HitsAt(a)
}

// Total returns the number of lookups the curve was built from.
func (h *HRC) Total() float64 { return h.total }
