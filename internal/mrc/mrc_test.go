package mrc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bandana/internal/lru"
)

func TestFenwickBasics(t *testing.T) {
	f := newFenwick(10)
	f.add(3, 1)
	f.add(7, 2)
	if got := f.prefix(2); got != 0 {
		t.Fatalf("prefix(2) = %d", got)
	}
	if got := f.prefix(3); got != 1 {
		t.Fatalf("prefix(3) = %d", got)
	}
	if got := f.prefix(10); got != 3 {
		t.Fatalf("prefix(10) = %d", got)
	}
	if got := f.rangeSum(4, 7); got != 2 {
		t.Fatalf("rangeSum(4,7) = %d", got)
	}
	if got := f.rangeSum(8, 3); got != 0 {
		t.Fatalf("empty range should be 0, got %d", got)
	}
	if got := f.prefix(100); got != 3 {
		t.Fatalf("prefix beyond size should clamp, got %d", got)
	}
	f.add(3, -1)
	if got := f.prefix(10); got != 2 {
		t.Fatalf("after removal prefix = %d", got)
	}
}

func TestStackDistancesKnownSequence(t *testing.T) {
	// Access pattern: a b c a b b
	// a: compulsory; b: compulsory; c: compulsory
	// a (again): b and c touched since -> distance 3
	// b (again): a and c? c last touched before a... distinct since last b: c, a -> 3
	// b (again): nothing since -> 1
	acc := []uint32{1, 2, 3, 1, 2, 2}
	d := StackDistances(acc)
	if d.Total != 6 {
		t.Fatalf("total = %d", d.Total)
	}
	if d.Infinite != 3 {
		t.Fatalf("compulsory = %d, want 3", d.Infinite)
	}
	if d.Histogram[3] != 2 {
		t.Fatalf("distance-3 count = %d, want 2 (histogram %v)", d.Histogram[3], d.Histogram)
	}
	if d.Histogram[1] != 1 {
		t.Fatalf("distance-1 count = %d, want 1", d.Histogram[1])
	}
}

func TestStackDistancesEmptyAndSingle(t *testing.T) {
	d := StackDistances(nil)
	if d.Total != 0 || d.Infinite != 0 {
		t.Fatalf("empty stream stats wrong")
	}
	if d.HitRateCurve().HitRate(100) != 0 {
		t.Fatalf("empty HRC should be 0")
	}
	d = StackDistances([]uint32{5})
	if d.Infinite != 1 || d.Total != 1 {
		t.Fatalf("single access should be compulsory")
	}
}

func TestStackDistanceRepeatedSameKey(t *testing.T) {
	d := StackDistances([]uint32{9, 9, 9, 9})
	if d.Infinite != 1 {
		t.Fatalf("compulsory = %d", d.Infinite)
	}
	if d.Histogram[1] != 3 {
		t.Fatalf("all re-accesses should have distance 1: %v", d.Histogram)
	}
}

// simulateLRUHits replays the stream through a real LRU cache of the given
// size and counts hits — the ground truth the HRC must match.
func simulateLRUHits(accesses []uint32, size int) int64 {
	c := lru.NewSegmented[uint32, struct{}](size, 1, nil)
	var hits int64
	for _, id := range accesses {
		if c.Touch(id) {
			hits++
		} else {
			c.Add(id, struct{}{})
		}
	}
	return hits
}

func TestHRCMatchesRealLRUSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	accesses := make([]uint32, 20000)
	for i := range accesses {
		// Zipf-ish skew over 2000 keys.
		accesses[i] = uint32(math.Pow(rng.Float64(), 2.5) * 2000)
	}
	d := StackDistances(accesses)
	hrc := d.HitRateCurve()
	for _, size := range []int{10, 50, 200, 1000} {
		want := simulateLRUHits(accesses, size)
		got := hrc.HitsAt(size)
		if math.Abs(got-float64(want)) > 1e-6 {
			t.Errorf("cache size %d: HRC says %.0f hits, simulation says %d", size, got, want)
		}
	}
}

func TestHRCMonotonicAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	accesses := make([]uint32, 5000)
	for i := range accesses {
		accesses[i] = uint32(rng.Intn(500))
	}
	hrc := StackDistances(accesses).HitRateCurve()
	prev := 0.0
	for size := 1; size <= 600; size += 13 {
		hr := hrc.HitRate(size)
		if hr < prev-1e-12 {
			t.Fatalf("hit rate decreased at size %d", size)
		}
		if hr < 0 || hr > 1 {
			t.Fatalf("hit rate out of bounds: %g", hr)
		}
		prev = hr
	}
	if maxHR := hrc.MaxHitRate(); math.Abs(maxHR-hrc.HitRate(1000000)) > 1e-9 {
		t.Fatalf("max hit rate %g != hit rate at huge size %g", maxHR, hrc.HitRate(1000000))
	}
	if hrc.HitRate(0) != 0 || hrc.HitsAt(-1) != 0 {
		t.Fatalf("zero-size cache should have zero hits")
	}
}

func TestMarginalHits(t *testing.T) {
	accesses := []uint32{1, 2, 1, 2, 3, 1, 2, 3}
	hrc := StackDistances(accesses).HitRateCurve()
	if m := hrc.MarginalHits(0, 3); math.Abs(m-hrc.HitsAt(3)) > 1e-9 {
		t.Fatalf("marginal from zero should equal total hits at size")
	}
	if hrc.MarginalHits(5, 3) != 0 {
		t.Fatalf("backwards range should be 0")
	}
	if hrc.MarginalHits(1, 3) < 0 {
		t.Fatalf("marginal hits negative")
	}
}

func TestPointsShape(t *testing.T) {
	accesses := []uint32{1, 2, 1, 3, 1}
	hrc := StackDistances(accesses).HitRateCurve()
	pts := hrc.Points([]int{1, 2, 4})
	if len(pts) != 3 {
		t.Fatalf("points length %d", len(pts))
	}
	if pts[2] < pts[0] {
		t.Fatalf("points not monotone")
	}
	if hrc.Total() != 5 {
		t.Fatalf("total = %g", hrc.Total())
	}
}

func TestSampledStackDistancesApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	accesses := make([]uint32, 60000)
	for i := range accesses {
		accesses[i] = uint32(math.Pow(rng.Float64(), 3) * 20000)
	}
	exact := StackDistances(accesses).HitRateCurve()
	sampled := SampledStackDistances(accesses, 0.05).HitRateCurve()
	for _, size := range []int{500, 2000, 8000} {
		e := exact.HitRate(size)
		s := sampled.HitRate(size)
		if math.Abs(e-s) > 0.08 {
			t.Errorf("size %d: exact %.3f vs sampled %.3f differs by more than 0.08", size, e, s)
		}
	}
}

func TestSampledStackDistancesEdgeRates(t *testing.T) {
	accesses := []uint32{1, 2, 1, 2}
	if d := SampledStackDistances(accesses, 1.5); d.Infinite != 2 {
		t.Fatalf("rate >= 1 should fall back to exact")
	}
	d := SampledStackDistances(accesses, 0)
	if d.Total != 4 || len(d.Histogram) != 0 {
		t.Fatalf("rate 0 should produce empty distances with correct total")
	}
}

func TestHash64Distribution(t *testing.T) {
	// Crude uniformity check: the fraction of hashes under a threshold of
	// 25% should be near 25%.
	threshold := uint64(0.25 * float64(math.MaxUint64))
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if hash64(uint64(i)) <= threshold {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("hash selection fraction %.3f, want ~0.25", frac)
	}
}

func TestPropertyHRCNeverExceedsNonCompulsoryFraction(t *testing.T) {
	prop := func(keys []uint8) bool {
		if len(keys) == 0 {
			return true
		}
		accesses := make([]uint32, len(keys))
		for i, k := range keys {
			accesses[i] = uint32(k % 32)
		}
		d := StackDistances(accesses)
		hrc := d.HitRateCurve()
		maxPossible := float64(d.Total-d.Infinite) / float64(d.Total)
		return hrc.MaxHitRate() <= maxPossible+1e-9 &&
			math.Abs(hrc.MaxHitRate()-maxPossible) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyHRCMatchesLRUOnRandomStreams(t *testing.T) {
	prop := func(seed int64, sizeSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		accesses := make([]uint32, 2000)
		for i := range accesses {
			accesses[i] = uint32(rng.Intn(150))
		}
		size := int(sizeSeed%100) + 1
		hrc := StackDistances(accesses).HitRateCurve()
		return math.Abs(hrc.HitsAt(size)-float64(simulateLRUHits(accesses, size))) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStackDistances(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	accesses := make([]uint32, 100000)
	for i := range accesses {
		accesses[i] = uint32(rng.Intn(20000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StackDistances(accesses)
	}
}

func BenchmarkSampledStackDistances(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	accesses := make([]uint32, 100000)
	for i := range accesses {
		accesses[i] = uint32(rng.Intn(20000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampledStackDistances(accesses, 0.01)
	}
}

func TestSampledHitRateNeverExceedsOne(t *testing.T) {
	// Heavily skewed popularity: a key-sampled subset can capture far more
	// than its share of accesses; the hit rate must still stay in [0, 1].
	rng := rand.New(rand.NewSource(99))
	accesses := make([]uint32, 40000)
	for i := range accesses {
		accesses[i] = uint32(math.Pow(rng.Float64(), 6) * 5000)
	}
	for _, rate := range []float64{0.01, 0.05, 0.2} {
		hrc := SampledStackDistances(accesses, rate).HitRateCurve()
		for _, size := range []int{10, 100, 1000, 10000, 1000000} {
			hr := hrc.HitRate(size)
			if hr < 0 || hr > 1 {
				t.Fatalf("rate %g size %d: hit rate %g out of bounds", rate, size, hr)
			}
		}
		if hrc.MaxHitRate() > 1 {
			t.Fatalf("rate %g: max hit rate %g exceeds 1", rate, hrc.MaxHitRate())
		}
	}
}
