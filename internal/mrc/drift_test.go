package mrc

import (
	"math"
	"testing"

	"bandana/internal/trace"
)

func driftAccesses(seed int64, numVectors, queries, rotate int) []uint32 {
	p := trace.Profile{
		Name: "d", NumVectors: numVectors, AvgLookups: 20,
		CompulsoryMissFrac: 0.05, Locality: 0.9, CommunitySize: 64,
		ReuseSkew: 2, Seed: seed, HotSetRotation: rotate,
	}
	tr := trace.GenerateTable(p, queries)
	var flat []uint32
	for _, q := range tr.Queries {
		flat = append(flat, q...)
	}
	return flat
}

// TestSampledStackDistancesDeterministicOnDrift pins determinism for the
// adaptation engine: the same drifting stream must produce the
// byte-identical distribution every time (spatial sampling is hash-based,
// not random).
func TestSampledStackDistancesDeterministicOnDrift(t *testing.T) {
	stream := driftAccesses(3, 4096, 400, 120)
	first := SampledStackDistances(stream, 0.1)
	for run := 0; run < 3; run++ {
		again := SampledStackDistances(stream, 0.1)
		if again.Total != first.Total || again.SampledTotal != first.SampledTotal || again.Infinite != first.Infinite {
			t.Fatalf("run %d: headline stats differ", run)
		}
		if len(again.Histogram) != len(first.Histogram) {
			t.Fatalf("run %d: histogram length differs", run)
		}
		for i := range first.Histogram {
			if first.Histogram[i] != again.Histogram[i] {
				t.Fatalf("run %d: histogram[%d] differs", run, i)
			}
		}
	}
}

// TestSampledHRCTracksExactUnderDrift verifies the SHARDS approximation
// holds on a drifting (non-stationary) stream: the sampled hit-rate curve
// stays within tolerance of the exact one across cache sizes.
func TestSampledHRCTracksExactUnderDrift(t *testing.T) {
	stream := driftAccesses(7, 8192, 600, 150)
	exact := StackDistances(stream).HitRateCurve()
	sampled := SampledStackDistances(stream, 0.1).HitRateCurve()
	for _, size := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
		e, s := exact.HitRate(size), sampled.HitRate(size)
		if math.Abs(e-s) > 0.08 {
			t.Errorf("size %d: sampled %.4f vs exact %.4f (drift broke the SHARDS assumption)", size, s, e)
		}
	}
}

// TestStackDistancesAdversarialStreams exercises the degenerate shapes the
// recorder can hand the analyzer at runtime.
func TestStackDistancesAdversarialStreams(t *testing.T) {
	// All-unique stream: every access is compulsory; curve stays at zero.
	unique := make([]uint32, 5000)
	for i := range unique {
		unique[i] = uint32(i)
	}
	d := SampledStackDistances(unique, 0.1)
	if d.Infinite != int64(d.SampledTotal) {
		t.Fatalf("all-unique stream: %d infinite of %d sampled", d.Infinite, d.SampledTotal)
	}
	if hr := d.HitRateCurve().MaxHitRate(); hr != 0 {
		t.Fatalf("all-unique stream: max hit rate %f, want 0", hr)
	}

	// Single-vector stream: everything after the first access hits at size 1.
	same := make([]uint32, 5000)
	d2 := SampledStackDistances(same, 0.1)
	hrc := d2.HitRateCurve()
	if d2.SampledTotal > 0 {
		// The one hot vector is either sampled (hit rate ~1) or not
		// (empty curve); both are consistent, torn states are not.
		if got := hrc.HitRate(64); got != 0 && math.Abs(got-1) > 1e-3 {
			t.Fatalf("single-vector stream: hit rate %f at size 64", got)
		}
	}

	// Phase flip: the second half references a disjoint ID range — the
	// worst case drift. The curve must stay bounded and monotonic.
	flip := make([]uint32, 0, 8000)
	for i := 0; i < 4000; i++ {
		flip = append(flip, uint32(i%200))
	}
	for i := 0; i < 4000; i++ {
		flip = append(flip, uint32(5000+i%200))
	}
	d3 := SampledStackDistances(flip, 0.25)
	h := d3.HitRateCurve()
	prev := 0.0
	for size := 1; size <= 1024; size *= 2 {
		hr := h.HitRate(size)
		if hr < prev {
			t.Fatalf("phase-flip stream: hit rate not monotonic at size %d", size)
		}
		if hr > 1 {
			t.Fatalf("phase-flip stream: hit rate %f > 1", hr)
		}
		prev = hr
	}
}
