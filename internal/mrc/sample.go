package mrc

import "math"

// SampleFilter returns a deterministic spatial-sampling predicate that
// selects approximately `rate` of all vector IDs (SHARDS-style hashing).
// A rate >= 1 selects everything; a rate <= 0 selects nothing.
//
// The same filter is used by the miniature-cache simulations: filtering the
// lookup stream and scaling the cache size by the same rate yields a small
// simulation whose hit-rate behaviour tracks the full-size cache.
func SampleFilter(rate float64) func(id uint32) bool {
	if rate >= 1 {
		return func(uint32) bool { return true }
	}
	if rate <= 0 {
		return func(uint32) bool { return false }
	}
	threshold := uint64(rate * float64(math.MaxUint64))
	return func(id uint32) bool { return hash64(uint64(id)) <= threshold }
}
