package mrc

// fenwick is a binary indexed tree over int64 counts, used to count the
// number of distinct keys accessed inside a time window in O(log n).
type fenwick struct {
	tree []int64
}

func newFenwick(n int) *fenwick {
	return &fenwick{tree: make([]int64, n+1)}
}

// add adds delta at position i (1-based).
func (f *fenwick) add(i int, delta int64) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the sum of positions 1..i.
func (f *fenwick) prefix(i int) int64 {
	var s int64
	if i >= len(f.tree) {
		i = len(f.tree) - 1
	}
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// rangeSum returns the sum of positions lo..hi inclusive (1-based).
func (f *fenwick) rangeSum(lo, hi int) int64 {
	if hi < lo {
		return 0
	}
	return f.prefix(hi) - f.prefix(lo-1)
}
