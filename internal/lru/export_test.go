package lru

// CheckInvariants exposes the internal consistency check to tests.
func (c *Cache[K, V]) CheckInvariants() error { return c.checkInvariants() }
