package lru

import (
	"sync"
	"testing"
)

func TestCacheResizeShrinkEvictsLRU(t *testing.T) {
	var evicted []int
	c := NewSegmented[int, int](8, 4, func(k, _ int) { evicted = append(evicted, k) })
	for i := 0; i < 8; i++ {
		c.Add(i, i*10)
	}
	if n := c.Resize(3); n != 5 {
		t.Fatalf("Resize reported %d evictions, want 5", n)
	}
	if c.Len() != 3 || c.Cap() != 3 {
		t.Fatalf("after shrink Len=%d Cap=%d, want 3/3", c.Len(), c.Cap())
	}
	if len(evicted) != 5 {
		t.Fatalf("eviction callback saw %d items, want 5", len(evicted))
	}
	// The most recently inserted keys survive; the LRU tail went first.
	for _, k := range []int{5, 6, 7} {
		if !c.Contains(k) {
			t.Fatalf("recent key %d evicted by shrink", k)
		}
	}
	for _, k := range evicted {
		if k >= 5 {
			t.Fatalf("shrink evicted recent key %d", k)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheResizeGrowKeepsContents(t *testing.T) {
	c := New[int, int](4)
	for i := 0; i < 4; i++ {
		c.Add(i, i)
	}
	if n := c.Resize(16); n != 0 {
		t.Fatalf("grow evicted %d items", n)
	}
	for i := 0; i < 4; i++ {
		if !c.Contains(i) {
			t.Fatalf("key %d lost on grow", i)
		}
	}
	// The grown cache accepts new items up to the new capacity.
	for i := 4; i < 16; i++ {
		c.Add(i, i)
	}
	if c.Len() != 16 {
		t.Fatalf("Len after fill = %d, want 16", c.Len())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheResizeClampsToOne(t *testing.T) {
	c := New[int, int](4)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Resize(-3)
	if c.Cap() != 1 || c.Len() != 1 {
		t.Fatalf("Cap=%d Len=%d, want 1/1", c.Cap(), c.Len())
	}
	if !c.Contains(2) {
		t.Fatal("MRU key should survive a shrink to 1")
	}
}

func TestShardedResizeRedistributes(t *testing.T) {
	s := NewSharded[uint32, int](64, 4, nil)
	for i := uint32(0); i < 64; i++ {
		s.AddAt(i, int(i), 0)
	}
	if got := s.Resize(20); got != 20 {
		t.Fatalf("Resize returned %d, want 20", got)
	}
	if s.Cap() != 20 {
		t.Fatalf("Cap = %d, want 20", s.Cap())
	}
	if s.Len() > 20 {
		t.Fatalf("Len %d exceeds new capacity 20", s.Len())
	}
	if s.Len() == 0 {
		t.Fatal("shrink dropped the whole cache; eviction must be incremental")
	}
	// Growing back accepts new items again.
	s.Resize(64)
	for i := uint32(100); i < 164; i++ {
		s.AddAt(i, int(i), 0)
	}
	if s.Len() > 64 {
		t.Fatalf("Len %d exceeds capacity 64 after regrow", s.Len())
	}
}

func TestShardedResizeClampsToShardCount(t *testing.T) {
	s := NewSharded[uint32, int](64, 8, nil)
	if got := s.Resize(3); got != s.NumShards() {
		t.Fatalf("Resize(3) = %d, want clamp to shard count %d", got, s.NumShards())
	}
}

func TestShardedResizeConcurrentWithServing(t *testing.T) {
	s := NewSharded[uint32, uint32](512, 8, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint32((w*1000 + i) % 900)
				if v, ok := s.Get(k); ok && v != k {
					t.Errorf("Get(%d) = %d", k, v)
					return
				}
				s.Add(k, k)
			}
		}(w)
	}
	sizes := []int{64, 1024, 16, 512, 128, 2048, 8, 700}
	for _, n := range sizes {
		s.Resize(n)
	}
	close(stop)
	wg.Wait()
	if s.Len() > s.Cap() {
		t.Fatalf("Len %d over capacity %d after concurrent resizes", s.Len(), s.Cap())
	}
}
