package lru

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for capacity 0")
		}
	}()
	New[int, int](0)
}

func TestAddGetBasic(t *testing.T) {
	c := New[int, string](3)
	c.Add(1, "a")
	c.Add(2, "b")
	c.Add(3, "c")
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("get(1) = %q,%v", v, ok)
	}
	if _, ok := c.Get(99); ok {
		t.Fatalf("get(99) should miss")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	c := NewSegmented[int, int](3, 1, nil)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Add(3, 3)
	c.Get(1) // promote 1; LRU order now 2,3,1 from oldest
	evicted, was := c.Add(4, 4)
	if !was || evicted != 2 {
		t.Fatalf("evicted %v (%v), want 2", evicted, was)
	}
	if c.Contains(2) {
		t.Fatalf("2 should have been evicted")
	}
	if !c.Contains(1) || !c.Contains(3) || !c.Contains(4) {
		t.Fatalf("unexpected contents %v", c.Keys())
	}
}

func TestAddExistingUpdatesValueWithoutEviction(t *testing.T) {
	c := New[int, int](2)
	c.Add(1, 10)
	c.Add(2, 20)
	if _, was := c.Add(1, 11); was {
		t.Fatalf("re-adding existing key must not evict")
	}
	if v, _ := c.Peek(1); v != 11 {
		t.Fatalf("value not updated: %d", v)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestPeekAndContainsDoNotPromote(t *testing.T) {
	c := NewSegmented[int, int](2, 1, nil)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Peek(1)
	c.Contains(1)
	// 1 is still the LRU item, so it gets evicted.
	evicted, was := c.Add(3, 3)
	if !was || evicted != 1 {
		t.Fatalf("evicted %v, want 1", evicted)
	}
}

func TestRemove(t *testing.T) {
	c := New[int, int](2)
	c.Add(1, 1)
	if !c.Remove(1) {
		t.Fatalf("remove(1) should succeed")
	}
	if c.Remove(1) {
		t.Fatalf("second remove should fail")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d", c.Len())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictCallback(t *testing.T) {
	var evictedKeys []int
	c := NewSegmented[int, int](2, 1, func(k int, v int) { evictedKeys = append(evictedKeys, k) })
	c.Add(1, 1)
	c.Add(2, 2)
	c.Add(3, 3)
	if len(evictedKeys) != 1 || evictedKeys[0] != 1 {
		t.Fatalf("evicted = %v, want [1]", evictedKeys)
	}
	// Explicit Remove must not fire the callback.
	c.Remove(2)
	if len(evictedKeys) != 1 {
		t.Fatalf("Remove should not invoke the eviction callback")
	}
}

func TestAddAtPositionalLifetime(t *testing.T) {
	// An item inserted near the LRU end should be evicted before items
	// inserted at the MRU end.
	c := New[int, int](100)
	for i := 0; i < 100; i++ {
		c.Add(i, i)
	}
	c.AddAt(1000, 1000, 0.95) // near the bottom of the queue
	// Insert a handful of new MRU items; 1000 should fall out quickly.
	for i := 100; i < 112; i++ {
		c.Add(i, i)
	}
	if c.Contains(1000) {
		t.Fatalf("item inserted at position 0.95 should already be evicted")
	}

	c2 := New[int, int](100)
	for i := 0; i < 100; i++ {
		c2.Add(i, i)
	}
	c2.AddAt(1000, 1000, 0.0)
	for i := 100; i < 112; i++ {
		c2.Add(i, i)
	}
	if !c2.Contains(1000) {
		t.Fatalf("item inserted at position 0 should still be cached")
	}
}

func TestAddAtClampsPosition(t *testing.T) {
	c := New[int, int](10)
	c.AddAt(1, 1, -5)
	c.AddAt(2, 2, 7)
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatalf("clamped positions should still insert")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := New[int, int](50)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		switch rng.Intn(4) {
		case 0:
			c.Add(rng.Intn(200), i)
		case 1:
			c.AddAt(rng.Intn(200), i, rng.Float64())
		case 2:
			c.Get(rng.Intn(200))
		case 3:
			c.Remove(rng.Intn(200))
		}
		if c.Len() > c.Cap() {
			t.Fatalf("capacity exceeded: %d > %d", c.Len(), c.Cap())
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestKeysOrderedMRUFirstWithinSingleSegment(t *testing.T) {
	c := NewSegmented[int, int](4, 1, nil)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Add(3, 3)
	c.Get(1)
	keys := c.Keys()
	if keys[0] != 1 {
		t.Fatalf("MRU key should be 1, got %v", keys)
	}
	if keys[len(keys)-1] != 2 {
		t.Fatalf("LRU key should be 2, got %v", keys)
	}
}

func TestClear(t *testing.T) {
	c := New[int, int](4)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Clear()
	if c.Len() != 0 || c.Contains(1) {
		t.Fatalf("clear failed")
	}
	c.Add(3, 3)
	if !c.Contains(3) {
		t.Fatalf("cache unusable after clear")
	}
}

func TestPropertyInvariantsUnderRandomOps(t *testing.T) {
	prop := func(ops []uint16, capSeed uint8) bool {
		capacity := int(capSeed%64) + 1
		c := NewSegmented[int, int](capacity, 8, nil)
		for i, op := range ops {
			key := int(op % 128)
			switch op % 5 {
			case 0, 1:
				c.Add(key, i)
			case 2:
				c.AddAt(key, i, float64(op%100)/100)
			case 3:
				c.Get(key)
			case 4:
				c.Remove(key)
			}
		}
		return c.CheckInvariants() == nil && c.Len() <= capacity
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShadowBasics(t *testing.T) {
	s := NewShadow[uint64](3)
	if s.Access(1) {
		t.Fatalf("first access should be a miss")
	}
	if !s.Access(1) {
		t.Fatalf("second access should be a hit")
	}
	s.Access(2)
	s.Access(3)
	s.Access(4) // evicts 1 (2 was LRU? no: order after accesses: 1 MRU? ...)
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	if s.Cap() != 3 {
		t.Fatalf("cap = %d", s.Cap())
	}
}

func TestShadowEvictsLRUKey(t *testing.T) {
	s := NewShadow[int](2)
	s.Access(1)
	s.Access(2)
	s.Access(1) // 2 is now LRU
	s.Access(3) // evicts 2
	if s.Contains(2) {
		t.Fatalf("2 should have been evicted")
	}
	if !s.Contains(1) || !s.Contains(3) {
		t.Fatalf("unexpected shadow contents")
	}
}

func BenchmarkCacheAdd(b *testing.B) {
	c := New[uint64, struct{}](1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(uint64(i)&0x3FFFF, struct{}{})
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := New[uint64, int](1 << 16)
	for i := 0; i < 1<<16; i++ {
		c.Add(uint64(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(uint64(i) & 0xFFFF)
	}
}
