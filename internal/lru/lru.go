// Package lru implements the eviction queues used by Bandana's DRAM cache.
//
// The paper's cache is a Least-Recently-Used queue with two twists:
//
//   - prefetched vectors may be inserted at an arbitrary *position* in the
//     eviction queue rather than at the MRU end (§4.3.1, Figure 11a), and
//   - a keys-only "shadow cache" simulates a cache without prefetches and is
//     consulted as an admission filter (§4.3.1, Figure 11b).
//
// Cache supports O(1) lookups, MRU insertion and eviction, and amortised
// O(1) positional insertion via a segmented queue: the queue is divided into
// a fixed number of equally sized segments; inserting at fraction f places
// the item at the head of segment floor(f*segments), and overflowing
// segments cascade their LRU item into the next segment. An item inserted at
// fraction f therefore survives roughly (1-f)*capacity distinct insertions
// before being evicted, matching the positional semantics of the paper.
package lru

import "fmt"

// entry is a node in the segmented doubly-linked list.
type entry[K comparable, V any] struct {
	key        K
	value      V
	prev, next *entry[K, V]
	seg        int
}

// segment is one region of the conceptual eviction queue, ordered MRU→LRU.
type segment[K comparable, V any] struct {
	head, tail *entry[K, V]
	size       int
}

func (s *segment[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
	s.size++
}

func (s *segment[K, V]) remove(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	s.size--
}

// EvictFunc is called with the key and value of every item evicted due to
// capacity pressure (not for explicit Remove calls).
type EvictFunc[K comparable, V any] func(key K, value V)

// Cache is a fixed-capacity segmented LRU cache. The zero value is not
// usable; construct with New.
type Cache[K comparable, V any] struct {
	capacity int
	segments []segment[K, V]
	items    map[K]*entry[K, V]
	onEvict  EvictFunc[K, V]
}

// DefaultSegments is the number of positional segments used by New.
const DefaultSegments = 16

// New creates an LRU cache holding at most capacity items, using
// DefaultSegments positional segments. capacity must be positive.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	return NewSegmented[K, V](capacity, DefaultSegments, nil)
}

// NewSegmented creates an LRU cache with an explicit segment count and an
// optional eviction callback. segments is clamped to [1, capacity].
func NewSegmented[K comparable, V any](capacity, segments int, onEvict EvictFunc[K, V]) *Cache[K, V] {
	if capacity <= 0 {
		panic(fmt.Sprintf("lru: capacity must be positive, got %d", capacity))
	}
	if segments < 1 {
		segments = 1
	}
	if segments > capacity {
		segments = capacity
	}
	return &Cache[K, V]{
		capacity: capacity,
		segments: make([]segment[K, V], segments),
		items:    make(map[K]*entry[K, V], capacity),
		onEvict:  onEvict,
	}
}

// Len returns the number of cached items.
func (c *Cache[K, V]) Len() int { return len(c.items) }

// Cap returns the configured capacity.
func (c *Cache[K, V]) Cap() int { return c.capacity }

// Contains reports whether key is cached, without affecting recency.
func (c *Cache[K, V]) Contains(key K) bool {
	_, ok := c.items[key]
	return ok
}

// Peek returns the value for key without affecting recency.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	if e, ok := c.items[key]; ok {
		return e.value, true
	}
	var zero V
	return zero, false
}

// Get returns the value for key and promotes it to the MRU position.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	e, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.promote(e)
	return e.value, true
}

// Touch promotes key to the MRU position if present and reports whether it
// was found.
func (c *Cache[K, V]) Touch(key K) bool {
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.promote(e)
	return true
}

func (c *Cache[K, V]) promote(e *entry[K, V]) {
	c.segments[e.seg].remove(e)
	e.seg = 0
	c.segments[0].pushFront(e)
	c.rebalance()
}

// Add inserts key at the MRU position (or promotes and updates it if already
// present). It returns the evicted key and true if an eviction occurred.
func (c *Cache[K, V]) Add(key K, value V) (evicted K, wasEvicted bool) {
	return c.AddAt(key, value, 0)
}

// AddAt inserts key at the queue position given by fraction pos in [0, 1],
// where 0 is the MRU end (top of the eviction queue in the paper's terms)
// and values close to 1 are near the LRU end. If key is already cached, its
// value is updated and it is moved to the requested position. It returns the
// evicted key and true if the insertion caused an eviction.
func (c *Cache[K, V]) AddAt(key K, value V, pos float64) (evicted K, wasEvicted bool) {
	if pos < 0 {
		pos = 0
	}
	if pos > 1 {
		pos = 1
	}
	seg := int(pos * float64(len(c.segments)))
	if seg >= len(c.segments) {
		seg = len(c.segments) - 1
	}

	if e, ok := c.items[key]; ok {
		e.value = value
		c.segments[e.seg].remove(e)
		e.seg = seg
		c.segments[seg].pushFront(e)
		c.rebalance()
		return evicted, false
	}

	e := &entry[K, V]{key: key, value: value, seg: seg}
	c.items[key] = e
	c.segments[seg].pushFront(e)

	if len(c.items) > c.capacity {
		victim := c.evictOne()
		c.rebalance()
		return victim, true
	}
	c.rebalance()
	return evicted, false
}

// Resize changes the cache capacity, evicting LRU items one at a time (via
// the eviction callback) when shrinking below the current population. The
// positional segments are preserved: items keep their relative queue
// positions and the segment balance target adapts to the new capacity.
// Capacities below 1 are clamped to 1. It returns the number of evictions.
func (c *Cache[K, V]) Resize(capacity int) int {
	if capacity < 1 {
		capacity = 1
	}
	c.capacity = capacity
	evicted := 0
	for len(c.items) > c.capacity {
		c.evictOne()
		evicted++
	}
	c.rebalance()
	return evicted
}

// Remove deletes key from the cache and reports whether it was present. The
// eviction callback is not invoked.
func (c *Cache[K, V]) Remove(key K) bool {
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.segments[e.seg].remove(e)
	delete(c.items, key)
	return true
}

// evictOne removes the LRU item of the last non-empty segment.
func (c *Cache[K, V]) evictOne() K {
	for i := len(c.segments) - 1; i >= 0; i-- {
		s := &c.segments[i]
		if s.tail == nil {
			continue
		}
		victim := s.tail
		s.remove(victim)
		delete(c.items, victim.key)
		if c.onEvict != nil {
			c.onEvict(victim.key, victim.value)
		}
		return victim.key
	}
	var zero K
	return zero
}

// rebalance cascades overflow from earlier segments into later ones so that
// each segment holds at most ceil(capacity/segments) items. This keeps the
// positional interpretation of segments stable.
func (c *Cache[K, V]) rebalance() {
	target := (c.capacity + len(c.segments) - 1) / len(c.segments)
	for i := 0; i < len(c.segments)-1; i++ {
		s := &c.segments[i]
		for s.size > target {
			victim := s.tail
			s.remove(victim)
			victim.seg = i + 1
			c.segments[i+1].pushFront(victim)
		}
	}
}

// Keys returns all cached keys ordered from MRU to LRU. Intended for tests
// and diagnostics; O(n).
func (c *Cache[K, V]) Keys() []K {
	keys := make([]K, 0, len(c.items))
	for i := range c.segments {
		for e := c.segments[i].head; e != nil; e = e.next {
			keys = append(keys, e.key)
		}
	}
	return keys
}

// Clear removes every item without invoking the eviction callback.
func (c *Cache[K, V]) Clear() {
	c.items = make(map[K]*entry[K, V], c.capacity)
	for i := range c.segments {
		c.segments[i] = segment[K, V]{}
	}
}

// checkInvariants validates internal consistency; exposed for tests via
// export_test.go.
func (c *Cache[K, V]) checkInvariants() error {
	total := 0
	for i := range c.segments {
		s := &c.segments[i]
		n := 0
		for e := s.head; e != nil; e = e.next {
			if e.seg != i {
				return fmt.Errorf("entry %v records segment %d but lives in %d", e.key, e.seg, i)
			}
			if me, ok := c.items[e.key]; !ok || me != e {
				return fmt.Errorf("entry %v not indexed", e.key)
			}
			n++
			if n > len(c.items)+1 {
				return fmt.Errorf("cycle detected in segment %d", i)
			}
		}
		if n != s.size {
			return fmt.Errorf("segment %d size %d, counted %d", i, s.size, n)
		}
		total += n
	}
	if total != len(c.items) {
		return fmt.Errorf("segments hold %d items, index holds %d", total, len(c.items))
	}
	if total > c.capacity {
		return fmt.Errorf("cache over capacity: %d > %d", total, c.capacity)
	}
	return nil
}
