package lru

import (
	"sync"
	"testing"
)

func TestShardedBasic(t *testing.T) {
	s := NewSharded[uint32, int](64, 4, nil)
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", s.NumShards())
	}
	if s.Cap() < 64 {
		t.Fatalf("Cap = %d, want >= 64", s.Cap())
	}
	for i := uint32(0); i < 32; i++ {
		s.Add(i, int(i)*10)
	}
	if s.Len() != 32 {
		t.Fatalf("Len = %d, want 32", s.Len())
	}
	for i := uint32(0); i < 32; i++ {
		v, ok := s.Get(i)
		if !ok || v != int(i)*10 {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
	if !s.Contains(5) {
		t.Fatal("Contains(5) = false")
	}
	if !s.Remove(5) || s.Contains(5) {
		t.Fatal("Remove(5) did not delete the key")
	}
	if s.Remove(5) {
		t.Fatal("second Remove(5) reported success")
	}
}

func TestShardedRounding(t *testing.T) {
	// Shard count rounds up to a power of two, then halves until it fits
	// within the capacity.
	s := NewSharded[int, int](100, 5, nil)
	if s.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", s.NumShards())
	}
	s = NewSharded[int, int](3, 16, nil)
	if s.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", s.NumShards())
	}
	if s.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", s.Cap())
	}
	s = NewSharded[int, int](10, 0, nil)
	if s.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", s.NumShards())
	}
}

func TestShardedCapacityExact(t *testing.T) {
	// The per-shard split must never let the total exceed the requested
	// capacity, including when the capacity is not a multiple of the shard
	// count.
	for _, tc := range []struct{ capacity, shards int }{
		{5, 6}, {300, 256}, {64, 4}, {7, 2}, {1, 8}, {250, 8},
	} {
		s := NewSharded[uint32, int](tc.capacity, tc.shards, nil)
		if s.Cap() != tc.capacity {
			t.Fatalf("cap(%d,%d): Cap = %d", tc.capacity, tc.shards, s.Cap())
		}
		for i := uint32(0); i < uint32(4*tc.capacity+16); i++ {
			s.Add(i, int(i))
		}
		if s.Len() > tc.capacity {
			t.Fatalf("cap(%d,%d): Len = %d exceeds capacity", tc.capacity, tc.shards, s.Len())
		}
	}
}

func TestShardedEvictsWithinCapacity(t *testing.T) {
	s := NewSharded[uint32, int](64, 4, nil)
	for i := uint32(0); i < 10_000; i++ {
		s.Add(i, int(i))
	}
	if got, max := s.Len(), s.Cap(); got > max {
		t.Fatalf("Len = %d exceeds capacity %d", got, max)
	}
}

func TestShardedDoCompound(t *testing.T) {
	s := NewSharded[uint32, *int](16, 2, nil)
	v := 7
	s.Add(1, &v)
	// Mutate the stored value in place under the shard lock.
	s.Do(1, func(c *Cache[uint32, *int]) {
		if p, ok := c.Get(1); ok {
			*p = 42
		}
	})
	p, ok := s.Get(1)
	if !ok || *p != 42 {
		t.Fatalf("Get(1) after Do = %v, %v", p, ok)
	}
}

func TestShardedConcurrent(t *testing.T) {
	s := NewSharded[uint32, uint32](1024, 8, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				k := uint32((w*5000 + i) % 2048)
				if v, ok := s.Get(k); ok && v != k*3 {
					t.Errorf("Get(%d) = %d, want %d", k, v, k*3)
					return
				}
				s.Add(k, k*3)
				s.Contains(k)
				if i%97 == 0 {
					s.Remove(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() > s.Cap() {
		t.Fatalf("Len %d over capacity %d", s.Len(), s.Cap())
	}
}
