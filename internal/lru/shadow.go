package lru

// Shadow is a keys-only LRU queue. Bandana uses it to simulate a cache that
// receives only explicitly requested vectors (no prefetches) and consults it
// when deciding whether a prefetched vector is worth admitting (§4.3.1).
//
// The shadow queue stores only vector indices, so its memory overhead is a
// small fraction of the real cache even when it is sized 1.5-2x larger.
type Shadow[K comparable] struct {
	c *Cache[K, struct{}]
}

// NewShadow creates a shadow queue with the given capacity.
func NewShadow[K comparable](capacity int) *Shadow[K] {
	return &Shadow[K]{c: NewSegmented[K, struct{}](capacity, 1, nil)}
}

// Access records an access to key: if present it is promoted, otherwise it
// is inserted at the MRU position (possibly evicting the LRU key). It
// reports whether the key was already present (i.e. a shadow hit).
func (s *Shadow[K]) Access(key K) bool {
	if s.c.Touch(key) {
		return true
	}
	s.c.Add(key, struct{}{})
	return false
}

// Contains reports whether key is currently in the shadow queue without
// affecting recency.
func (s *Shadow[K]) Contains(key K) bool { return s.c.Contains(key) }

// Len returns the number of keys tracked.
func (s *Shadow[K]) Len() int { return s.c.Len() }

// Cap returns the capacity.
func (s *Shadow[K]) Cap() int { return s.c.Cap() }
