package lru

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Sharded is a concurrency-safe LRU cache split into independently locked
// shards. Keys are routed to shards by hash, so lookups of different keys
// proceed in parallel on different shards and the cache scales with the
// number of cores instead of serializing behind one lock.
//
// The total capacity is divided exactly across the shards (the remainder
// goes to the first capacity%shards shards), so the sharded cache never
// holds more items than requested. Each shard is a segmented Cache, which
// approximates a global LRU: recency is exact within a shard and the hash
// spreads keys uniformly, so the eviction behaviour converges to the
// unsharded cache as the per-shard population grows. Positional insertion
// (AddAt) applies the position within the key's shard, preserving the
// paper's queue-position semantics per shard.
type Sharded[K comparable, V any] struct {
	hash func(K) uint64
	mask uint64
	// capacity is atomic because Resize rewrites it while concurrent
	// readers may call Cap.
	capacity atomic.Int64
	shards   []lockedShard[K, V]
}

// lockedShard pairs one shard's cache with its lock. The padding keeps
// neighbouring shard locks on different cache lines so uncontended shards do
// not false-share: mutex (8) + cache pointer (8) + 48 pad = 64 bytes, one
// full line per shard.
type lockedShard[K comparable, V any] struct {
	mu sync.Mutex
	c  *Cache[K, V]
	_  [48]byte
}

// NewSharded creates a sharded cache with the given total capacity. shards
// is rounded up to a power of two, then halved until the shard count does
// not exceed the capacity (so every shard holds at least one item); a value
// <= 0 selects a single shard. hash routes keys to shards; nil selects a
// seeded maphash, which works for any comparable key type.
func NewSharded[K comparable, V any](capacity, shards int, hash func(K) uint64) *Sharded[K, V] {
	if capacity <= 0 {
		panic("lru: sharded capacity must be positive")
	}
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	for n > capacity {
		n >>= 1
	}
	if hash == nil {
		seed := maphash.MakeSeed()
		hash = func(k K) uint64 { return maphash.Comparable(seed, k) }
	}
	s := &Sharded[K, V]{
		hash:   hash,
		mask:   uint64(n - 1),
		shards: make([]lockedShard[K, V], n),
	}
	s.capacity.Store(int64(capacity))
	base, rem := capacity/n, capacity%n
	for i := range s.shards {
		c := base
		if i < rem {
			c++
		}
		s.shards[i].c = New[K, V](c)
	}
	return s
}

// NumShards returns the number of shards.
func (s *Sharded[K, V]) NumShards() int { return len(s.shards) }

// Cap returns the total capacity (the sum of the shard capacities).
func (s *Sharded[K, V]) Cap() int { return int(s.capacity.Load()) }

// Len returns the number of cached items across all shards.
func (s *Sharded[K, V]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.c.Len()
		sh.mu.Unlock()
	}
	return n
}

func (s *Sharded[K, V]) shardOf(key K) *lockedShard[K, V] {
	return &s.shards[s.hash(key)&s.mask]
}

// Get returns the value for key and promotes it to the MRU position of its
// shard.
func (s *Sharded[K, V]) Get(key K) (V, bool) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	v, ok := sh.c.Get(key)
	sh.mu.Unlock()
	return v, ok
}

// Contains reports whether key is cached, without affecting recency.
func (s *Sharded[K, V]) Contains(key K) bool {
	sh := s.shardOf(key)
	sh.mu.Lock()
	ok := sh.c.Contains(key)
	sh.mu.Unlock()
	return ok
}

// Add inserts key at the MRU position of its shard (or promotes and updates
// it if already present).
func (s *Sharded[K, V]) Add(key K, value V) {
	s.AddAt(key, value, 0)
}

// AddAt inserts key at queue position pos in [0, 1] within its shard.
func (s *Sharded[K, V]) AddAt(key K, value V, pos float64) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	sh.c.AddAt(key, value, pos)
	sh.mu.Unlock()
}

// Resize changes the total capacity in place, redistributing it across the
// existing shards with the same exact split as NewSharded and evicting each
// shard's LRU overflow incrementally — cached items outside the overflow
// survive, so a live cache can grow or shrink without losing its working
// set. The shard count is fixed at construction, so the capacity is clamped
// to at least one item per shard; the actual new capacity is returned.
//
// Safe for concurrent use with the other methods: each shard is resized
// under its own lock, so lookups proceed on other shards while one shard
// evicts. During the (brief) pass the total capacity is transiently mixed
// between the old and new splits, which is harmless: every shard is always
// at or below one of the two targets.
func (s *Sharded[K, V]) Resize(capacity int) int {
	n := len(s.shards)
	if capacity < n {
		capacity = n
	}
	base, rem := capacity/n, capacity%n
	for i := range s.shards {
		c := base
		if i < rem {
			c++
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.c.Resize(c)
		sh.mu.Unlock()
	}
	s.capacity.Store(int64(capacity))
	return capacity
}

// Remove deletes key and reports whether it was present.
func (s *Sharded[K, V]) Remove(key K) bool {
	sh := s.shardOf(key)
	sh.mu.Lock()
	ok := sh.c.Remove(key)
	sh.mu.Unlock()
	return ok
}

// Do runs fn on the shard that owns key while holding that shard's lock,
// allowing compound read-modify-write operations (e.g. get-and-flag, or
// check-then-insert) to execute atomically with respect to other accesses of
// the same shard. fn must not call back into the Sharded cache.
func (s *Sharded[K, V]) Do(key K, fn func(c *Cache[K, V])) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	fn(sh.c)
	sh.mu.Unlock()
}

// ForEachShard runs fn on every shard in turn, holding each shard's lock for
// the duration of its call. Intended for whole-cache maintenance (stats,
// clearing); fn must not call back into the Sharded cache.
func (s *Sharded[K, V]) ForEachShard(fn func(c *Cache[K, V])) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		fn(sh.c)
		sh.mu.Unlock()
	}
}
