// Package fp16 implements IEEE-754 binary16 (half precision) conversion.
//
// Bandana stores embedding vectors as fp16 elements (the production model in
// the paper uses 64 elements of type fp16 per vector, i.e. 128 bytes). This
// package provides scalar and bulk conversions between float32 and the
// 16-bit encoding, with round-to-nearest-even semantics, plus helpers to
// encode vectors into byte slices for block storage.
package fp16

import (
	"encoding/binary"
	"math"
)

// Float16 is the 16-bit IEEE-754 binary16 representation of a floating point
// number: 1 sign bit, 5 exponent bits, 10 mantissa bits.
type Float16 uint16

const (
	// ByteSize is the size of one encoded element in bytes.
	ByteSize = 2

	signMask16     = 0x8000
	exponentMask16 = 0x7C00
	mantissaMask16 = 0x03FF
)

// PositiveInfinity is the Float16 encoding of +Inf.
const PositiveInfinity Float16 = 0x7C00

// NegativeInfinity is the Float16 encoding of -Inf.
const NegativeInfinity Float16 = 0xFC00

// FromFloat32 converts a float32 to Float16 using round-to-nearest-even.
// Values whose magnitude exceeds the binary16 range become infinities;
// subnormal results are rounded to the nearest representable subnormal.
func FromFloat32(f float32) Float16 {
	b := math.Float32bits(f)
	sign := uint16((b >> 16) & signMask16)
	exp := int32((b>>23)&0xFF) - 127
	mant := b & 0x7FFFFF

	switch {
	case exp == 128: // NaN or Inf
		if mant != 0 {
			// NaN: preserve a quiet NaN with some payload.
			return Float16(sign | exponentMask16 | 0x0200 | uint16(mant>>13))
		}
		return Float16(sign | exponentMask16)
	case exp > 15: // overflow -> infinity
		return Float16(sign | exponentMask16)
	case exp >= -14: // normalized range
		// 13 mantissa bits are dropped; round to nearest even.
		e := uint16(exp+15) << 10
		m := mant >> 13
		rem := mant & 0x1FFF
		if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			m++
		}
		// Mantissa overflow propagates into the exponent, which is exactly
		// the desired rounding behaviour (and saturates to Inf correctly).
		return Float16(uint32(sign) + uint32(e) + m)
	case exp >= -25: // subnormal range (including values that round up to the
		// smallest subnormal)
		shift := uint32(-exp - 1) // between 14 and 24
		full := mant | 0x800000
		m := full >> shift
		rem := full & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && m&1 == 1) {
			m++
		}
		return Float16(uint32(sign) + m)
	default: // underflow to signed zero
		return Float16(sign)
	}
}

// ToFloat32 converts a Float16 back to float32. The conversion is exact:
// every binary16 value is representable in binary32.
func (h Float16) ToFloat32() float32 {
	sign := uint32(h&signMask16) << 16
	exp := uint32(h&exponentMask16) >> 10
	mant := uint32(h & mantissaMask16)

	switch {
	case exp == 0x1F: // Inf / NaN
		if mant != 0 {
			return math.Float32frombits(sign | 0x7F800000 | (mant << 13) | 0x400000)
		}
		return math.Float32frombits(sign | 0x7F800000)
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalise.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= mantissaMask16
		return math.Float32frombits(sign | (e << 23) | (mant << 13))
	default:
		return math.Float32frombits(sign | ((exp + 127 - 15) << 23) | (mant << 13))
	}
}

// IsNaN reports whether h encodes a NaN.
func (h Float16) IsNaN() bool {
	return h&exponentMask16 == exponentMask16 && h&mantissaMask16 != 0
}

// IsInf reports whether h encodes an infinity. sign > 0 tests +Inf, sign < 0
// tests -Inf and sign == 0 tests either.
func (h Float16) IsInf(sign int) bool {
	if h&exponentMask16 != exponentMask16 || h&mantissaMask16 != 0 {
		return false
	}
	neg := h&signMask16 != 0
	return sign == 0 || (sign > 0 && !neg) || (sign < 0 && neg)
}

// Bits returns the raw 16-bit encoding.
func (h Float16) Bits() uint16 { return uint16(h) }

// FromBits builds a Float16 from its raw encoding.
func FromBits(b uint16) Float16 { return Float16(b) }

// EncodeSlice converts src (float32) into its packed little-endian binary16
// representation appended to dst, returning the extended slice. The encoded
// length is 2*len(src) bytes.
func EncodeSlice(dst []byte, src []float32) []byte {
	for _, f := range src {
		var buf [2]byte
		binary.LittleEndian.PutUint16(buf[:], uint16(FromFloat32(f)))
		dst = append(dst, buf[0], buf[1])
	}
	return dst
}

// decodeTable maps every binary16 bit pattern to the bits of its binary32
// value. 256 KiB buys a branchless one-load-per-element bulk decode that is
// bit-identical to ToFloat32 by construction (including signed zeros,
// subnormals, infinities and NaN payload quieting). Embedding payloads
// cluster on a few exponents, so the hot entries stay cache-resident.
var decodeTable = func() *[1 << 16]uint32 {
	var t [1 << 16]uint32
	for i := range t {
		t[i] = math.Float32bits(Float16(i).ToFloat32())
	}
	return &t
}()

// DecodeSlice decodes a packed little-endian binary16 buffer into dst
// (float32). It decodes min(len(dst), len(src)/2) elements and returns the
// number decoded.
//
// This is the serving path's bulk decode (one call per vector on every
// cache fill, and the client-side decode of the binary wire protocol), so
// it is unrolled 8 wide over 64-bit loads with table-driven lane
// conversion instead of converting element-at-a-time through ToFloat32.
func DecodeSlice(dst []float32, src []byte) int {
	n := len(src) / 2
	if n > len(dst) {
		n = len(dst)
	}
	t := decodeTable
	i := 0
	for ; i+8 <= n; i += 8 {
		s := src[2*i : 2*i+16 : 2*i+16]
		lo := binary.LittleEndian.Uint64(s)
		hi := binary.LittleEndian.Uint64(s[8:])
		d := dst[i : i+8 : i+8]
		d[0] = math.Float32frombits(t[uint16(lo)])
		d[1] = math.Float32frombits(t[uint16(lo>>16)])
		d[2] = math.Float32frombits(t[uint16(lo>>32)])
		d[3] = math.Float32frombits(t[lo>>48])
		d[4] = math.Float32frombits(t[uint16(hi)])
		d[5] = math.Float32frombits(t[uint16(hi>>16)])
		d[6] = math.Float32frombits(t[uint16(hi>>32)])
		d[7] = math.Float32frombits(t[hi>>48])
	}
	for ; i < n; i++ {
		dst[i] = math.Float32frombits(t[binary.LittleEndian.Uint16(src[2*i:])])
	}
	return n
}

// DecodeAppend decodes every element of src and appends them to dst.
func DecodeAppend(dst []float32, src []byte) []float32 {
	n := len(src) / 2
	if free := cap(dst) - len(dst); free < n {
		grown := make([]float32, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	out := dst[:len(dst)+n]
	DecodeSlice(out[len(dst):], src)
	return out
}

// Quantize rounds every element of v through binary16 and back, in place,
// and returns v. It is used by the synthetic table generator so that
// generated values are exactly representable.
func Quantize(v []float32) []float32 {
	for i, f := range v {
		v[i] = FromFloat32(f).ToFloat32()
	}
	return v
}
