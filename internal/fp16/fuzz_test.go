package fp16

import (
	"math"
	"testing"
)

// FuzzFP16RoundTrip checks the two identities the codec relies on:
//
//  1. bits -> float32 -> bits is lossless for every non-NaN binary16 value
//     (every binary16 is exactly representable in binary32, and
//     round-to-nearest-even maps it straight back), and NaNs stay NaNs.
//  2. float32 -> binary16 -> float32 -> binary16 is idempotent: once a value
//     has been quantised, re-encoding it changes nothing (no double
//     rounding drift).
func FuzzFP16RoundTrip(f *testing.F) {
	seeds := []uint16{
		0x0000, 0x8000, // +0, -0
		0x0001, 0x8001, // smallest subnormals
		0x03FF,         // largest subnormal
		0x0400,         // smallest normal
		0x3C00, 0xBC00, // +1, -1
		0x7BFF, 0xFBFF, // largest finite
		0x7C00, 0xFC00, // +Inf, -Inf
		0x7C01, 0x7E00, 0xFE00, // NaNs
		0x3555, // ~1/3
	}
	for _, s := range seeds {
		f.Add(s, float32(0.1))
	}
	f.Add(uint16(0x1234), float32(math.Inf(1)))
	f.Add(uint16(0x4321), float32(math.NaN()))
	f.Add(uint16(0xCAFE), float32(65520)) // overflows binary16 -> Inf
	f.Add(uint16(0xBEEF), float32(5.96e-8))

	f.Fuzz(func(t *testing.T, bits uint16, val float32) {
		h := FromBits(bits)
		f32 := h.ToFloat32()
		back := FromFloat32(f32)
		if h.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("bits %#04x: NaN did not survive the round trip (got %#04x)", bits, back.Bits())
			}
			if math.Float32bits(f32)&(1<<22) == 0 {
				t.Fatalf("bits %#04x: NaN must decode to a quiet float32 NaN", bits)
			}
		} else if back != h {
			t.Fatalf("bits %#04x -> %g -> %#04x: lossless round trip violated", bits, f32, back.Bits())
		}

		// Idempotence of quantisation for arbitrary float32 input.
		q1 := FromFloat32(val)
		q2 := FromFloat32(q1.ToFloat32())
		if q1.IsNaN() {
			if !q2.IsNaN() {
				t.Fatalf("val %g: NaN quantisation not stable", val)
			}
		} else if q1 != q2 {
			t.Fatalf("val %g: quantisation not idempotent (%#04x vs %#04x)", val, q1.Bits(), q2.Bits())
		}

		// Infinity classification must be consistent between the encoded and
		// decoded forms.
		if h.IsInf(0) != math.IsInf(float64(f32), 0) {
			t.Fatalf("bits %#04x: IsInf disagrees with decoded value %g", bits, f32)
		}

		// Slice codec agrees with the scalar path.
		enc := EncodeSlice(nil, []float32{f32, val})
		dec := make([]float32, 2)
		if n := DecodeSlice(dec, enc); n != 2 {
			t.Fatalf("decoded %d elements, want 2", n)
		}
		if math.Float32bits(dec[0]) != math.Float32bits(f32) && !(math.IsNaN(float64(dec[0])) && math.IsNaN(float64(f32))) {
			t.Fatalf("slice codec diverges from scalar codec for %#04x", bits)
		}
	})
}
