package fp16

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// decodeSliceScalar is the pre-unrolling reference implementation: one
// ToFloat32 per element. The bulk path must match it bit for bit.
func decodeSliceScalar(dst []float32, src []byte) int {
	n := len(src) / 2
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		bits := binary.LittleEndian.Uint16(src[2*i:])
		dst[i] = Float16(bits).ToFloat32()
	}
	return n
}

// TestDecodeSliceExhaustive pins the bulk conversion to the scalar one over
// every one of the 65536 binary16 bit patterns — normals, subnormals,
// signed zeros, infinities and every NaN payload — through the unrolled
// loop itself.
func TestDecodeSliceExhaustive(t *testing.T) {
	src := make([]byte, 2<<16)
	for b := 0; b <= 0xFFFF; b++ {
		binary.LittleEndian.PutUint16(src[2*b:], uint16(b))
	}
	got := make([]float32, 1<<16)
	if n := DecodeSlice(got, src); n != 1<<16 {
		t.Fatalf("decoded %d elements, want %d", n, 1<<16)
	}
	for b := 0; b <= 0xFFFF; b++ {
		want := Float16(b).ToFloat32()
		if math.Float32bits(got[b]) != math.Float32bits(want) {
			t.Fatalf("DecodeSlice(%#04x) = %g (bits %#08x), want %g (bits %#08x)",
				b, got[b], math.Float32bits(got[b]), want, math.Float32bits(want))
		}
	}
}

// TestDecodeSliceSpecialValues drives the unrolled path (slices long enough
// to exercise the 8-wide loop) through the encodings that take the slow
// branch, at every lane position.
func TestDecodeSliceSpecialValues(t *testing.T) {
	cases := []struct {
		name string
		bits uint16
	}{
		{"positive zero", 0x0000},
		{"negative zero", 0x8000},
		{"smallest subnormal", 0x0001},
		{"largest subnormal", 0x03FF},
		{"negative subnormal", 0x83FF},
		{"smallest normal", 0x0400},
		{"largest normal", 0x7BFF},
		{"one", 0x3C00},
		{"+Inf", 0x7C00},
		{"-Inf", 0xFC00},
		{"quiet NaN", 0x7E00},
		{"signaling NaN payload", 0x7C01},
		{"negative NaN payload", 0xFDAB},
	}
	const n = 19 // odd and > 16: both unrolled iterations plus a tail
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for lane := 0; lane < n; lane++ {
				src := make([]byte, 2*n)
				for i := 0; i < n; i++ {
					fill := uint16(0x3C00 + i) // distinct ordinary normals
					if i == lane {
						fill = tc.bits
					}
					binary.LittleEndian.PutUint16(src[2*i:], fill)
				}
				got := make([]float32, n)
				want := make([]float32, n)
				if DecodeSlice(got, src) != n || decodeSliceScalar(want, src) != n {
					t.Fatalf("lane %d: short decode", lane)
				}
				for i := range got {
					if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
						t.Fatalf("lane %d elem %d: got bits %#08x, want %#08x",
							lane, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
					}
				}
			}
		})
	}
}

// TestDecodeSliceLengths covers the ragged edges of the unrolled loop: every
// length from 0 to 33 with random payloads, plus dst shorter than src and
// src shorter than dst.
func TestDecodeSliceLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 33; n++ {
		src := make([]byte, 2*n)
		rng.Read(src)
		got := make([]float32, n)
		want := make([]float32, n)
		if DecodeSlice(got, src) != n || decodeSliceScalar(want, src) != n {
			t.Fatalf("n=%d: short decode", n)
		}
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("n=%d elem %d: got bits %#08x, want %#08x",
					n, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	}

	src := make([]byte, 2*16)
	rng.Read(src)
	short := make([]float32, 5)
	if n := DecodeSlice(short, src); n != 5 {
		t.Fatalf("short dst decoded %d elements, want 5", n)
	}
	long := make([]float32, 32)
	if n := DecodeSlice(long, src[:2*7]); n != 7 {
		t.Fatalf("short src decoded %d elements, want 7", n)
	}
}

func TestDecodeAppendMatchesDecodeSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := make([]byte, 2*21)
	rng.Read(src)
	prefix := []float32{1, 2, 3}
	got := DecodeAppend(append([]float32(nil), prefix...), src)
	if len(got) != len(prefix)+21 {
		t.Fatalf("DecodeAppend length %d, want %d", len(got), len(prefix)+21)
	}
	want := make([]float32, 21)
	decodeSliceScalar(want, src)
	for i, f := range prefix {
		if got[i] != f {
			t.Fatalf("prefix clobbered at %d", i)
		}
	}
	for i := range want {
		if math.Float32bits(got[len(prefix)+i]) != math.Float32bits(want[i]) {
			t.Fatalf("elem %d: got bits %#08x, want %#08x",
				i, math.Float32bits(got[len(prefix)+i]), math.Float32bits(want[i]))
		}
	}
}

// benchSrc builds one encoded vector of dim elements: mostly normals with a
// sprinkle of zeros, matching real embedding payloads.
func benchSrc(dim int) []byte {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float32, dim)
	for i := range vals {
		if i%16 == 15 {
			vals[i] = 0
		} else {
			vals[i] = float32(rng.NormFloat64())
		}
	}
	return EncodeSlice(nil, vals)
}

func BenchmarkDecodeSlice(b *testing.B) {
	for _, dim := range []int{16, 64, 256} {
		src := benchSrc(dim)
		dst := make([]float32, dim)
		b.Run(sizeName(dim), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				DecodeSlice(dst, src)
			}
		})
	}
}

// BenchmarkDecodeSliceScalar is the pre-unrolling baseline, kept so the
// speedup stays measurable in one `go test -bench DecodeSlice` run.
func BenchmarkDecodeSliceScalar(b *testing.B) {
	for _, dim := range []int{16, 64, 256} {
		src := benchSrc(dim)
		dst := make([]float32, dim)
		b.Run(sizeName(dim), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				decodeSliceScalar(dst, src)
			}
		})
	}
}

func sizeName(dim int) string {
	switch dim {
	case 16:
		return "dim16"
	case 64:
		return "dim64"
	case 256:
		return "dim256"
	}
	return "dim?"
}
