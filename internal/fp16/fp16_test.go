package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTripExactValues(t *testing.T) {
	cases := []float32{0, 1, -1, 0.5, -0.5, 2, 65504, -65504, 0.000061035156, 1.5, 3.140625}
	for _, f := range cases {
		h := FromFloat32(f)
		got := h.ToFloat32()
		if got != f {
			t.Errorf("round trip of %g: got %g", f, got)
		}
	}
}

func TestSignedZero(t *testing.T) {
	pz := FromFloat32(0)
	nz := FromFloat32(float32(math.Copysign(0, -1)))
	if pz.Bits() != 0x0000 {
		t.Errorf("+0 bits = %#x, want 0x0000", pz.Bits())
	}
	if nz.Bits() != 0x8000 {
		t.Errorf("-0 bits = %#x, want 0x8000", nz.Bits())
	}
	if math.Signbit(float64(nz.ToFloat32())) != true {
		t.Errorf("-0 lost its sign")
	}
}

func TestOverflowToInfinity(t *testing.T) {
	if h := FromFloat32(70000); !h.IsInf(1) {
		t.Errorf("70000 should overflow to +Inf, got bits %#x", h.Bits())
	}
	if h := FromFloat32(-70000); !h.IsInf(-1) {
		t.Errorf("-70000 should overflow to -Inf, got bits %#x", h.Bits())
	}
	if h := FromFloat32(float32(math.Inf(1))); !h.IsInf(1) || h.IsNaN() {
		t.Errorf("+Inf not preserved")
	}
}

func TestNaNPropagation(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Fatalf("NaN should encode as NaN, got bits %#x", h.Bits())
	}
	if f := h.ToFloat32(); !math.IsNaN(float64(f)) {
		t.Errorf("decoded NaN is %g, want NaN", f)
	}
}

func TestKnownBitPatterns(t *testing.T) {
	cases := []struct {
		f    float32
		bits uint16
	}{
		{1.0, 0x3C00},
		{-2.0, 0xC000},
		{0.5, 0x3800},
		{65504, 0x7BFF},         // largest normal
		{6.1035156e-05, 0x0400}, // smallest normal
		{5.9604645e-08, 0x0001}, // smallest subnormal
	}
	for _, c := range cases {
		if got := FromFloat32(c.f).Bits(); got != c.bits {
			t.Errorf("FromFloat32(%g) = %#x, want %#x", c.f, got, c.bits)
		}
		if got := FromBits(c.bits).ToFloat32(); got != c.f {
			t.Errorf("FromBits(%#x) = %g, want %g", c.bits, got, c.f)
		}
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1.0 + 2^-11 is exactly between 1.0 and the next representable half
	// (1.0 + 2^-10); ties round to even, i.e. to 1.0.
	f := float32(1.0 + math.Pow(2, -11))
	if got := FromFloat32(f).ToFloat32(); got != 1.0 {
		t.Errorf("tie should round to even (1.0), got %g", got)
	}
	// Slightly above the tie rounds up.
	f = float32(1.0 + math.Pow(2, -11) + math.Pow(2, -20))
	want := float32(1.0 + math.Pow(2, -10))
	if got := FromFloat32(f).ToFloat32(); got != want {
		t.Errorf("above-tie should round up to %g, got %g", want, got)
	}
}

func TestPropertyRoundTripWithinHalfULP(t *testing.T) {
	// For any float32 in the normal binary16 range, the round trip error is
	// bounded by half a binary16 ULP of the value.
	prop := func(u uint16, frac uint32) bool {
		// Construct a value within the half-precision normal range.
		mag := float64(u%60000) + float64(frac%1000)/1000.0
		f := float32(mag)
		h := FromFloat32(f)
		if h.IsInf(0) {
			return mag > 65504
		}
		back := float64(h.ToFloat32())
		ulp := math.Max(math.Abs(float64(f))/1024.0, 5.96e-08)
		return math.Abs(back-float64(f)) <= ulp/2+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDecodeEncodeIdentity(t *testing.T) {
	// Every 16-bit pattern except NaNs survives decode->encode unchanged.
	prop := func(b uint16) bool {
		h := FromBits(b)
		if h.IsNaN() {
			return FromFloat32(h.ToFloat32()).IsNaN()
		}
		return FromFloat32(h.ToFloat32()) == h
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeSlice(t *testing.T) {
	src := []float32{0, 1, -1, 0.25, 1000, -65504, 0.333984375}
	buf := EncodeSlice(nil, src)
	if len(buf) != len(src)*ByteSize {
		t.Fatalf("encoded length = %d, want %d", len(buf), len(src)*ByteSize)
	}
	dst := make([]float32, len(src))
	n := DecodeSlice(dst, buf)
	if n != len(src) {
		t.Fatalf("decoded %d elements, want %d", n, len(src))
	}
	for i := range src {
		want := FromFloat32(src[i]).ToFloat32()
		if dst[i] != want {
			t.Errorf("element %d: got %g, want %g", i, dst[i], want)
		}
	}
}

func TestDecodeSliceShortDst(t *testing.T) {
	src := []float32{1, 2, 3, 4}
	buf := EncodeSlice(nil, src)
	dst := make([]float32, 2)
	if n := DecodeSlice(dst, buf); n != 2 {
		t.Fatalf("DecodeSlice with short dst decoded %d, want 2", n)
	}
	if dst[0] != 1 || dst[1] != 2 {
		t.Errorf("short decode got %v", dst)
	}
}

func TestDecodeAppend(t *testing.T) {
	buf := EncodeSlice(nil, []float32{7, 8})
	out := DecodeAppend([]float32{1}, buf)
	if len(out) != 3 || out[0] != 1 || out[1] != 7 || out[2] != 8 {
		t.Errorf("DecodeAppend got %v", out)
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	v := []float32{0.1, 0.2, 0.3, 123.456}
	q1 := Quantize(append([]float32(nil), v...))
	q2 := Quantize(append([]float32(nil), q1...))
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Errorf("quantize not idempotent at %d: %g vs %g", i, q1[i], q2[i])
		}
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	var sink Float16
	for i := 0; i < b.N; i++ {
		sink = FromFloat32(float32(i) * 0.001)
	}
	_ = sink
}

func BenchmarkEncodeSlice64(b *testing.B) {
	src := make([]float32, 64)
	for i := range src {
		src[i] = float32(i) * 0.01
	}
	buf := make([]byte, 0, 128)
	b.SetBytes(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = EncodeSlice(buf[:0], src)
	}
}
