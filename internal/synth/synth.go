// Package synth builds the synthetic embedding tables + workload used by
// the demo binaries (bandana-server, bandana init). It exists so the two
// binaries generate bit-identical tables for identical flags — `bandana
// init --data-dir X` followed by `bandana-server --backend file --data-dir
// X` must serve exactly the vectors that were ingested.
package synth

import (
	"bandana/internal/table"
	"bandana/internal/trace"
)

// Options configures synthetic workload construction beyond the basic
// Build parameters.
type Options struct {
	Scale     float64
	NumTables int
	Seed      int64
	Requests  int
	// DriftRotateEvery > 0 enables the hot-set-rotation drift workload:
	// every table's hot communities rotate after that many requests (see
	// trace.DriftProfiles). 0 keeps the stationary workload.
	DriftRotateEvery int
}

// Build generates numTables scaled-down versions of the paper's Table 1
// profiles plus a shared training workload of the given request count.
// Table geometry is aligned with the workload's co-access communities so
// that SHP has signal to find. numTables is clamped to [1, 8].
func Build(scale float64, numTables int, seed int64, requests int) ([]*table.Table, *trace.Workload) {
	return BuildWorkload(Options{Scale: scale, NumTables: numTables, Seed: seed, Requests: requests})
}

// BuildWorkload is Build with the full option set (drift, etc.). Identical
// options produce bit-identical tables and traces across processes.
func BuildWorkload(opts Options) ([]*table.Table, *trace.Workload) {
	numTables := opts.NumTables
	if numTables < 1 {
		numTables = 1
	}
	if numTables > 8 {
		numTables = 8
	}
	profiles := trace.DefaultProfiles(opts.Scale)[:numTables]
	if opts.DriftRotateEvery > 0 {
		profiles = trace.DriftProfiles(opts.Scale, opts.DriftRotateEvery)[:numTables]
	}
	seed := opts.Seed
	requests := opts.Requests
	for i := range profiles {
		profiles[i].Seed += seed * 100
	}
	workload := trace.GenerateWorkload(profiles, requests)
	tables := make([]*table.Table, len(profiles))
	for i, p := range profiles {
		g := table.Generate(p.Name, table.GenerateOptions{
			NumVectors:  p.NumVectors,
			Dim:         64,
			NumClusters: p.NumVectors / trace.DefaultCommunitySize,
			Seed:        seed + int64(i),
			Assignments: workload.Communities[i],
		})
		tables[i] = g.Table
	}
	return tables, workload
}
