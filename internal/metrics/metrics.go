// Package metrics provides lightweight measurement primitives used across
// Bandana: streaming counters, latency histograms with percentile queries,
// and simple rate/ratio trackers.
//
// All types are safe for concurrent use unless stated otherwise; the
// experiment harness and the store's hot path both record into them.
package metrics

import (
	"fmt"
	"math"
	randv2 "math/rand/v2"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (which must be >= 0).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// StripedCounter is a counter spread across cache-line-padded slots so that
// many goroutines incrementing concurrently do not contend on one cache
// line. Callers supply a stripe selector (any well-distributed hash, e.g.
// the key hash they already computed); Value sums the slots.
type StripedCounter struct {
	slots []paddedInt64
	mask  uint64
}

type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// NewStripedCounter creates a counter with the given number of stripes,
// rounded up to a power of two (minimum 1).
func NewStripedCounter(stripes int) *StripedCounter {
	n := 1
	for n < stripes {
		n <<= 1
	}
	return &StripedCounter{slots: make([]paddedInt64, n), mask: uint64(n - 1)}
}

// Inc increments the stripe selected by hash and returns the stripe's new
// value. The return value gives hot paths a free 1-in-N sampling signal
// (e.g. new&(N-1) == 1, N a power of two — the ==1 phase fires on a stripe's
// first increment, so low-traffic callers sample too): the add returns the sum,
// so deriving the decision from it costs nothing, unlike a random draw.
func (c *StripedCounter) Inc(hash uint64) int64 { return c.slots[hash&c.mask].v.Add(1) }

// Add increments the stripe selected by hash by delta.
func (c *StripedCounter) Add(hash uint64, delta int64) { c.slots[hash&c.mask].v.Add(delta) }

// Value returns the sum of all stripes. Concurrent increments may or may
// not be included, as with any relaxed counter read.
func (c *StripedCounter) Value() int64 {
	var sum int64
	for i := range c.slots {
		sum += c.slots[i].v.Load()
	}
	return sum
}

// Reset zeroes every stripe.
func (c *StripedCounter) Reset() {
	for i := range c.slots {
		c.slots[i].v.Store(0)
	}
}

// Gauge is a settable 64-bit value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta and returns the new value (e.g. in-flight
// request tracking).
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value returns the stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Ratio tracks a numerator/denominator pair (e.g. hits/accesses).
type Ratio struct {
	num Counter
	den Counter
}

// Observe records one event; hit indicates whether it counts toward the
// numerator.
func (r *Ratio) Observe(hit bool) {
	if hit {
		r.num.Inc()
	}
	r.den.Inc()
}

// Add records bulk events.
func (r *Ratio) Add(num, den int64) {
	r.num.Add(num)
	r.den.Add(den)
}

// Value returns the current ratio, or 0 if nothing was recorded.
func (r *Ratio) Value() float64 {
	d := r.den.Value()
	if d == 0 {
		return 0
	}
	return float64(r.num.Value()) / float64(d)
}

// Num returns the numerator.
func (r *Ratio) Num() int64 { return r.num.Value() }

// Den returns the denominator.
func (r *Ratio) Den() int64 { return r.den.Value() }

// Reset clears both counters.
func (r *Ratio) Reset() {
	r.num.Reset()
	r.den.Reset()
}

// Histogram is a lock-free log-linear histogram of non-negative values
// (latencies in microseconds, sizes in bytes, ...). It supports approximate
// percentile queries with bounded relative error determined by the bucket
// layout: buckets grow geometrically by `growth` starting at `first`, with
// the final bound clamped to exactly maxBound.
//
// The bucket layout is fixed at construction; Observe is one binary search
// plus an atomic add into a randomly selected stripe, so the store's ~120 ns
// hit path can record into it without a mutex or an allocation. Reads
// (Count, Quantile, Snapshot, ...) sum the stripes; like any relaxed
// counter they may miss concurrent in-flight observations.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; immutable after construction
	stripes []histStripe
	mask    uint32
	minBits atomic.Uint64 // float64 bits of the smallest observation
	maxBits atomic.Uint64 // float64 bits of the largest observation
}

// histStripe holds one stripe's bucket counts and value sum. Stripes are
// selected per-observation by a cheap per-P random draw, so concurrent
// observers of the same value land on different cache lines.
type histStripe struct {
	counts  []atomic.Int64 // len(bounds)+1; last bucket is the overflow
	sumBits atomic.Uint64  // float64 bits of the stripe's value sum
	_       [40]byte       // keep adjacent stripe headers off one cache line
}

// histStripes is the number of stripes per histogram. Four stripes cut
// same-bucket contention enough for the hit path while keeping the memory
// cost of the ~330-bucket latency layout around 10 KB per histogram.
const histStripes = 4

// NewHistogram creates a histogram with geometric bucket bounds
// [first, first*growth, ...] clamped so the final bound is exactly maxBound.
// growth must be > 1.
func NewHistogram(first, growth, maxBound float64) *Histogram {
	if first <= 0 || growth <= 1 || maxBound <= first {
		panic("metrics: invalid histogram parameters")
	}
	var bounds []float64
	for b := first; b < maxBound; b *= growth {
		bounds = append(bounds, b)
	}
	bounds = append(bounds, maxBound)
	h := &Histogram{
		bounds:  bounds,
		stripes: make([]histStripe, histStripes),
		mask:    histStripes - 1,
	}
	for i := range h.stripes {
		h.stripes[i].counts = make([]atomic.Int64, len(bounds)+1)
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// NewLatencyHistogram returns a histogram suitable for microsecond latencies
// between ~1us and ~10s with ~5% relative bucket error.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(1, 1.05, 1e7)
}

// Observe records a single value. It is lock-free and allocation-free: a
// binary search over the immutable bounds, one atomic add on a striped
// bucket, a striped CAS-add for the sum, and min/max CASes that settle into
// plain loads once the extremes are established.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	s := &h.stripes[randv2.Uint32()&h.mask]
	s.counts[idx].Add(1)
	for {
		old := s.sumBits.Load()
		if s.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Microsecond))
}

// totals sums the stripes into one per-bucket count slice. The scratch
// slice, when non-nil and large enough, is reused to avoid allocating.
func (h *Histogram) totals(scratch []int64) (counts []int64, count int64) {
	n := len(h.bounds) + 1
	if cap(scratch) >= n {
		counts = scratch[:n]
		for i := range counts {
			counts[i] = 0
		}
	} else {
		counts = make([]int64, n)
	}
	for s := range h.stripes {
		for i := range counts {
			c := h.stripes[s].counts[i].Load()
			counts[i] += c
			count += c
		}
	}
	return counts, count
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var count int64
	for s := range h.stripes {
		for i := range h.stripes[s].counts {
			count += h.stripes[s].counts[i].Load()
		}
	}
	return count
}

// sum returns the total of all observed values.
func (h *Histogram) sum() float64 {
	var sum float64
	for s := range h.stripes {
		sum += math.Float64frombits(h.stripes[s].sumBits.Load())
	}
	return sum
}

// Mean returns the arithmetic mean of all observations (0 if empty).
func (h *Histogram) Mean() float64 {
	count := h.Count()
	if count == 0 {
		return 0
	}
	return h.sum() / float64(count)
}

// Sum returns the total of all observed values (0 if empty).
func (h *Histogram) Sum() float64 { return h.sum() }

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() float64 {
	m := math.Float64frombits(h.minBits.Load())
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// Max returns the largest observation (0 if empty).
func (h *Histogram) Max() float64 {
	m := math.Float64frombits(h.maxBits.Load())
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Quantile returns an approximation of the q-th quantile (0 <= q <= 1).
// The answer is the upper bound of the bucket containing the quantile, which
// overestimates by at most one bucket's relative width.
func (h *Histogram) Quantile(q float64) float64 {
	counts, count := h.totals(nil)
	return h.quantileFrom(counts, count, q)
}

// quantileFrom answers a quantile query against a pre-summed count slice so
// Snapshot can serve several quantiles from one consistent pass.
func (h *Histogram) quantileFrom(counts []int64, count int64, q float64) float64 {
	if count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	target := int64(math.Ceil(q * float64(count)))
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.Max()
		}
	}
	return h.Max()
}

// P50 is shorthand for Quantile(0.50).
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P90 is shorthand for Quantile(0.90).
func (h *Histogram) P90() float64 { return h.Quantile(0.90) }

// P99 is shorthand for Quantile(0.99).
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// P999 is shorthand for Quantile(0.999).
func (h *Histogram) P999() float64 { return h.Quantile(0.999) }

// Reset clears all recorded observations. Like StripedCounter.Reset it is
// racy-tolerant: observations concurrent with the reset may be partially
// retained.
func (h *Histogram) Reset() {
	for s := range h.stripes {
		for i := range h.stripes[s].counts {
			h.stripes[s].counts[i].Store(0)
		}
		h.stripes[s].sumBits.Store(0)
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
}

// Snapshot is an immutable summary of a histogram.
type Snapshot struct {
	Count int64
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P90   float64
	P99   float64
	P999  float64
}

// Snapshot captures the current summary statistics. All quantiles are
// derived from a single pass over the bucket counts, so they are mutually
// consistent even while observations continue concurrently.
func (h *Histogram) Snapshot() Snapshot {
	counts, count := h.totals(nil)
	mean := 0.0
	if count > 0 {
		mean = h.sum() / float64(count)
	}
	return Snapshot{
		Count: count,
		Mean:  mean,
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.quantileFrom(counts, count, 0.50),
		P90:   h.quantileFrom(counts, count, 0.90),
		P99:   h.quantileFrom(counts, count, 0.99),
		P999:  h.quantileFrom(counts, count, 0.999),
	}
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p99=%.2f p999=%.2f max=%.2f",
		s.Count, s.Mean, s.P50, s.P99, s.P999, s.Max)
}

// Welford computes a streaming mean/variance (not concurrency-safe; used by
// single-threaded experiment code).
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates a new observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running sample variance (0 if fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }
