// Package metrics provides lightweight measurement primitives used across
// Bandana: streaming counters, latency histograms with percentile queries,
// and simple rate/ratio trackers.
//
// All types are safe for concurrent use unless stated otherwise; the
// experiment harness and the store's hot path both record into them.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (which must be >= 0).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// StripedCounter is a counter spread across cache-line-padded slots so that
// many goroutines incrementing concurrently do not contend on one cache
// line. Callers supply a stripe selector (any well-distributed hash, e.g.
// the key hash they already computed); Value sums the slots.
type StripedCounter struct {
	slots []paddedInt64
	mask  uint64
}

type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// NewStripedCounter creates a counter with the given number of stripes,
// rounded up to a power of two (minimum 1).
func NewStripedCounter(stripes int) *StripedCounter {
	n := 1
	for n < stripes {
		n <<= 1
	}
	return &StripedCounter{slots: make([]paddedInt64, n), mask: uint64(n - 1)}
}

// Inc increments the stripe selected by hash.
func (c *StripedCounter) Inc(hash uint64) { c.slots[hash&c.mask].v.Add(1) }

// Add increments the stripe selected by hash by delta.
func (c *StripedCounter) Add(hash uint64, delta int64) { c.slots[hash&c.mask].v.Add(delta) }

// Value returns the sum of all stripes. Concurrent increments may or may
// not be included, as with any relaxed counter read.
func (c *StripedCounter) Value() int64 {
	var sum int64
	for i := range c.slots {
		sum += c.slots[i].v.Load()
	}
	return sum
}

// Reset zeroes every stripe.
func (c *StripedCounter) Reset() {
	for i := range c.slots {
		c.slots[i].v.Store(0)
	}
}

// Gauge is a settable 64-bit value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta and returns the new value (e.g. in-flight
// request tracking).
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value returns the stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Ratio tracks a numerator/denominator pair (e.g. hits/accesses).
type Ratio struct {
	num Counter
	den Counter
}

// Observe records one event; hit indicates whether it counts toward the
// numerator.
func (r *Ratio) Observe(hit bool) {
	if hit {
		r.num.Inc()
	}
	r.den.Inc()
}

// Add records bulk events.
func (r *Ratio) Add(num, den int64) {
	r.num.Add(num)
	r.den.Add(den)
}

// Value returns the current ratio, or 0 if nothing was recorded.
func (r *Ratio) Value() float64 {
	d := r.den.Value()
	if d == 0 {
		return 0
	}
	return float64(r.num.Value()) / float64(d)
}

// Num returns the numerator.
func (r *Ratio) Num() int64 { return r.num.Value() }

// Den returns the denominator.
func (r *Ratio) Den() int64 { return r.den.Value() }

// Reset clears both counters.
func (r *Ratio) Reset() {
	r.num.Reset()
	r.den.Reset()
}

// Histogram is a log-linear histogram of non-negative values (latencies in
// microseconds, sizes in bytes, ...). It supports approximate percentile
// queries with bounded relative error determined by the bucket layout:
// buckets grow geometrically by `growth` starting at `first`.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram creates a histogram with geometric bucket bounds
// [first, first*growth, ...] until maxBound is covered. growth must be > 1.
func NewHistogram(first, growth, maxBound float64) *Histogram {
	if first <= 0 || growth <= 1 || maxBound <= first {
		panic("metrics: invalid histogram parameters")
	}
	var bounds []float64
	for b := first; b < maxBound*growth; b *= growth {
		bounds = append(bounds, b)
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]int64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// NewLatencyHistogram returns a histogram suitable for microsecond latencies
// between ~1us and ~10s with ~5% relative bucket error.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(1, 1.05, 1e7)
}

// Observe records a single value.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Microsecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all observations (0 if empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 if empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an approximation of the q-th quantile (0 <= q <= 1).
// The answer is the upper bound of the bucket containing the quantile, which
// overestimates by at most one bucket's relative width.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(math.Ceil(q * float64(h.count)))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// P50 is shorthand for Quantile(0.50).
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P99 is shorthand for Quantile(0.99).
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}

// Snapshot is an immutable summary of a histogram.
type Snapshot struct {
	Count int64
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P90   float64
	P99   float64
}

// Snapshot captures the current summary statistics.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p99=%.2f max=%.2f",
		s.Count, s.Mean, s.P50, s.P99, s.Max)
}

// Welford computes a streaming mean/variance (not concurrency-safe; used by
// single-threaded experiment code).
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates a new observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running sample variance (0 if fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }
