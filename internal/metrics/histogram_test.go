package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// refHistogram is the original mutex-guarded log-linear histogram, kept here
// as the reference implementation for quantile-equivalence tests against the
// lock-free rewrite. Its bucket layout intentionally matches NewHistogram's
// (final bound clamped to maxBound).
type refHistogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

func newRefHistogram(first, growth, maxBound float64) *refHistogram {
	var bounds []float64
	for b := first; b < maxBound; b *= growth {
		bounds = append(bounds, b)
	}
	bounds = append(bounds, maxBound)
	return &refHistogram{
		bounds: bounds,
		counts: make([]int64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

func (h *refHistogram) observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

func (h *refHistogram) quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(math.Ceil(q * float64(h.count)))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// TestHistogramQuantileEquivalence feeds identical streams to the lock-free
// histogram and the mutex reference and requires every quantile to agree
// within one bucket (one growth factor of relative error).
func TestHistogramQuantileEquivalence(t *testing.T) {
	const growth = 1.05
	streams := map[string]func(*rand.Rand) float64{
		"exponential": func(r *rand.Rand) float64 { return r.ExpFloat64() * 100 },
		"uniform":     func(r *rand.Rand) float64 { return r.Float64() * 5000 },
		"bimodal": func(r *rand.Rand) float64 {
			if r.Intn(10) == 0 {
				return 2000 + r.Float64()*3000
			}
			return 1 + r.Float64()*10
		},
		"heavy-tail": func(r *rand.Rand) float64 { return math.Pow(r.Float64(), -0.5) },
	}
	quantiles := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	for name, gen := range streams {
		t.Run(name, func(t *testing.T) {
			h := NewHistogram(1, growth, 1e7)
			ref := newRefHistogram(1, growth, 1e7)
			r := rand.New(rand.NewSource(7))
			for i := 0; i < 50000; i++ {
				v := gen(r)
				h.Observe(v)
				ref.observe(v)
			}
			if h.Count() != ref.count {
				t.Fatalf("count = %d, ref = %d", h.Count(), ref.count)
			}
			if math.Abs(h.Mean()-ref.sum/float64(ref.count)) > 1e-6*ref.sum {
				t.Fatalf("mean = %g, ref = %g", h.Mean(), ref.sum/float64(ref.count))
			}
			for _, q := range quantiles {
				got, want := h.Quantile(q), ref.quantile(q)
				// Same layout, same stream: quantiles must agree within one
				// bucket, i.e. a factor of `growth` in either direction.
				if got < want/growth-1e-9 || got > want*growth+1e-9 {
					t.Errorf("q=%g: got %g, ref %g (outside one bucket)", q, got, want)
				}
			}
		})
	}
}

// TestHistogramBoundsClampedToMax pins the fix for the old loop that
// allocated one bound past maxBound: the final bound must now be exactly
// maxBound, and values above it must land in the overflow bucket (reported
// as Max by quantile queries).
func TestHistogramBoundsClampedToMax(t *testing.T) {
	h := NewHistogram(1, 2, 1000)
	if got := h.bounds[len(h.bounds)-1]; got != 1000 {
		t.Fatalf("final bound = %g, want exactly 1000", got)
	}
	for i := 1; i < len(h.bounds); i++ {
		if h.bounds[i] <= h.bounds[i-1] {
			t.Fatalf("bounds not strictly ascending at %d: %v", i, h.bounds)
		}
	}
	// A quantile answered from any non-overflow bucket can now overestimate
	// by at most maxBound.
	for _, v := range []float64{999, 1000} {
		hh := NewHistogram(1, 2, 1000)
		for i := 0; i < 100; i++ {
			hh.Observe(v)
		}
		if p := hh.P50(); p > 1000 {
			t.Fatalf("p50 of %g = %g, exceeds maxBound", v, p)
		}
	}
	// Overflow values fall back to the observed max.
	h.Observe(5000)
	if p := h.P50(); p != 5000 {
		t.Fatalf("overflow p50 = %g, want observed max 5000", p)
	}
}

// TestHistogramConcurrentStress hammers one histogram from many goroutines
// (run under -race in CI) and checks the totals reconcile.
func TestHistogramConcurrentStress(t *testing.T) {
	h := NewLatencyHistogram()
	const workers = 8
	const perWorker = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Observe(r.ExpFloat64() * 50)
				if i%1000 == 0 {
					// Concurrent readers must not race with observers.
					_ = h.Snapshot()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	s := h.Snapshot()
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.P999 {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	if s.Min < 0 || s.Max < s.Min {
		t.Fatalf("min/max inconsistent: %+v", s)
	}
}

// TestSnapshotP999 checks the new tail quantile lands above p99 on a
// heavy-tailed stream.
func TestSnapshotP999(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 10000; i++ {
		h.Observe(10)
	}
	for i := 0; i < 15; i++ {
		h.Observe(9000)
	}
	s := h.Snapshot()
	if s.P99 > 11 {
		t.Fatalf("p99 = %g, want ~10", s.P99)
	}
	if s.P999 < 8000 {
		t.Fatalf("p999 = %g, want ~9000 (tail invisible below p999)", s.P999)
	}
}

// BenchmarkHistogramObserve pins the hot-path cost: Observe must be
// lock-free and allocation-free.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewLatencyHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 1.0
		for pb.Next() {
			h.Observe(v)
			v += 0.5
			if v > 1e6 {
				v = 1.0
			}
		}
	})
	if testing.AllocsPerRun(100, func() { h.Observe(42) }) != 0 {
		b.Fatalf("Observe allocates")
	}
}
