package metrics

import (
	"math"
	"runtime"
	rtmetrics "runtime/metrics"
	"time"
)

// RuntimeStats is a snapshot of Go runtime health, reported by every
// network-facing binary under the "runtime" section of its stats endpoint.
type RuntimeStats struct {
	Goroutines    int     `json:"goroutines"`
	HeapBytes     uint64  `json:"heapBytes"`
	HeapObjects   uint64  `json:"heapObjects"`
	GCCycles      uint32  `json:"gcCycles"`
	GCPauseP99US  float64 `json:"gcPauseP99US"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// ReadRuntime captures the current runtime statistics. start is the process
// (or server) start time used for the uptime figure. The GC pause p99 comes
// from the runtime's own /gc/pauses histogram, so it covers the whole
// process lifetime, not a sliding window.
func ReadRuntime(start time.Time) RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:    runtime.NumGoroutine(),
		HeapBytes:     ms.HeapAlloc,
		HeapObjects:   ms.HeapObjects,
		GCCycles:      ms.NumGC,
		GCPauseP99US:  gcPauseP99US(),
		UptimeSeconds: time.Since(start).Seconds(),
	}
}

// gcPauseP99US reads the runtime's stop-the-world pause histogram and
// returns its 99th percentile in microseconds (0 when no GC has run yet).
func gcPauseP99US() float64 {
	samples := []rtmetrics.Sample{{Name: "/gc/pauses:seconds"}}
	rtmetrics.Read(samples)
	if samples[0].Value.Kind() != rtmetrics.KindFloat64Histogram {
		return 0
	}
	return histogramQuantile(samples[0].Value.Float64Histogram(), 0.99) * 1e6
}

// histogramQuantile computes quantile q from a runtime/metrics histogram,
// answering with the upper bound of the bucket holding the quantile (the
// same convention as the package's own Histogram). Unbounded edge buckets
// fall back to their finite neighbour.
func histogramQuantile(h *rtmetrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Bucket i spans Buckets[i] .. Buckets[i+1].
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) || math.IsNaN(ub) {
				return h.Buckets[i]
			}
			return ub
		}
	}
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, 1) {
		return h.Buckets[len(h.Buckets)-2]
	}
	return last
}
