package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name=value pair attached to a Sample.
type Label struct {
	Key   string
	Value string
}

// L builds a label list from alternating key/value strings:
// L("table", "t0", "stage", "decode").
func L(kv ...string) []Label {
	if len(kv)%2 != 0 {
		panic("metrics: L requires an even number of arguments")
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	return labels
}

// Sample is one exposition line belonging to a metric family: the family
// name plus Suffix (e.g. "_sum", "_count", or empty), the label pairs, and
// the value.
type Sample struct {
	Suffix string
	Labels []Label
	Value  float64
}

// GatherFunc produces a family's current samples at scrape time. Gather
// functions run on every scrape, so they should read live counters rather
// than cache values.
type GatherFunc func() []Sample

type family struct {
	name   string
	typ    string // counter | gauge | summary | untyped
	help   string
	gather GatherFunc
}

// Registry collects metric families and renders them in the Prometheus text
// exposition format (version 0.0.4) without any external dependency.
// Families render in registration order; samples render in the order the
// gather function returns them.
type Registry struct {
	mu       sync.Mutex
	families []family
	byName   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

// Register adds a metric family. typ must be one of "counter", "gauge",
// "summary", or "untyped". It panics on an invalid or duplicate name so
// wiring mistakes surface at startup, not at scrape time.
func (r *Registry) Register(name, typ, help string, gather GatherFunc) {
	if !validMetricName(name) {
		panic("metrics: invalid metric name " + name)
	}
	switch typ {
	case "counter", "gauge", "summary", "untyped":
	default:
		panic("metrics: invalid metric type " + typ)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] {
		panic("metrics: duplicate metric name " + name)
	}
	r.byName[name] = true
	r.families = append(r.families, family{name: name, typ: typ, help: help, gather: gather})
}

// WriteText renders every family to w in the text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	families := append([]family(nil), r.families...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		samples := f.gather()
		if len(samples) == 0 {
			continue
		}
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for _, s := range samples {
			b.WriteString(f.name)
			b.WriteString(s.Suffix)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Key)
					b.WriteString(`="`)
					b.WriteString(escapeLabelValue(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		if err := r.WriteText(w); err != nil {
			// Headers are already out; nothing useful left to do.
			return
		}
	})
}

// SummarySamples renders a histogram Snapshot as Prometheus summary samples:
// quantile series for p50/p90/p99/p999 plus _sum and _count. The quantile
// values carry the histogram's one-bucket overestimate, which is the
// documented accuracy of the underlying layout.
func SummarySamples(labels []Label, s Snapshot) []Sample {
	quantile := func(q string, v float64) Sample {
		ql := make([]Label, 0, len(labels)+1)
		ql = append(ql, labels...)
		ql = append(ql, Label{Key: "quantile", Value: q})
		return Sample{Labels: ql, Value: v}
	}
	return []Sample{
		quantile("0.5", s.P50),
		quantile("0.9", s.P90),
		quantile("0.99", s.P99),
		quantile("0.999", s.P999),
		{Suffix: "_sum", Labels: labels, Value: s.Mean * float64(s.Count)},
		{Suffix: "_count", Labels: labels, Value: float64(s.Count)},
	}
}

// CounterSample is shorthand for a single counter/gauge sample.
func CounterSample(labels []Label, v float64) []Sample {
	return []Sample{{Labels: labels, Value: v}}
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ValidateExposition parses a Prometheus text-format exposition and returns
// the number of sample lines, or an error describing the first violation.
// It checks line syntax, metric/label name validity, label-value escaping,
// value parseability, TYPE declarations, and duplicate series. It is used by
// the registry tests and by cmd/promcheck in CI.
func ValidateExposition(r io.Reader) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	types := make(map[string]string)
	seen := make(map[string]bool)
	samples := 0
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				// Other comments are legal and ignored.
				continue
			}
			name := fields[2]
			if !validMetricName(name) {
				return samples, fmt.Errorf("line %d: invalid metric name %q in %s", lineNo, name, fields[1])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return samples, fmt.Errorf("line %d: TYPE line missing type", lineNo)
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return samples, fmt.Errorf("line %d: invalid type %q", lineNo, typ)
				}
				if prev, ok := types[name]; ok && prev != typ {
					return samples, fmt.Errorf("line %d: conflicting TYPE for %s: %s then %s", lineNo, name, prev, typ)
				}
				types[name] = typ
			}
			continue
		}
		name, labels, rest, err := parseSampleLine(line)
		if err != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, err)
		}
		valueStr := rest
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			// Optional trailing timestamp.
			valueStr = rest[:i]
			ts := strings.TrimSpace(rest[i:])
			if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
				return samples, fmt.Errorf("line %d: bad timestamp %q", lineNo, ts)
			}
		}
		if !parseableValue(valueStr) {
			return samples, fmt.Errorf("line %d: bad value %q", lineNo, valueStr)
		}
		key := name + "|" + canonicalLabels(labels)
		if seen[key] {
			return samples, fmt.Errorf("line %d: duplicate series %s{%s}", lineNo, name, canonicalLabels(labels))
		}
		seen[key] = true
		samples++
	}
	return samples, nil
}

func parseableValue(s string) bool {
	switch s {
	case "+Inf", "-Inf", "Inf", "NaN":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

func canonicalLabels(labels []Label) string {
	cp := append([]Label(nil), labels...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Key < cp[j].Key })
	parts := make([]string, len(cp))
	for i, l := range cp {
		parts[i] = l.Key + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

// parseSampleLine splits `name{k="v",...} value [ts]` into its parts,
// unescaping label values.
func parseSampleLine(line string) (name string, labels []Label, rest string, err error) {
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return "", nil, "", fmt.Errorf("no value on sample line")
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, "", fmt.Errorf("invalid metric name %q", name)
	}
	if line[i] != '{' {
		return name, nil, strings.TrimSpace(line[i:]), nil
	}
	pos := i + 1
	for {
		for pos < len(line) && (line[pos] == ',' || line[pos] == ' ') {
			pos++
		}
		if pos < len(line) && line[pos] == '}' {
			pos++
			break
		}
		eq := strings.IndexByte(line[pos:], '=')
		if eq < 0 {
			return "", nil, "", fmt.Errorf("label without '='")
		}
		key := line[pos : pos+eq]
		if !validLabelName(key) {
			return "", nil, "", fmt.Errorf("invalid label name %q", key)
		}
		pos += eq + 1
		if pos >= len(line) || line[pos] != '"' {
			return "", nil, "", fmt.Errorf("label value for %q not quoted", key)
		}
		pos++
		var val strings.Builder
		closed := false
		for pos < len(line) {
			c := line[pos]
			if c == '\\' {
				if pos+1 >= len(line) {
					return "", nil, "", fmt.Errorf("dangling escape in label value")
				}
				switch line[pos+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", nil, "", fmt.Errorf("bad escape \\%c in label value", line[pos+1])
				}
				pos += 2
				continue
			}
			if c == '"' {
				closed = true
				pos++
				break
			}
			val.WriteByte(c)
			pos++
		}
		if !closed {
			return "", nil, "", fmt.Errorf("unterminated label value for %q", key)
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
	}
	rest = strings.TrimSpace(line[pos:])
	if rest == "" {
		return "", nil, "", fmt.Errorf("no value after labels")
	}
	return name, labels, rest, nil
}
