package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Register("test_requests_total", "counter", "Total requests.", func() []Sample {
		return CounterSample(L("path", "/v1/lookup"), 42)
	})
	r.Register("test_latency_us", "summary", "Request latency.", func() []Sample {
		h := NewLatencyHistogram()
		for i := 1; i <= 100; i++ {
			h.Observe(float64(i))
		}
		return SummarySamples(L("table", "t0"), h.Snapshot())
	})
	r.Register("test_empty", "gauge", "Never has samples.", func() []Sample { return nil })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total Total requests.",
		"# TYPE test_requests_total counter",
		`test_requests_total{path="/v1/lookup"} 42`,
		"# TYPE test_latency_us summary",
		`test_latency_us{table="t0",quantile="0.5"}`,
		`test_latency_us{table="t0",quantile="0.999"}`,
		`test_latency_us_sum{table="t0"} 5050`,
		`test_latency_us_count{table="t0"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "test_empty") {
		t.Errorf("family with no samples should be omitted:\n%s", out)
	}
	n, err := ValidateExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("own exposition does not validate: %v\n%s", err, out)
	}
	if n != 7 {
		t.Fatalf("sample count = %d, want 7", n)
	}
}

func TestRegistryEscaping(t *testing.T) {
	r := NewRegistry()
	r.Register("test_escape", "gauge", "help with \\ and\nnewline", func() []Sample {
		return CounterSample(L("k", "a\"b\\c\nd"), 1)
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, `{k="a\"b\\c\nd"}`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	if _, err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("escaped exposition invalid: %v\n%s", err, out)
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad name", func() { r.Register("9bad", "counter", "", nil) })
	mustPanic("bad type", func() { r.Register("ok_name", "exotic", "", nil) })
	r.Register("dup_name", "counter", "", func() []Sample { return nil })
	mustPanic("dup", func() { r.Register("dup_name", "counter", "", nil) })
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Register("test_up", "gauge", "Always one.", func() []Sample {
		return CounterSample(nil, 1)
	})
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	n, err := ValidateExposition(resp.Body)
	if err != nil || n != 1 {
		t.Fatalf("validate: n=%d err=%v", n, err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad value":        "foo bar\n",
		"bad name":         "9foo 1\n",
		"bad label name":   `foo{9k="v"} 1` + "\n",
		"unquoted label":   `foo{k=v} 1` + "\n",
		"unterminated":     `foo{k="v} 1` + "\n",
		"bad escape":       `foo{k="\q"} 1` + "\n",
		"duplicate series": "foo{a=\"1\"} 1\nfoo{a=\"1\"} 2\n",
		"bad type":         "# TYPE foo exotic\n",
		"conflicting type": "# TYPE foo counter\n# TYPE foo gauge\n",
		"bad timestamp":    "foo 1 notatime\n",
	}
	for name, in := range cases {
		if _, err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error for %q", name, in)
		}
	}
	good := "# random comment\n# TYPE foo counter\nfoo{a=\"x\",b=\"y\"} 1 1700000000000\nfoo{a=\"z\"} +Inf\nbar 3.5e-9\n"
	n, err := ValidateExposition(strings.NewReader(good))
	if err != nil {
		t.Fatalf("good exposition rejected: %v", err)
	}
	if n != 3 {
		t.Fatalf("sample count = %d, want 3", n)
	}
}
