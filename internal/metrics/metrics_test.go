package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset counter = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("gauge = %d", g.Value())
	}
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatalf("empty ratio should be 0")
	}
	r.Observe(true)
	r.Observe(false)
	r.Observe(true)
	r.Observe(true)
	if got := r.Value(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("ratio = %g, want 0.75", got)
	}
	r.Add(1, 4)
	if r.Num() != 4 || r.Den() != 8 {
		t.Fatalf("num/den = %d/%d", r.Num(), r.Den())
	}
	r.Reset()
	if r.Num() != 0 || r.Den() != 0 {
		t.Fatalf("reset failed")
	}
}

func TestHistogramInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on invalid params")
		}
	}()
	NewHistogram(0, 2, 100)
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram(1, 2, 1000)
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		h.Observe(v)
	}
	if h.Count() != 10 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-5.5) > 1e-9 {
		t.Fatalf("mean = %g, want 5.5", got)
	}
	if h.Min() != 1 || h.Max() != 10 {
		t.Fatalf("min/max = %g/%g", h.Min(), h.Max())
	}
}

func TestHistogramIgnoresInvalid(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(-1)
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatalf("invalid observations should be dropped, count=%d", h.Count())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := rng.ExpFloat64() * 100
		vals = append(vals, v)
		h.Observe(v)
	}
	// Exact p99 for comparison.
	cp := append([]float64(nil), vals...)
	sortFloats(cp)
	exact := cp[int(0.99*float64(len(cp)))-1]
	got := h.P99()
	if got < exact*0.9 || got > exact*1.15 {
		t.Fatalf("p99 = %g, exact = %g (outside 10%%/15%% band)", got, exact)
	}
	if h.Quantile(0) != h.Min() {
		t.Errorf("quantile(0) should be min")
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("quantile(1) should be max")
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram stats should be zero")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatalf("reset did not clear histogram")
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewLatencyHistogram()
	h.ObserveDuration(250 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("duration not recorded")
	}
	if m := h.Mean(); math.Abs(m-250) > 1e-9 {
		t.Fatalf("mean = %g, want 250", m)
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(10)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
	if s.String() == "" {
		t.Fatalf("snapshot string empty")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 5000; j++ {
				h.Observe(rng.Float64() * 100)
			}
		}(int64(i))
	}
	wg.Wait()
	if h.Count() != 20000 {
		t.Fatalf("count = %d, want 20000", h.Count())
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.Count() != int64(len(data)) {
		t.Fatalf("count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5.0) > 1e-12 {
		t.Fatalf("mean = %g, want 5", w.Mean())
	}
	// Sample variance of this data set is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-9 {
		t.Fatalf("variance = %g, want %g", w.Variance(), 32.0/7.0)
	}
	if math.Abs(w.Stddev()-math.Sqrt(32.0/7.0)) > 1e-9 {
		t.Fatalf("stddev = %g", w.Stddev())
	}
}

func TestWelfordFewSamples(t *testing.T) {
	var w Welford
	if w.Variance() != 0 {
		t.Fatalf("variance of empty should be 0")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Fatalf("variance of single sample should be 0")
	}
}

func TestStripedCounter(t *testing.T) {
	c := NewStripedCounter(8)
	for i := 0; i < 1000; i++ {
		c.Inc(uint64(i) * 0x9e3779b97f4a7c15)
	}
	c.Add(3, 500)
	if got := c.Value(); got != 1500 {
		t.Fatalf("Value = %d, want 1500", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("Value after Reset = %d", got)
	}
	// Stripe count rounds up to a power of two, minimum 1.
	if n := len(NewStripedCounter(0).slots); n != 1 {
		t.Fatalf("0 stripes -> %d slots, want 1", n)
	}
	if n := len(NewStripedCounter(5).slots); n != 8 {
		t.Fatalf("5 stripes -> %d slots, want 8", n)
	}
}

func TestStripedCounterConcurrent(t *testing.T) {
	c := NewStripedCounter(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				c.Inc(uint64(w*10_000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != 80_000 {
		t.Fatalf("Value = %d, want 80000", got)
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	if got := g.Add(5); got != 5 {
		t.Fatalf("Add(5) = %d", got)
	}
	if got := g.Add(-2); got != 3 {
		t.Fatalf("Add(-2) = %d", got)
	}
	if g.Value() != 3 {
		t.Fatalf("Value = %d", g.Value())
	}
}
