package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"

	"bandana/internal/metrics"
)

// NodeStats is one node's row in the router's /v1/stats: the router's own
// counters for the node plus a live health/hit-ratio probe.
type NodeStats struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	Role Role   `json:"role"`
	// ReplicaOf is set for replicas.
	ReplicaOf string `json:"replicaOf,omitempty"`

	// WireAddr is the node's advertised bwp listener ("" = HTTP only).
	WireAddr string `json:"wireAddr,omitempty"`

	// Router-side counters (persist across membership reloads).
	Requests  int64 `json:"requests"`
	Errors    int64 `json:"errors"`
	Timeouts  int64 `json:"timeouts"`
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedgeWins"`
	InFlight  int64 `json:"inFlight"`
	// WireRequests counts batches served over bwp; WireFallbacks counts
	// wire transport failures that degraded a request to HTTP.
	WireRequests  int64 `json:"wireRequests"`
	WireFallbacks int64 `json:"wireFallbacks"`

	// Probe results.
	Alive       bool    `json:"alive"`
	ProbeError  string  `json:"probeError,omitempty"`
	ReadOnly    bool    `json:"readOnly,omitempty"`
	SnapshotSeq uint64  `json:"snapshotSeq,omitempty"`
	Lookups     int64   `json:"lookups"`
	HitRate     float64 `json:"hitRate"`
}

// RouterStats is the router's /v1/stats payload.
type RouterStats struct {
	Cluster struct {
		Nodes       int    `json:"nodes"`
		Primaries   int    `json:"primaries"`
		Replicas    int    `json:"replicas"`
		IDRangeSize uint32 `json:"idRangeSize"`
		Reloads     int64  `json:"reloads"`
	} `json:"cluster"`
	Router struct {
		Requests int64            `json:"requests"`
		Errors   int64            `json:"errors"`
		InFlight int64            `json:"inFlight"`
		Latency  metrics.Snapshot `json:"latencyUS"`
	} `json:"router"`
	Runtime metrics.RuntimeStats `json:"runtime"`
	Nodes   []NodeStats          `json:"nodes"`
}

// nodeStatsProbe is the subset of a node's /v1/stats the router reads.
// core.TableStats marshals with Go field names (no tags), hence the
// capitalised fields.
type nodeStatsProbe struct {
	Tables []struct {
		Lookups int64
		Hits    int64
	} `json:"tables"`
	Store struct {
		ReadOnly    bool   `json:"readOnly"`
		SnapshotSeq uint64 `json:"snapshotSeq"`
	} `json:"store"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	st := rt.state.Load()
	var out RouterStats
	out.Cluster.Nodes = len(st.cfg.Nodes)
	out.Cluster.Primaries = len(st.primaries)
	out.Cluster.Replicas = len(st.cfg.Nodes) - len(st.primaries)
	out.Cluster.IDRangeSize = st.cfg.IDRangeSize
	out.Cluster.Reloads = rt.reloads.Value()
	out.Router.Requests = rt.requests.Value()
	out.Router.Errors = rt.errors.Value()
	out.Router.InFlight = rt.inflight.Value()
	out.Router.Latency = rt.latency.Snapshot()
	out.Runtime = metrics.ReadRuntime(rt.start)

	// Probe every node concurrently; a dead node just reports !alive.
	out.Nodes = make([]NodeStats, len(st.cfg.Nodes))
	var wg sync.WaitGroup
	for i := range st.cfg.Nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := &st.cfg.Nodes[i]
			nc := rt.client(n.ID)
			ns := NodeStats{
				ID: n.ID, Addr: n.Addr, Role: n.Role, ReplicaOf: n.ReplicaOf,
				WireAddr: n.WireAddr,
				Requests: nc.requests.Value(), Errors: nc.errors.Value(),
				Timeouts: nc.timeouts.Value(), Hedges: nc.hedges.Value(),
				HedgeWins: nc.hedgeWins.Value(), InFlight: nc.inflight.Value(),
				WireRequests:  nc.wireRequests.Value(),
				WireFallbacks: nc.wireFallbacks.Value(),
			}
			rt.probeNode(r.Context(), n, &ns)
			out.Nodes[i] = ns
		}(i)
	}
	wg.Wait()
	routerJSON(w, http.StatusOK, out)
}

// probeNode fills the live fields of one node's stats row.
func (rt *Router) probeNode(ctx context.Context, n *Node, ns *NodeStats) {
	ctx, cancel := context.WithTimeout(ctx, rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.Addr+"/v1/stats", nil)
	if err != nil {
		ns.ProbeError = err.Error()
		return
	}
	resp, err := rt.httpc.Do(req)
	if err != nil {
		ns.ProbeError = err.Error()
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ns.ProbeError = resp.Status
		return
	}
	var probe nodeStatsProbe
	if err := json.NewDecoder(resp.Body).Decode(&probe); err != nil {
		ns.ProbeError = err.Error()
		return
	}
	ns.Alive = true
	ns.ReadOnly = probe.Store.ReadOnly
	ns.SnapshotSeq = probe.Store.SnapshotSeq
	var lookups, hits int64
	for _, t := range probe.Tables {
		lookups += t.Lookups
		hits += t.Hits
	}
	ns.Lookups = lookups
	if lookups > 0 {
		ns.HitRate = float64(hits) / float64(lookups)
	}
}
