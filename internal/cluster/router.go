package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bandana/internal/metrics"
	"bandana/internal/wire"
)

// nodeHTTPError is a node's own HTTP rejection (as opposed to a transport
// failure or timeout). 4xx rejections are the *client's* fault — every node
// serves the same schema, so failing over to a replica would only repeat
// the rejection while inflating healthy nodes' error counters.
type nodeHTTPError struct {
	status int
	msg    string
}

func (e *nodeHTTPError) Error() string { return e.msg }

// isClientError reports whether err is a node-side 4xx rejection.
func isClientError(err error) (*nodeHTTPError, bool) {
	var he *nodeHTTPError
	if errors.As(err, &he) && he.status >= 400 && he.status < 500 {
		return he, true
	}
	return nil, false
}

// RouterOptions tunes the scatter-gather router.
type RouterOptions struct {
	// HedgeAfter is the latency threshold after which a request still
	// waiting on a primary is hedged to one of its replicas (first answer
	// wins). Zero uses the default (20ms); negative disables hedging.
	HedgeAfter time.Duration
	// NodeTimeout bounds one node's share of a request (connect + serve +
	// read). Defaults to 2s.
	NodeTimeout time.Duration
	// MaxInflightPerNode bounds concurrent requests outstanding to one
	// node; excess requests wait (within NodeTimeout) instead of piling
	// onto a struggling box. Defaults to 128.
	MaxInflightPerNode int
	// ProbeTimeout bounds the per-node health/stats probes of /v1/stats.
	// Defaults to 1s.
	ProbeTimeout time.Duration
	// Transport overrides the HTTP transport (tests inject failures here);
	// nil uses a pooled transport sized for MaxInflightPerNode.
	Transport http.RoundTripper
}

func (o *RouterOptions) defaults() {
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 20 * time.Millisecond
	}
	if o.NodeTimeout <= 0 {
		o.NodeTimeout = 2 * time.Second
	}
	if o.MaxInflightPerNode <= 0 {
		o.MaxInflightPerNode = 128
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
}

// nodeClient is the per-node runtime state: the in-flight bound and the
// counters. It is keyed by node ID and survives membership reloads, so a
// SIGHUP does not reset observability or let a reload exceed the node's
// in-flight bound.
type nodeClient struct {
	id  string
	sem chan struct{}

	requests  metrics.Counter
	errors    metrics.Counter
	timeouts  metrics.Counter
	hedges    metrics.Counter
	hedgeWins metrics.Counter
	inflight  metrics.Gauge

	// Wire path state: one persistent multiplexed bwp connection per node,
	// re-dialed lazily after it dies. wireRequests counts batches served
	// over bwp; wireFallbacks counts wire transport failures that degraded
	// a request to the node's HTTP API.
	wireMu        sync.Mutex
	wireC         *wire.Client
	wireAddr      string
	wireRequests  metrics.Counter
	wireFallbacks metrics.Counter
}

// wireConn returns the node's persistent wire client, dialing (or
// re-dialing after a transport failure) as needed.
func (nc *nodeClient) wireConn(addr string, dialTimeout time.Duration) (*wire.Client, error) {
	nc.wireMu.Lock()
	defer nc.wireMu.Unlock()
	if nc.wireC != nil && nc.wireAddr == addr && nc.wireC.Err() == nil {
		return nc.wireC, nil
	}
	if nc.wireC != nil {
		nc.wireC.Close()
		nc.wireC = nil
	}
	c, err := wire.Dial(addr, wire.Options{DialTimeout: dialTimeout})
	if err != nil {
		return nil, err
	}
	nc.wireC, nc.wireAddr = c, addr
	return c, nil
}

// Router scatter-gathers client requests across the cluster. All methods
// are safe for concurrent use; Reload may be called at any time (the SIGHUP
// handler of cmd/bandana-router does).
type Router struct {
	opts  RouterOptions
	state atomic.Pointer[routingState]
	mux   *http.ServeMux
	httpc *http.Client
	start time.Time

	clientsMu sync.Mutex
	clients   map[string]*nodeClient

	requests metrics.Counter
	errors   metrics.Counter
	inflight metrics.Gauge
	reloads  metrics.Counter
	latency  *metrics.Histogram
}

// NewRouter builds a router over an initial membership.
func NewRouter(cfg *Config, opts RouterOptions) (*Router, error) {
	opts.defaults()
	st, err := newRoutingState(cfg)
	if err != nil {
		return nil, err
	}
	transport := opts.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        4 * opts.MaxInflightPerNode,
			MaxIdleConnsPerHost: opts.MaxInflightPerNode,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	rt := &Router{
		opts:    opts,
		mux:     http.NewServeMux(),
		httpc:   &http.Client{Transport: transport},
		start:   time.Now(),
		clients: make(map[string]*nodeClient),
		latency: metrics.NewLatencyHistogram(),
	}
	rt.state.Store(st)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /v1/lookup", rt.handleLookup)
	rt.mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.Handle("GET /metrics", rt.metricsRegistry().Handler())
	return rt, nil
}

// Reload validates cfg and atomically swaps it in. In-flight requests keep
// routing against the state they loaded — a membership change never drops
// them — and per-node counters/limits carry over by node ID.
func (rt *Router) Reload(cfg *Config) error {
	st, err := newRoutingState(cfg)
	if err != nil {
		return err
	}
	rt.state.Store(st)
	rt.reloads.Inc()
	return nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rt.requests.Inc()
		rt.inflight.Add(1)
		rec := &routerStatusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			rt.inflight.Add(-1)
			if rec.status >= 400 {
				rt.errors.Inc()
			}
			rt.latency.ObserveDuration(time.Since(start))
		}()
		rt.mux.ServeHTTP(rec, r)
	})
}

type routerStatusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *routerStatusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// client returns (creating on first use) the per-node runtime state.
func (rt *Router) client(nodeID string) *nodeClient {
	rt.clientsMu.Lock()
	defer rt.clientsMu.Unlock()
	nc := rt.clients[nodeID]
	if nc == nil {
		nc = &nodeClient{id: nodeID, sem: make(chan struct{}, rt.opts.MaxInflightPerNode)}
		rt.clients[nodeID] = nc
	}
	return nc
}

func routerJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func routerError(w http.ResponseWriter, status int, format string, args ...any) {
	routerJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := rt.state.Load()
	routerJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"nodes":     len(st.cfg.Nodes),
		"primaries": len(st.primaries),
	})
}

// BatchRequest is the router's /v1/batch body (same shape the nodes
// accept, so clients can talk to either tier).
type BatchRequest struct {
	Table string   `json:"table"`
	IDs   []uint32 `json:"ids"`
}

// IDError reports one id that could not be served (its partition's owner —
// and every failover candidate — failed). Index is the position in the
// request's id list.
type IDError struct {
	Index int    `json:"index"`
	ID    uint32 `json:"id"`
	Node  string `json:"node"`
	Error string `json:"error"`
}

// BatchResponse is the router's /v1/batch answer: vectors aligned with the
// requested ids (null where that id failed) plus per-id errors. Partial
// node failures never fail the whole request.
type BatchResponse struct {
	Table   string      `json:"table"`
	Vectors [][]float32 `json:"vectors"`
	Errors  []IDError   `json:"errors,omitempty"`
}

// MaxBatchIDs mirrors the node-side bound (internal/server.MaxBatchIDs is
// not imported to keep the tiers decoupled; the values must not drift
// apart, which a cluster test pins).
const MaxBatchIDs = 8192

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		routerError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if req.Table == "" || len(req.IDs) == 0 {
		routerError(w, http.StatusBadRequest, "'table' and non-empty 'ids' are required")
		return
	}
	if len(req.IDs) > MaxBatchIDs {
		routerError(w, http.StatusBadRequest, "batch of %d ids exceeds the limit of %d (split the request)", len(req.IDs), MaxBatchIDs)
		return
	}
	st := rt.state.Load()

	// Scatter: group the ids by the primary owning their (table, id-range)
	// partition, preserving each id's position in the request.
	type ref struct {
		pos int
		id  uint32
	}
	groups := make(map[string][]ref)
	owners := make(map[string]*Node)
	for i, id := range req.IDs {
		owner := st.ownerOf(req.Table, st.cfg.PartitionOf(id))
		groups[owner.ID] = append(groups[owner.ID], ref{pos: i, id: id})
		owners[owner.ID] = owner
	}

	// Gather: one goroutine per owner; a group failure degrades to per-id
	// errors instead of failing the request.
	resp := BatchResponse{Table: req.Table, Vectors: make([][]float32, len(req.IDs))}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for ownerID, refs := range groups {
		wg.Add(1)
		go func(owner *Node, refs []ref) {
			defer wg.Done()
			ids := make([]uint32, len(refs))
			for i, rf := range refs {
				ids[i] = rf.id
			}
			vecs, _, err := rt.hedgedBatch(r.Context(), st, owner, req.Table, ids)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				for _, rf := range refs {
					resp.Errors = append(resp.Errors, IDError{
						Index: rf.pos, ID: rf.id, Node: owner.ID, Error: err.Error(),
					})
				}
				return
			}
			for i, rf := range refs {
				resp.Vectors[rf.pos] = vecs[i]
			}
		}(owners[ownerID], refs)
	}
	wg.Wait()
	sort.Slice(resp.Errors, func(i, j int) bool { return resp.Errors[i].Index < resp.Errors[j].Index })
	routerJSON(w, http.StatusOK, resp)
}

// LookupResponse is the router's /v1/lookup answer (same shape as a node's).
type LookupResponse struct {
	Table  string    `json:"table"`
	ID     uint32    `json:"id"`
	Vector []float32 `json:"vector"`
	Node   string    `json:"node"`
}

func (rt *Router) handleLookup(w http.ResponseWriter, r *http.Request) {
	tableName := r.URL.Query().Get("table")
	idStr := r.URL.Query().Get("id")
	if tableName == "" || idStr == "" {
		routerError(w, http.StatusBadRequest, "query parameters 'table' and 'id' are required")
		return
	}
	id64, err := strconv.ParseUint(idStr, 10, 32)
	if err != nil {
		routerError(w, http.StatusBadRequest, "invalid id %q", idStr)
		return
	}
	id := uint32(id64)
	st := rt.state.Load()
	owner := st.ownerOf(tableName, st.cfg.PartitionOf(id))
	vecs, from, err := rt.hedgedBatch(r.Context(), st, owner, tableName, []uint32{id})
	if err != nil {
		// A node-side 4xx keeps its status (the client's own bad request);
		// node failures surface as 502.
		if he, client := isClientError(err); client {
			routerError(w, he.status, "%s", he.msg)
			return
		}
		routerError(w, http.StatusBadGateway, "node %s: %v", owner.ID, err)
		return
	}
	routerJSON(w, http.StatusOK, LookupResponse{Table: tableName, ID: id, Vector: vecs[0], Node: from.ID})
}

// hedgedBatch sends one owner's sub-batch to the owner, hedging to (or
// failing over onto) its replicas: a hedge fires when the primary is slower
// than HedgeAfter, a failover fires immediately when an attempt returns a
// hard error. The first successful answer wins and cancels the rest.
func (rt *Router) hedgedBatch(ctx context.Context, st *routingState, owner *Node, table string, ids []uint32) ([][]float32, *Node, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.opts.NodeTimeout)
	defer cancel()

	type attempt struct {
		vecs [][]float32
		node *Node
		err  error
	}
	results := make(chan attempt, 1+len(st.replicasFor(owner.ID)))
	send := func(n *Node) {
		vecs, err := rt.postBatch(ctx, n, table, ids)
		results <- attempt{vecs: vecs, node: n, err: err}
	}

	go send(owner)
	pending := 1
	candidates := append([]*Node(nil), st.replicasFor(owner.ID)...)
	var hedgeC <-chan time.Time
	if rt.opts.HedgeAfter >= 0 && len(candidates) > 0 {
		timer := time.NewTimer(rt.opts.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}
	hedged := false
	var firstErr error
	for pending > 0 {
		select {
		case res := <-results:
			pending--
			if res.err == nil {
				if res.node != owner && hedged {
					rt.client(owner.ID).hedgeWins.Inc()
				}
				return res.vecs, res.node, nil
			}
			// A 4xx from the node is the client's own bad request —
			// deterministic on every node, so neither failover nor hedging
			// can help. Propagate it as-is.
			if _, client := isClientError(res.err); client {
				return nil, res.node, res.err
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("node %s: %w", res.node.ID, res.err)
			}
			// Hard failure: fail over to the next replica immediately
			// rather than waiting out the hedge timer.
			if len(candidates) > 0 {
				next := candidates[0]
				candidates = candidates[1:]
				pending++
				go send(next)
			}
		case <-hedgeC:
			hedgeC = nil
			if len(candidates) > 0 {
				next := candidates[0]
				candidates = candidates[1:]
				rt.client(owner.ID).hedges.Inc()
				hedged = true
				pending++
				go send(next)
			}
		case <-ctx.Done():
			if firstErr == nil {
				firstErr = ctx.Err()
			}
			return nil, nil, firstErr
		}
	}
	return nil, nil, firstErr
}

// nodeBatchResponse decodes a node's /v1/batch answer.
type nodeBatchResponse struct {
	Vectors [][]float32 `json:"vectors"`
}

// postBatch issues one bounded, counted request to one node, over bwp when
// the node advertises a wire address (falling back to HTTP on wire
// transport failure), over HTTP otherwise. The in-flight bound covers both
// transports.
func (rt *Router) postBatch(ctx context.Context, n *Node, table string, ids []uint32) ([][]float32, error) {
	nc := rt.client(n.ID)
	select {
	case nc.sem <- struct{}{}:
	case <-ctx.Done():
		nc.timeouts.Inc()
		return nil, fmt.Errorf("saturated (%d in flight): %w", cap(nc.sem), ctx.Err())
	}
	defer func() { <-nc.sem }()
	nc.requests.Inc()
	nc.inflight.Add(1)
	defer nc.inflight.Add(-1)

	if n.WireAddr != "" {
		vecs, err := rt.wireBatch(ctx, nc, n, table, ids)
		if err == nil {
			nc.wireRequests.Inc()
			return vecs, nil
		}
		var werr *wire.Error
		if errors.As(err, &werr) {
			// The node answered over bwp; its rejection maps onto the HTTP
			// statuses the rest of the router understands. Re-asking over
			// HTTP would only repeat the answer.
			switch werr.Code {
			case wire.CodeNotFound:
				return nil, &nodeHTTPError{status: http.StatusNotFound, msg: werr.Msg}
			case wire.CodeBadRequest, wire.CodeTooLarge:
				return nil, &nodeHTTPError{status: http.StatusBadRequest, msg: werr.Msg}
			default:
				nc.errors.Inc()
				return nil, fmt.Errorf("wire: %s", werr.Msg)
			}
		}
		if ctx.Err() != nil {
			nc.errors.Inc()
			nc.timeouts.Inc()
			return nil, err
		}
		// Wire transport failure (refused, dropped mid-stream): degrade to
		// the node's HTTP API for this request. The next wire call re-dials.
		nc.wireFallbacks.Inc()
	}
	return rt.httpBatch(ctx, nc, n, table, ids)
}

// wireBatch sends one batch over the node's persistent bwp connection.
func (rt *Router) wireBatch(ctx context.Context, nc *nodeClient, n *Node, table string, ids []uint32) ([][]float32, error) {
	c, err := nc.wireConn(n.WireAddr, rt.opts.NodeTimeout)
	if err != nil {
		return nil, err
	}
	vecs, err := c.LookupBatchF32(ctx, table, ids)
	if err != nil {
		return nil, err
	}
	if len(vecs) != len(ids) {
		return nil, fmt.Errorf("node returned %d vectors for %d ids", len(vecs), len(ids))
	}
	return vecs, nil
}

// httpBatch is the JSON transport: one POST /v1/batch to one node.
func (rt *Router) httpBatch(ctx context.Context, nc *nodeClient, n *Node, table string, ids []uint32) ([][]float32, error) {
	body, err := json.Marshal(BatchRequest{Table: table, IDs: ids})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.Addr+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		nc.errors.Inc()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.httpc.Do(req)
	if err != nil {
		nc.errors.Inc()
		if ctx.Err() != nil {
			nc.timeouts.Inc()
		}
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			// The node rejected the request (unknown table, bad id, ...):
			// not a node failure, so the node's error counter stays put.
			return nil, &nodeHTTPError{status: resp.StatusCode, msg: e.Error}
		}
		nc.errors.Inc()
		return nil, fmt.Errorf("%s", e.Error)
	}
	var out nodeBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		nc.errors.Inc()
		return nil, fmt.Errorf("decode response: %w", err)
	}
	if len(out.Vectors) != len(ids) {
		nc.errors.Inc()
		return nil, fmt.Errorf("node returned %d vectors for %d ids", len(out.Vectors), len(ids))
	}
	return out.Vectors, nil
}
