package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bandana/internal/core"
	"bandana/internal/nvm"
	"bandana/internal/server"
	"bandana/internal/table"
)

// buildClusterStore builds a small two-table store, honouring the
// BANDANA_TEST_BACKEND matrix the rest of the repo's suites use.
func buildClusterStore(t *testing.T, seed int64) *core.Store {
	t.Helper()
	tables := make([]*table.Table, 2)
	for i := range tables {
		name := fmt.Sprintf("t%d", i)
		g := table.Generate(name, table.GenerateOptions{
			NumVectors: 2048, Dim: 64, NumClusters: 32, Seed: seed + int64(i),
		})
		tables[i] = g.Table
	}
	cfg := core.Config{Tables: tables, DRAMBudgetVectors: 256, Seed: seed}
	switch os.Getenv("BANDANA_TEST_BACKEND") {
	case core.BackendFile:
		cfg.Backend = core.BackendFile
		cfg.DataDir = filepath.Join(t.TempDir(), "store")
	case core.BackendFile + "-direct":
		dir := t.TempDir()
		if !nvm.DirectIOSupported(dir) {
			t.Skipf("skipping: filesystem at %s rejects O_DIRECT", dir)
		}
		cfg.Backend = core.BackendFile
		cfg.DataDir = filepath.Join(dir, "store")
		cfg.Direct = true
	}
	s, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// countingNode wraps a node server and counts the /v1/batch requests it
// actually served, so tests can assert where the router sent traffic.
type countingNode struct {
	srv     *httptest.Server
	batches atomic.Int64
}

func newCountingNode(t *testing.T, store *core.Store, delay time.Duration) *countingNode {
	t.Helper()
	n := &countingNode{}
	inner := server.New(store).Handler()
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/batch" {
			n.batches.Add(1)
			if delay > 0 {
				time.Sleep(delay)
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(n.srv.Close)
	return n
}

// bootstrapReplica builds a replica of primaryURL in a temp dir and returns
// the replica plus its opened store.
func bootstrapReplica(t *testing.T, primaryURL string) (*Replica, *core.Store) {
	t.Helper()
	rep, err := NewReplica(ReplicaOptions{
		PrimaryURL:   primaryURL,
		DataDir:      filepath.Join(t.TempDir(), "replica"),
		PollInterval: 25 * time.Millisecond,
		ChunkBytes:   32 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, _, err := rep.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	return rep, store
}

func postRouterBatch(t *testing.T, routerURL, tbl string, ids []uint32) *BatchResponse {
	t.Helper()
	body, _ := json.Marshal(BatchRequest{Table: tbl, IDs: ids})
	resp, err := http.Post(routerURL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router /v1/batch: %s", resp.Status)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestClusterEndToEnd is the acceptance walk: a primary and a replica
// bootstrapped from its snapshot stream serve byte-identical vectors, and a
// router scatter-gathers one mixed batch across both nodes with no errors.
func TestClusterEndToEnd(t *testing.T) {
	primary := buildClusterStore(t, 7)
	nodeA := newCountingNode(t, primary, 0)

	_, replicaStore := bootstrapReplica(t, nodeA.srv.URL)
	defer replicaStore.Close()

	// Property check: every vector of every table is byte-identical.
	for ti := 0; ti < primary.NumTables(); ti++ {
		for id := uint32(0); id < 2048; id += 17 { // sampled sweep
			want, err := primary.Lookup(ti, id)
			if err != nil {
				t.Fatal(err)
			}
			got, err := replicaStore.Lookup(ti, id)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != len(got) {
				t.Fatalf("table %d id %d: dim mismatch", ti, id)
			}
			for k := range want {
				if want[k] != got[k] {
					t.Fatalf("table %d id %d[%d]: %v != %v", ti, id, k, got[k], want[k])
				}
			}
		}
	}
	if !replicaStore.ReadOnly() {
		t.Fatal("replica must serve read-only")
	}

	// Router over both nodes (the replica serves the same image, so it can
	// own partitions as a second primary in routing terms).
	nodeB := newCountingNode(t, replicaStore, 0)
	cfg := &Config{
		IDRangeSize: 64,
		Nodes: []Node{
			{ID: "node-a", Addr: nodeA.srv.URL, Role: RolePrimary},
			{ID: "node-b", Addr: nodeB.srv.URL, Role: RolePrimary},
		},
	}
	rt, err := NewRouter(cfg, RouterOptions{HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	routerSrv := httptest.NewServer(rt.Handler())
	defer routerSrv.Close()

	ids := make([]uint32, 0, 120)
	for id := uint32(0); id < 2048; id += 17 {
		ids = append(ids, id)
	}
	aBefore, bBefore := nodeA.batches.Load(), nodeB.batches.Load()
	resp := postRouterBatch(t, routerSrv.URL, "t1", ids)
	if len(resp.Errors) != 0 {
		t.Fatalf("healthy cluster returned errors: %+v", resp.Errors)
	}
	for i, id := range ids {
		want, err := primary.Lookup(1, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Vectors[i]) != len(want) {
			t.Fatalf("id %d: missing vector", id)
		}
		for k := range want {
			if resp.Vectors[i][k] != want[k] {
				t.Fatalf("id %d[%d]: scatter-gathered vector differs", id, k)
			}
		}
	}
	if nodeA.batches.Load() == aBefore || nodeB.batches.Load() == bBefore {
		t.Fatalf("batch was not scattered across both nodes (a: %d->%d, b: %d->%d)",
			aBefore, nodeA.batches.Load(), bBefore, nodeB.batches.Load())
	}
}

// TestRouterNodeLossDegradesToPerIDErrors kills one node and asserts the
// router answers with per-id errors confined to the dead node's partitions.
func TestRouterNodeLossDegradesToPerIDErrors(t *testing.T) {
	primary := buildClusterStore(t, 11)
	nodeA := newCountingNode(t, primary, 0)
	second := buildClusterStore(t, 11)
	nodeB := newCountingNode(t, second, 0)

	cfg := &Config{
		IDRangeSize: 64,
		Nodes: []Node{
			{ID: "node-a", Addr: nodeA.srv.URL, Role: RolePrimary},
			{ID: "node-b", Addr: nodeB.srv.URL, Role: RolePrimary},
		},
	}
	rt, err := NewRouter(cfg, RouterOptions{HedgeAfter: -1, NodeTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	routerSrv := httptest.NewServer(rt.Handler())
	defer routerSrv.Close()

	ids := make([]uint32, 256)
	for i := range ids {
		ids[i] = uint32(i * 8)
	}
	nodeB.srv.Close() // node loss

	resp := postRouterBatch(t, routerSrv.URL, "t0", ids)
	if len(resp.Errors) == 0 {
		t.Fatal("expected per-id errors for the dead node's partitions")
	}
	errIDs := map[uint32]bool{}
	for _, e := range resp.Errors {
		if e.Node != "node-b" {
			t.Fatalf("error attributed to %s, want node-b: %+v", e.Node, e)
		}
		errIDs[e.ID] = true
	}
	for i, id := range ids {
		owner, err := cfg.Owner("t0", id)
		if err != nil {
			t.Fatal(err)
		}
		if dead := owner == "node-b"; dead != errIDs[id] {
			t.Fatalf("id %d (owner %s): error=%v want %v", id, owner, errIDs[id], dead)
		}
		if owner == "node-a" && len(resp.Vectors[i]) == 0 {
			t.Fatalf("id %d owned by the surviving node came back empty", id)
		}
	}
}

// TestRouterPassesThroughClientErrors pins that a node-side 4xx (the
// client's own bad request) keeps its status instead of turning into a 502,
// does not trigger failover, and does not inflate node error counters.
func TestRouterPassesThroughClientErrors(t *testing.T) {
	primary := buildClusterStore(t, 31)
	nodeA := newCountingNode(t, primary, 0)
	_, replicaStore := bootstrapReplica(t, nodeA.srv.URL)
	defer replicaStore.Close()
	nodeB := newCountingNode(t, replicaStore, 0)

	cfg := &Config{
		IDRangeSize: 64,
		Nodes: []Node{
			{ID: "node-a", Addr: nodeA.srv.URL, Role: RolePrimary},
			{ID: "node-b", Addr: nodeB.srv.URL, Role: RoleReplica, ReplicaOf: "node-a"},
		},
	}
	rt, err := NewRouter(cfg, RouterOptions{HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	routerSrv := httptest.NewServer(rt.Handler())
	defer routerSrv.Close()

	resp, err := http.Get(routerSrv.URL + "/v1/lookup?table=no-such-table&id=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown table through router: status %d, want 404", resp.StatusCode)
	}
	if got := nodeB.batches.Load(); got != 0 {
		t.Fatalf("client error failed over to the replica (%d requests)", got)
	}

	var stats RouterStats
	sresp, err := http.Get(routerSrv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, n := range stats.Nodes {
		if n.Errors != 0 {
			t.Fatalf("node %s error counter = %d after a client-side 404", n.ID, n.Errors)
		}
	}
}

// TestRouterHedgesToReplica pins the tail-latency path: a slow primary with
// a fast replica answers within the hedge budget, not the primary's.
func TestRouterHedgesToReplica(t *testing.T) {
	primary := buildClusterStore(t, 13)
	slowA := newCountingNode(t, primary, 250*time.Millisecond)

	_, replicaStore := bootstrapReplica(t, slowA.srv.URL)
	defer replicaStore.Close()
	fastB := newCountingNode(t, replicaStore, 0)

	cfg := &Config{
		IDRangeSize: 64,
		Nodes: []Node{
			{ID: "node-a", Addr: slowA.srv.URL, Role: RolePrimary},
			{ID: "node-b", Addr: fastB.srv.URL, Role: RoleReplica, ReplicaOf: "node-a"},
		},
	}
	rt, err := NewRouter(cfg, RouterOptions{HedgeAfter: 10 * time.Millisecond, NodeTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	routerSrv := httptest.NewServer(rt.Handler())
	defer routerSrv.Close()

	start := time.Now()
	resp := postRouterBatch(t, routerSrv.URL, "t0", []uint32{1, 2, 3, 100, 900})
	elapsed := time.Since(start)
	if len(resp.Errors) != 0 {
		t.Fatalf("hedged batch returned errors: %+v", resp.Errors)
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("hedged read took %s; the replica should have answered well before the slow primary's 250ms", elapsed)
	}
	if fastB.batches.Load() == 0 {
		t.Fatal("replica never received the hedged request")
	}

	// The hedge counters surface in the router stats.
	var stats RouterStats
	sresp, err := http.Get(routerSrv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	var hedges int64
	for _, n := range stats.Nodes {
		if n.ID == "node-a" {
			hedges = n.Hedges
		}
	}
	if hedges == 0 {
		t.Fatal("hedge counter did not move")
	}
}

// TestRouterReloadMovesPartitionWithoutDroppingRequests hammers the router
// while the membership is swapped under it (the SIGHUP path calls the same
// Reload): no request may fail, and after the reload the drained node stops
// receiving traffic.
func TestRouterReloadMovesPartitionWithoutDroppingRequests(t *testing.T) {
	storeA := buildClusterStore(t, 17)
	storeB := buildClusterStore(t, 17)
	nodeA := newCountingNode(t, storeA, 0)
	nodeB := newCountingNode(t, storeB, 0)

	mk := func(pinAllToA bool) *Config {
		cfg := &Config{
			IDRangeSize: 64,
			Nodes: []Node{
				{ID: "node-a", Addr: nodeA.srv.URL, Role: RolePrimary},
				{ID: "node-b", Addr: nodeB.srv.URL, Role: RolePrimary},
			},
		}
		if pinAllToA {
			parts := make([]int, 32)
			for i := range parts {
				parts[i] = i
			}
			cfg.Nodes[0].Partitions = map[string][]int{"t0": parts, "t1": parts}
		}
		return cfg
	}
	rt, err := NewRouter(mk(false), RouterOptions{HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	routerSrv := httptest.NewServer(rt.Handler())
	defer routerSrv.Close()

	ids := make([]uint32, 128)
	for i := range ids {
		ids[i] = uint32(i * 16)
	}

	var failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := json.Marshal(BatchRequest{Table: "t0", IDs: ids})
				resp, err := http.Post(routerSrv.URL+"/v1/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					return
				}
				var out BatchResponse
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if derr != nil || resp.StatusCode != http.StatusOK || len(out.Errors) != 0 {
					failures.Add(1)
					return
				}
			}
		}()
	}

	time.Sleep(50 * time.Millisecond)
	if err := rt.Reload(mk(true)); err != nil { // move every partition to node-a
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed across the membership reload", n)
	}

	// After the reload, node-b must no longer receive batch traffic.
	bBefore := nodeB.batches.Load()
	for i := 0; i < 5; i++ {
		resp := postRouterBatch(t, routerSrv.URL, "t0", ids)
		if len(resp.Errors) != 0 {
			t.Fatalf("post-reload batch returned errors: %+v", resp.Errors)
		}
	}
	if got := nodeB.batches.Load(); got != bBefore {
		t.Fatalf("drained node still received %d batches after reload", got-bBefore)
	}
}

// tornTransport injects a connection failure into the blocks download after
// a number of successful chunks — the network-visible shape of a replica
// killed (or partitioned) mid-stream.
type tornTransport struct {
	base      http.RoundTripper
	mu        sync.Mutex
	chunks    int
	failAfter int
}

func (tt *tornTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.Contains(req.URL.RawQuery, "part=blocks") {
		tt.mu.Lock()
		tt.chunks++
		n := tt.chunks
		tt.mu.Unlock()
		if n > tt.failAfter {
			return nil, fmt.Errorf("torn stream (injected after %d chunks)", tt.failAfter)
		}
	}
	return tt.base.RoundTrip(req)
}

// TestReplicaResumesTornStream kills the snapshot download mid-stream and
// re-bootstraps with a fresh Replica (a new process in production): the
// second attempt must resume from the persisted partial instead of starting
// over, and the result must pass the end-to-end CRC and serve identical
// vectors.
func TestReplicaResumesTornStream(t *testing.T) {
	primary := buildClusterStore(t, 19)
	node := httptest.NewServer(server.New(primary).Handler())
	defer node.Close()

	dataDir := filepath.Join(t.TempDir(), "replica")
	const chunk = 32 << 10

	// First attempt: the stream dies after 4 chunks (128 KB of ~1 MB).
	torn, err := NewReplica(ReplicaOptions{
		PrimaryURL: node.URL,
		DataDir:    dataDir,
		ChunkBytes: chunk,
		HTTPClient: &http.Client{Transport: &tornTransport{base: http.DefaultTransport, failAfter: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := torn.Bootstrap(); err == nil {
		t.Fatal("torn bootstrap unexpectedly succeeded")
	}
	partial := filepath.Join(dataDir, "incoming", "blocks.partial")
	st, err := os.Stat(partial)
	if err != nil {
		t.Fatalf("no partial survived the torn stream: %v", err)
	}
	if st.Size() != 4*chunk {
		t.Fatalf("partial holds %d bytes, want %d", st.Size(), 4*chunk)
	}

	// Second attempt (fresh process): must resume at the partial's offset.
	rep, err := NewReplica(ReplicaOptions{PrimaryURL: node.URL, DataDir: dataDir, ChunkBytes: chunk})
	if err != nil {
		t.Fatal(err)
	}
	store, _, err := rep.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if got := rep.Stats().LastResumeOffset; got != 4*chunk {
		t.Fatalf("bootstrap resumed at offset %d, want %d", got, 4*chunk)
	}
	for id := uint32(0); id < 2048; id += 97 {
		want, err := primary.Lookup(0, id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := store.Lookup(0, id)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if want[k] != got[k] {
				t.Fatalf("id %d[%d]: resumed replica serves wrong bytes", id, k)
			}
		}
	}
}

// TestReplicaFollowsSeqAdvance mutates the primary after bootstrap and
// checks the polling loop re-syncs and swaps the new image in.
func TestReplicaFollowsSeqAdvance(t *testing.T) {
	primary := buildClusterStore(t, 23)
	node := httptest.NewServer(server.New(primary).Handler())
	defer node.Close()

	rep, first := bootstrapReplica(t, node.URL)
	srv := server.New(first)
	// Swapped-out stores are closed by the server; the final one is ours.
	defer func() { srv.CurrentStore().Close() }()
	go rep.Run(srv.SwapStore)
	defer rep.Stop()

	// Mutate the primary: the snapshot seq advances and the replica must
	// converge on the new bytes.
	updated := make([]float32, 64)
	for i := range updated {
		updated[i] = float32(i) + 0.5
	}
	if err := primary.UpdateVector(0, 42, updated); err != nil {
		t.Fatal(err)
	}
	want, err := primary.Lookup(0, 42)
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := srv.CurrentStore().Lookup(0, 42)
		if err == nil {
			match := len(got) == len(want)
			for k := 0; match && k < len(want); k++ {
				match = got[k] == want[k]
			}
			if match {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never converged on the primary's update (replica stats: %+v)", rep.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if rep.Stats().Syncs < 2 {
		t.Fatalf("expected at least 2 syncs (bootstrap + follow), got %d", rep.Stats().Syncs)
	}
}

// TestReplicaResyncsOnPrimarySeqRegression simulates a primary restart that
// presents a *smaller* seq than the replica recorded (new process, new
// history, clock stepped back): the replica must treat any seq change — not
// only an increase — as a new image and re-sync.
func TestReplicaResyncsOnPrimarySeqRegression(t *testing.T) {
	primary1 := buildClusterStore(t, 29)
	nodeSrv := server.New(primary1)
	node := httptest.NewServer(nodeSrv.Handler())
	defer node.Close()
	// primary1 is closed by the swap below; the swapped-in store is ours.
	defer func() { nodeSrv.CurrentStore().Close() }()

	rep, first := bootstrapReplica(t, node.URL)
	if rep.ActiveSeq() <= 5 {
		t.Fatalf("boot-stamped seq unexpectedly tiny: %d", rep.ActiveSeq())
	}
	repSrv := server.New(first)
	defer func() { repSrv.CurrentStore().Close() }()
	go rep.Run(repSrv.SwapStore)
	defer rep.Stop()

	// "Restart" the primary with different data and a numerically smaller
	// seq than anything the replica has seen.
	g := table.Generate("t0", table.GenerateOptions{NumVectors: 2048, Dim: 64, NumClusters: 32, Seed: 999})
	g2 := table.Generate("t1", table.GenerateOptions{NumVectors: 2048, Dim: 64, NumClusters: 32, Seed: 998})
	primary2, err := core.Open(core.Config{
		Tables: []*table.Table{g.Table, g2.Table}, DRAMBudgetVectors: 256,
		Seed: 29, InitialSnapshotSeq: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodeSrv.SwapStore(primary2) // closes primary1 once drained

	want, err := primary2.Lookup(0, 42)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, lerr := repSrv.CurrentStore().Lookup(0, 42)
		if lerr == nil {
			match := len(got) == len(want)
			for k := 0; match && k < len(want); k++ {
				match = got[k] == want[k]
			}
			if match {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never re-synced after the primary's seq regressed (stats: %+v)", rep.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := rep.ActiveSeq(); got != 5 {
		t.Fatalf("replica active seq = %d, want the restarted primary's 5", got)
	}
}
