package cluster

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"bandana/internal/core"
	"bandana/internal/nvm"
	"bandana/internal/server"
	"bandana/internal/table"
)

// buildUpdateLogStore builds a primary large enough that the incremental
// path's transfer-size claim is measurable, with the update log enabled.
func buildUpdateLogStore(t *testing.T, seed int64, vectorsPerTable int) *core.Store {
	t.Helper()
	tables := make([]*table.Table, 2)
	for i := range tables {
		g := table.Generate(fmt.Sprintf("t%d", i), table.GenerateOptions{
			NumVectors: vectorsPerTable, Dim: 64, NumClusters: 32, Seed: seed + int64(i),
		})
		tables[i] = g.Table
	}
	cfg := core.Config{
		Tables: tables, DRAMBudgetVectors: 256, Seed: seed,
		UpdateLog: core.UpdateLogOptions{Enabled: true},
	}
	switch os.Getenv("BANDANA_TEST_BACKEND") {
	case core.BackendFile:
		cfg.Backend = core.BackendFile
		cfg.DataDir = filepath.Join(t.TempDir(), "store")
	case core.BackendFile + "-direct":
		dir := t.TempDir()
		if !nvm.DirectIOSupported(dir) {
			t.Skipf("skipping: filesystem at %s rejects O_DIRECT", dir)
		}
		cfg.Backend = core.BackendFile
		cfg.DataDir = filepath.Join(dir, "store")
		cfg.Direct = true
	}
	s, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestReplicaIncrementalFollow is the regression test for the full-image
// re-sync bug: with the update log on, a replica following a primary under a
// continuous UpdateVector stream must converge by tailing update records —
// no snapshot re-download, no store swap, no 409 restart loop — and the
// catch-up must transfer under 1% of what a full image sync would.
func TestReplicaIncrementalFollow(t *testing.T) {
	const vectorsPerTable = 65536 // 2 tables x 65536 x 128 B = 16 MB image
	primary := buildUpdateLogStore(t, 41, vectorsPerTable)
	node := httptest.NewServer(server.New(primary).Handler())
	defer node.Close()

	rep, first := bootstrapReplica(t, node.URL)
	repSrv := server.New(first)
	defer func() { repSrv.CurrentStore().Close() }()
	bootstrapBytes := rep.Stats().BytesFetched
	if bootstrapBytes == 0 {
		t.Fatal("bootstrap fetched nothing")
	}

	var swaps atomic.Int64
	go rep.Run(func(s *core.Store) {
		swaps.Add(1)
		repSrv.SwapStore(s)
	})
	defer rep.Stop()

	// Continuous update stream: K=1000 updates land while the replica runs.
	const k = 1000
	vec := make([]float32, 64)
	for i := uint32(0); i < k; i++ {
		for d := range vec {
			vec[d] = float32(i%997) + float32(d%5)*0.5
		}
		if err := primary.UpdateVector(int(i)%2, (i*31)%vectorsPerTable, vec); err != nil {
			t.Fatal(err)
		}
	}

	// The replica must converge on the primary's live seq.
	target := primary.SnapshotSeq()
	deadline := time.Now().Add(20 * time.Second)
	for rep.ActiveSeq() != target {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at seq %d, primary at %d (stats: %+v)",
				rep.ActiveSeq(), target, rep.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Replica lookups return the post-update bytes.
	for i := uint32(0); i < k; i += 97 {
		ti, id := int(i)%2, (i*31)%vectorsPerTable
		want, err := primary.Lookup(ti, id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := repSrv.CurrentStore().Lookup(ti, id)
		if err != nil {
			t.Fatal(err)
		}
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("table %d id %d[%d]: replica serves stale bytes (%v != %v)", ti, id, d, got[d], want[d])
			}
		}
	}

	st := rep.Stats()
	if swaps.Load() != 0 {
		t.Fatalf("replica swapped stores %d times; catch-up must be incremental (stats: %+v)", swaps.Load(), st)
	}
	if st.Syncs != 1 {
		t.Fatalf("full syncs = %d, want the bootstrap only (stats: %+v)", st.Syncs, st)
	}
	if st.SyncRestarts != 0 || st.SyncStalled {
		t.Fatalf("restart loop under a plain update stream: %+v", st)
	}
	if st.DeltaBatches == 0 || st.DeltaRecords != k {
		t.Fatalf("delta tail applied %d records in %d batches, want %d records (stats: %+v)",
			st.DeltaRecords, st.DeltaBatches, k, st)
	}
	// The transfer-size claim: catching up K updates moved <1% of a full
	// image sync (bootstrapBytes is exactly that cost, measured).
	if st.DeltaBytes*100 >= bootstrapBytes {
		t.Fatalf("catch-up moved %d bytes, want <1%% of the %d-byte full sync", st.DeltaBytes, bootstrapBytes)
	}

	// A structural mutation still forces the full-snapshot path: the window
	// resets, the replica falls back, re-syncs, and swaps exactly once.
	// (LoadState rewrites the layout and invalidates the update window.)
	var state bytes.Buffer
	if err := primary.SaveState(&state); err != nil {
		t.Fatal(err)
	}
	if err := primary.LoadState(&state); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(20 * time.Second)
	for swaps.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never full-synced after a structural mutation (stats: %+v)", rep.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := rep.Stats().Syncs; got != 2 {
		t.Fatalf("syncs after structural mutation = %d, want 2", got)
	}
}
