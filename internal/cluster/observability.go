package cluster

import (
	"sort"

	"bandana/internal/metrics"
)

// metricsRegistry builds the router's Prometheus registry. Gather closures
// read router-side counters and the current membership only — scrapes never
// probe nodes (the live per-node health probe stays a /v1/stats feature), so
// a scrape costs microseconds regardless of cluster size or node health.
func (rt *Router) metricsRegistry() *metrics.Registry {
	r := metrics.NewRegistry()

	r.Register("bandana_router_requests_total", "counter", "Client requests served by the router.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(rt.requests.Value()))
	})
	r.Register("bandana_router_errors_total", "counter", "Router responses with status >= 400.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(rt.errors.Value()))
	})
	r.Register("bandana_router_inflight_requests", "gauge", "Client requests currently in flight.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(rt.inflight.Value()))
	})
	r.Register("bandana_router_request_duration_us", "summary", "End-to-end router request latency (microseconds).", func() []metrics.Sample {
		return metrics.SummarySamples(nil, rt.latency.Snapshot())
	})
	r.Register("bandana_router_reloads_total", "counter", "Membership reloads applied.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(rt.reloads.Value()))
	})

	// Membership shape (from the current routing state).
	r.Register("bandana_cluster_nodes", "gauge", "Nodes in the current membership.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(len(rt.state.Load().cfg.Nodes)))
	})
	r.Register("bandana_cluster_primaries", "gauge", "Primary nodes in the current membership.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(len(rt.state.Load().primaries)))
	})

	// Per-node router-side counters. Rows come from the persistent client
	// map (keyed by node ID, survives reloads) so counters for a node that
	// was removed from membership remain visible until restart.
	perNode := func(f func(nc *nodeClient) float64) metrics.GatherFunc {
		return func() []metrics.Sample {
			rt.clientsMu.Lock()
			ids := make([]string, 0, len(rt.clients))
			for id := range rt.clients {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			out := make([]metrics.Sample, 0, len(ids))
			for _, id := range ids {
				out = append(out, metrics.Sample{Labels: metrics.L("node", id), Value: f(rt.clients[id])})
			}
			rt.clientsMu.Unlock()
			return out
		}
	}
	r.Register("bandana_node_requests_total", "counter", "Requests the router sent to each node.",
		perNode(func(nc *nodeClient) float64 { return float64(nc.requests.Value()) }))
	r.Register("bandana_node_errors_total", "counter", "Node failures observed by the router, per node.",
		perNode(func(nc *nodeClient) float64 { return float64(nc.errors.Value()) }))
	r.Register("bandana_node_timeouts_total", "counter", "Requests to each node that hit the node timeout.",
		perNode(func(nc *nodeClient) float64 { return float64(nc.timeouts.Value()) }))
	r.Register("bandana_node_hedges_total", "counter", "Hedged requests fired for each primary.",
		perNode(func(nc *nodeClient) float64 { return float64(nc.hedges.Value()) }))
	r.Register("bandana_node_hedge_wins_total", "counter", "Hedged requests a replica answered first.",
		perNode(func(nc *nodeClient) float64 { return float64(nc.hedgeWins.Value()) }))
	r.Register("bandana_node_inflight_requests", "gauge", "Requests currently outstanding to each node.",
		perNode(func(nc *nodeClient) float64 { return float64(nc.inflight.Value()) }))
	r.Register("bandana_node_wire_requests_total", "counter", "Batches served over bwp per node.",
		perNode(func(nc *nodeClient) float64 { return float64(nc.wireRequests.Value()) }))
	r.Register("bandana_node_wire_fallbacks_total", "counter", "Wire transport failures degraded to HTTP per node.",
		perNode(func(nc *nodeClient) float64 { return float64(nc.wireFallbacks.Value()) }))

	// Process runtime.
	r.Register("bandana_router_runtime_goroutines", "gauge", "Live goroutines.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(metrics.ReadRuntime(rt.start).Goroutines))
	})
	r.Register("bandana_router_runtime_heap_bytes", "gauge", "Heap bytes in use.", func() []metrics.Sample {
		return metrics.CounterSample(nil, float64(metrics.ReadRuntime(rt.start).HeapBytes))
	})
	r.Register("bandana_router_runtime_uptime_seconds", "gauge", "Seconds since the router started.", func() []metrics.Sample {
		return metrics.CounterSample(nil, metrics.ReadRuntime(rt.start).UptimeSeconds)
	})

	return r
}
