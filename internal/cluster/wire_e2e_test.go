package cluster

import (
	"encoding/json"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bandana/internal/core"
	"bandana/internal/server"
)

// wireNode is a node serving both HTTP (counted) and bwp.
type wireNode struct {
	*countingNode
	wireAddr string
}

func newWireNode(t *testing.T, store *core.Store) *wireNode {
	t.Helper()
	n := &wireNode{countingNode: &countingNode{}}
	srv := server.New(store)
	inner := srv.Handler()
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/batch" {
			n.batches.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(n.srv.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeWire(ln)
	n.wireAddr = ln.Addr().String()
	return n
}

// TestRouterSpeaksWireToNodes routes a mixed batch across a bwp-enabled
// node and an HTTP-only node: vectors must be bit-identical to direct store
// lookups on both paths, the wire node must see no HTTP batch traffic, and
// the router stats must attribute the traffic to the right transport.
func TestRouterSpeaksWireToNodes(t *testing.T) {
	storeA := buildClusterStore(t, 41)
	storeB := buildClusterStore(t, 41) // same seed: same vectors on both
	nodeA := newWireNode(t, storeA)
	nodeB := newCountingNode(t, storeB, 0)

	cfg := &Config{
		IDRangeSize: 64,
		Nodes: []Node{
			{ID: "node-a", Addr: nodeA.srv.URL, WireAddr: nodeA.wireAddr, Role: RolePrimary},
			{ID: "node-b", Addr: nodeB.srv.URL, Role: RolePrimary},
		},
	}
	rt, err := NewRouter(cfg, RouterOptions{HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	routerSrv := httptest.NewServer(rt.Handler())
	defer routerSrv.Close()

	ids := make([]uint32, 0, 120)
	for id := uint32(0); id < 2048; id += 17 {
		ids = append(ids, id)
	}
	resp := postRouterBatch(t, routerSrv.URL, "t0", ids)
	if len(resp.Errors) != 0 {
		t.Fatalf("healthy cluster returned errors: %+v", resp.Errors)
	}
	for i, id := range ids {
		want, err := storeA.Lookup(0, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Vectors[i]) != len(want) {
			t.Fatalf("id %d: missing vector", id)
		}
		for k := range want {
			if math.Float32bits(resp.Vectors[i][k]) != math.Float32bits(want[k]) {
				t.Fatalf("id %d[%d]: routed vector %v differs from store's %v", id, k, resp.Vectors[i][k], want[k])
			}
		}
	}
	// The wire node's HTTP batch endpoint must have stayed quiet; the
	// HTTP-only node must have served its share over JSON.
	if got := nodeA.batches.Load(); got != 0 {
		t.Fatalf("bwp-enabled node received %d HTTP batches", got)
	}
	if nodeB.batches.Load() == 0 {
		t.Fatal("HTTP-only node received no traffic")
	}

	var stats RouterStats
	sresp, err := http.Get(routerSrv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, ns := range stats.Nodes {
		switch ns.ID {
		case "node-a":
			if ns.WireAddr == "" || ns.WireRequests == 0 || ns.WireFallbacks != 0 {
				t.Fatalf("wire node stats wrong: %+v", ns)
			}
		case "node-b":
			if ns.WireRequests != 0 {
				t.Fatalf("HTTP-only node credited with wire requests: %+v", ns)
			}
		}
	}

	// A node-side rejection over bwp keeps client-error semantics: 404, no
	// failover, no node error counters.
	r404, err := http.Get(routerSrv.URL + "/v1/lookup?table=no-such-table&id=1")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown table over bwp: status %d, want 404", r404.StatusCode)
	}
}

// TestRouterFallsBackToHTTPWhenWireDies points a node's wireAddr at a dead
// port: every batch must still succeed over HTTP, with the fallback counter
// moving — nodes not (or no longer) speaking bwp degrade transparently.
func TestRouterFallsBackToHTTPWhenWireDies(t *testing.T) {
	storeA := buildClusterStore(t, 43)
	nodeA := newCountingNode(t, storeA, 0)

	// A port that was listening a moment ago and now refuses: the network
	// shape of a wire listener that died (or was never enabled).
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()

	cfg := &Config{
		IDRangeSize: 64,
		Nodes: []Node{
			{ID: "node-a", Addr: nodeA.srv.URL, WireAddr: deadAddr, Role: RolePrimary},
		},
	}
	rt, err := NewRouter(cfg, RouterOptions{HedgeAfter: -1, NodeTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	routerSrv := httptest.NewServer(rt.Handler())
	defer routerSrv.Close()

	resp := postRouterBatch(t, routerSrv.URL, "t0", []uint32{1, 2, 3})
	if len(resp.Errors) != 0 {
		t.Fatalf("fallback batch returned errors: %+v", resp.Errors)
	}
	if nodeA.batches.Load() == 0 {
		t.Fatal("HTTP endpoint never received the fallback")
	}
	var stats RouterStats
	sresp, err := http.Get(routerSrv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Nodes[0].WireFallbacks == 0 {
		t.Fatalf("fallback counter did not move: %+v", stats.Nodes[0])
	}
}
