// Replica bootstrap and follow: stream a primary's snapshot into a local
// data dir (resumable, CRC-verified, chunk by chunk), open it read-only
// through the normal core.Open path, and keep following as the primary's
// snapshot seq advances — incrementally when possible, by re-sync otherwise.
//
// Following is two-tiered. While the replica's seq lies inside the primary's
// retained update-log window, Run tails /v1/replica/updates and applies the
// individual update records to its OPEN store (core.ApplyReplicatedUpdates):
// catching up after K updates transfers O(K · vecBytes), not O(image), and
// the served store is never swapped. Only when the window is gone — the seq
// was compacted away, a structural mutation (train, relayout) reset it, or
// the primary predates the endpoint — does the replica fall back to the full
// snapshot bootstrap path below.
//
// Layout under ReplicaOptions.DataDir:
//
//	incoming/            partial download (blocks.partial + meta.json);
//	                     survives kill -9 and is resumed by byte offset
//	snap-<seq>/          imported, immediately servable data dirs
//
// A download is verified three times over: every chunk against its own
// CRC-32C response header, the assembled image against the part CRC the
// first chunk advertised, and the import against the manifest's internal
// CRC — a torn or bit-rotten stream can produce a failed sync, never a
// serving replica with wrong bytes.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bandana/internal/core"
	"bandana/internal/metrics"
	"bandana/internal/nvm"
	"bandana/internal/server"
)

// crcTable is the Castagnoli table shared by every CRC-32C in the cluster
// tier (it matches the server's and core's snapshot checksums).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ReplicaOptions configures a replicating follower.
type ReplicaOptions struct {
	// PrimaryURL is the base URL of the node to follow, e.g.
	// "http://10.0.0.5:8080".
	PrimaryURL string
	// DataDir is the replica's local root; snapshots and partial downloads
	// live in subdirectories.
	DataDir string
	// Sync is the durability mode of the imported block files.
	Sync nvm.SyncMode
	// Direct opens the imported block files with O_DIRECT where the
	// filesystem supports it (see core.Config.Direct).
	Direct bool
	// CacheEngine selects the DRAM cache representation of the serving
	// store (see core.Config.CacheEngine). Empty = the default engine.
	CacheEngine string
	// PollInterval is how often Run checks the primary's snapshot seq.
	// Defaults to 2s.
	PollInterval time.Duration
	// ChunkBytes is the download chunk size. Defaults to 1 MB (the server
	// additionally caps chunks at its own limit).
	ChunkBytes int
	// HTTPClient overrides the HTTP client (tests inject failures here).
	HTTPClient *http.Client
}

func (o *ReplicaOptions) defaults() error {
	if o.PrimaryURL == "" {
		return fmt.Errorf("cluster: replica needs a primary URL")
	}
	if o.DataDir == "" {
		return fmt.Errorf("cluster: replica needs a data dir")
	}
	o.PrimaryURL = strings.TrimRight(o.PrimaryURL, "/")
	if o.PollInterval <= 0 {
		o.PollInterval = 2 * time.Second
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 1 << 20
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	return nil
}

// ReplicaStats is a snapshot of the replica's sync state.
type ReplicaStats struct {
	ActiveSeq        uint64 `json:"activeSeq"`
	Syncs            int64  `json:"syncs"`
	BytesFetched     int64  `json:"bytesFetched"`
	LastResumeOffset int64  `json:"lastResumeOffset"`
	LastError        string `json:"lastError,omitempty"`
	// DeltaBatches/DeltaRecords/DeltaBytes describe the incremental path:
	// update batches applied to the open store without a snapshot re-sync.
	DeltaBatches int64 `json:"deltaBatches"`
	DeltaRecords int64 `json:"deltaRecords"`
	DeltaBytes   int64 `json:"deltaBytes"`
	// SyncRestarts counts full-snapshot syncs restarted because the
	// primary's seq advanced mid-download (the 409 path). SyncStalled is
	// set after several consecutive restarts — the replica keeps serving
	// its last good snapshot and keeps retrying with backoff, but it is
	// not converging.
	SyncRestarts int64 `json:"syncRestarts"`
	SyncStalled  bool  `json:"syncStalled"`
}

// Replica follows one primary. Create with NewReplica, then Bootstrap once
// and (optionally) Run in a goroutine to keep following.
type Replica struct {
	opts ReplicaOptions

	seq          atomic.Uint64
	syncs        metrics.Counter
	bytesFetched metrics.Counter
	resumeOff    atomic.Int64
	lastErr      atomic.Pointer[string]

	// store is the open store deltas are applied to (set by Bootstrap and
	// after every full re-sync). Run never closes it — server.SwapStore
	// owns the close-after-drain lifecycle.
	store        atomic.Pointer[core.Store]
	deltaBatches metrics.Counter
	deltaRecords metrics.Counter
	deltaBytes   metrics.Counter
	syncRestarts metrics.Counter
	syncStalled  atomic.Bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// stalledThreshold is how many consecutive seq-advance restarts flip
// SyncStalled on; backoffCap bounds the exponential restart backoff.
const (
	stalledThreshold = 3
	backoffBase      = 100 * time.Millisecond
	backoffCap       = 5 * time.Second
)

// NewReplica validates the options and prepares the local directory tree.
func NewReplica(opts ReplicaOptions) (*Replica, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: replica data dir: %w", err)
	}
	return &Replica{opts: opts, stop: make(chan struct{}), done: make(chan struct{})}, nil
}

// Stats reports the replica's sync state.
func (r *Replica) Stats() ReplicaStats {
	st := ReplicaStats{
		ActiveSeq:        r.seq.Load(),
		Syncs:            r.syncs.Value(),
		BytesFetched:     r.bytesFetched.Value(),
		LastResumeOffset: r.resumeOff.Load(),
		DeltaBatches:     r.deltaBatches.Value(),
		DeltaRecords:     r.deltaRecords.Value(),
		DeltaBytes:       r.deltaBytes.Value(),
		SyncRestarts:     r.syncRestarts.Value(),
		SyncStalled:      r.syncStalled.Load(),
	}
	if msg := r.lastErr.Load(); msg != nil {
		st.LastError = *msg
	}
	return st
}

// ActiveSeq returns the seq of the snapshot the replica currently serves.
func (r *Replica) ActiveSeq() uint64 { return r.seq.Load() }

// seqChangedError reports that the primary's snapshot advanced mid-sync;
// the sync restarts against the new seq.
type seqChangedError struct{ newSeq uint64 }

func (e seqChangedError) Error() string {
	return fmt.Sprintf("cluster: primary snapshot seq advanced to %d mid-sync", e.newSeq)
}

// Bootstrap syncs the primary's current snapshot (resuming any partial
// download a previous process left behind) and opens it as a read-only
// store. The caller owns the returned store until it hands it to
// server.SwapStore.
func (r *Replica) Bootstrap() (*core.Store, uint64, error) {
	const maxRestarts = 5
	var lastErr error
	for attempt := 0; attempt < maxRestarts; attempt++ {
		if attempt > 0 && !r.sleepBackoff(attempt) {
			break
		}
		dir, seq, err := r.syncSnapshot()
		if err != nil {
			if _, changed := err.(seqChangedError); changed {
				// The primary moved on; back off, then re-sync at the new
				// seq. Without the pause a write-heavy primary outruns the
				// download every time and bootstrap livelocks.
				lastErr = err
				r.noteRestart(attempt + 1)
				continue
			}
			r.recordErr(err)
			return nil, 0, err
		}
		store, err := r.openSnapshot(dir, seq)
		if err != nil {
			r.recordErr(err)
			return nil, 0, err
		}
		r.seq.Store(seq)
		r.store.Store(store)
		r.syncs.Inc()
		r.syncStalled.Store(false)
		r.pruneBelow(seq)
		return store, seq, nil
	}
	r.recordErr(lastErr)
	return nil, 0, fmt.Errorf("cluster: bootstrap gave up after %d seq changes: %w", maxRestarts, lastErr)
}

// noteRestart records one more consecutive seq-advance restart and flips the
// stalled flag once they pile up.
func (r *Replica) noteRestart(consecutive int) {
	r.syncRestarts.Inc()
	if consecutive >= stalledThreshold {
		r.syncStalled.Store(true)
	}
}

// sleepBackoff pauses before restart attempt n (1-based): 100ms doubling to
// a 5s cap, interruptible by Stop. Returns false when stopping.
func (r *Replica) sleepBackoff(n int) bool {
	d := backoffBase
	for i := 1; i < n && d < backoffCap; i++ {
		d *= 2
	}
	if d > backoffCap {
		d = backoffCap
	}
	select {
	case <-r.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// Run follows the primary until Stop. Whenever the primary's seq passes the
// replica's it first tries the incremental path — tail /v1/replica/updates
// and apply the records to the open store in place, no swap — and only when
// that window is unavailable syncs a full snapshot, opens it read-only and
// hands it to swap (normally server.SwapStore, which drains and closes the
// previous store). Sync failures are recorded and retried on the next poll;
// consecutive mid-download seq advances back off exponentially while the
// last good snapshot keeps serving.
func (r *Replica) Run(swap func(*core.Store)) {
	defer close(r.done)
	ticker := time.NewTicker(r.opts.PollInterval)
	defer ticker.Stop()
	restarts := 0
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			seq, err := r.fetchSeq()
			if err != nil {
				r.recordErr(err)
				continue
			}
			// Any seq other than the one being served means the primary's
			// image changed: larger after a mutation, different after a
			// primary restart (the seq is boot-stamped, but a clock that
			// stepped backwards can still present a smaller one — that is
			// a new history, not an older copy of ours).
			if seq == r.seq.Load() {
				restarts = 0
				r.syncStalled.Store(false)
				continue
			}
			switch r.tailUpdates() {
			case tailCaughtUp, tailRetry:
				restarts = 0
				r.syncStalled.Store(false)
				continue
			case tailFullSync:
			}
			dir, newSeq, err := r.syncSnapshot()
			if err != nil {
				r.recordErr(err)
				if _, changed := err.(seqChangedError); changed {
					restarts++
					r.noteRestart(restarts)
					if !r.sleepBackoff(restarts) {
						return
					}
				}
				continue
			}
			restarts = 0
			r.syncStalled.Store(false)
			if newSeq == r.seq.Load() {
				continue
			}
			store, err := r.openSnapshot(dir, newSeq)
			if err != nil {
				r.recordErr(err)
				continue
			}
			r.seq.Store(newSeq)
			r.store.Store(store)
			r.syncs.Inc()
			swap(store)
			r.pruneBelow(newSeq)
		}
	}
}

// tailUpdates outcomes.
type tailOutcome int

const (
	tailCaughtUp tailOutcome = iota // applied records (possibly none); in sync
	tailRetry                       // transient fetch/apply error; poll again
	tailFullSync                    // window gone; caller must snapshot-sync
)

// tailUpdates pulls the primary's update log from the replica's seq and
// applies it to the open store in place. It loops until caught up with the
// live seq observed at fetch time, the stream errors, or Stop.
func (r *Replica) tailUpdates() tailOutcome {
	store := r.store.Load()
	if store == nil {
		return tailFullSync
	}
	for {
		select {
		case <-r.stop:
			return tailCaughtUp
		default:
		}
		batch, err := r.fetchUpdates(r.seq.Load())
		if err != nil {
			if errors.Is(err, errUpdateWindowGone) {
				return tailFullSync
			}
			r.recordErr(err)
			return tailRetry
		}
		if len(batch.recs) > 0 {
			if err := store.ApplyReplicatedUpdates(batch.recs); err != nil {
				// The stream and the open store disagree (divergent history,
				// unknown table, bad record): repair with a full sync.
				r.recordErr(err)
				return tailFullSync
			}
			r.seq.Store(batch.upTo)
			r.deltaBatches.Inc()
			r.deltaRecords.Add(int64(len(batch.recs)))
		}
		if len(batch.recs) == 0 || batch.upTo >= batch.live {
			return tailCaughtUp
		}
	}
}

// Stop ends Run (if running) and waits for it to return.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

func (r *Replica) recordErr(err error) {
	if err == nil {
		return
	}
	msg := err.Error()
	r.lastErr.Store(&msg)
}

func (r *Replica) snapDir(seq uint64) string {
	return filepath.Join(r.opts.DataDir, fmt.Sprintf("snap-%016d", seq))
}

// pruneBelow removes every snapshot dir other than the active one (a
// replaced snapshot is never served again — after a primary restart the
// replacement's boot-stamped seq may even be numerically smaller).
func (r *Replica) pruneBelow(active uint64) {
	entries, err := os.ReadDir(r.opts.DataDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimPrefix(name, "snap-"), 10, 64)
		if err != nil || seq == active {
			continue
		}
		_ = os.RemoveAll(filepath.Join(r.opts.DataDir, name))
	}
}

// openSnapshot serves an imported snapshot dir read-only. The store
// inherits the replicated seq, so what this node reports downstream (its
// own /v1/replica/seq, the router's lag probes, chained replicas) is the
// primary's image identity rather than a local counter.
func (r *Replica) openSnapshot(dir string, seq uint64) (*core.Store, error) {
	return core.Open(core.Config{
		Backend:            core.BackendFile,
		DataDir:            dir,
		Sync:               r.opts.Sync,
		Direct:             r.opts.Direct,
		CacheEngine:        r.opts.CacheEngine,
		ReadOnly:           true,
		InitialSnapshotSeq: seq,
		// The replica keeps its own update log so replicated records are
		// re-logged at the primary's seqs: lookups merge the overlay, a
		// restart replays the tail, and chained followers can tail this
		// node in turn.
		UpdateLog: core.UpdateLogOptions{Enabled: true},
	})
}

// errUpdateWindowGone means the replica's seq fell out of the primary's
// retained update window (or the primary has no such window at all); only a
// full snapshot sync can re-enter it.
var errUpdateWindowGone = errors.New("cluster: update window gone")

// Bounds on what fetchUpdates/fetchSeq will buffer from one response. The
// server caps update payloads at 4 MB; the slack tolerates a cap raise on
// the primary without tipping the follower over.
const (
	maxUpdatesRead = int64(8 << 20)
	maxSeqRead     = int64(64 << 10)
	// maxSnapshotPartLen bounds the part length a snapshot response may
	// advertise (a corrupt header must not drive a terabyte download loop).
	maxSnapshotPartLen = int64(1) << 40
	fetchTimeout       = 60 * time.Second
)

// updateBatch is one decoded /v1/replica/updates response.
type updateBatch struct {
	recs []core.UpdateRecord
	upTo uint64 // seq of the last record (== since when empty)
	live uint64 // primary's live seq when the batch was cut
}

// fetchUpdates pulls the primary's update records after `since`, verifying
// the body against the chunk CRC header before decoding.
func (r *Replica) fetchUpdates(since uint64) (*updateBatch, error) {
	ctx, cancel := context.WithTimeout(context.Background(), fetchTimeout)
	defer cancel()
	url := fmt.Sprintf("%s/v1/replica/updates?since=%d", r.opts.PrimaryURL, since)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch updates: %w", err)
	}
	resp, err := r.opts.HTTPClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch updates: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone, http.StatusNotFound:
		// Gone: since was compacted away or the window was reset. NotFound:
		// the primary predates the endpoint. Either way, full sync.
		return nil, errUpdateWindowGone
	default:
		return nil, fmt.Errorf("cluster: fetch updates: %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxUpdatesRead+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch updates: %w", err)
	}
	if int64(len(data)) > maxUpdatesRead {
		return nil, fmt.Errorf("cluster: fetch updates: response exceeds %d bytes", maxUpdatesRead)
	}
	wantCRC, err := strconv.ParseUint(resp.Header.Get(server.HeaderChunkCRC), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch updates: bad chunk CRC header: %w", err)
	}
	if got := crc32.Checksum(data, crcTable); got != uint32(wantCRC) {
		return nil, fmt.Errorf("cluster: fetch updates: CRC mismatch (got %08x want %08x)", got, wantCRC)
	}
	b := &updateBatch{upTo: since}
	if v := resp.Header.Get(server.HeaderUpdatesUpTo); v != "" {
		if b.upTo, err = strconv.ParseUint(v, 10, 64); err != nil {
			return nil, fmt.Errorf("cluster: fetch updates: bad upto header: %w", err)
		}
	}
	if v := resp.Header.Get(server.HeaderSeq); v != "" {
		if b.live, err = strconv.ParseUint(v, 10, 64); err != nil {
			return nil, fmt.Errorf("cluster: fetch updates: bad seq header: %w", err)
		}
	}
	for rest := data; len(rest) > 0; {
		rec, n, err := core.DecodeUpdateRecord(rest)
		if err != nil {
			return nil, fmt.Errorf("cluster: fetch updates: %w", err)
		}
		// DecodeUpdateRecord's Raw aliases the whole response body, and the
		// overlay plus the re-logged retain window hold records indefinitely:
		// copy each payload into a right-sized slice so a few long-lived
		// records cannot pin multi-MB batch buffers.
		rec.Raw = append(make([]byte, 0, len(rec.Raw)), rec.Raw...)
		b.recs = append(b.recs, rec)
		rest = rest[n:]
	}
	if len(b.recs) > 0 && b.recs[len(b.recs)-1].Seq != b.upTo {
		return nil, fmt.Errorf("cluster: fetch updates: last record seq %d != advertised upto %d",
			b.recs[len(b.recs)-1].Seq, b.upTo)
	}
	r.bytesFetched.Add(int64(len(data)))
	r.deltaBytes.Add(int64(len(data)))
	return b, nil
}

// fetchSeq asks the primary for its current snapshot seq. The read is
// bounded and carries its own deadline so a hung or malicious primary can
// neither balloon memory nor park the poll loop forever (the injected
// HTTPClient may have no timeout of its own).
func (r *Replica) fetchSeq() (uint64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), fetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opts.PrimaryURL+"/v1/replica/seq", nil)
	if err != nil {
		return 0, fmt.Errorf("cluster: fetch seq: %w", err)
	}
	resp, err := r.opts.HTTPClient.Do(req)
	if err != nil {
		return 0, fmt.Errorf("cluster: fetch seq: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("cluster: fetch seq: %s", resp.Status)
	}
	var out struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxSeqRead)).Decode(&out); err != nil {
		return 0, fmt.Errorf("cluster: fetch seq: %w", err)
	}
	return out.Seq, nil
}

// syncSnapshot downloads the primary's current snapshot into a local
// snap-<seq> dir (no-op when that dir already exists) and returns it.
func (r *Replica) syncSnapshot() (string, uint64, error) {
	seq, err := r.fetchSeq()
	if err != nil {
		return "", 0, err
	}
	dir := r.snapDir(seq)
	if core.DirInitialized(dir) {
		// A previous process finished this import before dying; it is
		// committed (manifest last) and servable as-is.
		return dir, seq, nil
	}
	manifest, err := r.fetchWholePart("manifest", seq)
	if err != nil {
		return "", 0, err
	}
	state, err := r.fetchWholePart("state", seq)
	if err != nil {
		return "", 0, err
	}
	blocks, blocksCRC, err := r.fetchBlocksResumable(seq)
	if err != nil {
		return "", 0, err
	}
	snap := &core.Snapshot{Seq: seq, Manifest: manifest, State: state, Blocks: blocks, BlocksCRC: blocksCRC}
	// A half-imported dir (kill -9 between block file and manifest commit)
	// is uninitialized by construction; clear it and re-import.
	if err := os.RemoveAll(dir); err != nil {
		return "", 0, err
	}
	if err := core.ImportSnapshot(dir, snap, r.opts.Sync); err != nil {
		return "", 0, err
	}
	_ = os.RemoveAll(r.incomingDir())
	return dir, seq, nil
}

// chunk is one verified snapshot chunk plus the part-level metadata its
// response headers carried.
type chunk struct {
	data    []byte
	seq     uint64
	partLen int64
	partCRC uint32
}

// fetchChunk downloads and CRC-verifies bytes [offset, offset+limit) of a
// part at the pinned seq. The body read is bounded by the requested limit
// and the request carries its own deadline (see fetchSeq).
func (r *Replica) fetchChunk(part string, seq uint64, offset, limit int64) (*chunk, error) {
	ctx, cancel := context.WithTimeout(context.Background(), fetchTimeout)
	defer cancel()
	url := fmt.Sprintf("%s/v1/replica/snapshot?part=%s&seq=%d&offset=%d&limit=%d",
		r.opts.PrimaryURL, part, seq, offset, limit)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %s@%d: %w", part, offset, err)
	}
	resp, err := r.opts.HTTPClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %s@%d: %w", part, offset, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		newSeq, _ := strconv.ParseUint(resp.Header.Get(server.HeaderSeq), 10, 64)
		return nil, seqChangedError{newSeq: newSeq}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: fetch %s@%d: %s", part, offset, resp.Status)
	}
	// The server never sends more than the requested limit; a body that
	// exceeds it is a misbehaving peer, not a bigger chunk to accept.
	data, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %s@%d: %w", part, offset, err)
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("cluster: fetch %s@%d: response exceeds requested %d bytes", part, offset, limit)
	}
	c := &chunk{data: data}
	if c.seq, err = strconv.ParseUint(resp.Header.Get(server.HeaderSeq), 10, 64); err != nil {
		return nil, fmt.Errorf("cluster: fetch %s@%d: bad seq header: %w", part, offset, err)
	}
	if c.seq != seq {
		return nil, seqChangedError{newSeq: c.seq}
	}
	if c.partLen, err = strconv.ParseInt(resp.Header.Get(server.HeaderPartLen), 10, 64); err != nil {
		return nil, fmt.Errorf("cluster: fetch %s@%d: bad length header: %w", part, offset, err)
	}
	if c.partLen < 0 || c.partLen > maxSnapshotPartLen {
		return nil, fmt.Errorf("cluster: fetch %s@%d: implausible part length %d", part, offset, c.partLen)
	}
	partCRC, err := strconv.ParseUint(resp.Header.Get(server.HeaderPartCRC), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %s@%d: bad part CRC header: %w", part, offset, err)
	}
	c.partCRC = uint32(partCRC)
	chunkCRC, err := strconv.ParseUint(resp.Header.Get(server.HeaderChunkCRC), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %s@%d: bad chunk CRC header: %w", part, offset, err)
	}
	if got := crc32.Checksum(data, crcTable); got != uint32(chunkCRC) {
		return nil, fmt.Errorf("cluster: fetch %s@%d: chunk CRC mismatch (got %08x want %08x)", part, offset, got, chunkCRC)
	}
	r.bytesFetched.Add(int64(len(data)))
	return c, nil
}

// fetchWholePart downloads a small part (manifest, state) in full,
// verifying the part CRC end to end.
func (r *Replica) fetchWholePart(part string, seq uint64) ([]byte, error) {
	var buf []byte
	for {
		c, err := r.fetchChunk(part, seq, int64(len(buf)), int64(r.opts.ChunkBytes))
		if err != nil {
			return nil, err
		}
		buf = append(buf, c.data...)
		if int64(len(buf)) >= c.partLen {
			if got := crc32.Checksum(buf, crcTable); got != c.partCRC {
				return nil, fmt.Errorf("cluster: %s CRC mismatch (got %08x want %08x)", part, got, c.partCRC)
			}
			return buf, nil
		}
		if len(c.data) == 0 {
			return nil, fmt.Errorf("cluster: %s: empty chunk before end of part", part)
		}
	}
}

func (r *Replica) incomingDir() string { return filepath.Join(r.opts.DataDir, "incoming") }

// incomingMeta pins a partial download to a seq so a restart can tell
// whether the bytes on disk belong to the image it is about to fetch.
type incomingMeta struct {
	Seq     uint64 `json:"seq"`
	PartLen int64  `json:"partLen"`
	PartCRC uint32 `json:"partCRC"`
}

// fetchBlocksResumable downloads the block image through a durable partial
// file, resuming at the byte offset a previous (possibly killed) process
// reached. Every chunk is CRC-verified before it is appended, and the
// assembled image is verified against the part CRC advertised when the
// download started.
func (r *Replica) fetchBlocksResumable(seq uint64) ([]byte, uint32, error) {
	dir := r.incomingDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, err
	}
	partialPath := filepath.Join(dir, "blocks.partial")
	metaPath := filepath.Join(dir, "meta.json")

	var meta *incomingMeta
	if raw, err := os.ReadFile(metaPath); err == nil {
		var m incomingMeta
		if json.Unmarshal(raw, &m) == nil && m.Seq == seq {
			meta = &m
		}
	}
	if meta == nil {
		// No resumable state for this seq: start clean.
		_ = os.Remove(partialPath)
		_ = os.Remove(metaPath)
	}

	f, err := os.OpenFile(partialPath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	offset := int64(0)
	if st, err := f.Stat(); err == nil {
		offset = st.Size()
	}
	if meta != nil && offset > meta.PartLen {
		// The partial outgrew the advertised image (corrupt state from an
		// out-of-band write): start over rather than serving a bad resume.
		if err := f.Truncate(0); err != nil {
			return nil, 0, err
		}
		offset = 0
	}
	r.resumeOff.Store(offset)

	for {
		if meta != nil && offset >= meta.PartLen {
			break
		}
		c, err := r.fetchChunk("blocks", seq, offset, int64(r.opts.ChunkBytes))
		if err != nil {
			return nil, 0, err
		}
		if meta == nil {
			meta = &incomingMeta{Seq: seq, PartLen: c.partLen, PartCRC: c.partCRC}
			raw, _ := json.Marshal(meta)
			// Meta is committed before the first byte lands so a restart
			// can trust the partial file's provenance.
			if err := os.WriteFile(metaPath, raw, 0o644); err != nil {
				return nil, 0, err
			}
		}
		if c.partLen != meta.PartLen || c.partCRC != meta.PartCRC {
			return nil, 0, fmt.Errorf("cluster: blocks part changed mid-download at seq %d", seq)
		}
		if _, err := f.WriteAt(c.data, offset); err != nil {
			return nil, 0, err
		}
		offset += int64(len(c.data))
		if offset < meta.PartLen && len(c.data) == 0 {
			return nil, 0, fmt.Errorf("cluster: blocks: empty chunk at offset %d of %d", offset, meta.PartLen)
		}
	}
	if err := f.Sync(); err != nil {
		return nil, 0, err
	}
	blocks, err := os.ReadFile(partialPath)
	if err != nil {
		return nil, 0, err
	}
	if int64(len(blocks)) != meta.PartLen {
		return nil, 0, fmt.Errorf("cluster: blocks: assembled %d bytes, want %d", len(blocks), meta.PartLen)
	}
	// The end-to-end check: the whole image against the CRC advertised at
	// download start (ImportSnapshot re-verifies against the same value).
	if got := crc32.Checksum(blocks, crcTable); got != meta.PartCRC {
		// A poisoned partial would fail forever; discard it so the next
		// attempt starts clean.
		_ = os.Remove(partialPath)
		_ = os.Remove(metaPath)
		return nil, 0, fmt.Errorf("cluster: blocks image CRC mismatch (got %08x want %08x)", got, meta.PartCRC)
	}
	return blocks, meta.PartCRC, nil
}
