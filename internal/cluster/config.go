// Package cluster is Bandana's distributed serving tier: a membership
// config, a deterministic placement of (table, id-range) partitions onto
// nodes, a scatter-gather router that fans batch lookups out to partition
// owners (with hedged reads to replicas and per-id failure isolation), and
// a replica client that bootstraps a node from a primary's snapshot stream
// and keeps it in sync.
//
// One Bandana box serves embedding tables from NVM; production
// recommendation traffic needs many. The tier keeps the single-node engine
// untouched: nodes are ordinary bandana-server processes, the router is a
// stateless process in front of them, and membership is a JSON file the
// router hot-reloads on SIGHUP — no consensus service, no node-side
// cluster awareness.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net"
	"net/url"
	"os"
)

// Role is a node's role in the cluster.
type Role string

const (
	// RolePrimary nodes own partitions and serve writes (Train, adaptation).
	RolePrimary Role = "primary"
	// RoleReplica nodes mirror a primary's snapshot and serve read traffic:
	// hedged reads and failover for the primary they follow.
	RoleReplica Role = "replica"
)

// DefaultIDRangeSize is the default width of one (table, id-range)
// partition in vectors.
const DefaultIDRangeSize = 1024

// Node describes one cluster member in cluster.json.
type Node struct {
	// ID is the stable node identity; rendezvous placement hashes it, so
	// renaming a node moves its partitions.
	ID string `json:"id"`
	// Addr is the node's base URL, e.g. "http://10.0.0.5:8080".
	Addr string `json:"addr"`
	// WireAddr optionally advertises the node's binary wire protocol (bwp)
	// listener as "host:port". When set, the router sends this node its
	// batch lookups over bwp (fp16 payloads, no JSON) and falls back to
	// Addr's HTTP API if the wire transport fails. Empty means HTTP only.
	WireAddr string `json:"wireAddr,omitempty"`
	// Role is "primary" (owns partitions) or "replica" (mirrors ReplicaOf).
	Role Role `json:"role"`
	// ReplicaOf names the primary a replica follows. Required for replicas,
	// forbidden for primaries.
	ReplicaOf string `json:"replicaOf,omitempty"`
	// Partitions optionally pins partitions to this node, overriding the
	// rendezvous placement: table name -> partition indexes. Pinning is how
	// an operator drains a node (pin its ranges elsewhere, SIGHUP the
	// router, retire the node).
	Partitions map[string][]int `json:"partitions,omitempty"`
}

// Config is the cluster membership file (cluster.json). It is static
// configuration: the router loads it at start and re-loads it on SIGHUP,
// atomically swapping the routing state so in-flight requests finish
// against the membership they started with.
type Config struct {
	// IDRangeSize is the width in vectors of one partition: vector id N of
	// table T belongs to partition (T, N/IDRangeSize). Defaults to
	// DefaultIDRangeSize.
	IDRangeSize uint32 `json:"idRangeSize,omitempty"`
	// Nodes are the cluster members.
	Nodes []Node `json:"nodes"`
}

// LoadConfig reads and validates a cluster.json file.
func LoadConfig(path string) (*Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: read config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("cluster: parse %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	return &cfg, nil
}

// Validate checks the membership for internal consistency.
func (c *Config) Validate() error {
	if c.IDRangeSize == 0 {
		c.IDRangeSize = DefaultIDRangeSize
	}
	if len(c.Nodes) == 0 {
		return fmt.Errorf("no nodes configured")
	}
	byID := make(map[string]*Node, len(c.Nodes))
	primaries := 0
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if n.ID == "" {
			return fmt.Errorf("node %d has no id", i)
		}
		if _, dup := byID[n.ID]; dup {
			return fmt.Errorf("duplicate node id %q", n.ID)
		}
		byID[n.ID] = n
		u, err := url.Parse(n.Addr)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("node %q: invalid addr %q (want e.g. http://host:port)", n.ID, n.Addr)
		}
		if n.WireAddr != "" {
			if _, _, err := net.SplitHostPort(n.WireAddr); err != nil {
				return fmt.Errorf("node %q: invalid wireAddr %q (want host:port): %v", n.ID, n.WireAddr, err)
			}
		}
		switch n.Role {
		case RolePrimary:
			if n.ReplicaOf != "" {
				return fmt.Errorf("primary node %q must not set replicaOf", n.ID)
			}
			primaries++
		case RoleReplica:
			if n.ReplicaOf == "" {
				return fmt.Errorf("replica node %q must set replicaOf", n.ID)
			}
			if len(n.Partitions) != 0 {
				return fmt.Errorf("replica node %q must not pin partitions (it serves its primary's)", n.ID)
			}
		default:
			return fmt.Errorf("node %q: unknown role %q (want %q or %q)", n.ID, n.Role, RolePrimary, RoleReplica)
		}
	}
	if primaries == 0 {
		return fmt.Errorf("no primary nodes configured")
	}
	// Replica chains must terminate at a primary, and a (table, partition)
	// may be pinned to at most one node.
	pinned := make(map[string]map[int]string)
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if n.Role == RoleReplica {
			target, ok := byID[n.ReplicaOf]
			if !ok {
				return fmt.Errorf("replica node %q follows unknown node %q", n.ID, n.ReplicaOf)
			}
			if target.Role != RolePrimary {
				return fmt.Errorf("replica node %q follows %q, which is not a primary", n.ID, n.ReplicaOf)
			}
		}
		for table, parts := range n.Partitions {
			m := pinned[table]
			if m == nil {
				m = make(map[int]string)
				pinned[table] = m
			}
			for _, p := range parts {
				if p < 0 {
					return fmt.Errorf("node %q pins negative partition %d of table %q", n.ID, p, table)
				}
				if prev, dup := m[p]; dup {
					return fmt.Errorf("partition %d of table %q pinned to both %q and %q", p, table, prev, n.ID)
				}
				m[p] = n.ID
			}
		}
	}
	return nil
}

// PartitionOf returns the partition index of a vector id under this
// config's id-range width.
func (c *Config) PartitionOf(id uint32) int { return int(id / c.IDRangeSize) }

// Owner resolves the node id of the primary owning a vector's partition — a
// convenience for tools and tests; the router builds its routing state once
// instead of per call.
func (c *Config) Owner(table string, id uint32) (string, error) {
	st, err := newRoutingState(c)
	if err != nil {
		return "", err
	}
	return st.ownerOf(table, st.cfg.PartitionOf(id)).ID, nil
}

// rendezvousScore ranks node candidates for one (table, partition) key. The
// highest score among the primaries wins the partition — the classic
// highest-random-weight construction: adding or removing a node only moves
// the partitions that node wins or held, never reshuffles the rest.
func rendezvousScore(nodeID, table string, partition int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(nodeID))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(table))
	var pb [8]byte
	binary.LittleEndian.PutUint64(pb[:], uint64(partition))
	_, _ = h.Write(pb[:])
	// One extra round of mixing: FNV's avalanche on short inputs is weak
	// enough to visibly skew the partition balance between two nodes.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// routingState is an immutable snapshot of the membership, built once per
// (re)load and read lock-free by every request.
type routingState struct {
	cfg        *Config
	byID       map[string]*Node
	primaries  []*Node
	replicasOf map[string][]*Node // primary id -> its replicas
	// pinnedOwner resolves explicit pins: table -> partition -> node.
	pinnedOwner map[string]map[int]*Node
}

func newRoutingState(cfg *Config) (*routingState, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := &routingState{
		cfg:         cfg,
		byID:        make(map[string]*Node, len(cfg.Nodes)),
		replicasOf:  make(map[string][]*Node),
		pinnedOwner: make(map[string]map[int]*Node),
	}
	for i := range cfg.Nodes {
		n := &cfg.Nodes[i]
		st.byID[n.ID] = n
		if n.Role == RolePrimary {
			st.primaries = append(st.primaries, n)
		}
	}
	for i := range cfg.Nodes {
		n := &cfg.Nodes[i]
		if n.Role == RoleReplica {
			st.replicasOf[n.ReplicaOf] = append(st.replicasOf[n.ReplicaOf], n)
		}
		for table, parts := range n.Partitions {
			m := st.pinnedOwner[table]
			if m == nil {
				m = make(map[int]*Node)
				st.pinnedOwner[table] = m
			}
			for _, p := range parts {
				m[p] = n
			}
		}
	}
	return st, nil
}

// ownerOf resolves the primary owning (table, partition): an explicit pin
// wins, otherwise the rendezvous-highest primary.
func (st *routingState) ownerOf(table string, partition int) *Node {
	if m := st.pinnedOwner[table]; m != nil {
		if n := m[partition]; n != nil {
			return n
		}
	}
	var best *Node
	var bestScore uint64
	for _, n := range st.primaries {
		score := rendezvousScore(n.ID, table, partition)
		if best == nil || score > bestScore || (score == bestScore && n.ID < best.ID) {
			best, bestScore = n, score
		}
	}
	return best
}

// replicasFor returns the replicas following a primary (hedge and failover
// targets for its partitions).
func (st *routingState) replicasFor(primaryID string) []*Node {
	return st.replicasOf[primaryID]
}
