package cluster

import (
	"fmt"
	"strings"
	"testing"

	"bandana/internal/server"
)

func serverMaxBatchIDs() int { return server.MaxBatchIDs }

func twoNodeConfig() *Config {
	return &Config{
		IDRangeSize: 64,
		Nodes: []Node{
			{ID: "a", Addr: "http://127.0.0.1:1", Role: RolePrimary},
			{ID: "b", Addr: "http://127.0.0.1:2", Role: RolePrimary},
		},
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"valid", func(c *Config) {}, ""},
		{"no nodes", func(c *Config) { c.Nodes = nil }, "no nodes"},
		{"duplicate id", func(c *Config) { c.Nodes[1].ID = "a" }, "duplicate node id"},
		{"missing id", func(c *Config) { c.Nodes[0].ID = "" }, "no id"},
		{"bad addr", func(c *Config) { c.Nodes[0].Addr = "127.0.0.1:8080" }, "invalid addr"},
		{"bad role", func(c *Config) { c.Nodes[0].Role = "standby" }, "unknown role"},
		{"no primaries", func(c *Config) {
			c.Nodes[0].Role, c.Nodes[0].ReplicaOf = RoleReplica, "b"
			c.Nodes[1].Role, c.Nodes[1].ReplicaOf = RoleReplica, "a"
		}, "no primary"},
		{"replica chain", func(c *Config) {
			c.Nodes = append(c.Nodes, Node{ID: "c", Addr: "http://127.0.0.1:3", Role: RoleReplica, ReplicaOf: "d"},
				Node{ID: "d", Addr: "http://127.0.0.1:4", Role: RoleReplica, ReplicaOf: "a"})
		}, "not a primary"},
		{"replica without target", func(c *Config) { c.Nodes[1].Role = RoleReplica }, "must set replicaOf"},
		{"replica of unknown", func(c *Config) {
			c.Nodes[1].Role, c.Nodes[1].ReplicaOf = RoleReplica, "ghost"
		}, "unknown node"},
		{"primary with replicaOf", func(c *Config) { c.Nodes[0].ReplicaOf = "b" }, "must not set replicaOf"},
		{"replica pins partitions", func(c *Config) {
			c.Nodes[1].Role, c.Nodes[1].ReplicaOf = RoleReplica, "a"
			c.Nodes[1].Partitions = map[string][]int{"t": {0}}
		}, "must not pin"},
		{"double pin", func(c *Config) {
			c.Nodes[0].Partitions = map[string][]int{"t": {3}}
			c.Nodes[1].Partitions = map[string][]int{"t": {3}}
		}, "pinned to both"},
		{"negative pin", func(c *Config) {
			c.Nodes[0].Partitions = map[string][]int{"t": {-1}}
		}, "negative partition"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := twoNodeConfig()
			tc.mutate(cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestRendezvousDeterministicAndStable pins the two properties routing
// correctness rests on: the same config always derives the same owners, and
// removing one node only moves the partitions that node owned.
func TestRendezvousDeterministicAndStable(t *testing.T) {
	cfg := &Config{
		IDRangeSize: 16,
		Nodes: []Node{
			{ID: "a", Addr: "http://h:1", Role: RolePrimary},
			{ID: "b", Addr: "http://h:2", Role: RolePrimary},
			{ID: "c", Addr: "http://h:3", Role: RolePrimary},
		},
	}
	const parts = 256
	owners := make([]string, parts)
	for p := 0; p < parts; p++ {
		owner, err := cfg.Owner("tbl", uint32(p)*cfg.IDRangeSize)
		if err != nil {
			t.Fatal(err)
		}
		owners[p] = owner
	}
	// Deterministic across rebuilds.
	for p := 0; p < parts; p++ {
		again, _ := cfg.Owner("tbl", uint32(p)*cfg.IDRangeSize)
		if again != owners[p] {
			t.Fatalf("partition %d: owner changed across rebuilds (%s vs %s)", p, owners[p], again)
		}
	}
	// Roughly balanced: each of 3 nodes should own a sane share.
	counts := map[string]int{}
	for _, o := range owners {
		counts[o]++
	}
	for id, n := range counts {
		if n < parts/6 || n > parts/2 {
			t.Fatalf("node %s owns %d of %d partitions (badly unbalanced: %v)", id, n, parts, counts)
		}
	}
	// Minimal disruption: drop node c; a/b-owned partitions must not move.
	smaller := &Config{IDRangeSize: 16, Nodes: cfg.Nodes[:2]}
	for p := 0; p < parts; p++ {
		owner, err := smaller.Owner("tbl", uint32(p)*cfg.IDRangeSize)
		if err != nil {
			t.Fatal(err)
		}
		if owners[p] != "c" && owner != owners[p] {
			t.Fatalf("partition %d moved from %s to %s although its owner never left", p, owners[p], owner)
		}
	}
}

// TestExplicitPinOverridesRendezvous checks the operator drain path.
func TestExplicitPinOverridesRendezvous(t *testing.T) {
	cfg := twoNodeConfig()
	// Find a partition rendezvous gives to b, then pin it to a.
	pinned := -1
	for p := 0; p < 64; p++ {
		owner, err := cfg.Owner("tbl", uint32(p)*cfg.IDRangeSize)
		if err != nil {
			t.Fatal(err)
		}
		if owner == "b" {
			pinned = p
			break
		}
	}
	if pinned < 0 {
		t.Fatal("rendezvous gave node b nothing in 64 partitions")
	}
	cfg.Nodes[0].Partitions = map[string][]int{"tbl": {pinned}}
	owner, err := cfg.Owner("tbl", uint32(pinned)*cfg.IDRangeSize)
	if err != nil {
		t.Fatal(err)
	}
	if owner != "a" {
		t.Fatalf("pinned partition %d resolves to %s, want a", pinned, owner)
	}
}

func TestPartitionOf(t *testing.T) {
	cfg := twoNodeConfig() // IDRangeSize 64
	for _, tc := range []struct{ id, want uint32 }{{0, 0}, {63, 0}, {64, 1}, {1000, 15}} {
		if got := cfg.PartitionOf(tc.id); got != int(tc.want) {
			t.Fatalf("PartitionOf(%d) = %d, want %d", tc.id, got, tc.want)
		}
	}
}

// TestBatchLimitMatchesServer keeps the router-side and node-side bounds
// from drifting apart (they are deliberately not imported across tiers).
func TestBatchLimitMatchesServer(t *testing.T) {
	if MaxBatchIDs != serverMaxBatchIDs() {
		t.Fatalf("cluster.MaxBatchIDs (%d) != server.MaxBatchIDs (%d)", MaxBatchIDs, serverMaxBatchIDs())
	}
}

func ExampleConfig_PartitionOf() {
	cfg := &Config{IDRangeSize: 1024}
	fmt.Println(cfg.PartitionOf(5000))
	// Output: 4
}
