// Package kmeans implements the semantic (unsupervised) partitioning
// baseline of the paper: K-means clustering of embedding vectors by
// Euclidean distance, used to order vectors so that members of the same
// cluster land in the same NVM blocks (§4.2.1).
//
// Two variants are provided, matching the paper:
//
//   - Cluster: flat K-means with K-means++ seeding and Lloyd iterations,
//     whose runtime grows roughly linearly with the number of clusters
//     (Figure 7a shows it becoming impractical for large cluster counts);
//   - TwoStage: the recursive approximation that first builds a small
//     number of coarse clusters and then re-clusters each of them
//     independently (Figures 7b and 8).
//
// The assignment step is parallelised across goroutines.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
)

// Dataset exposes vectors to the clustering algorithm without forcing a
// particular storage format (embedding tables store fp16, the tests use
// plain slices).
type Dataset interface {
	// Len returns the number of vectors.
	Len() int
	// Dim returns the dimensionality.
	Dim() int
	// At copies vector i into dst (len >= Dim).
	At(i int, dst []float32)
}

// SliceDataset adapts a [][]float32 to the Dataset interface.
type SliceDataset [][]float32

// Len implements Dataset.
func (s SliceDataset) Len() int { return len(s) }

// Dim implements Dataset.
func (s SliceDataset) Dim() int {
	if len(s) == 0 {
		return 0
	}
	return len(s[0])
}

// At implements Dataset.
func (s SliceDataset) At(i int, dst []float32) { copy(dst, s[i]) }

// Result is the outcome of a clustering run.
type Result struct {
	// Centroids holds K centroid vectors.
	Centroids [][]float32
	// Assignments maps each input vector to its cluster in [0, K).
	Assignments []int32
	// Iterations is the number of Lloyd iterations actually executed.
	Iterations int
	// Inertia is the final sum of squared distances to assigned centroids.
	Inertia float64
}

// Options configures a clustering run.
type Options struct {
	K        int
	MaxIters int
	Seed     int64
	// Tolerance stops iterating when the relative improvement of inertia
	// drops below it. Default 1e-4.
	Tolerance float64
	// Workers bounds the parallelism of the assignment step. Default:
	// GOMAXPROCS.
	Workers int
}

func (o *Options) defaults(n int) {
	if o.MaxIters <= 0 {
		o.MaxIters = 20
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-4
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.K > n {
		o.K = n
	}
	if o.K < 1 {
		o.K = 1
	}
}

// Cluster runs K-means over the dataset.
func Cluster(data Dataset, opts Options) (*Result, error) {
	n := data.Len()
	if n == 0 {
		return nil, fmt.Errorf("kmeans: empty dataset")
	}
	dim := data.Dim()
	if dim <= 0 {
		return nil, fmt.Errorf("kmeans: zero dimensionality")
	}
	opts.defaults(n)
	rng := rand.New(rand.NewSource(opts.Seed))

	// Materialise the data once; clustering re-reads every vector each
	// iteration, and fp16 decoding in the inner loop would dominate.
	flat := make([]float32, n*dim)
	for i := 0; i < n; i++ {
		data.At(i, flat[i*dim:(i+1)*dim])
	}

	centroids := seedPlusPlus(flat, n, dim, opts.K, rng)
	assign := make([]int32, n)
	prevInertia := math.Inf(1)
	iters := 0
	var inertia float64
	for iters = 1; iters <= opts.MaxIters; iters++ {
		inertia = assignAll(flat, n, dim, centroids, assign, opts.Workers)
		recomputeCentroids(flat, n, dim, centroids, assign, rng)
		if prevInertia-inertia <= opts.Tolerance*prevInertia {
			break
		}
		prevInertia = inertia
	}
	cents := make([][]float32, opts.K)
	for c := 0; c < opts.K; c++ {
		cents[c] = append([]float32(nil), centroids[c*dim:(c+1)*dim]...)
	}
	return &Result{Centroids: cents, Assignments: assign, Iterations: iters, Inertia: inertia}, nil
}

// seedPlusPlus picks K initial centroids with the K-means++ strategy
// (Arthur & Vassilvitskii, 2007), sampling candidates from a bounded subset
// for large datasets to keep seeding cost proportional to K.
func seedPlusPlus(flat []float32, n, dim, k int, rng *rand.Rand) []float32 {
	sampleSize := n
	maxSample := 20 * k
	if maxSample < 1024 {
		maxSample = 1024
	}
	var sample []int
	if n > maxSample {
		sample = rng.Perm(n)[:maxSample]
		sampleSize = maxSample
	} else {
		sample = make([]int, n)
		for i := range sample {
			sample[i] = i
		}
	}

	centroids := make([]float32, k*dim)
	first := sample[rng.Intn(sampleSize)]
	copy(centroids[:dim], flat[first*dim:(first+1)*dim])

	minDist := make([]float64, sampleSize)
	for i := range minDist {
		minDist[i] = dist2(flat[sample[i]*dim:(sample[i]+1)*dim], centroids[:dim])
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range minDist {
			total += d
		}
		var chosen int
		if total <= 0 {
			chosen = sample[rng.Intn(sampleSize)]
		} else {
			r := rng.Float64() * total
			idx := 0
			for i, d := range minDist {
				r -= d
				if r <= 0 {
					idx = i
					break
				}
			}
			chosen = sample[idx]
		}
		copy(centroids[c*dim:(c+1)*dim], flat[chosen*dim:(chosen+1)*dim])
		// Update min distances against the new centroid.
		for i := range minDist {
			d := dist2(flat[sample[i]*dim:(sample[i]+1)*dim], centroids[c*dim:(c+1)*dim])
			if d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return centroids
}

// assignAll assigns every vector to its nearest centroid, in parallel, and
// returns the total inertia.
func assignAll(flat []float32, n, dim int, centroids []float32, assign []int32, workers int) float64 {
	k := len(centroids) / dim
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	inertias := make([]float64, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var local float64
			for i := lo; i < hi; i++ {
				v := flat[i*dim : (i+1)*dim]
				best := 0
				bestD := math.Inf(1)
				for c := 0; c < k; c++ {
					d := dist2(v, centroids[c*dim:(c+1)*dim])
					if d < bestD {
						bestD = d
						best = c
					}
				}
				assign[i] = int32(best)
				local += bestD
			}
			inertias[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	var total float64
	for _, x := range inertias {
		total += x
	}
	return total
}

// recomputeCentroids replaces each centroid with the mean of its members.
// Empty clusters are re-seeded with a random vector.
func recomputeCentroids(flat []float32, n, dim int, centroids []float32, assign []int32, rng *rand.Rand) {
	k := len(centroids) / dim
	sums := make([]float64, k*dim)
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		c := int(assign[i])
		counts[c]++
		base := c * dim
		v := flat[i*dim : (i+1)*dim]
		for d := 0; d < dim; d++ {
			sums[base+d] += float64(v[d])
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			// Re-seed an empty cluster.
			j := rng.Intn(n)
			copy(centroids[c*dim:(c+1)*dim], flat[j*dim:(j+1)*dim])
			continue
		}
		for d := 0; d < dim; d++ {
			centroids[c*dim+d] = float32(sums[c*dim+d] / float64(counts[c]))
		}
	}
}

func dist2(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// TwoStageOptions configures the recursive K-means approximation.
type TwoStageOptions struct {
	// CoarseClusters is the number of first-stage clusters (the paper uses
	// 256).
	CoarseClusters int
	// TotalSubClusters is the total number of leaf clusters across all
	// coarse clusters (the x-axis of Figure 8).
	TotalSubClusters int
	MaxIters         int
	Seed             int64
	Workers          int
}

// TwoStage runs the recursive two-stage K-means: a coarse clustering
// followed by an independent clustering of each coarse cluster, with the
// number of sub-clusters proportional to the coarse cluster's size.
func TwoStage(data Dataset, opts TwoStageOptions) (*Result, error) {
	n := data.Len()
	if n == 0 {
		return nil, fmt.Errorf("kmeans: empty dataset")
	}
	if opts.CoarseClusters <= 0 {
		opts.CoarseClusters = 256
	}
	if opts.TotalSubClusters < opts.CoarseClusters {
		opts.TotalSubClusters = opts.CoarseClusters
	}
	coarse, err := Cluster(data, Options{
		K:        opts.CoarseClusters,
		MaxIters: opts.MaxIters,
		Seed:     opts.Seed,
		Workers:  opts.Workers,
	})
	if err != nil {
		return nil, err
	}

	dim := data.Dim()
	members := make([][]int, opts.CoarseClusters)
	for i, c := range coarse.Assignments {
		members[c] = append(members[c], i)
	}

	out := &Result{Assignments: make([]int32, n), Iterations: coarse.Iterations}
	next := int32(0)
	for c, ids := range members {
		if len(ids) == 0 {
			continue
		}
		// Sub-cluster count proportional to the coarse cluster size.
		subK := int(math.Round(float64(opts.TotalSubClusters) * float64(len(ids)) / float64(n)))
		if subK < 1 {
			subK = 1
		}
		if subK > len(ids) {
			subK = len(ids)
		}
		sub := make(SliceDataset, len(ids))
		for i, id := range ids {
			v := make([]float32, dim)
			data.At(id, v)
			sub[i] = v
		}
		res, err := Cluster(sub, Options{
			K:        subK,
			MaxIters: opts.MaxIters,
			Seed:     opts.Seed + int64(c) + 1,
			Workers:  opts.Workers,
		})
		if err != nil {
			return nil, err
		}
		for i, id := range ids {
			out.Assignments[id] = next + res.Assignments[i]
		}
		for _, cent := range res.Centroids {
			out.Centroids = append(out.Centroids, cent)
		}
		out.Inertia += res.Inertia
		next += int32(subK)
	}
	return out, nil
}

// OrderByCluster produces a physical placement order: vectors sorted by
// cluster, with ties broken by vector ID. Consecutive vectors of the same
// cluster therefore share NVM blocks.
func OrderByCluster(assignments []int32) []uint32 {
	order := make([]uint32, len(assignments))
	for i := range order {
		order[i] = uint32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := assignments[order[a]], assignments[order[b]]
		if ca != cb {
			return ca < cb
		}
		return order[a] < order[b]
	})
	return order
}
