package kmeans

import "bandana/internal/table"

// TableDataset adapts an embedding table to the Dataset interface, decoding
// fp16 vectors on demand.
type TableDataset struct {
	Table *table.Table
}

// Len implements Dataset.
func (t TableDataset) Len() int { return t.Table.NumVectors() }

// Dim implements Dataset.
func (t TableDataset) Dim() int { return t.Table.Dim }

// At implements Dataset.
func (t TableDataset) At(i int, dst []float32) {
	// Errors cannot occur for in-range indices; the Dataset contract only
	// passes indices below Len().
	_ = t.Table.VectorInto(dst, uint32(i))
}
