package kmeans

import (
	"bandana/internal/table"
)

// TableDataset adapts an embedding table to the Dataset interface, decoding
// fp16 vectors on demand.
type TableDataset struct {
	Table *table.Table
}

// Len implements Dataset.
func (t TableDataset) Len() int { return t.Table.NumVectors() }

// Dim implements Dataset.
func (t TableDataset) Dim() int { return t.Table.Dim }

// At implements Dataset.
func (t TableDataset) At(i int, dst []float32) {
	// Errors cannot occur for in-range indices; the Dataset contract only
	// passes indices below Len().
	_ = t.Table.VectorInto(dst, uint32(i))
}

// OrderTable is the unsupervised re-partition entry point: it clusters a
// table's embedding vectors with two-stage K-means sized so that each leaf
// cluster roughly fills one NVM block of blockVectors vectors, and returns
// the resulting placement order. This is the paper's §4.1 fallback for
// when no (or too little) query signal is available — co-accessed vectors
// tend to be close in embedding space, so similarity grouping approximates
// co-access grouping without a trace.
func OrderTable(t *table.Table, blockVectors int, opts TwoStageOptions) ([]uint32, error) {
	if blockVectors < 1 {
		blockVectors = 1
	}
	n := t.NumVectors()
	if opts.TotalSubClusters <= 0 {
		opts.TotalSubClusters = (n + blockVectors - 1) / blockVectors
	}
	if opts.CoarseClusters <= 0 {
		opts.CoarseClusters = opts.TotalSubClusters / 16
		if opts.CoarseClusters < 1 {
			opts.CoarseClusters = 1
		}
	}
	res, err := TwoStage(TableDataset{Table: t}, opts)
	if err != nil {
		return nil, err
	}
	return OrderByCluster(res.Assignments), nil
}
