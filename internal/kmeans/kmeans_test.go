package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"bandana/internal/table"
)

// makeBlobs builds an easily separable dataset of k Gaussian blobs.
func makeBlobs(n, dim, k int, seed int64) (SliceDataset, []int32) {
	rng := rand.New(rand.NewSource(seed))
	centres := make([][]float64, k)
	for c := range centres {
		centres[c] = make([]float64, dim)
		for d := range centres[c] {
			centres[c][d] = rng.NormFloat64() * 10
		}
	}
	data := make(SliceDataset, n)
	truth := make([]int32, n)
	for i := 0; i < n; i++ {
		c := i % k
		truth[i] = int32(c)
		v := make([]float32, dim)
		for d := 0; d < dim; d++ {
			v[d] = float32(centres[c][d] + rng.NormFloat64()*0.3)
		}
		data[i] = v
	}
	return data, truth
}

func TestClusterRecoversBlobs(t *testing.T) {
	data, truth := makeBlobs(600, 8, 4, 1)
	res, err := Cluster(data, Options{K: 4, MaxIters: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 4 || len(res.Assignments) != 600 {
		t.Fatalf("result shape wrong")
	}
	// Clustering should be consistent with ground truth: vectors of the
	// same true blob share a predicted cluster, and different blobs are in
	// different clusters (check via purity).
	purity := clusterPurity(res.Assignments, truth, 4)
	if purity < 0.95 {
		t.Fatalf("purity = %.3f, want >= 0.95", purity)
	}
	if res.Iterations < 1 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	if res.Inertia <= 0 {
		t.Fatalf("inertia should be positive, got %g", res.Inertia)
	}
}

func clusterPurity(pred, truth []int32, k int) float64 {
	// For each predicted cluster, count its dominant true label.
	counts := map[int32]map[int32]int{}
	for i := range pred {
		if counts[pred[i]] == nil {
			counts[pred[i]] = map[int32]int{}
		}
		counts[pred[i]][truth[i]]++
	}
	correct := 0
	for _, m := range counts {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(pred))
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(SliceDataset{}, Options{K: 2}); err == nil {
		t.Fatal("empty dataset should error")
	}
	if _, err := Cluster(SliceDataset{{}}, Options{K: 1}); err == nil {
		t.Fatal("zero-dim dataset should error")
	}
}

func TestClusterKClamping(t *testing.T) {
	data, _ := makeBlobs(10, 4, 2, 3)
	res, err := Cluster(data, Options{K: 100, MaxIters: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 10 {
		t.Fatalf("K should clamp to n, got %d centroids", len(res.Centroids))
	}
	res, err = Cluster(data, Options{K: 0, MaxIters: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 1 {
		t.Fatalf("K=0 should clamp to 1")
	}
	for _, a := range res.Assignments {
		if a != 0 {
			t.Fatalf("all assignments should be 0 with one cluster")
		}
	}
}

func TestClusterDeterministicInSeed(t *testing.T) {
	data, _ := makeBlobs(300, 8, 3, 5)
	a, _ := Cluster(data, Options{K: 3, MaxIters: 15, Seed: 9})
	b, _ := Cluster(data, Options{K: 3, MaxIters: 15, Seed: 9})
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("assignments differ at %d", i)
		}
	}
}

func TestClusterInertiaDecreasesWithMoreClusters(t *testing.T) {
	data, _ := makeBlobs(500, 8, 8, 7)
	r2, _ := Cluster(data, Options{K: 2, MaxIters: 15, Seed: 1})
	r16, _ := Cluster(data, Options{K: 16, MaxIters: 15, Seed: 1})
	if r16.Inertia >= r2.Inertia {
		t.Fatalf("inertia with 16 clusters (%.1f) should be below 2 clusters (%.1f)",
			r16.Inertia, r2.Inertia)
	}
}

func TestTwoStageCoversAllVectors(t *testing.T) {
	data, truth := makeBlobs(800, 8, 4, 11)
	res, err := TwoStage(data, TwoStageOptions{CoarseClusters: 4, TotalSubClusters: 32, MaxIters: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 800 {
		t.Fatalf("assignments length %d", len(res.Assignments))
	}
	maxCluster := int32(-1)
	for _, a := range res.Assignments {
		if a < 0 {
			t.Fatalf("negative assignment")
		}
		if a > maxCluster {
			maxCluster = a
		}
	}
	if int(maxCluster)+1 < 4 {
		t.Fatalf("expected at least 4 leaf clusters, got %d", maxCluster+1)
	}
	if int(maxCluster)+1 > 64 {
		t.Fatalf("far more leaf clusters than requested: %d", maxCluster+1)
	}
	// Sub-clustering must still respect the coarse structure: purity
	// against ground truth stays high.
	if p := clusterPurity(res.Assignments, truth, 4); p < 0.9 {
		t.Fatalf("two-stage purity %.3f too low", p)
	}
}

func TestTwoStageDefaultsAndErrors(t *testing.T) {
	if _, err := TwoStage(SliceDataset{}, TwoStageOptions{}); err == nil {
		t.Fatal("empty dataset should error")
	}
	data, _ := makeBlobs(100, 4, 2, 1)
	res, err := TwoStage(data, TwoStageOptions{CoarseClusters: 8, TotalSubClusters: 4, MaxIters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 100 {
		t.Fatalf("assignment length")
	}
}

func TestOrderByCluster(t *testing.T) {
	assignments := []int32{2, 0, 1, 0, 2, 1}
	order := OrderByCluster(assignments)
	if len(order) != 6 {
		t.Fatalf("order length %d", len(order))
	}
	// Expected: cluster 0 -> vectors 1,3; cluster 1 -> 2,5; cluster 2 -> 0,4.
	want := []uint32{1, 3, 2, 5, 0, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestOrderByClusterIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	assignments := make([]int32, 500)
	for i := range assignments {
		assignments[i] = int32(rng.Intn(17))
	}
	order := OrderByCluster(assignments)
	seen := make([]bool, 500)
	for _, id := range order {
		if seen[id] {
			t.Fatalf("duplicate id %d in order", id)
		}
		seen[id] = true
	}
	// Cluster IDs must be non-decreasing along the order.
	for i := 1; i < len(order); i++ {
		if assignments[order[i]] < assignments[order[i-1]] {
			t.Fatalf("order not grouped by cluster at %d", i)
		}
	}
}

func TestTableDatasetAdapter(t *testing.T) {
	g := table.Generate("t", table.GenerateOptions{NumVectors: 400, Dim: 16, NumClusters: 4, ClusterSpread: 0.1, Seed: 13})
	ds := TableDataset{Table: g.Table}
	if ds.Len() != 400 || ds.Dim() != 16 {
		t.Fatalf("adapter shape wrong")
	}
	res, err := Cluster(ds, Options{K: 4, MaxIters: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The recovered clusters should align well with the generator's ground
	// truth communities.
	if p := clusterPurity(res.Assignments, g.Assignments, 4); p < 0.9 {
		t.Fatalf("purity against generated clusters = %.3f", p)
	}
}

func TestDist2(t *testing.T) {
	if d := dist2([]float32{0, 0}, []float32{3, 4}); math.Abs(d-25) > 1e-9 {
		t.Fatalf("dist2 = %g, want 25", d)
	}
}

func BenchmarkClusterK64(b *testing.B) {
	data, _ := makeBlobs(2000, 32, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(data, Options{K: 64, MaxIters: 5, Seed: 1})
	}
}
