package table

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewShape(t *testing.T) {
	tbl := New("t", 100, 64)
	if tbl.NumVectors() != 100 {
		t.Fatalf("NumVectors = %d", tbl.NumVectors())
	}
	if tbl.VectorBytes() != 128 {
		t.Fatalf("VectorBytes = %d, want 128", tbl.VectorBytes())
	}
	if tbl.SizeBytes() != 100*128 {
		t.Fatalf("SizeBytes = %d", tbl.SizeBytes())
	}
}

func TestNewPanicsOnInvalidShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	New("bad", 10, 0)
}

func TestSetGetRoundTrip(t *testing.T) {
	tbl := New("t", 10, 8)
	v := []float32{0.5, -1, 2, 0.25, 3, -0.125, 7, 0}
	if err := tbl.SetVector(3, v); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Vector(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Errorf("element %d: got %g want %g", i, got[i], v[i])
		}
	}
	// Unset vectors decode to zeros.
	zero, _ := tbl.Vector(0)
	for i, x := range zero {
		if x != 0 {
			t.Errorf("unset vector element %d = %g", i, x)
		}
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	tbl := New("t", 4, 8)
	if _, err := tbl.Vector(4); !errors.Is(err, ErrBadVector) {
		t.Fatalf("expected ErrBadVector, got %v", err)
	}
	if _, err := tbl.Raw(100); !errors.Is(err, ErrBadVector) {
		t.Fatalf("expected ErrBadVector, got %v", err)
	}
	if err := tbl.SetVector(9, make([]float32, 8)); !errors.Is(err, ErrBadVector) {
		t.Fatalf("expected ErrBadVector, got %v", err)
	}
	if err := tbl.SetVector(1, make([]float32, 3)); err == nil {
		t.Fatalf("expected dimension mismatch error")
	}
}

func TestVectorInto(t *testing.T) {
	tbl := New("t", 2, 4)
	tbl.SetVector(1, []float32{1, 2, 3, 4})
	dst := make([]float32, 4)
	if err := tbl.VectorInto(dst, 1); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 1 || dst[3] != 4 {
		t.Fatalf("decoded %v", dst)
	}
	if err := tbl.VectorInto(make([]float32, 2), 1); err == nil {
		t.Fatalf("expected error on short destination")
	}
}

func TestDot(t *testing.T) {
	tbl := New("t", 2, 3)
	tbl.SetVector(0, []float32{1, 2, 3})
	tbl.SetVector(1, []float32{4, -5, 6})
	got, err := tbl.Dot(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got)-12) > 1e-3 {
		t.Fatalf("dot = %g, want 12", got)
	}
	if _, err := tbl.Dot(0, 9); err == nil {
		t.Fatalf("expected error for bad id")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opts := GenerateOptions{NumVectors: 200, Dim: 16, NumClusters: 8, Seed: 42}
	a := Generate("a", opts)
	b := Generate("b", opts)
	for i := 0; i < 200; i++ {
		va, _ := a.Table.Vector(ID(i))
		vb, _ := b.Table.Vector(ID(i))
		for d := range va {
			if va[d] != vb[d] {
				t.Fatalf("generation not deterministic at vector %d dim %d", i, d)
			}
		}
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("assignments differ at %d", i)
		}
	}
}

func TestGenerateClusterStructure(t *testing.T) {
	// Vectors in the same cluster must on average be much closer than
	// vectors in different clusters.
	g := Generate("t", GenerateOptions{NumVectors: 500, Dim: 32, NumClusters: 5, ClusterSpread: 0.1, Seed: 7})
	dist := func(a, b ID) float64 {
		va, _ := g.Table.Vector(a)
		vb, _ := g.Table.Vector(b)
		var s float64
		for i := range va {
			d := float64(va[i] - vb[i])
			s += d * d
		}
		return math.Sqrt(s)
	}
	var within, between float64
	var nw, nb int
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			d := dist(ID(i), ID(j))
			if g.Assignments[i] == g.Assignments[j] {
				within += d
				nw++
			} else {
				between += d
				nb++
			}
		}
	}
	if nw == 0 || nb == 0 {
		t.Fatalf("degenerate cluster assignment")
	}
	if within/float64(nw) >= 0.5*between/float64(nb) {
		t.Fatalf("within-cluster distance %.3f not much smaller than between %.3f",
			within/float64(nw), between/float64(nb))
	}
}

func TestGenerateWithForcedAssignments(t *testing.T) {
	assign := make([]int32, 100)
	for i := range assign {
		assign[i] = int32(i % 4)
	}
	g := Generate("t", GenerateOptions{NumVectors: 100, Dim: 8, NumClusters: 4, Seed: 1, Assignments: assign})
	for i := range assign {
		if g.Assignments[i] != assign[i] {
			t.Fatalf("assignment %d not honoured", i)
		}
	}
}

func TestGenerateUnclustered(t *testing.T) {
	g := Generate("t", GenerateOptions{NumVectors: 50, Dim: 8, NumClusters: 0, Seed: 1})
	for _, a := range g.Assignments {
		if a != -1 {
			t.Fatalf("unclustered generation should assign -1, got %d", a)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g := Generate("mytable", GenerateOptions{NumVectors: 300, Dim: 16, NumClusters: 4, Seed: 3})
	var buf bytes.Buffer
	if _, err := g.Table.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var back Table
	if _, err := back.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if back.Name != "mytable" || back.Dim != 16 || back.NumVectors() != 300 {
		t.Fatalf("metadata mismatch: %q %d %d", back.Name, back.Dim, back.NumVectors())
	}
	for i := 0; i < 300; i += 17 {
		a, _ := g.Table.Vector(ID(i))
		b, _ := back.Vector(ID(i))
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("vector %d differs after round trip", i)
			}
		}
	}
}

func TestReadFromRejectsBadMagic(t *testing.T) {
	var tbl Table
	if _, err := tbl.ReadFrom(bytes.NewReader([]byte("NOTMAGIC........"))); err == nil {
		t.Fatalf("expected error on bad magic")
	}
}

func TestPropertySetVectorRoundTripsThroughFp16(t *testing.T) {
	tbl := New("t", 4, 8)
	prop := func(raw [8]float32) bool {
		v := make([]float32, 8)
		for i, x := range raw {
			// Constrain to fp16 range to avoid infinities.
			v[i] = float32(math.Mod(float64(x), 1000))
			if math.IsNaN(float64(v[i])) {
				v[i] = 0
			}
		}
		if err := tbl.SetVector(2, v); err != nil {
			return false
		}
		got, err := tbl.Vector(2)
		if err != nil {
			return false
		}
		for i := range v {
			// Round trip must equal the fp16 quantisation of the input.
			want := quantizeOne(v[i])
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func quantizeOne(f float32) float32 {
	v := []float32{f}
	// Use the table code path: SetVector quantises through fp16.
	tbl := New("q", 1, 1)
	tbl.SetVector(0, v)
	out, _ := tbl.Vector(0)
	return out[0]
}

func BenchmarkVectorDecode(b *testing.B) {
	g := Generate("t", GenerateOptions{NumVectors: 1000, Dim: 64, NumClusters: 8, Seed: 1})
	dst := make([]float32, 64)
	b.SetBytes(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Table.VectorInto(dst, ID(i%1000))
	}
}
