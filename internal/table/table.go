// Package table implements embedding tables: dense collections of fixed
// dimension fp16 vectors addressed by a 32-bit vector ID (the "column ID" in
// the paper's terminology).
//
// The production model described in the paper uses 8 user embedding tables
// of 10-20 million vectors, each vector holding 64 fp16 elements (128 B).
// This package stores tables compactly (2 bytes per element), generates
// synthetic tables whose geometry mirrors the co-access structure of the
// workload generator (so that semantic K-means partitioning has signal to
// find), and serialises tables to a simple binary format.
package table

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"bandana/internal/fp16"
)

// ID identifies a vector (column) within a table.
type ID = uint32

// Table is an in-memory embedding table of NumVectors vectors, each with Dim
// fp16 elements. Vectors are stored contiguously in raw (encoded) form.
type Table struct {
	Name string
	Dim  int // elements per vector

	data []byte // NumVectors * Dim * 2 bytes
}

// ErrBadVector is returned when a vector ID is out of range.
var ErrBadVector = errors.New("table: vector id out of range")

// New creates an empty (all zero) table.
func New(name string, numVectors, dim int) *Table {
	if numVectors < 0 || dim <= 0 {
		panic(fmt.Sprintf("table: invalid shape %d x %d", numVectors, dim))
	}
	return &Table{
		Name: name,
		Dim:  dim,
		data: make([]byte, numVectors*dim*fp16.ByteSize),
	}
}

// NumVectors returns the number of vectors in the table.
func (t *Table) NumVectors() int {
	if t.Dim == 0 {
		return 0
	}
	return len(t.data) / (t.Dim * fp16.ByteSize)
}

// VectorBytes returns the encoded size of one vector in bytes.
func (t *Table) VectorBytes() int { return t.Dim * fp16.ByteSize }

// SizeBytes returns the total encoded size of the table.
func (t *Table) SizeBytes() int { return len(t.data) }

// Raw returns the encoded bytes of vector id. The returned slice aliases the
// table's storage and must not be modified.
func (t *Table) Raw(id ID) ([]byte, error) {
	vb := t.VectorBytes()
	off := int(id) * vb
	if int(id) >= t.NumVectors() {
		return nil, fmt.Errorf("%w: %d (table has %d)", ErrBadVector, id, t.NumVectors())
	}
	return t.data[off : off+vb], nil
}

// Vector decodes vector id into a freshly allocated []float32.
func (t *Table) Vector(id ID) ([]float32, error) {
	raw, err := t.Raw(id)
	if err != nil {
		return nil, err
	}
	out := make([]float32, t.Dim)
	fp16.DecodeSlice(out, raw)
	return out, nil
}

// VectorInto decodes vector id into dst, which must have length >= Dim.
func (t *Table) VectorInto(dst []float32, id ID) error {
	raw, err := t.Raw(id)
	if err != nil {
		return err
	}
	if len(dst) < t.Dim {
		return fmt.Errorf("table: destination too small: %d < %d", len(dst), t.Dim)
	}
	fp16.DecodeSlice(dst[:t.Dim], raw)
	return nil
}

// SetRaw overwrites the encoded bytes of vector id with raw, which must be
// exactly VectorBytes long. It is the ingest path used when reconstructing a
// table from its on-NVM block image.
func (t *Table) SetRaw(id ID, raw []byte) error {
	if int(id) >= t.NumVectors() {
		return fmt.Errorf("%w: %d", ErrBadVector, id)
	}
	vb := t.VectorBytes()
	if len(raw) != vb {
		return fmt.Errorf("table: raw vector has %d bytes, want %d", len(raw), vb)
	}
	copy(t.data[int(id)*vb:], raw)
	return nil
}

// SetVector encodes v (length Dim) as the value of vector id.
func (t *Table) SetVector(id ID, v []float32) error {
	if int(id) >= t.NumVectors() {
		return fmt.Errorf("%w: %d", ErrBadVector, id)
	}
	if len(v) != t.Dim {
		return fmt.Errorf("table: vector has %d elements, table dim is %d", len(v), t.Dim)
	}
	vb := t.VectorBytes()
	buf := fp16.EncodeSlice(make([]byte, 0, vb), v)
	copy(t.data[int(id)*vb:], buf)
	return nil
}

// Dot returns the dot product of vectors a and b (decoded on the fly). It is
// used by the recommender example's ranking stage.
func (t *Table) Dot(a, b ID) (float32, error) {
	ra, err := t.Raw(a)
	if err != nil {
		return 0, err
	}
	rb, err := t.Raw(b)
	if err != nil {
		return 0, err
	}
	var sum float32
	for i := 0; i < t.Dim; i++ {
		x := fp16.FromBits(binary.LittleEndian.Uint16(ra[2*i:])).ToFloat32()
		y := fp16.FromBits(binary.LittleEndian.Uint16(rb[2*i:])).ToFloat32()
		sum += x * y
	}
	return sum, nil
}

// GenerateOptions configures synthetic table generation.
type GenerateOptions struct {
	NumVectors int
	Dim        int
	// NumClusters is the number of Gaussian mixture components. Vectors in
	// the same component are close in Euclidean space. If zero, vectors are
	// drawn i.i.d. with no cluster structure.
	NumClusters int
	// ClusterSpread is the ratio of within-cluster standard deviation to the
	// distance between cluster centres; smaller values produce tighter,
	// easier-to-recover clusters. Default 0.25.
	ClusterSpread float64
	// Seed makes generation deterministic.
	Seed int64
	// Assignments, if non-nil, forces the cluster of each vector (length
	// NumVectors). Used to align table geometry with the trace generator's
	// co-access communities so that K-means partitioning carries signal.
	Assignments []int32
}

// Generated bundles a synthetic table with its ground-truth cluster
// assignment.
type Generated struct {
	Table       *Table
	Assignments []int32 // cluster index per vector, -1 if unclustered
}

// Generate creates a synthetic embedding table. Values are quantised through
// fp16 so the stored table round-trips exactly.
func Generate(name string, opts GenerateOptions) *Generated {
	if opts.Dim <= 0 {
		opts.Dim = 64
	}
	if opts.ClusterSpread <= 0 {
		opts.ClusterSpread = 0.25
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	t := New(name, opts.NumVectors, opts.Dim)

	assign := make([]int32, opts.NumVectors)
	if opts.NumClusters <= 0 {
		for i := range assign {
			assign[i] = -1
		}
	} else if opts.Assignments != nil {
		if len(opts.Assignments) != opts.NumVectors {
			panic("table: Assignments length mismatch")
		}
		copy(assign, opts.Assignments)
		// Forced assignments may reference more clusters than requested;
		// grow the mixture to cover them.
		for _, a := range assign {
			if int(a) >= opts.NumClusters {
				opts.NumClusters = int(a) + 1
			}
		}
	} else {
		for i := range assign {
			assign[i] = int32(rng.Intn(opts.NumClusters))
		}
	}

	// Cluster centres on a unit hypersphere scaled by 1; within-cluster
	// noise has stddev ClusterSpread (centre-to-centre distance is O(1)).
	var centres [][]float32
	if opts.NumClusters > 0 {
		centres = make([][]float32, opts.NumClusters)
		for c := range centres {
			v := make([]float32, opts.Dim)
			var norm float64
			for d := range v {
				x := rng.NormFloat64()
				v[d] = float32(x)
				norm += x * x
			}
			norm = math.Sqrt(norm)
			for d := range v {
				v[d] = float32(float64(v[d]) / norm)
			}
			centres[c] = v
		}
	}

	vec := make([]float32, opts.Dim)
	for i := 0; i < opts.NumVectors; i++ {
		c := assign[i]
		for d := 0; d < opts.Dim; d++ {
			noise := float32(rng.NormFloat64() * opts.ClusterSpread)
			if c >= 0 {
				vec[d] = centres[c][d] + noise
			} else {
				vec[d] = noise * 4
			}
		}
		fp16.Quantize(vec)
		if err := t.SetVector(ID(i), vec); err != nil {
			panic(err)
		}
	}
	return &Generated{Table: t, Assignments: assign}
}

const fileMagic = "BNDTBL01"

// WriteTo serialises the table in a simple binary format:
// magic | name len | name | dim | numVectors | raw data.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	if err := write([]byte(fileMagic)); err != nil {
		return n, err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(t.Name)))
	if err := write(hdr[:]); err != nil {
		return n, err
	}
	if err := write([]byte(t.Name)); err != nil {
		return n, err
	}
	var shape [8]byte
	binary.LittleEndian.PutUint32(shape[0:], uint32(t.Dim))
	binary.LittleEndian.PutUint32(shape[4:], uint32(t.NumVectors()))
	if err := write(shape[:]); err != nil {
		return n, err
	}
	if err := write(t.data); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadFrom deserialises a table written by WriteTo, replacing the receiver's
// contents.
func (t *Table) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var n int64
	readFull := func(p []byte) error {
		m, err := io.ReadFull(br, p)
		n += int64(m)
		return err
	}
	magic := make([]byte, len(fileMagic))
	if err := readFull(magic); err != nil {
		return n, err
	}
	if string(magic) != fileMagic {
		return n, fmt.Errorf("table: bad magic %q", magic)
	}
	var hdr [4]byte
	if err := readFull(hdr[:]); err != nil {
		return n, err
	}
	nameLen := binary.LittleEndian.Uint32(hdr[:])
	if nameLen > 1<<16 {
		return n, fmt.Errorf("table: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if err := readFull(name); err != nil {
		return n, err
	}
	var shape [8]byte
	if err := readFull(shape[:]); err != nil {
		return n, err
	}
	dim := int(binary.LittleEndian.Uint32(shape[0:]))
	num := int(binary.LittleEndian.Uint32(shape[4:]))
	if dim <= 0 || num < 0 {
		return n, fmt.Errorf("table: invalid shape %d x %d", num, dim)
	}
	data := make([]byte, num*dim*fp16.ByteSize)
	if err := readFull(data); err != nil {
		return n, err
	}
	t.Name = string(name)
	t.Dim = dim
	t.data = data
	return n, nil
}
