package core

import (
	"testing"
)

// TestLookupBatchDedupesRepeatedIDs sends a power-law-style batch where hot
// ids repeat many times and checks (a) every position gets the right
// vector, (b) repeated positions share the deduplicated decode, and (c) the
// counter semantics match the pre-dedupe behaviour: every instance counts
// as a lookup and inherits its unique id's hit/miss classification.
func TestLookupBatchDedupesRepeatedIDs(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 512, 60)
	s, err := Open(testBackendConfig(t, Config{Tables: tables, DRAMBudgetVectors: 64, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// 3 unique ids spread over 12 positions, all cold (first touch).
	ids := []uint32{7, 7, 9, 7, 9, 300, 7, 300, 300, 9, 7, 7}
	vecs, err := s.LookupBatch(0, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != len(ids) {
		t.Fatalf("got %d vectors for %d ids", len(vecs), len(ids))
	}
	for i, id := range ids {
		want, err := s.Lookup(0, id)
		if err != nil {
			t.Fatal(err)
		}
		if !vecsEqual(vecs[i], want) {
			t.Fatalf("position %d (id %d): wrong vector", i, id)
		}
	}
	// Duplicates of one missed id share the same decoded slice — the fan-out
	// is a copy of the slice header, not a second decode.
	if &vecs[0][0] != &vecs[1][0] {
		t.Fatal("duplicate positions of a missed id should share the decoded slice")
	}

	st := s.Stats()[0]
	// 12 batch instances + 12 verification Lookups.
	if st.Lookups != int64(2*len(ids)) {
		t.Fatalf("lookups = %d, want %d", st.Lookups, 2*len(ids))
	}
	// All batch instances were cold: every instance counts as a miss (the
	// pre-dedupe accounting), so the verification pass is all hits.
	if st.Misses != int64(len(ids)) {
		t.Fatalf("misses = %d, want %d (each instance inherits its id's classification)", st.Misses, len(ids))
	}
	if st.Hits != int64(len(ids)) {
		t.Fatalf("hits = %d, want %d", st.Hits, len(ids))
	}

	// A second batch with duplicates over now-cached ids: all instances hit.
	s.ResetStats()
	if _, err := s.LookupBatch(0, []uint32{7, 7, 9, 7}); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()[0]
	if st.Hits != 4 || st.Misses != 0 {
		t.Fatalf("warm duplicate batch: hits=%d misses=%d, want 4/0", st.Hits, st.Misses)
	}
	if st.BlockReads != 0 {
		t.Fatalf("warm duplicate batch issued %d block reads", st.BlockReads)
	}

	// Above the linear-scan threshold the map path takes over: same
	// semantics on a large duplicate-heavy batch.
	big := make([]uint32, 4*dedupeScanThreshold)
	for i := range big {
		big[i] = uint32(400 + i%5) // 5 unique ids, many repeats
	}
	vecs, err = s.LookupBatch(0, big)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range big {
		want, err := s.Lookup(0, id)
		if err != nil {
			t.Fatal(err)
		}
		if !vecsEqual(vecs[i], want) {
			t.Fatalf("large batch position %d (id %d): wrong vector", i, id)
		}
	}
}
