package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bandana/internal/cache"
	"bandana/internal/fp16"
	"bandana/internal/layout"
	"bandana/internal/lru"
	"bandana/internal/metrics"
	"bandana/internal/nvm"
	"bandana/internal/table"
)

// Store is a Bandana embedding store: NVM-resident tables with DRAM caches.
//
// The serving path (Lookup, LookupBatch, ServeRequest) is safe for
// concurrent use and scales with GOMAXPROCS: each table's cache is sharded
// by vector-ID hash with per-shard locks, the trained state is published
// through an atomic pointer (reads take no lock at all), serving counters
// are striped across cache lines, and NVM block reads happen outside any
// lock. Returned vectors are read-only views shared with the cache; callers
// that need to modify one must copy it first.
type Store struct {
	device     *nvm.Device
	ownsDevice bool
	tables     []*storeTable
	byName     map[string]int
	seed       int64
	// dataDir is the persistence directory of a file-backed store ("" for
	// the mem backend); Persist writes the trained state there.
	dataDir string
	// mutateMu serializes whole-store mutators (Train, LoadState) against
	// each other — they rewrite every table and share the single
	// rewrite-marker / state-file commit protocol, which is not reentrant.
	// Serving never takes it.
	mutateMu sync.Mutex
}

// getBlockBuf / putBlockBuf recycle 4 KB block buffers (shared with
// internal/nvm's pool) so the miss path does not allocate one per NVM read.
func getBlockBuf() *[]byte  { return nvm.GetBlockBuf() }
func putBlockBuf(b *[]byte) { nvm.PutBlockBuf(b) }

// batchBufBlocks is the largest batched-miss read served from the pooled
// batch buffer; rarer, larger batches fall back to a one-off allocation.
const batchBufBlocks = 8

// batchBufPool recycles the multi-block read buffers of lookupBatch.
var batchBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, batchBufBlocks*nvm.BlockSize)
		return &b
	},
}

// cachedVec is one cache entry: the decoded vector plus whether it entered
// the cache via prefetch and has not been requested yet (used to attribute
// hits to prefetching). The flag is mutated in place under the owning
// shard's lock; the vector itself is immutable once cached.
type cachedVec struct {
	vec        []float32
	prefetched bool
}

// vecCache is the per-table DRAM cache: vector ID -> decoded vector,
// sharded for concurrent access.
type vecCache = lru.Sharded[uint32, *cachedVec]

// hashID mixes a vector ID into a well-distributed 64-bit hash
// (splitmix-style finalizer). The same hash routes a lookup to its cache
// shard and to its counter stripe.
func hashID(id uint32) uint64 {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newVecCache(capacity, shards int) *vecCache {
	return lru.NewSharded[uint32, *cachedVec](capacity, shards, hashID)
}

// counterStripes is the stripe count for the per-table serving counters.
const counterStripes = 64

// tableState is the trained state of one table. It is immutable once
// published: mutators build a modified copy and atomically swap the pointer,
// so the serving path reads a consistent snapshot with a single atomic load.
type tableState struct {
	layout    *layout.Layout
	counts    []uint32 // per-vector access counts from the training trace
	threshold uint32   // prefetch admission threshold (counts must exceed it)
	prefetch  bool     // whether prefetching is enabled (set by Train)
	policy    cache.AdmissionPolicy
	cache     *vecCache
	cacheCap  int
}

// storeTable is the per-table state.
type storeTable struct {
	// Immutable after Open.
	index        int
	name         string
	src          *table.Table // authoritative copy used for rewrites/updates
	dim          int
	vecBytes     int
	blockVectors int
	blockBase    int // first device block of this table
	numBlocks    int
	shards       int

	// state is the published trained state; the serving path loads it once
	// per operation. stateMu serializes mutators (Train, LoadState,
	// resizeCache, SetAdmissionPolicy), never readers.
	state   atomic.Pointer[tableState]
	stateMu sync.Mutex

	// updateMu serializes read-modify-write vector updates (which would
	// otherwise lose writes to the shared block) and excludes them from
	// whole-table rewrites (rewriteTable takes it too).
	updateMu sync.Mutex
	// rewriteMu guards the invariant that the published layout matches the
	// bytes on NVM: rewriteTable holds it exclusively while installing a
	// new layout and rewriting the blocks; the miss path holds it shared
	// while reading a block and decoding slots from it. Cache hits and
	// state snapshots never touch it.
	rewriteMu sync.RWMutex
	// epoch is bumped by every NVM mutation (UpdateVector, rewriteTable)
	// so that an in-flight miss does not cache a vector decoded from a
	// block read before the mutation.
	epoch atomic.Uint64

	// Serving counters, striped across cache lines so concurrent lookups
	// on different vectors do not contend; the stripe is chosen by the
	// same hash that picks the cache shard.
	lookups       *metrics.StripedCounter
	hits          *metrics.StripedCounter
	misses        *metrics.StripedCounter
	blockReads    *metrics.StripedCounter
	prefetchAdds  *metrics.StripedCounter
	prefetchHits  *metrics.StripedCounter
	lookupLatency *metrics.Histogram
}

// loadState returns the current trained-state snapshot.
func (st *storeTable) loadState() *tableState { return st.state.Load() }

// mutateState applies fn to a copy of the current state and atomically
// publishes the result. In-flight serving operations keep using the
// snapshot they loaded; subsequent operations see the new state.
func (st *storeTable) mutateState(fn func(*tableState)) {
	st.stateMu.Lock()
	next := *st.state.Load()
	fn(&next)
	st.state.Store(&next)
	st.stateMu.Unlock()
}

// tableSpan is one table's contiguous block range on the device.
type tableSpan struct{ base, blocks, blockVectors int }

// computeSpans lays the tables out as contiguous block ranges and returns
// the spans plus the total device size in blocks. The layout is a pure
// function of the table geometries, so a reopened file-backed store derives
// identical spans from its manifest.
func computeSpans(tables []*table.Table) ([]tableSpan, int) {
	spans := make([]tableSpan, len(tables))
	next := 0
	for i, t := range tables {
		bv := nvm.BlockSize / t.VectorBytes()
		if bv < 1 {
			bv = 1
		}
		blocks := (t.NumVectors() + bv - 1) / bv
		spans[i] = tableSpan{base: next, blocks: blocks, blockVectors: bv}
		next += blocks
	}
	return spans, next
}

// Open creates a Store, sizes (or adopts) the NVM device, writes every table
// to NVM in its original order and sets up per-table caches with an even
// split of the DRAM budget. Prefetching is disabled until Train is called.
//
// With Config.Backend == BackendFile the blocks live in a durable journaled
// file under Config.DataDir: the first Open writes the tables to disk, and
// later Opens of the same directory restore tables, placement and trained
// state without rewriting or retraining (see Persist).
func Open(cfg Config) (*Store, error) {
	switch cfg.Backend {
	case "", BackendMem:
		if cfg.DataDir != "" {
			return nil, fmt.Errorf("core: DataDir requires Backend %q", BackendFile)
		}
		return openMem(cfg)
	case BackendFile:
		return openFileBacked(cfg)
	default:
		return nil, fmt.Errorf("core: unknown backend %q (want %q or %q)", cfg.Backend, BackendMem, BackendFile)
	}
}

// openMem is the RAM-backed (or caller-supplied-device) open path.
func openMem(cfg Config) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	spans, totalBlocks := computeSpans(cfg.Tables)
	device := cfg.Device
	owns := false
	if device == nil {
		device = nvm.NewDevice(nvm.DeviceConfig{NumBlocks: totalBlocks, Seed: cfg.Seed})
		owns = true
	} else if device.NumBlocks() < totalBlocks {
		return nil, fmt.Errorf("core: device has %d blocks, need %d", device.NumBlocks(), totalBlocks)
	}
	s, err := buildStore(cfg, device, owns, spans)
	if err == nil {
		err = s.writeAllTables()
	}
	if err != nil {
		if owns {
			device.Close()
		}
		return nil, err
	}
	return s, nil
}

// buildStore assembles the Store skeleton (per-table state, caches,
// counters) over an existing device without touching the device contents.
func buildStore(cfg Config, device *nvm.Device, owns bool, spans []tableSpan) (*Store, error) {
	// validate rejects an empty table list, but the budget split below
	// divides by the table count — keep an explicit guard so a future
	// validate change cannot turn this into a panic.
	if len(cfg.Tables) == 0 {
		return nil, fmt.Errorf("core: config has no tables")
	}
	budget := cfg.DRAMBudgetVectors
	if budget <= 0 {
		budget = cfg.totalVectors() / 20
		if budget < len(cfg.Tables) {
			budget = len(cfg.Tables)
		}
	}
	shards := cfg.CacheShards
	if shards <= 0 {
		shards = DefaultCacheShards()
	}

	s := &Store{
		device:     device,
		ownsDevice: owns,
		byName:     make(map[string]int, len(cfg.Tables)),
		seed:       cfg.Seed,
		dataDir:    cfg.DataDir,
	}
	perTable := budget / len(cfg.Tables)
	if perTable < 1 {
		perTable = 1
	}
	for i, t := range cfg.Tables {
		st := &storeTable{
			index:         i,
			name:          t.Name,
			src:           t,
			dim:           t.Dim,
			vecBytes:      t.VectorBytes(),
			blockVectors:  spans[i].blockVectors,
			blockBase:     spans[i].base,
			numBlocks:     spans[i].blocks,
			shards:        shards,
			lookups:       metrics.NewStripedCounter(counterStripes),
			hits:          metrics.NewStripedCounter(counterStripes),
			misses:        metrics.NewStripedCounter(counterStripes),
			blockReads:    metrics.NewStripedCounter(counterStripes),
			prefetchAdds:  metrics.NewStripedCounter(counterStripes),
			prefetchHits:  metrics.NewStripedCounter(counterStripes),
			lookupLatency: metrics.NewLatencyHistogram(),
		}
		st.state.Store(&tableState{
			layout:   layout.Identity(t.NumVectors(), spans[i].blockVectors),
			cacheCap: perTable,
			cache:    newVecCache(perTable, shards),
		})
		s.tables = append(s.tables, st)
		s.byName[t.Name] = i
	}
	return s, nil
}

// writeAllTables writes every table's blocks to the device in the currently
// published layout (identity after buildStore).
func (s *Store) writeAllTables() error {
	for _, st := range s.tables {
		if err := s.rewriteTable(st, nil); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the store's resources (and the device if the store created
// it).
func (s *Store) Close() error {
	if s.ownsDevice {
		return s.device.Close()
	}
	return nil
}

// Device exposes the underlying NVM device (for stats and experiments).
func (s *Store) Device() *nvm.Device { return s.device }

// NumTables returns the number of tables in the store.
func (s *Store) NumTables() int { return len(s.tables) }

// TableNames returns the table names in index order.
func (s *Store) TableNames() []string {
	names := make([]string, len(s.tables))
	for i, t := range s.tables {
		names[i] = t.name
	}
	return names
}

// TableIndex resolves a table name to its index.
func (s *Store) TableIndex(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown table %q", name)
	}
	return i, nil
}

// SetAdmissionPolicy installs a prefetch-admission policy for one table and
// enables prefetching; a nil policy disables prefetching. The same policy
// implementations drive the trace simulator (internal/sim), so a policy
// evaluated there behaves identically here.
func (s *Store) SetAdmissionPolicy(tableIdx int, p cache.AdmissionPolicy) error {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return err
	}
	st.mutateState(func(ts *tableState) {
		ts.policy = p
		ts.prefetch = p != nil
	})
	return nil
}

// rewriteTable atomically installs a state mutation (usually a new layout)
// and rewrites the table's NVM block range to match it. It excludes
// concurrent vector updates (updateMu) and miss-path block reads
// (rewriteMu), so the serving path never decodes a block with the wrong
// layout: a miss holding rewriteMu shared sees either the old layout with
// the old bytes or the new layout with the new bytes.
func (s *Store) rewriteTable(st *storeTable, mutate func(*tableState)) error {
	st.updateMu.Lock()
	defer st.updateMu.Unlock()
	st.rewriteMu.Lock()
	defer st.rewriteMu.Unlock()
	if mutate != nil {
		st.mutateState(mutate)
	}
	st.epoch.Add(1)
	defer st.epoch.Add(1)
	l := st.loadState().layout
	bufp := getBlockBuf()
	defer putBlockBuf(bufp)
	buf := *bufp
	var members []uint32
	for b := 0; b < st.numBlocks; b++ {
		for i := range buf {
			buf[i] = 0
		}
		members = l.BlockMembers(b, members[:0])
		for slot, id := range members {
			raw, err := st.src.Raw(id)
			if err != nil {
				return fmt.Errorf("core: table %q: %w", st.name, err)
			}
			copy(buf[slot*st.vecBytes:], raw)
		}
		// Bulk path: a whole-table rewrite is not block-wise crash-atomic
		// anyway (the rewrite marker / manifest is the commit point), so
		// skip the per-block write-ahead journal.
		if err := s.device.WriteBlockBulk(st.blockBase+b, buf); err != nil {
			return fmt.Errorf("core: table %q block %d: %w", st.name, b, err)
		}
	}
	return nil
}

// Lookup returns the embedding vector id of table tableIdx. The returned
// slice is a read-only view shared with the cache; it stays valid until the
// vector is updated, but must not be modified by the caller.
func (s *Store) Lookup(tableIdx int, id uint32) ([]float32, error) {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return nil, err
	}
	return st.lookup(s.device, id)
}

// LookupByName is Lookup with a table name.
func (s *Store) LookupByName(name string, id uint32) ([]float32, error) {
	i, err := s.TableIndex(name)
	if err != nil {
		return nil, err
	}
	return s.Lookup(i, id)
}

// LookupBatch returns the embeddings of every id in ids from table tableIdx.
// Lookups that miss the cache are grouped by NVM block, so a batch that hits
// k distinct blocks issues exactly k block reads regardless of how many of
// its vectors live in each block — the batched analogue of the paper's
// prefetching. Returned slices follow the same read-only contract as Lookup.
func (s *Store) LookupBatch(tableIdx int, ids []uint32) ([][]float32, error) {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return nil, err
	}
	return st.lookupBatch(s.device, ids)
}

// Request is one recommendation request: for each table (by index), the
// vector IDs to look up.
type Request [][]uint32

// ServeRequest resolves every lookup of a request, returning the embeddings
// grouped by table.
func (s *Store) ServeRequest(req Request) ([][][]float32, error) {
	if len(req) > len(s.tables) {
		return nil, fmt.Errorf("core: request has %d tables, store has %d", len(req), len(s.tables))
	}
	out := make([][][]float32, len(req))
	for ti, ids := range req {
		if len(ids) == 0 {
			continue
		}
		vecs, err := s.LookupBatch(ti, ids)
		if err != nil {
			return nil, err
		}
		out[ti] = vecs
	}
	return out, nil
}

// UpdateVector overwrites the embedding of vector id in table tableIdx
// (e.g. after periodic re-training of the model). The write goes through to
// NVM (read-modify-write of the containing block) and invalidates the cached
// copy.
func (s *Store) UpdateVector(tableIdx int, id uint32, vec []float32) error {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return err
	}
	return st.update(s.device, id, vec)
}

func (s *Store) tableAt(i int) (*storeTable, error) {
	if i < 0 || i >= len(s.tables) {
		return nil, fmt.Errorf("core: table index %d out of range [0,%d)", i, len(s.tables))
	}
	return s.tables[i], nil
}

// cacheGet serves a cache hit for id, clearing the prefetched flag and
// updating counters. It returns the cached vector or nil on a miss. h is
// hashID(id), shared between shard routing and counter striping.
func (st *storeTable) cacheGet(ts *tableState, id uint32, h uint64) []float32 {
	var out []float32
	var wasPrefetch bool
	ts.cache.Do(id, func(c *lru.Cache[uint32, *cachedVec]) {
		if e, ok := c.Get(id); ok {
			out = e.vec
			wasPrefetch = e.prefetched
			e.prefetched = false
		}
	})
	if out == nil {
		return nil
	}
	st.hits.Inc(h)
	if wasPrefetch {
		st.prefetchHits.Inc(h)
	}
	return out
}

// cacheInsert caches a decoded vector at queue position pos unless the table
// was rewritten since epoch was read (in which case the decode may be
// stale). Requested vectors pass pos 0 and prefetched=false; admitted
// prefetches carry the policy's position.
func (st *storeTable) cacheInsert(ts *tableState, id uint32, vec []float32, pos float64, prefetched bool, epoch uint64) bool {
	inserted := false
	ts.cache.Do(id, func(c *lru.Cache[uint32, *cachedVec]) {
		if st.epoch.Load() != epoch {
			return
		}
		if prefetched && c.Contains(id) {
			// A concurrent lookup already cached this vector as a
			// requested one; do not demote it to a prefetch.
			return
		}
		c.AddAt(id, &cachedVec{vec: vec, prefetched: prefetched}, pos)
		inserted = true
	})
	return inserted
}

// admitBlock offers every not-yet-cached vector of the freshly read block to
// the admission policy, decoding and caching the ones it admits. requested
// reports IDs that were explicitly asked for in this operation (they are
// cached separately and must not be double-counted as prefetches).
func (st *storeTable) admitBlock(ts *tableState, buf []byte, epoch uint64, members []uint32, requested func(uint32) bool) {
	for mslot, other := range members {
		if requested(other) || ts.cache.Contains(other) {
			continue
		}
		admit, pos := ts.policy.AdmitPrefetch(other)
		if !admit {
			continue
		}
		dec := make([]float32, st.dim)
		fp16.DecodeSlice(dec, buf[mslot*st.vecBytes:(mslot+1)*st.vecBytes])
		if st.cacheInsert(ts, other, dec, pos, true, epoch) {
			st.prefetchAdds.Inc(hashID(other))
		}
	}
}

// lookup serves one vector read for this table.
func (st *storeTable) lookup(device *nvm.Device, id uint32) ([]float32, error) {
	if int(id) >= st.src.NumVectors() {
		return nil, fmt.Errorf("core: table %q: %w: %d", st.name, table.ErrBadVector, id)
	}
	ts := st.loadState()
	h := hashID(id)
	st.lookups.Inc(h)
	if ts.policy != nil {
		ts.policy.OnAccess(id)
	}
	if out := st.cacheGet(ts, id, h); out != nil {
		return out, nil
	}
	st.misses.Inc(h)

	// Hold the rewrite lock shared for the block read + decode: under it,
	// the published layout is guaranteed to match the bytes on NVM.
	// Independent misses still overlap at the device (shared mode).
	st.rewriteMu.RLock()
	defer st.rewriteMu.RUnlock()
	ts = st.loadState()
	epoch := st.epoch.Load()
	block := ts.layout.BlockOf(id)
	bufp := getBlockBuf()
	defer putBlockBuf(bufp)
	buf := *bufp
	lat, err := device.ReadBlock(st.blockBase+block, buf)
	if err != nil {
		return nil, fmt.Errorf("core: table %q: %w", st.name, err)
	}
	st.blockReads.Inc(h)
	st.lookupLatency.Observe(lat)

	// Decode the requested vector once; the cache and the caller share the
	// same immutable slice.
	slot := ts.layout.SlotOf(id)
	want := make([]float32, st.dim)
	fp16.DecodeSlice(want, buf[slot*st.vecBytes:(slot+1)*st.vecBytes])
	st.cacheInsert(ts, id, want, 0, false, epoch)

	// Prefetch co-located vectors that pass the admission policy.
	if ts.prefetch && ts.policy != nil {
		members := ts.layout.BlockMembers(block, nil)
		st.admitBlock(ts, buf, epoch, members, func(other uint32) bool { return other == id })
	}
	return want, nil
}

// lookupBatch serves a set of vector reads, grouping cache misses by NVM
// block so that each distinct block is read only once per batch.
func (st *storeTable) lookupBatch(device *nvm.Device, ids []uint32) ([][]float32, error) {
	for _, id := range ids {
		if int(id) >= st.src.NumVectors() {
			return nil, fmt.Errorf("core: table %q: %w: %d", st.name, table.ErrBadVector, id)
		}
	}
	out := make([][]float32, len(ids))
	ts := st.loadState()

	// Pass 1: serve cache hits and collect misses.
	type missRef struct {
		pos int
		id  uint32
	}
	var missed []missRef
	for i, id := range ids {
		h := hashID(id)
		st.lookups.Inc(h)
		if ts.policy != nil {
			ts.policy.OnAccess(id)
		}
		if got := st.cacheGet(ts, id, h); got != nil {
			out[i] = got
			continue
		}
		st.misses.Inc(h)
		missed = append(missed, missRef{pos: i, id: id})
	}
	if len(missed) == 0 {
		return out, nil
	}

	// Pass 2: one NVM read per distinct block; decode all requested vectors
	// from it and apply the usual prefetch admission to the rest. Blocks are
	// processed in ascending order so a batch's cache effects are
	// deterministic. The whole pass holds the rewrite lock shared so the
	// layout used for grouping and decoding matches the bytes on NVM.
	st.rewriteMu.RLock()
	defer st.rewriteMu.RUnlock()
	ts = st.loadState()
	missesByBlock := make(map[int][]missRef)
	for _, ref := range missed {
		block := ts.layout.BlockOf(ref.id)
		missesByBlock[block] = append(missesByBlock[block], ref)
	}
	blocks := make([]int, 0, len(missesByBlock))
	for block := range missesByBlock {
		blocks = append(blocks, block)
	}
	sort.Ints(blocks)

	// One batched device read covers every missed block: the reads overlap
	// at the device (and collapse into offset I/O on the file backend)
	// instead of being issued one by one. Small batches reuse pooled
	// buffers so the steady-state miss path stays allocation-free.
	var batch []byte
	switch {
	case len(blocks) == 1:
		bufp := getBlockBuf()
		defer putBlockBuf(bufp)
		batch = *bufp
	case len(blocks) <= batchBufBlocks:
		bufp := batchBufPool.Get().(*[]byte)
		defer batchBufPool.Put(bufp)
		batch = (*bufp)[:len(blocks)*nvm.BlockSize]
	default:
		batch = make([]byte, len(blocks)*nvm.BlockSize)
	}
	abs := make([]int, len(blocks))
	for i, block := range blocks {
		abs[i] = st.blockBase + block
	}
	epoch := st.epoch.Load()
	lat, err := device.ReadBlocks(abs, batch)
	if err != nil {
		return nil, fmt.Errorf("core: table %q: %w", st.name, err)
	}
	st.lookupLatency.Observe(lat)

	var members []uint32
	for bi, block := range blocks {
		refs := missesByBlock[block]
		buf := batch[bi*nvm.BlockSize : (bi+1)*nvm.BlockSize]
		st.blockReads.Inc(uint64(block))

		requested := make(map[uint32]struct{}, len(refs))
		for _, ref := range refs {
			slot := ts.layout.SlotOf(ref.id)
			dec := make([]float32, st.dim)
			fp16.DecodeSlice(dec, buf[slot*st.vecBytes:(slot+1)*st.vecBytes])
			st.cacheInsert(ts, ref.id, dec, 0, false, epoch)
			out[ref.pos] = dec
			requested[ref.id] = struct{}{}
		}
		if ts.prefetch && ts.policy != nil {
			members = ts.layout.BlockMembers(block, members[:0])
			st.admitBlock(ts, buf, epoch, members, func(other uint32) bool {
				_, ok := requested[other]
				return ok
			})
		}
	}
	return out, nil
}

// update rewrites one vector on NVM and in the source table, and drops any
// cached copy.
func (st *storeTable) update(device *nvm.Device, id uint32, vec []float32) error {
	if len(vec) != st.dim {
		return fmt.Errorf("core: table %q: vector has %d elements, want %d", st.name, len(vec), st.dim)
	}
	// Serialize concurrent updates: the read-modify-write below would lose
	// one of two concurrent writes to the same block.
	st.updateMu.Lock()
	defer st.updateMu.Unlock()
	if err := st.src.SetVector(id, vec); err != nil {
		return fmt.Errorf("core: table %q: %w", st.name, err)
	}
	ts := st.loadState()

	// Read-modify-write the containing block.
	block := ts.layout.BlockOf(id)
	bufp := getBlockBuf()
	defer putBlockBuf(bufp)
	buf := *bufp
	if _, err := device.ReadBlock(st.blockBase+block, buf); err != nil {
		return fmt.Errorf("core: table %q: %w", st.name, err)
	}
	slot := ts.layout.SlotOf(id)
	raw, err := st.src.Raw(id)
	if err != nil {
		return err
	}
	copy(buf[slot*st.vecBytes:], raw)
	if err := device.WriteBlock(st.blockBase+block, buf); err != nil {
		return fmt.Errorf("core: table %q: %w", st.name, err)
	}
	// Bump the epoch before invalidating so that a concurrent miss that
	// read the block before the write cannot re-cache the stale vector.
	st.epoch.Add(1)
	ts.cache.Remove(id)
	return nil
}

// resizeCache replaces the table's cache with a fresh one of the given
// capacity (losing its contents).
func (st *storeTable) resizeCache(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	st.mutateState(func(ts *tableState) {
		ts.cacheCap = capacity
		ts.cache = newVecCache(capacity, st.shards)
	})
}
