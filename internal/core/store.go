package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bandana/internal/cache"
	"bandana/internal/iosched"
	"bandana/internal/layout"
	"bandana/internal/lru"
	"bandana/internal/metrics"
	"bandana/internal/nvm"
	"bandana/internal/table"
	"bandana/internal/trace"
)

// Store is a Bandana embedding store: NVM-resident tables with DRAM caches.
//
// The serving path (Lookup, LookupBatch, ServeRequest) is safe for
// concurrent use and scales with GOMAXPROCS: each table's cache is sharded
// by vector-ID hash with per-shard locks, the trained state is published
// through an atomic pointer (reads take no lock at all), serving counters
// are striped across cache lines, and NVM block reads happen outside any
// lock. Returned vectors are read-only views shared with the cache; callers
// that need to modify one must copy it first.
type Store struct {
	device     *nvm.Device
	ownsDevice bool
	// sched is the unified async block I/O scheduler all miss-path and
	// background reads are submitted to; nil when Config.IOSched is
	// disabled (reads then go to the device inline).
	sched  *iosched.Scheduler
	tables []*storeTable
	byName map[string]int
	seed   int64
	// dataDir is the persistence directory of a file-backed store ("" for
	// the mem backend); Persist writes the trained state there.
	dataDir string
	// recoveredMigration records that this reopen redid a committed
	// background re-layout that the previous process did not finish.
	recoveredMigration bool
	// readOnly rejects every mutator of the servable image (Config.ReadOnly;
	// how a replica serves a bootstrapped snapshot).
	readOnly bool
	// snapSeq identifies the store's current servable image for snapshot
	// replication; it advances after every committed mutation (see
	// snapshot.go).
	snapSeq atomic.Uint64
	// mutateMu serializes whole-store mutators (Train, LoadState, AdaptNow
	// and the background migrations it drives) against each other — they
	// rewrite tables and share the single rewrite-marker / migration /
	// state-file commit protocols, which are not reentrant. Serving never
	// takes it.
	mutateMu sync.Mutex
	// adapt is the online adaptation engine; nil until StartAdaptation.
	adapt atomic.Pointer[adapter]
	// migrationPoisoned disables further background migrations after one
	// whose copy and rollback both failed: the pending migration record is
	// the repair and must not be disturbed before the next open.
	migrationPoisoned atomic.Bool
	// deltaLog is the append-only update log of the write-optimized update
	// path; nil when Config.UpdateLog is off (updates then read-modify-write
	// through to NVM).
	deltaLog *deltaLog
	// compactMu serializes compactions (the background worker and direct
	// CompactDeltas calls); compactCh/compactStop/compactDone run the worker.
	compactMu   sync.Mutex
	compactCh   chan struct{}
	compactStop chan struct{}
	compactDone chan struct{}
}

// RecoveredMigration reports whether opening this store redid a background
// re-layout interrupted by a crash of the previous process.
func (s *Store) RecoveredMigration() bool { return s.recoveredMigration }

// getBlockBuf / putBlockBuf recycle 4 KB block buffers (shared with
// internal/nvm's pool) so the miss path does not allocate one per NVM read.
func getBlockBuf() *[]byte  { return nvm.GetBlockBuf() }
func putBlockBuf(b *[]byte) { nvm.PutBlockBuf(b) }

// cachedVec is one cache entry: the decoded vector plus whether it entered
// the cache via prefetch and has not been requested yet (used to attribute
// hits to prefetching). The flag is mutated in place under the owning
// shard's lock; the vector itself is immutable once cached.
//
// raw is the vector's fp16 encoding, served zero-decode by the binary wire
// protocol's read path. It is filled from the block image when a raw lookup
// misses, or built lazily (one re-encode, under the shard lock) when a raw
// lookup hits an entry cached by the float path; entries never served raw
// pay nothing. Once set it is immutable, like vec.
type cachedVec struct {
	vec        []float32
	raw        []byte
	prefetched bool
}

// vecCache is the per-table DRAM cache: vector ID -> decoded vector,
// sharded for concurrent access.
type vecCache = lru.Sharded[uint32, *cachedVec]

// hashID mixes a vector ID into a well-distributed 64-bit hash
// (splitmix-style finalizer). The same hash routes a lookup to its cache
// shard and to its counter stripe.
func hashID(id uint32) uint64 {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newVecCache(capacity, shards int) *vecCache {
	return lru.NewSharded[uint32, *cachedVec](capacity, shards, hashID)
}

// counterStripes is the stripe count for the per-table serving counters.
const counterStripes = 64

// newStageHistogram builds the layout used by the per-stage latency
// histograms (probe, queue wait, decode): the sub-microsecond stages need
// finer resolution than the device-latency layout, so buckets start at 10 ns
// (0.01 us) and run to 1 s with the usual ~5% relative bucket error.
func newStageHistogram() *metrics.Histogram {
	return metrics.NewHistogram(0.01, 1.05, 1e6)
}

// tableState is the trained state of one table. It is immutable once
// published: mutators build a modified copy and atomically swap the pointer,
// so the serving path reads a consistent snapshot with a single atomic load.
type tableState struct {
	layout    *layout.Layout
	counts    []uint32 // per-vector access counts from the training trace
	threshold uint32   // prefetch admission threshold (counts must exceed it)
	prefetch  bool     // whether prefetching is enabled (set by Train)
	policy    cache.AdmissionPolicy
	cache     tableCache
	cacheCap  int
}

// storeTable is the per-table state.
type storeTable struct {
	// Immutable after Open.
	index        int
	name         string
	src          *table.Table // authoritative copy used for rewrites/updates
	dim          int
	vecBytes     int
	blockVectors int
	blockBase    int // first device block of this table
	numBlocks    int
	shards       int
	engine       string // canonical cache engine name (see cacheengine.go)

	// state is the published trained state; the serving path loads it once
	// per operation. stateMu serializes mutators (Train, LoadState,
	// resizeCache, SetAdmissionPolicy), never readers.
	state   atomic.Pointer[tableState]
	stateMu sync.Mutex

	// updateMu serializes read-modify-write vector updates (which would
	// otherwise lose writes to the shared block) and excludes them from
	// whole-table rewrites (rewriteTable takes it too).
	updateMu sync.Mutex
	// rewriteMu guards the invariant that the published layout matches the
	// bytes on NVM: rewriteTable holds it exclusively while installing a
	// new layout and rewriting the blocks; the miss path holds it shared
	// while reading a block and decoding slots from it. Cache hits and
	// state snapshots never touch it.
	rewriteMu sync.RWMutex
	// epoch is bumped by every NVM mutation (UpdateVector, rewriteTable)
	// so that an in-flight miss does not cache a vector decoded from a
	// block read before the mutation. Delta updates bump it too (the block
	// image goes stale relative to the overlay).
	epoch atomic.Uint64
	// overlay shadows the block image with the raw bytes of updates not yet
	// compacted into it; nil when the store runs without an update log.
	overlay *deltaOverlay

	// recorder captures a sampled window of the live access stream for the
	// adaptation engine; nil (one atomic load on the serving path) while
	// adaptation is off.
	recorder atomic.Pointer[trace.Recorder]

	// sched mirrors Store.sched (nil = scheduler off) so the per-table
	// serving paths can submit reads without reaching back to the store.
	sched *iosched.Scheduler

	// Serving counters, striped across cache lines so concurrent lookups
	// on different vectors do not contend; the stripe is chosen by the
	// same hash that picks the cache shard.
	lookups        *metrics.StripedCounter
	hits           *metrics.StripedCounter
	deltaHits      *metrics.StripedCounter
	misses         *metrics.StripedCounter
	blockReads     *metrics.StripedCounter
	coalescedReads *metrics.StripedCounter
	prefetchAdds   *metrics.StripedCounter
	prefetchHits   *metrics.StripedCounter
	// lookupLatency is the device-service component of miss reads (the
	// historical "lookup latency"); the histograms below decompose the rest
	// of a lookup's time. probeLatency is sampled (see probeSampleMask),
	// queueWaitLatency is only fed when the I/O scheduler is on, and
	// decodeLatency covers requested-vector fp16 decodes.
	lookupLatency    *metrics.Histogram
	probeLatency     *metrics.Histogram
	queueWaitLatency *metrics.Histogram
	decodeLatency    *metrics.Histogram
}

// loadState returns the current trained-state snapshot.
func (st *storeTable) loadState() *tableState { return st.state.Load() }

// mutateState applies fn to a copy of the current state and atomically
// publishes the result. In-flight serving operations keep using the
// snapshot they loaded; subsequent operations see the new state.
func (st *storeTable) mutateState(fn func(*tableState)) {
	st.stateMu.Lock()
	next := *st.state.Load()
	fn(&next)
	st.state.Store(&next)
	st.stateMu.Unlock()
}

// tableSpan is one table's contiguous block range on the device.
type tableSpan struct{ base, blocks, blockVectors int }

// computeSpans lays the tables out as contiguous block ranges and returns
// the spans plus the total device size in blocks. The layout is a pure
// function of the table geometries, so a reopened file-backed store derives
// identical spans from its manifest.
func computeSpans(tables []*table.Table) ([]tableSpan, int) {
	spans := make([]tableSpan, len(tables))
	next := 0
	for i, t := range tables {
		bv := nvm.BlockSize / t.VectorBytes()
		if bv < 1 {
			bv = 1
		}
		blocks := (t.NumVectors() + bv - 1) / bv
		spans[i] = tableSpan{base: next, blocks: blocks, blockVectors: bv}
		next += blocks
	}
	return spans, next
}

// Open creates a Store, sizes (or adopts) the NVM device, writes every table
// to NVM in its original order and sets up per-table caches with an even
// split of the DRAM budget. Prefetching is disabled until Train is called.
//
// With Config.Backend == BackendFile the blocks live in a durable journaled
// file under Config.DataDir: the first Open writes the tables to disk, and
// later Opens of the same directory restore tables, placement and trained
// state without rewriting or retraining (see Persist).
func Open(cfg Config) (*Store, error) {
	switch cfg.Backend {
	case "", BackendMem:
		if cfg.DataDir != "" {
			return nil, fmt.Errorf("core: DataDir requires Backend %q", BackendFile)
		}
		return openMem(cfg)
	case BackendFile:
		return openFileBacked(cfg)
	default:
		return nil, fmt.Errorf("core: unknown backend %q (want %q or %q)", cfg.Backend, BackendMem, BackendFile)
	}
}

// openMem is the RAM-backed (or caller-supplied-device) open path.
func openMem(cfg Config) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	spans, totalBlocks := computeSpans(cfg.Tables)
	device := cfg.Device
	owns := false
	if device == nil {
		device = nvm.NewDevice(nvm.DeviceConfig{NumBlocks: totalBlocks, Seed: cfg.Seed})
		owns = true
	} else if device.NumBlocks() < totalBlocks {
		return nil, fmt.Errorf("core: device has %d blocks, need %d", device.NumBlocks(), totalBlocks)
	}
	s, err := buildStore(cfg, device, owns, spans)
	if err != nil {
		if owns {
			device.Close()
		}
		return nil, err
	}
	if err := s.writeAllTables(); err != nil {
		// Close the store, not just the device: the I/O scheduler's
		// dispatcher must stop too. A caller-supplied device stays open
		// (Close only closes owned devices), matching the old behaviour.
		s.Close()
		return nil, err
	}
	return s, nil
}

// buildStore assembles the Store skeleton (per-table state, caches,
// counters) over an existing device without touching the device contents.
func buildStore(cfg Config, device *nvm.Device, owns bool, spans []tableSpan) (*Store, error) {
	// validate rejects an empty table list, but the budget split below
	// divides by the table count — keep an explicit guard so a future
	// validate change cannot turn this into a panic.
	if len(cfg.Tables) == 0 {
		return nil, fmt.Errorf("core: config has no tables")
	}
	budget := cfg.DRAMBudgetVectors
	if budget <= 0 {
		budget = cfg.totalVectors() / 20
		if budget < len(cfg.Tables) {
			budget = len(cfg.Tables)
		}
	}
	shards := cfg.CacheShards
	if shards <= 0 {
		shards = DefaultCacheShards()
	}
	engine, err := normalizeCacheEngine(cfg.CacheEngine)
	if err != nil {
		return nil, err
	}

	s := &Store{
		device:     device,
		ownsDevice: owns,
		byName:     make(map[string]int, len(cfg.Tables)),
		seed:       cfg.Seed,
		dataDir:    cfg.DataDir,
		readOnly:   cfg.ReadOnly,
	}
	if cfg.IOSched.Enabled {
		sched, err := iosched.New(device, iosched.Config{
			QueueDepth: cfg.IOSched.QueueDepth,
			Window:     cfg.IOSched.Window,
			NoCoalesce: cfg.IOSched.NoCoalesce,
		})
		if err != nil {
			return nil, err
		}
		s.sched = sched
	}
	s.snapSeq.Store(initialSnapshotSeq(cfg.InitialSnapshotSeq))
	if cfg.UpdateLog.Enabled {
		// The log window anchors at the initial seq: the first update gets
		// seq base+1, so a follower that bootstrapped the image at `base` can
		// tail from there. A file-backed store mirrors the log on disk for
		// crash recovery (reopen replays and removes any previous log before
		// reaching this point).
		l, err := newDeltaLog(cfg.UpdateLog, s.snapSeq.Load(), cfg.DataDir, cfg.Sync == nvm.SyncAlways)
		if err != nil {
			if s.sched != nil {
				s.sched.Close()
			}
			return nil, err
		}
		s.deltaLog = l
	}
	perTable := budget / len(cfg.Tables)
	if perTable < 1 {
		perTable = 1
	}
	for i, t := range cfg.Tables {
		st := &storeTable{
			index:            i,
			name:             t.Name,
			src:              t,
			dim:              t.Dim,
			vecBytes:         t.VectorBytes(),
			blockVectors:     spans[i].blockVectors,
			blockBase:        spans[i].base,
			numBlocks:        spans[i].blocks,
			shards:           shards,
			engine:           engine,
			lookups:          metrics.NewStripedCounter(counterStripes),
			hits:             metrics.NewStripedCounter(counterStripes),
			deltaHits:        metrics.NewStripedCounter(counterStripes),
			misses:           metrics.NewStripedCounter(counterStripes),
			blockReads:       metrics.NewStripedCounter(counterStripes),
			coalescedReads:   metrics.NewStripedCounter(counterStripes),
			prefetchAdds:     metrics.NewStripedCounter(counterStripes),
			prefetchHits:     metrics.NewStripedCounter(counterStripes),
			lookupLatency:    metrics.NewLatencyHistogram(),
			probeLatency:     newStageHistogram(),
			queueWaitLatency: newStageHistogram(),
			decodeLatency:    newStageHistogram(),
			sched:            s.sched,
		}
		st.state.Store(&tableState{
			layout:   layout.Identity(t.NumVectors(), spans[i].blockVectors),
			cacheCap: perTable,
			cache:    newTableCache(engine, perTable, shards, t.Dim),
		})
		if s.deltaLog != nil {
			st.overlay = newDeltaOverlay()
		}
		s.tables = append(s.tables, st)
		s.byName[t.Name] = i
	}
	if s.deltaLog != nil {
		s.compactCh = make(chan struct{}, 1)
		s.compactStop = make(chan struct{})
		s.compactDone = make(chan struct{})
		go s.compactLoop()
	}
	return s, nil
}

// Close stops the adaptation engine (if running), drains and stops the I/O
// scheduler, and releases the store's resources (and the device if the
// store created it).
func (s *Store) Close() error {
	s.StopAdaptation()
	if s.deltaLog != nil {
		// The compactor uses the scheduler and the device; it must be fully
		// stopped before either goes away.
		close(s.compactStop)
		<-s.compactDone
	}
	if s.sched != nil {
		// Drain before the device goes away: queued reads complete, late
		// submitters get ErrClosed instead of racing a closed device.
		s.sched.Close()
	}
	var logErr error
	if s.deltaLog != nil {
		logErr = s.deltaLog.close()
	}
	if s.ownsDevice {
		if err := s.device.Close(); err != nil {
			return err
		}
	}
	return logErr
}

// Device exposes the underlying NVM device (for stats and experiments).
func (s *Store) Device() *nvm.Device { return s.device }

// IOSchedStats returns a snapshot of the I/O scheduler's counters; ok is
// false when the store runs without a scheduler.
func (s *Store) IOSchedStats() (st iosched.Stats, ok bool) {
	if s.sched == nil {
		return iosched.Stats{}, false
	}
	return s.sched.Stats(), true
}

// NumTables returns the number of tables in the store.
func (s *Store) NumTables() int { return len(s.tables) }

// TableNames returns the table names in index order.
func (s *Store) TableNames() []string {
	names := make([]string, len(s.tables))
	for i, t := range s.tables {
		names[i] = t.name
	}
	return names
}

// TableIndex resolves a table name to its index.
func (s *Store) TableIndex(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown table %q", name)
	}
	return i, nil
}

// SetAdmissionPolicy installs a prefetch-admission policy for one table and
// enables prefetching; a nil policy disables prefetching. The same policy
// implementations drive the trace simulator (internal/sim), so a policy
// evaluated there behaves identically here.
func (s *Store) SetAdmissionPolicy(tableIdx int, p cache.AdmissionPolicy) error {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return err
	}
	st.mutateState(func(ts *tableState) {
		ts.policy = p
		ts.prefetch = p != nil
	})
	return nil
}

func (s *Store) tableAt(i int) (*storeTable, error) {
	if i < 0 || i >= len(s.tables) {
		return nil, fmt.Errorf("core: table index %d out of range [0,%d)", i, len(s.tables))
	}
	return s.tables[i], nil
}

// resizeCache replaces the table's cache with a fresh one of the given
// capacity (losing its contents).
func (st *storeTable) resizeCache(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	st.mutateState(func(ts *tableState) {
		ts.cacheCap = capacity
		ts.cache = newTableCache(st.engine, capacity, st.shards, st.dim)
	})
}

// resizeCacheLive changes the table's cache capacity in place with
// incremental per-shard eviction: the working set survives the resize, so
// the adaptation engine can rebalance DRAM across tables without the hit
// ratio collapsing to zero and re-warming. The shared cache object is
// mutated (not swapped), so in-flight operations holding an older state
// snapshot keep hitting the same cache.
//
// The recorded cacheCap is the *requested* capacity, even though the
// sharded cache clamps its real capacity to one item per shard: the
// adaptation engine re-derives each epoch's budget from the cacheCap sum,
// and accounting the clamped value would compound the clamp slack into
// unbounded budget growth across epochs. Returns the recorded capacity.
func (st *storeTable) resizeCacheLive(capacity int) int {
	if capacity < 1 {
		capacity = 1
	}
	st.stateMu.Lock()
	defer st.stateMu.Unlock()
	cur := st.state.Load()
	cur.cache.Resize(capacity)
	next := *cur
	next.cacheCap = capacity
	st.state.Store(&next)
	return capacity
}
