package core

import (
	"fmt"
	"sort"
	"sync"

	"bandana/internal/fp16"
	"bandana/internal/layout"
	"bandana/internal/lru"
	"bandana/internal/metrics"
	"bandana/internal/nvm"
	"bandana/internal/table"
)

// Store is a Bandana embedding store: NVM-resident tables with DRAM caches.
type Store struct {
	device     *nvm.Device
	ownsDevice bool
	tables     []*storeTable
	byName     map[string]int
	seed       int64
}

// storeTable is the per-table state.
type storeTable struct {
	index        int
	name         string
	src          *table.Table // authoritative copy used for rewrites/updates
	dim          int
	vecBytes     int
	blockVectors int
	blockBase    int // first device block of this table
	numBlocks    int

	mu        sync.Mutex
	layout    *layout.Layout
	counts    []uint32 // per-vector access counts from the training trace
	threshold uint32   // prefetch admission threshold (counts must exceed it)
	prefetch  bool     // whether prefetching is enabled (set by Train)
	cache     *lru.Cache[uint32, []float32]
	cacheCap  int
	// prefetched marks cached vectors that entered via prefetch and have
	// not been requested yet.
	prefetched map[uint32]struct{}

	// counters
	lookups       metrics.Counter
	hits          metrics.Counter
	misses        metrics.Counter
	blockReads    metrics.Counter
	prefetchAdds  metrics.Counter
	prefetchHits  metrics.Counter
	lookupLatency *metrics.Histogram
}

// Open creates a Store, sizes (or adopts) the NVM device, writes every table
// to NVM in its original order and sets up per-table caches with an even
// split of the DRAM budget. Prefetching is disabled until Train is called.
func Open(cfg Config) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	budget := cfg.DRAMBudgetVectors
	if budget <= 0 {
		budget = cfg.totalVectors() / 20
		if budget < len(cfg.Tables) {
			budget = len(cfg.Tables)
		}
	}

	// Compute the device size: per-table contiguous block ranges.
	type span struct{ base, blocks, blockVectors int }
	spans := make([]span, len(cfg.Tables))
	next := 0
	for i, t := range cfg.Tables {
		bv := nvm.BlockSize / t.VectorBytes()
		if bv < 1 {
			bv = 1
		}
		blocks := (t.NumVectors() + bv - 1) / bv
		spans[i] = span{base: next, blocks: blocks, blockVectors: bv}
		next += blocks
	}

	device := cfg.Device
	owns := false
	if device == nil {
		device = nvm.NewDevice(nvm.DeviceConfig{NumBlocks: next, Seed: cfg.Seed})
		owns = true
	} else if device.NumBlocks() < next {
		return nil, fmt.Errorf("core: device has %d blocks, need %d", device.NumBlocks(), next)
	}

	s := &Store{
		device:     device,
		ownsDevice: owns,
		byName:     make(map[string]int, len(cfg.Tables)),
		seed:       cfg.Seed,
	}
	perTable := budget / len(cfg.Tables)
	if perTable < 1 {
		perTable = 1
	}
	for i, t := range cfg.Tables {
		st := &storeTable{
			index:         i,
			name:          t.Name,
			src:           t,
			dim:           t.Dim,
			vecBytes:      t.VectorBytes(),
			blockVectors:  spans[i].blockVectors,
			blockBase:     spans[i].base,
			numBlocks:     spans[i].blocks,
			layout:        layout.Identity(t.NumVectors(), spans[i].blockVectors),
			cacheCap:      perTable,
			cache:         lru.New[uint32, []float32](perTable),
			prefetched:    make(map[uint32]struct{}),
			lookupLatency: metrics.NewLatencyHistogram(),
		}
		if err := s.writeTable(st); err != nil {
			if owns {
				device.Close()
			}
			return nil, err
		}
		s.tables = append(s.tables, st)
		s.byName[t.Name] = i
	}
	return s, nil
}

// Close releases the store's resources (and the device if the store created
// it).
func (s *Store) Close() error {
	if s.ownsDevice {
		return s.device.Close()
	}
	return nil
}

// Device exposes the underlying NVM device (for stats and experiments).
func (s *Store) Device() *nvm.Device { return s.device }

// NumTables returns the number of tables in the store.
func (s *Store) NumTables() int { return len(s.tables) }

// TableNames returns the table names in index order.
func (s *Store) TableNames() []string {
	names := make([]string, len(s.tables))
	for i, t := range s.tables {
		names[i] = t.name
	}
	return names
}

// TableIndex resolves a table name to its index.
func (s *Store) TableIndex(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown table %q", name)
	}
	return i, nil
}

// writeTable writes the table's vectors to its NVM block range following the
// current layout.
func (s *Store) writeTable(st *storeTable) error {
	buf := make([]byte, nvm.BlockSize)
	var members []uint32
	for b := 0; b < st.numBlocks; b++ {
		for i := range buf {
			buf[i] = 0
		}
		members = st.layout.BlockMembers(b, members[:0])
		for slot, id := range members {
			raw, err := st.src.Raw(id)
			if err != nil {
				return fmt.Errorf("core: table %q: %w", st.name, err)
			}
			copy(buf[slot*st.vecBytes:], raw)
		}
		if err := s.device.WriteBlock(st.blockBase+b, buf); err != nil {
			return fmt.Errorf("core: table %q block %d: %w", st.name, b, err)
		}
	}
	return nil
}

// Lookup returns the embedding vector id of table tableIdx. The returned
// slice is owned by the caller.
func (s *Store) Lookup(tableIdx int, id uint32) ([]float32, error) {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return nil, err
	}
	return st.lookup(s.device, id)
}

// LookupByName is Lookup with a table name.
func (s *Store) LookupByName(name string, id uint32) ([]float32, error) {
	i, err := s.TableIndex(name)
	if err != nil {
		return nil, err
	}
	return s.Lookup(i, id)
}

// LookupBatch returns the embeddings of every id in ids from table tableIdx.
// Lookups that miss the cache are grouped by NVM block, so a batch that hits
// k distinct blocks issues exactly k block reads regardless of how many of
// its vectors live in each block — the batched analogue of the paper's
// prefetching.
func (s *Store) LookupBatch(tableIdx int, ids []uint32) ([][]float32, error) {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return nil, err
	}
	return st.lookupBatch(s.device, ids)
}

// Request is one recommendation request: for each table (by index), the
// vector IDs to look up.
type Request [][]uint32

// ServeRequest resolves every lookup of a request, returning the embeddings
// grouped by table.
func (s *Store) ServeRequest(req Request) ([][][]float32, error) {
	if len(req) > len(s.tables) {
		return nil, fmt.Errorf("core: request has %d tables, store has %d", len(req), len(s.tables))
	}
	out := make([][][]float32, len(req))
	for ti, ids := range req {
		if len(ids) == 0 {
			continue
		}
		vecs, err := s.LookupBatch(ti, ids)
		if err != nil {
			return nil, err
		}
		out[ti] = vecs
	}
	return out, nil
}

// UpdateVector overwrites the embedding of vector id in table tableIdx
// (e.g. after periodic re-training of the model). The write goes through to
// NVM (read-modify-write of the containing block) and invalidates the cached
// copy.
func (s *Store) UpdateVector(tableIdx int, id uint32, vec []float32) error {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return err
	}
	return st.update(s.device, id, vec)
}

func (s *Store) tableAt(i int) (*storeTable, error) {
	if i < 0 || i >= len(s.tables) {
		return nil, fmt.Errorf("core: table index %d out of range [0,%d)", i, len(s.tables))
	}
	return s.tables[i], nil
}

// lookup serves one vector read for this table.
func (st *storeTable) lookup(device *nvm.Device, id uint32) ([]float32, error) {
	if int(id) >= st.src.NumVectors() {
		return nil, fmt.Errorf("core: table %q: %w: %d", st.name, table.ErrBadVector, id)
	}
	st.mu.Lock()
	defer st.mu.Unlock()

	st.lookups.Inc()
	if v, ok := st.cache.Get(id); ok {
		st.hits.Inc()
		if _, wasPrefetch := st.prefetched[id]; wasPrefetch {
			st.prefetchHits.Inc()
			delete(st.prefetched, id)
		}
		return append([]float32(nil), v...), nil
	}
	st.misses.Inc()

	// Read the containing 4 KB block from NVM.
	block := st.layout.BlockOf(id)
	buf := make([]byte, nvm.BlockSize)
	lat, err := device.ReadBlock(st.blockBase+block, buf)
	if err != nil {
		return nil, fmt.Errorf("core: table %q: %w", st.name, err)
	}
	st.blockReads.Inc()
	st.lookupLatency.Observe(lat)

	// Decode the requested vector and cache it at the MRU position.
	slot := st.layout.SlotOf(id)
	want := make([]float32, st.dim)
	fp16.DecodeSlice(want, buf[slot*st.vecBytes:(slot+1)*st.vecBytes])
	st.insert(id, want, false)

	// Prefetch co-located vectors whose training-time access count exceeds
	// the tuned threshold.
	if st.prefetch {
		members := st.layout.BlockMembers(block, nil)
		for mslot, other := range members {
			if other == id || st.cache.Contains(other) {
				continue
			}
			if int(other) < len(st.counts) && st.counts[other] > st.threshold {
				v := make([]float32, st.dim)
				fp16.DecodeSlice(v, buf[mslot*st.vecBytes:(mslot+1)*st.vecBytes])
				st.insert(other, v, true)
				st.prefetchAdds.Inc()
			}
		}
	}
	return append([]float32(nil), want...), nil
}

// lookupBatch serves a set of vector reads, grouping cache misses by NVM
// block so that each distinct block is read only once per batch.
func (st *storeTable) lookupBatch(device *nvm.Device, ids []uint32) ([][]float32, error) {
	for _, id := range ids {
		if int(id) >= st.src.NumVectors() {
			return nil, fmt.Errorf("core: table %q: %w: %d", st.name, table.ErrBadVector, id)
		}
	}
	out := make([][]float32, len(ids))

	st.mu.Lock()
	defer st.mu.Unlock()

	// Pass 1: serve cache hits and group misses by block.
	type missRef struct {
		pos int
		id  uint32
	}
	missesByBlock := make(map[int][]missRef)
	for i, id := range ids {
		st.lookups.Inc()
		if v, ok := st.cache.Get(id); ok {
			st.hits.Inc()
			if _, wasPrefetch := st.prefetched[id]; wasPrefetch {
				st.prefetchHits.Inc()
				delete(st.prefetched, id)
			}
			out[i] = append([]float32(nil), v...)
			continue
		}
		st.misses.Inc()
		block := st.layout.BlockOf(id)
		missesByBlock[block] = append(missesByBlock[block], missRef{pos: i, id: id})
	}

	// Pass 2: one NVM read per distinct block; decode all requested vectors
	// from it and apply the usual prefetch admission to the rest. Blocks are
	// processed in ascending order so a batch's cache effects are
	// deterministic.
	blocks := make([]int, 0, len(missesByBlock))
	for block := range missesByBlock {
		blocks = append(blocks, block)
	}
	sort.Ints(blocks)
	buf := make([]byte, nvm.BlockSize)
	var members []uint32
	for _, block := range blocks {
		refs := missesByBlock[block]
		lat, err := device.ReadBlock(st.blockBase+block, buf)
		if err != nil {
			return nil, fmt.Errorf("core: table %q: %w", st.name, err)
		}
		st.blockReads.Inc()
		st.lookupLatency.Observe(lat)

		requested := make(map[uint32]struct{}, len(refs))
		for _, ref := range refs {
			slot := st.layout.SlotOf(ref.id)
			v := make([]float32, st.dim)
			fp16.DecodeSlice(v, buf[slot*st.vecBytes:(slot+1)*st.vecBytes])
			st.insert(ref.id, v, false)
			out[ref.pos] = append([]float32(nil), v...)
			requested[ref.id] = struct{}{}
		}
		if st.prefetch {
			members = st.layout.BlockMembers(block, members[:0])
			for mslot, other := range members {
				if _, isReq := requested[other]; isReq {
					continue
				}
				if st.cache.Contains(other) {
					continue
				}
				if int(other) < len(st.counts) && st.counts[other] > st.threshold {
					v := make([]float32, st.dim)
					fp16.DecodeSlice(v, buf[mslot*st.vecBytes:(mslot+1)*st.vecBytes])
					st.insert(other, v, true)
					st.prefetchAdds.Inc()
				}
			}
		}
	}
	return out, nil
}

// insert places a vector into the cache, tracking prefetch provenance and
// cleaning up eviction bookkeeping.
func (st *storeTable) insert(id uint32, v []float32, isPrefetch bool) {
	evicted, was := st.cache.Add(id, v)
	if was {
		delete(st.prefetched, evicted)
	}
	if isPrefetch {
		st.prefetched[id] = struct{}{}
	} else {
		delete(st.prefetched, id)
	}
}

// update rewrites one vector on NVM and in the source table, and drops any
// cached copy.
func (st *storeTable) update(device *nvm.Device, id uint32, vec []float32) error {
	if len(vec) != st.dim {
		return fmt.Errorf("core: table %q: vector has %d elements, want %d", st.name, len(vec), st.dim)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.src.SetVector(id, vec); err != nil {
		return fmt.Errorf("core: table %q: %w", st.name, err)
	}
	// Read-modify-write the containing block.
	block := st.layout.BlockOf(id)
	buf := make([]byte, nvm.BlockSize)
	if _, err := device.ReadBlock(st.blockBase+block, buf); err != nil {
		return fmt.Errorf("core: table %q: %w", st.name, err)
	}
	slot := st.layout.SlotOf(id)
	raw, err := st.src.Raw(id)
	if err != nil {
		return err
	}
	copy(buf[slot*st.vecBytes:], raw)
	if err := device.WriteBlock(st.blockBase+block, buf); err != nil {
		return fmt.Errorf("core: table %q: %w", st.name, err)
	}
	st.cache.Remove(id)
	delete(st.prefetched, id)
	return nil
}

// resizeCache replaces the table's cache with a fresh one of the given
// capacity (losing its contents).
func (st *storeTable) resizeCache(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.cacheCap = capacity
	st.cache = lru.New[uint32, []float32](capacity)
	st.prefetched = make(map[uint32]struct{})
}
