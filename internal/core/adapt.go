// The adaptation layer: a background engine that closes the paper's tuning
// loops at runtime. Train (train.go) runs the loops once, offline, from a
// trace file; this file runs the same loops — hit-rate curves via sampled
// stack distances, greedy DRAM allocation, miniature-cache threshold
// tuning, SHP/k-means re-partitioning — continuously, from a bounded window
// of the *live* access stream captured by per-table recorders on the
// serving path. Every decision is published through the same atomic state
// pointer serving already reads, caches are resized in place (incremental
// eviction, no cold restart), and layout changes go through the
// crash-recoverable live migration protocol (rewrite.go / migration.go), so
// the store tunes itself under load without ever blocking its readers.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bandana/internal/alloc"
	"bandana/internal/cache"
	"bandana/internal/kmeans"
	"bandana/internal/layout"
	"bandana/internal/mrc"
	"bandana/internal/shp"
	"bandana/internal/sim"
	"bandana/internal/trace"
)

// ErrAdaptationRunning is returned by StartAdaptation when the engine is
// already started; callers (e.g. the HTTP layer) can distinguish this
// conflict from an options-validation error.
var ErrAdaptationRunning = errors.New("core: adaptation already started (StopAdaptation first)")

// ErrAdaptationNotStarted is returned by AdaptNow when no engine is
// installed (StartAdaptation has not run, or StopAdaptation tore it down —
// possibly concurrently with the AdaptNow call).
var ErrAdaptationNotStarted = errors.New("core: adaptation not started")

// Relayout strategies for AdaptOptions.RelayoutStrategy.
const (
	// RelayoutSHP re-partitions with the Social Hash Partitioner over the
	// recorded co-access hypergraph, warm-started from the current layout
	// (the paper's supervised partitioner, §4.3.2).
	RelayoutSHP = "shp"
	// RelayoutKMeans re-partitions by embedding similarity with two-stage
	// K-means (the paper's unsupervised fallback, §4.1) — useful when the
	// recorded window is too thin to carry co-access signal.
	RelayoutKMeans = "kmeans"
)

// AdaptOptions configures the online adaptation engine.
type AdaptOptions struct {
	// Interval is the background epoch period. <= 0 starts the engine in
	// manual mode: recording is on but epochs only run when AdaptNow is
	// called (how tests and the /v1/adapt endpoint drive it).
	Interval time.Duration
	// RecorderQueries bounds each table's recorded window (ring capacity in
	// queries). Defaults to 4096.
	RecorderQueries int
	// RecorderStripes is the lock striping of each recorder. Defaults to 16.
	RecorderStripes int
	// SampleEvery records one in N queries (1 = everything). Defaults to 1;
	// raise it on very hot stores to cut recording overhead further.
	SampleEvery int
	// MinQueries is the minimum recorded window before a table is adapted;
	// colder tables keep their current configuration (and their DRAM share
	// is reserved, so a warming table is never starved by the optimiser).
	// Defaults to 64.
	MinQueries int
	// HRCSampling is the SHARDS sampling rate for hit-rate curves.
	// Defaults to 0.1.
	HRCSampling float64
	// MiniCacheSampling is the miniature-cache sampling rate for threshold
	// tuning. Defaults to 0.01.
	MiniCacheSampling float64
	// Thresholds are the candidate admission thresholds; nil derives them
	// from the recorded access counts (sim.AdaptiveThresholds).
	Thresholds []uint32
	// MinPrefetchGain is the minimum held-out miniature-cache gain required
	// to turn prefetching ON for a table this epoch; below it the table
	// serves prefetch-free. The offline Train can afford optimism (its
	// trace is the whole workload); the online loop tunes on a short noisy
	// window where a marginal measured gain often means live cache
	// pollution, so it demands a margin. Defaults to 0.15.
	MinPrefetchGain float64
	// RelayoutEvery runs the background re-layout pass every N epochs; 0
	// disables re-layout (allocation and thresholds still adapt).
	RelayoutEvery int
	// RelayoutMinGain is the minimum relative fanout improvement (on the
	// recorded queries) required before a table is migrated; below it the
	// migration cost is not worth the layout delta. Defaults to 0.05.
	RelayoutMinGain float64
	// RelayoutBlockBudget caps the NVM blocks rewritten by migrations in
	// one epoch (tables beyond the budget wait for a later epoch); 0 means
	// unlimited.
	RelayoutBlockBudget int
	// RelayoutStrategy selects RelayoutSHP (default) or RelayoutKMeans.
	RelayoutStrategy string
	// SHPIterations bounds the warm-started refinement; incremental runs
	// need far fewer than a cold Train. Defaults to 6.
	SHPIterations int
	// Parallelism bounds how many tables are analysed/tuned concurrently.
	// Defaults to 4.
	Parallelism int
}

func (o *AdaptOptions) defaults() error {
	if o.RecorderQueries <= 0 {
		o.RecorderQueries = 4096
	}
	if o.RecorderStripes <= 0 {
		o.RecorderStripes = 16
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 1
	}
	if o.MinQueries <= 0 {
		o.MinQueries = 64
	}
	if o.HRCSampling <= 0 {
		o.HRCSampling = 0.1
	}
	if o.MiniCacheSampling <= 0 {
		o.MiniCacheSampling = 0.01
	}
	if o.RelayoutMinGain <= 0 {
		o.RelayoutMinGain = 0.05
	}
	if o.MinPrefetchGain <= 0 {
		o.MinPrefetchGain = 0.15
	}
	if o.SHPIterations <= 0 {
		o.SHPIterations = 6
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 4
	}
	switch o.RelayoutStrategy {
	case "":
		o.RelayoutStrategy = RelayoutSHP
	case RelayoutSHP, RelayoutKMeans:
	default:
		return fmt.Errorf("core: unknown relayout strategy %q (want %q or %q)",
			o.RelayoutStrategy, RelayoutSHP, RelayoutKMeans)
	}
	return nil
}

// adapter is the runtime state of the adaptation engine.
type adapter struct {
	opts AdaptOptions

	// Background loop lifecycle (nil channels in manual mode).
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	running  atomic.Bool

	epochs         atomic.Int64
	relayouts      atomic.Int64
	lastEpochNS    atomic.Int64
	lastRelayoutNS atomic.Int64
	lastErr        atomic.Pointer[string]

	// Per-table counter baselines from the end of the previous epoch, so
	// stats can report hit ratios *since the last adaptation*, not
	// since-boot averages that drown out drift.
	mu             sync.Mutex
	baseLookups    []int64
	baseHits       []int64
	tableRelayouts []int64
	// recorders are the exact recorder instances this adapter installed, so
	// StopAdaptation can remove its own recorders without clobbering those
	// of a successor engine.
	recorders []*trace.Recorder
}

// StartAdaptation turns the store into a self-tuning system: it installs
// per-table access recorders on the serving path and (when opts.Interval >
// 0) starts a background goroutine that runs an adaptation epoch every
// interval. Returns an error if the engine is already started.
func (s *Store) StartAdaptation(opts AdaptOptions) error {
	// A replica's configuration is whatever its next re-sync streams in;
	// adapting locally would mutate NVM blocks and trained state that the
	// primary owns.
	if err := s.checkWritable(); err != nil {
		return err
	}
	if err := opts.defaults(); err != nil {
		return err
	}
	a := &adapter{
		opts:           opts,
		baseLookups:    make([]int64, len(s.tables)),
		baseHits:       make([]int64, len(s.tables)),
		tableRelayouts: make([]int64, len(s.tables)),
		recorders:      make([]*trace.Recorder, len(s.tables)),
	}
	// Win the engine slot before touching any serving state, so a losing
	// concurrent StartAdaptation cannot install recorders with its own
	// config under the winner's adapter.
	if !s.adapt.CompareAndSwap(nil, a) {
		return ErrAdaptationRunning
	}
	for i, st := range s.tables {
		a.baseLookups[i] = st.lookups.Value()
		a.baseHits[i] = st.hits.Value()
		a.recorders[i] = trace.NewRecorder(opts.RecorderQueries, opts.RecorderStripes, opts.SampleEvery)
		st.recorder.Store(a.recorders[i])
	}
	if opts.Interval > 0 {
		a.stop = make(chan struct{})
		a.done = make(chan struct{})
		a.running.Store(true)
		go s.adaptLoop(a)
	}
	return nil
}

// adaptLoop is the background ticker: one adaptation epoch per interval.
func (s *Store) adaptLoop(a *adapter) {
	defer close(a.done)
	ticker := time.NewTicker(a.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
			if _, err := s.AdaptNow(); err != nil {
				msg := err.Error()
				a.lastErr.Store(&msg)
			}
		}
	}
}

// StopAdaptation stops the background loop (waiting for an in-flight epoch
// to finish) and removes the serving-path recorders. Idempotent; a stopped
// engine can be restarted with StartAdaptation.
func (s *Store) StopAdaptation() {
	a := s.adapt.Load()
	if a == nil {
		return
	}
	// Drain the background loop first (idempotent for concurrent stops),
	// then release the engine slot. Only the stop that wins the CAS removes
	// the recorders — and only the exact instances this adapter installed —
	// so a racing StopAdaptation can neither tear down a successor engine
	// installed by a concurrent StartAdaptation nor strip its recorders.
	if a.stop != nil {
		a.stopOnce.Do(func() { close(a.stop) })
		<-a.done
	}
	a.running.Store(false)
	if !s.adapt.CompareAndSwap(a, nil) {
		return
	}
	for i, st := range s.tables {
		st.recorder.CompareAndSwap(a.recorders[i], nil)
	}
}

// AdaptEpochReport summarises one adaptation epoch.
type AdaptEpochReport struct {
	Epoch    int64
	Duration time.Duration
	Tables   []TableAdaptReport
}

// TableAdaptReport is the per-table outcome of one epoch.
type TableAdaptReport struct {
	Name            string
	RecordedQueries int
	RecordedLookups int64
	// Adapted is false when the recorded window was below MinQueries (the
	// table keeps its configuration).
	Adapted bool
	// CacheVectors is the DRAM allocation after this epoch.
	CacheVectors int
	// Threshold and MiniatureGain mirror TableTrainReport.
	Threshold     uint32
	MiniatureGain float64
	// Relayout reports whether the table's blocks were migrated this epoch;
	// FanoutBefore/FanoutAfter are measured on the recorded queries.
	Relayout         bool
	FanoutBefore     float64
	FanoutAfter      float64
	RelayoutDuration time.Duration
}

// AdaptNow runs one adaptation epoch synchronously: snapshot the recorded
// windows, rebuild hit-rate curves, rebalance the DRAM budget across tables
// (live, in-place cache resizes), optionally re-partition-and-migrate
// drifted tables, and re-tune every adapted table's prefetch-admission
// threshold with miniature caches. Serving continues throughout; the only
// serving-visible pauses are the per-table bulk copy of a migration.
func (s *Store) AdaptNow() (*AdaptEpochReport, error) {
	a := s.adapt.Load()
	if a == nil {
		return nil, ErrAdaptationNotStarted
	}
	start := time.Now()
	// One epoch at a time, and never concurrent with Train/LoadState: they
	// share the cache/threshold state and the migration protocol supports a
	// single in-flight migration.
	s.mutateMu.Lock()
	defer s.mutateMu.Unlock()
	// Re-check under the lock: a Stop (or Stop+Start) that won the race
	// while this call waited must not have its successor's recorders
	// consumed by an epoch running with the dead engine's options.
	if s.adapt.Load() != a {
		return nil, ErrAdaptationNotStarted
	}

	opts := a.opts
	epoch := a.epochs.Load() + 1
	report := &AdaptEpochReport{Epoch: epoch, Tables: make([]TableAdaptReport, len(s.tables))}

	// Phase 1 (parallel): snapshot each table's recorded window and derive
	// access counts + hit-rate curve. Counts for the admission policy come
	// from the window's *training prefix* only, and thresholds are later
	// evaluated on the held-out suffix: tuning on the very stream the
	// counts were measured from systematically overstates prefetch gains
	// (the counts are that replay's future), and under drift that
	// overfitting turns into live cache pollution.
	type analysis struct {
		tr     *trace.Trace // full window: allocation HRC + re-layout
		tuneTr *trace.Trace // held-out suffix: threshold evaluation
		counts []uint32     // training-prefix access counts
		hrc    *mrc.HRC
	}
	analyses := make([]analysis, len(s.tables))
	sem := make(chan struct{}, opts.Parallelism)
	var wg sync.WaitGroup
	for i, st := range s.tables {
		rep := &report.Tables[i]
		rep.Name = st.name
		r := st.recorder.Load()
		if r == nil {
			continue
		}
		tr := r.Snapshot(st.name, st.src.NumVectors())
		rep.RecordedQueries = len(tr.Queries)
		rep.RecordedLookups = tr.Lookups()
		if len(tr.Queries) < opts.MinQueries {
			// Leave the window in place so a slow table keeps accumulating
			// across epochs (the ring bounds memory); resetting here would
			// turn MinQueries into a minimum arrival *rate* and starve
			// low-traffic tables of adaptation forever.
			continue
		}
		r.Reset()
		rep.Adapted = true
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			flat := make([]uint32, 0, tr.Lookups())
			for _, q := range tr.Queries {
				flat = append(flat, q...)
			}
			trainTr, evalTr := tr.Split(0.6)
			if len(evalTr.Queries) == 0 { // degenerate tiny window
				trainTr, evalTr = tr, tr
			}
			analyses[i] = analysis{
				tr:     tr,
				tuneTr: evalTr,
				counts: trainTr.AccessCounts(),
				hrc:    mrc.SampledStackDistances(flat, opts.HRCSampling).HitRateCurve(),
			}
		}(i)
	}
	wg.Wait()

	// Phase 2: rebalance the DRAM budget across the adapted tables with the
	// fresh hit-rate curves. Cold tables keep their current share reserved
	// (no starvation of a warming table), and resizes are live — the
	// surviving working set keeps serving hits.
	budget := 0
	var demands []alloc.TableDemand
	var demandIdx []int
	for i, st := range s.tables {
		cacheCap := st.loadState().cacheCap
		report.Tables[i].CacheVectors = cacheCap
		if analyses[i].hrc == nil {
			continue
		}
		budget += cacheCap
		demands = append(demands, alloc.TableDemand{
			Name:       st.name,
			HRC:        analyses[i].hrc,
			MaxVectors: st.src.NumVectors(),
			MinVectors: st.blockVectors,
		})
		demandIdx = append(demandIdx, i)
	}
	if len(demands) > 0 && budget > 0 {
		// The lookahead makes the greedy scoring see across the plateaus of
		// the sampled hit-rate curves; without it the allocation degenerates
		// to a tie-broken even split (see alloc.Options.LookaheadVectors).
		allocRes, err := alloc.Allocate(demands, alloc.Options{TotalVectors: budget, LookaheadVectors: budget / 16})
		if err != nil {
			return nil, fmt.Errorf("core: adaptation allocation: %w", err)
		}
		for di, ti := range demandIdx {
			actual := s.tables[ti].resizeCacheLive(allocRes.Vectors[di])
			report.Tables[ti].CacheVectors = actual
		}
	}

	// Phase 3: background re-layout of drifted tables (every RelayoutEvery
	// epochs, within the block budget), before threshold tuning so the
	// thresholds are tuned for the layout that will serve them.
	if opts.RelayoutEvery > 0 && epoch%int64(opts.RelayoutEvery) == 0 {
		blocksLeft := opts.RelayoutBlockBudget
		for i, st := range s.tables {
			if analyses[i].tr == nil {
				continue
			}
			if opts.RelayoutBlockBudget > 0 && blocksLeft < st.numBlocks {
				continue // over budget this epoch; a later epoch picks it up
			}
			migrated, before, after, err := s.maybeRelayout(st, analyses[i].tr, opts)
			if err != nil {
				return nil, err
			}
			rep := &report.Tables[i]
			rep.FanoutBefore, rep.FanoutAfter = before, after
			if migrated {
				rep.Relayout = true
				blocksLeft -= st.numBlocks
				a.relayouts.Add(1)
				a.mu.Lock()
				a.tableRelayouts[i]++
				a.mu.Unlock()
			}
		}
	}

	// Phase 4 (parallel): re-tune each adapted table's prefetch-admission
	// threshold with miniature caches over the recorded window, at the new
	// cache size and layout.
	errs := make([]error, len(s.tables))
	for i, st := range s.tables {
		if analyses[i].tr == nil {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, st *storeTable) {
			defer wg.Done()
			defer func() { <-sem }()
			snap := st.loadState()
			choice, err := sim.TuneThreshold(analyses[i].tuneTr, sim.TunerConfig{
				Layout:       snap.layout,
				Counts:       analyses[i].counts,
				CacheVectors: snap.cacheCap,
				SamplingRate: opts.MiniCacheSampling,
				Thresholds:   opts.Thresholds,
			})
			if err != nil {
				errs[i] = fmt.Errorf("core: table %q: %w", st.name, err)
				return
			}
			enable := choice.Threshold != sim.DisablePrefetch && choice.MiniatureGain >= opts.MinPrefetchGain
			st.mutateState(func(ts *tableState) {
				ts.counts = analyses[i].counts
				ts.threshold = choice.Threshold
				ts.prefetch = enable
				if enable {
					ts.policy = cache.ThresholdAdmit{Counts: analyses[i].counts, Threshold: choice.Threshold}
				} else {
					ts.policy = nil
				}
			})
			report.Tables[i].Threshold = choice.Threshold
			report.Tables[i].MiniatureGain = choice.MiniatureGain
		}(i, st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Persist the adapted state so a restart resumes from the latest
	// configuration instead of the last offline Train.
	if s.dataDir != "" {
		if err := s.Persist(); err != nil {
			return nil, fmt.Errorf("core: persist adapted state: %w", err)
		}
	}

	// Publish epoch accounting and reset the per-epoch counter baselines.
	a.mu.Lock()
	for i, st := range s.tables {
		a.baseLookups[i] = st.lookups.Value()
		a.baseHits[i] = st.hits.Value()
	}
	a.mu.Unlock()
	report.Duration = time.Since(start)
	a.lastEpochNS.Store(int64(report.Duration))
	a.epochs.Store(epoch)
	a.lastErr.Store(nil) // a completed epoch supersedes any earlier failure
	// An epoch can change cache allocations, thresholds and (via migration)
	// the physical layout — all part of the image a replica streams, so the
	// snapshot seq moves once per committed epoch (and the update-log window
	// resets: no stream of vector records can express a relayout).
	s.noteStructuralMutation()
	return report, nil
}

// maybeRelayout evaluates a candidate layout for one table against the
// recorded queries and migrates to it when the predicted fanout gain
// clears the threshold. Returns whether a migration ran plus the measured
// fanouts.
func (s *Store) maybeRelayout(st *storeTable, tr *trace.Trace, opts AdaptOptions) (bool, float64, float64, error) {
	queries := make([][]uint32, len(tr.Queries))
	for i, q := range tr.Queries {
		queries[i] = q
	}
	cur := st.loadState().layout

	var candidate *layout.Layout
	switch opts.RelayoutStrategy {
	case RelayoutKMeans:
		order, err := kmeans.OrderTable(st.src, st.blockVectors, kmeans.TwoStageOptions{Seed: s.seed + int64(st.index)})
		if err != nil {
			return false, 0, 0, fmt.Errorf("core: table %q: %w", st.name, err)
		}
		l, err := layout.FromOrder(order, st.blockVectors)
		if err != nil {
			return false, 0, 0, fmt.Errorf("core: table %q: %w", st.name, err)
		}
		candidate = l
	default: // RelayoutSHP
		res, err := shp.Repartition(cur.Order(), queries, shp.Options{
			BlockVectors: st.blockVectors,
			Iterations:   opts.SHPIterations,
			Seed:         s.seed + int64(st.index),
		})
		if err != nil {
			return false, 0, 0, fmt.Errorf("core: table %q: %w", st.name, err)
		}
		l, err := layout.FromOrder(res.Order, st.blockVectors)
		if err != nil {
			return false, 0, 0, fmt.Errorf("core: table %q: %w", st.name, err)
		}
		candidate = l
	}

	before := cur.AverageFanout(queries)
	after := candidate.AverageFanout(queries)
	if before <= 0 || (before-after)/before < opts.RelayoutMinGain {
		return false, before, after, nil
	}
	a := s.adapt.Load()
	migStart := time.Now()
	if err := s.relayoutTable(st, candidate); err != nil {
		return false, before, after, err
	}
	if a != nil {
		a.lastRelayoutNS.Store(int64(time.Since(migStart)))
	}
	return true, before, after, nil
}

// AdaptationStats is a snapshot of the adaptation engine for observability.
type AdaptationStats struct {
	// Enabled reports whether recorders are installed (StartAdaptation was
	// called); Background reports whether the interval loop is running.
	Enabled    bool
	Background bool
	Interval   time.Duration
	// EpochsCompleted counts finished adaptation epochs; Relayouts counts
	// completed background migrations.
	EpochsCompleted int64
	Relayouts       int64
	// LastEpochDuration / LastRelayoutDuration are wall-clock times of the
	// most recent epoch and migration.
	LastEpochDuration    time.Duration
	LastRelayoutDuration time.Duration
	// LastError is the most recent background-epoch failure ("" when the
	// last epoch succeeded or none ran).
	LastError string
	Tables    []TableAdaptationStats
}

// TableAdaptationStats is the per-table adaptation view.
type TableAdaptationStats struct {
	Name string
	// EpochLookups/EpochHits/EpochHitRate cover the window since the last
	// completed adaptation epoch (or since StartAdaptation).
	EpochLookups int64
	EpochHits    int64
	EpochHitRate float64
	// CacheVectors, Threshold and Prefetching mirror the live config.
	CacheVectors int
	Threshold    uint32
	Prefetching  bool
	// RecordedQueries is the current recorder fill.
	RecordedQueries int
	// Relayouts counts this table's completed background migrations.
	Relayouts int64
}

// AdaptationStats returns the adaptation engine's observability snapshot.
// When the engine has never been started, Enabled is false and Tables is
// empty.
func (s *Store) AdaptationStats() AdaptationStats {
	a := s.adapt.Load()
	if a == nil {
		return AdaptationStats{}
	}
	out := AdaptationStats{
		Enabled:              true,
		Background:           a.running.Load(),
		Interval:             a.opts.Interval,
		EpochsCompleted:      a.epochs.Load(),
		Relayouts:            a.relayouts.Load(),
		LastEpochDuration:    time.Duration(a.lastEpochNS.Load()),
		LastRelayoutDuration: time.Duration(a.lastRelayoutNS.Load()),
		Tables:               make([]TableAdaptationStats, len(s.tables)),
	}
	if msg := a.lastErr.Load(); msg != nil {
		out.LastError = *msg
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, st := range s.tables {
		state := st.loadState()
		ts := TableAdaptationStats{
			Name:         st.name,
			EpochLookups: st.lookups.Value() - a.baseLookups[i],
			EpochHits:    st.hits.Value() - a.baseHits[i],
			CacheVectors: state.cacheCap,
			Threshold:    state.threshold,
			Prefetching:  state.prefetch,
			Relayouts:    a.tableRelayouts[i],
		}
		if r := st.recorder.Load(); r != nil {
			ts.RecordedQueries = r.Len()
		}
		if ts.EpochLookups > 0 {
			ts.EpochHitRate = float64(ts.EpochHits) / float64(ts.EpochLookups)
		}
		out.Tables[i] = ts
	}
	return out
}
