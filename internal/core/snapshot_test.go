package core

import (
	"errors"
	"path/filepath"
	"testing"
)

// openSnapshotReplica exports src and imports it into a fresh dir, returning
// the reopened (read-only) store.
func openSnapshotReplica(t *testing.T, src *Store) *Store {
	t.Helper()
	snap, err := src.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "replica")
	if err := ImportSnapshot(dir, snap, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := Open(Config{Backend: BackendFile, DataDir: dir, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	return rep
}

// TestSnapshotRoundTripServesIdenticalVectors trains a store, round-trips it
// through ExportSnapshot/ImportSnapshot and property-checks that the replica
// serves byte-identical vectors for every id of every table.
func TestSnapshotRoundTripServesIdenticalVectors(t *testing.T) {
	tables, traces := buildTestTables(t, 2, 1024, 120)
	src, err := Open(testBackendConfig(t, Config{Tables: tables, DRAMBudgetVectors: 128, Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := src.Train(traces, TrainOptions{}); err != nil {
		t.Fatal(err)
	}

	rep := openSnapshotReplica(t, src)
	if !rep.ReadOnly() {
		t.Fatal("replica store should be read-only")
	}
	for ti := range tables {
		for id := 0; id < tables[ti].NumVectors(); id++ {
			want, err := src.Lookup(ti, uint32(id))
			if err != nil {
				t.Fatal(err)
			}
			got, err := rep.Lookup(ti, uint32(id))
			if err != nil {
				t.Fatal(err)
			}
			if !vecsEqual(want, got) {
				t.Fatalf("table %d id %d: replica vector differs from primary", ti, id)
			}
		}
	}

	// The replica also restored the trained metadata, not just the bytes.
	ss, rs := src.Stats(), rep.Stats()
	for i := range ss {
		if ss[i].Threshold != rs[i].Threshold || ss[i].Prefetching != rs[i].Prefetching {
			t.Fatalf("table %s: trained state not replicated (threshold %d/%d prefetch %v/%v)",
				ss[i].Name, ss[i].Threshold, rs[i].Threshold, ss[i].Prefetching, rs[i].Prefetching)
		}
	}
}

// TestReadOnlyStoreRejectsMutators pins the ErrReadOnly guard on every
// mutator of the servable image.
func TestReadOnlyStoreRejectsMutators(t *testing.T) {
	tables, traces := buildTestTables(t, 1, 512, 60)
	src, err := Open(Config{Tables: tables, DRAMBudgetVectors: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	rep := openSnapshotReplica(t, src)

	vec := make([]float32, tables[0].Dim)
	if err := rep.UpdateVector(0, 1, vec); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("UpdateVector on read-only store: %v, want ErrReadOnly", err)
	}
	if _, err := rep.Train(traces, TrainOptions{}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Train on read-only store: %v, want ErrReadOnly", err)
	}
	if err := rep.StartAdaptation(AdaptOptions{}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("StartAdaptation on read-only store: %v, want ErrReadOnly", err)
	}
	if err := rep.Persist(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Persist on read-only store: %v, want ErrReadOnly", err)
	}
	// Serving still works.
	if _, err := rep.Lookup(0, 3); err != nil {
		t.Fatalf("Lookup on read-only store: %v", err)
	}
	if _, err := rep.LookupBatch(0, []uint32{1, 2, 3}); err != nil {
		t.Fatalf("LookupBatch on read-only store: %v", err)
	}
}

// TestSnapshotSeqAdvancesOnMutation pins the seq contract replicas poll:
// every committed mutation moves it, reads do not.
func TestSnapshotSeqAdvancesOnMutation(t *testing.T) {
	tables, traces := buildTestTables(t, 1, 512, 60)
	s, err := Open(testBackendConfig(t, Config{Tables: tables, DRAMBudgetVectors: 64, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	seq := s.SnapshotSeq()
	if seq == 0 {
		t.Fatal("snapshot seq must start non-zero")
	}
	if _, err := s.Lookup(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.SnapshotSeq(); got != seq {
		t.Fatalf("seq moved on a read: %d -> %d", seq, got)
	}
	vec := make([]float32, tables[0].Dim)
	if err := s.UpdateVector(0, 1, vec); err != nil {
		t.Fatal(err)
	}
	if got := s.SnapshotSeq(); got != seq+1 {
		t.Fatalf("seq after UpdateVector = %d, want %d", got, seq+1)
	}
	if _, err := s.Train(traces, TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := s.SnapshotSeq(); got != seq+2 {
		t.Fatalf("seq after Train = %d, want %d", got, seq+2)
	}
}

// TestImportSnapshotRejectsCorruption flips one byte of the block image and
// expects the import to fail its CRC check.
func TestImportSnapshotRejectsCorruption(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 512, 60)
	s, err := Open(Config{Tables: tables, DRAMBudgetVectors: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snap, err := s.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Blocks[len(snap.Blocks)/2] ^= 0xff
	dir := filepath.Join(t.TempDir(), "corrupt")
	if err := ImportSnapshot(dir, snap, 0); err == nil {
		t.Fatal("import of a corrupted block image must fail")
	}
	if DirInitialized(dir) {
		t.Fatal("failed import must not leave an initialized dir")
	}
}

// TestImportSnapshotRefusesClobber protects an existing store dir.
func TestImportSnapshotRefusesClobber(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 512, 60)
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(Config{Tables: tables, Backend: BackendFile, DataDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := ImportSnapshot(dir, snap, 0); err == nil {
		t.Fatal("import over an initialized dir must fail")
	}
}

// TestExportSnapshotConsistentUnderUpdates exports while a writer hammers
// UpdateVector; the import must always land on a CRC-consistent image (the
// export excludes updates via the update locks) and reopen cleanly.
func TestExportSnapshotConsistentUnderUpdates(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 512, 60)
	s, err := Open(testBackendConfig(t, Config{Tables: tables, DRAMBudgetVectors: 64, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		vec := make([]float32, tables[0].Dim)
		for i := uint32(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			vec[0] = float32(i)
			if err := s.UpdateVector(0, i%uint32(tables[0].NumVectors()), vec); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for round := 0; round < 3; round++ {
		rep := openSnapshotReplica(t, s)
		if _, err := rep.Lookup(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done
}
