package core

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bandana/internal/nvm"
)

// readCountingStore wraps a MemStore and counts reads that actually reach
// the backing store — the ground truth for the coalescing invariant.
type readCountingStore struct {
	*nvm.MemStore
	blocksRead atomic.Int64
}

func (s *readCountingStore) ReadBlock(idx int, dst []byte) error {
	s.blocksRead.Add(1)
	return s.MemStore.ReadBlock(idx, dst)
}

func (s *readCountingStore) ReadBlocks(idxs []int, dst []byte) error {
	s.blocksRead.Add(int64(len(idxs)))
	return s.MemStore.ReadBlocks(idxs, dst)
}

// TestMissStormCoalescesToOneDeviceRead pins the end-to-end coalescing
// invariant through the full store: K goroutines missing the same vector
// concurrently cause exactly one device block read, and every caller gets
// the identical vector. The generous accumulation window makes the overlap
// deterministic: the first miss parks in the submission queue while the
// rest of the storm coalesces onto it.
func TestMissStormCoalescesToOneDeviceRead(t *testing.T) {
	const storm = 24
	tables, _ := buildTestTables(t, 1, 512, 10)
	cs := &readCountingStore{MemStore: nvm.NewMemStore(64)}
	dev := nvm.NewDevice(nvm.DeviceConfig{NumBlocks: 64, Store: cs, Seed: 1})
	s, err := Open(Config{
		Tables: tables,
		Device: dev,
		Seed:   1,
		IOSched: IOSchedOptions{
			Enabled:    true,
			QueueDepth: 64,
			Window:     300 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s.Close()
		dev.Close()
	}()

	const id = 137
	cs.blocksRead.Store(0) // ignore reads issued while writing tables (none) / warmup

	start := make(chan struct{})
	vecs := make([][]float32, storm)
	errs := make([]error, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			vecs[i], errs[i] = s.Lookup(0, id)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < storm; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !vecsEqual(vecs[i], vecs[0]) {
			t.Fatalf("caller %d received a different vector", i)
		}
	}
	if got := cs.blocksRead.Load(); got != 1 {
		t.Fatalf("storm of %d misses caused %d device reads, want exactly 1", storm, got)
	}

	st := s.Stats()[0]
	if st.Lookups != storm || st.Misses != storm || st.Hits != 0 {
		t.Fatalf("counters lookups=%d misses=%d hits=%d, want %d/%d/0", st.Lookups, st.Misses, st.Hits, storm, storm)
	}
	if st.BlockReads != 1 || st.CoalescedReads != storm-1 {
		t.Fatalf("blockReads=%d coalescedReads=%d, want 1/%d", st.BlockReads, st.CoalescedReads, storm-1)
	}
	if ds := s.DeviceStats(); ds.CoalescedReads != storm-1 {
		t.Fatalf("device coalesced=%d, want %d", ds.CoalescedReads, storm-1)
	}
	ios, ok := s.IOSchedStats()
	if !ok {
		t.Fatal("IOSchedStats reports scheduler off")
	}
	if ios.DeviceReads != 1 || ios.Coalesced != storm-1 {
		t.Fatalf("iosched stats %+v", ios)
	}

	// The storm resolved, the vector is cached: the next lookup is a plain
	// hit and touches neither the scheduler nor the device.
	if _, err := s.Lookup(0, id); err != nil {
		t.Fatal(err)
	}
	if got := cs.blocksRead.Load(); got != 1 {
		t.Fatalf("cache hit read the device (%d reads)", got)
	}
}

// TestSchedulerOnOffEquivalence trains and serves the identical workload on
// four stores — {mem, file} x {scheduler on, scheduler off} — and asserts
// they are indistinguishable: same vectors, same hit ratios, same counters.
// Single-threaded serving never coalesces, so the scheduler must be a pure
// transport change.
func TestSchedulerOnOffEquivalence(t *testing.T) {
	tables, traces := buildTestTables(t, 2, 2048, 150)

	type variant struct {
		name string
		cfg  Config
	}
	variants := []variant{
		{"mem-off", Config{Tables: tables, DRAMBudgetVectors: 256, Seed: 7}},
		{"mem-on", Config{Tables: tables, DRAMBudgetVectors: 256, Seed: 7,
			IOSched: IOSchedOptions{Enabled: true, QueueDepth: 8, Window: time.Millisecond}}},
		{"file-off", Config{Tables: tables, DRAMBudgetVectors: 256, Seed: 7,
			Backend: BackendFile, DataDir: filepath.Join(t.TempDir(), "off")}},
		{"file-on", Config{Tables: tables, DRAMBudgetVectors: 256, Seed: 7,
			Backend: BackendFile, DataDir: filepath.Join(t.TempDir(), "on"),
			IOSched: IOSchedOptions{Enabled: true, QueueDepth: 8, Window: time.Millisecond}}},
	}

	stores := make([]*Store, len(variants))
	for i, v := range variants {
		s, err := Open(v.cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		defer s.Close()
		if _, err := s.Train(traces, TrainOptions{}); err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		stores[i] = s
	}

	for ti, tr := range traces {
		for qi, q := range tr.Queries {
			if qi >= 60 {
				break
			}
			ref, err := stores[0].LookupBatch(ti, q)
			if err != nil {
				t.Fatal(err)
			}
			for vi := 1; vi < len(stores); vi++ {
				got, err := stores[vi].LookupBatch(ti, q)
				if err != nil {
					t.Fatalf("%s: %v", variants[vi].name, err)
				}
				for k := range ref {
					if !vecsEqual(ref[k], got[k]) {
						t.Fatalf("table %d query %d: %s returns different vector for id %d",
							ti, qi, variants[vi].name, q[k])
					}
				}
			}
		}
	}

	ref := stores[0].Stats()
	for vi := 1; vi < len(stores); vi++ {
		got := stores[vi].Stats()
		for i := range ref {
			if ref[i].Lookups != got[i].Lookups || ref[i].Hits != got[i].Hits ||
				ref[i].Misses != got[i].Misses || ref[i].BlockReads != got[i].BlockReads {
				t.Fatalf("table %s: %s counters diverge: %+v vs %+v",
					ref[i].Name, variants[vi].name, ref[i], got[i])
			}
			if ref[i].HitRate != got[i].HitRate {
				t.Fatalf("table %s: %s hit ratio %v != %v",
					ref[i].Name, variants[vi].name, got[i].HitRate, ref[i].HitRate)
			}
			if got[i].CoalescedReads != 0 {
				t.Fatalf("table %s: %s coalesced %d reads in single-threaded serving",
					ref[i].Name, variants[vi].name, got[i].CoalescedReads)
			}
		}
	}
}

// TestUpdateVectorVisibleWithScheduler: updates flow through the scheduler's
// background class and must stay immediately visible to subsequent lookups,
// including under concurrent miss traffic on the same table.
func TestUpdateVectorVisibleWithScheduler(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 1024, 10)
	s, err := Open(testBackendConfig(t, Config{
		Tables: tables,
		Seed:   3,
		IOSched: IOSchedOptions{
			Enabled:    true,
			QueueDepth: 8,
			Window:     200 * time.Microsecond,
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			id := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				id = (id*1664525 + 1013904223) % 1024
				if _, err := s.Lookup(0, id); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint32(w * 31))
	}

	vec := make([]float32, tables[0].Dim)
	for round := 0; round < 20; round++ {
		for i := range vec {
			vec[i] = float32(round*8+i) / 4 // fp16-exact
		}
		if err := s.UpdateVector(0, 500, vec); err != nil {
			t.Fatal(err)
		}
		got, err := s.Lookup(0, 500)
		if err != nil {
			t.Fatal(err)
		}
		if !vecsEqual(got, vec) {
			t.Fatalf("round %d: update not visible: got %v want %v", round, got[:4], vec[:4])
		}
	}
	close(stop)
	wg.Wait()
}

// TestIOSchedConfigValidation: Open must reject nonsensical scheduler
// options instead of silently normalizing them.
func TestIOSchedConfigValidation(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 256, 5)
	for _, opts := range []IOSchedOptions{
		{Enabled: true, QueueDepth: -4},
		{Enabled: true, QueueDepth: 100000},
		{Enabled: true, Window: -time.Second},
	} {
		if _, err := Open(Config{Tables: tables, Seed: 1, IOSched: opts}); err == nil {
			t.Fatalf("options %+v accepted", opts)
		}
	}
}

// TestStatsReportSchedulerOff: stores without a scheduler report it.
func TestStatsReportSchedulerOff(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 256, 5)
	s, err := Open(Config{Tables: tables, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.IOSchedStats(); ok {
		t.Fatal("scheduler reported on for a plain store")
	}
}
