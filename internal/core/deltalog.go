// The write-optimized update path: instead of a journaled read-modify-write
// of the containing 4 KB block (three device writes per updated vector), an
// update appends one fixed-framing record to an update log and parks the new
// bytes in an in-DRAM per-table overlay. Serving merges the overlay in front
// of the block image; a background compactor folds accumulated overlay
// entries into the image (amortizing many updates per block RMW) and trims
// the log. The log doubles as the replication feed: every record carries the
// snapshot seq its update committed at, so a replica that served seq N asks
// for "everything after N" and applies exactly the changed vectors instead of
// re-importing the whole image (see Store.UpdatesSince and
// ApplyReplicatedUpdates). Structural mutations — Train, LoadState,
// adaptation relayouts — invalidate the log, forcing followers back onto the
// full-snapshot bootstrap path.
//
// On the file backend the log is also the crash-recovery source for updates
// not yet compacted: updates.log in the data dir holds a header recording the
// compacted-through seq plus the framed records; reopen replays every record
// past the watermark over the block image (see replayUpdateLog in dir.go).
package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// UpdateLogFileName is the append-only update log inside a data dir.
const UpdateLogFileName = "updates.log"

// UpdateLogOptions configures the delta-overlay update path.
type UpdateLogOptions struct {
	// Enabled turns the update log on: UpdateVector appends one log record
	// and populates the DRAM overlay instead of read-modify-writing the
	// containing NVM block. Off by default — updates then write through to
	// NVM exactly as before.
	Enabled bool
	// CompactAfter triggers a background compaction once this many records
	// have accumulated beyond the retention tail. 0 uses the default (4096).
	CompactAfter int
	// RetainRecords is how many of the newest records survive a compaction
	// so lagging replicas can still catch up incrementally instead of
	// falling back to a full snapshot sync. 0 uses the default (16384).
	RetainRecords int
}

const (
	defaultCompactAfter  = 4096
	defaultRetainRecords = 16384
)

func (o *UpdateLogOptions) defaults() {
	if o.CompactAfter <= 0 {
		o.CompactAfter = defaultCompactAfter
	}
	if o.RetainRecords <= 0 {
		o.RetainRecords = defaultRetainRecords
	}
}

// UpdateRecord is one logged vector update: the fp16 payload written to
// (Table, ID) by the update that advanced the snapshot seq to Seq. Raw is
// immutable once the record exists; receivers may retain it.
type UpdateRecord struct {
	Seq   uint64
	Table uint32
	ID    uint32
	Raw   []byte
}

// Update-record framing (little-endian):
//
//	u32 payloadLen | u64 seq | u32 table | u32 id | payload | u32 crc
//
// crc is CRC-32C (Castagnoli) over the 20 header bytes plus the payload, so
// a torn tail or a flipped bit is detected before a record is applied.
const (
	updateRecordHeaderLen = 4 + 8 + 4 + 4
	updateRecordOverhead  = updateRecordHeaderLen + 4
	// maxUpdatePayload bounds a decoded record's payload; vectors are at
	// most one block.
	maxUpdatePayload = 1 << 16
)

// EncodedUpdateLen returns the framed size of a record with payloadLen bytes.
func EncodedUpdateLen(payloadLen int) int { return updateRecordOverhead + payloadLen }

// EncodeUpdateRecord appends the framed encoding of rec to dst.
func EncodeUpdateRecord(dst []byte, rec UpdateRecord) []byte {
	start := len(dst)
	var hdr [updateRecordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(rec.Raw)))
	binary.LittleEndian.PutUint64(hdr[4:], rec.Seq)
	binary.LittleEndian.PutUint32(hdr[12:], rec.Table)
	binary.LittleEndian.PutUint32(hdr[16:], rec.ID)
	dst = append(dst, hdr[:]...)
	dst = append(dst, rec.Raw...)
	crc := crc32.Checksum(dst[start:], manifestCRCTable)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(dst, tail[:]...)
}

// DecodeUpdateRecord decodes one framed record from the front of b, returning
// the record and the number of bytes consumed. The returned Raw aliases b.
func DecodeUpdateRecord(b []byte) (UpdateRecord, int, error) {
	if len(b) < updateRecordOverhead {
		return UpdateRecord{}, 0, fmt.Errorf("core: update record truncated (%d bytes)", len(b))
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[0:]))
	if payloadLen > maxUpdatePayload {
		return UpdateRecord{}, 0, fmt.Errorf("core: implausible update payload length %d", payloadLen)
	}
	total := updateRecordOverhead + payloadLen
	if len(b) < total {
		return UpdateRecord{}, 0, fmt.Errorf("core: update record truncated (%d of %d bytes)", len(b), total)
	}
	body := b[:updateRecordHeaderLen+payloadLen]
	want := binary.LittleEndian.Uint32(b[updateRecordHeaderLen+payloadLen:])
	if got := crc32.Checksum(body, manifestCRCTable); got != want {
		return UpdateRecord{}, 0, fmt.Errorf("core: update record checksum mismatch (got %08x want %08x)", got, want)
	}
	return UpdateRecord{
		Seq:   binary.LittleEndian.Uint64(b[4:]),
		Table: binary.LittleEndian.Uint32(b[12:]),
		ID:    binary.LittleEndian.Uint32(b[16:]),
		Raw:   b[updateRecordHeaderLen : updateRecordHeaderLen+payloadLen],
	}, total, nil
}

// Update-log file header: magic, the compacted-through seq (records at or
// below it are retained only for replica catch-up and must NOT be replayed —
// their effects are already durable in the block image, possibly overwritten
// by newer compacted updates), and a CRC over both.
const (
	updateLogMagic     = "BNDULOG1"
	updateLogHeaderLen = 8 + 8 + 4
)

func encodeUpdateLogHeader(through uint64) []byte {
	buf := make([]byte, updateLogHeaderLen)
	copy(buf, updateLogMagic)
	binary.LittleEndian.PutUint64(buf[8:], through)
	binary.LittleEndian.PutUint32(buf[16:], crc32.Checksum(buf[:16], manifestCRCTable))
	return buf
}

// parseUpdateLog decodes an update-log image: the header's compacted-through
// watermark plus every intact record, stopping silently at a torn tail (the
// crash-recovery contract: a record is applied only if it is whole).
func parseUpdateLog(raw []byte) (through uint64, recs []UpdateRecord, err error) {
	if len(raw) < updateLogHeaderLen {
		// Created-but-unwritten (crash between create and header write):
		// an empty log, not corruption.
		return 0, nil, nil
	}
	if string(raw[:8]) != updateLogMagic {
		return 0, nil, fmt.Errorf("core: bad update log magic %q", raw[:8])
	}
	if got := crc32.Checksum(raw[:16], manifestCRCTable); got != binary.LittleEndian.Uint32(raw[16:]) {
		return 0, nil, fmt.Errorf("core: update log header checksum mismatch")
	}
	through = binary.LittleEndian.Uint64(raw[8:])
	rest := raw[updateLogHeaderLen:]
	for len(rest) > 0 {
		rec, n, derr := DecodeUpdateRecord(rest)
		if derr != nil {
			break // torn tail: everything before it is good
		}
		recs = append(recs, rec)
		rest = rest[n:]
	}
	return through, recs, nil
}

// deltaLog is the in-memory update log: an ordered, seq-contiguous window of
// the most recent updates, optionally mirrored to an on-disk file. All
// methods are safe for concurrent use.
type deltaLog struct {
	mu sync.Mutex
	// records[i].Seq == baseSeq + 1 + uint64(i): the window is contiguous,
	// so UpdatesSince can serve any follower whose seq lies in
	// [baseSeq, lastSeq] by index. Structural mutations reset the window.
	records []UpdateRecord
	baseSeq uint64
	lastSeq uint64
	// memBytes is the framed size of the retained records (observability).
	memBytes int64

	// f is the on-disk mirror (nil for the mem backend); path/dir locate it
	// for the truncate rewrite. Appends land in w (buffered — the mirror
	// write syscall stays off the per-update critical path) and reach f at
	// the durability points: fsync, truncate, rewrite, close. syncAlways
	// flushes and fsyncs per append. scratch is the reusable encode buffer;
	// both are guarded by mu.
	f          *os.File
	w          *bufio.Writer
	scratch    []byte
	path, dir  string
	syncAlways bool
	// diskBytes counts record bytes in the mirror since its last rewrite.
	// Truncation normally just overwrites the header watermark in place (a
	// 20-byte pwrite — appends are never stalled behind a file rewrite);
	// the full rewrite runs only when the mirror has grown well past the
	// retained window (see logRewriteSlack).
	diskBytes int64

	compactAfter int
	retain       int

	appends         atomic.Int64
	bytesAppended   atomic.Int64
	compactions     atomic.Int64
	compactFailures atomic.Int64
	invalidations   atomic.Int64
	fallbacks       atomic.Int64
	recovered       int64
}

// newDeltaLog creates the log with its window anchored at baseSeq. dir is ""
// for memory-only logs; otherwise the on-disk mirror is (re)created with a
// fresh header (reopen replays and removes any previous log first).
func newDeltaLog(opts UpdateLogOptions, baseSeq uint64, dir string, syncAlways bool) (*deltaLog, error) {
	opts.defaults()
	l := &deltaLog{
		baseSeq:      baseSeq,
		lastSeq:      baseSeq,
		compactAfter: opts.CompactAfter,
		retain:       opts.RetainRecords,
		dir:          dir,
		syncAlways:   syncAlways,
	}
	if dir != "" {
		l.path = filepath.Join(dir, UpdateLogFileName)
		f, err := os.OpenFile(l.path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("core: create update log: %w", err)
		}
		if _, err := f.Write(encodeUpdateLogHeader(baseSeq)); err == nil {
			err = f.Sync()
		} else {
			f.Close()
			return nil, fmt.Errorf("core: write update log header: %w", err)
		}
		l.f = f
		l.w = bufio.NewWriterSize(f, updateLogBufSize)
	}
	return l, nil
}

// updateLogBufSize is the mirror's append buffer: large enough to absorb a
// few hundred dim-64 records between durability points, small enough that a
// crash loses at most one buffer of non-fsynced tail (the same window the
// periodic sync modes already accept for block writes).
const updateLogBufSize = 64 << 10

func (l *deltaLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.w.Flush()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f, l.w = nil, nil
	return err
}

// fsync makes the on-disk mirror durable (no-op for memory-only logs);
// Persist and Close call it so the periodic-sync modes get the same
// durability points the block journal gets.
func (l *deltaLog) fsync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// append assigns the update its seq (advancing snapSeq under the log lock, so
// record order and seq order can never disagree), frames it, mirrors it to
// disk and retains it in the window. rec.Raw must be a caller-owned immutable
// copy. Returns the assigned seq and whether the window has grown enough that
// a compaction should run.
func (l *deltaLog) append(snapSeq *atomic.Uint64, tableIdx, id uint32, raw []byte) (seq uint64, needCompact bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq = snapSeq.Add(1)
	rec := UpdateRecord{Seq: seq, Table: tableIdx, ID: id, Raw: raw}
	if err := l.appendLocked(rec); err != nil {
		return seq, false, err
	}
	return seq, l.needCompactLocked(), nil
}

// appendRecord appends a record that already carries its seq (the replica
// apply path: the primary assigned it). Returns whether compaction is due.
func (l *deltaLog) appendRecord(rec UpdateRecord) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendLocked(rec); err != nil {
		return false, err
	}
	return l.needCompactLocked(), nil
}

func (l *deltaLog) needCompactLocked() bool {
	return len(l.records) >= l.retain+l.compactAfter
}

func (l *deltaLog) appendLocked(rec UpdateRecord) error {
	if rec.Seq != l.lastSeq+1 {
		// The seq moved without going through the log (a structural mutator
		// that forgot to invalidate, or a replica batch across a gap). The
		// window's contiguity invariant is what makes UpdatesSince correct,
		// so reset it rather than serve a follower a stream with a hole.
		l.resetLocked(rec.Seq - 1)
	}
	if l.f != nil {
		l.scratch = EncodeUpdateRecord(l.scratch[:0], rec)
		if _, err := l.w.Write(l.scratch); err != nil {
			return fmt.Errorf("core: append update log: %w", err)
		}
		if l.syncAlways {
			if err := l.w.Flush(); err != nil {
				return fmt.Errorf("core: append update log: %w", err)
			}
			if err := l.f.Sync(); err != nil {
				return fmt.Errorf("core: sync update log: %w", err)
			}
		}
		l.diskBytes += int64(EncodedUpdateLen(len(rec.Raw)))
	}
	l.records = append(l.records, rec)
	l.lastSeq = rec.Seq
	l.memBytes += int64(EncodedUpdateLen(len(rec.Raw)))
	l.appends.Add(1)
	l.bytesAppended.Add(int64(EncodedUpdateLen(len(rec.Raw))))
	return nil
}

// invalidate empties the window and re-anchors it at cur (the snapshot seq
// after a structural mutation): followers whose seq predates the mutation
// fall off the window and full-sync, which is exactly right — the mutation
// changed more than any stream of vector records can express.
func (l *deltaLog) invalidate(cur uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.resetLocked(cur)
	l.invalidations.Add(1)
	if l.f != nil {
		// Best-effort: rewrite the mirror as an empty log compacted through
		// cur. The structural mutator has already made the image durable
		// (rewrite marker / migration protocols), so dropped records are
		// covered; a failed rewrite leaves stale records that replay would
		// skip only partially — rewriteLocked errors are therefore surfaced
		// via lastSeq staying authoritative in memory, and the reopen-time
		// replay guard (records below the header watermark are skipped)
		// keeps disk staleness harmless once the next truncate succeeds.
		_ = l.rewriteLocked(cur)
	}
}

func (l *deltaLog) resetLocked(cur uint64) {
	l.records = nil
	l.baseSeq = cur
	l.lastSeq = cur
	l.memBytes = 0
}

// logRewriteSlack bounds how far the on-disk mirror may outgrow the retained
// in-memory window before a truncate pays for a full file rewrite. Below the
// threshold, truncation is a 20-byte in-place header update: compacted
// records stay in the file but sit at or below the header watermark, so a
// crash replay skips them (and re-applying them would be idempotent anyway —
// compaction already made their blocks durable).
const logRewriteSlack = 64 << 20

// truncate drops every record at or below through from the window, except
// that the newest retain records always survive (replica catch-up tail), and
// advances the on-disk mirror's compacted watermark to through — in place
// when the file is still small, via atomic rewrite when it has accumulated
// logRewriteSlack bytes beyond the live window. Callers guarantee every
// dropped record's effect is durable in the block image (compaction flushes
// the device first).
func (l *deltaLog) truncate(through uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cut := 0
	for cut < len(l.records) && l.records[cut].Seq <= through {
		cut++
	}
	if keepFloor := len(l.records) - l.retain; cut > keepFloor {
		cut = keepFloor
	}
	if cut > 0 {
		l.baseSeq = l.records[cut-1].Seq
		for _, r := range l.records[:cut] {
			l.memBytes -= int64(EncodedUpdateLen(len(r.Raw)))
		}
		// Re-slice rather than copy: a copy of the retained window (tens of
		// thousands of records) under l.mu stalls every concurrent append.
		// The dropped prefix stays reachable through the backing array until
		// enough accumulates to make a compacting copy worth the pause.
		l.records = l.records[cut:]
		if len(l.records)*2 < cap(l.records) {
			kept := make([]UpdateRecord, len(l.records))
			copy(kept, l.records)
			l.records = kept
		}
	}
	l.compactions.Add(1)
	if l.f == nil {
		return nil
	}
	if l.diskBytes > l.memBytes+logRewriteSlack {
		return l.rewriteLocked(through)
	}
	// In-place header update: buffered appends land past the header at f's
	// sequential offset, so the two never collide.
	if _, err := l.f.WriteAt(encodeUpdateLogHeader(through), 0); err != nil {
		return fmt.Errorf("core: update log watermark: %w", err)
	}
	if l.syncAlways {
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("core: update log watermark: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("core: sync update log: %w", err)
		}
	}
	return nil
}

// rewriteLocked atomically replaces the on-disk mirror with a fresh header
// (compacted through the given seq) plus the retained window, via temp file +
// rename, then reopens the append handle. Crash-safe: the rename is atomic,
// and every record present only in the old mirror is ≤ through, i.e. already
// durable in the block image.
func (l *deltaLog) rewriteLocked(through uint64) error {
	tmp := l.path + ".tmp"
	tf, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: rewrite update log: %w", err)
	}
	buf := encodeUpdateLogHeader(through)
	for _, rec := range l.records {
		buf = EncodeUpdateRecord(buf, rec)
	}
	_, err = tf.Write(buf)
	if err == nil {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, l.path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: rewrite update log: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("core: rewrite update log: %w", err)
	}
	if l.f != nil {
		l.f.Close()
	}
	// Plain O_WRONLY, not O_APPEND: truncate's in-place watermark update
	// needs WriteAt, which Go refuses on append-mode files. Appends go
	// through the explicit end-seek position.
	l.f, err = os.OpenFile(l.path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("core: reopen update log: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("core: reopen update log: %w", err)
	}
	// The rewrite was built from the in-memory window, so any bytes still
	// buffered for the replaced file are stale — drop them.
	if l.w == nil {
		l.w = bufio.NewWriterSize(l.f, updateLogBufSize)
	} else {
		l.w.Reset(l.f)
	}
	l.diskBytes = l.memBytes
	return nil
}

// since returns up to maxRecords records (bounded also by maxBytes of framed
// payload) with Seq > since, in order. ok is false when since lies outside
// the retained window [baseSeq, lastSeq] — the caller must fall back to a
// full snapshot sync. upTo is the seq of the last returned record (== since
// when the follower is already caught up).
func (l *deltaLog) since(since uint64, maxRecords, maxBytes int) (recs []UpdateRecord, upTo uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if since < l.baseSeq || since > l.lastSeq {
		return nil, 0, false
	}
	start := int(since - l.baseSeq)
	upTo = since
	bytes := 0
	for i := start; i < len(l.records); i++ {
		if len(recs) >= maxRecords {
			break
		}
		rec := l.records[i]
		sz := EncodedUpdateLen(len(rec.Raw))
		if len(recs) > 0 && bytes+sz > maxBytes {
			break
		}
		recs = append(recs, rec)
		bytes += sz
		upTo = rec.Seq
	}
	return recs, upTo, true
}

// UpdateLogStats is a snapshot of the update log's counters.
type UpdateLogStats struct {
	// Enabled is false when the store updates by block read-modify-write
	// (Config.UpdateLog off); every other field is then zero.
	Enabled bool `json:"enabled"`
	// Records / MemBytes describe the retained in-memory window.
	Records  int   `json:"records"`
	MemBytes int64 `json:"memBytes"`
	// BaseSeq / LastSeq delimit the seqs the log can serve incrementally: a
	// follower at seq S in [BaseSeq, LastSeq] tails records; outside it must
	// full-sync.
	BaseSeq uint64 `json:"baseSeq"`
	LastSeq uint64 `json:"lastSeq"`
	// Appends counts logged updates; Compactions counts folds of the overlay
	// into the block image; Invalidations counts structural mutations that
	// reset the window; FallbackWrites counts updates whose log append failed
	// (they commit overlay-only and stay volatile until the next compaction).
	Appends int64 `json:"appends"`
	// BytesAppended is the total framed bytes appended to the log (memory
	// window and disk mirror alike) — the delta path's write volume, the
	// counterpart of the device's block BytesWritten.
	BytesAppended   int64 `json:"bytesAppended"`
	Compactions     int64 `json:"compactions"`
	CompactFailures int64 `json:"compactFailures"`
	Invalidations   int64 `json:"invalidations"`
	FallbackWrites  int64 `json:"fallbackWrites"`
	// OverlayEntries is the total number of vectors currently served from
	// the DRAM overlay (not yet compacted into the block image).
	OverlayEntries int `json:"overlayEntries"`
	// RecoveredRecords counts log records replayed over the block image when
	// this store was reopened after a crash.
	RecoveredRecords int64 `json:"recoveredRecords"`
}

// UpdateLogStats reports the update log's state; Enabled is false (and the
// rest zero) when the store runs without one.
func (s *Store) UpdateLogStats() UpdateLogStats {
	l := s.deltaLog
	if l == nil {
		return UpdateLogStats{}
	}
	l.mu.Lock()
	out := UpdateLogStats{
		Enabled:          true,
		Records:          len(l.records),
		MemBytes:         l.memBytes,
		BaseSeq:          l.baseSeq,
		LastSeq:          l.lastSeq,
		RecoveredRecords: l.recovered,
	}
	l.mu.Unlock()
	out.Appends = l.appends.Load()
	out.BytesAppended = l.bytesAppended.Load()
	out.Compactions = l.compactions.Load()
	out.CompactFailures = l.compactFailures.Load()
	out.Invalidations = l.invalidations.Load()
	out.FallbackWrites = l.fallbacks.Load()
	for _, st := range s.tables {
		if st.overlay != nil {
			out.OverlayEntries += st.overlay.size()
		}
	}
	return out
}

// deltaOverlay is one table's in-DRAM overlay: vector ID -> the raw fp16
// bytes of updates not yet compacted into the block image, tagged with the
// seq that wrote them (so compaction can tell "unchanged since I snapshotted"
// from "updated again meanwhile"). Entries' byte slices are immutable.
type deltaOverlay struct {
	mu sync.RWMutex
	m  map[uint32]overlayEntry
}

type overlayEntry struct {
	raw []byte
	seq uint64
}

func newDeltaOverlay() *deltaOverlay {
	return &deltaOverlay{m: make(map[uint32]overlayEntry)}
}

// get returns the overlaid bytes for id, or nil.
func (o *deltaOverlay) get(id uint32) []byte {
	o.mu.RLock()
	e, ok := o.m[id]
	o.mu.RUnlock()
	if !ok {
		return nil
	}
	return e.raw
}

// contains reports whether id is overlaid (the block image's copy is stale).
func (o *deltaOverlay) contains(id uint32) bool {
	o.mu.RLock()
	_, ok := o.m[id]
	o.mu.RUnlock()
	return ok
}

func (o *deltaOverlay) put(id uint32, raw []byte, seq uint64) {
	o.mu.Lock()
	o.m[id] = overlayEntry{raw: raw, seq: seq}
	o.mu.Unlock()
}

func (o *deltaOverlay) size() int {
	o.mu.RLock()
	n := len(o.m)
	o.mu.RUnlock()
	return n
}

// snapshot copies the overlay map (entry slices are shared, immutable).
func (o *deltaOverlay) snapshot() map[uint32]overlayEntry {
	o.mu.RLock()
	out := make(map[uint32]overlayEntry, len(o.m))
	for id, e := range o.m {
		out[id] = e
	}
	o.mu.RUnlock()
	return out
}

// deleteIfSeq removes id only if its entry still carries seq — an entry
// re-written since the caller snapshotted it must survive (its newer bytes
// are not in the image yet).
func (o *deltaOverlay) deleteIfSeq(id uint32, seq uint64) {
	o.mu.Lock()
	if e, ok := o.m[id]; ok && e.seq == seq {
		delete(o.m, id)
	}
	o.mu.Unlock()
}

// clear empties the overlay. Callers guarantee the block image already holds
// every overlaid value (whole-table rewrites render from the authoritative
// source tables, which updates always write).
func (o *deltaOverlay) clear() {
	o.mu.Lock()
	clear(o.m)
	o.mu.Unlock()
}
