package core

import (
	"fmt"
	"math/rand"
	"testing"

	"bandana/internal/fp16"
)

// TestCacheEngineEquivalence drives two identically configured stores — one
// per cache engine — through the same trained workload and asserts they are
// observationally identical: every lookup returns bitwise-equal vectors, raw
// lookups return decode-identical bytes, and the serving counters (hits,
// misses, block reads, prefetch accounting) match exactly. This is the
// contract that makes Config.CacheEngine a pure representation switch.
func TestCacheEngineEquivalence(t *testing.T) {
	const (
		numTables = 2
		vectors   = 2048
		queries   = 400
	)
	open := func(engine string) (*Store, [][]uint32) {
		// buildTestTables is deterministic (fixed seeds), so both stores get
		// identical tables and training traces, hence identical layouts,
		// thresholds and admission policies after Train.
		tables, traces := buildTestTables(t, numTables, vectors, 400)
		s, err := Open(Config{
			Tables:            tables,
			DRAMBudgetVectors: 256,
			Seed:              7,
			CacheShards:       4,
			CacheEngine:       engine,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Train(traces, TrainOptions{}); err != nil {
			t.Fatal(err)
		}
		// A deterministic serving stream, shared by both stores.
		serveRng := rand.New(rand.NewSource(99))
		serve := make([][]uint32, queries)
		for i := range serve {
			n := 1 + serveRng.Intn(8)
			ids := make([]uint32, n)
			for j := range ids {
				ids[j] = uint32(serveRng.Intn(vectors) % (1 + serveRng.Intn(vectors)))
			}
			serve[i] = ids
		}
		return s, serve
	}

	lruStore, stream := open(CacheEngineLRU)
	defer lruStore.Close()
	arenaStore, _ := open(CacheEngineArena)
	defer arenaStore.Close()

	for qi, ids := range stream {
		ti := qi % numTables
		switch qi % 3 {
		case 0: // single lookups
			for _, id := range ids {
				a, err := lruStore.Lookup(ti, id)
				if err != nil {
					t.Fatal(err)
				}
				b, err := arenaStore.Lookup(ti, id)
				if err != nil {
					t.Fatal(err)
				}
				if err := equalVecs(a, b); err != nil {
					t.Fatalf("query %d id %d: %v", qi, id, err)
				}
			}
		case 1: // float batch
			a, err := lruStore.LookupBatch(ti, ids)
			if err != nil {
				t.Fatal(err)
			}
			b, err := arenaStore.LookupBatch(ti, ids)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if err := equalVecs(a[i], b[i]); err != nil {
					t.Fatalf("query %d pos %d: %v", qi, i, err)
				}
			}
		case 2: // raw batch: decode-identical bytes
			a, err := lruStore.LookupBatchRaw(ti, ids)
			if err != nil {
				t.Fatal(err)
			}
			b, err := arenaStore.LookupBatchRaw(ti, ids)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a {
				av := decodeRaw(t, a[i])
				bv := decodeRaw(t, b[i])
				if err := equalVecs(av, bv); err != nil {
					t.Fatalf("query %d pos %d (raw): %v", qi, i, err)
				}
			}
		}
	}

	as, bs := lruStore.Stats(), arenaStore.Stats()
	for i := range as {
		a, b := as[i], bs[i]
		if a.Lookups != b.Lookups || a.Hits != b.Hits || a.Misses != b.Misses ||
			a.BlockReads != b.BlockReads || a.PrefetchAdds != b.PrefetchAdds ||
			a.PrefetchHits != b.PrefetchHits || a.CacheUsed != b.CacheUsed {
			t.Fatalf("table %d counters diverge:\n lru:   %+v\n arena: %+v", i, summarize(a), summarize(b))
		}
		if a.CacheEngine != CacheEngineLRU || b.CacheEngine != CacheEngineArena {
			t.Fatalf("engines misreported: %q / %q", a.CacheEngine, b.CacheEngine)
		}
		if b.CacheUsed > 0 {
			if b.CacheBytesResident <= 0 || b.CacheArenaBytes < b.CacheBytesResident || b.CacheSlabs == 0 {
				t.Fatalf("arena byte accounting inconsistent: %+v", summarize(b))
			}
		}
	}

	// Live resize equivalence: shrink and regrow both stores identically and
	// confirm contents still agree.
	for _, s := range []*Store{lruStore, arenaStore} {
		for ti := 0; ti < numTables; ti++ {
			s.tables[ti].resizeCacheLive(32)
			s.tables[ti].resizeCacheLive(128)
		}
	}
	if lru, arena := lruStore.Stats(), arenaStore.Stats(); true {
		for i := range lru {
			if lru[i].CacheUsed != arena[i].CacheUsed {
				t.Fatalf("table %d: post-resize CacheUsed %d vs %d", i, lru[i].CacheUsed, arena[i].CacheUsed)
			}
		}
	}
}

func equalVecs(a, b []float32) error {
	if len(a) != len(b) {
		return fmt.Errorf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("element %d: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}

func decodeRaw(t *testing.T, raw []byte) []float32 {
	t.Helper()
	if raw == nil {
		t.Fatal("nil raw vector")
	}
	out := make([]float32, len(raw)/fp16.ByteSize)
	fp16.DecodeSlice(out, raw)
	return out
}

func summarize(s TableStats) string {
	return fmt.Sprintf("lookups=%d hits=%d misses=%d blockReads=%d prefetchAdds=%d prefetchHits=%d cacheUsed=%d bytesResident=%d arenaBytes=%d slabs=%d",
		s.Lookups, s.Hits, s.Misses, s.BlockReads, s.PrefetchAdds, s.PrefetchHits, s.CacheUsed, s.CacheBytesResident, s.CacheArenaBytes, s.CacheSlabs)
}
