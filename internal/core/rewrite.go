package core

import (
	"errors"
	"fmt"

	"bandana/internal/layout"
	"bandana/internal/nvm"
)

// This file is the rewrite layer: every path that changes which bytes live
// in a table's NVM block range. Whole-table rewrites (rewriteTable) hold the
// table's rewrite lock for the duration and are crash-protected by the
// rewrite.dirty marker; live background migrations (relayoutTable) stage the
// new image first and hold the lock only while copying it into place, with
// their own recoverable commit protocol (see migration.go).

// writeAllTables writes every table's blocks to the device in the currently
// published layout (identity after buildStore).
func (s *Store) writeAllTables() error {
	for _, st := range s.tables {
		if err := s.rewriteTable(st, nil); err != nil {
			return err
		}
	}
	return nil
}

// rewriteTable atomically installs a state mutation (usually a new layout)
// and rewrites the table's NVM block range to match it. It excludes
// concurrent vector updates (updateMu) and miss-path block reads
// (rewriteMu), so the serving path never decodes a block with the wrong
// layout: a miss holding rewriteMu shared sees either the old layout with
// the old bytes or the new layout with the new bytes.
func (s *Store) rewriteTable(st *storeTable, mutate func(*tableState)) error {
	st.updateMu.Lock()
	defer st.updateMu.Unlock()
	st.rewriteMu.Lock()
	defer st.rewriteMu.Unlock()
	if mutate != nil {
		st.mutateState(mutate)
	}
	st.epoch.Add(1)
	defer st.epoch.Add(1)
	l := st.loadState().layout
	bufp := getBlockBuf()
	defer putBlockBuf(bufp)
	buf := *bufp
	var members []uint32
	for b := 0; b < st.numBlocks; b++ {
		for i := range buf {
			buf[i] = 0
		}
		members = l.BlockMembers(b, members[:0])
		for slot, id := range members {
			raw, err := st.src.Raw(id)
			if err != nil {
				return fmt.Errorf("core: table %q: %w", st.name, err)
			}
			copy(buf[slot*st.vecBytes:], raw)
		}
		// Bulk path: a whole-table rewrite is not block-wise crash-atomic
		// anyway (the rewrite marker / manifest is the commit point), so
		// skip the per-block write-ahead journal.
		if err := s.device.WriteBlockBulk(st.blockBase+b, buf); err != nil {
			return fmt.Errorf("core: table %q block %d: %w", st.name, b, err)
		}
	}
	if st.overlay != nil {
		// The image was just rendered from src, which includes every overlaid
		// value: the overlay has nothing left to shadow.
		st.overlay.clear()
	}
	return nil
}

// buildTableImage renders the table's full block image under layout l from
// the authoritative source vectors. Callers must hold st.updateMu so the
// image cannot go stale against concurrent vector updates.
func buildTableImage(st *storeTable, l *layout.Layout) ([]byte, error) {
	img := make([]byte, st.numBlocks*nvm.BlockSize)
	if err := buildTableImageInto(st, l, img); err != nil {
		return nil, err
	}
	return img, nil
}

// buildTableImageInto is buildTableImage writing into a caller-supplied
// zero-filled buffer of st.numBlocks*nvm.BlockSize bytes (the snapshot
// exporter renders every table into one contiguous device image). Slots
// without a vector are left as they are, so a dirty buffer would leak its
// previous contents into the image.
func buildTableImageInto(st *storeTable, l *layout.Layout, img []byte) error {
	if len(img) != st.numBlocks*nvm.BlockSize {
		return fmt.Errorf("core: table %q: image buffer is %d bytes, want %d",
			st.name, len(img), st.numBlocks*nvm.BlockSize)
	}
	var members []uint32
	for b := 0; b < st.numBlocks; b++ {
		buf := img[b*nvm.BlockSize : (b+1)*nvm.BlockSize]
		members = l.BlockMembers(b, members[:0])
		for slot, id := range members {
			raw, err := st.src.Raw(id)
			if err != nil {
				return fmt.Errorf("core: table %q: %w", st.name, err)
			}
			copy(buf[slot*st.vecBytes:], raw)
		}
	}
	return nil
}

// relayoutTable migrates one table to a new physical layout while the store
// keeps serving — the zero-downtime counterpart of rewriteTable:
//
//   - the new image is built (and, on the file backend, staged durably with
//     a committed migration record — see migration.go) WITHOUT the rewrite
//     lock, so concurrent misses keep reading blocks throughout;
//   - only the final copy-into-place holds the rewrite lock exclusively,
//     and it is one contiguous bulk write instead of per-block writes;
//   - cache hits are never blocked at any point, and cached vectors stay
//     valid across the swap (the cache is keyed by vector ID, which a
//     layout change does not alter).
//
// Vector updates are excluded for the whole migration (updateMu) so the
// staged image cannot go stale. Callers must hold s.mutateMu: the staging
// protocol supports one migration at a time.
//
// Memory: the migration materializes the table's full block image in RAM
// (it is also what gets staged to disk); at very large table sizes a
// streaming variant (incremental CRC into migration.img, chunked copy-in)
// would bound this to a few MB — the protocol does not depend on the image
// being resident.
func (s *Store) relayoutTable(st *storeTable, newLayout *layout.Layout) error {
	if s.migrationPoisoned.Load() {
		return fmt.Errorf("core: table %q: migrations disabled after an earlier failed rollback (restart to recover)", st.name)
	}
	st.updateMu.Lock()
	defer st.updateMu.Unlock()

	img, err := buildTableImage(st, newLayout)
	if err != nil {
		return err
	}
	if s.dataDir != "" {
		if err := s.stageMigration(st, newLayout, img); err != nil {
			return err
		}
		migrationStage("staged")
	}
	if err := s.installLayout(st, newLayout, img); err != nil {
		if s.dataDir != "" {
			if errors.Is(err, errMigrationRollbackFailed) {
				// The data region may hold a torn image; keep the committed
				// record (the next open redoes the copy exactly) and refuse
				// further migrations in this process.
				s.migrationPoisoned.Store(true)
			} else if cerr := s.clearMigration(); cerr != nil {
				// Rollback restored the old bytes, so the record must not
				// survive to re-apply an abandoned layout at the next open.
				err = errors.Join(err, cerr)
			}
		}
		return err
	}
	migrationStage("installed")
	if s.dataDir != "" {
		if err := s.Persist(); err != nil {
			return fmt.Errorf("core: persist migrated state: %w", err)
		}
		migrationStage("persisted")
		if err := s.clearMigration(); err != nil {
			return err
		}
	}
	return nil
}

// errMigrationRollbackFailed marks a migration whose copy AND rollback both
// failed: the table's on-NVM bytes are suspect and only the staged
// migration record (redone at the next open) can repair them.
var errMigrationRollbackFailed = errors.New("core: migration rollback failed")

// installLayout copies the new block image into place and then publishes
// newLayout, all under the table's exclusive rewrite lock — the only window
// in which concurrent misses wait. The copy strictly precedes the publish,
// and a failed copy is rolled back by rewriting the old layout's image from
// the authoritative source vectors (the caller holds updateMu, so the
// source cannot move), so on every exit the published layout matches the
// bytes on NVM — a partial bulk write never serves mis-mapped vectors. If
// even the rollback write fails the storage is genuinely broken; the joined
// error propagates and, on the file backend, the committed migration record
// redoes the copy exactly at the next open. The epoch bump keeps in-flight
// misses that decoded under the old layout from caching stale vectors.
func (s *Store) installLayout(st *storeTable, newLayout *layout.Layout, img []byte) error {
	st.rewriteMu.Lock()
	defer st.rewriteMu.Unlock()
	st.epoch.Add(1)
	defer st.epoch.Add(1)
	err := s.device.WriteBlocksBulk(st.blockBase, img)
	if err == nil {
		err = s.device.Flush()
	}
	if err != nil {
		err = fmt.Errorf("core: table %q migration copy: %w", st.name, err)
		oldImg, rerr := buildTableImage(st, st.loadState().layout)
		if rerr == nil {
			rerr = s.device.WriteBlocksBulk(st.blockBase, oldImg)
		}
		if rerr != nil {
			return errors.Join(err, fmt.Errorf("%w: table %q: %v", errMigrationRollbackFailed, st.name, rerr))
		}
		if st.overlay != nil {
			// The rollback rendered the old image from src, which includes
			// every overlaid value. (On a FAILED rollback the overlay is kept:
			// the on-NVM bytes are suspect and the overlay still shadows the
			// freshest values for serving.)
			st.overlay.clear()
		}
		return err
	}
	st.mutateState(func(ts *tableState) {
		ts.layout = newLayout
	})
	if st.overlay != nil {
		// Same as rewriteTable: img came from src, the overlay is subsumed.
		st.overlay.clear()
	}
	return nil
}
