// Package core implements the Bandana store: embedding tables resident on a
// (simulated) block NVM device, fronted by small per-table DRAM caches, with
// SHP-partitioned physical placement and miniature-cache-tuned prefetch
// admission — the system described in the paper.
//
// Lifecycle:
//
//  1. Open lays the tables out on NVM in their original (ID) order and
//     serves lookups with per-table LRU caches and no prefetching — the
//     baseline policy.
//  2. Train consumes a training workload: it partitions each table with
//     SHP, rewrites the NVM blocks in the new order, computes per-vector
//     access counts, splits the DRAM budget across tables using their
//     hit-rate curves, and picks each table's prefetch-admission threshold
//     with miniature-cache simulations.
//  3. Lookup / LookupBatch serve embedding reads: cache hits are free,
//     misses read one 4 KB NVM block and admit co-located vectors whose
//     training-time access count exceeds the table's threshold.
package core

import (
	"fmt"
	"runtime"
	"time"

	"bandana/internal/nvm"
	"bandana/internal/table"
)

// Backend names for Config.Backend.
const (
	// BackendMem keeps blocks in RAM (the default); nothing survives the
	// process.
	BackendMem = "mem"
	// BackendFile stores blocks in a durable journaled file under
	// Config.DataDir; tables and trained state survive restarts.
	BackendFile = "file"
)

// Config configures a Store.
type Config struct {
	// Tables are the embedding tables to store. Their contents are copied
	// onto the NVM device by Open. Must be nil when reopening an already
	// initialized DataDir: the tables are restored from disk.
	Tables []*table.Table
	// Backend selects the block store backing the NVM device when Device is
	// nil: BackendMem (default) or BackendFile.
	Backend string
	// DataDir is the directory holding the file backend's block file,
	// manifest and trained state (required for BackendFile). Opening an
	// initialized directory restores tables, placement and caching from disk
	// without retraining.
	DataDir string
	// Sync selects the file backend's durability mode (nvm.SyncNone,
	// nvm.SyncPeriodic or nvm.SyncAlways).
	Sync nvm.SyncMode
	// Direct requests O_DIRECT (unbuffered) I/O for the file backend's block
	// file, bypassing the page cache so reads and writes hit the device with
	// honest NVM latencies. Negotiated at open: filesystems that reject
	// O_DIRECT (e.g. tmpfs) silently fall back to buffered I/O — check the
	// device's BackendStats().DirectIO for the outcome. Ignored by
	// BackendMem.
	Direct bool
	// DRAMBudgetVectors is the total number of vectors that may be cached
	// in DRAM across all tables. Defaults to 5% of the total vector count.
	DRAMBudgetVectors int
	// Device optionally supplies the NVM device; Open creates a RAM-backed
	// simulated device of the right size when nil.
	Device *nvm.Device
	// Seed drives the deterministic parts of training (SHP splits, device
	// latency sampling when the device is created internally).
	Seed int64
	// CacheShards is the number of lock shards per table cache. Lookups of
	// vectors in different shards proceed in parallel; more shards mean
	// less lock contention at a small cost in LRU fidelity. Defaults to
	// DefaultCacheShards (derived from GOMAXPROCS).
	CacheShards int
	// CacheEngine selects the DRAM cache representation: CacheEngineArena
	// (the default; pointer-free fp16 slab arenas, ~2.5x less heap per
	// cached vector and no GC scan cost) or CacheEngineLRU (the classic
	// per-entry heap representation with stable zero-alloc float views).
	// Both engines implement identical caching semantics — hit ratios and
	// eviction sequences do not change with this switch.
	CacheEngine string
	// ReadOnly opens the store in read-only mode: every mutator of the
	// servable image (UpdateVector, Train, LoadState, Persist, the
	// adaptation engine) fails with ErrReadOnly, while serving and cache
	// fills work normally. This is how a replica serves a snapshot it
	// bootstrapped from a primary — the next re-sync replaces the whole
	// store, so local mutations would only be lost or, worse, diverge.
	ReadOnly bool
	// InitialSnapshotSeq overrides the store's starting snapshot sequence
	// number (see Store.SnapshotSeq). Zero uses the boot-stamped default. A
	// replica sets it to the seq of the snapshot it imported, so the seq it
	// reports downstream is the primary's, not its own boot time.
	InitialSnapshotSeq uint64
	// IOSched configures the unified asynchronous block I/O scheduler
	// (internal/iosched) on the store's read path. Disabled by default:
	// misses then read the device inline, exactly as before.
	IOSched IOSchedOptions
	// UpdateLog configures the write-optimized update path (delta overlay +
	// append-only update log, see deltalog.go). Disabled by default: updates
	// then read-modify-write their NVM block as before.
	UpdateLog UpdateLogOptions
}

// IOSchedOptions configures the store's block I/O scheduler. When enabled,
// demand misses, batched misses and background read-modify-write reads are
// submitted to a per-device queue that coalesces concurrent reads of the
// same block into one device read and accumulates independent reads into
// batches sized toward QueueDepth — the queue depth at which NVM delivers
// its bandwidth — while always dispatching demand reads before background
// ones.
type IOSchedOptions struct {
	// Enabled turns the scheduler on.
	Enabled bool
	// QueueDepth is the target dispatch batch size; 0 uses the iosched
	// default (8, the paper's device saturation depth).
	QueueDepth int
	// Window bounds how long a queued read may wait for its batch to fill
	// toward QueueDepth; 0 dispatches whatever is queued immediately, so
	// isolated reads at low load pay no added latency.
	Window time.Duration
	// NoCoalesce disables same-block coalescing (for A/B measurement).
	NoCoalesce bool
}

// DefaultCacheShards returns the default shard count for table caches: the
// smallest power of two >= 4*GOMAXPROCS, capped at 256. Oversharding
// relative to the core count keeps the probability of two concurrent
// lookups colliding on a shard lock low.
func DefaultCacheShards() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n > 256 {
		n = 256
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	return shards
}

func (c *Config) validate() error {
	if len(c.Tables) == 0 {
		return fmt.Errorf("core: no tables configured")
	}
	seen := make(map[string]bool, len(c.Tables))
	for i, t := range c.Tables {
		if t == nil {
			return fmt.Errorf("core: table %d is nil", i)
		}
		if t.NumVectors() == 0 {
			return fmt.Errorf("core: table %q is empty", t.Name)
		}
		if t.VectorBytes() > nvm.BlockSize {
			return fmt.Errorf("core: table %q vector size %d exceeds NVM block size %d",
				t.Name, t.VectorBytes(), nvm.BlockSize)
		}
		if seen[t.Name] {
			return fmt.Errorf("core: duplicate table name %q", t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

func (c *Config) totalVectors() int {
	n := 0
	for _, t := range c.Tables {
		n += t.NumVectors()
	}
	return n
}

// TrainOptions configures Store.Train.
type TrainOptions struct {
	// SHPIterations is the number of refinement iterations per bisection
	// level (the paper uses 16).
	SHPIterations int
	// BlockVectors overrides the number of vectors per block; by default it
	// is derived from the vector size (nvm.BlockSize / vectorBytes).
	BlockVectors int
	// Thresholds are the candidate prefetch-admission thresholds evaluated
	// by the miniature caches. Defaults to sim.DefaultThresholds.
	Thresholds []uint32
	// MiniCacheSampling is the miniature-cache sampling rate. The paper
	// uses 0.001 at production scale; the default here is 0.01 which suits
	// the scaled-down tables used in tests and examples.
	MiniCacheSampling float64
	// HRCSampling is the spatial sampling rate used when estimating each
	// table's hit-rate curve for DRAM allocation. Defaults to 0.1.
	HRCSampling float64
	// SkipPartitioning keeps the existing (identity) layout and only tunes
	// caching. Used by ablation experiments.
	SkipPartitioning bool
	// SkipThresholdTuning keeps the default threshold (admit nothing) and
	// only re-partitions.
	SkipThresholdTuning bool
	// Parallelism bounds how many tables are trained concurrently.
	// Defaults to the number of tables.
	Parallelism int
}

func (o *TrainOptions) defaults() {
	if o.SHPIterations <= 0 {
		o.SHPIterations = 16
	}
	if o.MiniCacheSampling <= 0 {
		o.MiniCacheSampling = 0.01
	}
	if o.HRCSampling <= 0 {
		o.HRCSampling = 0.1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 8
	}
}
